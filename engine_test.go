package dapple

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countingStrategy wraps another strategy and counts real searches, to
// observe cache hits and singleflight coalescing.
type countingStrategy struct {
	Strategy
	calls atomic.Int32
}

func (c *countingStrategy) Plan(ctx context.Context, m *Model, cl Cluster, opts PlanOptions) (*PlanResult, error) {
	c.calls.Add(1)
	return c.Strategy.Plan(ctx, m, cl, opts)
}

func newCounting(t *testing.T, name string) *countingStrategy {
	t.Helper()
	inner, ok := StrategyByName(name)
	if !ok {
		t.Fatalf("strategy %q not registered", name)
	}
	return &countingStrategy{Strategy: inner}
}

// TestStrategyRegistry: the registry exposes the DAPPLE planner and every
// baseline by name.
func TestStrategyRegistry(t *testing.T) {
	if n := len(Strategies()); n < 4 {
		t.Fatalf("registry lists %d strategies, want >= 4", n)
	}
	for _, want := range []string{"dapple", "dp", "gpipe", "pipedream"} {
		s, ok := StrategyByName(want)
		if !ok {
			t.Fatalf("strategy %q missing from registry (have %v)", want, StrategyNames())
		}
		if s.Name() != want {
			t.Fatalf("strategy %q reports name %q", want, s.Name())
		}
		if s.Describe() == "" {
			t.Errorf("strategy %q has no description", want)
		}
	}
	// Duplicate registration must fail loudly rather than shadow.
	dup, _ := StrategyByName("gpipe")
	if err := RegisterStrategy(dup); err == nil {
		t.Fatal("duplicate RegisterStrategy succeeded")
	}
}

// TestAllStrategiesShareTheEnginePath: every registered strategy plans and
// simulates GNMT-16 end-to-end through the same Engine.Plan/Engine.Simulate
// path, returning the common result shape.
func TestAllStrategiesShareTheEnginePath(t *testing.T) {
	ctx := context.Background()
	m := ModelByName("GNMT-16")
	for _, s := range Strategies() {
		eng, err := NewEngine(
			WithCluster(ConfigB(4)),
			WithStrategy(s.Name()),
			WithPlanOptions(PlanOptions{PruneSlack: 1.2, Finalists: 4}),
		)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		pr, err := eng.Plan(ctx, m)
		if err != nil {
			t.Fatalf("%s: plan: %v", s.Name(), err)
		}
		if pr.Strategy != s.Name() {
			t.Errorf("%s: result labeled %q", s.Name(), pr.Strategy)
		}
		if err := pr.Plan.Validate(); err != nil {
			t.Errorf("%s: invalid plan: %v", s.Name(), err)
		}
		if pr.Latency <= 0 || pr.Speedup <= 0 {
			t.Errorf("%s: degenerate result %+v", s.Name(), pr)
		}
		res, err := eng.SimulatePlan(ctx, pr)
		if err != nil {
			t.Fatalf("%s: simulate: %v", s.Name(), err)
		}
		if res.IterTime <= 0 || res.Throughput() <= 0 {
			t.Errorf("%s: degenerate simulation %+v", s.Name(), res)
		}
	}
}

// TestEnginePlanCache: a repeated identical Plan is served from the cache
// without re-running the search, and an explicit GBS equal to the model's
// default hits the same key.
func TestEnginePlanCache(t *testing.T) {
	ctx := context.Background()
	cs := newCounting(t, "gpipe")
	eng, err := NewEngine(WithCluster(ConfigB(4)), WithStrategyImpl(cs))
	if err != nil {
		t.Fatal(err)
	}
	m := ModelByName("GNMT-16")

	first, err := eng.Plan(ctx, m)
	if err != nil {
		t.Fatal(err)
	}
	second, err := eng.Plan(ctx, m)
	if err != nil {
		t.Fatal(err)
	}
	// Spelling out the canonical defaults must hit the same key as the
	// implicit zero values.
	third, err := eng.PlanWith(ctx, m, PlanOptions{
		GBS: m.DefaultGBS, MaxStages: 4, PruneSlack: 1.6, Finalists: 24,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := cs.calls.Load(); got != 1 {
		t.Fatalf("search ran %d times, want 1", got)
	}
	if first != second || first != third {
		t.Fatal("cache returned a different result value")
	}
	if st := eng.CacheStats(); st.Hits != 2 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("cache stats %+v, want 2 hits / 1 miss / 1 entry", st)
	}

	// A different GBS is a different key.
	if _, err := eng.PlanWith(ctx, m, PlanOptions{GBS: 2 * m.DefaultGBS}); err != nil {
		t.Fatal(err)
	}
	if got := cs.calls.Load(); got != 2 {
		t.Fatalf("search ran %d times after new GBS, want 2", got)
	}

	eng.ClearCache()
	if _, err := eng.Plan(ctx, m); err != nil {
		t.Fatal(err)
	}
	if got := cs.calls.Load(); got != 3 {
		t.Fatalf("search ran %d times after ClearCache, want 3", got)
	}
}

// TestEngineSingleflight: concurrent identical Plan calls coalesce into one
// search.
func TestEngineSingleflight(t *testing.T) {
	ctx := context.Background()
	cs := newCounting(t, "pipedream")
	eng, err := NewEngine(WithCluster(ConfigB(4)), WithStrategyImpl(cs))
	if err != nil {
		t.Fatal(err)
	}
	m := ModelByName("BERT-48")

	const callers = 8
	results := make([]*PlanResult, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = eng.Plan(ctx, m)
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if results[i] != results[0] {
			t.Fatal("coalesced callers saw different results")
		}
	}
	if got := cs.calls.Load(); got != 1 {
		t.Fatalf("search ran %d times under %d concurrent callers, want 1", got, callers)
	}
	// Every call lands in exactly one counter (waiters may instead arrive
	// after the leader stored, becoming hits).
	st := eng.CacheStats()
	if st.Misses != 1 || st.Hits+st.Coalesced != callers-1 {
		t.Fatalf("cache stats %+v do not account for %d calls", st, callers)
	}
}

// TestEnginePlanCancelled: a Plan with an already-cancelled context returns
// promptly with ctx.Err() and caches nothing.
func TestEnginePlanCancelled(t *testing.T) {
	eng, err := NewEngine(WithCluster(ConfigA(2)))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	start := time.Now()
	_, err = eng.Plan(ctx, ModelByName("BERT-48"))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	// Locally this returns in microseconds; the loose bound absorbs noisy
	// shared CI runners while still catching a full multi-second search.
	if el := time.Since(start); el > 500*time.Millisecond {
		t.Fatalf("cancelled Plan took %v", el)
	}
	if st := eng.CacheStats(); st.Entries != 0 {
		t.Fatalf("cancelled Plan cached an entry: %+v", st)
	}
}

// TestEnginePlanDeadline: a deadline landing mid-search stops the planner
// within ~100ms, not after the multi-second search completes.
func TestEnginePlanDeadline(t *testing.T) {
	eng, err := NewEngine(WithCluster(ConfigA(2)))
	if err != nil {
		t.Fatal(err)
	}
	// BERT-48 on config A takes seconds to plan; give it 20ms.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()

	start := time.Now()
	_, err = eng.Plan(ctx, ModelByName("BERT-48"))
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	// The search aborts within ~30ms of the deadline locally; the loose
	// bound absorbs CI scheduler noise while still distinguishing a prompt
	// abort from the full ~4s search.
	if elapsed > 1*time.Second {
		t.Fatalf("deadline-bounded Plan took %v, want prompt abort after the 20ms deadline", elapsed)
	}
}

// TestEngineSimulateCancelled: the discrete-event scheduler also honors
// context cancellation.
func TestEngineSimulateCancelled(t *testing.T) {
	ctx := context.Background()
	eng, err := NewEngine(WithCluster(ConfigB(4)), WithStrategy("gpipe"))
	if err != nil {
		t.Fatal(err)
	}
	pr, err := eng.Plan(ctx, ModelByName("GNMT-16"))
	if err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := eng.Simulate(cctx, pr.Plan, ScheduleOptions{Policy: DapplePA}); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// panicStrategy always panics, standing in for a buggy custom strategy.
type panicStrategy struct{}

func (panicStrategy) Name() string     { return "panic-test" }
func (panicStrategy) Describe() string { return "always panics" }
func (panicStrategy) Plan(context.Context, *Model, Cluster, PlanOptions) (*PlanResult, error) {
	panic("boom")
}

// TestEngineLeaderPanic: a panicking strategy surfaces as an error, clears
// the singleflight key (later calls do not hang), and caches nothing.
func TestEngineLeaderPanic(t *testing.T) {
	eng, err := NewEngine(WithCluster(ConfigB(2)), WithStrategyImpl(panicStrategy{}))
	if err != nil {
		t.Fatal(err)
	}
	m := ModelByName("GNMT-16")
	if _, err := eng.Plan(context.Background(), m); err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("got %v, want strategy-panicked error", err)
	}
	// The key must not be wedged: a bounded retry errors again instead of
	// blocking on a never-closed inflight call.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := eng.Plan(ctx, m); err == nil || errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want immediate strategy-panicked error", err)
	}
	if st := eng.CacheStats(); st.Entries != 0 {
		t.Fatalf("panicked search cached an entry: %+v", st)
	}
}

// TestEngineSimulateInvalidPlan: hand-built plans fail with errors, not
// panics.
func TestEngineSimulateInvalidPlan(t *testing.T) {
	eng, err := NewEngine(WithCluster(ConfigB(2)))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := eng.Simulate(ctx, nil, ScheduleOptions{}); err == nil {
		t.Fatal("nil plan simulated")
	}
	if _, err := eng.Simulate(ctx, &Plan{}, ScheduleOptions{}); err == nil {
		t.Fatal("model-less plan simulated")
	}
}

// TestEngineOptions: constructor validation and the policy override.
func TestEngineOptions(t *testing.T) {
	if _, err := NewEngine(); err == nil {
		t.Fatal("NewEngine without WithCluster succeeded")
	}
	if _, err := NewEngine(WithCluster(ConfigB(2)), WithStrategy("no-such")); err == nil {
		t.Fatal("WithStrategy with unknown name succeeded")
	}
	if _, err := NewEngine(WithCluster(Cluster{})); err == nil {
		t.Fatal("WithCluster with invalid cluster succeeded")
	}

	var events []string
	eng, err := NewEngine(
		WithCluster(ConfigB(4)),
		WithStrategy("straight"),
		WithPolicy(GPipeSchedule),
		WithProgress(func(p Progress) { events = append(events, p.Phase) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	pr, err := eng.Plan(ctx, ModelByName("GNMT-16"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.SimulatePlan(ctx, pr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != GPipeSchedule {
		t.Fatalf("WithPolicy override ignored: simulated under %v", res.Policy)
	}
	want := []string{"plan.start", "plan.done", "sim.start", "sim.done"}
	if len(events) != len(want) {
		t.Fatalf("progress events %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("progress events %v, want %v", events, want)
		}
	}
}
