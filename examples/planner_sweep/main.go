// Planner sweep (the Fig. 12 scenario): for a translation workload (GNMT-16)
// and a language-model workload (BERT-48), compare pure data parallelism
// against the DAPPLE planner's best hybrid strategy across the paper's three
// interconnect environments and a range of global batch sizes. Both sides run
// through the same Engine API — one engine per (cluster, strategy) pair — so
// the comparison is apples-to-apples: same Result shape, same simulator.
// Slow interconnects and small batches are where hybrid pipeline/data
// parallelism pays off.
package main

import (
	"context"
	"fmt"
	"log"

	"dapple"
)

func main() {
	ctx := context.Background()

	type workload struct {
		model *dapple.Model
		gbs   []int
	}
	workloads := []workload{
		{dapple.ModelByName("GNMT-16"), []int{512, 1024, 2048}},
		{dapple.ModelByName("BERT-48"), []int{32, 64, 128}},
	}
	configs := []struct {
		name    string
		cluster dapple.Cluster
	}{
		{"A (2x8 NVLink + 25Gbps)", dapple.ConfigA(2)},
		{"B (16x1, 25Gbps)", dapple.ConfigB(16)},
		{"C (16x1, 10Gbps)", dapple.ConfigC(16)},
	}
	searchOpts := dapple.PlanOptions{PruneSlack: 1.3, Finalists: 10}

	for _, w := range workloads {
		fmt.Printf("=== %v ===\n", w.model)
		for _, cfg := range configs {
			engines := map[string]*dapple.Engine{}
			for _, strat := range []string{"dp", "dapple"} {
				eng, err := dapple.NewEngine(
					dapple.WithCluster(cfg.cluster),
					dapple.WithStrategy(strat),
					dapple.WithPlanOptions(searchOpts),
				)
				if err != nil {
					log.Fatal(err)
				}
				engines[strat] = eng
			}
			fmt.Printf("\n%s:\n", cfg.name)
			fmt.Printf("  %6s  %10s  %10s  %-28s %s\n", "GBS", "DP", "hybrid", "plan", "advantage")
			for _, gbs := range w.gbs {
				opts := searchOpts
				opts.GBS = gbs
				dp, err := engines["dp"].PlanWith(ctx, w.model, opts)
				if err != nil {
					log.Fatal(err)
				}
				pr, err := engines["dapple"].PlanWith(ctx, w.model, opts)
				if err != nil {
					log.Fatal(err)
				}
				adv := pr.Speedup / dp.Speedup
				fmt.Printf("  %6d  %9.2fx  %9.2fx  %-28v %.2fx\n",
					gbs, dp.Speedup, pr.Speedup, pr.Plan, adv)
			}
		}
		fmt.Println()
	}
	fmt.Println("reading: hybrid advantage grows as interconnect slows (A -> C) and batch shrinks,")
	fmt.Println("because pipelines sync small boundary activations instead of full gradients.")
}
