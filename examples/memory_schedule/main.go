// Memory & scheduling deep-dive (the Fig. 3 / Table VI scenario): run the
// same 2-stage BERT-48 pipeline under GPipe and DAPPLE schedules across
// micro-batch counts and watch activation memory — GPipe's residency grows
// O(M) until it overflows the 16 GB device, DAPPLE's stays flat at its
// warmup depth, and re-computation trades ~20% backward time for the rest.
// The pipeline comes from the registered "gpipe" strategy (even block
// partition, one stage per device) via the Engine API.
package main

import (
	"context"
	"fmt"
	"log"

	"dapple"
)

func main() {
	ctx := context.Background()
	m := dapple.ModelByName("BERT-48")

	// Two single-V100 servers, 25 Gbps: the gpipe strategy splits the model
	// into a 2-stage straight pipeline, exactly like torchgpipe would.
	eng, err := dapple.NewEngine(
		dapple.WithCluster(dapple.ConfigB(2)),
		dapple.WithStrategy("gpipe"),
		dapple.WithPlanOptions(dapple.PlanOptions{GBS: 32, SkipMemCheck: true}),
	)
	if err != nil {
		log.Fatal(err)
	}
	pr, err := eng.Plan(ctx, m)
	if err != nil {
		log.Fatal(err)
	}
	basePlan := pr.Plan
	fmt.Printf("pipeline: %v on %v\n\n", basePlan, eng.Cluster())

	type variant struct {
		name   string
		policy dapple.ScheduleOptions
	}
	variants := []variant{
		{"GPipe", dapple.ScheduleOptions{Policy: dapple.GPipeSchedule}},
		{"GPipe+recompute", dapple.ScheduleOptions{Policy: dapple.GPipeSchedule, Recompute: true}},
		{"DAPPLE", dapple.ScheduleOptions{Policy: dapple.DapplePA}},
		{"DAPPLE+recompute", dapple.ScheduleOptions{Policy: dapple.DapplePA, Recompute: true}},
	}

	fmt.Printf("%-18s %4s  %12s  %12s  %s\n", "schedule", "M", "samples/s", "avg peak", "status")
	for _, v := range variants {
		for _, M := range []int{2, 8, 16, 32} {
			opts := v.policy
			opts.M = M
			res, err := eng.Simulate(ctx, basePlan, opts)
			if err != nil {
				log.Fatal(err)
			}
			status := "ok"
			if res.OOM {
				status = fmt.Sprintf("OOM (stage %d)", res.OOMStage)
			}
			fmt.Printf("%-18s %4d  %12.2f  %9.2f GiB  %s\n",
				v.name, M, res.Throughput(), res.AvgPeakMem/(1<<30), status)
		}
	}

	// Visualize why: memory-over-time for both schedules at M=8.
	for _, v := range variants[:3] {
		opts := v.policy
		opts.M = 8
		opts.MemLimit = -1
		res, err := eng.Simulate(ctx, basePlan, opts)
		if err != nil {
			log.Fatal(err)
		}
		curve, peak := dapple.MemoryCurve(res, 0, 100)
		fmt.Printf("\n%s stage-0 memory over one iteration (peak %.2f GiB):\n%s\n",
			v.name, float64(peak)/(1<<30), curve)
	}
}
