// Plan-driven real training (§V runtime semantics, for real): profile a real
// MLP into a planner model, let the Engine search a hybrid data/pipeline
// plan for a real cluster topology, then *execute that plan* — goroutines as
// devices, channels as links, ring all-reduce for replicated stages — while
// training the same network sequentially on one "device" as the ground
// truth.
//
// This is the executable form of the paper's whole workflow, planner to
// runtime: losses and parameters must agree at every step ("all pipeline
// latency optimizations give equivalent gradients ... convergence is safely
// preserved", §VI-A), and the real execution's per-device event order must
// match the discrete-event simulation of the very same plan, which the final
// verification asserts. Run with -seed to vary the synthetic data
// reproducibly.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"

	"dapple"
	"dapple/internal/cliutil"
	"dapple/internal/train"
)

func main() {
	seed := cliutil.RegisterSeedFlag()
	flag.Parse()

	const (
		inDim, classes = 16, 4
		iterations     = 30
	)

	// A real 7-layer network, profiled so the planner can partition it.
	master := dapple.NewMLP([]int{inDim, 64, 64, 32, classes}, *seed)
	model, err := dapple.ProfileNetwork("mlp-7", master, inDim, 16, 128)
	if err != nil {
		log.Fatal(err)
	}

	// Plan it on a 4-device cluster through the Engine — the same front door
	// the simulation examples use.
	eng, err := dapple.NewEngine(
		dapple.WithCluster(dapple.ConfigB(4)),
		dapple.WithStrategy("dapple"),
	)
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := cliutil.RootContext(0)
	defer cancel()
	pr, err := eng.Plan(ctx, model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model:   %v\n", model)
	fmt.Printf("plan:    %v (policy %v, recompute %v)\n", pr.Plan, pr.Policy, pr.NeedsRecompute)

	// Carve the real network into the plan's stages once; step it many times.
	ex, err := eng.NewExecutor(pr, master, func() dapple.Optimizer { return dapple.AdamOptimizer(2e-3) })
	if err != nil {
		log.Fatal(err)
	}
	seq := master.Clone()
	seqOpt := dapple.AdamOptimizer(2e-3)

	// Synthetic 4-class problem: class = quadrant of two latent projections.
	rng := rand.New(rand.NewSource(*seed + 1))
	proj := train.NewQuadrantProblem(rng, inDim)
	makeMicros := func() []dapple.TrainBatch {
		return train.QuadrantBatches(rng, proj, pr.Plan.M(), pr.Plan.MicroBatch)
	}

	fmt.Printf("%4s  %10s  %10s  %9s\n", "iter", "sequential", "executed", "drift")
	var last *dapple.ExecResult
	for it := 1; it <= iterations; it++ {
		micros := makeMicros()
		res, err := ex.StepContext(ctx, micros)
		if err != nil {
			log.Fatal(err)
		}
		seqLoss, err := train.SequentialStep(seq, micros, seqOpt)
		if err != nil {
			log.Fatal(err)
		}
		drift := math.Abs(res.Loss - seqLoss)
		if it%5 == 0 || it == 1 {
			fmt.Printf("%4d  %10.4f  %10.4f  %9.1e\n", it, seqLoss, res.Loss, drift)
		}
		if drift > 1e-9 {
			log.Fatalf("plan execution diverged from sequential at iter %d (drift %g)", it, drift)
		}
		last = res
	}

	// Sim-vs-real: the executed schedule must order events exactly like the
	// discrete-event simulation of the same plan.
	simRes, err := eng.SimulatePlan(ctx, pr)
	if err != nil {
		log.Fatal(err)
	}
	if err := dapple.VerifyExecution(pr, simRes, last); err != nil {
		log.Fatalf("sim-vs-real mismatch: %v", err)
	}
	fmt.Printf("\nper-device event order matches the simulated schedule (warmup K=%v)\n", last.Warmup)
	fmt.Printf("peak stash per stage: %v micro-batches of %d in flight\n", last.MaxStash, last.M)
	fmt.Println("\nreal execution timeline (one row per device):")
	fmt.Print(dapple.ExecGantt(last, 100))
	fmt.Println("\nidentical losses & parameters vs sequential -> convergence preserved,")
	fmt.Println("with the planner's plan — stages, replication, placement — really executed.")
}
