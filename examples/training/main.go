// Real pipelined training (§V runtime semantics, for real): train one MLP
// classifier three ways — sequentially on one "device", with DAPPLE
// early-backward pipelining across goroutine stages, and under GPipe
// scheduling — and verify all three produce identical losses and parameters
// at every step, while DAPPLE stashes a fraction of GPipe's activations.
//
// This is the executable form of the paper's convergence argument: "all
// pipeline latency optimizations give equivalent gradients ... convergence
// is safely preserved" (§VI-A). It exercises the concurrent mini-runtime in
// internal/train directly; planning and simulation of the same schedules
// through the public surface live in the other examples (see
// examples/quickstart for the Engine API).
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"dapple/internal/nn"
	"dapple/internal/tensor"
	"dapple/internal/train"
)

func main() {
	const (
		inDim, classes = 16, 4
		microBatches   = 8
		microSize      = 32
		iterations     = 30
	)

	// Synthetic 4-class problem: class = quadrant of two latent projections.
	rng := rand.New(rand.NewSource(7))
	proj := tensor.New(inDim, 2)
	proj.Randomize(rng, 1)
	makeMicros := func() []train.Batch {
		micros := make([]train.Batch, microBatches)
		for i := range micros {
			x := tensor.New(microSize, inDim)
			x.Randomize(rng, 1)
			z := tensor.MatMul(x, proj)
			y := make([]int, microSize)
			for r := 0; r < microSize; r++ {
				y[r] = 0
				if z.At(r, 0) > 0 {
					y[r] |= 1
				}
				if z.At(r, 1) > 0 {
					y[r] |= 2
				}
			}
			micros[i] = train.Batch{X: x, Y: y}
		}
		return micros
	}

	master := nn.MLP([]int{inDim, 64, 64, 32, classes}, 42) // 7 layers
	newOpt := func() nn.Optimizer { return nn.NewAdam(2e-3) }

	seq := master.Clone()
	seqOpt := newOpt()

	dapplePipe, err := train.NewPipeline(master, train.PipelineConfig{
		Cuts:     []int{3, 5, 7}, // 3 stages
		Replicas: []int{2, 1, 1}, // stage 0 data-parallel across 2 replicas
		Policy:   train.DappleSchedule,
	}, newOpt)
	if err != nil {
		log.Fatal(err)
	}
	gpipePipe, err := train.NewPipeline(master, train.PipelineConfig{
		Cuts:   []int{3, 5, 7},
		Policy: train.GPipeSchedule,
	}, newOpt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%4s  %10s  %10s  %10s  %8s\n", "iter", "sequential", "DAPPLE", "GPipe", "max-drift")
	var dappleStash, gpipeStash int
	for it := 1; it <= iterations; it++ {
		micros := makeMicros()

		seqLoss, err := train.SequentialStep(seq, micros, seqOpt)
		if err != nil {
			log.Fatal(err)
		}
		ds, err := dapplePipe.Step(micros)
		if err != nil {
			log.Fatal(err)
		}
		gs, err := gpipePipe.Step(micros)
		if err != nil {
			log.Fatal(err)
		}
		dappleStash, gpipeStash = ds.MaxStash[0], gs.MaxStash[0]

		drift := math.Max(math.Abs(ds.Loss-seqLoss), math.Abs(gs.Loss-seqLoss))
		if it%5 == 0 || it == 1 {
			fmt.Printf("%4d  %10.4f  %10.4f  %10.4f  %8.1e\n",
				it, seqLoss, ds.Loss, gs.Loss, drift)
		}
		if drift > 1e-9 {
			log.Fatalf("schedules diverged at iter %d (drift %g)", it, drift)
		}
	}

	fmt.Printf("\nstage-0 peak activation stash: DAPPLE %d micro-batches vs GPipe %d (of %d)\n",
		dappleStash, gpipeStash, microBatches)
	fmt.Println("identical losses & parameters across schedules -> convergence preserved,")
	fmt.Println("with DAPPLE holding only its warmup depth K of activations (early backward).")
}
