// Quickstart: plan and simulate BERT-48 on the paper's hierarchical config A
// (2 servers x 8 NVLink-connected V100s, 25 Gbps Ethernet) using the Engine
// API — the Fig. 1 workflow in ~40 lines. The Engine binds the cluster to a
// planning strategy, threads a context through the search, and caches plans.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"dapple"
)

func main() {
	m := dapple.ModelByName("BERT-48")

	eng, err := dapple.NewEngine(
		dapple.WithCluster(dapple.ConfigA(2)),
		dapple.WithStrategy("dapple"), // the paper's planner; try "gpipe" or "pipedream"
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model:   %v\n", m)
	fmt.Printf("cluster: %v\n\n", eng.Cluster())

	// Long searches are deadline-bounded: the planner and the simulator both
	// stop promptly once the context expires.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// The Planner searches stage partitions, replication degrees and
	// topology-aware placements (Fresh/Append/Scatter First).
	pr, err := eng.Plan(ctx, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best plan: %v\n", pr)
	for i, s := range pr.Plan.Stages {
		fmt.Printf("  stage %d: layers [%d,%d) on %d device(s) %v\n",
			i, s.Lo, s.Hi, s.Replicas(), s.Devices)
	}

	// The Runtime executes the plan under the strategy's recommended
	// early-backward schedule and re-computation setting.
	res, err := eng.SimulatePlan(ctx, pr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\niteration: %.1f ms  (%.1f samples/s, %.1f%% bubbles)\n",
		res.IterTime*1e3, res.Throughput(), 100*res.BubbleFraction)
	fmt.Printf("memory:    avg peak %.1f GiB across devices (OOM: %v)\n",
		res.AvgPeakMem/(1<<30), res.OOM)

	// A repeated identical Plan is served from the engine's cache.
	if _, err := eng.Plan(ctx, m); err != nil {
		log.Fatal(err)
	}
	cs := eng.CacheStats()
	fmt.Printf("\nplan cache: %d hit(s), %d miss(es)\n", cs.Hits, cs.Misses)

	fmt.Println("\nschedule timeline:")
	fmt.Print(dapple.Gantt(res, 110))
}
