// Quickstart: plan and simulate BERT-48 on the paper's hierarchical config A
// (2 servers x 8 NVLink-connected V100s, 25 Gbps Ethernet) using the public
// dapple API — the Fig. 1 workflow in ~40 lines.
package main

import (
	"fmt"
	"log"

	"dapple"
)

func main() {
	m := dapple.ModelByName("BERT-48")
	cluster := dapple.ConfigA(2)

	fmt.Printf("model:   %v\n", m)
	fmt.Printf("cluster: %v\n\n", cluster)

	// The Planner searches stage partitions, replication degrees and
	// topology-aware placements (Fresh/Append/Scatter First).
	plan, err := dapple.PlanModel(m, cluster, dapple.PlanOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best plan: %v\n", plan)
	for i, s := range plan.Plan.Stages {
		fmt.Printf("  stage %d: layers [%d,%d) on %d device(s) %v\n",
			i, s.Lo, s.Hi, s.Replicas(), s.Devices)
	}

	// The Runtime executes the plan with DAPPLE early-backward scheduling.
	res, err := dapple.Simulate(plan.Plan, dapple.ScheduleOptions{
		Policy:    dapple.DapplePA,
		Recompute: plan.NeedsRecompute,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\niteration: %.1f ms  (%.1f samples/s, %.1f%% bubbles)\n",
		res.IterTime*1e3, res.Throughput(), 100*res.BubbleFraction)
	fmt.Printf("memory:    avg peak %.1f GiB across devices (OOM: %v)\n",
		res.AvgPeakMem/(1<<30), res.OOM)

	fmt.Println("\nschedule timeline:")
	fmt.Print(dapple.Gantt(res, 110))
}
