// Package comm provides analytic communication cost models for the DAPPLE
// planner and scheduler: point-to-point transfers, split/concat stage
// boundary exchanges, ring and hierarchical all-reduce, and the
// backward-overlap ("exposed communication") model used by the data-parallel
// baselines.
//
// All times are seconds, all volumes bytes, all bandwidths bytes/second,
// matching package hardware.
package comm

import (
	"dapple/internal/hardware"
)

// TransferTime returns the time to move bytes over a link with the given
// bandwidth and latency. Zero-byte transfers are free.
func TransferTime(bytes int64, bw, latency float64) float64 {
	if bytes <= 0 {
		return 0
	}
	return float64(bytes)/bw + latency
}

// P2PTime returns the transfer time between two specific devices.
func P2PTime(c hardware.Cluster, from, to hardware.DeviceID, bytes int64) float64 {
	if from == to {
		return 0
	}
	return TransferTime(bytes, c.Bandwidth(from, to), c.Latency(from, to))
}

// splitConcatOverhead is the fixed cost of one split or concat node the
// DAPPLE runtime inserts between stages with unequal replication (§V-B2).
const splitConcatOverhead = 20e-6 // seconds

// CrossStageTime returns the time to move a stage boundary tensor of bytes
// (for one whole micro-batch) from a stage replicated on src devices to one
// replicated on dst devices. Each source replica holds a 1/len(src) slice and
// each destination replica receives a 1/len(dst) slice (split-concat
// semantics), so traffic from server X to server Y is
// bytes*frac(src on X)*frac(dst on Y). Every server funnels its cross-server
// share through a single NIC — the bottleneck the paper's Table I traffic
// analysis is about — so the exchange is bounded by the busiest NIC
// direction; intra-server slices ride NVLink. Split/concat node overhead
// applies when replication degrees differ (§V-B2).
func CrossStageTime(c hardware.Cluster, src, dst []hardware.DeviceID, bytes int64) float64 {
	if bytes <= 0 || len(src) == 0 || len(dst) == 0 {
		return 0
	}
	srcCnt := map[int]int{}
	dstCnt := map[int]int{}
	for _, d := range src {
		srcCnt[c.Server(d)]++
	}
	for _, d := range dst {
		dstCnt[c.Server(d)]++
	}
	out := map[int]float64{}
	in := map[int]float64{}
	intra := map[int]float64{}
	for x, sx := range srcCnt {
		fx := float64(sx) / float64(len(src))
		for y, dy := range dstCnt {
			v := float64(bytes) * fx * float64(dy) / float64(len(dst))
			if x == y {
				intra[x] += v
			} else {
				out[x] += v
				in[y] += v
			}
		}
	}
	var t float64
	for _, v := range out {
		if tt := v/c.InterBW + c.InterLatency; tt > t {
			t = tt
		}
	}
	for _, v := range in {
		if tt := v/c.InterBW + c.InterLatency; tt > t {
			t = tt
		}
	}
	for _, v := range intra {
		if tt := v/c.IntraBW + c.IntraLatency; tt > t {
			t = tt
		}
	}
	if len(src) != len(dst) {
		t += splitConcatOverhead
	}
	return t
}

// AllReduceTime returns the time for a synchronous ring all-reduce of bytes
// over the device group, using the classic 2(n-1)/n volume factor. Groups
// spanning servers run hierarchically: intra-server reduce, inter-server ring
// over one representative per server, intra-server broadcast — the same
// structure NCCL uses on the paper's hierarchical configuration A.
func AllReduceTime(c hardware.Cluster, devs []hardware.DeviceID, bytes int64) float64 {
	n := len(devs)
	if n <= 1 || bytes <= 0 {
		return 0
	}
	if !c.SpansServers(devs) {
		return ringTime(n, bytes, c.IntraBW, c.IntraLatency)
	}
	servers := c.ServersUsed(devs)
	perServer := map[int]int{}
	for _, d := range devs {
		perServer[c.Server(d)]++
	}
	maxLocal := 0
	for _, k := range perServer {
		if k > maxLocal {
			maxLocal = k
		}
	}
	var t float64
	if maxLocal > 1 {
		// Intra-server reduce-scatter + final broadcast/all-gather.
		t += 2 * ringTime(maxLocal, bytes, c.IntraBW, c.IntraLatency) / 2
	}
	if len(servers) > 1 {
		t += ringTime(len(servers), bytes, c.InterBW, c.InterLatency)
	}
	return t
}

// ringTime is the standard ring all-reduce cost: each of n participants sends
// 2(n-1)/n of the volume with 2(n-1) latency hops.
func ringTime(n int, bytes int64, bw, lat float64) float64 {
	if n <= 1 {
		return 0
	}
	vol := 2 * float64(n-1) / float64(n) * float64(bytes)
	return vol/bw + 2*float64(n-1)*lat
}

// GradChunk is one layer's gradient contribution for the overlap model:
// Bytes of gradient become ready for communication ReadyAt seconds into the
// backward pass.
type GradChunk struct {
	Bytes   int64
	ReadyAt float64
}

// OverlapExposedTime simulates intra-iteration computation/communication
// overlap for data parallelism (the paper's "DP + overlap" baseline): layer
// gradients are all-reduced as soon as their backward completes, concurrently
// with remaining backward compute. It returns the communication time *not*
// hidden behind the backward pass of duration bwdTotal, given the all-reduce
// time per byte for this device group.
//
// The walk processes chunks in ready order on a single logical communication
// channel; exposure is whatever communication finishes after bwdTotal.
func OverlapExposedTime(chunks []GradChunk, bwdTotal, arSecPerByte float64) float64 {
	commFree := 0.0
	for _, ch := range chunks {
		start := ch.ReadyAt
		if commFree > start {
			start = commFree
		}
		commFree = start + float64(ch.Bytes)*arSecPerByte
	}
	if commFree <= bwdTotal {
		return 0
	}
	return commFree - bwdTotal
}

// ARSecPerByte returns the all-reduce seconds-per-byte for a device group,
// amortizing the latency terms over a 16 MiB fusion bucket, the granularity
// gradient fusion frameworks use.
func ARSecPerByte(c hardware.Cluster, devs []hardware.DeviceID) float64 {
	const bucket = 16 << 20
	t := AllReduceTime(c, devs, bucket)
	return t / float64(bucket)
}
