package comm

import (
	"math"
	"testing"
	"testing/quick"

	"dapple/internal/hardware"
)

func cluster() hardware.Cluster { return hardware.ConfigA(2) }

func TestTransferTime(t *testing.T) {
	if TransferTime(0, 1e9, 1e-3) != 0 {
		t.Fatal("zero bytes must be free")
	}
	got := TransferTime(1e9, 1e9, 1e-3)
	if math.Abs(got-1.001) > 1e-12 {
		t.Fatalf("TransferTime = %g", got)
	}
}

func TestP2PTime(t *testing.T) {
	c := cluster()
	if P2PTime(c, 3, 3, 1<<20) != 0 {
		t.Fatal("self transfer must be free")
	}
	intra := P2PTime(c, 0, 1, 1<<30)
	inter := P2PTime(c, 0, 8, 1<<30)
	if intra >= inter {
		t.Fatalf("intra %g should beat inter %g", intra, inter)
	}
}

func TestCrossStageNICBottleneck(t *testing.T) {
	c := cluster()
	srv0 := []hardware.DeviceID{0, 1, 2, 3, 4, 5, 6, 7}
	srv1 := []hardware.DeviceID{8, 9, 10, 11, 12, 13, 14, 15}
	bytes := int64(100 << 20)

	// 8:8 across servers: the full volume crosses one NIC.
	full := CrossStageTime(c, srv0, srv1, bytes)
	want := float64(bytes)/c.InterBW + c.InterLatency
	if math.Abs(full-want) > 1e-9 {
		t.Fatalf("8:8 cross = %g, want %g", full, want)
	}

	// Scattered stages (half of each on both servers) halve the NIC load.
	mix0 := []hardware.DeviceID{0, 1, 2, 3, 8, 9, 10, 11}
	mix1 := []hardware.DeviceID{4, 5, 6, 7, 12, 13, 14, 15}
	scattered := CrossStageTime(c, mix0, mix1, bytes)
	if scattered >= full {
		t.Fatalf("scattered %g should beat concentrated %g", scattered, full)
	}

	// Same-server stages ride NVLink.
	local := CrossStageTime(c, srv0[:4], srv0[4:], bytes)
	if local >= scattered {
		t.Fatalf("NVLink %g should beat Ethernet %g", local, scattered)
	}
}

func TestCrossStageSplitConcatOverhead(t *testing.T) {
	c := cluster()
	same := CrossStageTime(c, []hardware.DeviceID{0}, []hardware.DeviceID{8}, 1<<20)
	uneven := CrossStageTime(c, []hardware.DeviceID{0, 1}, []hardware.DeviceID{8}, 1<<20)
	if uneven <= same {
		t.Fatal("unequal replication must pay split/concat overhead")
	}
}

func TestCrossStageZero(t *testing.T) {
	c := cluster()
	if CrossStageTime(c, nil, []hardware.DeviceID{0}, 1) != 0 {
		t.Fatal("empty src must be free")
	}
	if CrossStageTime(c, []hardware.DeviceID{0}, []hardware.DeviceID{1}, 0) != 0 {
		t.Fatal("zero bytes must be free")
	}
}

func TestAllReduceTime(t *testing.T) {
	c := cluster()
	bytes := int64(1 << 30)
	if AllReduceTime(c, []hardware.DeviceID{3}, bytes) != 0 {
		t.Fatal("single device all-reduce must be free")
	}
	local := AllReduceTime(c, []hardware.DeviceID{0, 1, 2, 3, 4, 5, 6, 7}, bytes)
	cross := AllReduceTime(c, c.Devices(), bytes)
	if local >= cross {
		t.Fatalf("NVLink ring %g should beat hierarchical %g", local, cross)
	}
	// Hierarchical over 2 servers is dominated by the inter-server ring of
	// the full volume.
	interOnly := ringTime(2, bytes, c.InterBW, c.InterLatency)
	if cross < interOnly {
		t.Fatalf("hierarchical %g below inter floor %g", cross, interOnly)
	}
}

// Property: all-reduce time is monotone in volume and group size never makes
// a same-fabric ring cheaper per the 2(n-1)/n factor.
func TestAllReduceMonotoneProperty(t *testing.T) {
	c := hardware.ConfigB(16)
	f := func(n8 uint8, kb uint16) bool {
		n := int(n8%15) + 2
		bytes := int64(kb)*1024 + 1
		devs := c.Devices()[:n]
		t1 := AllReduceTime(c, devs, bytes)
		t2 := AllReduceTime(c, devs, 2*bytes)
		if t2 <= t1 {
			return false
		}
		if n < 15 {
			t3 := AllReduceTime(c, c.Devices()[:n+1], bytes)
			if t3 < t1 {
				return false // larger flat ring is never cheaper
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestOverlapExposedTime(t *testing.T) {
	// All communication fits under the backward pass: nothing exposed.
	chunks := []GradChunk{{Bytes: 1000, ReadyAt: 0.1}, {Bytes: 1000, ReadyAt: 0.2}}
	if got := OverlapExposedTime(chunks, 10.0, 1e-3); got != 0 {
		t.Fatalf("exposed = %g, want 0", got)
	}
	// Communication extends past backward: the tail is exposed.
	got := OverlapExposedTime([]GradChunk{{Bytes: 1000, ReadyAt: 1.0}}, 1.0, 1e-2)
	if math.Abs(got-10.0) > 1e-9 {
		t.Fatalf("exposed = %g, want 10", got)
	}
	// Serialization on the channel: second chunk waits for the first.
	got = OverlapExposedTime([]GradChunk{
		{Bytes: 1000, ReadyAt: 0},
		{Bytes: 1000, ReadyAt: 0},
	}, 15.0, 1e-2)
	if math.Abs(got-5.0) > 1e-9 {
		t.Fatalf("exposed = %g, want 5", got)
	}
}

func TestARSecPerByte(t *testing.T) {
	c := cluster()
	spb := ARSecPerByte(c, c.Devices())
	// Reconstructing a 1 GiB all-reduce from the per-byte rate should be
	// close to the direct model (latency amortization differs slightly).
	direct := AllReduceTime(c, c.Devices(), 1<<30)
	approx := spb * float64(int64(1)<<30)
	if math.Abs(direct-approx)/direct > 0.05 {
		t.Fatalf("per-byte rate drifts: direct %g vs approx %g", direct, approx)
	}
}
