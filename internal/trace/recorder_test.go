package trace

import (
	"strings"
	"testing"
)

func TestRecorderResultShape(t *testing.T) {
	r := NewRecorder()
	a := r.Resource("dev0")
	b := r.Resource("dev1")
	if r.Resource("dev0") != a {
		t.Fatal("Resource must intern")
	}
	r.Record(a, "F0.s0", "fwd", 0.0, 1.0)
	r.Record(b, "F0.s1", "fwd", 0.5, 2.0)
	r.Record(a, "B0.s0", "bwd", 1.0, 3.5)
	r.Record(b, "B0.s1", "bwd", 2.0, 3.0)

	res := r.Result()
	if len(res.Spans) != 4 {
		t.Fatalf("got %d spans", len(res.Spans))
	}
	if res.Makespan != 3.5 {
		t.Fatalf("makespan %g", res.Makespan)
	}
	if res.BusyTime[a] != 3.5 || res.BusyTime[b] != 2.5 {
		t.Fatalf("busy %v", res.BusyTime)
	}
	if res.ResourceIndex("dev1") != b || res.ResourceIndex("nope") != -1 {
		t.Fatal("ResourceIndex lookup failed")
	}
	// Spans are merged in start order with per-resource order preserved.
	for i := 1; i < len(res.Spans); i++ {
		if res.Spans[i].Start < res.Spans[i-1].Start {
			t.Fatal("spans not sorted by start")
		}
	}
	var devA []string
	for _, s := range res.Spans {
		if s.Resource == a {
			devA = append(devA, s.Name)
		}
	}
	if strings.Join(devA, ",") != "F0.s0,B0.s0" {
		t.Fatalf("per-resource order broken: %v", devA)
	}
	// The recorded result renders through the same Gantt path as simulated
	// results.
	if g := Gantt(res, 40); !strings.Contains(g, "dev0") {
		t.Fatalf("gantt missing resource row:\n%s", g)
	}
}

// TestRecorderReset checks a reset recorder keeps its interned resources and
// records a fresh, independent iteration without re-registration.
func TestRecorderReset(t *testing.T) {
	r := NewRecorder()
	a := r.Resource("dev0")
	r.Record(a, "F0.s0", "fwd", 0, 1)
	first := r.Result()
	if len(first.Spans) != 1 {
		t.Fatalf("first iteration recorded %d spans", len(first.Spans))
	}

	r.Reset()
	if r.Resource("dev0") != a {
		t.Fatal("Reset dropped interned resources")
	}
	r.Record(a, "F1.s0", "fwd", 0, 2)
	second := r.Result()
	if len(second.Spans) != 1 || second.Spans[0].Name != "F1.s0" {
		t.Fatalf("post-reset result carries stale spans: %+v", second.Spans)
	}
	if second.Makespan != 2 {
		t.Fatalf("post-reset makespan %g", second.Makespan)
	}
	// Results snapshot: the first result must be unaffected by the reset.
	if first.Spans[0].Name != "F0.s0" {
		t.Fatal("earlier Result mutated by Reset")
	}
}
