package trace

import (
	"sort"
	"time"

	"dapple/internal/sim"
)

// Recorder captures spans from a real concurrent execution in the same shape
// the discrete-event simulator emits, so a really-executed schedule and its
// simulated counterpart are directly comparable (and renderable by the same
// Gantt/Chrome tooling). Resources must be interned with Resource before the
// execution starts; during execution each resource must be driven by a single
// goroutine, which records its spans in its own execution order — the
// concurrency model of one worker goroutine per device.
type Recorder struct {
	start     time.Time
	resources []string
	spans     [][]sim.Span // per resource, in that resource's execution order
	resIndex  map[string]int
}

// NewRecorder returns a Recorder whose clock starts now.
func NewRecorder() *Recorder {
	return &Recorder{start: time.Now(), resIndex: map[string]int{}}
}

// Resource interns a named resource and returns its index. Not safe for
// concurrent use; intern every resource before recording starts.
func (r *Recorder) Resource(name string) int {
	if i, ok := r.resIndex[name]; ok {
		return i
	}
	i := len(r.resources)
	r.resources = append(r.resources, name)
	r.spans = append(r.spans, nil)
	r.resIndex[name] = i
	return i
}

// Now returns the recorder-relative monotonic time in seconds.
func (r *Recorder) Now() float64 {
	return time.Since(r.start).Seconds()
}

// Reset clears recorded spans and restarts the clock while keeping interned
// resources and per-resource span capacity, so a long-lived executor records
// iteration after iteration without re-allocating its trace buffers.
func (r *Recorder) Reset() {
	r.start = time.Now()
	for i := range r.spans {
		r.spans[i] = r.spans[i][:0]
	}
}

// Record appends one executed span to resource res. Distinct resources may
// record concurrently; a single resource must record from one goroutine, in
// start-time order.
func (r *Recorder) Record(res int, name, kind string, start, end float64) {
	r.spans[res] = append(r.spans[res], sim.Span{
		Task:     sim.TaskID(-1),
		Name:     name,
		Kind:     kind,
		Resource: res,
		Start:    start,
		End:      end,
	})
}

// Result assembles the recorded spans into a sim.Result: spans merged in
// start-time order (per-resource order preserved at equal starts), Makespan
// the latest end time, and BusyTime the per-resource span-duration sums.
// Memory traces are not recorded; PeakMem and MemTrace stay empty.
func (r *Recorder) Result() *sim.Result {
	n := 0
	for _, ss := range r.spans {
		n += len(ss)
	}
	res := &sim.Result{
		Spans:     make([]sim.Span, 0, n),
		Resources: append([]string(nil), r.resources...),
		BusyTime:  make([]float64, len(r.resources)),
	}
	for i, ss := range r.spans {
		for _, s := range ss {
			res.Spans = append(res.Spans, s)
			res.BusyTime[i] += s.End - s.Start
			if s.End > res.Makespan {
				res.Makespan = s.End
			}
		}
	}
	sort.SliceStable(res.Spans, func(i, j int) bool {
		return res.Spans[i].Start < res.Spans[j].Start
	})
	return res
}
