// Package trace renders simulator timelines: ASCII Gantt charts for terminal
// inspection (the Fig. 3/4 schedule diagrams) and Chrome trace-event JSON for
// chrome://tracing.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"dapple/internal/sim"
)

// Gantt renders the result's spans as an ASCII chart, one row per resource,
// width columns wide. Forward tasks render as their micro-batch digit,
// backward tasks as letters ('a' for micro-batch 0), communication as '-',
// all-reduce as '#', idle as '.'.
func Gantt(r *sim.Result, width int) string {
	if r.Makespan == 0 || width <= 0 {
		return ""
	}
	rows := make([][]byte, len(r.Resources))
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
	}
	scale := float64(width) / r.Makespan
	for _, s := range r.Spans {
		if s.Resource == sim.NoResource || s.End <= s.Start {
			continue
		}
		lo := int(s.Start * scale)
		hi := int(s.End * scale)
		if hi <= lo {
			hi = lo + 1
		}
		if hi > width {
			hi = width
		}
		ch := glyph(s)
		for c := lo; c < hi; c++ {
			rows[s.Resource][c] = ch
		}
	}
	var b strings.Builder
	nameW := 0
	for _, n := range r.Resources {
		if len(n) > nameW {
			nameW = len(n)
		}
	}
	for i, n := range r.Resources {
		fmt.Fprintf(&b, "%-*s |%s|\n", nameW, n, rows[i])
	}
	fmt.Fprintf(&b, "%-*s  0%*s\n", nameW, "", width, fmt.Sprintf("%.1fms", r.Makespan*1e3))
	return b.String()
}

// glyph picks the Gantt character for a span.
func glyph(s sim.Span) byte {
	mb := microBatchOf(s.Name)
	switch s.Kind {
	case "fwd":
		if mb >= 0 && mb < 10 {
			return byte('0' + mb)
		}
		return 'F'
	case "bwd":
		if mb >= 0 && mb < 26 {
			return byte('a' + mb)
		}
		return 'B'
	case "comm":
		return '-'
	case "allreduce":
		return '#'
	default:
		return '+'
	}
}

// microBatchOf parses the micro-batch index from task names like "F12.s0".
func microBatchOf(name string) int {
	i := 0
	for i < len(name) && (name[i] < '0' || name[i] > '9') {
		i++
	}
	j := i
	n := 0
	for j < len(name) && name[j] >= '0' && name[j] <= '9' {
		n = n*10 + int(name[j]-'0')
		j++
	}
	if j == i {
		return -1
	}
	return n
}

// chromeEvent is one complete ("ph":"X") trace event.
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`  // microseconds
	Dur  float64 `json:"dur"` // microseconds
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

// WriteChrome emits the result as Chrome trace-event JSON.
func WriteChrome(w io.Writer, r *sim.Result) error {
	evs := make([]chromeEvent, 0, len(r.Spans))
	for _, s := range r.Spans {
		if s.Resource == sim.NoResource {
			continue
		}
		evs = append(evs, chromeEvent{
			Name: s.Name,
			Cat:  s.Kind,
			Ph:   "X",
			Ts:   s.Start * 1e6,
			Dur:  (s.End - s.Start) * 1e6,
			Pid:  0,
			Tid:  s.Resource,
		})
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].Ts < evs[j].Ts })
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": evs})
}

// MemCurve renders a device's memory-over-time trace as an ASCII sparkline of
// the given width, normalized to the trace's peak. It returns the rendered
// line and the peak bytes.
func MemCurve(points []sim.MemPoint, makespan float64, width int) (string, int64) {
	if len(points) == 0 || width <= 0 || makespan <= 0 {
		return "", 0
	}
	var peak int64
	for _, p := range points {
		if p.Bytes > peak {
			peak = p.Bytes
		}
	}
	if peak == 0 {
		return strings.Repeat(" ", width), 0
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	out := make([]rune, width)
	cur := int64(0)
	pi := 0
	for c := 0; c < width; c++ {
		t := makespan * float64(c+1) / float64(width)
		for pi < len(points) && points[pi].Time <= t {
			cur = points[pi].Bytes
			pi++
		}
		idx := int(float64(cur) / float64(peak) * float64(len(levels)-1))
		out[c] = levels[idx]
	}
	return string(out), peak
}
