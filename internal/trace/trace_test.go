package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"dapple/internal/sim"
)

// tinyResult builds a 2-resource run with one task each.
func tinyResult() *sim.Result {
	g := sim.NewGraph()
	r0, r1 := g.Resource("stage0"), g.Resource("stage1")
	a := g.Add(sim.Task{Name: "F0.s0", Kind: "fwd", Resource: r0, Duration: 1})
	b := g.Add(sim.Task{Name: "B0.s1", Kind: "bwd", Resource: r1, Duration: 2})
	g.AddDep(b, a)
	g.Add(sim.Task{Name: "CF0.s0", Kind: "comm", Resource: r0, Duration: 0.5})
	return g.Run()
}

func TestGanttRendersAllResources(t *testing.T) {
	res := tinyResult()
	out := Gantt(res, 60)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // 2 resources + axis
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "0") {
		t.Fatalf("forward glyph missing: %q", lines[0])
	}
	if !strings.Contains(lines[1], "a") {
		t.Fatalf("backward glyph missing: %q", lines[1])
	}
	if !strings.Contains(lines[0], "-") {
		t.Fatalf("comm glyph missing: %q", lines[0])
	}
}

func TestGanttEmpty(t *testing.T) {
	if Gantt(&sim.Result{}, 40) != "" {
		t.Fatal("empty result should render empty")
	}
}

func TestMicroBatchParsing(t *testing.T) {
	cases := map[string]int{"F12.s0": 12, "B3.s4": 3, "AR.s1": 1, "init": -1}
	for name, want := range cases {
		if got := microBatchOf(name); got != want {
			t.Errorf("microBatchOf(%q) = %d, want %d", name, got, want)
		}
	}
}

func TestWriteChromeValidJSON(t *testing.T) {
	res := tinyResult()
	var buf bytes.Buffer
	if err := WriteChrome(&buf, res); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("%d events", len(doc.TraceEvents))
	}
	for i := 1; i < len(doc.TraceEvents); i++ {
		if doc.TraceEvents[i].Ts < doc.TraceEvents[i-1].Ts {
			t.Fatal("events not time-sorted")
		}
	}
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" || e.Dur < 0 {
			t.Fatalf("bad event %+v", e)
		}
	}
}

func TestMemCurve(t *testing.T) {
	points := []sim.MemPoint{{Time: 0, Bytes: 100}, {Time: 1, Bytes: 400}, {Time: 2, Bytes: 0}}
	curve, peak := MemCurve(points, 3, 30)
	if peak != 400 {
		t.Fatalf("peak %d", peak)
	}
	if len([]rune(curve)) != 30 {
		t.Fatalf("width %d", len([]rune(curve)))
	}
	if _, p := MemCurve(nil, 1, 10); p != 0 {
		t.Fatal("empty trace should have zero peak")
	}
}

func TestMemCurveMonotoneGlyphs(t *testing.T) {
	// A strictly growing trace must never render a lower level after a
	// higher one.
	var points []sim.MemPoint
	for i := 0; i < 10; i++ {
		points = append(points, sim.MemPoint{Time: float64(i), Bytes: int64(i+1) * 50})
	}
	curve, _ := MemCurve(points, 10, 40)
	runes := []rune(curve)
	levels := []rune("▁▂▃▄▅▆▇█")
	idx := func(r rune) int {
		for i, l := range levels {
			if l == r {
				return i
			}
		}
		return -1
	}
	for i := 1; i < len(runes); i++ {
		if idx(runes[i]) < idx(runes[i-1]) {
			t.Fatalf("non-monotone render: %s", curve)
		}
	}
}
