package transport

import (
	"testing"
	"time"

	"dapple/internal/tensor"
)

// TestRetireTwiceKeepsFloorMonotone retires the same mesh twice — once with
// a higher floor, once with a lower one — and checks the floor never
// regresses: the rebuilt edge must open at the highest floor ever retired to
// on both ranks, and carry traffic.
func TestRetireTwiceKeepsFloorMonotone(t *testing.T) {
	ts := mesh(t, 2)
	id := EdgeID{Bound: 0, Dir: Fwd, S: 0, Q: 0}
	if _, err := ts[0].OpenEdge(id, 1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := ts[1].OpenEdge(id, 0, 2); err != nil {
		t.Fatal(err)
	}
	for _, tr := range ts {
		tr.Retire(7)
		tr.Retire(3) // stale lower floor: must not regress the fence
	}
	send, err := ts[0].OpenEdge(id, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	recv, err := ts[1].OpenEdge(id, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if e := send.(*tcpEdge).st.epoch; e != 7 {
		t.Fatalf("sender re-opened at epoch %d after Retire(7); Retire(3) regressed the floor", e)
	}
	if e := recv.(*tcpEdge).st.epoch; e != 7 {
		t.Fatalf("receiver re-opened at epoch %d after Retire(7); Retire(3) regressed the floor", e)
	}
	mat := tensor.New(1, 1)
	mat.Data[0] = 11
	if err := send.SendCopy(0, mat); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		msg, err := recv.Recv(make(chan struct{}))
		if err == nil && msg.Data.Data[0] != 11 {
			t.Error("rebuilt edge delivered wrong payload")
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("double-retired edge never delivered after rebuild")
	}
}

// TestRetireZeroInFlight retires a mesh with no open edges or groups and no
// frames in flight: the call must return immediately and leave the transport
// fully usable — the degenerate case of a recovery where the failure hit
// between steps.
func TestRetireZeroInFlight(t *testing.T) {
	ts := mesh(t, 2)
	done := make(chan struct{})
	go func() {
		ts[0].Retire(4)
		ts[1].Retire(4)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Retire with zero in-flight frames blocked")
	}
	send, err := ts[0].OpenEdge(EdgeID{Bound: 0, Dir: Fwd, S: 0, Q: 0}, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	recv, err := ts[1].OpenEdge(EdgeID{Bound: 0, Dir: Fwd, S: 0, Q: 0}, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	mat := tensor.New(1, 1)
	mat.Data[0] = 3
	if err := send.SendCopy(0, mat); err != nil {
		t.Fatal(err)
	}
	if _, err := recv.Recv(make(chan struct{})); err != nil {
		t.Fatal(err)
	}
}

// TestRetireWakesHeadOfStreamHold parks a reader pump in a head-of-stream
// hold — a frame for an edge generation the local endpoint never opened —
// and retires past it: the hold must wake, discard the retired frame and
// unwedge the connection, or every later frame on that connection (including
// control traffic) would be stuck behind it forever.
func TestRetireWakesHeadOfStreamHold(t *testing.T) {
	ts := mesh(t, 2)
	id := EdgeID{Bound: 0, Dir: Fwd, S: 0, Q: 0}
	send, err := ts[0].OpenEdge(id, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Rank 1 never opens the edge: the frame parks its reader pump at the
	// head of the stream, blocking everything behind it.
	mat := tensor.New(1, 1)
	mat.Data[0] = 9
	if err := send.SendCopy(0, mat); err != nil {
		t.Fatal(err)
	}
	if err := ts[0].SendControl(1, []byte("behind-the-hold")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ts[1].Ctrl():
		t.Fatal("control message overtook the held edge frame")
	case <-time.After(50 * time.Millisecond):
		// Parked, as expected.
	}
	ts[1].Retire(5)
	select {
	case cm := <-ts[1].Ctrl():
		if string(cm.Data) != "behind-the-hold" {
			t.Fatalf("unexpected control payload %q", cm.Data)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Retire did not wake the head-of-stream hold; connection wedged")
	}
}

// TestRetireRacesHeadOfStreamHold races Retire against frames arriving for a
// not-yet-opened generation: whichever side of the race each frame lands on,
// the connection must stay live and the post-retire generation must deliver
// exactly its own traffic.
func TestRetireRacesHeadOfStreamHold(t *testing.T) {
	ts := mesh(t, 2)
	id := EdgeID{Bound: 0, Dir: Fwd, S: 0, Q: 0}
	send, err := ts[0].OpenEdge(id, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Rank 1 never opened generation 1; frames stream in while it retires.
	go func() {
		mat := tensor.New(1, 1)
		for i := 0; i < 32; i++ {
			mat.Data[0] = float64(i)
			if err := send.SendCopy(i, mat); err != nil {
				return
			}
		}
	}()
	time.Sleep(time.Millisecond) // let some frames land pre-retire
	ts[1].Retire(3)
	ts[0].Retire(3)

	// Both sides rebuild at the common floor; only new-generation traffic
	// may come out.
	send2, err := ts[0].OpenEdge(id, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	recv2, err := ts[1].OpenEdge(id, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	fresh := tensor.New(1, 1)
	fresh.Data[0] = 1234
	if err := send2.SendCopy(99, fresh); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		msg, err := recv2.Recv(make(chan struct{}))
		if err == nil && (msg.M != 99 || msg.Data.Data[0] != 1234) {
			t.Errorf("post-retire edge delivered stale frame m=%d v=%v", msg.M, msg.Data.Data[0])
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("post-retire generation never delivered; retired hold wedged the stream")
	}
}
