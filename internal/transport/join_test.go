package transport

import (
	"context"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// joinListener builds a listening transport with rank 0 that accepts joins.
func joinListener(t *testing.T) *TCP {
	t.Helper()
	tr, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tr.SetRank(0)
	tr.SetAcceptJoins(true)
	t.Cleanup(func() { tr.Close() })
	return tr
}

// TestJoinGrantAdmitsFreshRank runs the membership handshake end to end: the
// joiner's request payload must surface on Joins, the grant must carry the
// reply payload and both ranks, and the admitted connection must carry
// control traffic in both directions like any launch-time peer.
func TestJoinGrantAdmitsFreshRank(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	coord := joinListener(t)

	granted := make(chan error, 1)
	go func() {
		select {
		case j := <-coord.Joins():
			if string(j.Payload) != "hello-join" {
				j.Reject("bad payload")
				granted <- nil
				return
			}
			granted <- j.Grant(5, []byte("welcome"))
		case <-ctx.Done():
			granted <- ctx.Err()
		}
	}()

	joiner := NewTCP()
	defer joiner.Close()
	rank, granter, reply, err := joiner.DialJoin(ctx, coord.Addr(), []byte("hello-join"))
	if err != nil {
		t.Fatal(err)
	}
	if rank != 5 || granter != 0 {
		t.Fatalf("granted rank %d from rank %d, want 5 from 0", rank, granter)
	}
	if string(reply) != "welcome" {
		t.Fatalf("grant reply %q, want %q", reply, "welcome")
	}
	if joiner.Rank() != 5 {
		t.Fatalf("joiner rank %d after grant, want 5", joiner.Rank())
	}
	if err := <-granted; err != nil {
		t.Fatalf("Grant: %v", err)
	}

	// The admitted connection is a full peer link: control traffic flows both
	// ways under the granted ranks.
	if err := joiner.SendControl(0, []byte("up")); err != nil {
		t.Fatal(err)
	}
	select {
	case cm := <-coord.Ctrl():
		if cm.Peer != 5 || string(cm.Data) != "up" {
			t.Fatalf("coordinator got %q from rank %d, want %q from 5", cm.Data, cm.Peer, "up")
		}
	case <-ctx.Done():
		t.Fatal("coordinator never received the joiner's control message")
	}
	if err := coord.SendControl(5, []byte("down")); err != nil {
		t.Fatal(err)
	}
	select {
	case cm := <-joiner.Ctrl():
		if cm.Peer != 0 || string(cm.Data) != "down" {
			t.Fatalf("joiner got %q from rank %d, want %q from 0", cm.Data, cm.Peer, "down")
		}
	case <-ctx.Done():
		t.Fatal("joiner never received the coordinator's control message")
	}
}

// TestJoinRejectedWhenNotAccepting checks the default admission policy: a
// listener that never enabled joins must reject the handshake on the wire
// with a reason, not hang or accept silently.
func TestJoinRejectedWhenNotAccepting(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	coord, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord.SetRank(0)
	defer coord.Close()

	joiner := NewTCP()
	defer joiner.Close()
	_, _, _, err = joiner.DialJoin(ctx, coord.Addr(), []byte("x"))
	if err == nil {
		t.Fatal("DialJoin succeeded against a listener that does not accept joins")
	}
	if !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("DialJoin error %v does not report the rejection", err)
	}
}

// TestJoinExplicitReject checks the session layer's rejection path (version
// mismatch, bad payload): the reason must surface in the joiner's error.
func TestJoinExplicitReject(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	coord := joinListener(t)
	go func() {
		select {
		case j := <-coord.Joins():
			j.Reject("version 9, want 2")
		case <-ctx.Done():
		}
	}()
	joiner := NewTCP()
	defer joiner.Close()
	_, _, _, err := joiner.DialJoin(ctx, coord.Addr(), []byte("x"))
	if err == nil {
		t.Fatal("DialJoin succeeded after an explicit Reject")
	}
	if !strings.Contains(err.Error(), "version 9, want 2") {
		t.Fatalf("DialJoin error %v does not carry the rejection reason", err)
	}
}

// TestDialBackoffSchedulePinned pins DialRetry's backoff schedule from a
// seed: the schedule must be reproducible, every delay must stay inside the
// jittered envelope of its exponential step, and distinct seeds must walk
// distinct schedules (the anti-thundering-herd property).
func TestDialBackoffSchedulePinned(t *testing.T) {
	schedule := func(seed int64, n int) []time.Duration {
		rng := rand.New(rand.NewSource(seed))
		ds := make([]time.Duration, n)
		for k := range ds {
			ds[k] = dialBackoff(rng, k)
		}
		return ds
	}

	const n = 8
	a := schedule(42, n)
	b := schedule(42, n)
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("attempt %d: same seed gave %v then %v", k, a[k], b[k])
		}
	}

	// Every delay sits inside the jitter envelope [0.75, 1.25) of its
	// exponential step, capped at dialBackoffMax.
	for k, d := range a {
		base := dialBackoffBase << k
		if base > dialBackoffMax {
			base = dialBackoffMax
		}
		lo := time.Duration(0.75 * float64(base))
		hi := time.Duration(1.25 * float64(base))
		if d < lo || d >= hi {
			t.Fatalf("attempt %d: delay %v outside jitter envelope [%v, %v)", k, d, lo, hi)
		}
	}
	// The exponential steps must actually grow until the cap.
	if a[0] >= time.Duration(1.25*float64(dialBackoffBase)) {
		t.Fatalf("first delay %v exceeds the base envelope", a[0])
	}
	if a[n-1] < time.Duration(0.75*float64(dialBackoffMax)) {
		t.Fatalf("late delay %v never reached the %v cap's envelope", a[n-1], dialBackoffMax)
	}

	// Distinct (rank, peer, addr) identities derive distinct seeds, which
	// must produce distinct schedules somewhere in the first attempts.
	s1 := dialSeed(1, 0, "127.0.0.1:9999")
	s2 := dialSeed(2, 0, "127.0.0.1:9999")
	if s1 == s2 {
		t.Fatal("different ranks derived the same dial seed")
	}
	c := schedule(s1, n)
	d := schedule(s2, n)
	same := true
	for k := range c {
		if c[k] != d[k] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical backoff schedules")
	}
}
