// Package transport carries the training runtime's cross-stage tensor
// traffic and gradient collectives over pluggable backends. An Edge is one
// directed (sender replica, receiver replica) link of a pipeline stage cut;
// a Group is one replicated stage's gradient all-reduce domain. The Inproc
// backend realizes both with Go channels inside one address space — the
// zero-allocation steady-state path the executor always used — while the TCP
// backend frames the same messages over sockets so stage replicas can live
// in separate worker processes (paper §III's real-cluster setting).
package transport

import (
	"errors"
	"sync/atomic"

	"dapple/internal/tensor"
)

// ErrAborted is returned by blocking transport operations unblocked by the
// caller's abort channel.
var ErrAborted = errors.New("transport: aborted")

// ErrClosed is returned by operations on a transport that has been closed or
// has failed.
var ErrClosed = errors.New("transport: closed")

// Dir is an edge's direction across a stage cut.
type Dir uint8

// Edge directions: Fwd edges carry activations from stage i to i+1, Bwd
// edges carry gradients from stage i+1 back to i.
const (
	Fwd Dir = iota
	Bwd
)

// EdgeID names one directed link of a stage cut: the cut index (between
// stages Bound and Bound+1), the direction, and the (sender replica S,
// receiver replica Q) pair whose row ranges intersect. Both endpoints of a
// cross-process edge open the same EdgeID; the ID is the demultiplexing key
// on a shared connection.
type EdgeID struct {
	// Bound is the stage-cut index (between stages Bound and Bound+1).
	Bound int
	// Dir is the transfer direction across the cut.
	Dir Dir
	// S is the sender-side replica index of the stage that produces data on
	// this edge (the upstream stage for Fwd, the downstream stage for Bwd).
	S int
	// Q is the receiver-side replica index.
	Q int
}

// Msg is one received micro-batch block: the micro-batch index, the tensor,
// and the free list the receiver must Recycle the tensor into once consumed
// (nil when Data is a view into sender-owned storage, which needs no
// recycling).
type Msg struct {
	// M is the micro-batch index the block belongs to.
	M int
	// Data holds the block's rows.
	Data *tensor.Matrix
	// Free is the recycle destination for Data; nil for zero-copy views.
	Free chan *tensor.Matrix
}

// Edge is one directed tensor link between two stage replicas. SendView
// publishes a view of sender-owned storage without copying: the storage must
// stay valid until the sender's own backward of micro-batch m, which by
// pipeline causality (the receiver's gradient for m flows back through the
// sender before that backward) outlives every read and every in-flight
// serialization of the view. SendCopy copies data before returning, so the
// caller may reuse it immediately. Sends on an edge sized for the step's
// micro-batch count never block; Recv blocks until a message or abort.
type Edge interface {
	// SendView publishes micro-batch m as a view of sender-owned storage.
	SendView(m int, view *tensor.Matrix) error
	// SendCopy sends micro-batch m by value; data is free for reuse on return.
	SendCopy(m int, data *tensor.Matrix) error
	// Recv returns the next message, or ErrAborted once abort closes.
	Recv(abort <-chan struct{}) (Msg, error)
}

// Group is one replicated stage's cross-process gradient all-reduce domain.
// AllReduce exchanges buf with every member and replaces it with the
// element-wise sum over all members, computed in the same deterministic
// member order on every rank so all members end bit-identical.
type Group interface {
	// AllReduce sums buf across the group in place.
	AllReduce(buf []float64, abort <-chan struct{}) error
}

// Transport opens edges and collective groups between training workers. The
// in-process backend connects goroutines; the TCP backend connects worker
// processes.
type Transport interface {
	// OpenEdge opens (or re-opens, after a geometry change) the edge id
	// toward peer, buffered for cap in-flight micro-batches.
	OpenEdge(id EdgeID, peer, cap int) (Edge, error)
	// OpenGroup opens collective group gid over the member ranks, for
	// size-element vectors.
	OpenGroup(gid int, members []int, size int) (Group, error)
	// Close releases the transport; blocked operations return ErrClosed.
	Close() error
}

// bufMisses counts transfer-buffer leases that found a recycled buffer of
// the wrong shape with insufficient capacity and had to drop it for a fresh
// allocation — nonzero only across micro-batch geometry changes.
var bufMisses atomic.Int64

// BufMisses returns the cumulative count of recycled transfer buffers
// dropped because their capacity could not hold a newly requested shape.
func BufMisses() int64 { return bufMisses.Load() }

// LeaseBuf leases a rows x cols transfer buffer from a free list. A recycled
// buffer of the right shape is returned as-is; one of a different shape but
// sufficient capacity is resliced and re-leased (geometry changes reuse
// warm buffers instead of silently discarding them); one too small is
// dropped and the miss counted in BufMisses. An empty free list allocates.
// The returned buffer's contents are undefined.
func LeaseBuf(free chan *tensor.Matrix, rows, cols int) *tensor.Matrix {
	select {
	case b := <-free:
		if b.Rows == rows && b.Cols == cols {
			return b
		}
		if cap(b.Data) >= rows*cols {
			b.Rows, b.Cols, b.Data = rows, cols, b.Data[:rows*cols]
			return b
		}
		bufMisses.Add(1)
	default:
	}
	return tensor.New(rows, cols)
}

// Recycle returns a consumed transfer buffer to its free list, dropping it
// when the list is full. A nil free list (zero-copy views) is a no-op.
func Recycle(free chan *tensor.Matrix, b *tensor.Matrix) {
	if free == nil {
		return
	}
	select {
	case free <- b:
	default:
	}
}
