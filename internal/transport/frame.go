package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Frame types carried by the TCP backend. Every frame is a fixed 36-byte
// header followed by a length-prefixed payload (Header.N bytes).
const (
	// FrameHello is the first frame on every connection: A carries the
	// dialer's rank, no payload.
	FrameHello = 1
	// FrameControl carries an opaque control-plane payload (the train
	// package's JSON handshake messages).
	FrameControl = 2
	// FrameData carries one edge micro-batch block: A/B/C+Flags encode the
	// EdgeID, Epoch the edge generation, M the micro-batch, Rows x Cols the
	// block shape.
	FrameData = 3
	// FrameGroup carries one all-reduce contribution: A is the group id, B
	// the sender's rank.
	FrameGroup = 4
	// FrameTensor carries an out-of-band tensor (weight broadcast, step
	// inputs): A is the tensor class, M the index within the class.
	FrameTensor = 5
	// FrameHeartbeat is the liveness plane's keep-alive: no payload, no
	// routing. Receiving any frame refreshes the peer's last-heard clock;
	// heartbeats exist to generate that traffic on an otherwise idle mesh.
	FrameHeartbeat = 6
	// FrameJoinReq opens a membership handshake instead of HELLO: the dialer
	// has no rank yet and asks to be admitted. The payload is an opaque
	// session-layer request (version, listen address).
	FrameJoinReq = 7
	// FrameJoinGrant answers a FrameJoinReq: A carries the granted rank (-1
	// for a rejection), B the granter's rank, and the payload an opaque
	// session-layer reply (peer addresses, manifest hash) or a rejection
	// reason.
	FrameJoinGrant = 8
)

// HeaderSize is the encoded size of a frame Header in bytes.
const HeaderSize = 36

// frameMagic guards against desynchronized or foreign byte streams.
const frameMagic = 0xDA71

// MaxFramePayload caps a frame's payload length; a header announcing more is
// rejected as corrupt before any allocation.
const MaxFramePayload = 1 << 28

// Header is the fixed preamble of every TCP frame. A, B, C, Epoch and M are
// type-specific routing fields; Rows and Cols describe tensor payload shape;
// N is the payload length in bytes.
type Header struct {
	// Type is one of the Frame* constants.
	Type uint8
	// Flags holds type-specific bits (the edge Dir for FrameData).
	Flags uint8
	// A is the first routing field (edge bound, group id, tensor class).
	A int32
	// B is the second routing field (edge sender replica, sender rank).
	B int32
	// C is the third routing field (edge receiver replica).
	C int32
	// Epoch is the edge generation the frame belongs to.
	Epoch uint32
	// M is the micro-batch or tensor index.
	M int32
	// Rows is the tensor payload's row count.
	Rows int32
	// Cols is the tensor payload's column count.
	Cols int32
	// N is the payload length in bytes.
	N uint32
}

// encode writes the header into b[:HeaderSize].
func (h Header) encode(b []byte) {
	binary.LittleEndian.PutUint16(b[0:], frameMagic)
	b[2] = h.Type
	b[3] = h.Flags
	binary.LittleEndian.PutUint32(b[4:], uint32(h.A))
	binary.LittleEndian.PutUint32(b[8:], uint32(h.B))
	binary.LittleEndian.PutUint32(b[12:], uint32(h.C))
	binary.LittleEndian.PutUint32(b[16:], h.Epoch)
	binary.LittleEndian.PutUint32(b[20:], uint32(h.M))
	binary.LittleEndian.PutUint32(b[24:], uint32(h.Rows))
	binary.LittleEndian.PutUint32(b[28:], uint32(h.Cols))
	binary.LittleEndian.PutUint32(b[32:], h.N)
}

// decodeHeader parses and validates b[:HeaderSize].
func decodeHeader(b []byte) (Header, error) {
	if m := binary.LittleEndian.Uint16(b[0:]); m != frameMagic {
		return Header{}, fmt.Errorf("transport: bad frame magic %#04x", m)
	}
	h := Header{
		Type:  b[2],
		Flags: b[3],
		A:     int32(binary.LittleEndian.Uint32(b[4:])),
		B:     int32(binary.LittleEndian.Uint32(b[8:])),
		C:     int32(binary.LittleEndian.Uint32(b[12:])),
		Epoch: binary.LittleEndian.Uint32(b[16:]),
		M:     int32(binary.LittleEndian.Uint32(b[20:])),
		Rows:  int32(binary.LittleEndian.Uint32(b[24:])),
		Cols:  int32(binary.LittleEndian.Uint32(b[28:])),
		N:     binary.LittleEndian.Uint32(b[32:]),
	}
	if h.Type < FrameHello || h.Type > FrameJoinGrant {
		return Header{}, fmt.Errorf("transport: unknown frame type %d", h.Type)
	}
	if h.N > MaxFramePayload {
		return Header{}, fmt.Errorf("transport: frame payload %d exceeds limit", h.N)
	}
	if h.Type == FrameData || h.Type == FrameTensor {
		if h.Rows < 0 || h.Cols < 0 {
			return Header{}, fmt.Errorf("transport: negative tensor shape %dx%d", h.Rows, h.Cols)
		}
		if want := uint64(h.Rows) * uint64(h.Cols) * 8; want != uint64(h.N) {
			return Header{}, fmt.Errorf("transport: %dx%d tensor frame with %d payload bytes", h.Rows, h.Cols, h.N)
		}
	}
	return h, nil
}

// FrameWriter encodes frames onto a buffered stream. It is not safe for
// concurrent use; the TCP backend gives each connection one writer pump.
type FrameWriter struct {
	w       *bufio.Writer
	hdr     [HeaderSize]byte
	scratch []byte
}

// NewFrameWriter wraps w in a buffered frame encoder.
func NewFrameWriter(w io.Writer) *FrameWriter {
	return &FrameWriter{w: bufio.NewWriterSize(w, 1<<16)}
}

// WriteBytes writes a frame with an opaque payload, setting h.N.
func (fw *FrameWriter) WriteBytes(h Header, payload []byte) error {
	h.N = uint32(len(payload))
	h.encode(fw.hdr[:])
	if _, err := fw.w.Write(fw.hdr[:]); err != nil {
		return err
	}
	_, err := fw.w.Write(payload)
	return err
}

// WriteF64 writes a frame whose payload is vals encoded little-endian,
// setting h.N. The encode scratch is reused across calls.
func (fw *FrameWriter) WriteF64(h Header, vals []float64) error {
	n := len(vals) * 8
	if cap(fw.scratch) < n {
		fw.scratch = make([]byte, n)
	}
	buf := fw.scratch[:n]
	encodeF64(buf, vals)
	return fw.WriteBytes(h, buf)
}

// encodeF64 encodes vals little-endian into dst; len(dst) must be
// 8*len(vals). The writer pumps use it to stage float64 payloads directly
// into their vectored-write arenas.
func encodeF64(dst []byte, vals []float64) {
	for i, v := range vals {
		binary.LittleEndian.PutUint64(dst[i*8:], math.Float64bits(v))
	}
}

// Flush forces buffered frames onto the underlying stream.
func (fw *FrameWriter) Flush() error { return fw.w.Flush() }

// FrameReader decodes frames from a buffered stream: ReadHeader, then
// exactly one payload call (or Discard) per frame. Not safe for concurrent
// use.
type FrameReader struct {
	r       *bufio.Reader
	hdr     [HeaderSize]byte
	scratch []byte
}

// NewFrameReader wraps r in a buffered frame decoder.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: bufio.NewReaderSize(r, 1<<16)}
}

// ReadHeader reads and validates the next frame header. A stream torn
// mid-header returns io.ErrUnexpectedEOF.
func (fr *FrameReader) ReadHeader() (Header, error) {
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		return Header{}, err
	}
	return decodeHeader(fr.hdr[:])
}

// ReadBytes fills p with the frame's payload; len(p) must equal Header.N.
func (fr *FrameReader) ReadBytes(p []byte) error {
	_, err := io.ReadFull(fr.r, p)
	return err
}

// ReadF64 decodes the frame's payload into dst; len(dst)*8 must equal
// Header.N. A stream torn mid-payload returns io.ErrUnexpectedEOF.
func (fr *FrameReader) ReadF64(dst []float64) error {
	n := len(dst) * 8
	if cap(fr.scratch) < n {
		fr.scratch = make([]byte, n)
	}
	buf := fr.scratch[:n]
	if _, err := io.ReadFull(fr.r, buf); err != nil {
		return err
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return nil
}

// Discard skips n payload bytes (a stale-epoch frame's body).
func (fr *FrameReader) Discard(n uint32) error {
	_, err := fr.r.Discard(int(n))
	return err
}
