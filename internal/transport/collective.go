package transport

import (
	"sync"

	"dapple/internal/tensor"
)

// This file implements the in-process collectives of the replica
// synchronization path. Both algorithms accumulate every element in one
// canonical participant order — rank 0, 1, ..., n-1 for Ring; member order
// then group order for Hier — through the shared tensor.VecAddInto kernel,
// so a sum over any sub-range of the gradient vector is bit-identical to the
// same sub-range of a whole-vector reduction. That invariant is what lets
// the executor bucket gradients and the collectives chunk transfers freely
// without perturbing training results.

// ringChunkTarget is the element count one pipeline chunk aims for when the
// caller does not fix a chunk count: small enough that reduce of chunk k
// overlaps broadcast of chunk k-1, big enough to amortize the channel hops.
const ringChunkTarget = 4096

// ringMaxChunks bounds the auto-picked pipeline depth (and the scratch a
// Ring retains).
const ringMaxChunks = 8

// Ring is the reusable scratch of one in-process all-reduce group, organized
// as a pipelined chain: each chunk of the vector travels rank 0 → 1 → ... →
// n-1 accumulating every rank's contribution in rank order, then travels
// back broadcasting the total. Chunks pipeline — while chunk k is still
// reducing up the chain, chunk k-1 is already broadcasting down — so all
// ranks stay busy, and per-rank traffic matches the classic rotating ring
// (every rank sends and receives the full vector once per phase). Unlike the
// rotating ring, whose per-chunk accumulation order depends on which rank a
// chunk starts at, the chain order is the same for every chunk, making
// results independent of the chunk count and bit-identical across ranks.
type Ring struct {
	n, size, chunks int
	fwd             []chan []float64 // fwd[i]: reduce traffic rank i → i+1
	bwd             []chan []float64 // bwd[i]: broadcast traffic rank i+1 → i
	free            chan []float64   // recycled chunk scratch, cap chunks
}

// NewRing builds scratch for n participants with size-element vectors,
// auto-picking the pipeline chunk count from the vector size.
func NewRing(n, size int) *Ring { return NewRingChunks(n, size, 0) }

// NewRingChunks is NewRing with an explicit pipeline chunk count; chunks
// < 1 auto-picks from the vector size. The result of AllReduce is
// bit-identical for every chunk count.
func NewRingChunks(n, size, chunks int) *Ring {
	if chunks < 1 {
		chunks = size / ringChunkTarget
		if chunks < 1 {
			chunks = 1
		}
		if chunks > ringMaxChunks {
			chunks = ringMaxChunks
		}
	}
	if chunks > size && size > 0 {
		chunks = size
	}
	r := &Ring{
		n: n, size: size, chunks: chunks,
		fwd:  make([]chan []float64, n-1),
		bwd:  make([]chan []float64, n-1),
		free: make(chan []float64, chunks),
	}
	for i := 0; i < n-1; i++ {
		r.fwd[i] = make(chan []float64, 1)
		r.bwd[i] = make(chan []float64, 1)
	}
	maxChunk := (size + chunks - 1) / chunks
	for i := 0; i < chunks; i++ {
		r.free <- make([]float64, maxChunk)
	}
	return r
}

// chunk returns the [lo, hi) bounds of pipeline chunk c.
func (r *Ring) chunk(c int) (int, int) {
	base, extra := r.size/r.chunks, r.size%r.chunks
	lo := c*base + min(c, extra)
	sz := base
	if c < extra {
		sz++
	}
	return lo, lo + sz
}

// AllReduce sums bufs (len n, each size elements) in place. Every buffer
// ends holding the element-wise sum accumulated in canonical rank order
// (((buf0 + buf1) + buf2) + ...), bit-identical across ranks, chunk counts
// and kernel worker counts. The channels and scratch drain on return, so
// consecutive calls may share one Ring; concurrent calls may not.
func (r *Ring) AllReduce(bufs [][]float64) {
	n := r.n
	if n <= 1 {
		return
	}
	var wg sync.WaitGroup
	// Rank 0 feeder: seed each chunk with rank 0's values.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for c := 0; c < r.chunks; c++ {
			lo, hi := r.chunk(c)
			acc := (<-r.free)[:hi-lo]
			copy(acc, bufs[0][lo:hi])
			r.fwd[0] <- acc
		}
	}()
	// Middle ranks: fold their contribution into each passing chunk.
	for rank := 1; rank < n-1; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for c := 0; c < r.chunks; c++ {
				lo, hi := r.chunk(c)
				acc := <-r.fwd[rank-1]
				tensor.VecAddInto(acc, bufs[rank][lo:hi])
				r.fwd[rank] <- acc
			}
		}(rank)
	}
	// Turn rank n-1: final fold, keep the total, start the broadcast.
	wg.Add(1)
	go func() {
		defer wg.Done()
		last := n - 1
		for c := 0; c < r.chunks; c++ {
			lo, hi := r.chunk(c)
			acc := <-r.fwd[last-1]
			tensor.VecAddInto(acc, bufs[last][lo:hi])
			copy(bufs[last][lo:hi], acc)
			r.bwd[last-1] <- acc
		}
	}()
	// Broadcast ranks n-2 .. 0: copy the total out, pass it on; rank 0
	// recycles the scratch.
	for rank := 0; rank < n-1; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for c := 0; c < r.chunks; c++ {
				lo, hi := r.chunk(c)
				acc := <-r.bwd[rank]
				copy(bufs[rank][lo:hi], acc)
				if rank > 0 {
					r.bwd[rank-1] <- acc
				} else {
					r.free <- acc
				}
			}
		}(rank)
	}
	wg.Wait()
}

// Hier is the in-process hierarchical all-reduce of paper §III for replica
// groups that span servers with more than one member per server: each
// server's members are reduced locally onto a leader, the leaders' partial
// sums are exchanged and summed across servers, and the total is broadcast
// back within each server — so the slow cross-server links carry one
// vector per server instead of one per replica. Sums are taken in a fixed
// member-then-group order, so every participant ends bit-identical; the
// three phases pipeline per chunk, so the cross-server exchange of chunk k
// overlaps the intra-server reduce of chunk k+1 and the broadcast of chunk
// k-1.
type Hier struct {
	groups [][]int // participant indices per server, in replica order
	size   int
	chunks int
	total  []float64       // cross-server accumulation scratch
	intra  []chan struct{} // per group: intra-reduce of next chunk done
	bcast  []chan struct{} // per group: total of next chunk ready
}

// NewHier builds a hierarchical group over size-element vectors; groups
// lists each server's participant indices.
func NewHier(groups [][]int, size int) *Hier {
	chunks := size / ringChunkTarget
	if chunks < 1 {
		chunks = 1
	}
	if chunks > ringMaxChunks {
		chunks = ringMaxChunks
	}
	if chunks > size && size > 0 {
		chunks = size
	}
	h := &Hier{
		groups: groups, size: size, chunks: chunks,
		total: make([]float64, size),
		intra: make([]chan struct{}, len(groups)),
		bcast: make([]chan struct{}, len(groups)),
	}
	for i := range groups {
		h.intra[i] = make(chan struct{}, chunks)
		h.bcast[i] = make(chan struct{}, chunks)
	}
	return h
}

// chunk returns the [lo, hi) bounds of pipeline chunk c.
func (h *Hier) chunk(c int) (int, int) {
	base, extra := h.size/h.chunks, h.size%h.chunks
	lo := c*base + min(c, extra)
	sz := base
	if c < extra {
		sz++
	}
	return lo, lo + sz
}

// AllReduce sums bufs in place: per chunk, intra-server reduce onto each
// group's first member, cross-server exchange into the total scratch,
// intra-server broadcast. Every buffer ends holding the bit-identical sum;
// the channels drain on return, so consecutive calls may share one Hier.
func (h *Hier) AllReduce(bufs [][]float64) {
	var wg sync.WaitGroup
	// Intra-server reduce, one goroutine per multi-member server; singleton
	// servers have nothing to fold, so their chunks are pre-signalled.
	for gi, g := range h.groups {
		if len(g) < 2 {
			for c := 0; c < h.chunks; c++ {
				h.intra[gi] <- struct{}{}
			}
			continue
		}
		wg.Add(1)
		go func(gi int, g []int) {
			defer wg.Done()
			lead := bufs[g[0]]
			for c := 0; c < h.chunks; c++ {
				lo, hi := h.chunk(c)
				for _, i := range g[1:] {
					tensor.VecAddInto(lead[lo:hi], bufs[i][lo:hi])
				}
				h.intra[gi] <- struct{}{}
			}
		}(gi, g)
	}
	// Cross-server exchange in group order.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for c := 0; c < h.chunks; c++ {
			lo, hi := h.chunk(c)
			for gi := range h.groups {
				<-h.intra[gi]
			}
			copy(h.total[lo:hi], bufs[h.groups[0][0]][lo:hi])
			for _, g := range h.groups[1:] {
				tensor.VecAddInto(h.total[lo:hi], bufs[g[0]][lo:hi])
			}
			for gi := range h.groups {
				h.bcast[gi] <- struct{}{}
			}
		}
	}()
	// Intra-server broadcast, one goroutine per server.
	for gi, g := range h.groups {
		wg.Add(1)
		go func(gi int, g []int) {
			defer wg.Done()
			for c := 0; c < h.chunks; c++ {
				lo, hi := h.chunk(c)
				<-h.bcast[gi]
				for _, i := range g {
					copy(bufs[i][lo:hi], h.total[lo:hi])
				}
			}
		}(gi, g)
	}
	wg.Wait()
}
