package transport

import "sync"

// Ring is the reusable scratch of one in-process ring all-reduce group: the
// ring channels plus per-rank chunk transfer buffers, sized once so a
// steady-state training iteration synchronizes gradients without
// allocating.
//
// Each rank rotates through three send buffers. Three is the minimum safe
// depth for the cap-1 ring channels: by the Go memory model, the receive of
// message k happens-before the completion of send k+1, so by the time a rank
// copies message j+3 into the slot message j used, its neighbor has received
// message j+1 — which, in the neighbor's program order, is after it finished
// reading message j. Two slots would leave the copy racing the neighbor's
// reads.
type Ring struct {
	n, size int
	ch      []chan []float64 // ch[i] carries chunks from rank i to (i+1) mod n
	out     [][]float64      // 3 rotating send-scratch chunks per rank
}

// NewRing builds scratch for n participants with size-element vectors.
func NewRing(n, size int) *Ring {
	r := &Ring{
		n: n, size: size,
		ch:  make([]chan []float64, n),
		out: make([][]float64, 3*n),
	}
	maxChunk := (size + n - 1) / n
	for i := range r.ch {
		r.ch[i] = make(chan []float64, 1)
	}
	for i := range r.out {
		r.out[i] = make([]float64, maxChunk)
	}
	return r
}

// chunk returns the [lo, hi) bounds of chunk c.
func (r *Ring) chunk(c int) (int, int) {
	base, extra := r.size/r.n, r.size%r.n
	lo := c*base + min(c, extra)
	sz := base
	if c < extra {
		sz++
	}
	return lo, lo + sz
}

// AllReduce sums bufs (len n, each size elements) in place using the
// standard ring algorithm — n-1 reduce-scatter steps then n-1 all-gather
// steps, each participant its own goroutine — reusing the group's channels
// and chunk scratch. On return every buffer holds the bit-identical
// element-wise sum. The channels are drained on return, so consecutive calls
// may share one Ring; concurrent calls may not.
func (r *Ring) AllReduce(bufs [][]float64) {
	n := r.n
	var wg sync.WaitGroup
	for rank := 0; rank < n; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			buf := bufs[rank]
			send := r.ch[rank]
			recv := r.ch[(rank-1+n)%n]

			// Reduce-scatter: after step s, rank owns the full sum of chunk
			// (rank+1) mod n at the end.
			for s := 0; s < n-1; s++ {
				c := (rank - s + n) % n
				lo, hi := r.chunk(c)
				out := r.out[3*rank+s%3][:hi-lo]
				copy(out, buf[lo:hi])
				send <- out
				in := <-recv
				c2 := (rank - s - 1 + n) % n
				lo2, _ := r.chunk(c2)
				for i, v := range in {
					buf[lo2+i] += v
				}
			}
			// All-gather: circulate the completed chunks.
			for s := 0; s < n-1; s++ {
				c := (rank + 1 - s + n) % n
				lo, hi := r.chunk(c)
				out := r.out[3*rank+(n-1+s)%3][:hi-lo]
				copy(out, buf[lo:hi])
				send <- out
				in := <-recv
				c2 := (rank - s + n) % n
				lo2, _ := r.chunk(c2)
				copy(buf[lo2:lo2+len(in)], in)
			}
		}(rank)
	}
	wg.Wait()
}

// Hier is the in-process hierarchical all-reduce of paper §III for replica
// groups that span servers with more than one member per server: each
// server's members are reduced locally onto a leader, the leaders' partial
// sums are exchanged and summed across servers, and the total is broadcast
// back within each server — so the slow cross-server links carry one
// vector per server instead of one per replica. Sums are taken in a fixed
// member-then-group order, so every participant ends bit-identical.
type Hier struct {
	groups [][]int // participant indices per server, in replica order
	size   int
	total  []float64 // cross-server accumulation scratch
}

// NewHier builds a hierarchical group over size-element vectors; groups
// lists each server's participant indices.
func NewHier(groups [][]int, size int) *Hier {
	return &Hier{groups: groups, size: size, total: make([]float64, size)}
}

// AllReduce sums bufs in place: intra-server reduce onto each group's first
// member, cross-server exchange into the total scratch, intra-server
// broadcast. Every buffer ends holding the bit-identical sum.
func (h *Hier) AllReduce(bufs [][]float64) {
	// Phase 1: reduce each server's members onto its leader, in member
	// order, one goroutine per server.
	var wg sync.WaitGroup
	for _, g := range h.groups {
		if len(g) < 2 {
			continue
		}
		wg.Add(1)
		go func(g []int) {
			defer wg.Done()
			lead := bufs[g[0]]
			for _, i := range g[1:] {
				for k, v := range bufs[i] {
					lead[k] += v
				}
			}
		}(g)
	}
	wg.Wait()

	// Phase 2: exchange the per-server partial sums, accumulating in group
	// order so the total is identical everywhere.
	copy(h.total, bufs[h.groups[0][0]])
	for _, g := range h.groups[1:] {
		for k, v := range bufs[g[0]] {
			h.total[k] += v
		}
	}

	// Phase 3: broadcast the total back within each server.
	for _, g := range h.groups {
		wg.Add(1)
		go func(g []int) {
			defer wg.Done()
			for _, i := range g {
				copy(bufs[i], h.total)
			}
		}(g)
	}
	wg.Wait()
}
