package transport

import (
	"bytes"
	"errors"
	"io"
	"math"
	"math/rand"
	"testing"

	"dapple/internal/tensor"
)

// writeTensorFrame encodes one FrameData frame carrying mat.
func writeTensorFrame(t *testing.T, mat *tensor.Matrix, m int) []byte {
	t.Helper()
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	h := Header{
		Type: FrameData, Flags: uint8(Bwd), A: 3, B: 1, C: 2, Epoch: 7,
		M: int32(m), Rows: int32(mat.Rows), Cols: int32(mat.Cols),
	}
	if err := fw.WriteF64(h, mat.Data); err != nil {
		t.Fatal(err)
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, shape := range [][2]int{{1, 1}, {3, 5}, {16, 32}, {7, 1}, {0, 4}} {
		mat := tensor.New(shape[0], shape[1])
		for i := range mat.Data {
			mat.Data[i] = rng.NormFloat64()
		}
		raw := writeTensorFrame(t, mat, 4)
		fr := NewFrameReader(bytes.NewReader(raw))
		h, err := fr.ReadHeader()
		if err != nil {
			t.Fatalf("shape %v: %v", shape, err)
		}
		if int(h.Rows) != mat.Rows || int(h.Cols) != mat.Cols || h.M != 4 || h.Epoch != 7 || Dir(h.Flags) != Bwd {
			t.Fatalf("shape %v: header mismatch %+v", shape, h)
		}
		got := make([]float64, mat.Rows*mat.Cols)
		if err := fr.ReadF64(got); err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if math.Float64bits(v) != math.Float64bits(mat.Data[i]) {
				t.Fatalf("shape %v: element %d: %g != %g", shape, i, v, mat.Data[i])
			}
		}
	}
}

func TestFrameRejectsCorruptHeaders(t *testing.T) {
	mat := tensor.New(2, 2)
	raw := writeTensorFrame(t, mat, 0)
	for name, mutate := range map[string]func([]byte){
		"magic":          func(b []byte) { b[0] ^= 0xff },
		"type":           func(b []byte) { b[2] = 99 },
		"shape-mismatch": func(b []byte) { b[24] = 100 }, // rows no longer match N
		"giant-payload":  func(b []byte) { b[32], b[33], b[34], b[35] = 0xff, 0xff, 0xff, 0xff },
	} {
		bad := append([]byte(nil), raw...)
		mutate(bad)
		if _, err := NewFrameReader(bytes.NewReader(bad)).ReadHeader(); err == nil {
			t.Errorf("%s: corrupt header accepted", name)
		}
	}
}

// TestFrameTornRead truncates an encoded frame at every length and checks
// the decoder reports a clean error — never a panic, never a bogus frame.
func TestFrameTornRead(t *testing.T) {
	mat := tensor.New(4, 3)
	for i := range mat.Data {
		mat.Data[i] = float64(i) + 0.5
	}
	raw := writeTensorFrame(t, mat, 2)
	for cut := 0; cut < len(raw); cut++ {
		fr := NewFrameReader(bytes.NewReader(raw[:cut]))
		h, err := fr.ReadHeader()
		if err != nil {
			if cut >= HeaderSize {
				t.Fatalf("cut %d: header failed after full header bytes: %v", cut, err)
			}
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("cut %d: want EOF-ish error, got %v", cut, err)
			}
			continue
		}
		got := make([]float64, h.Rows*h.Cols)
		// A cut exactly at the header boundary yields plain EOF (no payload
		// byte read at all); any later cut is an unexpected EOF mid-payload.
		err = fr.ReadF64(got)
		if !errors.Is(err, io.ErrUnexpectedEOF) && !(cut == HeaderSize && errors.Is(err, io.EOF)) {
			t.Fatalf("cut %d: torn payload returned %v, want EOF-ish error", cut, err)
		}
	}
}

// failWriter errors after n bytes, exercising short-write handling.
type failWriter struct {
	n int
}

func (w *failWriter) Write(p []byte) (int, error) {
	if len(p) > w.n {
		k := w.n
		w.n = 0
		return k, errors.New("wire torn")
	}
	w.n -= len(p)
	return len(p), nil
}

// TestFrameShortWrite checks that a connection failing mid-frame surfaces
// through WriteF64/Flush instead of being silently swallowed by buffering.
func TestFrameShortWrite(t *testing.T) {
	mat := tensor.New(64, 64) // 32 KiB payload, larger than the 64 KiB buffer after a few frames
	for limit := 0; limit < 3; limit++ {
		fw := NewFrameWriter(&failWriter{n: limit * 1000})
		var err error
		for i := 0; i < 8 && err == nil; i++ {
			err = fw.WriteF64(Header{Type: FrameData, Rows: 64, Cols: 64}, mat.Data)
		}
		if err == nil {
			err = fw.Flush()
		}
		if err == nil {
			t.Fatalf("limit %d: short write never surfaced", limit)
		}
	}
}

// FuzzFrameRoundTrip checks encode/decode identity for arbitrary shapes and
// contents: whatever shape and bit patterns go in must come out identical.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint8(1), uint8(1), int32(0), int64(1))
	f.Add(uint8(16), uint8(32), int32(7), int64(42))
	f.Add(uint8(0), uint8(5), int32(3), int64(-9))
	f.Add(uint8(255), uint8(255), int32(1<<30), int64(7777))
	f.Fuzz(func(t *testing.T, rows, cols uint8, m int32, seed int64) {
		mat := tensor.New(int(rows), int(cols))
		rng := rand.New(rand.NewSource(seed))
		for i := range mat.Data {
			// Raw bit patterns cover NaNs, infinities and subnormals.
			mat.Data[i] = math.Float64frombits(rng.Uint64())
		}
		var buf bytes.Buffer
		fw := NewFrameWriter(&buf)
		h := Header{Type: FrameData, Rows: int32(mat.Rows), Cols: int32(mat.Cols), M: m, Epoch: 9}
		if err := fw.WriteF64(h, mat.Data); err != nil {
			t.Fatal(err)
		}
		if err := fw.Flush(); err != nil {
			t.Fatal(err)
		}
		fr := NewFrameReader(bytes.NewReader(buf.Bytes()))
		got, err := fr.ReadHeader()
		if err != nil {
			t.Fatal(err)
		}
		if got.Rows != h.Rows || got.Cols != h.Cols || got.M != m || got.Epoch != 9 {
			t.Fatalf("header mismatch: sent %+v got %+v", h, got)
		}
		out := make([]float64, len(mat.Data))
		if err := fr.ReadF64(out); err != nil {
			t.Fatal(err)
		}
		for i := range out {
			if math.Float64bits(out[i]) != math.Float64bits(mat.Data[i]) {
				t.Fatalf("element %d: bits %x != %x", i, math.Float64bits(out[i]), math.Float64bits(mat.Data[i]))
			}
		}
	})
}

// FuzzHeaderDecode feeds arbitrary bytes to the header decoder: it must
// reject or accept without panicking, and accepted headers must re-encode
// to the same bytes.
func FuzzHeaderDecode(f *testing.F) {
	good := make([]byte, HeaderSize)
	Header{Type: FrameControl, N: 4}.encode(good)
	f.Add(good)
	f.Add(make([]byte, HeaderSize))
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < HeaderSize {
			return
		}
		h, err := decodeHeader(raw[:HeaderSize])
		if err != nil {
			return
		}
		re := make([]byte, HeaderSize)
		h.encode(re)
		if !bytes.Equal(re, raw[:HeaderSize]) {
			t.Fatalf("accepted header did not re-encode identically: %x vs %x", re, raw[:HeaderSize])
		}
	})
}
