package transport

import (
	"math"
	"math/rand"
	"testing"
)

// naiveSum returns the element-wise sum of the vectors.
func naiveSum(bufs [][]float64) []float64 {
	out := make([]float64, len(bufs[0]))
	for _, b := range bufs {
		for i, v := range b {
			out[i] += v
		}
	}
	return out
}

// randBufs builds n random size-element vectors.
func randBufs(n, size int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	bufs := make([][]float64, n)
	for i := range bufs {
		bufs[i] = make([]float64, size)
		for j := range bufs[i] {
			bufs[i][j] = rng.NormFloat64()
		}
	}
	return bufs
}

func TestRingAllReduce(t *testing.T) {
	for _, tc := range [][2]int{{2, 1}, {2, 17}, {3, 8}, {5, 100}, {8, 1000}, {7, 3}} {
		n, size := tc[0], tc[1]
		bufs := randBufs(n, size, int64(n*1000+size))
		want := naiveSum(bufs)
		r := NewRing(n, size)
		for iter := 0; iter < 3; iter++ { // reuse the same Ring state
			if iter > 0 {
				bufs = randBufs(n, size, int64(iter))
				want = naiveSum(bufs)
			}
			r.AllReduce(bufs)
			for rank := range bufs {
				for i := range want {
					if math.Abs(bufs[rank][i]-want[i]) > 1e-12*math.Max(1, math.Abs(want[i])) {
						t.Fatalf("n=%d size=%d iter=%d rank %d element %d: %g want %g", n, size, iter, rank, i, bufs[rank][i], want[i])
					}
					if bufs[rank][i] != bufs[0][i] {
						t.Fatalf("n=%d size=%d: ranks not bit-identical", n, size)
					}
				}
			}
		}
	}
}

// TestRingChunkCountBitIdentical pins the chain ring's central invariant:
// the canonical rank-order accumulation makes the result a pure function of
// the inputs — independent of the pipeline chunk count — and exactly equal
// to a plain index-order sum, which is what lets the executor bucket
// gradients without perturbing training results.
func TestRingChunkCountBitIdentical(t *testing.T) {
	for _, tc := range [][2]int{{2, 1000}, {3, 997}, {5, 64}, {8, 4096}} {
		n, size := tc[0], tc[1]
		want := naiveSum(randBufs(n, size, int64(n+size)))
		for _, chunks := range []int{1, 2, 3, 5, 8, 200} {
			bufs := randBufs(n, size, int64(n+size))
			NewRingChunks(n, size, chunks).AllReduce(bufs)
			for rank := range bufs {
				for i := range want {
					if bufs[rank][i] != want[i] {
						t.Fatalf("n=%d size=%d chunks=%d rank %d element %d: %g, index-order sum %g",
							n, size, chunks, rank, i, bufs[rank][i], want[i])
					}
				}
			}
		}
	}
}

// BenchmarkRingAllReduceChunked is the chunked-collective microbenchmark:
// one large all-reduce per iteration through the pipelined chain, the
// configuration CI smoke-tests to keep the overlap path exercised.
func BenchmarkRingAllReduceChunked(b *testing.B) {
	const n, size = 4, 1 << 16
	bufs := randBufs(n, size, 42)
	r := NewRing(n, size)
	b.SetBytes(int64(8 * size * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.AllReduce(bufs)
	}
}

func TestHierAllReduce(t *testing.T) {
	for _, tc := range []struct {
		name   string
		groups [][]int
		size   int
	}{
		{"2x2", [][]int{{0, 1}, {2, 3}}, 33},
		{"uneven", [][]int{{0, 1, 2}, {3}, {4, 5}}, 17},
		{"3x4", [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}, {8, 9, 10, 11}}, 256},
		{"singletons", [][]int{{0}, {1}, {2}}, 9},
	} {
		n := 0
		for _, g := range tc.groups {
			n += len(g)
		}
		h := NewHier(tc.groups, tc.size)
		for iter := 0; iter < 3; iter++ { // reuse the same Hier state
			bufs := randBufs(n, tc.size, int64(iter+7))
			want := naiveSum(bufs)
			h.AllReduce(bufs)
			for rank := range bufs {
				for i := range want {
					if math.Abs(bufs[rank][i]-want[i]) > 1e-12*math.Max(1, math.Abs(want[i])) {
						t.Fatalf("%s iter %d rank %d element %d: %g want %g", tc.name, iter, rank, i, bufs[rank][i], want[i])
					}
					if bufs[rank][i] != bufs[0][i] {
						t.Fatalf("%s: participants not bit-identical", tc.name)
					}
				}
			}
		}
	}
}
