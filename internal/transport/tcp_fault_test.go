package transport

import (
	"context"
	"errors"
	"testing"
	"time"

	"dapple/internal/tensor"
)

// TestDialRetryRespectsDeadline is the regression test for the unbounded
// dial-retry loop: a coordinator that never comes up must fail the dial when
// the caller's deadline expires, not retry forever.
func TestDialRetryRespectsDeadline(t *testing.T) {
	tr := NewTCP()
	tr.SetRank(1)
	defer tr.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := tr.DialRetry(ctx, 0, "127.0.0.1:1") // reserved port: refused or filtered
	if err == nil {
		t.Fatal("DialRetry to an unreachable address succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("DialRetry kept retrying %v past a 300ms deadline", elapsed)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("DialRetry error %v does not wrap the deadline", err)
	}
}

// TestDialRetryBoundedWithoutDeadline checks the fallback cap: even a context
// with no deadline must give up after the package retry limit.
func TestDialRetryBoundedWithoutDeadline(t *testing.T) {
	saved := defaultDialRetryLimit
	defaultDialRetryLimit = 300 * time.Millisecond
	defer func() { defaultDialRetryLimit = saved }()
	tr := NewTCP()
	tr.SetRank(1)
	defer tr.Close()
	start := time.Now()
	err := tr.DialRetry(context.Background(), 0, "127.0.0.1:1")
	if err == nil {
		t.Fatal("DialRetry to an unreachable address succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("DialRetry with no ctx deadline retried for %v, want the %v cap", elapsed, defaultDialRetryLimit)
	}
}

// waitDown blocks until rank appears in tr's down set.
func waitDown(t *testing.T, tr *TCP, rank int) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		downs, wait := tr.PeerDowns()
		for _, r := range downs {
			if r == rank {
				return
			}
		}
		select {
		case <-wait:
		case <-deadline:
			t.Fatalf("rank %d never marked down; down set %v", rank, downs)
		}
	}
}

// TestPeerIsolationSurvivesDeadRank kills one rank of a 3-rank mesh running
// in isolation mode: the dead rank must be reported down with sends toward it
// failing ErrPeerDown, while the surviving pair's edge keeps carrying
// traffic — the property that lets a session re-plan instead of dying.
func TestPeerIsolationSurvivesDeadRank(t *testing.T) {
	ts := mesh(t, 3)
	ts[0].SetPeerIsolation(true)
	ts[1].SetPeerIsolation(true)

	id := EdgeID{Bound: 0, Dir: Fwd, S: 0, Q: 1}
	send, err := ts[0].OpenEdge(id, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	recv, err := ts[1].OpenEdge(id, 0, 4)
	if err != nil {
		t.Fatal(err)
	}

	ts[2].Close() // rank 2 dies

	waitDown(t, ts[0], 2)
	waitDown(t, ts[1], 2)
	if err := ts[0].DownErr(2); err == nil {
		t.Fatal("DownErr nil for a downed rank")
	}
	if err := ts[0].SendControl(2, []byte("x")); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("send to dead rank returned %v, want ErrPeerDown", err)
	}

	// The surviving edge still works.
	mat := tensor.New(1, 3)
	mat.Data[2] = 7
	if err := send.SendCopy(0, mat); err != nil {
		t.Fatal(err)
	}
	msg, err := recv.Recv(make(chan struct{}))
	if err != nil {
		t.Fatal(err)
	}
	if msg.Data.Data[2] != 7 {
		t.Fatalf("survivor edge corrupted: %v", msg.Data.Data)
	}

	// A downed rank cannot rejoin the session.
	fresh := NewTCP()
	fresh.SetRank(2)
	defer fresh.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := fresh.Dial(ctx, 0, ts[0].Addr()); err == nil {
		if err := fresh.WaitPeers(ctx, []int{0}); err == nil {
			if err := fresh.SendControl(0, []byte("x")); err == nil {
				// The dial may land before rank 0 processes it; give the
				// reject a moment and confirm rank 0 still lists 2 as down.
				time.Sleep(50 * time.Millisecond)
			}
		}
	}
	if downs, _ := ts[0].PeerDowns(); len(downs) != 1 || downs[0] != 2 {
		t.Fatalf("down set after rejoin attempt: %v, want [2]", downs)
	}
}

// TestPeerIsolationUnblocksEnqueue checks a send blocked toward a rank that
// dies is unblocked with ErrPeerDown by ClosePeer — the liveness monitor's
// verdict must never leave a sender wedged on a full queue.
func TestPeerIsolationUnblocksEnqueue(t *testing.T) {
	ts := mesh(t, 2)
	ts[0].SetPeerIsolation(true)
	done := make(chan error, 1)
	go func() {
		// Flood the queue so some send eventually blocks; stop at the first
		// error.
		payload := make([]byte, 1<<16)
		for i := 0; i < 1<<20; i++ {
			if err := ts[0].SendControl(1, payload); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	time.Sleep(50 * time.Millisecond)
	ts[0].ClosePeer(1, errors.New("heartbeat timeout"))
	select {
	case err := <-done:
		if !errors.Is(err, ErrPeerDown) {
			t.Fatalf("blocked send returned %v, want ErrPeerDown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("send toward downed rank never unblocked")
	}
}

// TestHeartbeatRefreshesLastHeard checks the liveness plane's raw signal:
// a heartbeat frame advances the receiver's last-heard clock for the sender.
func TestHeartbeatRefreshesLastHeard(t *testing.T) {
	ts := mesh(t, 2)
	before, ok := ts[1].LastHeard(0)
	if !ok {
		t.Fatal("no last-heard clock for a live peer")
	}
	time.Sleep(20 * time.Millisecond)
	if err := ts[0].SendHeartbeat(1); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for {
		after, ok := ts[1].LastHeard(0)
		if ok && after.After(before) {
			return
		}
		select {
		case <-deadline:
			t.Fatal("heartbeat never advanced the last-heard clock")
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// TestRetireDiscardsStaleGenerations replays the recovery sequence on a
// 2-rank mesh: traffic from the torn generation must be discarded below the
// new epoch floor, blocked receives of the old generation must unblock, and
// the rebuilt edge must deliver only new-generation frames.
func TestRetireDiscardsStaleGenerations(t *testing.T) {
	ts := mesh(t, 2)
	id := EdgeID{Bound: 0, Dir: Fwd, S: 0, Q: 0}
	send, err := ts[0].OpenEdge(id, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	recv, err := ts[1].OpenEdge(id, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	// A receive of the old generation is in flight when the session tears.
	oldRecv := make(chan error, 1)
	go func() {
		_, err := recv.Recv(make(chan struct{}))
		oldRecv <- err
	}()

	// Rank 0 sends a stale frame, then both ranks retire to floor 5 —
	// the frame is generation 1 < 5 and must be dropped, not delivered.
	stale := tensor.New(1, 1)
	stale.Data[0] = 666
	if err := send.SendCopy(0, stale); err != nil {
		t.Fatal(err)
	}
	const floor = 5
	ts[0].Retire(floor)
	ts[1].Retire(floor)
	select {
	case err := <-oldRecv:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("old-generation recv returned %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("old-generation recv never unblocked after Retire")
	}

	// Survivors rebuild: both sides re-open and traffic flows in the new
	// generation only.
	send2, err := ts[0].OpenEdge(id, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	recv2, err := ts[1].OpenEdge(id, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	fresh := tensor.New(1, 1)
	fresh.Data[0] = 42
	if err := send2.SendCopy(3, fresh); err != nil {
		t.Fatal(err)
	}
	msg, err := recv2.Recv(make(chan struct{}))
	if err != nil {
		t.Fatal(err)
	}
	if msg.M != 3 || msg.Data.Data[0] != 42 {
		t.Fatalf("rebuilt edge delivered stale traffic: m=%d data=%v", msg.M, msg.Data.Data)
	}
}

// TestRetireAlignsEpochsAcrossUnevenHistories opens an edge a different
// number of times on each rank before the tear: after Retire with a common
// floor both sides must land on the same epoch, or the rebuilt pipeline
// would hold frames forever.
func TestRetireAlignsEpochsAcrossUnevenHistories(t *testing.T) {
	ts := mesh(t, 2)
	id := EdgeID{Bound: 0, Dir: Fwd, S: 0, Q: 0}
	// Rank 0 saw 3 geometries, rank 1 only 1.
	for i := 0; i < 3; i++ {
		if _, err := ts[0].OpenEdge(id, 1, 2); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ts[1].OpenEdge(id, 0, 2); err != nil {
		t.Fatal(err)
	}
	const floor = 10
	ts[0].Retire(floor)
	ts[1].Retire(floor)
	send, err := ts[0].OpenEdge(id, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	recv, err := ts[1].OpenEdge(id, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	mat := tensor.New(1, 1)
	mat.Data[0] = 1
	if err := send.SendCopy(0, mat); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := recv.Recv(make(chan struct{}))
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("epochs diverged across ranks: frame held forever")
	}
}

// TestGroupReopen re-opens a collective group (the survivor rebuild path,
// where membership shrinks) and checks the new generation's all-reduce works
// and a blocked old-generation exchange unblocks.
func TestGroupReopen(t *testing.T) {
	ts := mesh(t, 2)
	members := []int{0, 1}
	const size = 8
	g0, err := ts[0].OpenGroup(1, members, size)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ts[1].OpenGroup(1, members, size); err != nil {
		t.Fatal(err)
	}
	// Rank 0 starts an exchange rank 1 never joins — it must unblock when
	// the generation is retired.
	hung := make(chan error, 1)
	go func() {
		buf := make([]float64, size)
		hung <- g0.AllReduce(buf, make(chan struct{}))
	}()
	time.Sleep(20 * time.Millisecond)
	ts[0].Retire(2)
	ts[1].Retire(2)
	select {
	case err := <-hung:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("old-generation all-reduce returned %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("old-generation all-reduce never unblocked after Retire")
	}

	groups := make([]Group, 2)
	for r := range ts {
		g, err := ts[r].OpenGroup(1, members, size)
		if err != nil {
			t.Fatal(err)
		}
		groups[r] = g
	}
	bufs := randBufs(2, size, 77)
	want := naiveSum(bufs)
	errs := make(chan error, 2)
	for r := 0; r < 2; r++ {
		go func(r int) { errs <- groups[r].AllReduce(bufs[r], make(chan struct{})) }(r)
	}
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("re-opened group all-reduce hung")
		}
	}
	for r := 0; r < 2; r++ {
		for i := range want {
			if bufs[r][i] != bufs[0][i] {
				t.Fatalf("re-opened group not bit-identical at %d", i)
			}
		}
	}
}
