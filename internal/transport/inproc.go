package transport

import (
	"errors"

	"dapple/internal/tensor"
)

// Inproc is the in-process Transport: an edge is a buffered Go channel
// shared by both endpoints, exactly the executor's original link semantics —
// zero-copy view publishing forward, recycled copy buffers backward, and no
// allocation at steady state. OpenEdge returns a fresh shared edge each
// call; the caller hands the same Edge to both endpoint goroutines (peer is
// ignored). In-process gradient collectives run directly in shared memory
// (Ring, Hier), so OpenGroup is unsupported.
type Inproc struct{}

// NewInproc returns the in-process transport.
func NewInproc() *Inproc { return &Inproc{} }

// OpenEdge returns a fresh in-process edge buffered for cap in-flight
// micro-batches; both endpoints must share the returned Edge.
func (*Inproc) OpenEdge(id EdgeID, peer, cap int) (Edge, error) {
	return &inprocEdge{
		ch:   make(chan Msg, cap),
		free: make(chan *tensor.Matrix, cap),
	}, nil
}

// OpenGroup is unsupported: in-process collectives run in shared memory.
func (*Inproc) OpenGroup(gid int, members []int, size int) (Group, error) {
	return nil, errors.New("transport: in-process collectives run in shared memory")
}

// Close implements Transport; the in-process backend holds no resources.
func (*Inproc) Close() error { return nil }

// inprocEdge is one channel link. Sends never block because the channel is
// buffered for every in-flight micro-batch of a step.
type inprocEdge struct {
	ch   chan Msg
	free chan *tensor.Matrix
}

// SendView publishes the view without copying; the receiver sees the
// sender's storage directly.
func (e *inprocEdge) SendView(m int, view *tensor.Matrix) error {
	e.ch <- Msg{M: m, Data: view}
	return nil
}

// SendCopy copies data into a recycled transfer buffer and sends it with the
// edge's free list as the recycle destination.
func (e *inprocEdge) SendCopy(m int, data *tensor.Matrix) error {
	buf := LeaseBuf(e.free, data.Rows, data.Cols)
	copy(buf.Data, data.Data)
	e.ch <- Msg{M: m, Data: buf, Free: e.free}
	return nil
}

// Recv returns the next message or ErrAborted.
func (e *inprocEdge) Recv(abort <-chan struct{}) (Msg, error) {
	select {
	case msg := <-e.ch:
		return msg, nil
	case <-abort:
		return Msg{}, ErrAborted
	}
}
