package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"dapple/internal/tensor"
)

// ErrChaos is wrapped by every fault the Chaos transport injects, so tests
// and the session layer can tell an injected failure from a real one with
// errors.Is.
var ErrChaos = fmt.Errorf("transport: injected fault")

// ChaosConfig scripts the faults a Chaos transport injects. All probability
// draws come from per-edge deterministic streams (see Chaos), so the same
// config and seed produce the same fault schedule on every run regardless of
// goroutine interleaving.
type ChaosConfig struct {
	// Seed roots every per-edge fault stream; two Chaos transports with the
	// same Seed and config inject identical fault schedules.
	Seed int64
	// DropProb is the per-send probability that an edge frame is silently
	// dropped (the receiver never sees it).
	DropProb float64
	// DupProb is the per-send probability that an edge frame is sent twice.
	DupProb float64
	// DelayProb is the per-send probability that a send stalls for a
	// deterministic duration in (0, MaxDelay] before transmitting — a slow
	// link, not a dead one.
	DelayProb float64
	// MaxDelay bounds injected send stalls; zero disables delays even when
	// DelayProb is set.
	MaxDelay time.Duration
	// Freeze maps an edge to the 1-based send count after which every send
	// on it blocks until the transport closes — a hung rank as seen from one
	// link. Zero values and absent edges never freeze.
	Freeze map[EdgeID]int
	// TearAfter, when positive, closes the wrapped transport after that many
	// data-plane operations (edge sends + group all-reduces) across the whole
	// transport — a process dying mid-step. Zero never tears.
	TearAfter int64
}

// Chaos wraps a Transport and injects the faults scripted by its config:
// dropped, duplicated and delayed frames per edge, frozen edges, and a torn
// transport after a scripted operation count. Every random draw comes from a
// per-edge rand.Rand seeded by (Seed, EdgeID), and sends on one edge are
// serialized by its owning stage goroutine, so each edge's fault schedule is
// a pure function of the seed — concurrency cannot reorder it. Group
// all-reduces pass through unfaulted (a lost contribution is
// indistinguishable from a frozen edge, which Freeze already scripts) but
// count toward TearAfter.
type Chaos struct {
	inner Transport
	cfg   ChaosConfig

	ops  atomic.Int64
	torn atomic.Bool

	mu     sync.Mutex
	closed chan struct{}
	done   bool
}

// NewChaos wraps inner with the scripted fault layer cfg.
func NewChaos(inner Transport, cfg ChaosConfig) *Chaos {
	return &Chaos{inner: inner, cfg: cfg, closed: make(chan struct{})}
}

// edgeSeed derives the deterministic per-edge stream seed from the root seed
// and the edge identity, splitmix-style so adjacent ids decorrelate.
func (c *Chaos) edgeSeed(id EdgeID) int64 {
	z := uint64(c.cfg.Seed)
	for _, v := range [4]uint64{uint64(id.Bound), uint64(id.Dir), uint64(id.S), uint64(id.Q)} {
		z += 0x9e3779b97f4a7c15 + v
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
	}
	return int64(z)
}

// OpenEdge opens the inner edge and attaches its fault stream.
func (c *Chaos) OpenEdge(id EdgeID, peer, cap int) (Edge, error) {
	e, err := c.inner.OpenEdge(id, peer, cap)
	if err != nil {
		return nil, err
	}
	return &chaosEdge{
		c:      c,
		id:     id,
		inner:  e,
		rng:    rand.New(rand.NewSource(c.edgeSeed(id))),
		freeze: c.cfg.Freeze[id],
	}, nil
}

// OpenGroup opens the inner group; all-reduces count toward TearAfter.
func (c *Chaos) OpenGroup(gid int, members []int, size int) (Group, error) {
	g, err := c.inner.OpenGroup(gid, members, size)
	if err != nil {
		return nil, err
	}
	return &chaosGroup{c: c, inner: g}, nil
}

// Close closes the wrapped transport.
func (c *Chaos) Close() error {
	c.mu.Lock()
	if !c.done {
		c.done = true
		close(c.closed)
	}
	c.mu.Unlock()
	return c.inner.Close()
}

// Torn reports whether the scripted TearAfter fault has fired.
func (c *Chaos) Torn() bool { return c.torn.Load() }

// op counts one data-plane operation and fires the scripted tear when the
// count crosses TearAfter. It returns the injected error on the operation
// that tears and on every operation after it.
func (c *Chaos) op() error {
	if c.cfg.TearAfter <= 0 {
		return nil
	}
	n := c.ops.Add(1)
	if n < c.cfg.TearAfter {
		return nil
	}
	if c.torn.CompareAndSwap(false, true) {
		c.Close()
	}
	return fmt.Errorf("%w: transport torn after %d ops", ErrChaos, c.cfg.TearAfter)
}

// chaosEdge is one edge with its deterministic fault stream. The rng is
// consumed only by sends, which the owning stage goroutine serializes;
// receives pass through untouched.
type chaosEdge struct {
	c      *Chaos
	id     EdgeID
	inner  Edge
	rng    *rand.Rand
	sends  int
	freeze int
}

// send applies the scripted fault draw for one outbound frame, then forwards
// it via fwd (which sends on the inner edge). The draw order is fixed —
// freeze check, drop, dup, delay — so a schedule replays identically for a
// given seed.
func (e *chaosEdge) send(fwd func() error) error {
	if err := e.c.op(); err != nil {
		return err
	}
	e.sends++
	if e.freeze > 0 && e.sends > e.freeze {
		<-e.c.closed
		return fmt.Errorf("%w: edge %v frozen after %d sends", ErrChaos, e.id, e.freeze)
	}
	cfg := &e.c.cfg
	if cfg.DropProb > 0 && e.rng.Float64() < cfg.DropProb {
		return nil
	}
	dup := cfg.DupProb > 0 && e.rng.Float64() < cfg.DupProb
	if cfg.DelayProb > 0 && cfg.MaxDelay > 0 && e.rng.Float64() < cfg.DelayProb {
		d := time.Duration(1 + e.rng.Int63n(int64(cfg.MaxDelay)))
		select {
		case <-time.After(d):
		case <-e.c.closed:
			return ErrClosed
		}
	}
	if err := fwd(); err != nil {
		return err
	}
	if dup {
		return fwd()
	}
	return nil
}

// SendView degrades to SendCopy under chaos: a dropped or duplicated view of
// sender-owned storage would break the view lifetime contract, so the fault
// layer always stages a copy.
func (e *chaosEdge) SendView(m int, view *tensor.Matrix) error {
	return e.send(func() error { return e.inner.SendCopy(m, view) })
}

// SendCopy sends micro-batch m through the fault layer.
func (e *chaosEdge) SendCopy(m int, data *tensor.Matrix) error {
	return e.send(func() error { return e.inner.SendCopy(m, data) })
}

// Recv passes through to the inner edge.
func (e *chaosEdge) Recv(abort <-chan struct{}) (Msg, error) {
	return e.inner.Recv(abort)
}

// chaosGroup passes all-reduces through, counting them toward TearAfter.
type chaosGroup struct {
	c     *Chaos
	inner Group
}

// AllReduce forwards to the inner group after the tear check.
func (g *chaosGroup) AllReduce(buf []float64, abort <-chan struct{}) error {
	if err := g.c.op(); err != nil {
		return err
	}
	return g.inner.AllReduce(buf, abort)
}
