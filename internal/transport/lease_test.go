package transport

import (
	"testing"

	"dapple/internal/tensor"
)

// TestLeaseBufReusesAcrossGeometryChange is the regression test for the
// free-list bug where a recycled buffer of the wrong shape was silently
// discarded: after a micro-batch geometry change, warm buffers with enough
// capacity must be resliced and re-leased, not leaked for reallocation.
func TestLeaseBufReusesAcrossGeometryChange(t *testing.T) {
	free := make(chan *tensor.Matrix, 4)

	big := LeaseBuf(free, 8, 16)
	Recycle(free, big)

	// Shrinking geometry: the 8x16 buffer has capacity for 4x16.
	before := BufMisses()
	small := LeaseBuf(free, 4, 16)
	if BufMisses() != before {
		t.Fatalf("shrinking lease counted a miss")
	}
	if small.Rows != 4 || small.Cols != 16 || len(small.Data) != 64 {
		t.Fatalf("re-leased buffer has shape %dx%d len %d", small.Rows, small.Cols, len(small.Data))
	}
	if &small.Data[0] != &big.Data[0] {
		t.Fatalf("shrinking lease allocated instead of reusing the recycled buffer")
	}

	// Growing geometry: capacity is insufficient, so the buffer is dropped
	// and the miss counted.
	Recycle(free, small)
	before = BufMisses()
	grown := LeaseBuf(free, 32, 32)
	if BufMisses() != before+1 {
		t.Fatalf("growing lease did not count the dropped buffer (misses %d -> %d)", before, BufMisses())
	}
	if grown.Rows != 32 || grown.Cols != 32 {
		t.Fatalf("grown lease has shape %dx%d", grown.Rows, grown.Cols)
	}

	// Exact-shape recycling stays the zero-alloc fast path.
	Recycle(free, grown)
	again := LeaseBuf(free, 32, 32)
	if again != grown {
		t.Fatalf("exact-shape lease did not return the recycled buffer")
	}
}

// TestRecycleDropsWhenFull checks the bounded free list never blocks.
func TestRecycleDropsWhenFull(t *testing.T) {
	free := make(chan *tensor.Matrix, 1)
	Recycle(free, tensor.New(1, 1))
	Recycle(free, tensor.New(1, 1)) // must not block
	if len(free) != 1 {
		t.Fatalf("free list holds %d buffers, want 1", len(free))
	}
	Recycle(nil, tensor.New(1, 1)) // nil free list is a no-op
}
