package transport

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"dapple/internal/tensor"
)

// mesh builds n fully connected loopback transports (rank r dials every
// lower rank) and registers cleanup.
func mesh(t *testing.T, n int) []*TCP {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ts := make([]*TCP, n)
	for r := 0; r < n; r++ {
		tr, err := ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		tr.SetRank(r)
		ts[r] = tr
		t.Cleanup(func() { tr.Close() })
	}
	for r := 1; r < n; r++ {
		for q := 0; q < r; q++ {
			if err := ts[r].Dial(ctx, q, ts[q].Addr()); err != nil {
				t.Fatal(err)
			}
		}
	}
	for r := 0; r < n; r++ {
		peers := make([]int, 0, n-1)
		for q := 0; q < n; q++ {
			if q != r {
				peers = append(peers, q)
			}
		}
		if err := ts[r].WaitPeers(ctx, peers); err != nil {
			t.Fatal(err)
		}
	}
	return ts
}

func TestTCPEdgeRoundTrip(t *testing.T) {
	ts := mesh(t, 2)
	id := EdgeID{Bound: 0, Dir: Fwd, S: 0, Q: 1}
	const m = 4
	send, err := ts[0].OpenEdge(id, 1, m)
	if err != nil {
		t.Fatal(err)
	}
	recv, err := ts[1].OpenEdge(id, 0, m)
	if err != nil {
		t.Fatal(err)
	}
	abort := make(chan struct{})
	for step := 0; step < 3; step++ {
		for mb := 0; mb < m; mb++ {
			mat := tensor.New(3, 5)
			for i := range mat.Data {
				mat.Data[i] = float64(step*100 + mb*10 + i)
			}
			if mb%2 == 0 {
				err = send.SendView(mb, mat)
			} else {
				err = send.SendCopy(mb, mat)
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		for mb := 0; mb < m; mb++ {
			msg, err := recv.Recv(abort)
			if err != nil {
				t.Fatal(err)
			}
			if msg.M != mb {
				t.Fatalf("step %d: got micro-batch %d, want %d", step, msg.M, mb)
			}
			if msg.Data.Rows != 3 || msg.Data.Cols != 5 {
				t.Fatalf("shape %dx%d", msg.Data.Rows, msg.Data.Cols)
			}
			for i, v := range msg.Data.Data {
				if v != float64(step*100+mb*10+i) {
					t.Fatalf("step %d mb %d element %d: %g", step, mb, i, v)
				}
			}
			Recycle(msg.Free, msg.Data)
		}
	}
	st := ts[0].Stats()
	if st.FramesSent < 3*m || st.BytesSent == 0 {
		t.Fatalf("sender stats not accounted: %+v", st)
	}
}

// TestTCPEdgeHeldUntilOpened sends before the receiver has opened the edge:
// the frames must be held at the head of the stream and delivered once the
// receiver opens — the transient that occurs whenever peers rebuild step
// geometry at slightly different times.
func TestTCPEdgeHeldUntilOpened(t *testing.T) {
	ts := mesh(t, 2)
	id := EdgeID{Bound: 1, Dir: Bwd, S: 2, Q: 0}
	send, err := ts[0].OpenEdge(id, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	mat := tensor.New(2, 2)
	mat.Data = []float64{1, 2, 3, 4}
	if err := send.SendCopy(0, mat); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the frame reach the unopened peer
	recv, err := ts[1].OpenEdge(id, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := recv.Recv(make(chan struct{}))
	if err != nil {
		t.Fatal(err)
	}
	if msg.Data.Data[3] != 4 {
		t.Fatalf("held frame corrupted: %v", msg.Data.Data)
	}
}

// TestTCPEdgeReopen re-opens an edge on both sides (a geometry change
// between steps) and checks the new generation works and epochs advanced.
func TestTCPEdgeReopen(t *testing.T) {
	ts := mesh(t, 2)
	id := EdgeID{Bound: 0, Dir: Fwd, S: 0, Q: 0}
	abort := make(chan struct{})
	for gen := 0; gen < 3; gen++ {
		send, err := ts[0].OpenEdge(id, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		recv, err := ts[1].OpenEdge(id, 0, 2)
		if err != nil {
			t.Fatal(err)
		}
		mat := tensor.New(1, gen+1)
		for i := range mat.Data {
			mat.Data[i] = float64(gen)
		}
		if err := send.SendView(0, mat); err != nil {
			t.Fatal(err)
		}
		msg, err := recv.Recv(abort)
		if err != nil {
			t.Fatal(err)
		}
		if msg.Data.Cols != gen+1 || msg.Data.Data[0] != float64(gen) {
			t.Fatalf("generation %d received %dx%d %v", gen, msg.Data.Rows, msg.Data.Cols, msg.Data.Data)
		}
	}
}

func TestTCPControlAndTensors(t *testing.T) {
	ts := mesh(t, 2)
	if err := ts[0].SendControl(1, []byte(`{"kind":"hello"}`)); err != nil {
		t.Fatal(err)
	}
	mat := tensor.New(2, 3)
	for i := range mat.Data {
		mat.Data[i] = float64(i) * 1.5
	}
	if err := ts[0].SendTensor(1, 2, 9, mat); err != nil {
		t.Fatal(err)
	}
	select {
	case cm := <-ts[1].Ctrl():
		if cm.Peer != 0 || string(cm.Data) != `{"kind":"hello"}` {
			t.Fatalf("control mismatch: %+v", cm)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("control frame never arrived")
	}
	select {
	case tm := <-ts[1].Tensors():
		if tm.Peer != 0 || tm.Class != 2 || tm.Index != 9 || tm.Data.Data[5] != 7.5 {
			t.Fatalf("tensor mismatch: %+v", tm)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("tensor frame never arrived")
	}
}

func TestTCPGroupAllReduce(t *testing.T) {
	const n, size = 3, 41
	ts := mesh(t, n)
	members := []int{0, 1, 2}
	groups := make([]Group, n)
	for r := range ts {
		g, err := ts[r].OpenGroup(5, members, size)
		if err != nil {
			t.Fatal(err)
		}
		groups[r] = g
	}
	abort := make(chan struct{})
	for round := 0; round < 4; round++ {
		bufs := randBufs(n, size, int64(round+100))
		want := naiveSum(bufs)
		var wg sync.WaitGroup
		errs := make([]error, n)
		for r := 0; r < n; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				errs[r] = groups[r].AllReduce(bufs[r], abort)
			}(r)
		}
		wg.Wait()
		for r := 0; r < n; r++ {
			if errs[r] != nil {
				t.Fatal(errs[r])
			}
			for i := range want {
				if math.Abs(bufs[r][i]-want[i]) > 1e-12*math.Max(1, math.Abs(want[i])) {
					t.Fatalf("round %d rank %d element %d: %g want %g", round, r, i, bufs[r][i], want[i])
				}
				if bufs[r][i] != bufs[0][i] {
					t.Fatalf("round %d: ranks not bit-identical at %d", round, i)
				}
			}
		}
	}
}

func TestTCPCloseUnblocksRecv(t *testing.T) {
	ts := mesh(t, 2)
	recv, err := ts[1].OpenEdge(EdgeID{Bound: 0, Dir: Fwd, S: 0, Q: 0}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := recv.Recv(make(chan struct{}))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	ts[1].Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("recv returned %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("recv never unblocked after Close")
	}
}

func TestTCPRecvAbort(t *testing.T) {
	ts := mesh(t, 2)
	recv, err := ts[1].OpenEdge(EdgeID{Bound: 0, Dir: Fwd, S: 0, Q: 0}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	abort := make(chan struct{})
	close(abort)
	if _, err := recv.Recv(abort); !errors.Is(err, ErrAborted) {
		t.Fatalf("recv returned %v, want ErrAborted", err)
	}
}
