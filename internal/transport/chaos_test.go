package transport

import (
	"errors"
	"sync"
	"testing"
	"time"

	"dapple/internal/tensor"
)

// logTransport is a fake inner Transport recording every delivered send, so
// chaos tests can observe exactly which frames survived the fault layer.
type logTransport struct {
	mu    sync.Mutex
	log   map[EdgeID][]int
	close int
}

func newLogTransport() *logTransport {
	return &logTransport{log: make(map[EdgeID][]int)}
}

func (l *logTransport) OpenEdge(id EdgeID, peer, cap int) (Edge, error) {
	return &logEdge{l: l, id: id}, nil
}

func (l *logTransport) OpenGroup(gid int, members []int, size int) (Group, error) {
	return nil, errors.New("log transport has no groups")
}

func (l *logTransport) Close() error {
	l.mu.Lock()
	l.close++
	l.mu.Unlock()
	return nil
}

func (l *logTransport) delivered(id EdgeID) []int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]int(nil), l.log[id]...)
}

type logEdge struct {
	l  *logTransport
	id EdgeID
}

func (e *logEdge) SendView(m int, view *tensor.Matrix) error { return e.SendCopy(m, view) }

func (e *logEdge) SendCopy(m int, data *tensor.Matrix) error {
	e.l.mu.Lock()
	e.l.log[e.id] = append(e.l.log[e.id], m)
	e.l.mu.Unlock()
	return nil
}

func (e *logEdge) Recv(abort <-chan struct{}) (Msg, error) {
	<-abort
	return Msg{}, ErrAborted
}

// chaosSchedule replays n sends on each of the given edges through a Chaos
// wrapper over a log transport and returns the delivered sequences.
func chaosSchedule(t *testing.T, cfg ChaosConfig, ids []EdgeID, n int) map[EdgeID][]int {
	t.Helper()
	inner := newLogTransport()
	ch := NewChaos(inner, cfg)
	defer ch.Close()
	mat := tensor.New(1, 1)
	out := make(map[EdgeID][]int, len(ids))
	for _, id := range ids {
		e, err := ch.OpenEdge(id, 1, n)
		if err != nil {
			t.Fatal(err)
		}
		for m := 0; m < n; m++ {
			if err := e.SendCopy(m, mat); err != nil {
				t.Fatal(err)
			}
		}
		out[id] = inner.delivered(id)
	}
	return out
}

// TestChaosDeterministicSchedule replays the same fault config three times:
// identical seeds must produce identical delivered sequences on every edge,
// and a different seed must produce a different one — the property that makes
// every chaos failure a reproducible test case.
func TestChaosDeterministicSchedule(t *testing.T) {
	ids := []EdgeID{
		{Bound: 0, Dir: Fwd, S: 0, Q: 1},
		{Bound: 0, Dir: Bwd, S: 1, Q: 0},
		{Bound: 3, Dir: Fwd, S: 2, Q: 2},
	}
	cfg := ChaosConfig{Seed: 42, DropProb: 0.3, DupProb: 0.2}
	const n = 200
	a := chaosSchedule(t, cfg, ids, n)
	b := chaosSchedule(t, cfg, ids, n)
	for _, id := range ids {
		if len(a[id]) == 0 || len(a[id]) == n {
			t.Fatalf("edge %v: degenerate schedule (%d of %d delivered) — fault draws not applied", id, len(a[id]), n)
		}
		if len(a[id]) != len(b[id]) {
			t.Fatalf("edge %v: same seed delivered %d vs %d frames", id, len(a[id]), len(b[id]))
		}
		for i := range a[id] {
			if a[id][i] != b[id][i] {
				t.Fatalf("edge %v: same seed diverged at delivery %d: %d vs %d", id, i, a[id][i], b[id][i])
			}
		}
	}
	cfg.Seed = 43
	c := chaosSchedule(t, cfg, ids, n)
	same := true
	for _, id := range ids {
		if len(c[id]) != len(a[id]) {
			same = false
			break
		}
		for i := range c[id] {
			if c[id][i] != a[id][i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules on every edge")
	}
}

// TestChaosScheduleIndependentOfInterleaving drives two edges' sends from
// concurrent goroutines and asserts each edge's delivered sequence matches
// the sequential replay: per-edge streams make the schedule immune to
// goroutine interleaving.
func TestChaosScheduleIndependentOfInterleaving(t *testing.T) {
	ids := []EdgeID{
		{Bound: 1, Dir: Fwd, S: 0, Q: 1},
		{Bound: 1, Dir: Bwd, S: 1, Q: 0},
	}
	cfg := ChaosConfig{Seed: 7, DropProb: 0.4, DupProb: 0.1}
	const n = 300
	want := chaosSchedule(t, cfg, ids, n)

	inner := newLogTransport()
	ch := NewChaos(inner, cfg)
	defer ch.Close()
	var wg sync.WaitGroup
	for _, id := range ids {
		e, err := ch.OpenEdge(id, 1, n)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(e Edge) {
			defer wg.Done()
			mat := tensor.New(1, 1)
			for m := 0; m < n; m++ {
				e.SendCopy(m, mat)
			}
		}(e)
	}
	wg.Wait()
	for _, id := range ids {
		got := inner.delivered(id)
		if len(got) != len(want[id]) {
			t.Fatalf("edge %v: concurrent run delivered %d frames, sequential %d", id, len(got), len(want[id]))
		}
		for i := range got {
			if got[i] != want[id][i] {
				t.Fatalf("edge %v: concurrent run diverged at %d", id, i)
			}
		}
	}
}

// TestChaosDuplicate checks DupProb=1 delivers every frame exactly twice.
func TestChaosDuplicate(t *testing.T) {
	id := EdgeID{Bound: 0, Dir: Fwd, S: 0, Q: 0}
	got := chaosSchedule(t, ChaosConfig{Seed: 1, DupProb: 1}, []EdgeID{id}, 5)[id]
	want := []int{0, 0, 1, 1, 2, 2, 3, 3, 4, 4}
	if len(got) != len(want) {
		t.Fatalf("delivered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivered %v, want %v", got, want)
		}
	}
}

// TestChaosFreeze scripts an edge to freeze after 2 sends: the third send
// must block until the transport closes, then fail with ErrChaos — the hung
// rank the liveness plane exists to detect.
func TestChaosFreeze(t *testing.T) {
	id := EdgeID{Bound: 0, Dir: Fwd, S: 0, Q: 0}
	inner := newLogTransport()
	ch := NewChaos(inner, ChaosConfig{Seed: 1, Freeze: map[EdgeID]int{id: 2}})
	e, err := ch.OpenEdge(id, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	mat := tensor.New(1, 1)
	for m := 0; m < 2; m++ {
		if err := e.SendCopy(m, mat); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 1)
	go func() { done <- e.SendCopy(2, mat) }()
	select {
	case err := <-done:
		t.Fatalf("frozen send returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	ch.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrChaos) {
			t.Fatalf("frozen send returned %v, want ErrChaos", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("frozen send never unblocked after Close")
	}
	if got := inner.delivered(id); len(got) != 2 {
		t.Fatalf("frozen edge delivered %v, want exactly the 2 pre-freeze frames", got)
	}
}

// TestChaosTearAfter checks the scripted transport tear: the crossing
// operation and everything after it fail with ErrChaos, the inner transport
// is closed exactly once, and Torn reports the fault.
func TestChaosTearAfter(t *testing.T) {
	id := EdgeID{Bound: 0, Dir: Fwd, S: 0, Q: 0}
	inner := newLogTransport()
	ch := NewChaos(inner, ChaosConfig{Seed: 1, TearAfter: 3})
	e, err := ch.OpenEdge(id, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	mat := tensor.New(1, 1)
	for m := 0; m < 2; m++ {
		if err := e.SendCopy(m, mat); err != nil {
			t.Fatal(err)
		}
	}
	if ch.Torn() {
		t.Fatal("torn before the scripted op count")
	}
	for m := 2; m < 5; m++ {
		if err := e.SendCopy(m, mat); !errors.Is(err, ErrChaos) {
			t.Fatalf("send %d after tear returned %v, want ErrChaos", m, err)
		}
	}
	if !ch.Torn() {
		t.Fatal("Torn not reported after the scripted tear")
	}
	inner.mu.Lock()
	closes := inner.close
	inner.mu.Unlock()
	if closes != 1 {
		t.Fatalf("inner transport closed %d times, want 1", closes)
	}
}

// TestChaosOverTCP cross-checks the fault layer against a real socket pair:
// the delivered micro-batch sequence on the wire must equal the schedule the
// same seed produces on a fake inner transport.
func TestChaosOverTCP(t *testing.T) {
	id := EdgeID{Bound: 0, Dir: Fwd, S: 0, Q: 1}
	cfg := ChaosConfig{Seed: 99, DropProb: 0.35, DupProb: 0.25}
	const n = 64
	want := chaosSchedule(t, cfg, []EdgeID{id}, n)[id]

	ts := mesh(t, 2)
	ch := NewChaos(ts[0], cfg)
	send, err := ch.OpenEdge(id, 1, 2*n)
	if err != nil {
		t.Fatal(err)
	}
	recv, err := ts[1].OpenEdge(id, 0, 2*n)
	if err != nil {
		t.Fatal(err)
	}
	mat := tensor.New(1, 2)
	for m := 0; m < n; m++ {
		mat.Data[0], mat.Data[1] = float64(m), float64(-m)
		if err := send.SendCopy(m, mat); err != nil {
			t.Fatal(err)
		}
	}
	abort := make(chan struct{})
	for i, m := range want {
		msg, err := recv.Recv(abort)
		if err != nil {
			t.Fatal(err)
		}
		if msg.M != m || msg.Data.Data[0] != float64(m) {
			t.Fatalf("delivery %d: got micro-batch %d (%v), want %d", i, msg.M, msg.Data.Data, m)
		}
		Recycle(msg.Free, msg.Data)
	}
	timer := time.AfterFunc(100*time.Millisecond, func() { close(abort) })
	defer timer.Stop()
	if msg, err := recv.Recv(abort); err == nil {
		t.Fatalf("extra frame %d delivered beyond the scripted schedule", msg.M)
	}
}
