package transport

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dapple/internal/tensor"
)

// ErrPeerDown is wrapped by operations targeting a rank whose connection has
// failed while the transport runs in peer-isolation mode (the rest of the
// mesh stays live). errors.Is(err, ErrPeerDown) distinguishes a lost peer
// from a dead transport.
var ErrPeerDown = errors.New("transport: peer down")

// defaultDialRetryLimit caps DialRetry's total retry window when the caller's
// context carries no deadline, so a peer that never comes up fails the dial
// instead of retrying forever. A var (not a const) so tests can shrink it.
var defaultDialRetryLimit = 2 * time.Minute

// defaultJoinTimeout bounds DialJoin's admission round-trip when the caller's
// context carries no deadline.
var defaultJoinTimeout = 30 * time.Second

// DialRetry's backoff schedule: delays grow exponentially from
// dialBackoffBase, cap at dialBackoffMax, and are scaled by a seeded jitter
// factor so W workers re-dialing a restarted peer spread out instead of
// thundering in lock-step.
const (
	dialBackoffBase = 100 * time.Millisecond
	dialBackoffMax  = 2 * time.Second
)

// dialBackoff returns retry delay number attempt (0-based): exponential
// growth from dialBackoffBase capped at dialBackoffMax, scaled by a jitter
// factor drawn uniformly from [0.75, 1.25) off rng. Deterministic given the
// rng's seed, so a schedule can be pinned in tests.
func dialBackoff(rng *rand.Rand, attempt int) time.Duration {
	d := dialBackoffBase
	for i := 0; i < attempt && d < dialBackoffMax; i++ {
		d *= 2
	}
	if d > dialBackoffMax {
		d = dialBackoffMax
	}
	return time.Duration(float64(d) * (0.75 + 0.5*rng.Float64()))
}

// dialSeed derives a deterministic jitter seed from the dialer's identity and
// the target, so each (rank, peer) pair walks its own schedule.
func dialSeed(rank, peer int, addr string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%s", rank, peer, addr)
	return int64(h.Sum64())
}

// CtrlMsg is one received control-plane payload and the rank it came from.
type CtrlMsg struct {
	// Peer is the sender's rank.
	Peer int
	// Data is the opaque control payload.
	Data []byte
}

// TensorMsg is one received out-of-band tensor (weight broadcast, step
// inputs) with its routing fields.
type TensorMsg struct {
	// Peer is the sender's rank.
	Peer int
	// Class distinguishes tensor streams (weights vs step inputs).
	Class int
	// Index is the tensor's index within its class.
	Index int
	// Data is the received tensor, leased from the transport's recycle
	// pool: hand it back with RecycleTensor once consumed, or keep it
	// (without recycling) when the payload is retained.
	Data *tensor.Matrix
}

// Stats is a snapshot of a TCP transport's traffic counters.
type Stats struct {
	// BytesSent counts header+payload bytes written to peers.
	BytesSent int64
	// BytesRecv counts header+payload bytes read from peers.
	BytesRecv int64
	// FramesSent counts frames written.
	FramesSent int64
	// FramesRecv counts frames read.
	FramesRecv int64
}

// TCP is the socket Transport: one multiplexed connection per peer process,
// length-prefixed binary frames (see frame.go), a buffered writer pump and a
// demultiplexing reader pump per connection. Edges and collective groups
// are registered demux keys; frames arriving before the local endpoint has
// opened the matching edge are held at the head of the stream until it does
// (steps are coordinator-gated, so this only happens transiently while
// peers rebuild geometry). Beyond Transport it carries the coordinator
// protocol's control plane: HELLO rank exchange, opaque control payloads
// and out-of-band tensors.
//
// By default a TCP transport fails stop: the first connection error closes
// the whole transport and every blocked operation returns ErrClosed. With
// SetPeerIsolation(true) — the fault-tolerant session mode — a connection
// error instead marks only that peer down: sends toward it return
// ErrPeerDown, PeerDowns reports it, and the rest of the mesh keeps running
// so the session layer can re-plan onto the survivors.
type TCP struct {
	rank int
	ln   net.Listener

	mu          sync.Mutex
	conns       map[int]*tcpConn
	connWait    chan struct{} // closed and remade on each registration or peer-down
	edges       map[EdgeID]*edgeSlot
	groups      map[int]*groupSlot
	err         error
	isolate     bool
	downs       map[int]error
	downWait    chan struct{} // closed and remade when the down set grows
	epochFloor  uint32
	acceptJoins bool

	closed    chan struct{}
	closeOnce sync.Once

	ctrl  chan CtrlMsg
	tens  chan TensorMsg
	joins chan *JoinRequest

	// ctrlFree and tensFree recycle inbound payload buffers: the reader
	// pumps lease from them instead of allocating per frame, and consumers
	// hand exhausted buffers back through RecycleCtrl/RecycleTensor. A
	// consumer that retains a payload simply never recycles it.
	ctrlFree chan []byte
	tensFree chan *tensor.Matrix

	bytesSent, bytesRecv   atomic.Int64
	framesSent, framesRecv atomic.Int64

	wg sync.WaitGroup // accept loop + connection pumps
}

// NewTCP returns a dial-only transport (the coordinator's side).
func NewTCP() *TCP { return newTCP() }

func newTCP() *TCP {
	return &TCP{
		rank:     -1,
		conns:    make(map[int]*tcpConn),
		connWait: make(chan struct{}),
		edges:    make(map[EdgeID]*edgeSlot),
		groups:   make(map[int]*groupSlot),
		downs:    make(map[int]error),
		downWait: make(chan struct{}),
		closed:   make(chan struct{}),
		ctrl:     make(chan CtrlMsg, 64),
		tens:     make(chan TensorMsg, 256),
		joins:    make(chan *JoinRequest, 16),
		ctrlFree: make(chan []byte, 64),
		tensFree: make(chan *tensor.Matrix, 64),
	}
}

// leaseCtrl leases an n-byte control payload buffer, reusing a recycled one
// of sufficient capacity.
func (t *TCP) leaseCtrl(n int) []byte {
	select {
	case b := <-t.ctrlFree:
		if cap(b) >= n {
			return b[:n]
		}
	default:
	}
	return make([]byte, n)
}

// RecycleCtrl returns a consumed control payload (CtrlMsg.Data) to the
// reader pumps' free list. The caller must not touch the buffer afterwards;
// dropping a payload without recycling is always safe, it just allocates.
func (t *TCP) RecycleCtrl(b []byte) {
	if cap(b) == 0 {
		return
	}
	select {
	case t.ctrlFree <- b[:0]:
	default:
	}
}

// RecycleTensor returns a consumed out-of-band tensor (TensorMsg.Data) to
// the reader pumps' free list. Consumers that retain the matrix — weight
// snapshots, optimizer state — must simply not recycle it.
func (t *TCP) RecycleTensor(m *tensor.Matrix) {
	if m == nil {
		return
	}
	Recycle(t.tensFree, m)
}

// ListenTCP returns a transport accepting peer connections on addr
// (host:port, port 0 picks a free one).
func ListenTCP(addr string) (*TCP, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	t := newTCP()
	t.ln = ln
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// SetRank fixes this transport's rank, announced in the HELLO frame of every
// outbound connection. It must be called before Dial.
func (t *TCP) SetRank(r int) { t.rank = r }

// Rank returns the transport's rank (-1 until SetRank).
func (t *TCP) Rank() int { return t.rank }

// Addr returns the listen address, or "" for dial-only transports.
func (t *TCP) Addr() string {
	if t.ln == nil {
		return ""
	}
	return t.ln.Addr().String()
}

// Stats returns a snapshot of the traffic counters.
func (t *TCP) Stats() Stats {
	return Stats{
		BytesSent:  t.bytesSent.Load(),
		BytesRecv:  t.bytesRecv.Load(),
		FramesSent: t.framesSent.Load(),
		FramesRecv: t.framesRecv.Load(),
	}
}

// Ctrl returns the merged control-plane inbox.
func (t *TCP) Ctrl() <-chan CtrlMsg { return t.ctrl }

// Tensors returns the merged out-of-band tensor inbox.
func (t *TCP) Tensors() <-chan TensorMsg { return t.tens }

// SetPeerIsolation switches the transport's failure semantics: on, a
// connection error downs only that peer (see PeerDowns); off (the default),
// it fails the whole transport. Fault-tolerant sessions enable isolation on
// every rank so the mesh survives a worker's death.
func (t *TCP) SetPeerIsolation(on bool) {
	t.mu.Lock()
	t.isolate = on
	t.mu.Unlock()
}

// SendHeartbeat sends one liveness keep-alive frame to peer. Any received
// frame refreshes the peer's last-heard clock; heartbeats exist so an idle
// mesh still carries liveness evidence.
func (t *TCP) SendHeartbeat(peer int) error {
	return t.enqueue(peer, outFrame{h: Header{Type: FrameHeartbeat}})
}

// LastHeard returns the time the last frame arrived from peer (the
// connection time before any traffic). ok is false when no live connection
// to peer exists.
func (t *TCP) LastHeard(peer int) (last time.Time, ok bool) {
	t.mu.Lock()
	c, live := t.conns[peer]
	t.mu.Unlock()
	if !live {
		return time.Time{}, false
	}
	return time.Unix(0, c.lastHeard.Load()), true
}

// Peers returns the ranks with a live connection, ascending — the liveness
// plane's watch list.
func (t *TCP) Peers() []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	ranks := make([]int, 0, len(t.conns))
	for r := range t.conns {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	return ranks
}

// PeerDowns returns the ranks marked down under peer isolation (ascending)
// and a channel closed the next time the set grows, so liveness waits can
// select on membership changes instead of polling.
func (t *TCP) PeerDowns() ([]int, <-chan struct{}) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ranks := make([]int, 0, len(t.downs))
	for r := range t.downs {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	return ranks, t.downWait
}

// DownErr returns the error that downed rank, or nil while it is live.
func (t *TCP) DownErr(rank int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.downs[rank]
}

// ClosePeer forcibly disconnects rank for the given reason — the liveness
// monitor's verdict on a rank whose heartbeats stopped. Under peer isolation
// the rank is marked down and the rest of the mesh survives; otherwise the
// whole transport fails, preserving fail-stop semantics.
func (t *TCP) ClosePeer(rank int, reason error) {
	t.mu.Lock()
	isolate := t.isolate
	t.mu.Unlock()
	if isolate {
		t.peerDown(rank, reason)
		return
	}
	t.fail(reason)
}

// peerDown marks rank down: its connection is closed and removed, blocked
// sends toward it unblock with ErrPeerDown, and both the registration and
// down-set latches fire. Idempotent per rank.
func (t *TCP) peerDown(rank int, err error) {
	t.mu.Lock()
	if _, dup := t.downs[rank]; dup {
		t.mu.Unlock()
		return
	}
	t.downs[rank] = err
	c, live := t.conns[rank]
	delete(t.conns, rank)
	close(t.connWait)
	t.connWait = make(chan struct{})
	close(t.downWait)
	t.downWait = make(chan struct{})
	t.mu.Unlock()
	if live {
		c.nc.Close()
		close(c.dead)
	}
}

// connFail routes a connection pump's error: to the single peer under
// isolation, to the whole transport otherwise.
func (t *TCP) connFail(c *tcpConn, err error) {
	t.mu.Lock()
	isolate := t.isolate
	t.mu.Unlock()
	if isolate {
		t.peerDown(c.peer, err)
		return
	}
	t.fail(err)
}

// Retire ends the current session generation's data-plane state: every open
// edge and group generation is torn down (their blocked operations return
// ErrClosed, held deliveries are dropped) and frames of generations below
// floor are discarded on arrival instead of held. Survivor re-planning calls
// Retire with the new session generation's epoch floor before rebuilding
// executors, so in-flight traffic from the torn step can neither corrupt nor
// deadlock the rebuilt pipeline; all ranks must use the same floor.
func (t *TCP) Retire(floor uint32) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if floor > t.epochFloor {
		t.epochFloor = floor
	}
	// Waking every slot's opened latch (not just torn generations') matters:
	// a reader pump can be parked in a head-of-stream hold on a slot that was
	// NEVER opened locally — a frame for a generation this endpoint hadn't
	// built yet. Without the wake it would sleep until an OpenEdge that may
	// never come; with it, the hold re-checks the raised floor and discards
	// the now-retired frame.
	for _, sl := range t.edges {
		if sl.st != nil {
			close(sl.st.dead)
			sl.st = nil
		}
		close(sl.opened)
		sl.opened = make(chan struct{})
	}
	for _, sl := range t.groups {
		if sl.g != nil {
			close(sl.g.dead)
			sl.g = nil
		}
		close(sl.opened)
		sl.opened = make(chan struct{})
	}
}

// Dial connects to the peer rank at addr, sends the HELLO frame and starts
// the connection's pumps.
func (t *TCP) Dial(ctx context.Context, peer int, addr string) error {
	var d net.Dialer
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return err
	}
	c := newTCPConn(t, peer, nc, nil)
	if err := t.register(c); err != nil {
		nc.Close()
		return err
	}
	// HELLO is the connection's first frame; enqueueing it before the writer
	// pump starts guarantees it precedes any edge or control traffic.
	c.out <- outFrame{h: Header{Type: FrameHello, A: int32(t.rank)}}
	c.start()
	return nil
}

// DialRetry is Dial retried with exponential backoff until ctx expires, for
// concurrent mesh bring-up: a peer's listener may not be up yet when this
// process starts, so connection-refused is a wait, not a failure. Retry
// delays grow from dialBackoffBase to dialBackoffMax with seeded jitter (see
// dialBackoff), so W workers re-dialing a restarted peer spread their
// attempts instead of thundering in lock-step. The retry window is always
// bounded: a ctx without a deadline is capped at a package default (2
// minutes), so a peer that never comes up fails the dial instead of retrying
// forever. Returns the last dial error when the window runs out.
func (t *TCP) DialRetry(ctx context.Context, peer int, addr string) error {
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, defaultDialRetryLimit)
		defer cancel()
	}
	rng := rand.New(rand.NewSource(dialSeed(t.rank, peer, addr)))
	for attempt := 0; ; attempt++ {
		err := t.Dial(ctx, peer, addr)
		if err == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("transport: dial rank %d at %s: gave up: %w: last error: %w", peer, addr, ctx.Err(), err)
		case <-time.After(dialBackoff(rng, attempt)):
		}
	}
}

// acceptLoop accepts inbound peer connections; each must open with HELLO.
func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		nc, err := t.ln.Accept()
		if err != nil {
			select {
			case <-t.closed:
			default:
				t.fail(err)
			}
			return
		}
		t.wg.Add(1)
		go t.handshake(nc)
	}
}

// handshake reads an inbound connection's opening frame: HELLO (a known rank
// connecting) registers the connection and starts its pumps; FrameJoinReq (a
// rankless process asking to be admitted) is handed to the session layer via
// Joins when joins are accepted, rejected on the wire otherwise.
func (t *TCP) handshake(nc net.Conn) {
	defer t.wg.Done()
	fr := NewFrameReader(nc)
	h, err := fr.ReadHeader()
	if err != nil {
		nc.Close()
		return
	}
	switch h.Type {
	case FrameHello:
		c := newTCPConn(t, int(h.A), nc, fr)
		if err := t.register(c); err != nil {
			nc.Close()
			return
		}
		c.start()
	case FrameJoinReq:
		payload := make([]byte, h.N)
		if err := fr.ReadBytes(payload); err != nil {
			nc.Close()
			return
		}
		t.mu.Lock()
		accept := t.acceptJoins
		t.mu.Unlock()
		if !accept {
			rejectJoin(nc, t.rank, "transport does not accept joins")
			nc.Close()
			return
		}
		select {
		case t.joins <- &JoinRequest{Payload: payload, t: t, nc: nc, fr: fr}:
		case <-t.closed:
			nc.Close()
		default:
			rejectJoin(nc, t.rank, "join queue full")
			nc.Close()
		}
	default:
		nc.Close()
	}
}

// SetAcceptJoins switches membership-handshake admission on the listener: on,
// inbound FrameJoinReq connections surface on Joins; off (the default), they
// are rejected on the wire. Elastic sessions turn it on at the coordinator.
func (t *TCP) SetAcceptJoins(on bool) {
	t.mu.Lock()
	t.acceptJoins = on
	t.mu.Unlock()
}

// Joins returns the inbox of pending membership handshakes. Each request must
// be answered exactly once with Grant or Reject; the admission policy (rank
// allocation, version checks) lives in the session layer.
func (t *TCP) Joins() <-chan *JoinRequest { return t.joins }

// JoinRequest is one inbound membership handshake held open by the listener:
// a rankless process sent FrameJoinReq and is blocked waiting for the grant
// frame. Grant admits it under a fresh rank; Reject answers with a reason and
// closes the connection.
type JoinRequest struct {
	// Payload is the joiner's opaque request (the session layer's JSON).
	Payload []byte

	t    *TCP
	nc   net.Conn
	fr   *FrameReader
	mu   sync.Mutex
	done bool
}

// Grant admits the joiner as rank: the reply payload rides the grant frame,
// the connection is registered in the peer table under rank and its pumps
// start, so mid-session ranks get the same generation-safe edge demux as
// launch-time peers. rank must be fresh — ranks marked down stay banned.
func (j *JoinRequest) Grant(rank int, reply []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.done {
		return errors.New("transport: join request already answered")
	}
	j.done = true
	c := newTCPConn(j.t, rank, j.nc, j.fr)
	if err := j.t.register(c); err != nil {
		j.nc.Close()
		return err
	}
	// The grant is written directly: the writer pump only starts below, so
	// nothing can interleave with it.
	fw := NewFrameWriter(j.nc)
	err := fw.WriteBytes(Header{Type: FrameJoinGrant, A: int32(rank), B: int32(j.t.rank)}, reply)
	if err == nil {
		err = fw.Flush()
	}
	if err != nil {
		j.t.peerDown(rank, err)
		return err
	}
	c.start()
	return nil
}

// Reject answers the handshake with a reason and closes the connection. Safe
// to call after Grant (it becomes a no-op), so error paths can always reject.
func (j *JoinRequest) Reject(reason string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.done {
		return
	}
	j.done = true
	rejectJoin(j.nc, j.t.rank, reason)
	j.nc.Close()
}

// rejectJoin writes a rejection grant (rank -1, reason as payload) on a raw
// connection.
func rejectJoin(nc net.Conn, rank int, reason string) {
	fw := NewFrameWriter(nc)
	if err := fw.WriteBytes(Header{Type: FrameJoinGrant, A: -1, B: int32(rank)}, []byte(reason)); err == nil {
		fw.Flush()
	}
}

// DialJoin dials a listening transport and runs the membership handshake: it
// sends FrameJoinReq with the opaque request payload, blocks for the grant,
// and on admission adopts the granted rank as this transport's own, registers
// the connection under the granter's rank and starts its pumps. It must be
// called before any other connection exists (the joiner is rankless until the
// grant). Returns the granted rank, the granter's rank and the opaque reply.
func (t *TCP) DialJoin(ctx context.Context, addr string, payload []byte) (rank, granter int, reply []byte, err error) {
	var d net.Dialer
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return 0, 0, nil, err
	}
	deadline := time.Now().Add(defaultJoinTimeout)
	if dl, ok := ctx.Deadline(); ok {
		deadline = dl
	}
	nc.SetDeadline(deadline)
	fw := NewFrameWriter(nc)
	err = fw.WriteBytes(Header{Type: FrameJoinReq}, payload)
	if err == nil {
		err = fw.Flush()
	}
	if err != nil {
		nc.Close()
		return 0, 0, nil, fmt.Errorf("transport: join %s: %w", addr, err)
	}
	fr := NewFrameReader(nc)
	h, err := fr.ReadHeader()
	if err != nil {
		nc.Close()
		return 0, 0, nil, fmt.Errorf("transport: join %s: no grant: %w", addr, err)
	}
	if h.Type != FrameJoinGrant {
		nc.Close()
		return 0, 0, nil, fmt.Errorf("transport: join %s: unexpected frame type %d", addr, h.Type)
	}
	reply = make([]byte, h.N)
	if err := fr.ReadBytes(reply); err != nil {
		nc.Close()
		return 0, 0, nil, fmt.Errorf("transport: join %s: torn grant: %w", addr, err)
	}
	if h.A < 0 {
		nc.Close()
		return 0, 0, nil, fmt.Errorf("transport: join %s rejected: %s", addr, reply)
	}
	nc.SetDeadline(time.Time{})
	t.SetRank(int(h.A))
	c := newTCPConn(t, int(h.B), nc, fr)
	if err := t.register(c); err != nil {
		nc.Close()
		return 0, 0, nil, err
	}
	c.start()
	return int(h.A), int(h.B), reply, nil
}

// register adds a connection to the peer table and wakes WaitPeers. Ranks
// already marked down are rejected: a failed rank cannot rejoin a session
// (recovery re-plans around it instead).
func (t *TCP) register(c *tcpConn) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return t.err
	}
	if err, down := t.downs[c.peer]; down {
		return fmt.Errorf("%w: rank %d cannot rejoin: %v", ErrPeerDown, c.peer, err)
	}
	if _, dup := t.conns[c.peer]; dup {
		return fmt.Errorf("transport: duplicate connection from rank %d", c.peer)
	}
	t.conns[c.peer] = c
	close(t.connWait)
	t.connWait = make(chan struct{})
	return nil
}

// WaitPeers blocks until a connection to every listed rank exists; a listed
// rank going down while waiting fails the wait.
func (t *TCP) WaitPeers(ctx context.Context, peers []int) error {
	for {
		t.mu.Lock()
		missing := false
		var downErr error
		for _, p := range peers {
			if _, ok := t.conns[p]; !ok {
				missing = true
				if err, down := t.downs[p]; down {
					downErr = fmt.Errorf("%w: rank %d: %v", ErrPeerDown, p, err)
				}
				break
			}
		}
		wait := t.connWait
		t.mu.Unlock()
		if downErr != nil {
			return downErr
		}
		if !missing {
			return nil
		}
		select {
		case <-wait:
		case <-ctx.Done():
			return ctx.Err()
		case <-t.closed:
			return t.closeErr()
		}
	}
}

// conn returns the registered connection to peer.
func (t *TCP) conn(peer int) (*tcpConn, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return nil, t.err
	}
	if err, down := t.downs[peer]; down {
		return nil, fmt.Errorf("%w: rank %d: %v", ErrPeerDown, peer, err)
	}
	c, ok := t.conns[peer]
	if !ok {
		return nil, fmt.Errorf("transport: no connection to rank %d", peer)
	}
	return c, nil
}

// enqueue hands a frame to peer's writer pump. A peer going down mid-wait
// unblocks the send with ErrPeerDown, so a full queue toward a hung rank
// can never wedge the caller past the liveness monitor's verdict.
func (t *TCP) enqueue(peer int, f outFrame) error {
	c, err := t.conn(peer)
	if err != nil {
		return err
	}
	select {
	case c.out <- f:
		return nil
	case <-c.dead:
		return fmt.Errorf("%w: rank %d", ErrPeerDown, c.peer)
	case <-t.closed:
		return t.closeErr()
	}
}

// SendControl sends an opaque control payload to peer.
func (t *TCP) SendControl(peer int, payload []byte) error {
	return t.enqueue(peer, outFrame{h: Header{Type: FrameControl}, payload: payload})
}

// SendTensor sends an out-of-band tensor to peer under (class, index).
func (t *TCP) SendTensor(peer, class, index int, m *tensor.Matrix) error {
	return t.enqueue(peer, outFrame{
		h: Header{
			Type: FrameTensor, A: int32(class), M: int32(index),
			Rows: int32(m.Rows), Cols: int32(m.Cols),
		},
		// The matrix is serialized asynchronously by the writer pump;
		// control-plane senders must not mutate it until the peer has acted
		// on it (the coordinator protocol's step gating guarantees this).
		mat: m,
	})
}

// SendTensorPooled is SendTensor with a recycle destination: the writer pump
// returns m to free as soon as its bytes are staged for the socket, so
// steady-state senders (the coordinator's per-micro label staging) cycle a
// small pool instead of allocating per send. The caller must lease m from
// free (see LeaseBuf) and not touch it after this call.
func (t *TCP) SendTensorPooled(peer, class, index int, m *tensor.Matrix, free chan *tensor.Matrix) error {
	return t.enqueue(peer, outFrame{
		h: Header{
			Type: FrameTensor, A: int32(class), M: int32(index),
			Rows: int32(m.Rows), Cols: int32(m.Cols),
		},
		mat: m, free: free,
	})
}

// fail records the first transport error and tears everything down.
func (t *TCP) fail(err error) {
	t.mu.Lock()
	if t.err == nil {
		t.err = err
	}
	t.mu.Unlock()
	t.shutdown()
}

// Done returns a channel closed when the transport has shut down, by clean
// Close or fail-stop; Err then reports why. Session layers select on it
// alongside Ctrl/Tensors so a dead mesh never strands a protocol wait.
func (t *TCP) Done() <-chan struct{} { return t.closed }

// Err returns the failure that tore the transport down, ErrClosed after a
// clean Close, or nil while the transport is live.
func (t *TCP) Err() error {
	select {
	case <-t.closed:
		return t.closeErr()
	default:
		return nil
	}
}

// closeErr returns the recorded failure, or ErrClosed after a clean Close.
func (t *TCP) closeErr() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return t.err
	}
	return ErrClosed
}

// Close shuts the transport down; blocked operations return ErrClosed.
func (t *TCP) Close() error {
	t.shutdown()
	t.wg.Wait()
	return nil
}

// shutdown closes the stop latch, the listener and every connection.
func (t *TCP) shutdown() {
	t.closeOnce.Do(func() {
		close(t.closed)
		if t.ln != nil {
			t.ln.Close()
		}
		t.mu.Lock()
		conns := make([]*tcpConn, 0, len(t.conns))
		for _, c := range t.conns {
			conns = append(conns, c)
		}
		t.mu.Unlock()
		for _, c := range conns {
			c.nc.Close()
		}
	})
}

// outFrame is one frame queued on a connection's writer pump, with exactly
// one payload source set (mat, vec or payload; none for HELLO).
type outFrame struct {
	h       Header
	mat     *tensor.Matrix
	vec     []float64
	payload []byte
	free    chan *tensor.Matrix // recycle destination for mat after staging
	stage   *groupStage         // shared group staging vec carries, if any
}

// groupStage is one shared serialization staging of a group contribution:
// every peer frame of the exchange references the same vector, and the last
// writer pump to stage its copy recycles it — one copy per exchange instead
// of one per peer.
type groupStage struct {
	v    []float64
	refs atomic.Int32
	free chan *groupStage
}

// tcpConn is one peer connection with its pumps.
type tcpConn struct {
	t         *TCP
	peer      int
	nc        net.Conn
	fr        *FrameReader // pre-created by handshake (it already read HELLO)
	out       chan outFrame
	dead      chan struct{} // closed when this peer is marked down
	lastHeard atomic.Int64  // unix nanos of the last frame read
}

// newTCPConn builds one peer connection's state; fr is non-nil on the accept
// side (the handshake already read HELLO from it).
func newTCPConn(t *TCP, peer int, nc net.Conn, fr *FrameReader) *tcpConn {
	c := &tcpConn{t: t, peer: peer, nc: nc, fr: fr, out: make(chan outFrame, 128), dead: make(chan struct{})}
	c.lastHeard.Store(time.Now().UnixNano())
	return c
}

// start launches the connection's reader and writer pumps.
func (c *tcpConn) start() {
	if c.fr == nil {
		c.fr = NewFrameReader(c.nc)
	}
	c.t.wg.Add(2)
	go c.writeLoop()
	go c.readLoop()
}

// writeBatchFrames caps how many queued frames one writev coalesces; with a
// header and a payload vector per frame the batch stays well under the
// kernel's iovec limit.
const writeBatchFrames = 32

// writeLoop drains queued frames in batches: each batch's float64 payloads
// are encoded into one reusable arena, the headers into fixed slots, and the
// whole batch — headers and payloads interleaved — is handed to the kernel
// as a single vectored write. Bursts (a group exchange, a step's
// micro-batches) collapse into one syscall; a lone frame costs exactly one.
// Staging buffers are recycled as soon as their bytes land in the arena, so
// senders reuse them without waiting on the socket.
func (c *tcpConn) writeLoop() {
	defer c.t.wg.Done()
	var (
		batch [writeBatchFrames]outFrame
		hdrs  [writeBatchFrames][HeaderSize]byte
		arena []byte
		iov   [][]byte
	)
	for {
		var f outFrame
		select {
		case f = <-c.out:
		case <-c.dead:
			return
		case <-c.t.closed:
			return
		}
		batch[0] = f
		n := 1
	fill:
		for n < writeBatchFrames {
			select {
			case batch[n] = <-c.out:
				n++
			default:
				break fill
			}
		}
		// Size the arena up front: growing it mid-encode would dangle the
		// slices already handed to the iovec.
		need := 0
		for i := 0; i < n; i++ {
			switch {
			case batch[i].mat != nil:
				need += 8 * len(batch[i].mat.Data)
			case batch[i].vec != nil:
				need += 8 * len(batch[i].vec)
			}
		}
		if cap(arena) < need {
			arena = make([]byte, need)
		}
		arena = arena[:need]
		iov = iov[:0]
		off := 0
		var payloadBytes int64
		for i := 0; i < n; i++ {
			f := &batch[i]
			var p []byte
			switch {
			case f.mat != nil:
				p = arena[off : off+8*len(f.mat.Data)]
				encodeF64(p, f.mat.Data)
				off += len(p)
			case f.vec != nil:
				p = arena[off : off+8*len(f.vec)]
				encodeF64(p, f.vec)
				off += len(p)
			default:
				p = f.payload
			}
			f.h.N = uint32(len(p))
			f.h.encode(hdrs[i][:])
			iov = append(iov, hdrs[i][:])
			if len(p) > 0 {
				iov = append(iov, p)
			}
			payloadBytes += int64(len(p))
			// The payload's bytes are in the arena; the staging buffer can
			// go back to its pool before the syscall.
			if f.free != nil {
				Recycle(f.free, f.mat)
			}
			if f.stage != nil && f.stage.refs.Add(-1) == 0 {
				select {
				case f.stage.free <- f.stage:
				default:
				}
			}
		}
		nb := net.Buffers(iov)
		if _, err := nb.WriteTo(c.nc); err != nil {
			c.t.connFail(c, err)
			return
		}
		c.t.framesSent.Add(int64(n))
		c.t.bytesSent.Add(int64(n*HeaderSize) + payloadBytes)
	}
}

// readLoop demultiplexes inbound frames to edges, groups and the control
// and tensor inboxes.
func (c *tcpConn) readLoop() {
	defer c.t.wg.Done()
	t := c.t
	for {
		h, err := c.fr.ReadHeader()
		if err != nil {
			select {
			case <-t.closed:
			case <-c.dead:
			default:
				t.connFail(c, fmt.Errorf("transport: read from rank %d: %w", c.peer, err))
			}
			return
		}
		c.lastHeard.Store(time.Now().UnixNano())
		t.framesRecv.Add(1)
		t.bytesRecv.Add(int64(HeaderSize) + int64(h.N))
		switch h.Type {
		case FrameControl:
			payload := t.leaseCtrl(int(h.N))
			if err = c.fr.ReadBytes(payload); err == nil {
				select {
				case t.ctrl <- CtrlMsg{Peer: c.peer, Data: payload}:
				case <-t.closed:
					return
				}
			}
		case FrameTensor:
			mat := LeaseBuf(t.tensFree, int(h.Rows), int(h.Cols))
			if err = c.fr.ReadF64(mat.Data); err == nil {
				select {
				case t.tens <- TensorMsg{Peer: c.peer, Class: int(h.A), Index: int(h.M), Data: mat}:
				case <-t.closed:
					return
				}
			}
		case FrameData:
			err = t.deliverData(c.fr, h)
		case FrameGroup:
			err = t.deliverGroup(c.fr, h)
		case FrameHeartbeat:
			// Pure liveness traffic: the lastHeard store above is the payload.
		default:
			err = fmt.Errorf("transport: unexpected frame type %d from rank %d", h.Type, c.peer)
		}
		if err != nil {
			select {
			case <-t.closed:
			case <-c.dead:
			default:
				t.connFail(c, err)
			}
			return
		}
	}
}

// edgeSlot is the demux entry of one EdgeID: the currently open generation
// plus the latch the reader pump waits on when a frame for a not-yet-opened
// generation arrives.
type edgeSlot struct {
	st     *edgeState
	last   uint32        // highest epoch ever opened for this id (survives Retire)
	opened chan struct{} // closed and remade on each OpenEdge
}

// edgeState is one generation of a TCP edge's receive side.
type edgeState struct {
	epoch uint32
	in    chan Msg
	free  chan *tensor.Matrix
	dead  chan struct{} // closed when a newer generation replaces this one
}

// edgeSlotFor returns (creating if needed) the demux slot of id.
func (t *TCP) edgeSlotFor(id EdgeID) *edgeSlot {
	t.mu.Lock()
	defer t.mu.Unlock()
	sl, ok := t.edges[id]
	if !ok {
		sl = &edgeSlot{opened: make(chan struct{})}
		t.edges[id] = sl
	}
	return sl
}

// OpenEdge opens generation epoch+1 of edge id toward peer. Re-opening (a
// micro-batch geometry change) retires the previous generation: its held
// frames are dropped and in-flight frames for the new generation are held
// until this open. Both endpoints must open the same id once per geometry.
// After Retire(floor) the next generation starts at floor, so surviving
// ranks rebuilt with the same floor agree on epochs regardless of how many
// geometries each edge saw before the failure.
func (t *TCP) OpenEdge(id EdgeID, peer, cap int) (Edge, error) {
	sl := t.edgeSlotFor(id)
	t.mu.Lock()
	epoch := sl.last + 1
	if epoch < t.epochFloor {
		epoch = t.epochFloor
	}
	sl.last = epoch
	if sl.st != nil {
		close(sl.st.dead)
	}
	sl.st = &edgeState{
		epoch: epoch,
		in:    make(chan Msg, cap),
		free:  make(chan *tensor.Matrix, cap),
		dead:  make(chan struct{}),
	}
	close(sl.opened)
	sl.opened = make(chan struct{})
	st := sl.st
	t.mu.Unlock()
	return &tcpEdge{t: t, peer: peer, id: id, st: st, sfree: make(chan *tensor.Matrix, cap)}, nil
}

// deliverData routes one edge frame: stale-generation frames (below the
// current generation or below the session's epoch floor) are discarded,
// frames for a generation not yet opened locally wait at the head of the
// stream (backpressuring the connection until the local endpoint catches
// up), current-generation frames are read into a recycled buffer and
// delivered to the edge inbox.
func (t *TCP) deliverData(fr *FrameReader, h Header) error {
	id := EdgeID{Bound: int(h.A), Dir: Dir(h.Flags), S: int(h.B), Q: int(h.C)}
	sl := t.edgeSlotFor(id)
	for {
		t.mu.Lock()
		st := sl.st
		wait := sl.opened
		floor := t.epochFloor
		t.mu.Unlock()
		if h.Epoch < floor {
			// A retired session generation's leftover: drop it even when no
			// live generation exists, or the dead traffic would wedge the
			// stream waiting for an open that never comes.
			return fr.Discard(h.N)
		}
		if st == nil || st.epoch < h.Epoch {
			select {
			case <-wait:
				continue
			case <-t.closed:
				return t.closeErr()
			}
		}
		if st.epoch > h.Epoch {
			return fr.Discard(h.N)
		}
		buf := LeaseBuf(st.free, int(h.Rows), int(h.Cols))
		if err := fr.ReadF64(buf.Data); err != nil {
			return err
		}
		select {
		case st.in <- Msg{M: int(h.M), Data: buf, Free: st.free}:
		case <-st.dead:
			// The edge was re-opened while we held the message: the step it
			// belonged to is gone; drop the buffer with it.
		case <-t.closed:
			return t.closeErr()
		}
		return nil
	}
}

// tcpEdge is one endpoint handle of a TCP edge generation: sends enqueue
// frames on the peer connection's writer pump; receives drain the local
// generation's inbox.
type tcpEdge struct {
	t     *TCP
	peer  int
	id    EdgeID
	st    *edgeState
	sfree chan *tensor.Matrix // recycled serialization staging buffers
}

// header builds the frame header for micro-batch m of a rows x cols block.
func (e *tcpEdge) header(m, rows, cols int) Header {
	return Header{
		Type: FrameData, Flags: uint8(e.id.Dir),
		A: int32(e.id.Bound), B: int32(e.id.S), C: int32(e.id.Q),
		Epoch: e.st.epoch, M: int32(m), Rows: int32(rows), Cols: int32(cols),
	}
}

// send stages data into a recycled buffer and queues it for serialization;
// the writer pump recycles the staging buffer after the frame is written.
func (e *tcpEdge) send(m int, data *tensor.Matrix) error {
	buf := LeaseBuf(e.sfree, data.Rows, data.Cols)
	copy(buf.Data, data.Data)
	return e.t.enqueue(e.peer, outFrame{h: e.header(m, data.Rows, data.Cols), mat: buf, free: e.sfree})
}

// SendView stages a copy for serialization: unlike the in-process backend
// the sender's storage is never shared across the socket, so the zero-copy
// view contract degenerates to a copy here.
func (e *tcpEdge) SendView(m int, view *tensor.Matrix) error { return e.send(m, view) }

// SendCopy stages a copy for serialization.
func (e *tcpEdge) SendCopy(m int, data *tensor.Matrix) error { return e.send(m, data) }

// Recv returns the next delivered block of this edge generation.
func (e *tcpEdge) Recv(abort <-chan struct{}) (Msg, error) {
	select {
	case msg := <-e.st.in:
		return msg, nil
	case <-abort:
		return Msg{}, ErrAborted
	case <-e.st.dead:
		return Msg{}, ErrClosed
	case <-e.t.closed:
		return Msg{}, e.t.closeErr()
	}
}

// groupSlot is the demux entry of one collective group id.
type groupSlot struct {
	g      *tcpGroup
	last   uint32        // highest epoch ever opened for this id (survives Retire)
	opened chan struct{} // closed and remade on each OpenGroup
}

// groupSlotFor returns (creating if needed) the demux slot of gid.
func (t *TCP) groupSlotFor(gid int) *groupSlot {
	t.mu.Lock()
	defer t.mu.Unlock()
	sl, ok := t.groups[gid]
	if !ok {
		sl = &groupSlot{opened: make(chan struct{})}
		t.groups[gid] = sl
	}
	return sl
}

// OpenGroup opens collective group gid over the member ranks (which must
// include this transport's rank) for size-element vectors. Groups are
// geometry-independent within a session generation: re-opening (after a
// Retire, when survivors rebuild with a shrunk membership) retires the
// previous generation exactly like OpenEdge, and all ranks rebuilt with the
// same epoch floor agree on the new generation's epoch.
func (t *TCP) OpenGroup(gid int, members []int, size int) (Group, error) {
	g := &tcpGroup{t: t, id: gid, size: size, self: -1, dead: make(chan struct{})}
	g.members = append(g.members, members...)
	for i, r := range g.members {
		if i > 0 && g.members[i] <= g.members[i-1] {
			return nil, fmt.Errorf("transport: group %d members must be strictly increasing", gid)
		}
		if r == t.rank {
			g.self = i
		}
	}
	if g.self < 0 {
		return nil, fmt.Errorf("transport: rank %d not a member of group %d", t.rank, gid)
	}
	n := len(g.members)
	g.recv = make([][]float64, n)
	g.full = make([]chan struct{}, n)
	g.empty = make([]chan struct{}, n)
	for i := range g.members {
		if i == g.self {
			continue
		}
		g.recv[i] = make([]float64, size)
		g.full[i] = make(chan struct{}, 1)
		g.empty[i] = make(chan struct{}, 1)
		g.empty[i] <- struct{}{}
	}
	g.sum = make([]float64, size)
	g.sfree = make(chan *groupStage, 2)
	sl := t.groupSlotFor(gid)
	t.mu.Lock()
	epoch := sl.last + 1
	if epoch < t.epochFloor {
		epoch = t.epochFloor
	}
	sl.last = epoch
	g.epoch = epoch
	if sl.g != nil {
		close(sl.g.dead)
	}
	sl.g = g
	close(sl.opened)
	sl.opened = make(chan struct{})
	t.mu.Unlock()
	return g, nil
}

// deliverGroup routes one all-reduce contribution into the member's receive
// slot. The slot token (empty/full) orders the pump's writes against the
// consumer's reads across consecutive exchanges. Generation handling mirrors
// deliverData: stale-epoch contributions are discarded, future-epoch ones
// wait for the local OpenGroup.
func (t *TCP) deliverGroup(fr *FrameReader, h Header) error {
	sl := t.groupSlotFor(int(h.A))
	var g *tcpGroup
	for {
		t.mu.Lock()
		g = sl.g
		wait := sl.opened
		floor := t.epochFloor
		t.mu.Unlock()
		if h.Epoch < floor {
			return fr.Discard(h.N)
		}
		if g == nil || g.epoch < h.Epoch {
			select {
			case <-wait:
				continue
			case <-t.closed:
				return t.closeErr()
			}
		}
		if g.epoch > h.Epoch {
			return fr.Discard(h.N)
		}
		break
	}
	idx := -1
	for i, r := range g.members {
		if r == int(h.B) {
			idx = i
		}
	}
	if idx < 0 || idx == g.self {
		return fmt.Errorf("transport: group %d contribution from non-member rank %d", g.id, h.B)
	}
	if int(h.N) != g.size*8 {
		return fmt.Errorf("transport: group %d contribution of %d bytes, want %d", g.id, h.N, g.size*8)
	}
	select {
	case <-g.empty[idx]:
	case <-g.dead:
		// The group was re-opened while this contribution waited for its
		// slot: the exchange it belonged to died with the old generation.
		return fr.Discard(h.N)
	case <-t.closed:
		return t.closeErr()
	}
	if err := fr.ReadF64(g.recv[idx]); err != nil {
		return err
	}
	select {
	case g.full[idx] <- struct{}{}:
	case <-g.dead:
	case <-t.closed:
		return t.closeErr()
	}
	return nil
}

// tcpGroup is one cross-process all-reduce domain: a full contribution
// exchange (every member sends its local vector to every other), followed
// by a deterministic member-order summation so all ranks end bit-identical.
// With the executor's per-worker local reduction before the exchange and
// broadcast after it, this realizes the paper's hierarchical all-reduce:
// the cross-server phase carries one vector per worker process, not one per
// replica.
type tcpGroup struct {
	t       *TCP
	id      int
	epoch   uint32        // session generation this group belongs to
	dead    chan struct{} // closed when a newer generation replaces this one
	members []int         // strictly increasing ranks, including self
	self    int           // index of this rank in members
	size    int

	recv  [][]float64      // per-member contribution slots (self unused)
	full  []chan struct{}  // pump -> consumer slot tokens
	empty []chan struct{}  // consumer -> pump slot tokens
	sum   []float64        // member-order accumulation scratch
	sfree chan *groupStage // recycled shared send stagings
}

// AllReduce exchanges buf with every member and replaces it with the sum
// over all members taken in member order — identical on every rank.
func (g *tcpGroup) AllReduce(buf []float64, abort <-chan struct{}) error {
	if len(buf) != g.size {
		return fmt.Errorf("transport: group %d all-reduce of %d elements, want %d", g.id, len(buf), g.size)
	}
	h := Header{Type: FrameGroup, A: int32(g.id), B: int32(g.t.rank), Epoch: g.epoch}
	if n := len(g.members); n > 1 {
		// Stage ONE copy shared by every peer frame: the writer pumps
		// serialize asynchronously, after this call may already have
		// overwritten buf, but their encodes all read the same staging; the
		// last pump to encode recycles it.
		var st *groupStage
		select {
		case st = <-g.sfree:
		default:
			st = &groupStage{v: make([]float64, g.size), free: g.sfree}
		}
		copy(st.v, buf)
		st.refs.Store(int32(n - 1))
		for i, r := range g.members {
			if i == g.self {
				continue
			}
			if err := g.t.enqueue(r, outFrame{h: h, vec: st.v, stage: st}); err != nil {
				return err
			}
		}
	}
	for i := range g.members {
		if i == g.self {
			continue
		}
		select {
		case <-g.full[i]:
		case <-abort:
			return ErrAborted
		case <-g.dead:
			return ErrClosed
		case <-g.t.closed:
			return g.t.closeErr()
		}
	}
	// Member-order accumulation through the shared vectorized kernel — the
	// same canonical-order fold the in-process collectives use.
	first := true
	for i := range g.members {
		src := buf
		if i != g.self {
			src = g.recv[i]
		}
		if first {
			copy(g.sum, src)
			first = false
			continue
		}
		tensor.VecAddInto(g.sum, src)
	}
	copy(buf, g.sum)
	for i := range g.members {
		if i != g.self {
			g.empty[i] <- struct{}{}
		}
	}
	return nil
}
