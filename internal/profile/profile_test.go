package profile

import (
	"math"
	"testing"
	"testing/quick"

	"dapple/internal/model"
)

func dev() Device { return V100() }

func TestDenseMeasure(t *testing.T) {
	l := Dense{Name: "fc", In: 1024, Out: 512}.Measure(4, dev())
	if l.ParamBytes != int64(1024*512+512)*4 {
		t.Fatalf("params %d", l.ParamBytes)
	}
	if l.OutputBytes != 512*4*4 {
		t.Fatalf("output %d", l.OutputBytes)
	}
	if l.BwdTime <= l.FwdTime {
		t.Fatal("backward must cost more than forward")
	}
}

func TestConvMeasure(t *testing.T) {
	l := Conv2D{Name: "c", Cin: 64, Cout: 128, K: 3, H: 56, W: 56, Pool: true}.Measure(8, dev())
	if l.OutputBytes != int64(28*28*128*4*8) {
		t.Fatalf("pooled output %d", l.OutputBytes)
	}
	noPool := Conv2D{Cin: 64, Cout: 128, K: 3, H: 56, W: 56}.Measure(8, dev())
	if noPool.OutputBytes != 4*l.OutputBytes {
		t.Fatal("pooling should quarter the output")
	}
	if noPool.FwdTime != l.FwdTime {
		t.Fatal("pooling should not change conv compute")
	}
}

func TestTransformerMeasure(t *testing.T) {
	l := Transformer{Hidden: 1024, Heads: 16, SeqLen: 384}.Measure(2, dev())
	// 12 h^2-ish parameters.
	wantParams := int64((4*1024*1024 + 2*1024*4096 + 4*1024) * 4)
	if l.ParamBytes != wantParams {
		t.Fatalf("params %d, want %d", l.ParamBytes, wantParams)
	}
	if l.StoredBytes <= l.OutputBytes {
		t.Fatal("transformer retains more than its output")
	}
}

func TestLSTMAndEmbedding(t *testing.T) {
	l := LSTM{Hidden: 1024, SeqLen: 50}.Measure(64, dev())
	if l.ParamBytes != int64(8*1024*1024+8*1024)*4 {
		t.Fatalf("lstm params %d", l.ParamBytes)
	}
	e := Embedding{Vocab: 32000, Hidden: 1024, SeqLen: 50}.Measure(64, dev())
	if e.ParamBytes != int64(32000*1024)*4 {
		t.Fatalf("embedding params %d", e.ParamBytes)
	}
	if e.FwdTime >= l.FwdTime {
		t.Fatal("embedding lookup should be far cheaper than LSTM")
	}
}

func TestProfileAssemblesModel(t *testing.T) {
	arch := Arch{
		Name: "toy",
		Layers: []LayerSpec{
			Embedding{Vocab: 1000, Hidden: 64, SeqLen: 16},
			Transformer{Hidden: 64, Heads: 4, SeqLen: 16},
			Dense{In: 64, Out: 10},
		},
		DefaultGBS: 32,
	}
	m, err := New(dev()).Profile(arch, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumLayers() != 3 || m.ProfileBatch != 4 || m.DefaultGBS != 32 {
		t.Fatalf("model %+v", m)
	}
	if m.OptimizerBytesPerParam != model.AdamBytesPerParam {
		t.Fatal("default optimizer should be Adam")
	}
	for i, l := range m.Layers {
		if l.Name == "" {
			t.Fatalf("layer %d unnamed", i)
		}
	}
}

func TestProfileErrors(t *testing.T) {
	p := New(dev())
	if _, err := p.Profile(Arch{Name: "empty"}, 4); err == nil {
		t.Fatal("expected error for empty arch")
	}
	if _, err := p.Profile(Arch{Name: "bad", Layers: []LayerSpec{Dense{In: 1, Out: 1}}}, 0); err == nil {
		t.Fatal("expected error for zero batch")
	}
}

// Property: measured times and activation bytes scale linearly in batch.
func TestMeasureLinearityProperty(t *testing.T) {
	specs := []LayerSpec{
		Dense{In: 128, Out: 64},
		Conv2D{Cin: 16, Cout: 32, K: 3, H: 28, W: 28},
		LSTM{Hidden: 128, SeqLen: 10},
		Transformer{Hidden: 128, Heads: 4, SeqLen: 32},
	}
	f := func(si, b8 uint8) bool {
		spec := specs[int(si)%len(specs)]
		b := int(b8%16) + 1
		l1 := spec.Measure(b, dev())
		l2 := spec.Measure(2*b, dev())
		if math.Abs(l2.FwdTime-2*l1.FwdTime) > 1e-12 {
			return false
		}
		if l2.OutputBytes != 2*l1.OutputBytes {
			return false
		}
		return l2.ParamBytes == l1.ParamBytes // params batch-independent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDescribe(t *testing.T) {
	for _, s := range []LayerSpec{
		Dense{In: 1, Out: 2}, Conv2D{Cin: 1, Cout: 2, K: 3, H: 4, W: 4},
		LSTM{Hidden: 8, SeqLen: 2}, Transformer{Hidden: 8, Heads: 2, SeqLen: 4},
		Embedding{Vocab: 10, Hidden: 4, SeqLen: 2},
	} {
		if s.Describe() == "" {
			t.Fatalf("%T has empty description", s)
		}
	}
}
