// Package profile implements the DAPPLE Profiler (§II-C): it turns a model
// architecture — layer kinds with their dimensions — into the per-layer
// statistics the planner consumes (compute times, activation sizes, parameter
// sizes), evaluated for a reference device at a chosen profiling micro-batch.
//
// The paper's profiler executes each layer on a physical GPU; ours evaluates
// closed-form FLOP and byte counts for the same layer kinds against a device
// throughput model, which yields the identical planner input vector without
// hardware.
package profile

import (
	"fmt"

	"dapple/internal/model"
)

// Device describes the accelerator the profile is taken on.
type Device struct {
	// FLOPS is peak fp32 throughput; Efficiency the sustained fraction
	// typical kernels reach. Sustained = FLOPS * Efficiency.
	FLOPS      float64
	Efficiency float64
}

// V100 returns the profile device of the paper's testbeds.
func V100() Device { return Device{FLOPS: 14e12, Efficiency: 0.5} }

// sustained returns achievable FLOP/s.
func (d Device) sustained() float64 {
	e := d.Efficiency
	if e <= 0 || e > 1 {
		e = 0.5
	}
	return d.FLOPS * e
}

// LayerSpec is one architecture layer the profiler can measure.
type LayerSpec interface {
	// Measure returns the layer's profile at the given micro-batch size.
	Measure(batch int, dev Device) model.Layer
	// Describe returns a short human-readable summary.
	Describe() string
}

// Dense is a fully connected layer.
type Dense struct {
	Name    string
	In, Out int
}

// Measure implements LayerSpec.
func (l Dense) Measure(batch int, dev Device) model.Layer {
	macs := float64(l.In) * float64(l.Out)
	out := int64(l.Out) * 4 * int64(batch)
	return model.Layer{
		Name:        l.Name,
		FwdTime:     2 * macs * float64(batch) / dev.sustained(),
		BwdTime:     4 * macs * float64(batch) / dev.sustained(),
		OutputBytes: out,
		StoredBytes: 2 * out,
		ParamBytes:  int64(macs+float64(l.Out)) * 4,
	}
}

// Describe implements LayerSpec.
func (l Dense) Describe() string { return fmt.Sprintf("dense %dx%d", l.In, l.Out) }

// Conv2D is a KxK convolution producing Cout channels at HxW, optionally
// followed by a 2x2 pooling step.
type Conv2D struct {
	Name      string
	Cin, Cout int
	K, H, W   int
	Pool      bool
}

// Measure implements LayerSpec.
func (l Conv2D) Measure(batch int, dev Device) model.Layer {
	macs := float64(l.K*l.K*l.Cin*l.Cout) * float64(l.H*l.W)
	oh, ow := l.H, l.W
	if l.Pool {
		oh, ow = oh/2, ow/2
	}
	out := int64(oh*ow*l.Cout) * 4 * int64(batch)
	return model.Layer{
		Name:        l.Name,
		FwdTime:     2 * macs * float64(batch) / dev.sustained(),
		BwdTime:     4 * macs * float64(batch) / dev.sustained(),
		OutputBytes: out,
		StoredBytes: out + out/2,
		ParamBytes:  int64(l.K*l.K*l.Cin*l.Cout+l.Cout) * 4,
	}
}

// Describe implements LayerSpec.
func (l Conv2D) Describe() string {
	return fmt.Sprintf("conv %dx%d %d->%d @%dx%d", l.K, l.K, l.Cin, l.Cout, l.H, l.W)
}

// LSTM is one recurrent layer unrolled over SeqLen steps.
type LSTM struct {
	Name           string
	Hidden, SeqLen int
}

// Measure implements LayerSpec.
func (l LSTM) Measure(batch int, dev Device) model.Layer {
	h := float64(l.Hidden)
	macs := 8 * h * h * float64(l.SeqLen) // 4 gates x (input + recurrent)
	out := int64(l.SeqLen*l.Hidden) * 4 * int64(batch)
	return model.Layer{
		Name:        l.Name,
		FwdTime:     2 * macs * float64(batch) / dev.sustained(),
		BwdTime:     4 * macs * float64(batch) / dev.sustained(),
		OutputBytes: out,
		StoredBytes: 6 * out, // gate activations and cell states per step
		ParamBytes:  int64(8*h*h+8*h) * 4,
	}
}

// Describe implements LayerSpec.
func (l LSTM) Describe() string { return fmt.Sprintf("lstm h=%d T=%d", l.Hidden, l.SeqLen) }

// Transformer is one encoder block: self-attention plus FFN.
type Transformer struct {
	Name                       string
	Hidden, Heads, SeqLen, FFN int
}

// Measure implements LayerSpec.
func (l Transformer) Measure(batch int, dev Device) model.Layer {
	h, t := float64(l.Hidden), float64(l.SeqLen)
	ffn := float64(l.FFN)
	if ffn == 0 {
		ffn = 4 * h
	}
	macs := (4*h*h + 2*h*ffn) * t // projections + FFN
	macs += 2 * t * t * h         // attention scores + weighted sum
	out := int64(l.SeqLen*l.Hidden) * 4 * int64(batch)
	attn := int64(l.Heads*l.SeqLen*l.SeqLen) * 4 * int64(batch)
	return model.Layer{
		Name:        l.Name,
		FwdTime:     2 * macs * float64(batch) / dev.sustained(),
		BwdTime:     4 * macs * float64(batch) / dev.sustained(),
		OutputBytes: out,
		StoredBytes: 6*out + attn,
		ParamBytes:  int64((4*h*h + 2*h*ffn + 4*h) * 4),
	}
}

// Describe implements LayerSpec.
func (l Transformer) Describe() string {
	return fmt.Sprintf("transformer h=%d heads=%d T=%d", l.Hidden, l.Heads, l.SeqLen)
}

// Embedding is a lookup table; negligible compute, heavy parameters.
type Embedding struct {
	Name                  string
	Vocab, Hidden, SeqLen int
}

// Measure implements LayerSpec.
func (l Embedding) Measure(batch int, dev Device) model.Layer {
	out := int64(l.SeqLen*l.Hidden) * 4 * int64(batch)
	return model.Layer{
		Name:        l.Name,
		FwdTime:     float64(out) / 400e9, // bandwidth-bound gather
		BwdTime:     float64(out) / 200e9,
		OutputBytes: out,
		StoredBytes: out,
		ParamBytes:  int64(l.Vocab*l.Hidden) * 4,
	}
}

// Describe implements LayerSpec.
func (l Embedding) Describe() string { return fmt.Sprintf("embedding %dx%d", l.Vocab, l.Hidden) }

// Arch is a profilable architecture.
type Arch struct {
	Name       string
	Layers     []LayerSpec
	DefaultGBS int
	Optimizer  int   // bytes per parameter (model.AdamBytesPerParam, ...)
	Workspace  int64 // fixed per-device overhead bytes
}

// Profiler measures architectures on a device.
type Profiler struct {
	Device Device
}

// New returns a Profiler for the given device.
func New(dev Device) *Profiler { return &Profiler{Device: dev} }

// Profile measures every layer at the given micro-batch size and assembles
// the planner-ready model.
func (p *Profiler) Profile(a Arch, batch int) (*model.Model, error) {
	if len(a.Layers) == 0 {
		return nil, fmt.Errorf("profile: architecture %q has no layers", a.Name)
	}
	if batch <= 0 {
		return nil, fmt.Errorf("profile: non-positive batch %d", batch)
	}
	layers := make([]model.Layer, len(a.Layers))
	for i, spec := range a.Layers {
		layers[i] = spec.Measure(batch, p.Device)
		if layers[i].Name == "" {
			layers[i].Name = fmt.Sprintf("layer%d(%s)", i, spec.Describe())
		}
	}
	opt := a.Optimizer
	if opt == 0 {
		opt = model.AdamBytesPerParam
	}
	gbs := a.DefaultGBS
	if gbs == 0 {
		gbs = batch * 32
	}
	m := &model.Model{
		Name:                   a.Name,
		Layers:                 layers,
		ProfileBatch:           batch,
		DefaultGBS:             gbs,
		OptimizerBytesPerParam: opt,
		WorkspaceBytes:         a.Workspace,
	}
	return m, m.Validate()
}
