package planner

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Parallel search.
//
// The dynamic program's first level — the choice of the first stage's split
// point, replication degree and placement — partitions the whole search tree
// into independent subtrees, so the planner fans those transitions out over
// a bounded worker pool. Determinism is preserved by construction, not by
// locking:
//
//   - every branch runs on fully isolated state (its own memo, candidate
//     table and pruning incumbent, seeded with the best as of its chunk's
//     start), so a branch's outcome is a pure function of its root task and
//     the fixed-size chunk it belongs to;
//   - every branch stamps its candidates from a disjoint sequence-number
//     block ordered like the sequential visit order, and branches merge in
//     ascending task order with the same better-candidate rule the
//     sequential recorder uses.
//
// The merged candidate table — and hence the chosen plan, the analytic
// latency and the explored count — is therefore byte-identical for every
// Workers value and for every goroutine interleaving.

// rootTask is one depth-0 transition: the first stage covers layers
// [0, j2) on the placement take.
type rootTask struct {
	j2   int
	take alloc
}

// rootTasks enumerates the depth-0 transitions in the exact order the
// sequential extend loops would visit them.
func (s *search) rootTasks(used alloc) []rootTask {
	if 1 >= s.maxStages {
		return nil
	}
	n := s.m.NumLayers()
	free := s.freeTotal(used)
	var tasks []rootTask
	for j2 := 1; j2 < n; j2++ {
		for r := 1; r < free; r++ {
			for _, take := range s.placements(used, r) {
				tasks = append(tasks, rootTask{j2: j2, take: take})
			}
		}
	}
	return tasks
}

// branch derives the isolated sub-search for root task i: fresh memo and
// candidate tables, the incumbent as of the enclosing chunk's start as its
// pruning baseline (s.best is only written between chunks, so every branch
// of a chunk reads the same value), and a sequence-number block disjoint
// from every other branch so that merged tie-breaks reproduce the
// sequential visit order. The derived constants (sumFB, micro-batch
// geometry) are shared read-only.
func (s *search) branch(i int) *search {
	return &search{
		ctx: s.ctx,
		m:   s.m, c: s.c, gbs: s.gbs,
		maxStages: s.maxStages,
		memCheck:  s.memCheck,
		slack:     s.slack,
		workers:   1,
		prune:     s.prune,
		mb:        s.mb,
		mOne:      s.mOne,
		sumFB:     s.sumFB,
		best:      s.best,
		seq:       (uint64(i) + 1) << 32,
		memo:      map[string]float64{},
		cands:     map[string]candidate{},
	}
}

// merge folds a completed branch into the root search, visiting the branch's
// candidates in discovery order and applying the same better-candidate rule
// the sequential recorder uses, so the merged table is order-independent.
func (s *search) merge(b *search) {
	s.explored += b.explored
	if b.best < s.best {
		s.best = b.best
	}
	type kv struct {
		k string
		v candidate
	}
	list := make([]kv, 0, len(b.cands))
	for k, v := range b.cands {
		list = append(list, kv{k, v})
	}
	sort.Slice(list, func(i, j int) bool { return list[i].v.seq < list[j].v.seq })
	for _, e := range list {
		if old, ok := s.cands[e.k]; !ok || betterCand(e.v, old) {
			s.cands[e.k] = e.v
		}
	}
	if len(s.cands) > maxCands {
		s.compactCands()
	}
}

// fanoutChunk is the fixed number of root tasks processed between merges.
// Chunking bounds how much branch state is alive at once, and merging
// between chunks feeds the tightened incumbent to later branches. The size
// is a constant — never a function of the worker count — because every
// branch inherits the incumbent as of its chunk's start: fixed boundaries
// make that inheritance, and hence the entire search, identical for every
// Workers value.
const fanoutChunk = 256

// fanout runs one branch search per first-stage transition on the worker
// pool and merges the branches in task order, one fixed-size chunk at a
// time. Branches never observe mid-chunk results, so scheduling and worker
// count cannot leak into the merged outcome.
func (s *search) fanout(used alloc) {
	tasks := s.rootTasks(used)
	if len(tasks) == 0 {
		return
	}
	workers := s.workers
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers < 1 {
		workers = 1
	}
	chunk := fanoutChunk
	branches := make([]*search, len(tasks))
	for lo := 0; lo < len(tasks) && !s.cancelled(); lo += chunk {
		hi := lo + chunk
		if hi > len(tasks) {
			hi = len(tasks)
		}
		next := int64(lo) - 1
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(atomic.AddInt64(&next, 1))
					if i >= hi || s.ctx.Err() != nil {
						return
					}
					b := s.branch(i)
					b.step(0, tasks[i].j2, used, nil, tasks[i].take, 0)
					branches[i] = b
				}
			}()
		}
		wg.Wait()
		for i := lo; i < hi; i++ {
			if branches[i] != nil {
				s.merge(branches[i])
				branches[i] = nil
			}
		}
	}
}
