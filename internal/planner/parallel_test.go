package planner

import (
	"fmt"
	"math/rand"
	"testing"

	"dapple/internal/hardware"
	"dapple/internal/model"
)

// resultFingerprint renders everything observable about a planning result —
// stage splits, replication, exact device assignments, latencies and the
// explored-state count — so two runs can be compared byte-for-byte.
func resultFingerprint(r *Result) string {
	s := fmt.Sprintf("%s|%s|", r.Plan.SplitString(), r.Plan.ReplicaString())
	for _, st := range r.Plan.Stages {
		s += fmt.Sprintf("%v;", st.Devices)
	}
	return s + fmt.Sprintf("|sim=%v|analytic=%v|rc=%v|pol=%v|explored=%d",
		r.Latency, r.Analytic, r.NeedsRecompute, r.Policy, r.Explored)
}

// Regression for the tentpole guarantee: the fan-out over first-stage split
// points must return byte-identical results for every worker count. Three
// zoo models, hierarchical and flat clusters.
func TestParallelSearchDeterminism(t *testing.T) {
	cases := []struct {
		m *model.Model
		c hardware.Cluster
	}{
		{model.GNMT16(), hardware.ConfigA(2)},
		{model.VGG19(), hardware.ConfigC(8)},
		{model.XLNet36(), hardware.ConfigA(2)},
	}
	for _, tc := range cases {
		var base string
		for _, w := range []int{1, 2, 8} {
			r, err := Plan(tc.m, tc.c, Options{Workers: w, PruneSlack: 1.25, Finalists: 6})
			if err != nil {
				t.Fatalf("%s on %s workers=%d: %v", tc.m.Name, tc.c.Name, w, err)
			}
			fp := resultFingerprint(r)
			if w == 1 {
				base = fp
				continue
			}
			if fp != base {
				t.Errorf("%s on %s: workers=%d diverged from workers=1:\n  1: %s\n  %d: %s",
					tc.m.Name, tc.c.Name, w, base, w, fp)
			}
		}
	}
}

// Property flavor of the determinism regression: random models whose
// fan-out improves the seed incumbent mid-search are exactly where a
// worker-count-dependent chunk size would leak into pruning decisions, so
// the guarantee is checked beyond the three fixed zoo cases.
func TestParallelDeterminismProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 6; trial++ {
		m := randomModel(rng, 8+rng.Intn(9))
		c := hardware.ConfigA(2)
		var base string
		for _, w := range []int{1, 8} {
			r, err := Plan(m, c, Options{Workers: w, PruneSlack: 1.25, Finalists: 6})
			if err != nil {
				t.Fatalf("trial %d workers=%d: %v", trial, w, err)
			}
			fp := resultFingerprint(r)
			if w == 1 {
				base = fp
			} else if fp != base {
				t.Errorf("trial %d: workers=8 diverged from workers=1:\n  1: %s\n  8: %s", trial, base, fp)
			}
		}
	}
}

// Repeated identical searches must agree with themselves: the tie-breaking
// fix (candidate sequence numbers) removes the map-iteration-order
// nondeterminism the pre-parallel finalize had.
func TestRepeatedSearchStability(t *testing.T) {
	m, c := model.GNMT16(), hardware.ConfigA(2)
	var base string
	for i := 0; i < 3; i++ {
		r, err := Plan(m, c, Options{PruneSlack: 1.3, Finalists: 8})
		if err != nil {
			t.Fatal(err)
		}
		fp := resultFingerprint(r)
		if i == 0 {
			base = fp
		} else if fp != base {
			t.Fatalf("run %d diverged:\n  0: %s\n  %d: %s", i, base, i, fp)
		}
	}
}

// randomModel builds a small model with independently random per-layer
// compute and activation profiles — the adversarial input for the pruning
// soundness property.
func randomModel(rng *rand.Rand, n int) *model.Model {
	layers := make([]model.Layer, n)
	for i := range layers {
		layers[i] = model.Layer{
			Name:        fmt.Sprintf("L%d", i),
			FwdTime:     (0.5 + rng.Float64()) * 3e-3,
			BwdTime:     (0.5 + rng.Float64()) * 6e-3,
			OutputBytes: int64(1+rng.Intn(32)) << 18,
			StoredBytes: int64(1+rng.Intn(32)) << 19,
			ParamBytes:  int64(1+rng.Intn(64)) << 18,
		}
	}
	return &model.Model{
		Name:                   fmt.Sprintf("rand-%d", n),
		Layers:                 layers,
		ProfileBatch:           2,
		DefaultGBS:             32,
		OptimizerBytesPerParam: model.AdamBytesPerParam,
	}
}

// Property: branch-and-bound pruning is sound — on small random models the
// pruned search never returns a worse plan than the exhaustive search
// (NoPrune disables the lower bound, the dominance memo and the slack cut).
func TestPruningSoundnessProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		n := 4 + rng.Intn(5)
		m := randomModel(rng, n)
		c := hardware.ConfigB(2 + rng.Intn(3))
		gbs := (1 + rng.Intn(4)) * 8

		pruned, err := Plan(m, c, Options{GBS: gbs})
		if err != nil {
			t.Fatalf("trial %d: pruned: %v", trial, err)
		}
		exhaustive, err := Plan(m, c, Options{GBS: gbs, NoPrune: true, Finalists: 1 << 20})
		if err != nil {
			t.Fatalf("trial %d: exhaustive: %v", trial, err)
		}
		if pruned.Latency > exhaustive.Latency*(1+1e-9) {
			t.Errorf("trial %d (%s on %s, gbs %d): pruned %.6gms worse than exhaustive %.6gms (pruned %v, exhaustive %v)",
				trial, m.Name, c.Name, gbs,
				pruned.Latency*1e3, exhaustive.Latency*1e3, pruned.Plan, exhaustive.Plan)
		}
		if pruned.Explored > exhaustive.Explored {
			t.Errorf("trial %d: pruned search explored more states (%d) than exhaustive (%d)",
				trial, pruned.Explored, exhaustive.Explored)
		}
	}
}
