package planner

import (
	"context"
	"math"
	"testing"

	"dapple/internal/hardware"
	"dapple/internal/model"
)

// benchRerank measures finalize — the simulator re-ranking of the analytic
// finalists — at a fixed worker count. The search runs once outside the
// timer; finalize only reads its candidate table, so timing it repeatedly is
// sound. Sequential (workers=1) and parallel (workers=8) pick identical
// plans by construction; on multi-core hosts the parallel pass spreads the K
// finalist simulations across cores.
func benchRerank(b *testing.B, workers int) {
	b.Helper()
	m := model.GNMT16()
	c := hardware.ConfigA(2)
	s := &search{
		ctx: context.Background(),
		m:   m, c: c, gbs: m.DefaultGBS,
		maxStages: 4,
		memCheck:  true,
		slack:     1.3,
		workers:   workers,
		prune:     true,
		best:      math.Inf(1),
		memo:      map[string]float64{},
		cands:     map[string]candidate{},
	}
	s.precompute()
	s.run()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.finalize(8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFinalistRerank measures sequential finalist re-ranking.
func BenchmarkFinalistRerank(b *testing.B) { benchRerank(b, 1) }

// BenchmarkFinalistRerankParallel8 measures the same re-ranking fanned out
// over 8 workers.
func BenchmarkFinalistRerankParallel8(b *testing.B) { benchRerank(b, 8) }
