package planner

import "sort"

// placements enumerates per-server take vectors for a stage of r devices
// using the three policies of §IV-B, deduplicated. On flat clusters (one GPU
// per server) all policies coincide, collapsing the placement space.
func (s *search) placements(used alloc, r int) []alloc {
	if r <= 0 || r > s.freeTotal(used) {
		return nil
	}
	cands := []alloc{
		s.freshFirst(used, r),
		s.appendFirst(used, r),
		s.scatterFirst(used, r),
	}
	var out []alloc
	seen := map[string]bool{}
	for _, t := range cands {
		if t == nil {
			continue
		}
		k := t.key(0)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, t)
	}
	return out
}

// serverOrder returns server indices sorted by the policy's preference.
func (s *search) serverOrder(used alloc, preferFresh bool) []int {
	order := make([]int, s.c.Servers)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ua, ub := used[order[a]], used[order[b]]
		fa, fb := ua == 0, ub == 0
		if fa != fb {
			if preferFresh {
				return fa
			}
			return fb
		}
		return order[a] < order[b]
	})
	return order
}

// greedyTake fills servers in the given order.
func (s *search) greedyTake(used alloc, r int, order []int) alloc {
	take := make(alloc, s.c.Servers)
	for _, srv := range order {
		if r == 0 {
			break
		}
		free := s.c.GPUsPerServer - used[srv]
		k := free
		if k > r {
			k = r
		}
		take[srv] = k
		r -= k
	}
	if r > 0 {
		return nil
	}
	return take
}

// freshFirst allocates from completely unused machines first, keeping the
// stage on as few machines as possible to exploit NVLink for intra-stage
// gradient sync.
func (s *search) freshFirst(used alloc, r int) alloc {
	return s.greedyTake(used, r, s.serverOrder(used, true))
}

// appendFirst allocates from machines that already host earlier stages,
// reducing fragmentation.
func (s *search) appendFirst(used alloc, r int) alloc {
	return s.greedyTake(used, r, s.serverOrder(used, false))
}

// scatterFirst spreads the stage evenly across machines with free devices:
// one device per machine round-robin.
func (s *search) scatterFirst(used alloc, r int) alloc {
	take := make(alloc, s.c.Servers)
	remaining := r
	for remaining > 0 {
		progress := false
		for srv := 0; srv < s.c.Servers && remaining > 0; srv++ {
			if used[srv]+take[srv] < s.c.GPUsPerServer {
				take[srv]++
				remaining--
				progress = true
			}
		}
		if !progress {
			return nil
		}
	}
	return take
}
