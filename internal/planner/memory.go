package planner

import "dapple/internal/core"

// FitsMemory analytically checks that the plan's peak per-device memory under
// DAPPLE early-backward scheduling stays within the cluster's device budget.
// It mirrors the scheduler's accounting: optimizer-inclusive parameter state
// plus workspace statically, plus K_i = min(S-i, M) retained micro-batches
// per stage — with re-computation, boundary stashes plus one fully
// materialized micro-batch instead.
func FitsMemory(p *core.Plan, recompute bool) bool {
	limit := p.Cluster.DeviceMemory
	if limit <= 0 {
		return true
	}
	s := len(p.Stages)
	m := p.M()
	for i, st := range p.Stages {
		params := p.StageParamBytes(i)
		static := p.Model.OptimizerStateBytes(params) + p.Model.WorkspaceBytes
		r := int64(st.Replicas())
		perMB := p.Model.RangeStoredBytes(st.Lo, st.Hi, p.MicroBatch) / r
		k := s - i
		if k > m {
			k = m
		}
		if k < 1 {
			k = 1
		}
		var peak int64
		if recompute {
			var stash int64
			if st.Lo > 0 {
				stash = p.Model.OutputBytes(st.Lo-1, p.MicroBatch) / r
			}
			peak = static + int64(k)*stash + perMB
		} else {
			peak = static + int64(k)*perMB
		}
		if peak > limit {
			return false
		}
	}
	return true
}
