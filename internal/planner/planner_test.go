package planner

import (
	"math"
	"testing"
	"testing/quick"

	"dapple/internal/core"
	"dapple/internal/hardware"
	"dapple/internal/model"
)

// fastOpts keeps unit-test searches cheap.
func fastOpts(gbs int) Options {
	return Options{GBS: gbs, PruneSlack: 1.25, Finalists: 6}
}

func TestPlanValidity(t *testing.T) {
	for _, m := range []*model.Model{model.GNMT16(), model.VGG19()} {
		for _, c := range []hardware.Cluster{hardware.ConfigA(2), hardware.ConfigC(8)} {
			r, err := Plan(m, c, fastOpts(0))
			if err != nil {
				t.Fatalf("%s on %s: %v", m.Name, c.Name, err)
			}
			if err := r.Plan.Validate(); err != nil {
				t.Fatalf("%s on %s: invalid plan: %v", m.Name, c.Name, err)
			}
			if got := len(r.Plan.DevicesUsed()); got != c.NumDevices() {
				t.Fatalf("%s on %s: plan uses %d of %d devices", m.Name, c.Name, got, c.NumDevices())
			}
			if r.Speedup <= 1 || r.Speedup > float64(c.NumDevices())+1e-9 {
				t.Fatalf("%s on %s: speedup %g out of (1, %d]", m.Name, c.Name, r.Speedup, c.NumDevices())
			}
		}
	}
}

func TestResNetPrefersDP(t *testing.T) {
	// Table V: ResNet-50 plans DP on every configuration.
	m := model.ResNet50()
	for _, c := range []hardware.Cluster{hardware.ConfigA(2), hardware.ConfigB(16), hardware.ConfigC(16)} {
		r, err := Plan(m, c, fastOpts(0))
		if err != nil {
			t.Fatal(err)
		}
		if r.Plan.Kind() != core.KindDP {
			t.Fatalf("ResNet-50 on %s: %v, want DP", c.Name, r.Plan)
		}
	}
}

func TestVGGPipelinesOnSlowNet(t *testing.T) {
	// Table V: VGG-19 on config C picks the 15:1-style two-stage pipeline
	// isolating the parameter-heavy fc layers.
	r, err := Plan(model.VGG19(), hardware.ConfigC(16), fastOpts(0))
	if err != nil {
		t.Fatal(err)
	}
	p := r.Plan
	if p.Kind() == core.KindDP {
		t.Fatalf("VGG-19 on config C should pipeline, got %v", p)
	}
	last := p.Stages[len(p.Stages)-1]
	if last.Replicas() > 2 {
		t.Fatalf("fc stage should be nearly unreplicated, got %v", p)
	}
	// The fc stage must hold the bulk of the parameters.
	frac := float64(p.StageParamBytes(p.NumStages()-1)) / float64(p.Model.TotalParamBytes())
	if frac < 0.5 {
		t.Fatalf("last stage holds %.0f%% of params, want most", frac*100)
	}
}

func TestAmoebaNetRejectsDP(t *testing.T) {
	// AmoebaNet-36 cannot run data parallel (exceeds 16 GB): the planner
	// must pipeline.
	r, err := Plan(model.AmoebaNet36(), hardware.ConfigA(2), fastOpts(0))
	if err != nil {
		t.Fatal(err)
	}
	if r.Plan.Kind() == core.KindDP {
		t.Fatal("AmoebaNet-36 DP plan should be memory-infeasible")
	}
}

func TestHierarchicalPlacementStaysLocal(t *testing.T) {
	// On config A, replicated stages should sit inside single servers
	// (Fresh First) so gradient sync rides NVLink.
	r, err := Plan(model.XLNet36(), hardware.ConfigA(2), fastOpts(0))
	if err != nil {
		t.Fatal(err)
	}
	c := r.Plan.Cluster
	for i, s := range r.Plan.Stages {
		if s.Replicas() >= 4 && c.SpansServers(s.Devices) {
			t.Fatalf("stage %d with %d replicas spans servers: %v", i, s.Replicas(), r.Plan)
		}
	}
}

func TestPlacementPolicies(t *testing.T) {
	s := &search{c: hardware.ConfigA(2)}
	used := alloc{3, 0}

	fresh := s.freshFirst(used, 8)
	if fresh[1] != 8 || fresh[0] != 0 {
		t.Fatalf("fresh first should fill server 1: %v", fresh)
	}
	app := s.appendFirst(used, 5)
	if app[0] != 5 {
		t.Fatalf("append first should fill server 0's free slots: %v", app)
	}
	scatter := s.scatterFirst(used, 6)
	if scatter[0] == 0 || scatter[1] == 0 {
		t.Fatalf("scatter should use both servers: %v", scatter)
	}
	if s.freshFirst(used, 13) == nil {
		t.Fatal("13 devices are available")
	}
	if s.freshFirst(used, 14) != nil {
		t.Fatal("14 devices are not available")
	}
}

// Property: every placement take-vector has the requested size and respects
// per-server capacity.
func TestPlacementProperty(t *testing.T) {
	f := func(u0, u1, u2, r8 uint8) bool {
		s := &search{c: hardware.ConfigA(3)}
		used := alloc{int(u0 % 9), int(u1 % 9), int(u2 % 9)}
		free := s.freeTotal(used)
		if free == 0 {
			return true
		}
		r := int(r8)%free + 1
		for _, take := range s.placements(used, r) {
			sum := 0
			for srv, k := range take {
				if k < 0 || used[srv]+k > 8 {
					return false
				}
				sum += k
			}
			if sum != r {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestBalancedPartition(t *testing.T) {
	m := model.Synthetic(8, 1e-3, 0, 0, 0)
	cuts := balancedPartition(m, 8, 4)
	want := []int{2, 4, 6, 8}
	for i := range want {
		if cuts[i] != want[i] {
			t.Fatalf("cuts %v, want %v", cuts, want)
		}
	}
	// Uneven weights: the heavy layer gets its own block.
	m.Layers[0].FwdTime = 10e-3
	m.Layers[0].BwdTime = 20e-3
	cuts = balancedPartition(m, 8, 2)
	if cuts[0] != 1 {
		t.Fatalf("heavy head should be isolated: %v", cuts)
	}
}

func TestFitsMemory(t *testing.T) {
	m := model.BERT48()
	c := hardware.ConfigB(2)
	p := &core.Plan{Model: m, Cluster: c, GBS: 64, MicroBatch: 2,
		Stages: []core.Stage{
			{Lo: 0, Hi: 24, Devices: []hardware.DeviceID{0}},
			{Lo: 24, Hi: 48, Devices: []hardware.DeviceID{1}},
		}}
	if !FitsMemory(p, false) {
		t.Fatal("2-stage BERT-48 should fit without recompute")
	}
	// A 400-layer BERT on 2 devices cannot fit even with recompute.
	big := model.BERT(400)
	pb := &core.Plan{Model: big, Cluster: c, GBS: 64, MicroBatch: 2,
		Stages: []core.Stage{
			{Lo: 0, Hi: 200, Devices: []hardware.DeviceID{0}},
			{Lo: 200, Hi: 400, Devices: []hardware.DeviceID{1}},
		}}
	if FitsMemory(pb, true) {
		t.Fatal("BERT-400 cannot fit 2 devices")
	}
	// Recompute strictly relaxes the constraint.
	if FitsMemory(pb, false) {
		t.Fatal("no-recompute cannot fit if recompute does not")
	}
}

func TestGBSOverride(t *testing.T) {
	m := model.BERT48()
	r, err := Plan(m, hardware.ConfigB(4), fastOpts(256))
	if err != nil {
		t.Fatal(err)
	}
	if r.Plan.GBS != 256 {
		t.Fatalf("gbs %d, want 256", r.Plan.GBS)
	}
	if r.Plan.M()*r.Plan.MicroBatch != 256 {
		t.Fatal("sample conservation violated")
	}
}

func TestSimulatedAtMostAnalyticSlack(t *testing.T) {
	// The chosen plan's simulated latency should be within a sane band of
	// its analytic estimate (the DES adds bubbles, never removes work).
	r, err := Plan(model.GNMT16(), hardware.ConfigB(8), fastOpts(0))
	if err != nil {
		t.Fatal(err)
	}
	if r.Latency < r.Analytic*0.99 {
		t.Fatalf("simulation %g below analytic floor %g", r.Latency, r.Analytic)
	}
	if r.Latency > r.Analytic*2 {
		t.Fatalf("simulation %g wildly above analytic %g", r.Latency, r.Analytic)
	}
}

func TestErrorPaths(t *testing.T) {
	bad := &model.Model{Name: "empty"}
	if _, err := Plan(bad, hardware.ConfigB(2), Options{}); err == nil {
		t.Fatal("expected error for empty model")
	}
	m := model.Synthetic(4, 1e-3, 0, 0, 0)
	if _, err := Plan(m, hardware.Cluster{Name: "bad"}, Options{}); err == nil {
		t.Fatal("expected error for invalid cluster")
	}
}

func TestTinyCluster(t *testing.T) {
	m := model.Synthetic(6, 1e-3, 1<<20, 1<<20, 1<<20)
	r, err := Plan(m, hardware.ConfigB(2), fastOpts(8))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(r.Plan.DevicesUsed()); got != 2 {
		t.Fatalf("plan uses %d devices", got)
	}
}

// Property: planner output conserves samples and never assigns overlapping
// devices, across random uniform models and flat cluster sizes.
func TestPlannerInvariantsProperty(t *testing.T) {
	f := func(n8, g8, gbs8 uint8) bool {
		n := int(n8%10) + 4
		g := int(g8%6) + 2
		gbs := (int(gbs8%8) + 1) * 4
		m := model.Synthetic(n, 2e-3, 1<<20, 4<<20, 2<<20)
		r, err := Plan(m, hardware.ConfigB(g), Options{GBS: gbs, PruneSlack: 1.2, Finalists: 4})
		if err != nil {
			return false
		}
		if r.Plan.Validate() != nil {
			return false
		}
		return r.Plan.M()*r.Plan.MicroBatch == gbs &&
			!math.IsInf(r.Latency, 0) && r.Latency > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
