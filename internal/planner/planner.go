// Package planner implements the DAPPLE Planner (§IV): given a profiled
// model, a cluster topology and a global batch size, it searches stage
// partitions, per-stage replication degrees and topology-aware device
// placements for the plan minimizing synchronous pipeline latency.
//
// The search follows the paper's dynamic program (Eq. 4-5): a state plans the
// first j layers on an allocated device set, with the remaining layers
// forming one final stage on all remaining devices — so every explored state
// is itself a complete candidate plan. Transitions split the suffix stage.
// Device placement is explored through the three policies of §IV-B (Fresh
// First, Append First, Scatter First). Pure data parallelism (a single stage
// on every device) and straight pipelines (one device per stage) fall out of
// the same search; a dedicated balanced partitioner additionally seeds the
// deep straight pipeline.
//
// The search fans out across first-stage split points on a bounded worker
// pool (Options.Workers) and cuts hopeless subtrees with an admissible
// branch-and-bound lower bound; see parallel.go for why the result is
// nevertheless identical for every worker count.
//
// The analytic objective of Eq. (1)-(2) drives the search, but — as the paper
// notes — it approximates away non-pivot bubbles. The planner therefore
// re-ranks the best analytic candidates on the discrete-event scheduler
// (package schedule) and picks the plan with the lowest simulated iteration
// time, preferring fewer stages and less replication on near-ties, matching
// the paper's "fewer, slightly uneven stages" insight (§IV-D).
package planner

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"dapple/internal/baselines"
	"dapple/internal/comm"
	"dapple/internal/core"
	"dapple/internal/hardware"
	"dapple/internal/model"
	"dapple/internal/schedule"
	"dapple/internal/strategy"
)

// Options tune the search; the planner honors every knob of the shared
// strategy options.
type Options = strategy.Options

// Result is the planner's output, in the shape every registered strategy
// shares.
type Result = strategy.Result

// Plan searches for the latency-optimal hybrid plan.
func Plan(m *model.Model, c hardware.Cluster, opts Options) (*Result, error) {
	return PlanContext(context.Background(), m, c, opts)
}

// PlanContext is Plan under a context: the dynamic-program search and the
// simulator re-ranking both stop promptly with ctx's error once ctx is
// cancelled or past its deadline.
func PlanContext(ctx context.Context, m *model.Model, c hardware.Cluster, opts Options) (*Result, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	opts = opts.Normalize(m.DefaultGBS)
	gbs := opts.GBS

	s := &search{
		ctx: ctx,
		m:   m, c: c, gbs: gbs,
		maxStages: opts.MaxStages,
		memCheck:  !opts.SkipMemCheck,
		slack:     opts.PruneSlack,
		workers:   opts.Workers,
		prune:     !opts.NoPrune,
		best:      math.Inf(1),
		memo:      map[string]float64{},
		cands:     map[string]candidate{},
	}
	s.precompute()
	s.run()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res, err := s.finalize(opts.Finalists)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("planner: %s on %s (gbs %d): %w", m.Name, c.Name, gbs, err)
	}
	res.Explored = s.explored
	res.Speedup = m.SingleDeviceIterTime(gbs) / res.Latency
	return res, nil
}

// candidate is one recorded finalist: a complete plan, its analytic latency,
// and the deterministic sequence number of its discovery, which breaks every
// tie so the chosen plan does not depend on map iteration order or on how
// branch searches were scheduled across workers.
type candidate struct {
	plan      *core.Plan
	analytic  float64
	recompute bool
	seq       uint64
}

// betterCand orders candidates by analytic latency, breaking exact ties by
// discovery order — the total order every candidate sort in this package
// uses.
func betterCand(a, b candidate) bool {
	if a.analytic != b.analytic {
		return a.analytic < b.analytic
	}
	return a.seq < b.seq
}

// maxCands bounds the candidate table; beyond it the worst half is dropped.
const maxCands = 4096

// boundSlack widens the branch-and-bound cut: a subtree is pruned only when
// its latency lower bound exceeds best*boundSlack, keeping near-optimal
// states alive as finalists for the simulator re-ranking even though they
// cannot improve the analytic incumbent.
const boundSlack = 1.05

type search struct {
	ctx       context.Context
	m         *model.Model
	c         hardware.Cluster
	gbs       int
	maxStages int
	memCheck  bool
	slack     float64
	workers   int
	prune     bool

	// Derived once per search (shared read-only with branch searches).
	mb    int       // micro-batch size every candidate plan uses
	mOne  float64   // M-1: steady-phase rounds of the latency model
	sumFB []float64 // sumFB[i]: Σ_{k<i} fwd+bwd time of layer k at mb

	best     float64 // best analytic latency (pruning incumbent)
	explored int
	stopped  bool   // ctx expired; unwind the search without exploring further
	seq      uint64 // next candidate sequence number
	memo     map[string]float64
	cands    map[string]candidate
}

// precompute derives the per-search constants of the lower bound: the
// micro-batch geometry (identical for every candidate plan of this search)
// and the per-layer work prefix sums.
func (s *search) precompute() {
	s.mb = core.ChooseMicroBatch(s.m, s.gbs)
	mCount := s.gbs / s.mb
	if mCount < 1 {
		mCount = 1
	}
	s.mOne = float64(mCount - 1)
	n := s.m.NumLayers()
	s.sumFB = make([]float64, n+1)
	for i := 0; i < n; i++ {
		s.sumFB[i+1] = s.sumFB[i] + s.m.FwdTime(i, s.mb) + s.m.BwdTime(i, s.mb)
	}
}

// cancelled reports (and latches) context expiry so every search loop can
// unwind cheaply without re-querying the context after it first fires.
func (s *search) cancelled() bool {
	if s.stopped {
		return true
	}
	if s.ctx.Err() != nil {
		s.stopped = true
	}
	return s.stopped
}

// alloc tracks GPUs already claimed per server.
type alloc []int

func (a alloc) key(j int) string {
	b := make([]byte, 0, 3*len(a)+8)
	b = strconv.AppendInt(b, int64(j), 10)
	for _, v := range a {
		b = append(b, ';')
		b = strconv.AppendInt(b, int64(v), 10)
	}
	return string(b)
}

func (a alloc) clone() alloc { return append(alloc(nil), a...) }

func (s *search) freeTotal(a alloc) int {
	free := 0
	for _, u := range a {
		free += s.c.GPUsPerServer - u
	}
	return free
}

func (s *search) run() {
	used := make(alloc, s.c.Servers)
	// The root candidate is the suffix-only plan: one stage on all devices,
	// i.e. pure data parallelism. The other seeds run before the fan-out
	// too: they are cheap, deterministic, and the analytic best among them
	// is the pruning incumbent every branch search starts from — a tight
	// shared incumbent is what makes the branch-and-bound cut early.
	s.candidate(nil, 0, used)
	s.seedStraight()
	s.seedPipeDream()
	s.seedBalancedHybrids()
	s.fanout(used)
}

// seedBalancedHybrids evaluates one balanced k-stage plan per feasible stage
// count: layers split by the balanced partitioner, devices split evenly,
// placed Fresh First. These are the shapes that usually win on hierarchical
// clusters (e.g. the 8:8 two-stage BERT plan), so seeding them gives the
// branch-and-bound a near-final incumbent before the general search starts.
func (s *search) seedBalancedHybrids() {
	g := s.c.NumDevices()
	n := s.m.NumLayers()
	for k := 2; k <= s.maxStages && k <= g && k <= n; k++ {
		if g%k != 0 {
			continue
		}
		cuts := balancedPartition(s.m, n, k)
		if cuts == nil {
			continue
		}
		r := g / k
		used := make(alloc, s.c.Servers)
		stages := make([]core.Stage, 0, k)
		lo := 0
		ok := true
		for i := 0; i < k; i++ {
			take := s.freshFirst(used, r)
			if take == nil {
				ok = false
				break
			}
			stages = append(stages, s.materialize(lo, cuts[i], used, take))
			for srv := range take {
				used[srv] += take[srv]
			}
			lo = cuts[i]
		}
		if ok {
			s.evaluate(stages)
		}
	}
}

// seedPipeDream evaluates the PipeDream-style hierarchical plan as a
// candidate: DAPPLE's strategy space is a strict superset of PipeDream's
// (§IV-D2), and the general search's stage-count budget must not exclude the
// deep hierarchical corner on large clusters.
func (s *search) seedPipeDream() {
	p := baselines.PipeDream(s.m, s.c, s.gbs)
	if p != nil {
		s.evaluate(p.Stages)
	}
}

// extend explores states reachable from (prefix covering [0,j), used).
// maxUnit carries the largest per-micro-batch F+B over the prefix's stage
// and communication units, the incremental input of lowerBound.
func (s *search) extend(j int, used alloc, prefix []core.Stage, maxUnit float64) {
	n := s.m.NumLayers()
	free := s.freeTotal(used)
	if len(prefix)+1 >= s.maxStages {
		return
	}
	for j2 := j + 1; j2 < n; j2++ {
		for r := 1; r < free; r++ {
			if s.cancelled() {
				return
			}
			if s.prune {
				// Every placement of an r-replica stage [j, j2) shares these
				// bound terms; skip the placement enumeration when even they
				// cannot approach the incumbent.
				unit := (s.sumFB[j2] - s.sumFB[j]) / float64(r)
				rem := (s.sumFB[n] - s.sumFB[j2]) / float64(free-r)
				lb := s.mOne * math.Max(maxUnit, math.Max(unit, rem))
				if lb > s.best*boundSlack {
					continue
				}
			}
			for _, take := range s.placements(used, r) {
				s.step(j, j2, used, prefix, take, maxUnit)
			}
		}
	}
}

// step processes one transition: cut a stage holding layers [j, j2) with
// placement take out of state (j, used, prefix), record the completed
// candidate it induces, and extend the new state unless a prune rule cuts
// the subtree.
func (s *search) step(j, j2 int, used alloc, prefix []core.Stage, take alloc, maxUnit float64) {
	stage := s.materialize(j, j2, used, take)
	newUsed := used.clone()
	for i := range take {
		newUsed[i] += take[i]
	}
	stages := append(append([]core.Stage(nil), prefix...), stage)
	l := s.candidate(stages, j2, newUsed)
	if math.IsInf(l, 1) {
		return
	}
	if fb := (s.sumFB[j2] - s.sumFB[j]) / float64(stage.Replicas()); fb > maxUnit {
		maxUnit = fb
	}
	if len(prefix) > 0 {
		// The boundary into the new stage is a pipeline unit of any
		// completion too (comm units count toward Eq. 3 pivot selection).
		t := comm.CrossStageTime(s.c, prefix[len(prefix)-1].Devices, stage.Devices, s.m.OutputBytes(j-1, s.mb))
		if 2*t > maxUnit {
			maxUnit = 2 * t
		}
	}
	if s.prune {
		key := newUsed.key(j2)
		if old, ok := s.memo[key]; ok && l >= old {
			return
		}
		s.memo[key] = l
		if l > s.best*s.slack {
			return
		}
		if s.lowerBound(j2, newUsed, maxUnit) > s.best*boundSlack {
			return
		}
	}
	s.extend(j2, newUsed, stages, maxUnit)
}

// lowerBound returns an admissible lower bound on the analytic latency of
// any completion of state (j, used): the steady phase of Eq. (2) is at least
// (M-1)(F+B) of every pipeline unit, the prefix's units are already fixed,
// and however the remaining layers are split over the remaining devices,
// some suffix stage carries at least their mean work per device.
func (s *search) lowerBound(j int, used alloc, maxUnit float64) float64 {
	if free := s.freeTotal(used); free > 0 {
		if mean := (s.sumFB[len(s.sumFB)-1] - s.sumFB[j]) / float64(free); mean > maxUnit {
			maxUnit = mean
		}
	}
	return s.mOne * maxUnit
}

// candidate evaluates the complete plan formed by prefix plus one suffix
// stage holding layers [j, N) on every unused device, records it, and returns
// its analytic latency (Inf when invalid).
func (s *search) candidate(prefix []core.Stage, j int, used alloc) float64 {
	take := make(alloc, len(used))
	for i, u := range used {
		take[i] = s.c.GPUsPerServer - u
	}
	suffix := s.materialize(j, s.m.NumLayers(), used, take)
	stages := append(append([]core.Stage(nil), prefix...), suffix)
	return s.evaluate(stages)
}

// evaluate scores a complete stage list, recording it as a finalist when it
// fits memory (directly or with re-computation).
func (s *search) evaluate(stages []core.Stage) float64 {
	p := &core.Plan{Model: s.m, Cluster: s.c, Stages: stages, GBS: s.gbs}
	p.MicroBatch = s.mb
	if p.Validate() != nil {
		return math.Inf(1)
	}
	s.explored++
	l := p.Latency()
	if l < s.best {
		s.best = l
	}

	recompute := false
	if s.memCheck {
		switch {
		case FitsMemory(p, false):
		case FitsMemory(p, true):
			recompute = true
		default:
			return l // prunable but not a feasible finalist
		}
	}
	c := candidate{plan: p, analytic: l, recompute: recompute, seq: s.seq}
	s.seq++
	sig := p.SplitString() + "|" + p.ReplicaString() + "|" + placementSig(p)
	if old, ok := s.cands[sig]; !ok || betterCand(c, old) {
		s.cands[sig] = c
		if len(s.cands) > maxCands {
			s.compactCands()
		}
	}
	return l
}

// compactCands drops the worst half of recorded candidates to bound memory.
func (s *search) compactCands() {
	type kv struct {
		k string
		v candidate
	}
	all := make([]kv, 0, len(s.cands))
	for k, v := range s.cands {
		all = append(all, kv{k, v})
	}
	sort.Slice(all, func(i, j int) bool { return betterCand(all[i].v, all[j].v) })
	for _, e := range all[len(all)/2:] {
		delete(s.cands, e.k)
	}
}

// placementSig fingerprints which servers each stage occupies.
func placementSig(p *core.Plan) string {
	b := make([]byte, 0, 16)
	for _, st := range p.Stages {
		seen := map[int]int{}
		for _, d := range st.Devices {
			seen[p.Cluster.Server(d)]++
		}
		srvs := make([]int, 0, len(seen))
		for s := range seen {
			srvs = append(srvs, s)
		}
		sort.Ints(srvs)
		for _, s := range srvs {
			b = strconv.AppendInt(b, int64(s), 10)
			b = append(b, 'x')
			b = strconv.AppendInt(b, int64(seen[s]), 10)
		}
		b = append(b, '/')
	}
	return string(b)
}

// finalize re-ranks the analytic finalists on the discrete-event scheduler.
// Near-ties (within 1%) resolve toward fewer stages, then less replication —
// the paper's preference for simple plans.
func (s *search) finalize(limit int) (*Result, error) {
	if len(s.cands) == 0 {
		return nil, fmt.Errorf("no feasible plan")
	}
	list := make([]candidate, 0, len(s.cands))
	for _, c := range s.cands {
		list = append(list, c)
	}
	sort.Slice(list, func(i, j int) bool { return betterCand(list[i], list[j]) })
	if len(list) > limit {
		kept := list[:limit:limit]
		// The reference corners always get a simulator hearing: pure data
		// parallelism and the deepest straight pipeline may rank poorly
		// analytically yet win once real bubbles are accounted.
		for _, c := range list[limit:] {
			if c.plan.Kind() != core.KindHybrid {
				kept = append(kept, c)
			}
		}
		list = kept
	}

	// Re-ranking runs policy A uniformly — the paper's planner selects
	// partitions independently of the warmup policy; PB is recommended for
	// the chosen plan afterwards when its ACR warrants it (§V-C). The K
	// finalist simulations are independent, so they fan out over the same
	// worker budget as the search (Options.Workers); outcomes land in a
	// per-finalist slot and merge below in list order, so the chosen plan is
	// identical for every worker count and goroutine interleaving.
	type simOut struct {
		res *schedule.Result
		err error
	}
	outs := make([]simOut, len(list))
	workers := s.workers
	if workers > len(list) {
		workers = len(list)
	}
	if workers < 1 {
		workers = 1
	}
	next := int64(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(list) || s.ctx.Err() != nil {
					return
				}
				r, err := schedule.RunContext(s.ctx, list[i].plan, schedule.Options{
					Policy:    schedule.DapplePA,
					Recompute: list[i].recompute,
				})
				outs[i] = simOut{r, err}
			}
		}()
	}
	wg.Wait()

	type ranked struct {
		candidate
		sim    float64
		policy schedule.Policy
	}
	var rs []ranked
	for i, c := range list {
		r, err := outs[i].res, outs[i].err
		if err != nil || r == nil {
			if s.ctx.Err() != nil {
				return nil, s.ctx.Err()
			}
			continue
		}
		if s.memCheck && r.OOM {
			continue
		}
		rs = append(rs, ranked{c, r.IterTime, strategy.RecommendPolicy(c.plan)})
	}
	if len(rs) == 0 {
		return nil, fmt.Errorf("no feasible plan")
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].sim != rs[j].sim {
			return rs[i].sim < rs[j].sim
		}
		return rs[i].seq < rs[j].seq
	})
	bestSim := rs[0].sim
	pick := rs[0]
	for _, r := range rs[1:] {
		if r.sim > bestSim*1.025 {
			continue
		}
		if simpler(r.plan, pick.plan) {
			pick = r
		}
	}
	return &Result{
		Strategy:       StrategyName,
		Plan:           pick.plan,
		Latency:        pick.sim,
		Analytic:       pick.analytic,
		NeedsRecompute: pick.recompute,
		Policy:         pick.policy,
	}, nil
}

// simpler prefers fewer stages, then fewer total replicas.
func simpler(a, b *core.Plan) bool {
	if len(a.Stages) != len(b.Stages) {
		return len(a.Stages) < len(b.Stages)
	}
	ra, rb := 0, 0
	for _, s := range a.Stages {
		ra += s.Replicas()
	}
	for _, s := range b.Stages {
		rb += s.Replicas()
	}
	return ra < rb
}

// seedStraight evaluates the straight pipeline: one stage per device,
// balanced by the classic linear-partition DP over layer compute time. The
// general search caps stage count, so the deep no-replication corner the
// paper's Table V reports for slow networks is seeded explicitly.
func (s *search) seedStraight() {
	g := s.c.NumDevices()
	n := s.m.NumLayers()
	if g < 2 || n < g {
		return
	}
	cuts := balancedPartition(s.m, n, g)
	if cuts == nil {
		return
	}
	stages := make([]core.Stage, g)
	lo := 0
	for i := 0; i < g; i++ {
		stages[i] = core.Stage{Lo: lo, Hi: cuts[i], Devices: []hardware.DeviceID{hardware.DeviceID(i)}}
		lo = cuts[i]
	}
	s.evaluate(stages)
}

// balancedPartition splits n layers into g contiguous groups minimizing the
// maximum per-group forward+backward time, returning the g exclusive end
// indices. Standard O(n^2 g) interval DP.
func balancedPartition(m *model.Model, n, g int) []int {
	w := make([]float64, n+1) // prefix layer weights
	for i := 0; i < n; i++ {
		w[i+1] = w[i] + m.Layers[i].FwdTime + m.Layers[i].BwdTime
	}
	cost := func(a, b int) float64 { return w[b] - w[a] }

	const inf = math.MaxFloat64
	dp := make([][]float64, g+1)
	cut := make([][]int, g+1)
	for k := range dp {
		dp[k] = make([]float64, n+1)
		cut[k] = make([]int, n+1)
		for i := range dp[k] {
			dp[k][i] = inf
		}
	}
	dp[0][0] = 0
	for k := 1; k <= g; k++ {
		for i := k; i <= n; i++ {
			for p := k - 1; p < i; p++ {
				if dp[k-1][p] == inf {
					continue
				}
				v := math.Max(dp[k-1][p], cost(p, i))
				if v < dp[k][i] {
					dp[k][i] = v
					cut[k][i] = p
				}
			}
		}
	}
	if dp[g][n] == inf {
		return nil
	}
	cuts := make([]int, g)
	i := n
	for k := g; k >= 1; k-- {
		cuts[k-1] = i
		i = cut[k][i]
	}
	return cuts
}

// materialize turns a per-server take vector into a Stage, assigning the
// lowest free device IDs within each server.
func (s *search) materialize(lo, hi int, used, take alloc) core.Stage {
	var devs []hardware.DeviceID
	for srv, k := range take {
		base := srv * s.c.GPUsPerServer
		for i := 0; i < k; i++ {
			devs = append(devs, hardware.DeviceID(base+used[srv]+i))
		}
	}
	return core.Stage{Lo: lo, Hi: hi, Devices: devs}
}
