package planner

import (
	"context"

	"dapple/internal/hardware"
	"dapple/internal/model"
	"dapple/internal/strategy"
)

// StrategyName is the planner's key in the strategy registry.
const StrategyName = "dapple"

// Strategy returns the DAPPLE planner as a pluggable strategy.
func Strategy() strategy.Strategy { return dappleStrategy{} }

type dappleStrategy struct{}

func (dappleStrategy) Name() string { return StrategyName }

func (dappleStrategy) Describe() string {
	return "DAPPLE planner: DP search over partitions, replication and placement, re-ranked on the simulator (§IV)"
}

func (dappleStrategy) Plan(ctx context.Context, m *model.Model, c hardware.Cluster, opts strategy.Options) (*strategy.Result, error) {
	return PlanContext(ctx, m, c, opts)
}

func init() { strategy.MustRegister(dappleStrategy{}) }
