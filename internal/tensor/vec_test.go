package tensor

import (
	"math/rand"
	"testing"
)

// refVecAdd is the scalar oracle for VecAddInto.
func refVecAdd(dst, src []float64) {
	for i, v := range src {
		dst[i] += v
	}
}

// refAxpy is the scalar oracle for AxpyInto, using the same build-tagged
// fmadd so it differs from the kernel only by span decomposition.
func refAxpy(dst []float64, a float64, src []float64) {
	for i, v := range src {
		dst[i] = fmadd(a, v, dst[i])
	}
}

func randVec(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// TestVecKernelsMatchReference pins VecAddInto/AxpyInto bit-identical to the
// single-goroutine scalar loop across sizes straddling the parallel
// threshold and across worker counts — the determinism contract the
// collective layer's accumulation order rests on.
func TestVecKernelsMatchReference(t *testing.T) {
	sizes := []int{0, 1, 7, vecSpanLen - 1, vecSpanLen, vecParMin - 1, vecParMin, vecParMin + 3, 1 << 17}
	for _, workers := range []int{1, 2, 8} {
		prev := SetWorkers(workers)
		for _, n := range sizes {
			src := randVec(n, int64(n+workers))
			base := randVec(n, int64(2*n+workers+1))

			want := append([]float64(nil), base...)
			refVecAdd(want, src)
			got := append([]float64(nil), base...)
			VecAddInto(got, src)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("VecAddInto workers=%d n=%d element %d: %g want %g", workers, n, i, got[i], want[i])
				}
			}

			const alpha = -0.731
			want = append(want[:0:0], base...)
			refAxpy(want, alpha, src)
			got = append(got[:0:0], base...)
			AxpyInto(got, alpha, src)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("AxpyInto workers=%d n=%d element %d: %g want %g", workers, n, i, got[i], want[i])
				}
			}
		}
		SetWorkers(prev)
	}
}

// TestVecKernelLengthMismatchPanics pins the validation contract.
func TestVecKernelLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	VecAddInto(make([]float64, 3), make([]float64, 4))
}

// TestVecKernelsZeroAlloc pins the steady-state allocation contract of the
// pooled vector dispatch: warm parallel reductions must not touch the heap.
func TestVecKernelsZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	n := vecParMin * 2
	dst, src := randVec(n, 1), randVec(n, 2)
	for i := 0; i < 3; i++ {
		VecAddInto(dst, src)
	}
	allocs := testing.AllocsPerRun(10, func() {
		VecAddInto(dst, src)
		AxpyInto(dst, 0.5, src)
	})
	if allocs > 0 {
		t.Fatalf("warm vector kernels allocate %.0f per run, want 0", allocs)
	}
}

func BenchmarkVecAddInto(b *testing.B) {
	n := 1 << 18
	dst, src := randVec(n, 1), randVec(n, 2)
	b.SetBytes(int64(16 * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		VecAddInto(dst, src)
	}
}
