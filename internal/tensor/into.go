package tensor

import "fmt"

// This file holds the allocation-free "into" kernel variants the steady-state
// training runtime executes: every kernel writes into a caller-provided
// destination (typically leased from a Pool), so a warm training iteration
// performs zero heap allocations in its compute hot path. Each kernel computes
// exactly what its allocating counterpart computes, streaming elements in the
// same order, so results differ from the reference path only by the float
// rounding of fused accumulation.

// MatMulInto computes out = a @ b into the preallocated out, overwriting its
// contents. Shapes must satisfy out = (a.Rows x b.Cols), a.Cols = b.Rows.
func MatMulInto(out, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul %dx%d @ %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmul out %dx%d for %dx%d result", out.Rows, out.Cols, a.Rows, b.Cols))
	}
	gemm(gemmNN, out, a, b, false, nil, nil)
}

// MatMulATBAddInto accumulates out += aᵀ @ b — the weight-gradient kernel
// fused with gradient accumulation, replacing the allocating
// out.Add(MatMulATB(a, b)) pattern. Shapes: out = (a.Cols x b.Cols),
// a.Rows = b.Rows.
func MatMulATBAddInto(out, a, b *Matrix) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: matmulATB %dx%d, %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Cols || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmulATB out %dx%d for %dx%d result", out.Rows, out.Cols, a.Cols, b.Cols))
	}
	gemm(gemmTN, out, a, b, true, nil, nil)
}

// MatMulABTInto computes out = a @ bᵀ into the preallocated out, overwriting
// its contents — the input-gradient kernel. Shapes: out = (a.Rows x b.Rows),
// a.Cols = b.Cols.
func MatMulABTInto(out, a, b *Matrix) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmulABT %dx%d, %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Rows || out.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmulABT out %dx%d for %dx%d result", out.Rows, out.Cols, a.Rows, b.Rows))
	}
	gemm(gemmNT, out, a, b, false, nil, nil)
}

// MatMulAddRowVecInto computes out = a @ b with bias (len b.Cols) added to
// every row, fused into the kernel's output pass — the Dense-forward kernel,
// replacing the two-pass MatMulInto + AddRowVecInto sequence. The bias add
// happens once per element after its full k accumulation, so the result is
// bit-identical to the unfused sequence.
func MatMulAddRowVecInto(out, a, b *Matrix, bias []float64) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul %dx%d @ %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmul out %dx%d for %dx%d result", out.Rows, out.Cols, a.Rows, b.Cols))
	}
	if len(bias) != b.Cols {
		panic(fmt.Sprintf("tensor: row vec %d for %d cols", len(bias), b.Cols))
	}
	gemm(gemmNN, out, a, b, false, bias, nil)
}

// MatMulBiasReLUInto computes out = relu(a @ b + bias) and records the ReLU
// pass-through pattern in maskBits — bit i*out.Cols+j set when the pre-ReLU
// element was positive, matching nn's ReLU mask layout. maskBits must hold
// ceil(out elements / 64) zeroed words; bits are only ever set (concurrent
// tiles OR disjoint bits), never cleared. This is the fused Dense+ReLU
// forward: one pass over the output instead of three plus an intermediate
// activation buffer.
func MatMulBiasReLUInto(out, a, b *Matrix, bias []float64, maskBits []uint64) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul %dx%d @ %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmul out %dx%d for %dx%d result", out.Rows, out.Cols, a.Rows, b.Cols))
	}
	if len(bias) != b.Cols {
		panic(fmt.Sprintf("tensor: row vec %d for %d cols", len(bias), b.Cols))
	}
	if want := (a.Rows*b.Cols + 63) / 64; len(maskBits) < want {
		panic(fmt.Sprintf("tensor: relu mask %d words for %d elements", len(maskBits), a.Rows*b.Cols))
	}
	gemm(gemmNN, out, a, b, false, bias, maskBits)
}

// AddRowVecInto computes dst = src with vector v (len Cols) added to every
// row. dst and src may alias (dst == src adds in place); shapes must match.
func AddRowVecInto(dst, src *Matrix, v []float64) {
	dst.mustSameShape(src)
	if len(v) != src.Cols {
		panic(fmt.Sprintf("tensor: row vec %d for %d cols", len(v), src.Cols))
	}
	for r := 0; r < src.Rows; r++ {
		sr := src.Row(r)
		dr := dst.Row(r)
		for j, x := range v {
			dr[j] = sr[j] + x
		}
	}
}

// SumRowsInto accumulates the column-wise sums of m into dst (len Cols) —
// the bias-gradient kernel fused with gradient accumulation, replacing the
// allocating SumRows-then-add pattern. dst is NOT zeroed first.
func SumRowsInto(dst []float64, m *Matrix) {
	if len(dst) != m.Cols {
		panic(fmt.Sprintf("tensor: sum-rows dst %d for %d cols", len(dst), m.Cols))
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for j, x := range row {
			dst[j] += x
		}
	}
}

// ConcatRowsInto stacks the given matrices vertically into the preallocated
// dst, whose shape must equal the concatenation's.
func ConcatRowsInto(dst *Matrix, parts ...*Matrix) {
	rows := 0
	for _, p := range parts {
		if p.Cols != dst.Cols {
			panic(fmt.Sprintf("tensor: concat cols %d vs %d", p.Cols, dst.Cols))
		}
		rows += p.Rows
	}
	if rows != dst.Rows {
		panic(fmt.Sprintf("tensor: concat of %d rows into %d", rows, dst.Rows))
	}
	at := 0
	for _, p := range parts {
		copy(dst.Data[at:], p.Data)
		at += len(p.Data)
	}
}

// RowSliceInto points the reusable header dst at rows [lo, hi) of m, sharing
// storage — the allocation-free form of RowSlice for hot paths that keep a
// preallocated header per in-flight view.
func (m *Matrix) RowSliceInto(dst *Matrix, lo, hi int) {
	if lo < 0 || hi > m.Rows || lo > hi {
		panic(fmt.Sprintf("tensor: row slice [%d,%d) of %d rows", lo, hi, m.Rows))
	}
	dst.Rows, dst.Cols = hi-lo, m.Cols
	dst.Data = m.Data[lo*m.Cols : hi*m.Cols]
}
