package tensor

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// forceBlocked shrinks the cache blocks and the small-shape cutoff so tiny,
// hand-checkable shapes exercise the full packed/tiled/pool-parallel
// machinery (including block-boundary remainders), restoring the tuned sizes
// when the test ends.
func forceBlocked(t *testing.T, mc, nc, kc int) {
	t.Helper()
	pm, pn, pk, ps := blockMC, blockNC, blockKC, smallGEMMFlops
	blockMC, blockNC, blockKC, smallGEMMFlops = mc, nc, kc, 0
	t.Cleanup(func() { blockMC, blockNC, blockKC, smallGEMMFlops = pm, pn, pk, ps })
}

// requireSameBits fails when any element of got differs from want in its
// float64 bit pattern — the determinism contract is exact, not approximate.
func requireSameBits(t *testing.T, ctx string, got, want *Matrix) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", ctx, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
			t.Fatalf("%s: element %d = %v (bits %x), want %v (bits %x)",
				ctx, i, got.Data[i], math.Float64bits(got.Data[i]),
				want.Data[i], math.Float64bits(want.Data[i]))
		}
	}
}

// gemmCase holds one adversarial logical shape.
type gemmCase struct{ m, n, k int }

// adversarialShapes are chosen against 4x4x3 test blocks: degenerate dims,
// exact block multiples, every remainder class, and zero dims (including the
// K=0 case where overwrite must still zero the output).
var adversarialShapes = []gemmCase{
	{1, 1, 1}, {1, 9, 1}, {1, 1, 7}, {1, 17, 5},
	{2, 4, 4}, {4, 4, 3}, {5, 5, 5}, {8, 8, 6},
	{9, 13, 7}, {3, 17, 2}, {33, 2, 11}, {2, 33, 11},
	{12, 12, 12}, {16, 8, 9},
	{0, 5, 3}, {5, 0, 3}, {5, 3, 0}, {1, 1, 0},
}

// operands builds (a, b) with the physical layouts kind expects for the
// logical product dimensions (m, n, k).
func operands(rng *rand.Rand, kind gemmKind, c gemmCase) (a, b *Matrix) {
	switch kind {
	case gemmNN:
		return randMat(rng, c.m, c.k), randMat(rng, c.k, c.n)
	case gemmTN:
		return randMat(rng, c.k, c.m), randMat(rng, c.k, c.n)
	default: // gemmNT
		return randMat(rng, c.m, c.k), randMat(rng, c.n, c.k)
	}
}

// TestBlockedGemmBitIdenticalToReference pins every blocked/parallel GEMM
// kind bit-identical to the scalar reference across adversarial shapes,
// overwrite and accumulate modes, and worker counts 1/2/8.
func TestBlockedGemmBitIdenticalToReference(t *testing.T) {
	forceBlocked(t, 4, 4, 3)
	rng := rand.New(rand.NewSource(42))
	kinds := []gemmKind{gemmNN, gemmTN, gemmNT}
	names := []string{"NN", "TN", "NT"}
	for _, w := range []int{1, 2, 8} {
		prev := SetWorkers(w)
		for ki, kind := range kinds {
			for _, c := range adversarialShapes {
				for _, acc := range []bool{false, true} {
					a, b := operands(rng, kind, c)
					got := randMat(rng, c.m, c.n) // garbage: overwrite must not leak it
					want := got.Clone()
					refGemm(kind, want, a, b, acc)
					gemm(kind, got, a, b, acc, nil, nil)
					ctx := names[ki]
					if acc {
						ctx += "+acc"
					}
					requireSameBits(t, ctx, got, want)
				}
			}
		}
		SetWorkers(prev)
	}
}

// TestSmallGemmBitIdenticalToReference pins the unpacked small-product path
// (2x2-unrolled direct kernels) bit-identical to the scalar reference across
// the same adversarial shapes: every unroll remainder class (odd rows, odd
// columns, odd k) must produce the same ascending-k chain per element.
func TestSmallGemmBitIdenticalToReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	kinds := []gemmKind{gemmNN, gemmTN, gemmNT}
	names := []string{"NN", "TN", "NT"}
	for ki, kind := range kinds {
		for _, c := range adversarialShapes {
			for _, acc := range []bool{false, true} {
				a, b := operands(rng, kind, c)
				got := randMat(rng, c.m, c.n)
				want := got.Clone()
				refGemm(kind, want, a, b, acc)
				job := &gemmJob{kind: kind, out: got, a: a, b: b, accumulate: acc}
				smallGemm(job)
				ctx := "small" + names[ki]
				if acc {
					ctx += "+acc"
				}
				requireSameBits(t, ctx, got, want)
			}
		}
	}
}

// TestFusedEpiloguesBitIdentical pins the fused bias and bias+ReLU+mask
// kernels bit-identical to the unfused sequence (matmul, then bias row add,
// then rectify-and-record) across worker counts and shapes whose 64-bit mask
// words straddle rows and tiles.
func TestFusedEpiloguesBitIdentical(t *testing.T) {
	forceBlocked(t, 4, 4, 3)
	rng := rand.New(rand.NewSource(7))
	shapes := []gemmCase{{1, 1, 1}, {3, 5, 4}, {9, 13, 7}, {27, 5, 6}, {16, 8, 9}, {5, 3, 0}}
	for _, w := range []int{1, 2, 8} {
		prev := SetWorkers(w)
		for _, c := range shapes {
			a := randMat(rng, c.m, c.k)
			b := randMat(rng, c.k, c.n)
			bias := make([]float64, c.n)
			for i := range bias {
				bias[i] = rng.NormFloat64()
			}

			want := New(c.m, c.n)
			refGemm(gemmNN, want, a, b, false)
			want.AddRowVec(bias)

			got := randMat(rng, c.m, c.n)
			MatMulAddRowVecInto(got, a, b, bias)
			requireSameBits(t, "bias", got, want)

			wantMask := make([]uint64, (c.m*c.n+63)/64)
			for i, v := range want.Data {
				if v > 0 {
					wantMask[i>>6] |= 1 << (uint(i) & 63)
				} else {
					want.Data[i] = 0
				}
			}
			gotMask := make([]uint64, len(wantMask))
			got = randMat(rng, c.m, c.n)
			MatMulBiasReLUInto(got, a, b, bias, gotMask)
			requireSameBits(t, "bias+relu", got, want)
			for i := range wantMask {
				if gotMask[i] != wantMask[i] {
					t.Fatalf("relu mask word %d = %x, want %x", i, gotMask[i], wantMask[i])
				}
			}
		}
		SetWorkers(prev)
	}
}

// TestGemmWorkerCountDeterminism runs full-size (tuned-block) products that
// straddle the 128/192 block boundaries and requires bitwise-equal results
// for every worker count — the property the repo's schedule-equivalence
// assertions rest on.
func TestGemmWorkerCountDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := gemmCase{200, 150, 97} // 2.9M flops: blocked path at tuned sizes
	for ki, kind := range []gemmKind{gemmNN, gemmTN, gemmNT} {
		a, b := operands(rng, kind, c)
		base := New(c.m, c.n)
		prev := SetWorkers(1)
		gemm(kind, base, a, b, false, nil, nil)
		for _, w := range []int{2, 8} {
			SetWorkers(w)
			got := New(c.m, c.n)
			gemm(kind, got, a, b, false, nil, nil)
			requireSameBits(t, []string{"NN", "TN", "NT"}[ki], got, base)
		}
		SetWorkers(prev)
	}
}

// TestMatMulZeroSkipMatchesDense checks the opt-in sparse entry point against
// the dense kernel on finite inputs, where skipping zero terms is exact.
func TestMatMulZeroSkipMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randMat(rng, 17, 23)
	for i := range a.Data {
		if i%3 != 0 {
			a.Data[i] = 0
		}
	}
	b := randMat(rng, 23, 9)
	want := MatMul(a, b)
	got := randMat(rng, 17, 9)
	MatMulZeroSkipInto(got, a, b)
	requireSameBits(t, "zero-skip", got, want)
}

// TestWarmKernelZeroAlloc is the warm-kernel allocation gate: once the pack
// and dispatch pools are primed, parallel blocked kernels must not allocate —
// the property that keeps large-layer Executor.Step inside its alloc budget.
func TestWarmKernelZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	prev := SetWorkers(8)
	defer SetWorkers(prev)
	rng := rand.New(rand.NewSource(11))
	a := randMat(rng, 192, 192)
	b := randMat(rng, 192, 192)
	out := New(192, 192)
	gw := New(192, 192)
	run := func() {
		MatMulInto(out, a, b)
		MatMulATBAddInto(gw, a, b)
		MatMulABTInto(out, a, b)
	}
	run() // prime pools
	if allocs := testing.AllocsPerRun(5, run); allocs != 0 {
		t.Fatalf("warm parallel kernels allocated %v allocs/run, want 0", allocs)
	}
}

// TestConcurrentGemmCallers drives the shared pool from several goroutines at
// once (each above the blocked-path threshold) and checks every result, so
// the race detector sees the dispatch protocol under contention.
func TestConcurrentGemmCallers(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	rng := rand.New(rand.NewSource(5))
	a := randMat(rng, 128, 96)
	b := randMat(rng, 96, 90) // 1.1M flops: blocked path
	want := MatMul(a, b)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := New(128, 90)
			for iter := 0; iter < 10; iter++ {
				MatMulInto(out, a, b)
				for i := range want.Data {
					if math.Float64bits(out.Data[i]) != math.Float64bits(want.Data[i]) {
						t.Errorf("concurrent result diverged at element %d", i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
