package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestNewShape(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("got %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
}

func TestAtSetRow(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatalf("At(1,2) = %v", m.At(1, 2))
	}
	row := m.Row(1)
	if row[2] != 7 {
		t.Fatalf("Row(1)[2] = %v", row[2])
	}
	row[0] = 5 // views share storage
	if m.At(1, 0) != 5 {
		t.Fatalf("row view not shared")
	}
}

func TestFromSliceValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad length")
		}
	}()
	FromSlice(2, 2, []float64{1, 2, 3})
}

func TestCloneIndependent(t *testing.T) {
	m := FromSlice(1, 2, []float64{1, 2})
	c := m.Clone()
	c.Data[0] = 99
	if m.Data[0] != 1 {
		t.Fatal("clone shares storage")
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if !almostEq(c.Data[i], w) {
			t.Fatalf("c[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

// TestMatMulParallelMatchesSerial checks the banded parallel path against a
// naive triple loop on shapes above the parallel threshold.
func TestMatMulParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(97, 83)
	b := New(83, 71)
	a.Randomize(rng, 1)
	b.Randomize(rng, 1)
	got := MatMul(a, b)
	want := New(97, 71)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			want.Set(i, j, s)
		}
	}
	if d := MaxAbsDiff(got, want); d > 1e-9 {
		t.Fatalf("parallel matmul differs by %g", d)
	}
}

func TestMatMulATB(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := New(13, 7)
	b := New(13, 5)
	a.Randomize(rng, 1)
	b.Randomize(rng, 1)
	got := MatMulATB(a, b)
	// aᵀ@b via explicit transpose.
	at := New(7, 13)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	want := MatMul(at, b)
	if d := MaxAbsDiff(got, want); d > 1e-9 {
		t.Fatalf("ATB differs by %g", d)
	}
}

func TestMatMulABT(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := New(9, 6)
	b := New(11, 6)
	a.Randomize(rng, 1)
	b.Randomize(rng, 1)
	got := MatMulABT(a, b)
	bt := New(6, 11)
	for i := 0; i < b.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			bt.Set(j, i, b.At(i, j))
		}
	}
	want := MatMul(a, bt)
	if d := MaxAbsDiff(got, want); d > 1e-9 {
		t.Fatalf("ABT differs by %g", d)
	}
}

func TestAddAXPYScale(t *testing.T) {
	m := FromSlice(1, 3, []float64{1, 2, 3})
	o := FromSlice(1, 3, []float64{10, 20, 30})
	m.Add(o)
	if m.Data[1] != 22 {
		t.Fatalf("Add: %v", m.Data)
	}
	m.AXPY(0.5, o)
	if m.Data[2] != 33+15 {
		t.Fatalf("AXPY: %v", m.Data)
	}
	m.Scale(2)
	if m.Data[0] != 2*(1+10+5) {
		t.Fatalf("Scale: %v", m.Data)
	}
}

func TestAddRowVecSumRows(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, 2, 3, 4})
	m.AddRowVec([]float64{10, 20})
	want := []float64{11, 22, 13, 24}
	for i, w := range want {
		if m.Data[i] != w {
			t.Fatalf("AddRowVec: %v", m.Data)
		}
	}
	s := m.SumRows()
	if s[0] != 24 || s[1] != 46 {
		t.Fatalf("SumRows: %v", s)
	}
}

func TestSplitConcatRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := New(11, 3)
	m.Randomize(rng, 1)
	parts := m.SplitRows(4)
	if len(parts) != 4 {
		t.Fatalf("got %d parts", len(parts))
	}
	rows := 0
	for _, p := range parts {
		rows += p.Rows
	}
	if rows != 11 {
		t.Fatalf("parts cover %d rows", rows)
	}
	back := ConcatRows(parts...)
	if d := MaxAbsDiff(m, back); d != 0 {
		t.Fatalf("round trip differs by %g", d)
	}
}

// Property: split/concat round-trips for arbitrary shapes and part counts.
func TestSplitConcatProperty(t *testing.T) {
	f := func(rows8, cols8, n8 uint8) bool {
		rows := int(rows8%40) + 1
		cols := int(cols8%8) + 1
		n := int(n8%uint8(rows)) + 1
		rng := rand.New(rand.NewSource(int64(rows*100 + cols*10 + n)))
		m := New(rows, cols)
		m.Randomize(rng, 1)
		back := ConcatRows(m.SplitRows(n)...)
		return MaxAbsDiff(m, back) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: (a@b)@c == a@(b@c) within float tolerance.
func TestMatMulAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := New(5, 4), New(4, 6), New(6, 3)
		a.Randomize(rng, 1)
		b.Randomize(rng, 1)
		c.Randomize(rng, 1)
		left := MatMul(MatMul(a, b), c)
		right := MatMul(a, MatMul(b, c))
		return MaxAbsDiff(left, right) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRowSliceBounds(t *testing.T) {
	m := New(4, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.RowSlice(2, 6)
}

func TestMaxAbsDiff(t *testing.T) {
	a := FromSlice(1, 3, []float64{1, 5, -2})
	b := FromSlice(1, 3, []float64{1, 2, -4})
	if d := MaxAbsDiff(a, b); d != 3 {
		t.Fatalf("MaxAbsDiff = %v", d)
	}
}
