package tensor

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// This file is the blocked GEMM core every matmul variant routes through.
// The structure is the classic GotoBLAS decomposition, sized for L1/L2:
//
//   - The output is split into disjoint blockMC x blockNC tiles; the tile
//     grid is the unit of parallelism (see parallel.go).
//   - Each tile walks the k dimension in blockKC panels. Per panel, the
//     needed slice of b (and of a, when a is accessed column-wise) is packed
//     into a pooled, contiguous buffer so the inner kernel streams packed
//     columns with unit stride regardless of operand layout.
//   - A 2x4 register-tiled micro-kernel does the FLOPs: 8 accumulators plus
//     2 a-scalars and 4 b-scalars stay within the 16 float registers of
//     baseline amd64, so the inner loop runs without spills.
//
// Determinism: a tile owns its output elements exclusively, and it runs its
// k panels in increasing order with increasing kk inside each panel — so
// every output element is one in-order accumulation chain (the refGemm
// contract) no matter how many workers execute tiles. Fused bias/ReLU
// epilogues run once per tile after its final panel, which likewise touches
// each element exactly once.

// Cache block sizes for the tiled core. At float64 these default to a
// 192-deep packed b panel of 128 columns (192 KiB, L2-resident) against
// 128-row output tiles. They are variables, not constants, so property
// tests can shrink them to force block-boundary-straddling and multi-tile
// paths on small, checkable shapes.
var (
	blockMC = 128
	blockNC = 128
	blockKC = 192
)

// smallGEMMFlops is the m*n*k product below which GEMM skips packing and
// parallel dispatch and runs a direct kernel (same accumulation chains). A
// variable so property tests can force tiny shapes through the blocked core.
var smallGEMMFlops = 1 << 18

// shapeErr formats the panic message for a kernel shape mismatch.
func shapeErr(op string, got, want *Matrix) string {
	return fmt.Sprintf("tensor: %s shape %dx%d vs %dx%d", op, got.Rows, got.Cols, want.Rows, want.Cols)
}

// packBuf holds one worker's pooled packing panels, recycled via packPool so
// warm kernels allocate nothing.
type packBuf struct {
	bt []float64
	at []float64
}

var packPool = sync.Pool{New: func() any { return new(packBuf) }}

// grow returns s with length n, reallocating only when capacity is short.
func grow(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// gemmJob is one GEMM dispatch: operands, optional fused epilogues, and the
// tile grid its disjoint output tiles are indexed by. Parallel runs copy the
// job by value; all methods treat it as read-only apart from writes to out.
type gemmJob struct {
	kind       gemmKind
	out, a, b  *Matrix
	accumulate bool
	bias       []float64
	reluMask   []uint64
	m, n, k    int
	tilesN     int

	// Vector-kernel dispatch (see vec.go). When vecOp is non-zero the job is
	// an element-wise vector kernel and the gemm fields above are unused; the
	// fields live here so parRun's by-value job copy stays allocation-free
	// instead of forcing an interface indirection.
	vecOp  vecKind
	vd, vs []float64
	alpha  float64
	vspan  int
}

// gemm routes one GEMM variant through the direct small-shape kernels or the
// blocked pool-parallel core. bias (len n, added to every row) and reluMask
// (pass-through bits at flat index i*n+j) are optional fused epilogues; both
// paths produce bit-identical results for any worker count.
func gemm(kind gemmKind, out, a, b *Matrix, accumulate bool, bias []float64, reluMask []uint64) {
	m, n, k := gemmDims(kind, a, b)
	g := gemmJob{
		kind: kind, out: out, a: a, b: b, accumulate: accumulate,
		bias: bias, reluMask: reluMask, m: m, n: n, k: k,
	}
	if m*n*k < smallGEMMFlops {
		smallGemm(&g)
		g.epilogue(0, m, 0, n, false)
		return
	}
	tm := (m + blockMC - 1) / blockMC
	tn := (n + blockNC - 1) / blockNC
	g.tilesN = tn
	parallelTiles(&g, tm*tn)
}

// runTile computes one blockMC x blockNC output tile end to end: zero (or
// keep, when accumulating) the tile, fold in every k panel through the
// packed micro-kernel, then apply the fused epilogues. Vector-kernel jobs
// dispatch through the same entry point so the pool protocol stays shared.
func (g *gemmJob) runTile(t int) {
	if g.vecOp != vecNone {
		g.runVecSpan(t)
		return
	}
	ti, tj := t/g.tilesN, t%g.tilesN
	i0 := ti * blockMC
	i1 := min(i0+blockMC, g.m)
	j0 := tj * blockNC
	j1 := min(j0+blockNC, g.n)
	oc := g.out.Cols
	if !g.accumulate {
		for i := i0; i < i1; i++ {
			row := g.out.Data[i*oc+j0 : i*oc+j1]
			for x := range row {
				row[x] = 0
			}
		}
	}
	pk := packPool.Get().(*packBuf)
	for pc := 0; pc < g.k; pc += blockKC {
		kcb := min(blockKC, g.k-pc)
		pk.bt = grow(pk.bt, (j1-j0)*kcb)
		g.packB(pk.bt, j0, j1, pc, kcb)
		var at []float64
		if g.kind == gemmTN {
			pk.at = grow(pk.at, (i1-i0)*kcb)
			g.packA(pk.at, i0, i1, pc, kcb)
			at = pk.at
		}
		g.kernel(i0, i1, j0, j1, pc, kcb, pk.bt, at)
	}
	packPool.Put(pk)
	g.epilogue(i0, i1, j0, j1, true)
}

// packB gathers the k panel's slice of b into bt so packed column j (the
// kernel's unit-stride operand) holds b's logical column j0+j for rows
// [pc, pc+kcb). Reads stream b contiguously; writes stay in the hot panel.
func (g *gemmJob) packB(bt []float64, j0, j1, pc, kcb int) {
	if g.kind == gemmNT {
		bd, bc := g.b.Data, g.b.Cols
		for j := j0; j < j1; j++ {
			copy(bt[(j-j0)*kcb:(j-j0+1)*kcb], bd[j*bc+pc:j*bc+pc+kcb])
		}
		return
	}
	bd, n := g.b.Data, g.b.Cols
	for kk := 0; kk < kcb; kk++ {
		br := bd[(pc+kk)*n+j0 : (pc+kk)*n+j1]
		for j, v := range br {
			bt[j*kcb+kk] = v
		}
	}
}

// packA gathers a's column-wise rows for the TN (aᵀ@b) kind: packed row i
// holds a's logical column i0+i for rows [pc, pc+kcb), giving the kernel
// unit-stride a operands.
func (g *gemmJob) packA(at []float64, i0, i1, pc, kcb int) {
	ad, ac := g.a.Data, g.a.Cols
	for kk := 0; kk < kcb; kk++ {
		ar := ad[(pc+kk)*ac+i0 : (pc+kk)*ac+i1]
		for i, v := range ar {
			at[i*kcb+kk] = v
		}
	}
}

// aRow returns the unit-stride a operand for logical output row i of the
// current panel: a direct row segment for NN/NT, the packed panel row for TN.
func (g *gemmJob) aRow(i, i0, pc, kcb int, at []float64) []float64 {
	if g.kind == gemmTN {
		return at[(i-i0)*kcb : (i-i0+1)*kcb]
	}
	off := i*g.a.Cols + pc
	return g.a.Data[off : off+kcb]
}

// kernel folds one packed k panel into out[i0:i1, j0:j1] with the 2x4
// register-tiled micro-kernel. Row pairs are the outer loop (output rows are
// finished in contiguous sweeps); each 4-column group slices its packed
// columns and keeps 8 accumulators live across the kcb-long dot loop.
// Anchoring that loop on ar0 and re-slicing every other operand to its
// length lets the compiler drop all bounds checks from the 8-fmadd body.
func (g *gemmJob) kernel(i0, i1, j0, j1, pc, kcb int, bt, at []float64) {
	od, oc := g.out.Data, g.out.Cols
	i := i0
	for ; i+2 <= i1; i += 2 {
		ar0 := g.aRow(i, i0, pc, kcb, at)
		ar1 := g.aRow(i+1, i0, pc, kcb, at)[:len(ar0)]
		r0, r1 := i*oc, (i+1)*oc
		jj := j0
		for ; jj+4 <= j1; jj += 4 {
			p := (jj - j0) * kcb
			bc0 := bt[p : p+kcb][:len(ar0)]
			bc1 := bt[p+kcb : p+2*kcb][:len(ar0)]
			bc2 := bt[p+2*kcb : p+3*kcb][:len(ar0)]
			bc3 := bt[p+3*kcb : p+4*kcb][:len(ar0)]
			or0 := od[r0+jj : r0+jj+4]
			or1 := od[r1+jj : r1+jj+4]
			c00, c01, c02, c03 := or0[0], or0[1], or0[2], or0[3]
			c10, c11, c12, c13 := or1[0], or1[1], or1[2], or1[3]
			for kk := range ar0 {
				a0, a1 := ar0[kk], ar1[kk]
				b0, b1, b2, b3 := bc0[kk], bc1[kk], bc2[kk], bc3[kk]
				c00 = fmadd(a0, b0, c00)
				c01 = fmadd(a0, b1, c01)
				c02 = fmadd(a0, b2, c02)
				c03 = fmadd(a0, b3, c03)
				c10 = fmadd(a1, b0, c10)
				c11 = fmadd(a1, b1, c11)
				c12 = fmadd(a1, b2, c12)
				c13 = fmadd(a1, b3, c13)
			}
			or0[0], or0[1], or0[2], or0[3] = c00, c01, c02, c03
			or1[0], or1[1], or1[2], or1[3] = c10, c11, c12, c13
		}
		for ; jj < j1; jj++ {
			bc := bt[(jj-j0)*kcb:][:len(ar0)]
			acc0, acc1 := od[r0+jj], od[r1+jj]
			for kk := range ar0 {
				acc0 = fmadd(ar0[kk], bc[kk], acc0)
				acc1 = fmadd(ar1[kk], bc[kk], acc1)
			}
			od[r0+jj], od[r1+jj] = acc0, acc1
		}
	}
	if i < i1 {
		ar0 := g.aRow(i, i0, pc, kcb, at)
		r0 := i * oc
		jj := j0
		for ; jj+4 <= j1; jj += 4 {
			p := (jj - j0) * kcb
			bc0 := bt[p : p+kcb][:len(ar0)]
			bc1 := bt[p+kcb : p+2*kcb][:len(ar0)]
			bc2 := bt[p+2*kcb : p+3*kcb][:len(ar0)]
			bc3 := bt[p+3*kcb : p+4*kcb][:len(ar0)]
			or0 := od[r0+jj : r0+jj+4]
			c00, c01, c02, c03 := or0[0], or0[1], or0[2], or0[3]
			for kk, a0 := range ar0 {
				c00 = fmadd(a0, bc0[kk], c00)
				c01 = fmadd(a0, bc1[kk], c01)
				c02 = fmadd(a0, bc2[kk], c02)
				c03 = fmadd(a0, bc3[kk], c03)
			}
			or0[0], or0[1], or0[2], or0[3] = c00, c01, c02, c03
		}
		for ; jj < j1; jj++ {
			bc := bt[(jj-j0)*kcb:][:len(ar0)]
			acc := od[r0+jj]
			for kk, av := range ar0 {
				acc = fmadd(av, bc[kk], acc)
			}
			od[r0+jj] = acc
		}
	}
}

// epilogue applies the fused bias and ReLU to the finished tile. par selects
// atomic mask-word updates: 64-bit mask words need not align with tile
// boundaries, so concurrent tiles may share a word (ORing disjoint bits is
// order-independent, keeping the result deterministic).
func (g *gemmJob) epilogue(i0, i1, j0, j1 int, par bool) {
	if g.bias == nil && g.reluMask == nil {
		return
	}
	od, oc := g.out.Data, g.out.Cols
	for i := i0; i < i1; i++ {
		row := od[i*oc : i*oc+oc]
		if g.bias != nil {
			bias := g.bias
			for j := j0; j < j1; j++ {
				row[j] += bias[j]
			}
		}
		if g.reluMask != nil {
			g.reluSpan(row, i*oc, j0, j1, par)
		}
	}
}

// reluSpan rectifies row[j0:j1] in place and records pass-through bits (flat
// element index base+j, matching nn's ReLU mask layout), batching bit sets
// into one mask-word write per word touched.
func (g *gemmJob) reluSpan(row []float64, base, j0, j1 int, par bool) {
	mask := g.reluMask
	for j := j0; j < j1; {
		word := (base + j) >> 6
		end := min(j1, j+64-((base+j)&63))
		var bits uint64
		for ; j < end; j++ {
			if row[j] > 0 {
				bits |= 1 << (uint(base+j) & 63)
			} else {
				row[j] = 0
			}
		}
		if bits != 0 {
			if par {
				atomic.OrUint64(&mask[word], bits)
			} else {
				mask[word] |= bits
			}
		}
	}
}

// smallGemm computes small products with direct kernels — no packing or
// dispatch overhead, but the same per-element in-order k chains as the
// blocked core, so the two paths are bit-identical. Each kernel is unrolled
// 2x2 over independent output rows / k pairs: pairing k steps nests fmadds
// in ascending-k order (identical rounding to one-at-a-time accumulation),
// while pairing rows and columns amortizes loads and breaks the
// single-accumulator latency chain without touching element order.
func smallGemm(g *gemmJob) {
	if !g.accumulate {
		g.out.Zero()
	}
	switch g.kind {
	case gemmNN:
		smallNN(g)
	case gemmTN:
		smallTN(g)
	default:
		smallNT(g)
	}
}

// smallNN is out += a@b: row-pair outer, k-pair middle, shared b row loads.
func smallNN(g *gemmJob) {
	n := g.b.Cols
	kTot := g.a.Cols
	bd := g.b.Data
	i := 0
	for ; i+2 <= g.a.Rows; i += 2 {
		ar0, ar1 := g.a.Row(i), g.a.Row(i+1)
		or0, or1 := g.out.Row(i), g.out.Row(i+1)
		kk := 0
		for ; kk+2 <= kTot; kk += 2 {
			a00, a01 := ar0[kk], ar0[kk+1]
			a10, a11 := ar1[kk], ar1[kk+1]
			b0 := bd[kk*n : kk*n+n]
			b1 := bd[(kk+1)*n:][:len(b0)]
			o0 := or0[:len(b0)]
			o1 := or1[:len(b0)]
			for j, bv0 := range b0 {
				bv1 := b1[j]
				o0[j] = fmadd(a01, bv1, fmadd(a00, bv0, o0[j]))
				o1[j] = fmadd(a11, bv1, fmadd(a10, bv0, o1[j]))
			}
		}
		if kk < kTot {
			av0, av1 := ar0[kk], ar1[kk]
			b0 := bd[kk*n : kk*n+n]
			o0 := or0[:len(b0)]
			o1 := or1[:len(b0)]
			for j, bv := range b0 {
				o0[j] = fmadd(av0, bv, o0[j])
				o1[j] = fmadd(av1, bv, o1[j])
			}
		}
	}
	if i < g.a.Rows {
		ar := g.a.Row(i)
		or := g.out.Row(i)
		kk := 0
		for ; kk+2 <= kTot; kk += 2 {
			a0, a1 := ar[kk], ar[kk+1]
			b0 := bd[kk*n : kk*n+n]
			b1 := bd[(kk+1)*n:][:len(b0)]
			o := or[:len(b0)]
			for j, bv0 := range b0 {
				o[j] = fmadd(a1, b1[j], fmadd(a0, bv0, o[j]))
			}
		}
		if kk < kTot {
			av := ar[kk]
			b0 := bd[kk*n : kk*n+n]
			o := or[:len(b0)]
			for j, bv := range b0 {
				o[j] = fmadd(av, bv, o[j])
			}
		}
	}
}

// smallTN is out += aᵀ@b: k (= a row) pairs outer, output-row pairs middle.
func smallTN(g *gemmJob) {
	n := g.b.Cols
	od := g.out.Data
	kk := 0
	for ; kk+2 <= g.a.Rows; kk += 2 {
		ar0, ar1 := g.a.Row(kk), g.a.Row(kk+1)
		br0, br1 := g.b.Row(kk), g.b.Row(kk+1)
		i := 0
		for ; i+2 <= len(ar0); i += 2 {
			a00, a10 := ar0[i], ar1[i]
			a01, a11 := ar0[i+1], ar1[i+1]
			o0 := od[i*n : i*n+n][:len(br0)]
			o1 := od[(i+1)*n : (i+1)*n+n][:len(br0)]
			b1 := br1[:len(br0)]
			for j, bv0 := range br0 {
				bv1 := b1[j]
				o0[j] = fmadd(a10, bv1, fmadd(a00, bv0, o0[j]))
				o1[j] = fmadd(a11, bv1, fmadd(a01, bv0, o1[j]))
			}
		}
		if i < len(ar0) {
			a0, a1 := ar0[i], ar1[i]
			o := od[i*n : i*n+n][:len(br0)]
			b1 := br1[:len(br0)]
			for j, bv0 := range br0 {
				o[j] = fmadd(a1, b1[j], fmadd(a0, bv0, o[j]))
			}
		}
	}
	if kk < g.a.Rows {
		ar := g.a.Row(kk)
		br := g.b.Row(kk)
		for i, av := range ar {
			o := od[i*n : i*n+n][:len(br)]
			for j, bv := range br {
				o[j] = fmadd(av, bv, o[j])
			}
		}
	}
}

// smallNT is out += a@bᵀ: 2x2 blocks of dot products, four independent
// in-order accumulator chains per block.
func smallNT(g *gemmJob) {
	i := 0
	for ; i+2 <= g.a.Rows; i += 2 {
		ar0, ar1 := g.a.Row(i), g.a.Row(i+1)
		or0, or1 := g.out.Row(i), g.out.Row(i+1)
		a1 := ar1[:len(ar0)]
		j := 0
		for ; j+2 <= g.b.Rows; j += 2 {
			br0 := g.b.Row(j)[:len(ar0)]
			br1 := g.b.Row(j + 1)[:len(ar0)]
			s00, s01 := or0[j], or0[j+1]
			s10, s11 := or1[j], or1[j+1]
			for k, av0 := range ar0 {
				av1 := a1[k]
				bv0, bv1 := br0[k], br1[k]
				s00 = fmadd(av0, bv0, s00)
				s01 = fmadd(av0, bv1, s01)
				s10 = fmadd(av1, bv0, s10)
				s11 = fmadd(av1, bv1, s11)
			}
			or0[j], or0[j+1] = s00, s01
			or1[j], or1[j+1] = s10, s11
		}
		if j < g.b.Rows {
			br := g.b.Row(j)[:len(ar0)]
			s0, s1 := or0[j], or1[j]
			for k, av0 := range ar0 {
				bv := br[k]
				s0 = fmadd(av0, bv, s0)
				s1 = fmadd(a1[k], bv, s1)
			}
			or0[j], or1[j] = s0, s1
		}
	}
	if i < g.a.Rows {
		ar := g.a.Row(i)
		or := g.out.Row(i)
		j := 0
		for ; j+2 <= g.b.Rows; j += 2 {
			br0 := g.b.Row(j)[:len(ar)]
			br1 := g.b.Row(j + 1)[:len(ar)]
			s0, s1 := or[j], or[j+1]
			for k, av := range ar {
				s0 = fmadd(av, br0[k], s0)
				s1 = fmadd(av, br1[k], s1)
			}
			or[j], or[j+1] = s0, s1
		}
		if j < g.b.Rows {
			br := g.b.Row(j)[:len(ar)]
			s := or[j]
			for k, av := range ar {
				s = fmadd(av, br[k], s)
			}
			or[j] = s
		}
	}
}
