package tensor

// This file holds the retained scalar reference kernels: the executable
// specification of what every GEMM variant computes, down to the bit.
//
// The contract all fast paths (small unrolled kernels, the blocked core,
// pool-parallel tiles) must honor is simple:
//
//	each output element is produced by ONE accumulation chain that adds
//	a·b products in strictly increasing k order, seeded with 0 (overwrite)
//	or the prior out value (accumulate), using fmadd for every step.
//
// Because float addition is deterministic for a fixed operand sequence,
// any implementation that preserves that per-element chain — regardless of
// tiling, packing, register blocking, or which worker runs which tile — is
// bit-identical to these loops. Property tests in block_test.go pin that.

// gemmKind selects which of the three operand layouts a GEMM computes.
type gemmKind uint8

const (
	// gemmNN computes out = a @ b.
	gemmNN gemmKind = iota
	// gemmTN computes out = aᵀ @ b (weight gradients).
	gemmTN
	// gemmNT computes out = a @ bᵀ (input gradients).
	gemmNT
)

// gemmDims returns the logical (m, n, k) of a kind's product.
func gemmDims(kind gemmKind, a, b *Matrix) (m, n, k int) {
	switch kind {
	case gemmNN:
		return a.Rows, b.Cols, a.Cols
	case gemmTN:
		return a.Cols, b.Cols, a.Rows
	default: // gemmNT
		return a.Rows, b.Rows, a.Cols
	}
}

// refGemm is the scalar oracle: a plain ijk dot loop over the logical
// operands, one in-order accumulation chain per output element.
func refGemm(kind gemmKind, out, a, b *Matrix, accumulate bool) {
	m, n, k := gemmDims(kind, a, b)
	for i := 0; i < m; i++ {
		or := out.Row(i)[:n]
		for j := 0; j < n; j++ {
			var acc float64
			if accumulate {
				acc = or[j]
			}
			for kk := 0; kk < k; kk++ {
				var av, bv float64
				switch kind {
				case gemmNN:
					av, bv = a.Data[i*a.Cols+kk], b.Data[kk*b.Cols+j]
				case gemmTN:
					av, bv = a.Data[kk*a.Cols+i], b.Data[kk*b.Cols+j]
				default: // gemmNT
					av, bv = a.Data[i*a.Cols+kk], b.Data[j*b.Cols+kk]
				}
				acc = fmadd(av, bv, acc)
			}
			or[j] = acc
		}
	}
}

// MatMulZeroSkipInto computes out = a @ b with the legacy sparse-aware inner
// loop: rows of b whose matching a element is exactly zero are skipped
// entirely. For inputs where a is substantially sparse (e.g. activations
// behind a ReLU) this trades a branch per a element for skipping whole
// row-updates; for dense inputs the branch only pessimizes the hot loop,
// which is why the dense kernels no longer carry it (BenchmarkGEMMZeroSkip
// records the delta both ways).
//
// The skip makes results bit-different from the dense path in edge cases
// (signed zeros, a zero times an infinity or NaN), so this entry point is
// opt-in for callers that know a is sparse and finite — it is not used by
// the training runtime.
func MatMulZeroSkipInto(out, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(shapeErr("matmul", a, b))
	}
	if out.Rows != a.Rows || out.Cols != b.Cols {
		panic(shapeErr("matmul out", out, &Matrix{Rows: a.Rows, Cols: b.Cols}))
	}
	out.Zero()
	n := b.Cols
	for i := 0; i < a.Rows; i++ {
		or := out.Row(i)
		ar := a.Row(i)
		for k, av := range ar {
			if av == 0 {
				continue
			}
			br := b.Data[k*n : (k+1)*n]
			for j, bv := range br {
				or[j] = fmadd(av, bv, or[j])
			}
		}
	}
}
