//go:build amd64.v3 || amd64.v4 || arm64

package tensor

import "math"

// fmadd returns acc + a*b with a single rounding (fused multiply-add).
//
// On these build targets (GOAMD64=v3/v4, arm64) math.FMA compiles to one
// branch-free hardware instruction, roughly doubling peak kernel throughput
// over separate multiply+add. Every kernel in this package — the blocked
// GEMM core AND the scalar reference — goes through this one helper, so
// results stay bit-identical between paths within a build. Builds with
// different fmadd definitions (v1 vs v3) legitimately differ in the last
// bits; all in-repo tolerances compare like against like.
func fmadd(a, b, acc float64) float64 { return math.FMA(a, b, acc) }
