package tensor

// Pool is a shape-keyed free list of matrices — the per-worker workspace
// arena of the real training runtime. A worker leases buffers with Get,
// returns them with Put, and after one warm iteration every shape the
// iteration touches is resident, so the steady state allocates nothing.
//
// A Pool is NOT safe for concurrent use: the runtime gives each worker
// goroutine its own pool, and buffers crossing goroutines are handed off
// through channels (which establish the necessary happens-before edges)
// rather than shared.
type Pool struct {
	free map[poolKey][]*Matrix

	// leased counts Get calls minus Put calls, for leak diagnostics.
	leased int
	// misses counts Gets that had to allocate a fresh matrix.
	misses int
}

type poolKey struct{ rows, cols int }

// NewPool returns an empty workspace pool.
func NewPool() *Pool {
	return &Pool{free: make(map[poolKey][]*Matrix)}
}

// Get leases a rows x cols matrix with UNDEFINED contents: callers must fully
// overwrite it (the Into kernels do) or Zero it themselves.
func (p *Pool) Get(rows, cols int) *Matrix {
	p.leased++
	k := poolKey{rows, cols}
	if l := p.free[k]; len(l) > 0 {
		m := l[len(l)-1]
		l[len(l)-1] = nil
		p.free[k] = l[:len(l)-1]
		return m
	}
	p.misses++
	return New(rows, cols)
}

// Put returns a leased matrix to the pool. The caller must not use m after
// Put. Foreign matrices (not leased from this pool) may be donated; nil is
// ignored.
func (p *Pool) Put(m *Matrix) {
	if m == nil {
		return
	}
	p.leased--
	k := poolKey{m.Rows, m.Cols}
	p.free[k] = append(p.free[k], m)
}

// Leased reports outstanding buffers (Gets minus Puts) — zero between
// iterations when every lease was returned.
func (p *Pool) Leased() int { return p.leased }

// Misses reports how many Gets allocated because no pooled buffer of the
// shape was free — constant across iterations once the pool is warm.
func (p *Pool) Misses() int { return p.misses }
