package tensor

import (
	"math/rand"
	"testing"
)

// randMat returns a randomized rows x cols matrix.
func randMat(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	m.Randomize(rng, 1)
	return m
}

// TestIntoKernelsMatchAllocating checks every Into kernel against its
// allocating counterpart on random inputs, including stale destination
// contents (overwrite semantics) and accumulation semantics.
func TestIntoKernelsMatchAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randMat(rng, 9, 6)
	b := randMat(rng, 6, 5)

	out := randMat(rng, 9, 5) // stale contents must be overwritten
	MatMulInto(out, a, b)
	if d := MaxAbsDiff(out, MatMul(a, b)); d != 0 {
		t.Fatalf("MatMulInto differs by %g", d)
	}

	x := randMat(rng, 9, 6)
	dy := randMat(rng, 9, 5)
	acc := randMat(rng, 6, 5)
	want := acc.Clone()
	want.Add(MatMulATB(x, dy))
	MatMulATBAddInto(acc, x, dy)
	if d := MaxAbsDiff(acc, want); d > 1e-12 {
		t.Fatalf("MatMulATBAddInto differs by %g", d)
	}

	w := randMat(rng, 6, 5)
	dx := randMat(rng, 9, 6)
	MatMulABTInto(dx, dy, w)
	if d := MaxAbsDiff(dx, MatMulABT(dy, w)); d != 0 {
		t.Fatalf("MatMulABTInto differs by %g", d)
	}

	src := randMat(rng, 4, 3)
	v := []float64{1, -2, 3}
	dst := randMat(rng, 4, 3)
	wantRV := src.Clone()
	wantRV.AddRowVec(v)
	AddRowVecInto(dst, src, v)
	if d := MaxAbsDiff(dst, wantRV); d != 0 {
		t.Fatalf("AddRowVecInto differs by %g", d)
	}
	// Aliased form adds in place.
	aliased := src.Clone()
	AddRowVecInto(aliased, aliased, v)
	if d := MaxAbsDiff(aliased, wantRV); d != 0 {
		t.Fatalf("aliased AddRowVecInto differs by %g", d)
	}

	sums := []float64{10, 20, 30}
	wantSums := append([]float64(nil), sums...)
	for j, s := range src.SumRows() {
		wantSums[j] += s
	}
	SumRowsInto(sums, src)
	for j := range sums {
		// Fused accumulation orders the additions differently from
		// SumRows-then-add, so compare to float tolerance.
		if d := sums[j] - wantSums[j]; d > 1e-12 || d < -1e-12 {
			t.Fatalf("SumRowsInto[%d] = %g, want %g", j, sums[j], wantSums[j])
		}
	}

	parts := []*Matrix{randMat(rng, 2, 3), randMat(rng, 3, 3), randMat(rng, 1, 3)}
	cat := randMat(rng, 6, 3)
	ConcatRowsInto(cat, parts...)
	if d := MaxAbsDiff(cat, ConcatRows(parts...)); d != 0 {
		t.Fatalf("ConcatRowsInto differs by %g", d)
	}

	var hdr Matrix
	src.RowSliceInto(&hdr, 1, 3)
	if d := MaxAbsDiff(&hdr, src.RowSlice(1, 3)); d != 0 {
		t.Fatalf("RowSliceInto differs by %g", d)
	}
	hdr.Data[0] = 42
	if src.At(1, 0) != 42 {
		t.Fatal("RowSliceInto does not share storage")
	}
}

// TestIntoKernelsShapePanics exercises each kernel's shape guard.
func TestIntoKernelsShapePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected shape panic", name)
			}
		}()
		f()
	}
	mustPanic("MatMulInto inner", func() { MatMulInto(New(2, 2), New(2, 3), New(2, 2)) })
	mustPanic("MatMulInto out", func() { MatMulInto(New(3, 2), New(2, 3), New(3, 2)) })
	mustPanic("MatMulATBAddInto rows", func() { MatMulATBAddInto(New(3, 2), New(2, 3), New(3, 2)) })
	mustPanic("MatMulATBAddInto out", func() { MatMulATBAddInto(New(2, 2), New(3, 3), New(3, 2)) })
	mustPanic("MatMulABTInto cols", func() { MatMulABTInto(New(2, 3), New(2, 3), New(3, 2)) })
	mustPanic("MatMulABTInto out", func() { MatMulABTInto(New(2, 2), New(2, 3), New(3, 3)) })
	mustPanic("AddRowVecInto vec", func() { AddRowVecInto(New(2, 3), New(2, 3), []float64{1}) })
	mustPanic("SumRowsInto", func() { SumRowsInto([]float64{1}, New(2, 3)) })
	mustPanic("ConcatRowsInto rows", func() { ConcatRowsInto(New(2, 3), New(3, 3)) })
	mustPanic("RowSliceInto", func() { New(2, 3).RowSliceInto(&Matrix{}, 1, 4) })
}

// TestIntoKernelsZeroAlloc is the allocation-regression gate of the kernel
// layer: every Into kernel must run without heap allocation (shapes kept
// below the parallel fan-out threshold, which spawns goroutines by design).
func TestIntoKernelsZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randMat(rng, 16, 12)
	b := randMat(rng, 12, 8)
	out := New(16, 8)
	dy := randMat(rng, 16, 8)
	gw := New(12, 8)
	dx := New(16, 12)
	v := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	sums := make([]float64, 12)
	parts := []*Matrix{a.RowSlice(0, 9), a.RowSlice(9, 16)}
	cat := New(16, 12)
	var hdr Matrix

	cases := []struct {
		name string
		f    func()
	}{
		{"MatMulInto", func() { MatMulInto(out, a, b) }},
		{"MatMulATBAddInto", func() { MatMulATBAddInto(gw, a, out) }},
		{"MatMulABTInto", func() { MatMulABTInto(dx, dy, gw) }},
		{"AddRowVecInto", func() { AddRowVecInto(out, out, v) }},
		{"SumRowsInto", func() { SumRowsInto(sums, a) }},
		{"ConcatRowsInto", func() { ConcatRowsInto(cat, parts...) }},
		{"RowSliceInto", func() { a.RowSliceInto(&hdr, 2, 9) }},
	}
	for _, tc := range cases {
		if n := testing.AllocsPerRun(20, tc.f); n != 0 {
			t.Errorf("%s allocates %v per run, want 0", tc.name, n)
		}
	}
}

// TestPoolReuse checks the workspace pool leases, recycles and accounts for
// buffers by shape, and that a warm pool stops allocating.
func TestPoolReuse(t *testing.T) {
	p := NewPool()
	m1 := p.Get(3, 4)
	m2 := p.Get(3, 4)
	if m1 == m2 {
		t.Fatal("two live leases share a buffer")
	}
	if p.Leased() != 2 || p.Misses() != 2 {
		t.Fatalf("leased %d misses %d, want 2/2", p.Leased(), p.Misses())
	}
	p.Put(m1)
	if got := p.Get(3, 4); got != m1 {
		t.Fatal("pool did not recycle the freed buffer")
	}
	if got := p.Get(4, 3); got.Rows != 4 || got.Cols != 3 {
		t.Fatal("pool returned wrong shape")
	}
	p.Put(nil) // ignored
	if p.Misses() != 3 {
		t.Fatalf("misses %d, want 3", p.Misses())
	}

	// Warm steady state: get/put cycles allocate nothing.
	p2 := NewPool()
	for i := 0; i < 3; i++ {
		p2.Put(p2.Get(8, 8))
	}
	if n := testing.AllocsPerRun(20, func() { p2.Put(p2.Get(8, 8)) }); n != 0 {
		t.Errorf("warm pool allocates %v per cycle, want 0", n)
	}
	if p2.Leased() != 0 {
		t.Fatalf("leaked %d buffers", p2.Leased())
	}
}
