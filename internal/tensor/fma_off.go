//go:build !amd64.v3 && !amd64.v4 && !arm64

package tensor

// fmadd returns acc + a*b with separate multiply and add roundings.
//
// This is the portable fallback: on baseline amd64 (GOAMD64=v1/v2) the
// math.FMA intrinsic guards every call with a runtime CPU-feature branch,
// which measures SLOWER than plain multiply+add in the packed micro-kernel,
// so the fused form is reserved for builds that guarantee the instruction
// (see fma_on.go). Both definitions keep the one-rounding-order-per-output
// contract the kernels rely on; they just differ in rounding, so the two
// build flavors are not bit-comparable with each other.
func fmadd(a, b, acc float64) float64 { return acc + a*b }
