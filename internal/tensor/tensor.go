// Package tensor implements the dense float64 matrix math the real training
// runtime (package train) executes. All GEMM variants (plain, aᵀ@b, a@bᵀ,
// and their into/fused-accumulate forms) route through one cache-blocked,
// register-tiled core (block.go) that fans large products out over a
// persistent shared worker pool (parallel.go). Work is partitioned by
// disjoint output tiles with a fixed k-accumulation order, so results are
// bit-identical for any worker count — the repo's determinism tests depend
// on that.
//
// float64 is deliberate: the runtime's purpose is to prove schedule
// equivalence (DAPPLE's pipelined gradients match sequential execution), and
// wide accumulators keep reordering noise far below the assertion tolerance.
package tensor

import (
	"fmt"
	"math/rand"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zero matrix of the given shape.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (not copied) as a rows x cols matrix.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: %d values for %dx%d matrix", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice view.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero clears all elements in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// CopyFrom copies src's contents; shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	m.mustSameShape(src)
	copy(m.Data, src.Data)
}

// RowSlice returns rows [lo, hi) as a view sharing storage.
func (m *Matrix) RowSlice(lo, hi int) *Matrix {
	if lo < 0 || hi > m.Rows || lo > hi {
		panic(fmt.Sprintf("tensor: row slice [%d,%d) of %d rows", lo, hi, m.Rows))
	}
	return &Matrix{Rows: hi - lo, Cols: m.Cols, Data: m.Data[lo*m.Cols : hi*m.Cols]}
}

// ConcatRows stacks the given matrices vertically into a new matrix.
func ConcatRows(parts ...*Matrix) *Matrix {
	if len(parts) == 0 {
		return New(0, 0)
	}
	cols := parts[0].Cols
	rows := 0
	for _, p := range parts {
		if p.Cols != cols {
			panic(fmt.Sprintf("tensor: concat cols %d vs %d", p.Cols, cols))
		}
		rows += p.Rows
	}
	out := New(rows, cols)
	at := 0
	for _, p := range parts {
		copy(out.Data[at:], p.Data)
		at += len(p.Data)
	}
	return out
}

// SplitRows partitions m into n near-equal row blocks (first blocks one row
// larger when rows do not divide evenly). Blocks are views.
func (m *Matrix) SplitRows(n int) []*Matrix {
	if n <= 0 {
		panic("tensor: split into non-positive parts")
	}
	out := make([]*Matrix, 0, n)
	base, extra := m.Rows/n, m.Rows%n
	lo := 0
	for i := 0; i < n; i++ {
		sz := base
		if i < extra {
			sz++
		}
		out = append(out, m.RowSlice(lo, lo+sz))
		lo += sz
	}
	return out
}

func (m *Matrix) mustSameShape(o *Matrix) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic(fmt.Sprintf("tensor: shape %dx%d vs %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
}

// Add accumulates o into m element-wise via the shared vector-sum kernel
// (pool-parallel for large matrices, bit-identical for any worker count).
func (m *Matrix) Add(o *Matrix) {
	m.mustSameShape(o)
	VecAddInto(m.Data, o.Data)
}

// AXPY accumulates a*o into m via the shared axpy kernel (fused
// multiply-add on FMA-enabled builds, pool-parallel for large matrices).
func (m *Matrix) AXPY(a float64, o *Matrix) {
	m.mustSameShape(o)
	AxpyInto(m.Data, a, o.Data)
}

// Scale multiplies every element by a.
func (m *Matrix) Scale(a float64) {
	for i := range m.Data {
		m.Data[i] *= a
	}
}

// AddRowVec adds vector v (len Cols) to every row.
func (m *Matrix) AddRowVec(v []float64) {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("tensor: row vec %d for %d cols", len(v), m.Cols))
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for j, x := range v {
			row[j] += x
		}
	}
}

// SumRows returns the column-wise sums of m as a length-Cols slice.
func (m *Matrix) SumRows() []float64 {
	out := make([]float64, m.Cols)
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for j, x := range row {
			out[j] += x
		}
	}
	return out
}

// Randomize fills m with uniform values in [-scale, scale] from rng.
func (m *Matrix) Randomize(rng *rand.Rand, scale float64) {
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * scale
	}
}

// MatMul returns a @ b.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul %dx%d @ %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	gemm(gemmNN, out, a, b, false, nil, nil)
	return out
}

// MatMulATB returns aᵀ @ b (used for weight gradients).
func MatMulATB(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: matmulATB %dx%d, %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Cols, b.Cols)
	gemm(gemmTN, out, a, b, false, nil, nil)
	return out
}

// MatMulABT returns a @ bᵀ (used for input gradients).
func MatMulABT(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmulABT %dx%d, %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Rows)
	gemm(gemmNT, out, a, b, false, nil, nil)
	return out
}

// MaxAbsDiff returns the largest absolute element-wise difference.
func MaxAbsDiff(a, b *Matrix) float64 {
	a.mustSameShape(b)
	var m float64
	for i := range a.Data {
		d := a.Data[i] - b.Data[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}
