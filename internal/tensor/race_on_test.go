//go:build race

package tensor

// raceEnabled reports whether the race detector instruments this build; the
// allocation-budget gates skip under it (instrumentation skews counts).
const raceEnabled = true
