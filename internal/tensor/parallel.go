package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file implements the persistent shared worker pool the blocked GEMM
// core fans out over. The previous runtime spawned a goroutine fan-out per
// large matmul call, which cost a spawn+join per call and leaked allocations
// past the pooled steady state; here a fixed set of helper goroutines lives
// for the process and every dispatch structure is recycled, so a warm
// parallel kernel performs zero heap allocations.
//
// Dispatch protocol (lock-free, join-on-receive):
//
//   - The caller initializes a *parRun (task counter, outstanding=1 for
//     itself), offers its pointer to helpers via a buffered channel with
//     non-blocking sends, then works the task counter itself.
//   - A helper that receives the pointer "joins" by CAS-incrementing
//     outstanding from a non-zero value; a zero value means the run already
//     completed (stale pointer) and the helper drops it. Joined helpers
//     claim disjoint task indices from an atomic counter.
//   - Whoever decrements outstanding to zero last signals the buffered done
//     channel; the caller waits on it only if helpers were still attached
//     when the caller finished — and while waiting it helps drain other
//     runs from the channel, so a busy pool can never deadlock callers.
//
// Correctness does not depend on who executes which task: tasks are
// disjoint output tiles whose accumulation order is fixed (see ref.go), so
// results are bit-identical for any worker count, including zero helpers.

// parRun is one parallel kernel dispatch, recycled through runPool.
type parRun struct {
	job         gemmJob
	ntasks      int32
	next        atomic.Int32
	outstanding atomic.Int32
	done        chan struct{}
}

var (
	// workCh fans run pointers out to helper goroutines. Buffered so
	// non-blocking sends succeed even while every helper is busy; stale
	// entries are rejected at join time.
	workCh = make(chan *parRun, 128)

	runPool = sync.Pool{New: func() any {
		return &parRun{done: make(chan struct{}, 1)}
	}}

	poolMu      sync.Mutex
	poolStop    chan struct{}
	poolTarget  atomic.Int32
	poolStarted atomic.Bool
)

// Workers reports the kernel worker count parallel GEMM dispatch targets
// (the caller plus Workers()-1 persistent helper goroutines). Before any
// SetWorkers call it defaults to GOMAXPROCS at first kernel use.
func Workers() int {
	ensurePool()
	return int(poolTarget.Load())
}

// SetWorkers resizes the shared kernel worker pool to n (n < 1 resets to
// GOMAXPROCS) and returns the previous setting. Kernel results are
// bit-identical for every worker count, so this only trades wall-clock for
// CPU; it exists for benchmarks, tests, and embedders that cap kernel
// parallelism below GOMAXPROCS.
func SetWorkers(n int) int {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	poolMu.Lock()
	defer poolMu.Unlock()
	prev := int(poolTarget.Load())
	if poolStop != nil {
		close(poolStop)
	}
	poolStop = make(chan struct{})
	for i := 0; i < n-1; i++ {
		go helperLoop(poolStop)
	}
	poolTarget.Store(int32(n))
	poolStarted.Store(true)
	return prev
}

// ensurePool lazily sizes the pool to GOMAXPROCS on first use.
func ensurePool() {
	if poolStarted.Load() {
		return
	}
	poolMu.Lock()
	started := poolStarted.Load()
	poolMu.Unlock()
	if !started {
		SetWorkers(runtime.GOMAXPROCS(0))
	}
}

// helperLoop is one persistent pool worker: it drains dispatches until its
// generation is stopped by SetWorkers.
func helperLoop(stop chan struct{}) {
	for {
		select {
		case r := <-workCh:
			r.helperRun()
		case <-stop:
			return
		}
	}
}

// helperRun joins a received run if it is still live and works its tasks.
func (r *parRun) helperRun() {
	for {
		o := r.outstanding.Load()
		if o <= 0 {
			return // stale pointer: the run completed (or was recycled)
		}
		if r.outstanding.CompareAndSwap(o, o+1) {
			break
		}
	}
	r.work()
	if r.outstanding.Add(-1) == 0 {
		r.done <- struct{}{}
	}
}

// work claims task indices until the counter is exhausted.
func (r *parRun) work() {
	for {
		t := r.next.Add(1) - 1
		if t >= r.ntasks {
			return
		}
		r.job.runTile(int(t))
	}
}

// parallelTiles runs the job's ntiles disjoint tile tasks across the shared
// pool, with the caller participating. Zero heap allocations once runPool
// and the pack-buffer pool are warm.
func parallelTiles(job *gemmJob, ntiles int) {
	ensurePool()
	helpers := int(poolTarget.Load()) - 1
	if helpers > ntiles-1 {
		helpers = ntiles - 1
	}
	if helpers <= 0 {
		for t := 0; t < ntiles; t++ {
			job.runTile(t)
		}
		return
	}
	r := runPool.Get().(*parRun)
	r.job = *job
	r.ntasks = int32(ntiles)
	r.next.Store(0)
	r.outstanding.Store(1)
offer:
	for h := 0; h < helpers; h++ {
		select {
		case workCh <- r:
		default:
			break offer // channel full: helpers are saturated already
		}
	}
	r.work()
	if r.outstanding.Add(-1) > 0 {
		// Helpers are still attached; help drain other dispatches (possibly
		// our own still-queued pointer) until the last one signals done.
	wait:
		for {
			select {
			case o := <-workCh:
				o.helperRun()
			case <-r.done:
				break wait
			}
		}
	}
	r.job = gemmJob{} // drop matrix references before pooling
	runPool.Put(r)
}
