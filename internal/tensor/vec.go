package tensor

import "fmt"

// This file holds the flat-vector reduction kernels the collective layer
// accumulates gradients with. They ride the same persistent worker pool as
// the blocked GEMM core (parallel.go): a vector splits into fixed-size
// disjoint spans that become pool tasks, and because every element is
// touched by exactly one task with exactly one fused operation, results are
// bit-identical for any worker count — the same fixed-order argument the
// GEMM tiles make.

// vecKind selects which element-wise vector kernel a dispatch runs; vecNone
// marks a gemmJob as a GEMM dispatch.
type vecKind uint8

const (
	vecNone vecKind = iota
	vecAdd          // dst[i] += src[i]
	vecAxpy         // dst[i] = fmadd(alpha, src[i], dst[i])
)

// vecParMin is the element count below which vector kernels run on the
// calling goroutine: under it the pool dispatch overhead outweighs the
// memory-bound work.
const vecParMin = 1 << 14

// vecSpanLen is the task granularity of a parallel vector dispatch — big
// enough to amortize a task claim, small enough to load-balance.
const vecSpanLen = 1 << 12

// runVecSpan executes span t of a vector job: elements
// [t*vspan, min((t+1)*vspan, len)).
func (g *gemmJob) runVecSpan(t int) {
	lo := t * g.vspan
	hi := lo + g.vspan
	if hi > len(g.vd) {
		hi = len(g.vd)
	}
	d, s := g.vd[lo:hi], g.vs[lo:hi:hi]
	switch g.vecOp {
	case vecAdd:
		for i, v := range s {
			d[i] += v
		}
	case vecAxpy:
		a := g.alpha
		for i, v := range s {
			d[i] = fmadd(a, v, d[i])
		}
	}
}

// vecDispatch validates lengths and runs the kernel, inline for short
// vectors and across the shared pool for long ones.
func vecDispatch(op vecKind, dst, src []float64, alpha float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: vector kernel dst %d, src %d", len(dst), len(src)))
	}
	if len(dst) == 0 {
		return
	}
	g := gemmJob{vecOp: op, vd: dst, vs: src, alpha: alpha, vspan: len(dst)}
	if len(dst) < vecParMin {
		g.runVecSpan(0)
		return
	}
	g.vspan = vecSpanLen
	parallelTiles(&g, (len(dst)+vecSpanLen-1)/vecSpanLen)
}

// VecAddInto accumulates src into dst element-wise (dst[i] += src[i]) — the
// shared reduction kernel of every collective (ring, hierarchical, and the
// TCP group sum), so in-process and cross-process all-reduce go through one
// audited accumulation path. dst and src must have equal length and must not
// overlap. Large vectors fan out over the kernel worker pool; results are
// bit-identical for any worker count.
func VecAddInto(dst, src []float64) { vecDispatch(vecAdd, dst, src, 0) }

// AxpyInto accumulates alpha*src into dst (dst[i] = fmadd(alpha, src[i],
// dst[i])) through the build-tagged fused-multiply-add helper — one rounding
// per element on FMA-enabled builds. Same length, aliasing and determinism
// contract as VecAddInto.
func AxpyInto(dst []float64, alpha float64, src []float64) { vecDispatch(vecAxpy, dst, src, alpha) }
