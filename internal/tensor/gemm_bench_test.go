package tensor

import (
	"fmt"
	"math/rand"
	"testing"
)

// The BenchmarkGEMM family backs BENCH_kernels.json and the CI bench smoke:
// the blocked core on all three kinds, worker-count scaling, the retained
// legacy scalar loop (the pre-blocked `mulBand` shape: ikj with a zero-skip
// branch), and the fused Dense-forward epilogues.

const benchDim = 512

func benchMats(n int) (a, b, out *Matrix) {
	rng := rand.New(rand.NewSource(1))
	return randMat(rng, n, n), randMat(rng, n, n), New(n, n)
}

// BenchmarkGEMM times the blocked pool-parallel core at 512^3 for every GEMM
// kind (NN forward, TN weight-gradient, NT input-gradient).
func BenchmarkGEMM(b *testing.B) {
	x, y, out := benchMats(benchDim)
	for _, tc := range []struct {
		name string
		run  func()
	}{
		{"NN", func() { MatMulInto(out, x, y) }},
		{"TN", func() { MatMulATBAddInto(out, x, y) }},
		{"NT", func() { MatMulABTInto(out, x, y) }},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tc.run()
			}
		})
	}
}

// BenchmarkGEMMWorkers sweeps the shared-pool worker count at 512^3 NN — the
// scaling record for BENCH_kernels.json (near-linear only on multi-core
// hosts; a 1-core container serializes the helpers).
func BenchmarkGEMMWorkers(b *testing.B) {
	x, y, out := benchMats(benchDim)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
			prev := SetWorkers(w)
			defer SetWorkers(prev)
			for i := 0; i < b.N; i++ {
				MatMulInto(out, x, y)
			}
		})
	}
}

// BenchmarkGEMMScalarLegacy times the retained legacy scalar loop at 512^3 on
// dense input — the pre-blocked `mulBand` baseline the >=2x acceptance bar in
// BENCH_kernels.json is measured against. On dense data its zero-skip branch
// never fires, so this is exactly the old dense hot path.
func BenchmarkGEMMScalarLegacy(b *testing.B) {
	x, y, out := benchMats(benchDim)
	for i := 0; i < b.N; i++ {
		MatMulZeroSkipInto(out, x, y)
	}
}

// BenchmarkGEMMZeroSkip records the zero-skip delta both ways: on dense input
// the branch is pure overhead versus the blocked kernel; on 90%-zero input
// the skip pays — which is why it lives behind an explicit sparse-aware entry
// point instead of pessimizing every dense matmul.
func BenchmarkGEMMZeroSkip(b *testing.B) {
	x, y, out := benchMats(benchDim)
	b.Run("dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MatMulZeroSkipInto(out, x, y)
		}
	})
	rng := rand.New(rand.NewSource(2))
	for i := range x.Data {
		if rng.Intn(10) != 0 {
			x.Data[i] = 0
		}
	}
	b.Run("sparse90", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MatMulZeroSkipInto(out, x, y)
		}
	})
}

// BenchmarkGEMMFusedForward compares the Dense(+ReLU) forward as three
// separate passes (matmul, bias add, rectify+mask) against the fused
// single-pass kernels at 256x256 @ 256x256.
func BenchmarkGEMMFusedForward(b *testing.B) {
	x, y, out := benchMats(256)
	rng := rand.New(rand.NewSource(3))
	bias := make([]float64, 256)
	for i := range bias {
		bias[i] = rng.NormFloat64()
	}
	mask := make([]uint64, (256*256+63)/64)
	relu := func(m *Matrix) {
		for i, v := range m.Data {
			if v > 0 {
				mask[i>>6] |= 1 << (uint(i) & 63)
			} else {
				m.Data[i] = 0
			}
		}
	}
	b.Run("unfused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MatMulInto(out, x, y)
			AddRowVecInto(out, out, bias)
			relu(out)
		}
	})
	b.Run("fusedBias", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MatMulAddRowVecInto(out, x, y, bias)
		}
	})
	b.Run("fusedBiasReLU", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MatMulBiasReLUInto(out, x, y, bias, mask)
		}
	})
}
