// Package baselines implements the comparison systems of the paper's
// evaluation: the two data-parallel baselines of Fig. 12 (gradient
// accumulation without and with computation/communication overlap), the
// PipeDream-style planner re-evaluated under synchronous training
// (Table VII, Fig. 13), and the GPipe/torchgpipe even-block partitioner.
package baselines

import (
	"dapple/internal/comm"
	"dapple/internal/core"
	"dapple/internal/hardware"
	"dapple/internal/model"
)

// DPResult reports a data-parallel iteration-time estimate.
type DPResult struct {
	IterTime float64
	Speedup  float64 // vs single-device sequential execution
	Exposed  float64 // communication seconds not hidden by backward compute
	Feasible bool    // fits device memory
}

// dpCompute returns per-device compute time for one global batch under
// gradient accumulation: each of the g replicas runs gbs/g samples in
// micro-batches of the profile size.
func dpCompute(m *model.Model, gbs, g int) float64 {
	perDev := float64(gbs) / float64(g)
	steps := perDev / float64(m.ProfileBatch)
	return steps * (m.IterFwdTime(m.ProfileBatch) + m.IterBwdTime(m.ProfileBatch))
}

// dpFits checks the data-parallel memory footprint: full model state plus one
// micro-batch of activations per device.
func dpFits(m *model.Model, c hardware.Cluster) bool {
	if c.DeviceMemory <= 0 {
		return true
	}
	static := m.OptimizerStateBytes(m.TotalParamBytes()) + m.WorkspaceBytes
	act := m.RangeStoredBytes(0, m.NumLayers(), m.ProfileBatch)
	return static+act <= c.DeviceMemory
}

// DPNoOverlap estimates synchronous data parallelism with gradient
// accumulation but no overlap: compute, then a full-gradient all-reduce.
func DPNoOverlap(m *model.Model, c hardware.Cluster, gbs int) DPResult {
	g := c.NumDevices()
	ar := comm.AllReduceTime(c, c.Devices(), m.GradientBytes())
	t := dpCompute(m, gbs, g) + ar
	return DPResult{
		IterTime: t,
		Speedup:  m.SingleDeviceIterTime(gbs) / t,
		Exposed:  ar,
		Feasible: dpFits(m, c),
	}
}

// DPOverlap estimates data parallelism with intra-iteration overlap of
// backward computation and gradient communication: layer gradients are
// all-reduced as their backward completes, so only the exposed remainder adds
// to iteration time. Gradients become ready back-to-front during the final
// accumulation step's backward pass.
func DPOverlap(m *model.Model, c hardware.Cluster, gbs int) DPResult {
	g := c.NumDevices()
	compute := dpCompute(m, gbs, g)

	bwd := m.IterBwdTime(m.ProfileBatch)
	chunks := make([]comm.GradChunk, 0, m.NumLayers())
	elapsed := 0.0
	for i := m.NumLayers() - 1; i >= 0; i-- {
		elapsed += m.Layers[i].BwdTime
		chunks = append(chunks, comm.GradChunk{
			Bytes:   m.Layers[i].ParamBytes,
			ReadyAt: elapsed,
		})
	}
	exposed := comm.OverlapExposedTime(chunks, bwd, comm.ARSecPerByte(c, c.Devices()))
	t := compute + exposed
	return DPResult{
		IterTime: t,
		Speedup:  m.SingleDeviceIterTime(gbs) / t,
		Exposed:  exposed,
		Feasible: dpFits(m, c),
	}
}

// StraightPipeline builds the no-replication pipeline plan over all devices
// using balanced layer partitioning — the "Straight Pipeline" series of
// Fig. 14(a).
func StraightPipeline(m *model.Model, c hardware.Cluster, gbs int) *core.Plan {
	g := c.NumDevices()
	n := m.NumLayers()
	if n < g {
		return nil
	}
	cuts := BalancedCuts(m, g)
	stages := make([]core.Stage, g)
	lo := 0
	for i := range stages {
		stages[i] = core.Stage{Lo: lo, Hi: cuts[i], Devices: []hardware.DeviceID{hardware.DeviceID(i)}}
		lo = cuts[i]
	}
	p := &core.Plan{Model: m, Cluster: c, Stages: stages, GBS: gbs}
	p.MicroBatch = core.ChooseMicroBatch(m, gbs)
	return p
}
