package baselines

import (
	"math"

	"dapple/internal/core"
	"dapple/internal/hardware"
	"dapple/internal/model"
)

// PipeDream re-implements PipeDream's planner from its published description
// and evaluates the result under synchronous training, as the paper does for
// Table VII / Fig. 13.
//
// PipeDream partitions hierarchically: on multi-machine clusters it first
// splits the model into per-machine chunks balanced by compute, then
// recursively partitions each chunk across that machine's GPUs. Within a
// level it minimizes the maximum per-stage time, where a replicated stage's
// time is its compute divided by replicas plus the incoming activation
// communication plus the per-minibatch share of its weight synchronization.
// The objective targets asynchronous steady-state throughput: it does not
// model the end-of-iteration synchronization wave, the stage-count dependence
// of synchronous bubbles, or placements beyond the hierarchical recursion —
// exactly the limitations §IV-D calls out.
func PipeDream(m *model.Model, c hardware.Cluster, gbs int) *core.Plan {
	mb := core.ChooseMicroBatch(m, gbs)
	var stages []core.Stage
	if c.Servers > 1 && c.GPUsPerServer > 1 {
		if m.NumLayers() < c.Servers {
			// The hierarchical recursion needs at least one layer per
			// machine; shallower models have no PipeDream-shaped plan.
			return nil
		}
		// Level 1: balanced contiguous chunk per machine.
		cuts := BalancedCuts(m, c.Servers)
		lo := 0
		for srv := 0; srv < c.Servers; srv++ {
			sub := pipeDreamFlat(m, c, gbs, lo, cuts[srv], c.GPUsPerServer, srv*c.GPUsPerServer)
			stages = append(stages, sub...)
			lo = cuts[srv]
		}
	} else {
		stages = pipeDreamFlat(m, c, gbs, 0, m.NumLayers(), c.NumDevices(), 0)
	}
	return &core.Plan{Model: m, Cluster: c, Stages: stages, GBS: gbs, MicroBatch: mb}
}

// pipeDreamFlat partitions layers [lo, hi) across g devices starting at
// device id base, minimizing the maximum per-stage time.
func pipeDreamFlat(m *model.Model, c hardware.Cluster, gbs, lo, hi, g, base int) []core.Stage {
	n := hi - lo
	mb := core.ChooseMicroBatch(m, gbs)
	scale := float64(mb) / float64(m.ProfileBatch)
	microPerIter := gbs / mb
	if microPerIter < 1 {
		microPerIter = 1
	}

	// prefix[i] = compute time of layers [lo, lo+i) at micro-batch size mb.
	prefix := make([]float64, n+1)
	params := make([]float64, n+1)
	for i := 0; i < n; i++ {
		l := m.Layers[lo+i]
		prefix[i+1] = prefix[i] + (l.FwdTime+l.BwdTime)*scale
		params[i+1] = params[i] + float64(l.ParamBytes)
	}
	commIn := func(i int) float64 {
		if lo+i == 0 {
			return 0
		}
		bytes := float64(m.Layers[lo+i-1].OutputBytes) * scale
		return bytes / c.InterBW
	}
	// Weight-sync share per micro-batch for a replicated stage: ring
	// all-reduce volume amortized across one weight version's micro-batches.
	syncBW := c.InterBW
	if c.GPUsPerServer >= g && c.IntraBW > 0 {
		syncBW = c.IntraBW // level-2 replication stays on one machine
	}
	syncCost := func(i, j, r int) float64 {
		if r <= 1 {
			return 0
		}
		vol := 2 * float64(r-1) / float64(r) * (params[j] - params[i])
		return vol / syncBW / float64(microPerIter)
	}

	// dp[j][k]: minimal max-stage-time covering [0,j) local layers with k
	// devices.
	const inf = math.MaxFloat64
	type cell struct {
		t     float64
		prev  int
		prevK int
		reps  int
	}
	dp := make([][]cell, n+1)
	for j := range dp {
		dp[j] = make([]cell, g+1)
		for k := range dp[j] {
			dp[j][k] = cell{t: inf}
		}
	}
	dp[0][0] = cell{t: 0}
	for j := 1; j <= n; j++ {
		for k := 1; k <= g; k++ {
			for i := 0; i < j; i++ {
				for r := 1; r <= k; r++ {
					prev := dp[i][k-r]
					if prev.t == inf {
						continue
					}
					stage := (prefix[j]-prefix[i])/float64(r) + commIn(i) + syncCost(i, j, r)
					t := math.Max(prev.t, stage)
					cur := dp[j][k]
					// Tie-break toward less replication (replicas cost
					// weight-stashing memory in PipeDream's runtime).
					if t < cur.t || (t == cur.t && r < cur.reps) {
						dp[j][k] = cell{t: t, prev: i, prevK: k - r, reps: r}
					}
				}
			}
		}
	}

	// Reconstruct stage list; assign contiguous devices front-to-back.
	var bounds, reps []int
	j, k := n, g
	for j > 0 {
		cl := dp[j][k]
		bounds = append([]int{j}, bounds...)
		reps = append([]int{cl.reps}, reps...)
		j, k = cl.prev, cl.prevK
	}
	stages := make([]core.Stage, len(bounds))
	at, dev := 0, base
	for i := range bounds {
		devs := make([]hardware.DeviceID, reps[i])
		for d := range devs {
			devs[d] = hardware.DeviceID(dev)
			dev++
		}
		stages[i] = core.Stage{Lo: lo + at, Hi: lo + bounds[i], Devices: devs}
		at = bounds[i]
	}
	return stages
}
