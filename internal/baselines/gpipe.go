package baselines

import (
	"math"

	"dapple/internal/core"
	"dapple/internal/hardware"
	"dapple/internal/model"
)

// BalancedCuts partitions the model's layers into g contiguous blocks
// minimizing the maximum per-block forward+backward time — the "Block
// Partitions of Sequences" strategy torchgpipe uses. It returns g exclusive
// end indices.
func BalancedCuts(m *model.Model, g int) []int {
	n := m.NumLayers()
	w := make([]float64, n+1)
	for i := 0; i < n; i++ {
		w[i+1] = w[i] + m.Layers[i].FwdTime + m.Layers[i].BwdTime
	}
	const inf = math.MaxFloat64
	dp := make([][]float64, g+1)
	cut := make([][]int, g+1)
	for k := range dp {
		dp[k] = make([]float64, n+1)
		cut[k] = make([]int, n+1)
		for i := range dp[k] {
			dp[k][i] = inf
		}
	}
	dp[0][0] = 0
	for k := 1; k <= g; k++ {
		for i := k; i <= n; i++ {
			for p := k - 1; p < i; p++ {
				if dp[k-1][p] == inf {
					continue
				}
				v := math.Max(dp[k-1][p], w[i]-w[p])
				if v < dp[k][i] {
					dp[k][i] = v
					cut[k][i] = p
				}
			}
		}
	}
	cuts := make([]int, g)
	i := n
	for k := g; k >= 1; k-- {
		cuts[k-1] = i
		i = cut[k][i]
	}
	return cuts
}

// GPipePlan builds the GPipe-style plan: the model split evenly (balanced
// block partition) over nStages stages, one device each, in device order —
// what torchgpipe produces for a straight pipeline.
func GPipePlan(m *model.Model, c hardware.Cluster, gbs, nStages int) *core.Plan {
	cuts := BalancedCuts(m, nStages)
	stages := make([]core.Stage, nStages)
	lo := 0
	for i := range stages {
		stages[i] = core.Stage{Lo: lo, Hi: cuts[i], Devices: []hardware.DeviceID{hardware.DeviceID(i)}}
		lo = cuts[i]
	}
	p := &core.Plan{Model: m, Cluster: c, Stages: stages, GBS: gbs}
	p.MicroBatch = core.ChooseMicroBatch(m, gbs)
	return p
}
