package baselines

import (
	"testing"
	"testing/quick"

	"dapple/internal/core"
	"dapple/internal/hardware"
	"dapple/internal/model"
)

func TestDPNoOverlapBasics(t *testing.T) {
	m := model.ResNet50()
	c := hardware.ConfigA(2)
	r := DPNoOverlap(m, c, 2048)
	if !r.Feasible {
		t.Fatal("ResNet-50 DP must be feasible")
	}
	if r.Speedup <= 1 || r.Speedup > 16 {
		t.Fatalf("speedup %g out of range", r.Speedup)
	}
	if r.Exposed <= 0 {
		t.Fatal("no-overlap exposes the full all-reduce")
	}
}

func TestOverlapBeatsNoOverlap(t *testing.T) {
	for _, m := range []*model.Model{model.ResNet50(), model.VGG19(), model.BERT48()} {
		for _, c := range []hardware.Cluster{hardware.ConfigA(2), hardware.ConfigC(16)} {
			n := DPNoOverlap(m, c, m.DefaultGBS)
			o := DPOverlap(m, c, m.DefaultGBS)
			if o.IterTime > n.IterTime+1e-12 {
				t.Fatalf("%s on %s: overlap slower (%g vs %g)", m.Name, c.Name, o.IterTime, n.IterTime)
			}
			if o.Exposed > n.Exposed {
				t.Fatalf("%s on %s: overlap exposes more comm", m.Name, c.Name)
			}
		}
	}
}

func TestDPSpeedupGrowsWithGBS(t *testing.T) {
	// Gradient accumulation amortizes the sync: bigger global batches scale
	// better (the Fig. 12 x-axis trend).
	m := model.GNMT16()
	c := hardware.ConfigC(16)
	s1 := DPNoOverlap(m, c, 512).Speedup
	s2 := DPNoOverlap(m, c, 4096).Speedup
	if s2 <= s1 {
		t.Fatalf("speedup should grow with GBS: %g vs %g", s1, s2)
	}
}

func TestAmoebaNetDPInfeasible(t *testing.T) {
	r := DPNoOverlap(model.AmoebaNet36(), hardware.ConfigA(2), 128)
	if r.Feasible {
		t.Fatal("AmoebaNet-36 does not fit one device")
	}
}

func TestBalancedCutsCoverAndBalance(t *testing.T) {
	m := model.BERT48()
	for _, g := range []int{2, 3, 7, 16} {
		cuts := BalancedCuts(m, g)
		if len(cuts) != g || cuts[g-1] != m.NumLayers() {
			t.Fatalf("g=%d: cuts %v", g, cuts)
		}
		lo := 0
		var maxT, minT float64
		minT = 1e18
		for _, hi := range cuts {
			if hi <= lo {
				t.Fatalf("empty block in %v", cuts)
			}
			w := m.RangeFwdTime(lo, hi, 2) + m.RangeBwdTime(lo, hi, 2)
			if w > maxT {
				maxT = w
			}
			if w < minT {
				minT = w
			}
			lo = hi
		}
		// Uniform model: blocks within one layer's weight of each other.
		layer := m.Layers[5].FwdTime + m.Layers[5].BwdTime
		if maxT-minT > 2.5*layer {
			t.Fatalf("g=%d unbalanced: %g vs %g", g, minT, maxT)
		}
	}
}

func TestGPipePlanValid(t *testing.T) {
	m := model.BERT48()
	c := hardware.ConfigB(4)
	p := GPipePlan(m, c, 64, 4)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NumStages() != 4 || p.Kind() != core.KindStraight {
		t.Fatalf("plan %v", p)
	}
}

func TestStraightPipeline(t *testing.T) {
	m := model.GNMT16()
	c := hardware.ConfigA(2)
	p := StraightPipeline(m, c, 1024)
	if p == nil || p.NumStages() != 16 {
		t.Fatalf("straight plan %v", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// More devices than layers: impossible.
	if StraightPipeline(model.Synthetic(3, 1e-3, 0, 0, 0), hardware.ConfigB(8), 8) != nil {
		t.Fatal("straight pipeline with more devices than layers")
	}
}

func TestPipeDreamFlatBalances(t *testing.T) {
	m := model.BERT48()
	c := hardware.ConfigB(16)
	p := PipeDream(m, c, 64)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.DevicesUsed()) != 16 {
		t.Fatalf("uses %d devices", len(p.DevicesUsed()))
	}
	// Uniform model on a flat cluster: PipeDream prefers deep pipelines
	// over replication (weight sync is charged).
	if p.NumStages() < 4 {
		t.Fatalf("expected deep pipeline, got %v", p)
	}
}

func TestPipeDreamHierarchical(t *testing.T) {
	m := model.VGG19()
	c := hardware.ConfigA(2)
	p := PipeDream(m, c, 1024)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Level-1 balanced split puts roughly half the compute per machine:
	// the machine boundary must sit inside the conv stack, unlike DAPPLE's
	// conv/fc split.
	firstServerLayers := 0
	for _, s := range p.Stages {
		if p.Cluster.Server(s.Devices[0]) == 0 {
			firstServerLayers = s.Hi
		}
	}
	if firstServerLayers >= 14 {
		t.Fatalf("hierarchical split at %d should be mid-conv (<14)", firstServerLayers)
	}
}

// Property: PipeDream plans are always structurally valid and conserve
// samples for random batch sizes.
func TestPipeDreamValidityProperty(t *testing.T) {
	ms := []*model.Model{model.BERT48(), model.GNMT16(), model.XLNet36()}
	f := func(mi, g8, gbs8 uint8) bool {
		m := ms[int(mi)%len(ms)]
		g := int(g8%8) + 2
		gbs := (int(gbs8%8) + 1) * 16
		p := PipeDream(m, hardware.ConfigB(g), gbs)
		return p.Validate() == nil && p.M()*p.MicroBatch == gbs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
