package baselines

import (
	"context"
	"fmt"

	"dapple/internal/core"
	"dapple/internal/hardware"
	"dapple/internal/model"
	"dapple/internal/schedule"
	"dapple/internal/strategy"
)

// The baseline planners of the paper's evaluation, exposed through the same
// Strategy interface as the DAPPLE planner so the engine can run any of them
// interchangeably. Each builds its single characteristic plan and scores it
// on the discrete-event simulator via strategy.Evaluate, producing the same
// Result shape the planner emits.

// DPPlan builds the pure data-parallel plan: one stage holding the whole
// model, replicated on every device (the Fig. 12 baseline as a Plan).
func DPPlan(m *model.Model, c hardware.Cluster, gbs int) *core.Plan {
	p := &core.Plan{
		Model: m, Cluster: c, GBS: gbs,
		Stages: []core.Stage{{Lo: 0, Hi: m.NumLayers(), Devices: c.Devices()}},
	}
	p.MicroBatch = core.ChooseMicroBatch(m, gbs)
	return p
}

// planFunc builds one baseline plan, or nil when the shape is infeasible
// (e.g. fewer layers than pipeline stages).
type planFunc func(m *model.Model, c hardware.Cluster, gbs int) *core.Plan

// baselineStrategy adapts a fixed-plan constructor to the Strategy interface.
type baselineStrategy struct {
	name     string
	describe string
	build    planFunc
	// policy picks the schedule the plan is scored (and meant to run) under.
	policy func(p *core.Plan) schedule.Policy
}

func (b baselineStrategy) Name() string     { return b.name }
func (b baselineStrategy) Describe() string { return b.describe }

func (b baselineStrategy) Plan(ctx context.Context, m *model.Model, c hardware.Cluster, opts strategy.Options) (*strategy.Result, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	opts = opts.Normalize(m.DefaultGBS)
	p := b.build(m, c, opts.GBS)
	if p == nil {
		return nil, fmt.Errorf("strategy %s: no feasible plan for %s on %s (gbs %d)",
			b.name, m.Name, c.Name, opts.GBS)
	}
	return strategy.Evaluate(ctx, b.name, p, b.policy(p), opts)
}

func init() {
	strategy.MustRegister(baselineStrategy{
		name:     "dp",
		describe: "pure data parallelism: the whole model replicated on every device, synchronous all-reduce (Fig. 12 baseline)",
		build:    DPPlan,
		policy:   func(*core.Plan) schedule.Policy { return schedule.DapplePA },
	})
	strategy.MustRegister(baselineStrategy{
		name:     "gpipe",
		describe: "GPipe/torchgpipe: even block partition, one stage per device, flood-then-drain schedule",
		build: func(m *model.Model, c hardware.Cluster, gbs int) *core.Plan {
			g := c.NumDevices()
			if m.NumLayers() < g {
				return nil
			}
			return GPipePlan(m, c, gbs, g)
		},
		policy: func(*core.Plan) schedule.Policy { return schedule.GPipe },
	})
	strategy.MustRegister(baselineStrategy{
		name:     "pipedream",
		describe: "PipeDream planner (hierarchical balanced partition + replication) re-evaluated under synchronous training (Table VII)",
		build:    PipeDream,
		policy:   strategy.RecommendPolicy,
	})
	strategy.MustRegister(baselineStrategy{
		name:     "straight",
		describe: "straight pipeline: balanced layer partition, one unreplicated stage per device (Fig. 14(a))",
		build:    StraightPipeline,
		policy:   strategy.RecommendPolicy,
	})
}
