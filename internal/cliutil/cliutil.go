// Package cliutil holds the option-parsing helpers shared by the dapple
// command-line tools: cluster-config and schedule-policy parsing used to be
// re-implemented (with drifting defaults) in every command.
package cliutil

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"dapple/internal/hardware"
	"dapple/internal/schedule"
	"dapple/internal/strategy"
)

// PickConfig resolves a Table III hardware config name (A, B or C, case
// insensitive) and a server count into a cluster. servers == 0 picks the
// paper's default scale for that config: 2 hierarchical servers for A, 16
// flat servers for B and C.
func PickConfig(name string, servers int) (hardware.Cluster, error) {
	switch strings.ToUpper(name) {
	case "A":
		if servers == 0 {
			servers = 2
		}
		return hardware.ConfigA(servers), nil
	case "B":
		if servers == 0 {
			servers = 16
		}
		return hardware.ConfigB(servers), nil
	case "C":
		if servers == 0 {
			servers = 16
		}
		return hardware.ConfigC(servers), nil
	}
	return hardware.Cluster{}, fmt.Errorf("unknown config %q (want A, B or C)", name)
}

// ConfigHelp is the -config flag usage string.
const ConfigHelp = "hardware config: A, B or C (Table III)"

// ParsePolicy resolves a schedule-policy flag value (pa, pb or gpipe, case
// insensitive).
func ParsePolicy(name string) (schedule.Policy, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "pa":
		return schedule.DapplePA, nil
	case "pb":
		return schedule.DapplePB, nil
	case "gpipe":
		return schedule.GPipe, nil
	}
	return 0, fmt.Errorf("unknown policy %q (want pa, pb or gpipe)", name)
}

// PolicyHelp is the -policy flag usage string.
const PolicyHelp = "schedule policy: pa, pb or gpipe"

// PlanFlags holds the planner-search tuning flags every dapple command
// shares, so the flag names and defaults cannot drift between binaries.
type PlanFlags struct {
	// Workers is the -planner-workers value: goroutines fanned out over
	// first-stage split points (0 = GOMAXPROCS, 1 = sequential).
	Workers int
	// NoPrune is the -planner-no-prune value: disable branch-and-bound
	// pruning and run the exhaustive search.
	NoPrune bool
}

// RegisterPlanFlags registers the shared planner tuning flags on the default
// flag set and returns the struct the parsed values land in. Call before
// flag.Parse.
func RegisterPlanFlags() *PlanFlags {
	pf := &PlanFlags{}
	flag.IntVar(&pf.Workers, "planner-workers", 0,
		"parallel planner search workers (0 = GOMAXPROCS, 1 = sequential; plans are identical either way)")
	flag.BoolVar(&pf.NoPrune, "planner-no-prune", false,
		"disable branch-and-bound pruning (exhaustive, much slower search)")
	return pf
}

// Apply copies the parsed planner flags onto a strategy options value.
func (pf *PlanFlags) Apply(o strategy.Options) strategy.Options {
	o.Workers = pf.Workers
	o.NoPrune = pf.NoPrune
	return o
}

// RegisterSeedFlag registers the shared -seed flag on the default flag set
// and returns the destination of the parsed value. Call before flag.Parse.
// The seed drives synthetic-data generation and weight initialization in the
// commands and examples, so runs are reproducible end to end.
func RegisterSeedFlag() *int64 {
	return flag.Int64("seed", 42, "RNG seed for synthetic data and weight initialization (reproducible runs)")
}

// ProfileFlags holds the -cpuprofile/-memprofile values every dapple command
// shares, so performance work can capture pprof data from any binary without
// patching code.
type ProfileFlags struct {
	// CPUPath is the -cpuprofile value: the file receiving a CPU profile of
	// everything between Start and the returned stop function.
	CPUPath string
	// MemPath is the -memprofile value: the file receiving a heap profile
	// written (after a GC) by the stop function.
	MemPath string
}

// RegisterProfileFlags registers -cpuprofile and -memprofile on the default
// flag set and returns the struct the parsed values land in. Call before
// flag.Parse.
func RegisterProfileFlags() *ProfileFlags {
	pf := &ProfileFlags{}
	flag.StringVar(&pf.CPUPath, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&pf.MemPath, "memprofile", "", "write a heap profile to this file on exit")
	return pf
}

// Start begins CPU profiling when -cpuprofile was given. The returned stop
// function (never nil) ends the CPU profile and writes the heap profile when
// -memprofile was given; defer it around the measured work. Profiles are
// written only on clean exits — error paths that os.Exit skip them.
func (pf *ProfileFlags) Start() (func(), error) {
	var cpu *os.File
	if pf.CPUPath != "" {
		f, err := os.Create(pf.CPUPath)
		if err != nil {
			return func() {}, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return func() {}, err
		}
		cpu = f
	}
	return func() {
		if cpu != nil {
			pprof.StopCPUProfile()
			cpu.Close()
		}
		if pf.MemPath != "" {
			f, err := os.Create(pf.MemPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			runtime.GC() // materialize final live-heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
			f.Close()
		}
	}, nil
}

// RootContext returns the context commands should thread into planning and
// simulation: cancelled on interrupt (ctrl-C), deadline-bounded when timeout
// is positive. The signal capture is released as soon as the context fires,
// so a second ctrl-C terminates the process immediately even while
// non-cancellable work drains to its next checkpoint.
func RootContext(timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	cancel := stop
	if timeout > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, timeout)
		cancel = func() { tcancel(); stop() }
	}
	go func() {
		<-ctx.Done()
		stop()
	}()
	return ctx, cancel
}
