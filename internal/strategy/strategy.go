// Package strategy defines the pluggable planning interface the engine is
// built around: a Strategy turns (model, cluster, options) into a Result
// under a context, and a process-wide registry makes strategies addressable
// by name. The DAPPLE planner (internal/planner) and every baseline of the
// paper's evaluation (internal/baselines: pure data parallelism, GPipe,
// PipeDream, the straight pipeline) implement it, so all of them return the
// same Result shape and compare apples-to-apples.
package strategy

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"dapple/internal/core"
	"dapple/internal/hardware"
	"dapple/internal/model"
	"dapple/internal/schedule"
)

// Options tune a strategy's plan search. Strategies ignore knobs that do not
// apply to them (the baselines have no branch-and-bound to prune); GBS is
// honored by all.
type Options struct {
	// GBS is the global batch size; 0 uses the model default.
	GBS int

	// MaxStages caps computation stages in the general search (0 = 4;
	// straight pipelines with one stage per device are seeded separately).
	MaxStages int

	// SkipMemCheck accepts plans regardless of device memory.
	SkipMemCheck bool

	// PruneSlack widens branch-and-bound pruning: states whose candidate
	// latency exceeds best*PruneSlack are not extended. 0 means 1.6.
	PruneSlack float64

	// Finalists bounds how many analytic-best candidates are re-ranked on
	// the simulator. 0 means 24.
	Finalists int

	// Workers bounds the goroutines the planner fans out over first-stage
	// split points (0 = GOMAXPROCS, 1 = fully sequential). The chosen plan
	// is identical for every value: each branch searches isolated state and
	// branch results merge in deterministic task order.
	Workers int

	// NoPrune disables the planner's branch-and-bound lower bound, the
	// dominance memo and the slack cut, making the search exhaustive over
	// the placement-policy space. Slow; meant for soundness testing.
	NoPrune bool
}

// Canonical defaults substituted for zero-valued Options knobs.
const (
	DefaultMaxStages  = 4
	DefaultPruneSlack = 1.6
	DefaultFinalists  = 24
)

// DefaultWorkers is the worker count substituted for Options.Workers == 0:
// one search goroutine per schedulable CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Normalize returns o with zero values replaced by the canonical defaults
// (and GBS by defaultGBS), so an implicitly-defaulted and an explicitly-
// defaulted request compare equal — plan caches key on normalized Options.
func (o Options) Normalize(defaultGBS int) Options {
	if o.GBS <= 0 {
		o.GBS = defaultGBS
	}
	if o.MaxStages <= 0 {
		o.MaxStages = DefaultMaxStages
	}
	if !(o.PruneSlack > 0) { // also replaces NaN, which would poison map keys
		o.PruneSlack = DefaultPruneSlack
	}
	if o.Finalists <= 0 {
		o.Finalists = DefaultFinalists
	}
	if o.Workers <= 0 {
		o.Workers = DefaultWorkers()
	}
	return o
}

// Result is the common output shape of every strategy: the chosen plan plus
// its simulated latency, so DAPPLE and the baselines are directly comparable.
type Result struct {
	// Strategy is the registry name of the strategy that produced the result.
	Strategy string

	Plan    *core.Plan
	Latency float64 // simulated pipeline latency of the chosen plan, seconds
	Speedup float64 // vs single-device execution of the same global batch

	// Analytic is the Eq. (1)-(2) latency estimate of the chosen plan; the
	// DAPPLE search optimizes this, then re-ranks finalists on the
	// discrete-event simulator, which also accounts for the non-pivot bubbles
	// and link contention the analytic objective approximates away.
	Analytic float64

	// NeedsRecompute reports that the plan fits device memory only with
	// activation re-computation enabled.
	NeedsRecompute bool

	// Policy is the recommended warmup policy for the runtime: PB when the
	// plan's activation-communication ratio is notable (cross-stage traffic
	// comparable to compute, §V-C / Table IV), PA otherwise. GPipe-style
	// strategies recommend the GPipe flood schedule.
	Policy schedule.Policy

	// Explored counts complete candidate plans evaluated.
	Explored int
}

// String implements fmt.Stringer.
func (r *Result) String() string {
	return fmt.Sprintf("%v  latency=%.1fms speedup=%.2fx acr=%.3f",
		r.Plan, r.Latency*1e3, r.Speedup, r.Plan.ACR())
}

// Strategy plans one model on one cluster. Implementations must be safe for
// concurrent use and must return promptly with ctx.Err() once ctx is
// cancelled or past its deadline.
type Strategy interface {
	// Name is the registry key ("dapple", "dp", "gpipe", "pipedream", ...).
	Name() string
	// Describe is a one-line human-readable summary for listings.
	Describe() string
	// Plan searches for this strategy's plan of m on c.
	Plan(ctx context.Context, m *model.Model, c hardware.Cluster, opts Options) (*Result, error)
}

// PBACRThreshold is the activation-communication ratio above which the
// deeper warmup of policy B pays off (Table IV: GNMT/VGG/AmoebaNet at
// ACR >= ~0.1 benefit; BERT/XLNet below do not).
const PBACRThreshold = 0.1

// RecommendPolicy picks the runtime warmup policy for a plan by its ACR.
func RecommendPolicy(p *core.Plan) schedule.Policy {
	if p.ACR() >= PBACRThreshold {
		return schedule.DapplePB
	}
	return schedule.DapplePA
}

// Evaluate scores a fixed plan the way the registry expects strategies to:
// simulate one iteration under pol, fall back to activation re-computation
// when the plain schedule overflows device memory, and fill the common
// Result shape. Baseline strategies, which construct a single plan rather
// than search a space, share it.
func Evaluate(ctx context.Context, name string, p *core.Plan, pol schedule.Policy, opts Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("strategy %s: %w", name, err)
	}
	res, err := schedule.RunContext(ctx, p, schedule.Options{Policy: pol})
	if err != nil {
		return nil, err
	}
	recompute := false
	if res.OOM && !opts.SkipMemCheck {
		rc, err := schedule.RunContext(ctx, p, schedule.Options{Policy: pol, Recompute: true})
		if err != nil {
			return nil, err
		}
		if rc.OOM {
			return nil, fmt.Errorf("strategy %s: plan %v overflows device memory on stage %d even with re-computation",
				name, p, rc.OOMStage)
		}
		res, recompute = rc, true
	}
	return &Result{
		Strategy:       name,
		Plan:           p,
		Latency:        res.IterTime,
		Speedup:        p.Model.SingleDeviceIterTime(p.GBS) / res.IterTime,
		Analytic:       p.Latency(),
		NeedsRecompute: recompute,
		Policy:         pol,
		Explored:       1,
	}, nil
}

var (
	regMu    sync.RWMutex
	registry = map[string]Strategy{}
)

// Register adds a strategy to the process-wide registry. It fails on empty
// or duplicate names so two packages cannot silently shadow one another.
func Register(s Strategy) error {
	if s == nil || s.Name() == "" {
		return fmt.Errorf("strategy: register with empty name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[s.Name()]; dup {
		return fmt.Errorf("strategy: %q already registered", s.Name())
	}
	registry[s.Name()] = s
	return nil
}

// MustRegister is Register for package init paths.
func MustRegister(s Strategy) {
	if err := Register(s); err != nil {
		panic(err)
	}
}

// Lookup returns the named strategy.
func Lookup(name string) (Strategy, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// Names returns all registered strategy names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// All returns every registered strategy, sorted by name.
func All() []Strategy {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Strategy, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}
