package strategy

import (
	"context"
	"math"
	"strings"
	"testing"

	"dapple/internal/core"
	"dapple/internal/hardware"
	"dapple/internal/model"
	"dapple/internal/schedule"
)

// twoStagePlan builds a 2-stage straight pipeline over a 2-device flat
// cluster with the given per-device memory budget.
func twoStagePlan(mem int64) *core.Plan {
	m := model.Synthetic(8, 1e-3, 1<<20, 256<<20, 1<<20) // 256 MiB stored per layer
	c := hardware.ConfigB(2)
	c.DeviceMemory = mem
	p := &core.Plan{
		Model: m, Cluster: c, GBS: 8,
		Stages: []core.Stage{
			{Lo: 0, Hi: 4, Devices: []hardware.DeviceID{0}},
			{Lo: 4, Hi: 8, Devices: []hardware.DeviceID{1}},
		},
	}
	p.MicroBatch = core.ChooseMicroBatch(m, p.GBS)
	return p
}

// TestEvaluateRecomputeFallback: when the plain schedule overflows device
// memory but the re-computing one fits, Evaluate reports NeedsRecompute; when
// nothing fits, it errors; when memory is ample, no re-computation is used.
func TestEvaluateRecomputeFallback(t *testing.T) {
	ctx := context.Background()

	plain, err := Evaluate(ctx, "test", twoStagePlan(1<<40), schedule.GPipe, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plain.NeedsRecompute {
		t.Fatal("ample memory still triggered re-computation")
	}
	if plain.Latency <= 0 || plain.Speedup <= 0 || plain.Strategy != "test" {
		t.Fatalf("degenerate result %+v", plain)
	}

	// The GPipe flood retains all M=8 micro-batches of 4 layers x 256 MiB
	// (8 GiB on stage 0); a 3 GiB budget overflows plainly but fits
	// re-computation's footprint of boundary stashes plus two live
	// micro-batches — two, not one, because backward m rematerializes at the
	// instant backward m+1 frees, and allocations count before frees at
	// equal timestamps.
	rc, err := Evaluate(ctx, "test", twoStagePlan(3<<30), schedule.GPipe, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rc.NeedsRecompute {
		t.Fatal("tight memory did not trigger re-computation")
	}
	if rc.Latency <= plain.Latency {
		t.Fatalf("re-computation did not cost time: %.6f vs %.6f", rc.Latency, plain.Latency)
	}

	if _, err := Evaluate(ctx, "test", twoStagePlan(1<<20), schedule.GPipe, Options{}); err == nil ||
		!strings.Contains(err.Error(), "overflows device memory") {
		t.Fatalf("infeasible memory produced %v, want overflow error", err)
	}
}

// TestRecommendPolicy: communication-heavy plans get the deeper PB warmup.
func TestRecommendPolicy(t *testing.T) {
	light := twoStagePlan(1 << 40) // 1 MiB boundaries vs ms-scale compute
	if got := RecommendPolicy(light); got != schedule.DapplePA {
		t.Fatalf("compute-bound plan recommended %v", got)
	}
	heavy := twoStagePlan(1 << 40)
	for i := range heavy.Model.Layers {
		heavy.Model.Layers[i].OutputBytes = 1 << 30
	}
	if got := RecommendPolicy(heavy); got != schedule.DapplePB {
		t.Fatalf("communication-bound plan recommended %v", got)
	}
}

// stubStrategy is a registerable no-op for registry tests; this package's
// test binary does not link planner/baselines, so the registry starts empty.
type stubStrategy string

func (s stubStrategy) Name() string     { return string(s) }
func (s stubStrategy) Describe() string { return "stub" }
func (s stubStrategy) Plan(context.Context, *model.Model, hardware.Cluster, Options) (*Result, error) {
	return nil, nil
}

// TestNormalize: zero and NaN knobs collapse to the canonical defaults, so
// map keys built from Options stay well-behaved; set values pass through.
func TestNormalize(t *testing.T) {
	got := Options{PruneSlack: math.NaN()}.Normalize(64)
	want := Options{GBS: 64, MaxStages: DefaultMaxStages, PruneSlack: DefaultPruneSlack,
		Finalists: DefaultFinalists, Workers: DefaultWorkers()}
	if got != want {
		t.Fatalf("Normalize = %+v, want %+v", got, want)
	}
	set := Options{GBS: 8, MaxStages: 2, PruneSlack: 1.1, Finalists: 3, Workers: 5, NoPrune: true}
	if got := set.Normalize(64); got != set {
		t.Fatalf("Normalize changed explicit options: %+v", got)
	}
}

// TestRegistry: registration, duplicate rejection, and sorted agreement of
// Names and All.
func TestRegistry(t *testing.T) {
	for _, name := range []string{"stub-c", "stub-a", "stub-b"} {
		if err := Register(stubStrategy(name)); err != nil {
			t.Fatal(err)
		}
	}
	if err := Register(stubStrategy("stub-a")); err == nil {
		t.Fatal("duplicate registration succeeded")
	}
	if err := Register(stubStrategy("")); err == nil {
		t.Fatal("empty-name registration succeeded")
	}
	if _, ok := Lookup("stub-b"); !ok {
		t.Fatal("Lookup missed a registered strategy")
	}

	names := Names()
	all := All()
	if len(names) != len(all) || len(names) < 3 {
		t.Fatalf("Names has %d entries, All has %d, want 3 matching", len(names), len(all))
	}
	for i, s := range all {
		if s.Name() != names[i] {
			t.Fatalf("ordering mismatch at %d: %q vs %q", i, s.Name(), names[i])
		}
		if i > 0 && names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}
