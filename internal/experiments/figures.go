package experiments

import (
	"context"
	"fmt"

	"dapple/internal/baselines"
	"dapple/internal/core"
	"dapple/internal/hardware"
	"dapple/internal/model"
	"dapple/internal/planner"
	"dapple/internal/schedule"
	"dapple/internal/sim"
	"dapple/internal/stats"
	"dapple/internal/trace"
)

// Fig3 regenerates the schedule comparison of Fig. 3: a 3-stage straight
// pipeline with 7 micro-batches under GPipe and DAPPLE, as Gantt charts plus
// the stage-0 memory-over-time curves — showing DAPPLE's early backward
// freeing activations while GPipe accumulates all of them.
func Fig3(ctx context.Context, _ Options) *Report {
	r := &Report{ID: "fig3", Title: "GPipe vs DAPPLE schedule and memory (3 stages, M=7)"}
	m := model.Synthetic(6, 10e-3, 16<<20, 64<<20, 8<<20)
	c := hardware.ConfigB(3)
	plan := baselines.GPipePlan(m, c, 7, 3)
	sweep := schedule.MustSweeper(plan)

	for _, v := range []struct {
		name   string
		policy schedule.Policy
	}{{"GPipe", schedule.GPipe}, {"DAPPLE", schedule.DapplePA}} {
		if truncated(ctx, r) {
			return r
		}
		res := sweep.MustRun(schedule.Options{Policy: v.policy, M: 7, MemLimit: -1})
		sec := fmt.Sprintf("%s (iteration %.1fms, stage0 peak %s):\n%s",
			v.name, res.IterTime*1e3, stats.Bytes(res.PerStage[0].PeakMem),
			trace.Gantt(res.Sim, 100))
		curve, peak := trace.MemCurve(res.MemTrace(0), res.IterTime, 100)
		sec += fmt.Sprintf("stage0 memory over time (peak %s):\n%s\n", stats.Bytes(peak), curve)
		r.Sections = append(r.Sections, sec)
		if v.policy == schedule.GPipe && res.PerStage[0].PeakMem <= 0 {
			r.Addf("unexpected: GPipe recorded no stage0 memory")
		}
	}
	r.Addf("DAPPLE reaches the same bubble-free steady state with O(K) instead of O(M) activation residency")
	return r
}

// Fig4 regenerates the phase anatomy of Fig. 4: warmup, steady and ending
// phases of a replicated synchronous pipeline with communication stages and
// the trailing all-reduce.
func Fig4(ctx context.Context, opts Options) *Report {
	r := &Report{ID: "fig4", Title: "Pipeline phases (warmup/steady/ending)"}
	m := model.GNMT16()
	c := hardware.ConfigA(2)
	pr, err := planner.PlanContext(ctx, m, c, plannerOpts(opts, 0))
	if err != nil {
		if !truncated(ctx, r) {
			r.Addf("planning failed: %v", err)
		}
		return r
	}
	units := pr.Plan.Units()
	ph := core.PipelineLatency(units, pr.Plan.M())
	r.Header = []string{"Unit", "F(ms)", "B(ms)", "AR(ms)", "steady(ms)"}
	for _, u := range units {
		r.Add(u.Name,
			fmt.Sprintf("%.2f", u.F*1e3),
			fmt.Sprintf("%.2f", u.B*1e3),
			fmt.Sprintf("%.2f", u.AR*1e3),
			fmt.Sprintf("%.1f", float64(pr.Plan.M()-1)*(u.F+u.B)*1e3))
	}
	r.Addf("Tw=%.1fms Ts=%.1fms Te=%.1fms pivot=unit %d, latency %.1fms (Eq. 1-2)",
		ph.Warmup*1e3, ph.Steady*1e3, ph.Ending*1e3, ph.Pivot, ph.Latency()*1e3)
	res := schedule.MustRun(pr.Plan, schedule.Options{Policy: schedule.DapplePA})
	r.Addf("simulated iteration: %.1fms (bubbles %.1f%%)", res.IterTime*1e3, 100*res.BubbleFraction)
	r.Sections = append(r.Sections, trace.Gantt(res.Sim, 110))
	return r
}

// Fig7 regenerates the uneven-partitioning observation of Fig. 7 / §IV-D1 on
// its minimal setting: two GPUs, two micro-batches, a model whose boundary
// activations shrink with depth (the common CNN/encoder shape). The
// compute-even 4:4 split pays for a fat boundary; shifting the cut one or two
// layers deeper trades mild compute imbalance for much cheaper communication
// and wins clearly.
func Fig7(ctx context.Context, _ Options) *Report {
	r := &Report{ID: "fig7", Title: "Uneven vs even partitioning (2 GPUs, M=2)",
		Header: []string{"Split", "IterTime(ms)", "vs even"}}
	m := model.Synthetic(8, 8e-3, 0, 32<<20, 4<<20)
	for i := range m.Layers {
		m.Layers[i].OutputBytes = (256 << 20) >> uint(i)
	}
	c := hardware.ConfigC(2)
	gbs := 2

	times := make([]float64, 0, 7)
	for cut := 1; cut < 8; cut++ {
		if truncated(ctx, r) {
			return r
		}
		p := &core.Plan{
			Model: m, Cluster: c, GBS: gbs, MicroBatch: 1,
			Stages: []core.Stage{
				{Lo: 0, Hi: cut, Devices: []hardware.DeviceID{0}},
				{Lo: cut, Hi: 8, Devices: []hardware.DeviceID{1}},
			},
		}
		res := schedule.MustRun(p, schedule.Options{Policy: schedule.DapplePA, MemLimit: -1})
		times = append(times, res.IterTime)
	}
	even := times[3]
	for cut := 1; cut < 8; cut++ {
		r.Add(fmt.Sprintf("%d:%d", cut, 8-cut),
			fmt.Sprintf("%.1f", times[cut-1]*1e3),
			fmt.Sprintf("%.2fx", stats.Ratio(even, times[cut-1])))
	}
	best := stats.Min(times)
	r.Addf("best split beats the even 4:4 split by %.2fx — slightly uneven partitions win (§IV-D1)",
		stats.Ratio(even, best))
	return r
}

// Fig8 regenerates the replication-semantics comparison of Fig. 8: splitting
// each micro-batch across stage replicas (DAPPLE) versus round-robining whole
// micro-batches (PipeDream), on a 2-stage pipeline whose first stage costs 2x
// the second and is replicated on two of three GPUs.
func Fig8(ctx context.Context, _ Options) *Report {
	r := &Report{ID: "fig8", Title: "Replication: split micro-batch vs round-robin (3 GPUs)",
		Header: []string{"Approach", "IterTime(ms)", "Stage1 idle"}}
	if truncated(ctx, r) {
		return r
	}
	const (
		f0, f1 = 20e-3, 10e-3 // stage forward times; backward 2x
		m      = 6
	)

	// (a) split: one logical stage-0 executor at half duration.
	split := buildFig8Graph(m, f0/2, f1, 1)
	// (b) round-robin: two stage-0 lanes at full duration.
	rr := buildFig8Graph(m, f0, f1, 2)

	for _, v := range []struct {
		name string
		res  *sim.Result
	}{{"split micro-batch (DAPPLE)", split}, {"round-robin (alternative)", rr}} {
		idle := 1 - v.res.Utilization(v.res.ResourceIndex("stage1"))
		r.Add(v.name, fmt.Sprintf("%.1f", v.res.Makespan*1e3), fmt.Sprintf("%.0f%%", idle*100))
	}
	r.Addf("round-robin suffers the tail effect: stage 1 waits on whole micro-batches (%.2fx slower)",
		stats.Ratio(rr.Makespan, split.Makespan))
	return r
}

// buildFig8Graph simulates a 2-stage pipeline where stage 0 runs on `lanes`
// executors of duration f0 each (1 lane models the split-replica case with
// halved duration) feeding a single stage-1 executor.
func buildFig8Graph(m int, f0, f1 float64, lanes int) *sim.Result {
	g := sim.NewGraph()
	lane := make([]int, lanes)
	for i := range lane {
		lane[i] = g.Resource(fmt.Sprintf("stage0.%d", i))
	}
	s1 := g.Resource("stage1")
	var prevF1 sim.TaskID = -1
	fw0 := make([]sim.TaskID, m)
	for i := 0; i < m; i++ {
		fw0[i] = g.Add(sim.Task{Name: fmt.Sprintf("F%d.s0", i), Kind: "fwd",
			Resource: lane[i%lanes], Duration: f0, Priority: i})
		f := g.Add(sim.Task{Name: fmt.Sprintf("F%d.s1", i), Kind: "fwd",
			Resource: s1, Duration: f1, Priority: i})
		g.AddDep(f, fw0[i])
		if prevF1 >= 0 {
			g.AddDep(f, prevF1)
		}
		b := g.Add(sim.Task{Name: fmt.Sprintf("B%d.s1", i), Kind: "bwd",
			Resource: s1, Duration: 2 * f1, Priority: i})
		g.AddDep(b, f)
		b0 := g.Add(sim.Task{Name: fmt.Sprintf("B%d.s0", i), Kind: "bwd",
			Resource: lane[i%lanes], Duration: 2 * f0, Priority: i})
		g.AddDep(b0, b)
		prevF1 = f
	}
	return g.Run()
}

// fig12Sweeps defines the Fig. 12 batch-size sweeps per model.
var fig12Sweeps = map[string][]int{
	"VGG-19":       {512, 1024, 2048, 4096},
	"GNMT-16":      {512, 1024, 2048, 4096},
	"BERT-48":      {32, 64, 128, 256},
	"XLNet-36":     {32, 64, 128, 256},
	"AmoebaNet-36": {128, 256, 512, 1024},
}

// Fig12 regenerates the speedup curves of Fig. 12: DP without overlap, DP
// with overlap, and the best hybrid plan, per model, config and global batch
// size.
func Fig12(ctx context.Context, opts Options) *Report {
	r := &Report{ID: "fig12", Title: "Training speedup (vs 1 GPU) across configs and batch sizes",
		Header: []string{"Model", "Config", "GBS", "DP no-ovl", "DP ovl", "Hybrid", "Hybrid/bestDP"}}
	models := []string{"VGG-19", "GNMT-16", "BERT-48", "XLNet-36", "AmoebaNet-36"}
	var ratios []float64
	perConfig := map[string][]float64{}
	for _, name := range models {
		m := model.ByName(name)
		sweep := fig12Sweeps[name]
		if opts.Quick {
			sweep = sweep[1:3]
		}
		for _, k := range []string{"A", "B", "C"} {
			c := hardware.StandardConfigs()[k]
			for _, gbs := range sweep {
				if truncated(ctx, r) {
					return r
				}
				dpN := baselines.DPNoOverlap(m, c, gbs)
				dpO := baselines.DPOverlap(m, c, gbs)
				dpCell := func(d baselines.DPResult) string {
					if !d.Feasible {
						return "OOM"
					}
					return fmt.Sprintf("%.2f", d.Speedup)
				}
				pr, err := planner.PlanContext(ctx, m, c, plannerOpts(opts, gbs))
				if err != nil {
					if truncated(ctx, r) {
						return r
					}
					r.Add(name, k, fmt.Sprint(gbs), dpCell(dpN), dpCell(dpO), "infeasible", "-")
					continue
				}
				bestDP := dpO.Speedup
				if !dpO.Feasible {
					bestDP = 0
				}
				ratio := 0.0
				cell := "-"
				if bestDP > 0 {
					ratio = pr.Speedup / bestDP
					cell = fmt.Sprintf("%.2fx", ratio)
					ratios = append(ratios, ratio)
					perConfig[k] = append(perConfig[k], ratio)
				}
				r.Add(name, k, fmt.Sprint(gbs), dpCell(dpN), dpCell(dpO),
					fmt.Sprintf("%.2f", pr.Speedup), cell)
			}
		}
	}
	for _, k := range []string{"A", "B", "C"} {
		r.Addf("config %s: mean hybrid advantage over DP+overlap %.2fx (paper: 1.71/1.37/1.79 at GBS=128)",
			k, stats.Mean(perConfig[k]))
	}
	r.Addf("max hybrid advantage %.2fx (paper: up to 2.32x, GNMT-16 on config C)", stats.Max(ratios))
	return r
}

// Fig13 regenerates the planner comparison of Fig. 13: speedups of DAPPLE's
// plan versus PipeDream's plan, both executed by the DAPPLE runtime, on 2x8
// and 4x8 config-A clusters.
func Fig13(ctx context.Context, opts Options) *Report {
	r := &Report{ID: "fig13", Title: "DAPPLE planner vs PipeDream planner (DAPPLE runtime)",
		Header: []string{"Model", "Cluster", "DAPPLE speedup", "w/ PipeDream plan", "advantage"}}
	cases := []struct {
		m   *model.Model
		gbs int
	}{
		{model.XLNet36(), 128},
		{model.BERT(24), 128},
		{model.AmoebaNet36(), 128},
		{model.VGG19(), 1024},
	}
	sizes := []int{2, 4}
	if opts.Quick {
		sizes = []int{2}
	}
	var worst float64
	for _, servers := range sizes {
		c := hardware.ConfigA(servers)
		for _, tc := range cases {
			if truncated(ctx, r) {
				return r
			}
			pr, err := planner.PlanContext(ctx, tc.m, c, plannerOpts(opts, tc.gbs))
			if err != nil {
				if truncated(ctx, r) {
					return r
				}
				r.Add(tc.m.Name, fmt.Sprintf("%dx8", servers), "infeasible", "-", "-")
				continue
			}
			pd := baselines.PipeDream(tc.m, c, tc.gbs)
			pdRC := !planner.FitsMemory(pd, false)
			pdRes := schedule.MustRun(pd, schedule.Options{Policy: schedule.DapplePA, Recompute: pdRC, MemLimit: -1})
			single := tc.m.SingleDeviceIterTime(tc.gbs)
			pdSpeedup := single / pdRes.IterTime
			adv := stats.Ratio(pr.Speedup, pdSpeedup)
			if adv > worst {
				worst = adv
			}
			r.Add(tc.m.Name, fmt.Sprintf("%dx8", servers),
				fmt.Sprintf("%.1f", pr.Speedup),
				fmt.Sprintf("%.1f", pdSpeedup),
				fmt.Sprintf("%.2fx", adv))
		}
	}
	r.Addf("max planner advantage %.2fx (paper: up to 3.23x)", worst)
	return r
}

// Fig14 regenerates the strong-scaling study of Fig. 14 on config A: fixed
// global batch, 2..16 GPUs, comparing DP variants against the best hybrid
// (plus the straight pipeline for GNMT).
func Fig14(ctx context.Context, opts Options) *Report {
	r := &Report{ID: "fig14", Title: "Strong scaling, fixed GBS, config A",
		Header: []string{"Model", "GPUs", "DP no-ovl", "DP ovl", "Hybrid", "Straight"}}
	cases := []struct {
		m   *model.Model
		gbs int
	}{
		{model.GNMT16(), 2048},
		{model.BERT48(), 128},
		{model.XLNet36(), 128},
		{model.AmoebaNet36(), 256},
	}
	gpuCounts := []int{2, 4, 8, 10, 12, 16}
	if opts.Quick {
		gpuCounts = []int{8, 16}
	}
	for _, tc := range cases {
		for _, n := range gpuCounts {
			if truncated(ctx, r) {
				return r
			}
			c := scaledConfigA(n)
			dpN := baselines.DPNoOverlap(tc.m, c, tc.gbs)
			dpO := baselines.DPOverlap(tc.m, c, tc.gbs)
			cell := func(d baselines.DPResult) string {
				if !d.Feasible {
					return "OOM"
				}
				return fmt.Sprintf("%.2f", d.Speedup)
			}
			hybrid := "infeasible"
			if pr, err := planner.PlanContext(ctx, tc.m, c, plannerOpts(opts, tc.gbs)); err == nil {
				hybrid = fmt.Sprintf("%.2f", pr.Speedup)
			} else if truncated(ctx, r) {
				return r
			}
			straight := "-"
			if tc.m.Name == "GNMT-16" && tc.m.NumLayers() >= n {
				sp := baselines.StraightPipeline(tc.m, c, tc.gbs)
				res := schedule.MustRun(sp, schedule.Options{Policy: schedule.DapplePA, MemLimit: -1})
				straight = fmt.Sprintf("%.2f", tc.m.SingleDeviceIterTime(tc.gbs)/res.IterTime)
			}
			r.Add(tc.m.Name, fmt.Sprint(n), cell(dpN), cell(dpO), hybrid, straight)
		}
	}
	r.Addf("DP scalability drops when crossing the server boundary (>8 GPUs: inter-server gradient sync); hybrid scales smoothly")
	return r
}

// scaledConfigA builds a config-A-style cluster with n total GPUs: one server
// up to 8 GPUs, two symmetric servers beyond (the paper's 8+k layouts are
// approximated by k/2+k/2 — the server-crossing penalty is preserved).
func scaledConfigA(n int) hardware.Cluster {
	c := hardware.ConfigA(1)
	if n <= 8 {
		c.GPUsPerServer = n
		return c
	}
	c.Servers = 2
	c.GPUsPerServer = n / 2
	return c
}
