package experiments

import (
	"context"
	"fmt"

	"dapple/internal/baselines"
	"dapple/internal/core"
	"dapple/internal/hardware"
	"dapple/internal/model"
	"dapple/internal/planner"
	"dapple/internal/schedule"
	"dapple/internal/stats"
)

// table1Models are the five models of Table I with the paper's published
// activation/gradient volumes for side-by-side comparison.
var table1Paper = []struct {
	name       string
	activation string
	gradient   string
}{
	{"GNMT-16", "26MB", "1.1GB"},
	{"BERT-48", "8.8MB", "2.8GB"},
	{"XLNet-36", "4.2MB", "2.1GB"},
	{"AmoebaNet-36", "11.2MB", "3.7GB"},
	{"VGG-19", "6MB", "550MB"},
}

// Table1 regenerates Table I: activation volume at the planner's partition
// boundary at the profiling micro-batch versus the full gradient volume — the
// asymmetry motivating hybrid parallelism on hierarchical interconnects. The
// boundary is the cheapest stage cut the planner selects (for VGG-19 that is
// the conv/fc boundary, far from the compute-balanced split).
func Table1(ctx context.Context, opts Options) *Report {
	r := &Report{ID: "table1", Title: "Traffic volume (boundary activations vs gradients)",
		Header: []string{"Benchmark", "Activation@boundary", "paper", "Gradients", "paper"}}
	for _, row := range table1Paper {
		if truncated(ctx, r) {
			return r
		}
		m := model.ByName(row.name)
		cut := baselines.BalancedCuts(m, 2)[0]
		pr, err := planner.PlanContext(ctx, m, hardware.ConfigC(16), plannerOpts(opts, 0))
		if err != nil && truncated(ctx, r) {
			return r
		}
		if err == nil && pr.Plan.NumStages() > 1 {
			// Use the lightest boundary of the planner's config-C plan, the
			// environment where boundary traffic matters most.
			best := pr.Plan.BoundaryBytes(0)
			cut = pr.Plan.Stages[0].Hi
			for i := 1; i < pr.Plan.NumStages()-1; i++ {
				if b := pr.Plan.BoundaryBytes(i); b < best {
					best, cut = b, pr.Plan.Stages[i].Hi
				}
			}
		}
		boundary := m.OutputBytes(cut-1, m.ProfileBatch)
		r.Add(m.Name, stats.Bytes(boundary), row.activation,
			stats.Bytes(m.GradientBytes()), row.gradient)
	}
	r.Addf("boundary: lightest stage cut of the planner's config-C plan at the profiling micro-batch")
	return r
}

// Table2 regenerates Table II: the benchmark zoo with parameter counts and
// single-device training memory at the profiling micro-batch.
func Table2(ctx context.Context, _ Options) *Report {
	r := &Report{ID: "table2", Title: "Benchmark models",
		Header: []string{"Model", "Layers", "#Params", "ProfileBatch", "GBS", "TrainMem"}}
	for _, m := range model.Zoo() {
		mem := m.OptimizerStateBytes(m.TotalParamBytes()) +
			m.RangeStoredBytes(0, m.NumLayers(), m.ProfileBatch) + m.WorkspaceBytes
		r.Add(m.Name,
			fmt.Sprint(m.NumLayers()),
			fmt.Sprintf("%.0fM", float64(m.TotalParams())/1e6),
			fmt.Sprint(m.ProfileBatch),
			fmt.Sprint(m.DefaultGBS),
			stats.Bytes(mem))
	}
	r.Addf("TrainMem = optimizer state (param+grad+slots) + retained activations + workspace")
	r.Addf("paper Table II memory: GNMT 3.9GB, BERT 11.4GB, XLNet 12GB, ResNet 1GB, VGG 5.6GB, AmoebaNet 20GB (>16GB device: DP infeasible)")
	return r
}

// Table3 prints Table III's hardware configurations as modeled.
func Table3(ctx context.Context, _ Options) *Report {
	r := &Report{ID: "table3", Title: "Hardware configurations",
		Header: []string{"Config", "Servers", "GPUs/server", "Intra", "Inter", "Memory"}}
	for _, k := range []string{"A", "B", "C"} {
		c := hardware.StandardConfigs()[k]
		intra := "n/a"
		if c.GPUsPerServer > 1 {
			intra = fmt.Sprintf("NVLink %.0fGB/s", c.IntraBW/1e9)
		}
		r.Add(k, fmt.Sprint(c.Servers), fmt.Sprint(c.GPUsPerServer), intra,
			fmt.Sprintf("%.2fGB/s", c.InterBW/1e9), stats.Bytes(c.DeviceMemory))
	}
	return r
}

// Table4 regenerates Table IV: normalized training throughput of warmup
// policy PB over PA on config A, using each model's planned strategy. Models
// with a notable activation-communication ratio benefit from the deeper
// warmup; compute-dominated transformers do not.
func Table4(ctx context.Context, opts Options) *Report {
	r := &Report{ID: "table4", Title: "Scheduling policy speedup (PB vs PA, config A)",
		Header: []string{"Model", "ACR", "PA thpt", "PB thpt", "PB/PA", "paper"}}
	paper := map[string]string{"BERT-48": "1.0", "XLNet-36": "1.02", "VGG-19": "1.1", "GNMT-16": "1.31"}
	c := hardware.ConfigA(2)
	for _, name := range []string{"BERT-48", "XLNet-36", "VGG-19", "GNMT-16"} {
		if truncated(ctx, r) {
			return r
		}
		m := model.ByName(name)
		pr, err := planner.PlanContext(ctx, m, c, plannerOpts(opts, 0))
		if err != nil {
			if truncated(ctx, r) {
				return r
			}
			r.Addf("%s: %v", name, err)
			continue
		}
		sw := schedule.MustSweeper(pr.Plan)
		pa := sw.MustRun(schedule.Options{Policy: schedule.DapplePA, Recompute: pr.NeedsRecompute})
		pb := sw.MustRun(schedule.Options{Policy: schedule.DapplePB, Recompute: pr.NeedsRecompute})
		r.Add(name,
			fmt.Sprintf("%.3f", pr.Plan.ACR()),
			fmt.Sprintf("%.1f", pa.Throughput()),
			fmt.Sprintf("%.1f", pb.Throughput()),
			fmt.Sprintf("%.2f", stats.Ratio(pb.Throughput(), pa.Throughput())),
			paper[name])
	}
	return r
}

// table5Paper is the published plan per (model, config) for the notes column.
var table5Paper = map[string]string{
	"ResNet-50/A": "DP", "ResNet-50/B": "DP", "ResNet-50/C": "DP",
	"VGG-19/A": "DP", "VGG-19/B": "DP", "VGG-19/C": "15:1 @ 13:6",
	"GNMT-16/A": "8:8 @ 9:7", "GNMT-16/B": "8:8 @ 9:7", "GNMT-16/C": "Straight",
	"BERT-48/A": "8:8 @ 23:25", "BERT-48/B": "Straight", "BERT-48/C": "Straight",
	"XLNet-36/A": "8:8 @ 18:18", "XLNet-36/B": "8:8 @ 18:18", "XLNet-36/C": "Straight",
	"AmoebaNet-36/A": "8:8 @ 24:12", "AmoebaNet-36/B": "11:5 @ 27:9", "AmoebaNet-36/C": "11:5 @ 27:9",
}

// Table5 regenerates Table V: the planner's output plan, split position and
// ACR for every benchmark on the three 16-device environments.
func Table5(ctx context.Context, opts Options) *Report {
	r := &Report{ID: "table5", Title: "DAPPLE planning results (16 devices)",
		Header: []string{"Model(GBS)", "Config", "Output plan", "Split", "ACR", "Speedup", "paper plan"}}
	for _, m := range model.Zoo() {
		for _, k := range []string{"A", "B", "C"} {
			if truncated(ctx, r) {
				return r
			}
			c := hardware.StandardConfigs()[k]
			pr, err := planner.PlanContext(ctx, m, c, plannerOpts(opts, 0))
			if err != nil {
				if truncated(ctx, r) {
					return r
				}
				r.Add(fmt.Sprintf("%s(%d)", m.Name, m.DefaultGBS), k, "infeasible", "-", "-", "-",
					table5Paper[m.Name+"/"+k])
				continue
			}
			p := pr.Plan
			plan := p.Kind().String()
			split := "-"
			if p.Kind() != core.KindDP {
				plan = p.ReplicaString()
				split = p.SplitString()
			}
			r.Add(fmt.Sprintf("%s(%d)", m.Name, m.DefaultGBS), k, plan, split,
				fmt.Sprintf("%.2f", p.ACR()),
				fmt.Sprintf("%.2fx", pr.Speedup),
				table5Paper[m.Name+"/"+k])
		}
	}
	return r
}

// Table6 regenerates Table VI: DAPPLE vs GPipe throughput and average peak
// memory on a 2-stage BERT-48 pipeline (config B, micro-batch 2), with and
// without re-computation, across micro-batch counts M.
func Table6(ctx context.Context, _ Options) *Report {
	r := &Report{ID: "table6", Title: "DAPPLE vs GPipe (BERT-48, 2-stage, config B, micro-batch 2)",
		Header: []string{"Schedule", "M", "Throughput(samples/s)", "AvgPeakMem", "OOM"}}
	m := model.BERT48()
	c := hardware.ConfigB(2)
	// Every cell simulates the same 2-stage plan: the GBS passed to GPipePlan
	// only scales with M while the stage partition and micro-batch size stay
	// fixed, and the explicit Options.M override drives the simulated
	// micro-batch count. One Sweeper therefore carries the whole Policy × M ×
	// recompute sweep on reused task-graph buffers.
	sweep := schedule.MustSweeper(baselines.GPipePlan(m, c, 2*m.ProfileBatch, 2))
	type variant struct {
		name      string
		policy    schedule.Policy
		recompute bool
		ms        []int
	}
	variants := []variant{
		{"GPipe", schedule.GPipe, false, []int{2, 5, 8, 16}},
		{"GPipe+RC", schedule.GPipe, true, []int{2, 5, 8, 16}},
		{"DAPPLE", schedule.DapplePA, false, []int{2, 8, 16}},
		{"DAPPLE+RC", schedule.DapplePA, true, []int{2, 8, 16}},
	}
	var dappleMem, gpipeMem, dappleRCMem float64
	var gpipeThpt, dappleThpt float64
	for _, v := range variants {
		for _, M := range v.ms {
			if truncated(ctx, r) {
				return r
			}
			res := sweep.MustRun(schedule.Options{Policy: v.policy, Recompute: v.recompute, M: M})
			oom := ""
			if res.OOM {
				oom = fmt.Sprintf("OOM(stage %d)", res.OOMStage)
			}
			r.Add(v.name, fmt.Sprint(M),
				fmt.Sprintf("%.2f", res.Throughput()),
				stats.BytesF(res.AvgPeakMem), oom)
			switch {
			case v.name == "GPipe" && M == 2:
				gpipeMem, gpipeThpt = res.AvgPeakMem, res.Throughput()
			case v.name == "DAPPLE" && M == 16:
				dappleMem, dappleThpt = res.AvgPeakMem, res.Throughput()
			case v.name == "DAPPLE+RC" && M == 16:
				dappleRCMem = res.AvgPeakMem
			}
		}
	}
	r.Addf("DAPPLE(M=16) vs GPipe(M=2): %.2fx throughput at %.2fx memory (paper: 1.6x at 0.88x)",
		stats.Ratio(dappleThpt, gpipeThpt), stats.Ratio(dappleMem, gpipeMem))
	r.Addf("DAPPLE+RC(M=16) vs GPipe: %.2fx memory (paper: 0.70x)", stats.Ratio(dappleRCMem, gpipeMem))
	r.Addf("DAPPLE peak memory is independent of M (early backward scheduling); GPipe grows O(M)")
	return r
}

// Table7 regenerates Table VII: DAPPLE vs PipeDream planner strategies on a
// 2x8 config-A cluster, printed as (start,end)@[GPUs] blocks.
func Table7(ctx context.Context, opts Options) *Report {
	r := &Report{ID: "table7", Title: "Strategies: DAPPLE planner vs PipeDream planner (2x8 config A)",
		Header: []string{"Model(GBS)", "Planner", "Strategy"}}
	c := hardware.ConfigA(2)
	cases := []struct {
		m   *model.Model
		gbs int
	}{
		{model.VGG19(), 1024},
		{model.AmoebaNet36(), 128},
		{model.BERT(24), 128}, // BERT Large
		{model.XLNet36(), 128},
	}
	for _, tc := range cases {
		if truncated(ctx, r) {
			return r
		}
		pr, err := planner.PlanContext(ctx, tc.m, c, plannerOpts(opts, tc.gbs))
		if err != nil {
			if truncated(ctx, r) {
				return r
			}
			r.Add(fmt.Sprintf("%s(%d)", tc.m.Name, tc.gbs), "DAPPLE", "infeasible")
		} else {
			r.Add(fmt.Sprintf("%s(%d)", tc.m.Name, tc.gbs), "DAPPLE", strategyString(pr.Plan))
		}
		pd := baselines.PipeDream(tc.m, c, tc.gbs)
		r.Add("", "PipeDream", strategyString(pd))
	}
	return r
}

// strategyString renders a plan the way Table VII does.
func strategyString(p *core.Plan) string {
	if p.Kind() == core.KindStraight && p.NumStages() == p.Cluster.NumDevices() {
		return "straight"
	}
	s := ""
	for i, st := range p.Stages {
		if i > 0 {
			s += "  "
		}
		if len(st.Devices) == 1 {
			s += fmt.Sprintf("(%d,%d)@G%d", st.Lo, st.Hi, st.Devices[0])
		} else {
			s += fmt.Sprintf("(%d,%d)@[G%d-G%d]", st.Lo, st.Hi,
				st.Devices[0], st.Devices[len(st.Devices)-1])
		}
	}
	return s
}

// Table8 regenerates Table VIII: the maximum BERT depth DAPPLE +
// re-computation supports per pipeline width on config A, with total
// parameter state and average GPU utilization.
func Table8(ctx context.Context, _ Options) *Report {
	r := &Report{ID: "table8", Title: "Weak scaling: max BERT under DAPPLE+recompute (16GB V100s)",
		Header: []string{"Config", "BERT-L", "#Params", "ParamState", "AvgUtil", "paper L"}}
	paper := map[int]string{1: "48", 2: "106", 4: "215", 8: "428"}
	for _, width := range []int{1, 2, 4, 8} {
		if truncated(ctx, r) {
			return r
		}
		l := maxBERTLayers(width)
		m := model.BERT(l)
		state := m.OptimizerStateBytes(m.TotalParamBytes())
		util := "-"
		if width > 1 {
			c := hardware.ConfigA(1)
			plan := baselines.GPipePlan(m, c, m.DefaultGBS, width)
			res := schedule.MustRun(plan, schedule.Options{Policy: schedule.DapplePA, Recompute: true})
			var u float64
			for i := range plan.Stages {
				u += res.Sim.Utilization(res.StageResource(i))
			}
			util = fmt.Sprintf("%.0f%%", 100*u/float64(width))
		}
		r.Add(fmt.Sprintf("Pipeline-%d", width), fmt.Sprint(l),
			fmt.Sprintf("%.1fB", float64(m.TotalParams())/1e9),
			stats.Bytes(state), util, paper[width])
	}
	r.Addf("each parameter needs 16 bytes (Adam: param+grad+m+v); max depth scales linearly with pipeline width")
	return r
}

// maxBERTLayers binary-searches the deepest BERT that fits width devices
// under DAPPLE + re-computation.
func maxBERTLayers(width int) int {
	fits := func(l int) bool {
		if l < width {
			return false
		}
		m := model.BERT(l)
		c := hardware.ConfigA(1)
		if width > c.GPUsPerServer {
			c = hardware.ConfigA((width + 7) / 8)
		}
		plan := baselines.GPipePlan(m, c, m.DefaultGBS, width)
		return planner.FitsMemory(plan, true)
	}
	lo, hi := width, 2048
	for !fits(lo) && lo < hi {
		lo++
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if fits(mid) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// plannerOpts derives planner options from experiment options.
func plannerOpts(o Options, gbs int) planner.Options {
	po := planner.Options{GBS: gbs, Workers: o.Workers, NoPrune: o.NoPrune}
	if o.Quick {
		po.PruneSlack = 1.25
		po.Finalists = 8
	}
	return po
}
