package experiments

import (
	"context"
	"fmt"

	"dapple/internal/core"
	"dapple/internal/hardware"
	"dapple/internal/model"
	"dapple/internal/planner"
	"dapple/internal/schedule"
	"dapple/internal/stats"
)

// The ablations isolate the three design choices DESIGN.md calls out:
// topology-aware placement beyond Fresh First (§IV-B), uneven partitioning
// (§IV-D1), and the simulator re-ranking on top of the analytic Eq. (1)-(2)
// objective.

// AblationPlacement compares the planner's three-policy placement space
// against a Fresh-First-only baseline (PipeDream-style hierarchical
// allocation) on the hierarchical topology.
func AblationPlacement(ctx context.Context, opts Options) *Report {
	r := &Report{ID: "ablation-placement", Title: "Placement policies: all three vs Fresh-First-only",
		Header: []string{"Model", "Plan (all policies)", "Latency", "Plan (manual 8:8 fresh)", "Latency", "gain"}}
	c := hardware.ConfigA(2)
	for _, name := range []string{"ResNet-50", "GNMT-16"} {
		if truncated(ctx, r) {
			return r
		}
		m := model.ByName(name)
		pr, err := planner.PlanContext(ctx, m, c, plannerOpts(opts, 0))
		if err != nil {
			if truncated(ctx, r) {
				return r
			}
			r.Addf("%s: %v", name, err)
			continue
		}
		// Fresh-First-only reference: the canonical one-server-per-stage 8:8
		// hybrid with a compute-balanced split.
		cut := bestBalancedCut(m)
		manual := &core.Plan{Model: m, Cluster: c, GBS: pr.Plan.GBS, MicroBatch: pr.Plan.MicroBatch,
			Stages: []core.Stage{
				{Lo: 0, Hi: cut, Devices: c.Devices()[:8]},
				{Lo: cut, Hi: m.NumLayers(), Devices: c.Devices()[8:]},
			}}
		res := schedule.MustRun(manual, schedule.Options{Policy: schedule.DapplePA, MemLimit: -1})
		r.Add(name, pr.Plan.String(), stats.Seconds(pr.Latency),
			manual.String(), stats.Seconds(res.IterTime),
			fmt.Sprintf("%.2fx", stats.Ratio(res.IterTime, pr.Latency)))
	}
	r.Addf("the searched placement matches or beats the canonical fresh-first 8:8 on every workload")
	return r
}

// bestBalancedCut returns the 2-way compute-balanced cut index.
func bestBalancedCut(m *model.Model) int {
	total := m.RangeFwdTime(0, m.NumLayers(), 1) + m.RangeBwdTime(0, m.NumLayers(), 1)
	for cut := 1; cut < m.NumLayers(); cut++ {
		if m.RangeFwdTime(0, cut, 1)+m.RangeBwdTime(0, cut, 1) >= total/2 {
			return cut
		}
	}
	return m.NumLayers() / 2
}

// AblationRerank quantifies the simulator re-ranking: the latency of the
// plan the analytic objective alone would pick versus the re-ranked winner.
func AblationRerank(ctx context.Context, opts Options) *Report {
	r := &Report{ID: "ablation-rerank", Title: "Simulator re-ranking vs analytic-only selection",
		Header: []string{"Model", "Config", "analytic-only pick", "re-ranked pick", "sim latency gain"}}
	cases := []struct {
		m *model.Model
		k string
	}{
		{model.GNMT16(), "A"}, {model.VGG19(), "C"}, {model.BERT48(), "B"},
	}
	for _, tc := range cases {
		if truncated(ctx, r) {
			return r
		}
		c := hardware.StandardConfigs()[tc.k]
		full, err := planner.PlanContext(ctx, tc.m, c, plannerOpts(opts, 0))
		if err != nil {
			if truncated(ctx, r) {
				return r
			}
			r.Addf("%s/%s: %v", tc.m.Name, tc.k, err)
			continue
		}
		// Analytic-only: keep just one finalist, so the analytic argmin wins.
		po := plannerOpts(opts, 0)
		po.Finalists = 1
		analytic, err := planner.PlanContext(ctx, tc.m, c, po)
		if err != nil {
			if truncated(ctx, r) {
				return r
			}
			r.Addf("%s/%s: %v", tc.m.Name, tc.k, err)
			continue
		}
		r.Add(tc.m.Name, tc.k, analytic.Plan.String(), full.Plan.String(),
			fmt.Sprintf("%.2fx", stats.Ratio(analytic.Latency, full.Latency)))
	}
	r.Addf("Eq. (1)-(2) ignores non-pivot bubbles (the paper's own caveat); re-ranking on the DES corrects the final choice")
	return r
}

// AblationStages sweeps the planner's maximum stage count, quantifying the
// paper's "as few stages as possible" insight under fixed resources.
func AblationStages(ctx context.Context, opts Options) *Report {
	r := &Report{ID: "ablation-stages", Title: "Effect of the stage-count budget (BERT-48, config B)",
		Header: []string{"MaxStages", "Chosen plan", "Sim latency", "vs best"}}
	m := model.BERT48()
	c := hardware.ConfigB(16)
	type row struct {
		s    int
		plan string
		lat  float64
	}
	var rows []row
	best := 0.0
	for _, s := range []int{2, 3, 4, 6} {
		if truncated(ctx, r) {
			return r
		}
		po := plannerOpts(opts, 0)
		po.MaxStages = s
		pr, err := planner.PlanContext(ctx, m, c, po)
		if err != nil {
			if truncated(ctx, r) {
				return r
			}
			r.Addf("maxStages=%d: %v", s, err)
			continue
		}
		rows = append(rows, row{s, pr.Plan.String(), pr.Latency})
		if best == 0 || pr.Latency < best {
			best = pr.Latency
		}
	}
	for _, w := range rows {
		r.Add(fmt.Sprint(w.s), w.plan, stats.Seconds(w.lat),
			fmt.Sprintf("%.2fx", stats.Ratio(w.lat, best)))
	}
	r.Addf("returns diminish quickly beyond a handful of stages: bubbles and boundaries offset balance gains")
	return r
}
