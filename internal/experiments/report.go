// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI): workload construction, parameter sweeps, baselines, and
// row/series printers. Each generator returns a structured Report that
// cmd/dapple-bench prints and bench_test.go exercises.
package experiments

import (
	"context"
	"fmt"
	"strings"
)

// Report is one regenerated table or figure.
type Report struct {
	ID     string // "table5", "fig12", ...
	Title  string
	Header []string
	Rows   [][]string

	// Freeform pre-rendered sections (Gantt charts, memory curves).
	Sections []string

	// Notes record paper-vs-measured comparisons and substitutions.
	Notes []string
}

// Add appends a row of stringified cells.
func (r *Report) Add(cells ...string) { r.Rows = append(r.Rows, cells) }

// Addf appends a note.
func (r *Report) Addf(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the report as aligned text.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if len(r.Header) > 0 {
		widths := make([]int, len(r.Header))
		for i, h := range r.Header {
			widths[i] = len(h)
		}
		for _, row := range r.Rows {
			for i, c := range row {
				if i < len(widths) && len(c) > widths[i] {
					widths[i] = len(c)
				}
			}
		}
		line := func(cells []string) {
			for i, c := range cells {
				if i < len(widths) {
					fmt.Fprintf(&b, "%-*s  ", widths[i], c)
				} else {
					b.WriteString(c)
				}
			}
			b.WriteByte('\n')
		}
		line(r.Header)
		for _, w := range widths {
			b.WriteString(strings.Repeat("-", w) + "  ")
		}
		b.WriteByte('\n')
		for _, row := range r.Rows {
			line(row)
		}
	}
	for _, s := range r.Sections {
		b.WriteByte('\n')
		b.WriteString(s)
		if !strings.HasSuffix(s, "\n") {
			b.WriteByte('\n')
		}
	}
	if len(r.Notes) > 0 {
		b.WriteString("\nnotes:\n")
		for _, n := range r.Notes {
			fmt.Fprintf(&b, "  - %s\n", n)
		}
	}
	return b.String()
}

// Options tune experiment cost.
type Options struct {
	// Quick trims sweeps (fewer batch-size points, smaller planner budgets)
	// for use inside `go test -bench`.
	Quick bool

	// Workers bounds each planner search's parallel fan-out
	// (0 = GOMAXPROCS, 1 = sequential); results are identical either way.
	Workers int

	// NoPrune runs every planner search exhaustively (no branch-and-bound,
	// no dominance memo, no slack cut). Orders of magnitude slower.
	NoPrune bool
}

// Generator produces one report. Run threads its context into every planner
// search and checks it between sweep points, so a full sweep (~30 s) is
// cancellable and deadline-bounded; a cancelled run returns a report marked
// TRUNCATED rather than one mislabeling unexplored points.
type Generator struct {
	ID   string
	Name string
	Run  func(context.Context, Options) *Report
}

// truncated reports context expiry, stamping the report with a TRUNCATED
// note the first time it fires. Generators call it at sweep boundaries and
// on planner errors so cancellation cuts the report short instead of
// recording unexplored configurations as infeasible.
func truncated(ctx context.Context, r *Report) bool {
	if ctx.Err() == nil {
		return false
	}
	note := truncatedPrefix + ctx.Err().Error()
	for _, n := range r.Notes {
		if n == note {
			return true
		}
	}
	r.Addf("%s", note)
	return true
}

const truncatedPrefix = "TRUNCATED: "

// Truncated reports whether the run was cut short by context expiry — the
// report is incomplete and should not be consumed as full regenerated data.
func (r *Report) Truncated() bool {
	for _, n := range r.Notes {
		if strings.HasPrefix(n, truncatedPrefix) {
			return true
		}
	}
	return false
}

// All returns every table and figure generator in paper order.
func All() []Generator {
	return []Generator{
		{"table1", "Traffic volume at partition boundaries", Table1},
		{"table2", "Benchmark models", Table2},
		{"table3", "Hardware configurations", Table3},
		{"table4", "Scheduling policy PB vs PA", Table4},
		{"table5", "DAPPLE planning results", Table5},
		{"table6", "DAPPLE vs GPipe throughput and memory", Table6},
		{"table7", "Strategy comparison with PipeDream", Table7},
		{"table8", "Weak scaling: maximum BERT size", Table8},
		{"fig3", "GPipe vs DAPPLE schedules and memory", Fig3},
		{"fig4", "Pipeline phase anatomy", Fig4},
		{"fig7", "Uneven vs even partitioning", Fig7},
		{"fig8", "Stage replication: split vs round-robin", Fig8},
		{"fig12", "Speedups across configs and batch sizes", Fig12},
		{"fig13", "Planner comparison with PipeDream", Fig13},
		{"fig14", "Strong scaling on config A", Fig14},
		{"ablation-placement", "Placement-policy ablation", AblationPlacement},
		{"ablation-rerank", "Simulator re-ranking ablation", AblationRerank},
		{"ablation-stages", "Stage-count budget ablation", AblationStages},
	}
}

// ByID returns the generator with the given id, or nil.
func ByID(id string) *Generator {
	for _, g := range All() {
		if g.ID == id {
			gg := g
			return &gg
		}
	}
	return nil
}
