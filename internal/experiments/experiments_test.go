package experiments

import (
	"context"
	"strings"
	"testing"
)

// quick runs all generators in Quick mode once per test binary.
var quickOpts = Options{Quick: true}

func TestAllGeneratorsRegistered(t *testing.T) {
	ids := map[string]bool{}
	for _, g := range All() {
		if g.ID == "" || g.Name == "" || g.Run == nil {
			t.Fatalf("incomplete generator %+v", g)
		}
		if ids[g.ID] {
			t.Fatalf("duplicate id %s", g.ID)
		}
		ids[g.ID] = true
	}
	// Every evaluation table and figure of the paper is covered.
	for _, id := range []string{"table1", "table2", "table3", "table4", "table5",
		"table6", "table7", "table8", "fig3", "fig4", "fig7", "fig8", "fig12", "fig13", "fig14"} {
		if !ids[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
	if ByID("table5") == nil || ByID("nope") != nil {
		t.Fatal("ByID broken")
	}
}

func TestReportRendering(t *testing.T) {
	r := &Report{ID: "x", Title: "demo", Header: []string{"a", "bb"}}
	r.Add("1", "2")
	r.Addf("note %d", 7)
	r.Sections = append(r.Sections, "body")
	s := r.String()
	for _, want := range []string{"demo", "a", "bb", "note 7", "body"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in:\n%s", want, s)
		}
	}
}

func TestTable1(t *testing.T) {
	r := Table1(context.Background(), quickOpts)
	if len(r.Rows) != 5 {
		t.Fatalf("%d rows", len(r.Rows))
	}
}

func TestTable2(t *testing.T) {
	r := Table2(context.Background(), quickOpts)
	if len(r.Rows) != 6 {
		t.Fatalf("%d rows", len(r.Rows))
	}
}

func TestTable3(t *testing.T) {
	r := Table3(context.Background(), quickOpts)
	if len(r.Rows) != 3 {
		t.Fatalf("%d rows", len(r.Rows))
	}
}

func TestTable6Shape(t *testing.T) {
	r := Table6(context.Background(), quickOpts)
	if len(r.Rows) != 14 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	// GPipe must OOM at high M, DAPPLE never.
	var gpipeOOM, dappleOOM bool
	for _, row := range r.Rows {
		if row[0] == "GPipe" && row[4] != "" {
			gpipeOOM = true
		}
		if row[0] == "DAPPLE" && row[4] != "" {
			dappleOOM = true
		}
	}
	if !gpipeOOM {
		t.Fatal("GPipe should OOM at large M")
	}
	if dappleOOM {
		t.Fatal("DAPPLE should not OOM")
	}
	// DAPPLE memory flat in M once a steady phase exists (M=8 and M=16 share
	// the same value). M=2 drains before reaching steady state, so it misses
	// the backward→forward handoff instant the allocate-before-free
	// accounting charges, and sits slightly lower.
	var mems []string
	for _, row := range r.Rows {
		if row[0] == "DAPPLE" {
			mems = append(mems, row[3])
		}
	}
	if len(mems) != 3 {
		t.Fatalf("DAPPLE rows: %v", mems)
	}
	if mems[1] != mems[2] {
		t.Fatalf("DAPPLE steady-state memory varies with M: %v", mems)
	}
}

func TestTable8LinearScaling(t *testing.T) {
	r := Table8(context.Background(), quickOpts)
	if len(r.Rows) != 4 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	depth := func(i int) int {
		var l int
		if _, err := sscan(r.Rows[i][1], &l); err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		return l
	}
	d1, d2, d4, d8 := depth(0), depth(1), depth(2), depth(3)
	for _, pair := range [][2]int{{d2, 2 * d1}, {d4, 4 * d1}, {d8, 8 * d1}} {
		ratio := float64(pair[0]) / float64(pair[1])
		if ratio < 0.9 || ratio > 1.1 {
			t.Fatalf("depths not linear: %d %d %d %d", d1, d2, d4, d8)
		}
	}
}

func TestFig3HasBothSchedules(t *testing.T) {
	r := Fig3(context.Background(), quickOpts)
	if len(r.Sections) != 2 {
		t.Fatalf("%d sections", len(r.Sections))
	}
	if !strings.Contains(r.Sections[0], "GPipe") || !strings.Contains(r.Sections[1], "DAPPLE") {
		t.Fatal("sections mislabeled")
	}
}

func TestFig7UnevenWins(t *testing.T) {
	r := Fig7(context.Background(), quickOpts)
	if len(r.Rows) != 7 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	// The note records the uneven advantage; it must exceed 1.05x.
	found := false
	for _, n := range r.Notes {
		if strings.Contains(n, "beats the even") && !strings.Contains(n, "1.00x") {
			found = true
		}
	}
	if !found {
		t.Fatalf("uneven advantage missing: %v", r.Notes)
	}
}

func TestFig8SplitWins(t *testing.T) {
	r := Fig8(context.Background(), quickOpts)
	if len(r.Rows) != 2 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	// Round-robin must be slower (tail effect).
	var note string
	for _, n := range r.Notes {
		if strings.Contains(n, "slower") {
			note = n
		}
	}
	if note == "" {
		t.Fatal("tail-effect note missing")
	}
}

// sscan is a tiny fmt.Sscan wrapper to keep imports local.
func sscan(s string, v *int) (int, error) {
	n := 0
	for _, ch := range s {
		if ch < '0' || ch > '9' {
			break
		}
		n = n*10 + int(ch-'0')
	}
	*v = n
	return 1, nil
}
