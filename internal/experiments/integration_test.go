package experiments

// Heavier experiment-level checks: these regenerate the quick variants of the
// planner-driven tables/figures and assert the paper's qualitative claims.
// They are skipped under -short.

import (
	"context"
	"strconv"
	"strings"
	"testing"
)

func TestTable5Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("planner sweep")
	}
	r := Table5(context.Background(), Options{Quick: true})
	if len(r.Rows) != 18 {
		t.Fatalf("%d rows, want 18", len(r.Rows))
	}
	byKey := map[string][]string{}
	for _, row := range r.Rows {
		byKey[strings.Split(row[0], "(")[0]+"/"+row[1]] = row
	}
	// ResNet-50 plans DP everywhere (Table V).
	for _, k := range []string{"A", "B", "C"} {
		if byKey["ResNet-50/"+k][2] != "DP" {
			t.Errorf("ResNet-50/%s: %v, want DP", k, byKey["ResNet-50/"+k])
		}
	}
	// VGG-19 on config C pipelines with a tiny tail stage.
	if row := byKey["VGG-19/C"]; row[2] == "DP" {
		t.Errorf("VGG-19/C should pipeline: %v", row)
	}
	// Every feasible plan reports a sane speedup (<= 16 devices).
	for k, row := range byKey {
		if row[5] == "-" {
			continue
		}
		s, err := strconv.ParseFloat(strings.TrimSuffix(row[5], "x"), 64)
		if err != nil || s <= 1 || s > 16.01 {
			t.Errorf("%s: speedup %q out of range", k, row[5])
		}
	}
}

func TestTable4PolicyOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("planner sweep")
	}
	r := Table4(context.Background(), Options{Quick: true})
	ratios := map[string]float64{}
	for _, row := range r.Rows {
		v, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatalf("row %v", row)
		}
		ratios[row[0]] = v
	}
	// PB never hurts materially, and helps GNMT (the high-ACR workload) at
	// least as much as BERT (the low-ACR one) — Table IV's ordering.
	for m, v := range ratios {
		if v < 0.97 {
			t.Errorf("%s: PB/PA = %.2f, should not regress", m, v)
		}
	}
	if ratios["GNMT-16"] < ratios["BERT-48"]-0.01 {
		t.Errorf("GNMT (high ACR) should gain at least as much as BERT: %v", ratios)
	}
}

func TestFig12Trends(t *testing.T) {
	if testing.Short() {
		t.Skip("planner sweep")
	}
	r := Fig12(context.Background(), Options{Quick: true})
	// Collect per-config hybrid/bestDP ratios.
	perCfg := map[string][]float64{}
	for _, row := range r.Rows {
		if len(row) < 7 || !strings.HasSuffix(row[6], "x") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[6], "x"), 64)
		if err != nil {
			continue
		}
		perCfg[row[1]] = append(perCfg[row[1]], v)
	}
	mean := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if len(perCfg["A"]) == 0 || len(perCfg["C"]) == 0 {
		t.Fatalf("missing configs: %v", perCfg)
	}
	// The slow network benefits most from hybrid parallelism (paper: 1.79x
	// on C vs 1.71/1.37 on A/B at GBS 128).
	if mean(perCfg["C"]) <= mean(perCfg["A"]) {
		t.Errorf("config C advantage %.2f should exceed config A %.2f",
			mean(perCfg["C"]), mean(perCfg["A"]))
	}
}

func TestFig13PlannerAlwaysWins(t *testing.T) {
	if testing.Short() {
		t.Skip("planner sweep")
	}
	r := Fig13(context.Background(), Options{Quick: true})
	for _, row := range r.Rows {
		if len(row) < 5 || !strings.HasSuffix(row[4], "x") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[4], "x"), 64)
		if err != nil {
			t.Fatalf("row %v", row)
		}
		if v < 0.99 {
			t.Errorf("%s: DAPPLE plan loses to PipeDream plan (%.2fx)", row[0], v)
		}
	}
}

func TestFig14HybridScalesPastServerBoundary(t *testing.T) {
	if testing.Short() {
		t.Skip("planner sweep")
	}
	r := Fig14(context.Background(), Options{Quick: true})
	// In quick mode rows are at 8 and 16 GPUs. Hybrid speedup must grow
	// when doubling devices across the server boundary.
	hybrid := map[string]map[string]float64{}
	for _, row := range r.Rows {
		if row[4] == "infeasible" {
			continue
		}
		v, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			continue
		}
		if hybrid[row[0]] == nil {
			hybrid[row[0]] = map[string]float64{}
		}
		hybrid[row[0]][row[1]] = v
	}
	for m, pts := range hybrid {
		if pts["16"] <= pts["8"] {
			t.Errorf("%s: hybrid does not scale 8->16 GPUs (%v)", m, pts)
		}
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("planner sweep")
	}
	for _, id := range []string{"ablation-placement", "ablation-rerank", "ablation-stages"} {
		g := ByID(id)
		if g == nil {
			t.Fatalf("missing %s", id)
		}
		rep := g.Run(context.Background(), Options{Quick: true})
		if len(rep.Rows) == 0 {
			t.Errorf("%s produced no rows", id)
		}
	}
}
