package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanMinMax(t *testing.T) {
	xs := []float64{2, 4, 6}
	if Mean(xs) != 4 || Min(xs) != 2 || Max(xs) != 6 {
		t.Fatal("basic stats broken")
	}
	if Mean(nil) != 0 || Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty input should give zero")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Fatalf("geomean %g", g)
	}
	if GeoMean([]float64{1, -1}) != 0 {
		t.Fatal("non-positive input should give zero")
	}
}

func TestStddev(t *testing.T) {
	if Stddev([]float64{5}) != 0 {
		t.Fatal("single value has zero stddev")
	}
	got := Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2) > 1e-12 {
		t.Fatalf("stddev %g, want 2", got)
	}
}

func TestBytes(t *testing.T) {
	cases := map[int64]string{
		512:       "512B",
		2048:      "2.0KiB",
		3 << 20:   "3.0MiB",
		5 << 30:   "5.0GiB",
		1<<40 + 1: "1.0TiB",
	}
	for in, want := range cases {
		if got := Bytes(in); got != want {
			t.Errorf("Bytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestSeconds(t *testing.T) {
	cases := map[float64]string{
		0:      "0s",
		5e-6:   "5.0µs",
		2.5e-3: "2.5ms",
		1.25:   "1.25s",
	}
	for in, want := range cases {
		if got := Seconds(in); got != want {
			t.Errorf("Seconds(%g) = %q, want %q", in, got, want)
		}
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 || Ratio(1, 0) != 0 {
		t.Fatal("ratio broken")
	}
}

// Property: mean is within [min, max] and geomean <= mean for positives.
func TestMeanBoundsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				// Fold into a sane positive range; astronomically large
				// inputs overflow any mean and are not a use case here.
				xs = append(xs, math.Mod(math.Abs(x), 1e6)+0.1)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		if m < Min(xs)-1e-9 || m > Max(xs)+1e-9 {
			return false
		}
		return GeoMean(xs) <= m+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
