// Package stats provides the small numeric and formatting helpers the
// experiment harness shares: means, geometric means, ratios, and byte/second
// pretty-printers.
package stats

import (
	"fmt"
	"math"
)

// Mean returns the arithmetic mean, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of positive values, or 0 when any value
// is non-positive or the input is empty.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Max returns the maximum, or 0 for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum, or 0 for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Stddev returns the population standard deviation.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mu := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - mu
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Bytes formats a byte count with binary units.
func Bytes(b int64) string {
	const unit = 1024
	if b < unit {
		return fmt.Sprintf("%dB", b)
	}
	div, exp := int64(unit), 0
	for n := b / unit; n >= unit; n /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f%ciB", float64(b)/float64(div), "KMGTPE"[exp])
}

// BytesF is Bytes for float64 byte counts.
func BytesF(b float64) string { return Bytes(int64(b)) }

// Seconds formats a duration in engineering units.
func Seconds(s float64) string {
	switch {
	case s <= 0:
		return "0s"
	case s < 1e-3:
		return fmt.Sprintf("%.1fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.1fms", s*1e3)
	default:
		return fmt.Sprintf("%.2fs", s)
	}
}

// Ratio returns a/b, or 0 when b is 0.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
