package sim

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randomGraph builds a DAG stressing every tie-break path: quantized
// durations (so distinct tasks collide on start times), zero-duration and
// NoResource tasks, inverted priorities, and memory events on a few devices.
func randomGraph(rng *rand.Rand) *Graph {
	g := NewGraph()
	nRes := rng.Intn(5) + 1
	for i := 0; i < nRes; i++ {
		g.Resource(string(rune('a' + i)))
	}
	n := rng.Intn(120) + 2
	var ids []TaskID
	for i := 0; i < n; i++ {
		res := rng.Intn(nRes)
		if rng.Intn(8) == 0 {
			res = NoResource
		}
		t := Task{
			Name:     "t",
			Resource: res,
			Duration: float64(rng.Intn(5)) * 0.5, // quantized: forces start-time ties
			Priority: rng.Intn(3) - 1,
		}
		if rng.Intn(3) == 0 {
			t.MemDevice = rng.Intn(3)
			t.AllocBytes = int64(rng.Intn(100))
			t.FreeBytes = int64(rng.Intn(100))
		}
		id := g.Add(t)
		for k := 0; k < 3 && i > 0; k++ {
			if rng.Intn(2) == 0 {
				g.AddDep(id, ids[rng.Intn(i)])
			}
		}
		ids = append(ids, id)
	}
	return g
}

// sameResult asserts byte-identical outcomes of the two engines: spans (in
// execution order), makespan, busy time, peaks and traces.
func sameResult(t *testing.T, want, got *Result) bool {
	t.Helper()
	if !reflect.DeepEqual(want.Spans, got.Spans) {
		for i := range want.Spans {
			if i < len(got.Spans) && want.Spans[i] != got.Spans[i] {
				t.Logf("span %d: reference %+v, event-driven %+v", i, want.Spans[i], got.Spans[i])
				break
			}
		}
		t.Errorf("spans differ (%d vs %d)", len(want.Spans), len(got.Spans))
		return false
	}
	if want.Makespan != got.Makespan {
		t.Errorf("makespan %g vs %g", want.Makespan, got.Makespan)
		return false
	}
	if !reflect.DeepEqual(want.BusyTime, got.BusyTime) {
		t.Errorf("busy time %v vs %v", want.BusyTime, got.BusyTime)
		return false
	}
	if !reflect.DeepEqual(want.PeakMem, got.PeakMem) {
		t.Errorf("peaks %v vs %v", want.PeakMem, got.PeakMem)
		return false
	}
	if !reflect.DeepEqual(want.MemTrace, got.MemTrace) {
		t.Errorf("memory traces differ")
		return false
	}
	if !reflect.DeepEqual(want.Resources, got.Resources) {
		t.Errorf("resources %v vs %v", want.Resources, got.Resources)
		return false
	}
	return true
}

// TestEngineEquivalenceRandomDAGs cross-checks the event-driven engine
// against the pre-rewrite linear-scan engine on randomized DAGs.
func TestEngineEquivalenceRandomDAGs(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(rand.New(rand.NewSource(seed)))
		return sameResult(t, g.RunReference(), g.Run())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestSpansInExecutionOrder pins the Result.Spans contract: starts are
// non-decreasing. (Equal-start runs follow the engine's pick order, which
// dependency chains through zero-duration tasks keep from being a plain
// (priority, ID) sort — so only monotonicity is asserted.)
func TestSpansInExecutionOrder(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(rand.New(rand.NewSource(seed)))
		res := g.Run()
		for i := 1; i < len(res.Spans); i++ {
			prev, cur := res.Spans[i-1], res.Spans[i]
			if cur.Start < prev.Start {
				t.Errorf("span %d starts at %g after a span starting at %g", i, cur.Start, prev.Start)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestAllocBeforeFreeAtSameInstant is the regression test for the
// memory-event ordering fix: a task B allocating at the exact instant a task
// A ends must see A's footprint still resident, so the device peak counts
// both. The pre-fix engine applied events in insertion order, letting A's
// free land first and under-counting the peak by A's bytes.
func TestAllocBeforeFreeAtSameInstant(t *testing.T) {
	build := func() *Graph {
		g := NewGraph()
		r1, r2 := g.Resource("r1"), g.Resource("r2")
		// A runs [0,1) on r1 holding 100 bytes, freed at t=1.
		g.Add(Task{Name: "A", Resource: r1, Duration: 1, MemDevice: 0, AllocBytes: 100, FreeBytes: 100})
		// C delays B to t=1 without touching memory.
		c := g.Add(Task{Name: "C", Resource: r2, Duration: 1})
		// B allocates 100 bytes at t=1 — the instant A's free lands.
		b := g.Add(Task{Name: "B", Resource: r2, Duration: 1, MemDevice: 0, AllocBytes: 100})
		g.AddDep(b, c)
		return g
	}
	for name, res := range map[string]*Result{
		"event-driven": build().Run(),
		"reference":    build().RunReference(),
	} {
		if res.PeakMem[0] != 200 {
			t.Errorf("%s: peak %d, want 200 (alloc at t=1 must apply before the free at t=1)",
				name, res.PeakMem[0])
		}
		last := res.MemTrace[0][len(res.MemTrace[0])-1]
		if last.Bytes != 100 {
			t.Errorf("%s: final residency %d, want 100", name, last.Bytes)
		}
	}
}

// TestGraphReuse exercises Reset: rebuilding a different graph on the same
// Graph must produce results identical to a fresh build, with interned
// resources preserved.
func TestGraphReuse(t *testing.T) {
	g := NewGraph()
	rng := rand.New(rand.NewSource(7))
	build := func(g *Graph, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		nRes := 3
		for i := 0; i < nRes; i++ {
			g.Resource(string(rune('a' + i)))
		}
		var ids []TaskID
		for i := 0; i < 50+int(seed%17); i++ {
			id := g.Add(Task{
				Resource: rng.Intn(nRes), Duration: float64(rng.Intn(4)) * 0.25,
				Priority: rng.Intn(2), MemDevice: rng.Intn(2), AllocBytes: int64(rng.Intn(50) + 1),
			})
			if i > 0 && rng.Intn(2) == 0 {
				g.AddDep(id, ids[rng.Intn(i)])
			}
			ids = append(ids, id)
		}
	}
	for trial := 0; trial < 10; trial++ {
		seed := rng.Int63n(1000)
		g.Reset()
		build(g, seed)
		fresh := NewGraph()
		build(fresh, seed)
		if !sameResult(t, fresh.Run(), g.Run()) {
			t.Fatalf("trial %d (seed %d): reused graph diverged from fresh graph", trial, seed)
		}
	}
}
