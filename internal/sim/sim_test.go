package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSequentialOnOneResource(t *testing.T) {
	g := NewGraph()
	r := g.Resource("dev")
	a := g.Add(Task{Name: "a", Resource: r, Duration: 1})
	b := g.Add(Task{Name: "b", Resource: r, Duration: 2})
	_ = a
	_ = b
	res := g.Run()
	if res.Makespan != 3 {
		t.Fatalf("makespan %g, want 3", res.Makespan)
	}
	if res.BusyTime[r] != 3 {
		t.Fatalf("busy %g", res.BusyTime[r])
	}
	if res.Utilization(r) != 1 {
		t.Fatalf("utilization %g", res.Utilization(r))
	}
}

func TestDependencyOrdering(t *testing.T) {
	g := NewGraph()
	r1, r2 := g.Resource("d1"), g.Resource("d2")
	a := g.Add(Task{Name: "a", Resource: r1, Duration: 5})
	b := g.Add(Task{Name: "b", Resource: r2, Duration: 1})
	g.AddDep(b, a)
	res := g.Run()
	var bSpan Span
	for _, s := range res.Spans {
		if s.Name == "b" {
			bSpan = s
		}
	}
	if bSpan.Start != 5 {
		t.Fatalf("b starts at %g, want 5", bSpan.Start)
	}
	if res.Makespan != 6 {
		t.Fatalf("makespan %g", res.Makespan)
	}
}

func TestParallelResources(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 4; i++ {
		g.Add(Task{Name: "t", Resource: g.Resource(string(rune('a' + i))), Duration: 2})
	}
	res := g.Run()
	if res.Makespan != 2 {
		t.Fatalf("independent tasks should run in parallel: makespan %g", res.Makespan)
	}
}

func TestPriorityTieBreak(t *testing.T) {
	g := NewGraph()
	r := g.Resource("dev")
	lo := g.Add(Task{Name: "lo", Resource: r, Duration: 1, Priority: 2})
	hi := g.Add(Task{Name: "hi", Resource: r, Duration: 1, Priority: 1})
	_ = lo
	_ = hi
	res := g.Run()
	if res.Spans[0].Name != "hi" {
		t.Fatalf("priority ignored: first span %s", res.Spans[0].Name)
	}
}

func TestNoResourceTask(t *testing.T) {
	g := NewGraph()
	r := g.Resource("dev")
	barrier := g.Add(Task{Name: "barrier", Resource: NoResource})
	work := g.Add(Task{Name: "w", Resource: r, Duration: 1})
	g.AddDep(work, barrier)
	res := g.Run()
	if res.Makespan != 1 {
		t.Fatalf("makespan %g", res.Makespan)
	}
}

func TestMemoryAccounting(t *testing.T) {
	g := NewGraph()
	r := g.Resource("dev")
	a := g.Add(Task{Name: "a", Resource: r, Duration: 1, MemDevice: 0, AllocBytes: 100})
	b := g.Add(Task{Name: "b", Resource: r, Duration: 1, MemDevice: 0, AllocBytes: 50, FreeBytes: 150})
	g.AddDep(b, a)
	res := g.Run()
	if res.PeakMem[0] != 150 {
		t.Fatalf("peak %d, want 150", res.PeakMem[0])
	}
	trace := res.MemTrace[0]
	last := trace[len(trace)-1]
	if last.Bytes != 0 {
		t.Fatalf("final memory %d, want 0", last.Bytes)
	}
}

func TestCycleDetection(t *testing.T) {
	g := NewGraph()
	r := g.Resource("dev")
	a := g.Add(Task{Name: "a", Resource: r, Duration: 1})
	b := g.Add(Task{Name: "b", Resource: r, Duration: 1})
	g.AddDep(a, b)
	g.AddDep(b, a)
	defer func() {
		if recover() == nil {
			t.Fatal("expected cycle panic")
		}
	}()
	g.Run()
}

func TestValidate(t *testing.T) {
	g := NewGraph()
	g.Add(Task{Name: "neg", Resource: NoResource, Duration: -1})
	if err := g.Validate(); err == nil {
		t.Fatal("expected error for negative duration")
	}
	g2 := NewGraph()
	id := g2.Add(Task{Name: "ok", Resource: NoResource})
	g2.AddDep(id, TaskID(99))
	if err := g2.Validate(); err == nil {
		t.Fatal("expected error for unknown dependency")
	}
}

func TestDeterminism(t *testing.T) {
	build := func() *Graph {
		g := NewGraph()
		rng := rand.New(rand.NewSource(5))
		var prev TaskID = -1
		for i := 0; i < 200; i++ {
			r := g.Resource(string(rune('a' + i%7)))
			id := g.Add(Task{Name: "t", Resource: r, Duration: rng.Float64()})
			if prev >= 0 && i%3 == 0 {
				g.AddDep(id, prev)
			}
			prev = id
		}
		return g
	}
	a := build().Run()
	b := build().Run()
	if a.Makespan != b.Makespan || len(a.Spans) != len(b.Spans) {
		t.Fatal("runs differ")
	}
	for i := range a.Spans {
		if a.Spans[i] != b.Spans[i] {
			t.Fatalf("span %d differs", i)
		}
	}
}

// Property: makespan is at least the critical path lower bound (longest
// chain) and at least the busiest resource's total work.
func TestMakespanBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewGraph()
		nRes := rng.Intn(4) + 1
		for i := 0; i < nRes; i++ {
			g.Resource(string(rune('a' + i)))
		}
		n := rng.Intn(40) + 2
		durs := make([]float64, n)
		longest := make([]float64, n)
		resWork := make([]float64, nRes)
		var ids []TaskID
		for i := 0; i < n; i++ {
			durs[i] = rng.Float64()
			r := rng.Intn(nRes)
			id := g.Add(Task{Name: "t", Resource: r, Duration: durs[i]})
			longest[i] = durs[i]
			// Random deps on earlier tasks (keeps it acyclic).
			for k := 0; k < 2 && i > 0; k++ {
				d := rng.Intn(i)
				g.AddDep(id, ids[d])
				if longest[d]+durs[i] > longest[i] {
					longest[i] = longest[d] + durs[i]
				}
			}
			resWork[r] += durs[i]
			ids = append(ids, id)
		}
		res := g.Run()
		var lb float64
		for _, l := range longest {
			lb = math.Max(lb, l)
		}
		for _, w := range resWork {
			lb = math.Max(lb, w)
		}
		return res.Makespan >= lb-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: spans on one resource never overlap.
func TestNoResourceOverlapProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewGraph()
		for i := 0; i < 3; i++ {
			g.Resource(string(rune('x' + i)))
		}
		var ids []TaskID
		for i := 0; i < 60; i++ {
			id := g.Add(Task{Name: "t", Resource: rng.Intn(3), Duration: rng.Float64() * 2})
			if i > 0 && rng.Intn(2) == 0 {
				g.AddDep(id, ids[rng.Intn(i)])
			}
			ids = append(ids, id)
		}
		res := g.Run()
		byRes := map[int][]Span{}
		for _, s := range res.Spans {
			byRes[s.Resource] = append(byRes[s.Resource], s)
		}
		for _, spans := range byRes {
			for i := 1; i < len(spans); i++ {
				if spans[i].Start < spans[i-1].End-1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAvgUtilizationAndPeaks(t *testing.T) {
	g := NewGraph()
	r1, r2 := g.Resource("a"), g.Resource("b")
	g.Add(Task{Resource: r1, Duration: 2, MemDevice: 0, AllocBytes: 10})
	g.Add(Task{Resource: r2, Duration: 1, MemDevice: 1, AllocBytes: 30})
	res := g.Run()
	if got := res.AvgUtilization(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("avg utilization %g", got)
	}
	if res.MaxPeakMem() != 30 {
		t.Fatalf("max peak %d", res.MaxPeakMem())
	}
	if got := res.AvgPeakMem(); math.Abs(got-20) > 1e-12 {
		t.Fatalf("avg peak %g", got)
	}
}

func TestResourceIndex(t *testing.T) {
	g := NewGraph()
	g.Resource("a")
	g.Resource("b")
	res := g.Run()
	if res.ResourceIndex("b") != 1 || res.ResourceIndex("zz") != -1 {
		t.Fatal("ResourceIndex broken")
	}
}
