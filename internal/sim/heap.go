package sim

// Scheduler data structures of the event-driven engine. The runnable set is
// split per resource into two heaps plus one indexed global heap, giving each
// task O(log n) total instead of the reference engine's linear scan per pick:
//
//   - future[r] holds tasks whose dependency-ready time still exceeds the
//     resource's free time, keyed (ready, priority, ID). Its top is the
//     earliest-startable future task of r.
//   - now[r] holds tasks startable the moment r frees (ready <= free time),
//     keyed (priority, ID) only — they all share start = freeTime, which the
//     key need not repeat because it shifts uniformly as the resource runs.
//   - the global heap holds one candidate per resource — its cheapest
//     runnable task under (start, priority, ID) — indexed by resource so a
//     resource's entry is fixed in place whenever its candidate changes.
//
// A task migrates from future[r] to now[r] at most once (free times only
// grow), so every task costs a bounded number of heap operations. The
// candidate comparison is the same (earliest start, priority, task ID) order
// the reference engine's scan uses, and task IDs make every key unique, so
// the pick sequence — and therefore the Result — is byte-identical.

// heapItem is one runnable task: start is its key time (dependency-ready
// time in future heaps; unused in now heaps, where the resource free time
// rules).
type heapItem struct {
	start float64
	prio  int
	id    TaskID
}

// less orders items by (start, priority, task ID) — the engine's pick order.
func (a heapItem) less(b heapItem) bool {
	if a.start != b.start {
		return a.start < b.start
	}
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.id < b.id
}

// nowLess orders items by (priority, task ID): the key of now-heaps, whose
// members all share the resource's free time as start.
func (a heapItem) nowLess(b heapItem) bool {
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.id < b.id
}

// taskHeap is a binary min-heap of heapItems under the given comparator. It
// is hand-rolled rather than container/heap to keep push/pop free of
// interface dispatch and allocation on the engine's hot path.
type taskHeap struct {
	items []heapItem
	now   bool // use nowLess instead of less
}

func (h *taskHeap) less(i, j int) bool {
	if h.now {
		return h.items[i].nowLess(h.items[j])
	}
	return h.items[i].less(h.items[j])
}

func (h *taskHeap) push(it heapItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *taskHeap) pop() heapItem {
	s := h.items
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	h.items = s[:last]
	if last > 0 {
		h.siftDown(0)
	}
	return top
}

func (h *taskHeap) siftDown(i int) {
	n := len(h.items)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h.less(r, l) {
			m = r
		}
		if !h.less(m, i) {
			return
		}
		h.items[i], h.items[m] = h.items[m], h.items[i]
		i = m
	}
}

// resCand is one global-heap entry: resource res's current candidate key.
type resCand struct {
	key heapItem
	res int32
}

// globalHeap is an indexed min-heap of per-resource candidates: pos[res]
// tracks each resource's slot so update and remove fix the entry in place.
type globalHeap struct {
	items []resCand
	pos   []int32 // index into items, -1 when the resource has no entry
}

func newGlobalHeap(nRes int) *globalHeap {
	g := &globalHeap{
		items: make([]resCand, 0, nRes),
		pos:   make([]int32, nRes),
	}
	for i := range g.pos {
		g.pos[i] = -1
	}
	return g
}

// update inserts or reorders resource res with the given candidate key.
func (g *globalHeap) update(res int32, key heapItem) {
	if p := g.pos[res]; p >= 0 {
		g.items[p].key = key
		g.fix(int(p))
		return
	}
	g.items = append(g.items, resCand{key: key, res: res})
	i := len(g.items) - 1
	g.pos[res] = int32(i)
	g.siftUp(i)
}

// remove deletes resource res's entry, if present.
func (g *globalHeap) remove(res int32) {
	p := g.pos[res]
	if p < 0 {
		return
	}
	last := len(g.items) - 1
	g.items[p] = g.items[last]
	g.items = g.items[:last]
	g.pos[res] = -1
	if int(p) < last {
		g.pos[g.items[p].res] = p
		g.fix(int(p))
	}
}

func (g *globalHeap) fix(i int) {
	g.siftUp(i)
	g.siftDown(i)
}

func (g *globalHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !g.items[i].key.less(g.items[parent].key) {
			return
		}
		g.swap(i, parent)
		i = parent
	}
}

func (g *globalHeap) siftDown(i int) {
	n := len(g.items)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && g.items[r].key.less(g.items[l].key) {
			m = r
		}
		if !g.items[m].key.less(g.items[i].key) {
			return
		}
		g.swap(i, m)
		i = m
	}
}

func (g *globalHeap) swap(i, j int) {
	g.items[i], g.items[j] = g.items[j], g.items[i]
	g.pos[g.items[i].res] = int32(i)
	g.pos[g.items[j].res] = int32(j)
}
