package sim

import (
	"math"
	"sort"
)

// RunReference executes the graph with the pre-rewrite O(n·|runnable|)
// engine: every step linearly scans the runnable set for the task that can
// start earliest (ties by priority, then task ID), and memory events replay
// through an independent sort-then-scan pass rather than the engine's
// merge, so the differential tests cover memory accounting too. It is
// retained solely as the oracle for the event-driven engine — equivalence
// tests assert byte-identical Results from both on randomized DAGs and on
// every zoo-model schedule — and as the baseline of the simulator
// microbenchmarks. New code should call Run or RunContext.
//
// One deliberate deviation from the pre-rewrite binary: that engine ended by
// cosmetically re-sorting Spans by (Start, Task ID), which this oracle does
// not reproduce, because Result.Spans' contract is now execution order.
// Cross-resource ties at equal start times can therefore appear in a
// different order than the old binary printed; every in-tree consumer
// (Gantt paints cells by position, WriteChrome re-sorts by timestamp,
// per-resource scans) is insensitive to it. Scheduling decisions, span
// contents, makespan, busy time and memory accounting are unchanged.
func (g *Graph) RunReference() *Result {
	n := len(g.tasks)
	indeg := make([]int, n)
	children := make([][]TaskID, n)
	for i := range g.tasks {
		t := &g.tasks[i]
		indeg[i] = len(t.deps)
		for _, d := range t.deps {
			children[d] = append(children[d], TaskID(i))
		}
	}

	ready := make([]float64, n) // earliest start from dependencies
	resFree := make([]float64, len(g.resources))

	// runnable holds tasks whose deps are satisfied.
	var runnable []TaskID
	for i := range g.tasks {
		if indeg[i] == 0 {
			runnable = append(runnable, TaskID(i))
		}
	}

	res := &Result{
		Resources: append([]string(nil), g.resources...),
		BusyTime:  make([]float64, len(g.resources)),
		PeakMem:   make([]int64, g.memDevs),
		MemTrace:  make([][]MemPoint, g.memDevs),
		resIndex:  g.resIndex,
	}
	// refEvent is this engine's own memory-event record: one flat list,
	// replayed by sorting, independent of the engine's two-stream merge.
	type refEvent struct {
		time  float64
		delta int64
		dev   int
		free  bool
		order int
	}
	var events []refEvent

	for executed := 0; executed < n; executed++ {
		if len(runnable) == 0 {
			panic("sim: dependency cycle in task graph")
		}
		// Pick the runnable task that can start earliest.
		best, bestStart := -1, math.Inf(1)
		for i, id := range runnable {
			t := &g.tasks[id]
			start := ready[id]
			if t.Resource != NoResource && resFree[t.Resource] > start {
				start = resFree[t.Resource]
			}
			better := start < bestStart
			if !better && start == bestStart {
				b := &g.tasks[runnable[best]]
				if t.Priority != b.Priority {
					better = t.Priority < b.Priority
				} else {
					better = id < runnable[best]
				}
			}
			if better {
				best, bestStart = i, start
			}
		}
		id := runnable[best]
		runnable[best] = runnable[len(runnable)-1]
		runnable = runnable[:len(runnable)-1]

		t := &g.tasks[id]
		start := bestStart
		end := start + t.Duration
		if t.Resource != NoResource {
			resFree[t.Resource] = end
			res.BusyTime[t.Resource] += t.Duration
		}
		res.Spans = append(res.Spans, Span{
			Task: id, Name: t.Name, Kind: t.Kind, Resource: t.Resource,
			Start: start, End: end,
		})
		if end > res.Makespan {
			res.Makespan = end
		}
		if t.MemDevice >= 0 {
			if t.AllocBytes != 0 {
				events = append(events, refEvent{start, t.AllocBytes, t.MemDevice, false, len(events)})
			}
			if t.FreeBytes != 0 {
				events = append(events, refEvent{end, -t.FreeBytes, t.MemDevice, true, len(events)})
			}
		}
		for _, c := range children[id] {
			if ready[c] < end {
				ready[c] = end
			}
			indeg[c]--
			if indeg[c] == 0 {
				runnable = append(runnable, c)
			}
		}
	}

	// Replay in time order, allocations before frees at equal instants and
	// emission order within each class — the same semantics the engine's
	// alloc/free merge implements, derived here by an independent route.
	sort.Slice(events, func(i, j int) bool {
		if events[i].time != events[j].time {
			return events[i].time < events[j].time
		}
		if events[i].free != events[j].free {
			return !events[i].free
		}
		return events[i].order < events[j].order
	})
	curMem := make([]int64, g.memDevs)
	for _, ev := range events {
		curMem[ev.dev] += ev.delta
		if curMem[ev.dev] > res.PeakMem[ev.dev] {
			res.PeakMem[ev.dev] = curMem[ev.dev]
		}
		res.MemTrace[ev.dev] = append(res.MemTrace[ev.dev], MemPoint{ev.time, curMem[ev.dev]})
	}
	return res
}
