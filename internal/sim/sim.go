// Package sim is a deterministic discrete-event simulator for dependent task
// graphs over exclusive resources (devices, network links). It substitutes
// for the paper's TensorFlow runtime on GPU clusters: schedule builders emit
// tasks with data/control dependencies, and the engine produces per-task
// timelines, resource utilization, and byte-accurate memory traces.
//
// Semantics: every task optionally occupies one resource for Duration
// seconds; a task becomes ready when all dependencies have finished; a
// resource executes one task at a time. Among runnable tasks the engine picks
// the one that can start earliest, breaking ties by priority then insertion
// order, which makes runs fully deterministic.
//
// The engine is event-driven: runnable tasks wait in an indexed min-heap
// keyed by (earliest start, priority, task ID) with per-resource free-time
// tracking, so each of n tasks costs O(log n) instead of a linear scan over
// the runnable set. RunReference keeps the pre-rewrite O(n·|runnable|) engine
// as the differential-testing oracle; both produce byte-identical Results.
package sim

import (
	"context"
	"fmt"
	"sort"
)

// TaskID identifies a task within a Graph.
type TaskID int

// NoResource marks tasks that consume no resource time (pure ordering nodes).
const NoResource = -1

// Task is one unit of simulated work.
type Task struct {
	ID       TaskID
	Name     string
	Kind     string // free-form label surfaced in traces ("fwd", "bwd", "comm", "allreduce", ...)
	Resource int    // executing resource, or NoResource
	Duration float64
	Priority int // lower runs first among simultaneously-startable tasks

	// Memory accounting: AllocBytes are charged to MemDevice when the task
	// starts, FreeBytes credited when it ends. MemDevice < 0 disables it.
	AllocBytes int64
	FreeBytes  int64
	MemDevice  int

	deps []TaskID
}

// Graph is a task DAG under construction. A Graph is reusable: Reset clears
// the tasks while retaining interned resources and every task/dependency
// buffer, so schedule sweeps rebuild iterations without reallocating.
type Graph struct {
	tasks     []Task
	resources []string
	resIndex  map[string]int

	// Counts maintained by Add/AddDep so RunContext can size every buffer
	// exactly instead of growing them.
	memDevs int // 1 + highest MemDevice of any task
	nDeps   int // total dependency edges
	nAllocs int // tasks charging AllocBytes
	nFrees  int // tasks crediting FreeBytes
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{resIndex: map[string]int{}}
}

// Resource interns a named resource and returns its index.
func (g *Graph) Resource(name string) int {
	if i, ok := g.resIndex[name]; ok {
		return i
	}
	i := len(g.resources)
	g.resources = append(g.resources, name)
	g.resIndex[name] = i
	return i
}

// NumTasks returns the number of tasks added so far.
func (g *Graph) NumTasks() int { return len(g.tasks) }

// Add appends a task and returns its ID. The task's ID field is filled in.
func (g *Graph) Add(t Task) TaskID {
	id := TaskID(len(g.tasks))
	t.ID = id
	if t.MemDevice == 0 && t.AllocBytes == 0 && t.FreeBytes == 0 {
		t.MemDevice = -1
	}
	if t.MemDevice >= 0 {
		if t.MemDevice+1 > g.memDevs {
			g.memDevs = t.MemDevice + 1
		}
		if t.AllocBytes != 0 {
			g.nAllocs++
		}
		if t.FreeBytes != 0 {
			g.nFrees++
		}
	}
	if len(g.tasks) < cap(g.tasks) {
		// Reuse the slot (and its dependency buffer) retired by Reset.
		g.tasks = g.tasks[:id+1]
		if t.deps == nil {
			t.deps = g.tasks[id].deps[:0]
		}
		g.tasks[id] = t
	} else {
		g.tasks = append(g.tasks, t)
	}
	return id
}

// AddDep records that task depends on dep.
func (g *Graph) AddDep(task, dep TaskID) {
	if dep < 0 || task < 0 {
		return
	}
	t := &g.tasks[task]
	t.deps = append(t.deps, dep)
	g.nDeps++
}

// Reset clears the graph's tasks while keeping interned resources and the
// capacity of every internal buffer, so the next build of a similarly-shaped
// graph (a schedule sweep varying policy or micro-batch count) allocates
// almost nothing.
func (g *Graph) Reset() {
	g.tasks = g.tasks[:0]
	g.memDevs = 0
	g.nDeps = 0
	g.nAllocs = 0
	g.nFrees = 0
}

// Task returns the task with the given id (for inspection in tests). The
// pointer is invalidated by the next Add or Reset.
func (g *Graph) Task(id TaskID) *Task { return &g.tasks[id] }

// Span is one executed task in the result timeline.
type Span struct {
	Task       TaskID
	Name, Kind string
	Resource   int
	Start, End float64
}

// MemPoint is one step of a device's memory-over-time trace.
type MemPoint struct {
	Time  float64
	Bytes int64
}

// Result is the outcome of executing a Graph.
type Result struct {
	// Spans lists the executed tasks in execution order: Start is
	// non-decreasing, and tasks starting at the same instant appear in the
	// engine's deterministic pick order. (That order is not simply
	// (priority, task ID) within an equal-start run: a zero-duration task
	// picked earlier can enable a child that also starts at the same
	// instant, which then competes under its own key.)
	Spans     []Span
	Makespan  float64
	Resources []string

	// BusyTime per resource; utilization is BusyTime/Makespan.
	BusyTime []float64

	// PeakMem and MemTrace are dense slices indexed by memory-device id; a
	// device that never allocated has peak 0 and a nil trace. Use Peak and
	// Trace for range-safe access.
	PeakMem  []int64
	MemTrace [][]MemPoint

	// resIndex is the graph's interned name->index map, carried into the
	// result so ResourceIndex is O(1) instead of a scan per call.
	resIndex map[string]int
}

// ResourceIndex returns the index of the named resource, or -1.
func (r *Result) ResourceIndex(name string) int {
	if r.resIndex != nil {
		if i, ok := r.resIndex[name]; ok && i < len(r.Resources) {
			return i
		}
		return -1
	}
	for i, n := range r.Resources {
		if n == name {
			return i
		}
	}
	return -1
}

// Peak returns device dev's peak bytes, 0 when it never allocated.
func (r *Result) Peak(dev int) int64 {
	if dev < 0 || dev >= len(r.PeakMem) {
		return 0
	}
	return r.PeakMem[dev]
}

// Trace returns device dev's memory-over-time trace, nil when it has none.
func (r *Result) Trace(dev int) []MemPoint {
	if dev < 0 || dev >= len(r.MemTrace) {
		return nil
	}
	return r.MemTrace[dev]
}

// Utilization returns resource r's busy fraction of the makespan.
func (r *Result) Utilization(res int) float64 {
	if r.Makespan == 0 {
		return 0
	}
	return r.BusyTime[res] / r.Makespan
}

// AvgUtilization averages utilization over the given resources, or all when
// none are specified.
func (r *Result) AvgUtilization(res ...int) float64 {
	if len(res) == 0 {
		for i := range r.Resources {
			res = append(res, i)
		}
	}
	var sum float64
	for _, i := range res {
		sum += r.Utilization(i)
	}
	return sum / float64(len(res))
}

// MaxPeakMem returns the largest per-device peak.
func (r *Result) MaxPeakMem() int64 {
	var m int64
	for _, v := range r.PeakMem {
		if v > m {
			m = v
		}
	}
	return m
}

// AvgPeakMem returns the mean per-device peak across devices that allocated.
func (r *Result) AvgPeakMem() float64 {
	var sum float64
	n := 0
	for _, v := range r.PeakMem {
		if v > 0 {
			sum += float64(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Run executes the graph and returns its timeline. It panics on dependency
// cycles (a builder bug, not an input condition).
func (g *Graph) Run() *Result {
	res, err := g.RunContext(context.Background())
	if err != nil { // unreachable: Background is never cancelled
		panic(err)
	}
	return res
}

// ctxCheckStride bounds how many tasks execute between context checks; large
// graphs (GPipe floods build O(stages x M) tasks) stay responsive to
// cancellation without paying an atomic load per task.
const ctxCheckStride = 512

// memEvent is one pending memory-accounting step: delta bytes on device dev
// at the given time. ord is the emission order, the tie-break among frees
// sharing a timestamp.
type memEvent struct {
	time  float64
	delta int64
	dev   int32
	ord   int32
}

// RunContext is Run under a context: execution stops between tasks once ctx
// is cancelled or past its deadline, returning ctx's error and no result.
func (g *Graph) RunContext(ctx context.Context) (*Result, error) {
	n := len(g.tasks)

	// Dependency state in CSR form, sized exactly from the counts Add and
	// AddDep maintain.
	indeg := make([]int32, n)
	childOff := make([]int32, n+1)
	for i := range g.tasks {
		t := &g.tasks[i]
		indeg[i] = int32(len(t.deps))
		for _, d := range t.deps {
			childOff[d+1]++
		}
	}
	for i := 0; i < n; i++ {
		childOff[i+1] += childOff[i]
	}
	children := make([]int32, g.nDeps)
	cursor := make([]int32, n)
	copy(cursor, childOff[:n])
	for i := range g.tasks {
		for _, d := range g.tasks[i].deps {
			children[cursor[d]] = int32(i)
			cursor[d]++
		}
	}

	readyAt := make([]float64, n) // earliest start from dependencies
	resFree := make([]float64, len(g.resources))

	res := &Result{
		Spans:     make([]Span, 0, n),
		Resources: append([]string(nil), g.resources...),
		BusyTime:  make([]float64, len(g.resources)),
		PeakMem:   make([]int64, g.memDevs),
		MemTrace:  make([][]MemPoint, g.memDevs),
		resIndex:  g.resIndex,
	}
	allocs := make([]memEvent, 0, g.nAllocs)
	frees := make([]memEvent, 0, g.nFrees)

	// Runnable tasks live in per-resource now/future heaps; the indexed
	// global heap tracks each resource's cheapest candidate under the
	// engine's (earliest start, priority, task ID) pick order. NoResource
	// tasks share one pseudo-resource whose free time never moves, so their
	// start is always their ready time. See heap.go for the invariants.
	nowQ := make([]taskHeap, len(g.resources)+1)
	futQ := make([]taskHeap, len(g.resources)+1)
	for r := range nowQ {
		nowQ[r].now = true
	}
	pseudo := int32(len(g.resources)) // the NoResource queue
	global := newGlobalHeap(len(g.resources) + 1)

	// refresh recomputes resource r's global candidate. now-tasks start at
	// the resource free time and beat every future task (whose ready time is
	// strictly later by the migration invariant), so the candidate is the
	// now-top when one exists, else the future-top.
	refresh := func(r int32) {
		switch {
		case len(nowQ[r].items) > 0:
			top := nowQ[r].items[0]
			top.start = resFree[r]
			global.update(r, top)
		case len(futQ[r].items) > 0:
			global.update(r, futQ[r].items[0])
		default:
			global.remove(r)
		}
	}

	// enqueue files a task that just became runnable under its resource.
	enqueue := func(id TaskID, ready float64) {
		t := &g.tasks[id]
		it := heapItem{start: ready, prio: t.Priority, id: id}
		r := pseudo
		if t.Resource != NoResource {
			r = int32(t.Resource)
		}
		if r != pseudo && ready <= resFree[r] {
			nowQ[r].push(it)
		} else {
			futQ[r].push(it)
		}
		refresh(r)
	}

	for i := range g.tasks {
		if indeg[i] == 0 {
			enqueue(TaskID(i), 0)
		}
	}

	for executed := 0; executed < n; executed++ {
		if executed%ctxCheckStride == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if len(global.items) == 0 {
			panic("sim: dependency cycle in task graph")
		}
		r := global.items[0].res
		var it heapItem
		var start float64
		if r != pseudo && len(nowQ[r].items) > 0 {
			it = nowQ[r].pop()
			start = resFree[r]
		} else {
			it = futQ[r].pop()
			start = it.start
		}
		t := &g.tasks[it.id]
		end := start + t.Duration
		if t.Resource != NoResource {
			resFree[t.Resource] = end
			res.BusyTime[t.Resource] += t.Duration
			// The resource is busy until end: every future task now ready by
			// then joins the now-heap (each migrates at most once).
			for len(futQ[r].items) > 0 && futQ[r].items[0].start <= end {
				nowQ[r].push(futQ[r].pop())
			}
		}
		refresh(r)
		res.Spans = append(res.Spans, Span{
			Task: it.id, Name: t.Name, Kind: t.Kind, Resource: t.Resource,
			Start: start, End: end,
		})
		if end > res.Makespan {
			res.Makespan = end
		}
		if t.MemDevice >= 0 {
			if t.AllocBytes != 0 {
				allocs = append(allocs, memEvent{time: start, delta: t.AllocBytes, dev: int32(t.MemDevice)})
			}
			if t.FreeBytes != 0 {
				frees = append(frees, memEvent{time: end, delta: -t.FreeBytes, dev: int32(t.MemDevice), ord: int32(len(frees))})
			}
		}
		for k := childOff[it.id]; k < childOff[it.id+1]; k++ {
			c := children[k]
			if readyAt[c] < end {
				readyAt[c] = end
			}
			indeg[c]--
			if indeg[c] == 0 {
				enqueue(TaskID(c), readyAt[c])
			}
		}
	}

	applyMemEvents(res, allocs, frees)
	return res, nil
}

// applyMemEvents replays the run's memory events in time order and fills
// PeakMem and MemTrace. At equal timestamps allocations apply before frees: a
// task starting the instant another ends briefly holds both footprints, and
// applying the free first would under-count the true peak. Allocations arrive
// already time-ordered (tasks execute in non-decreasing start order) and
// frees sort by (end time, emission order).
func applyMemEvents(res *Result, allocs, frees []memEvent) {
	if len(allocs) == 0 && len(frees) == 0 {
		return
	}
	sort.Slice(frees, func(i, j int) bool {
		if frees[i].time != frees[j].time {
			return frees[i].time < frees[j].time
		}
		return frees[i].ord < frees[j].ord
	})
	counts := make([]int32, len(res.MemTrace))
	for i := range allocs {
		counts[allocs[i].dev]++
	}
	for i := range frees {
		counts[frees[i].dev]++
	}
	for d, c := range counts {
		if c > 0 {
			res.MemTrace[d] = make([]MemPoint, 0, c)
		}
	}
	curMem := make([]int64, len(res.PeakMem))
	ai, fi := 0, 0
	for ai < len(allocs) || fi < len(frees) {
		var ev memEvent
		if fi >= len(frees) || (ai < len(allocs) && allocs[ai].time <= frees[fi].time) {
			ev = allocs[ai]
			ai++
		} else {
			ev = frees[fi]
			fi++
		}
		curMem[ev.dev] += ev.delta
		if curMem[ev.dev] > res.PeakMem[ev.dev] {
			res.PeakMem[ev.dev] = curMem[ev.dev]
		}
		res.MemTrace[ev.dev] = append(res.MemTrace[ev.dev], MemPoint{ev.time, curMem[ev.dev]})
	}
}

// Validate checks the graph for out-of-range dependencies and resources.
func (g *Graph) Validate() error {
	for i := range g.tasks {
		t := &g.tasks[i]
		if t.Resource != NoResource && (t.Resource < 0 || t.Resource >= len(g.resources)) {
			return fmt.Errorf("sim: task %d (%s) uses unknown resource %d", t.ID, t.Name, t.Resource)
		}
		if t.Duration < 0 {
			return fmt.Errorf("sim: task %d (%s) has negative duration", t.ID, t.Name)
		}
		for _, d := range t.deps {
			if d < 0 || int(d) >= len(g.tasks) {
				return fmt.Errorf("sim: task %d (%s) depends on unknown task %d", t.ID, t.Name, d)
			}
		}
	}
	return nil
}
