// Package sim is a deterministic discrete-event simulator for dependent task
// graphs over exclusive resources (devices, network links). It substitutes
// for the paper's TensorFlow runtime on GPU clusters: schedule builders emit
// tasks with data/control dependencies, and the engine produces per-task
// timelines, resource utilization, and byte-accurate memory traces.
//
// Semantics: every task optionally occupies one resource for Duration
// seconds; a task becomes ready when all dependencies have finished; a
// resource executes one task at a time. Among runnable tasks the engine picks
// the one that can start earliest, breaking ties by priority then insertion
// order, which makes runs fully deterministic.
package sim

import (
	"context"
	"fmt"
	"math"
	"sort"
)

// TaskID identifies a task within a Graph.
type TaskID int

// NoResource marks tasks that consume no resource time (pure ordering nodes).
const NoResource = -1

// Task is one unit of simulated work.
type Task struct {
	ID       TaskID
	Name     string
	Kind     string // free-form label surfaced in traces ("fwd", "bwd", "comm", "allreduce", ...)
	Resource int    // executing resource, or NoResource
	Duration float64
	Priority int // lower runs first among simultaneously-startable tasks

	// Memory accounting: AllocBytes are charged to MemDevice when the task
	// starts, FreeBytes credited when it ends. MemDevice < 0 disables it.
	AllocBytes int64
	FreeBytes  int64
	MemDevice  int

	deps []TaskID
}

// Graph is a task DAG under construction.
type Graph struct {
	tasks     []*Task
	resources []string
	resIndex  map[string]int
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{resIndex: map[string]int{}}
}

// Resource interns a named resource and returns its index.
func (g *Graph) Resource(name string) int {
	if i, ok := g.resIndex[name]; ok {
		return i
	}
	i := len(g.resources)
	g.resources = append(g.resources, name)
	g.resIndex[name] = i
	return i
}

// NumTasks returns the number of tasks added so far.
func (g *Graph) NumTasks() int { return len(g.tasks) }

// Add appends a task and returns its ID. The task's ID field is filled in.
func (g *Graph) Add(t Task) TaskID {
	t.ID = TaskID(len(g.tasks))
	if t.MemDevice == 0 && t.AllocBytes == 0 && t.FreeBytes == 0 {
		t.MemDevice = -1
	}
	tt := t
	g.tasks = append(g.tasks, &tt)
	return tt.ID
}

// AddDep records that task depends on dep.
func (g *Graph) AddDep(task, dep TaskID) {
	if dep < 0 || task < 0 {
		return
	}
	t := g.tasks[task]
	t.deps = append(t.deps, dep)
}

// Task returns the task with the given id (for inspection in tests).
func (g *Graph) Task(id TaskID) *Task { return g.tasks[id] }

// Span is one executed task in the result timeline.
type Span struct {
	Task       TaskID
	Name, Kind string
	Resource   int
	Start, End float64
}

// MemPoint is one step of a device's memory-over-time trace.
type MemPoint struct {
	Time  float64
	Bytes int64
}

// Result is the outcome of executing a Graph.
type Result struct {
	Spans     []Span
	Makespan  float64
	Resources []string

	// BusyTime per resource; utilization is BusyTime/Makespan.
	BusyTime []float64

	// PeakMem and MemTrace are indexed by memory-device id.
	PeakMem  map[int]int64
	MemTrace map[int][]MemPoint
}

// ResourceIndex returns the index of the named resource, or -1.
func (r *Result) ResourceIndex(name string) int {
	for i, n := range r.Resources {
		if n == name {
			return i
		}
	}
	return -1
}

// Utilization returns resource r's busy fraction of the makespan.
func (r *Result) Utilization(res int) float64 {
	if r.Makespan == 0 {
		return 0
	}
	return r.BusyTime[res] / r.Makespan
}

// AvgUtilization averages utilization over the given resources, or all when
// none are specified.
func (r *Result) AvgUtilization(res ...int) float64 {
	if len(res) == 0 {
		for i := range r.Resources {
			res = append(res, i)
		}
	}
	var sum float64
	for _, i := range res {
		sum += r.Utilization(i)
	}
	return sum / float64(len(res))
}

// MaxPeakMem returns the largest per-device peak.
func (r *Result) MaxPeakMem() int64 {
	var m int64
	for _, v := range r.PeakMem {
		if v > m {
			m = v
		}
	}
	return m
}

// AvgPeakMem returns the mean per-device peak across devices that allocated.
func (r *Result) AvgPeakMem() float64 {
	if len(r.PeakMem) == 0 {
		return 0
	}
	var sum float64
	for _, v := range r.PeakMem {
		sum += float64(v)
	}
	return sum / float64(len(r.PeakMem))
}

// Run executes the graph and returns its timeline. It panics on dependency
// cycles (a builder bug, not an input condition).
func (g *Graph) Run() *Result {
	res, err := g.RunContext(context.Background())
	if err != nil { // unreachable: Background is never cancelled
		panic(err)
	}
	return res
}

// ctxCheckStride bounds how many tasks execute between context checks; large
// graphs (GPipe floods build O(stages x M) tasks) stay responsive to
// cancellation without paying an atomic load per task.
const ctxCheckStride = 512

// RunContext is Run under a context: execution stops between tasks once ctx
// is cancelled or past its deadline, returning ctx's error and no result.
func (g *Graph) RunContext(ctx context.Context) (*Result, error) {
	n := len(g.tasks)
	indeg := make([]int, n)
	children := make([][]TaskID, n)
	for _, t := range g.tasks {
		indeg[t.ID] = len(t.deps)
		for _, d := range t.deps {
			children[d] = append(children[d], t.ID)
		}
	}

	ready := make([]float64, n) // earliest start from dependencies
	done := make([]bool, n)
	resFree := make([]float64, len(g.resources))

	// runnable holds tasks whose deps are satisfied.
	var runnable []TaskID
	for _, t := range g.tasks {
		if indeg[t.ID] == 0 {
			runnable = append(runnable, t.ID)
		}
	}

	res := &Result{
		Resources: append([]string(nil), g.resources...),
		BusyTime:  make([]float64, len(g.resources)),
		PeakMem:   map[int]int64{},
		MemTrace:  map[int][]MemPoint{},
	}
	curMem := map[int]int64{}
	type memEvent struct {
		time  float64
		delta int64
		dev   int
		order int
	}
	var memEvents []memEvent

	executed := 0
	for executed < n {
		if executed%ctxCheckStride == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if len(runnable) == 0 {
			panic("sim: dependency cycle in task graph")
		}
		// Pick the runnable task that can start earliest.
		best, bestStart := -1, math.Inf(1)
		for i, id := range runnable {
			t := g.tasks[id]
			start := ready[id]
			if t.Resource != NoResource && resFree[t.Resource] > start {
				start = resFree[t.Resource]
			}
			better := start < bestStart
			if !better && start == bestStart {
				b := g.tasks[runnable[best]]
				if t.Priority != b.Priority {
					better = t.Priority < b.Priority
				} else {
					better = id < runnable[best]
				}
			}
			if better {
				best, bestStart = i, start
			}
		}
		id := runnable[best]
		runnable[best] = runnable[len(runnable)-1]
		runnable = runnable[:len(runnable)-1]

		t := g.tasks[id]
		start := bestStart
		end := start + t.Duration
		if t.Resource != NoResource {
			resFree[t.Resource] = end
			res.BusyTime[t.Resource] += t.Duration
		}
		res.Spans = append(res.Spans, Span{
			Task: id, Name: t.Name, Kind: t.Kind, Resource: t.Resource,
			Start: start, End: end,
		})
		if end > res.Makespan {
			res.Makespan = end
		}
		if t.MemDevice >= 0 {
			if t.AllocBytes != 0 {
				memEvents = append(memEvents, memEvent{start, t.AllocBytes, t.MemDevice, len(memEvents)})
			}
			if t.FreeBytes != 0 {
				memEvents = append(memEvents, memEvent{end, -t.FreeBytes, t.MemDevice, len(memEvents)})
			}
		}
		done[id] = true
		executed++
		for _, c := range children[id] {
			if ready[c] < end {
				ready[c] = end
			}
			indeg[c]--
			if indeg[c] == 0 {
				runnable = append(runnable, c)
			}
		}
	}

	// Replay memory events in time order (allocations before frees at equal
	// times would under-count peaks, so frees at the same instant apply
	// after allocations recorded earlier in program order).
	sort.Slice(memEvents, func(i, j int) bool {
		if memEvents[i].time != memEvents[j].time {
			return memEvents[i].time < memEvents[j].time
		}
		return memEvents[i].order < memEvents[j].order
	})
	for _, ev := range memEvents {
		curMem[ev.dev] += ev.delta
		if curMem[ev.dev] > res.PeakMem[ev.dev] {
			res.PeakMem[ev.dev] = curMem[ev.dev]
		}
		res.MemTrace[ev.dev] = append(res.MemTrace[ev.dev], MemPoint{ev.time, curMem[ev.dev]})
	}

	sort.Slice(res.Spans, func(i, j int) bool {
		if res.Spans[i].Start != res.Spans[j].Start {
			return res.Spans[i].Start < res.Spans[j].Start
		}
		return res.Spans[i].Task < res.Spans[j].Task
	})
	return res, nil
}

// Validate checks the graph for out-of-range dependencies and resources.
func (g *Graph) Validate() error {
	for _, t := range g.tasks {
		if t.Resource != NoResource && (t.Resource < 0 || t.Resource >= len(g.resources)) {
			return fmt.Errorf("sim: task %d (%s) uses unknown resource %d", t.ID, t.Name, t.Resource)
		}
		if t.Duration < 0 {
			return fmt.Errorf("sim: task %d (%s) has negative duration", t.ID, t.Name)
		}
		for _, d := range t.deps {
			if d < 0 || int(d) >= len(g.tasks) {
				return fmt.Errorf("sim: task %d (%s) depends on unknown task %d", t.ID, t.Name, d)
			}
		}
	}
	return nil
}
