// Package hostinfo reports the execution-host facts benchmark records carry:
// Go version, GOMAXPROCS, CPU count and CPU model. Every BENCH_*.json entry
// embeds these so numbers from a 1-core CI container can never be confused
// with a multi-core re-baseline of the same benchmark.
package hostinfo

import (
	"fmt"
	"os"
	"runtime"
	"strings"
)

// CPUModel returns the host CPU model string from /proc/cpuinfo, or the
// architecture name when that is unavailable (non-Linux hosts).
func CPUModel() string {
	b, err := os.ReadFile("/proc/cpuinfo")
	if err == nil {
		for _, line := range strings.Split(string(b), "\n") {
			if rest, ok := strings.CutPrefix(line, "model name"); ok {
				if _, v, ok := strings.Cut(rest, ":"); ok {
					return strings.TrimSpace(v)
				}
			}
		}
	}
	return runtime.GOARCH
}

// Summary returns the one-line host description benchmark output prints and
// BENCH_*.json records quote.
func Summary() string {
	return fmt.Sprintf("%s, GOMAXPROCS=%d, %d CPUs, %s",
		runtime.Version(), runtime.GOMAXPROCS(0), runtime.NumCPU(), CPUModel())
}
