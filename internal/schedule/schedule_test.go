package schedule

import (
	"math"
	"testing"
	"testing/quick"

	"dapple/internal/core"
	"dapple/internal/hardware"
	"dapple/internal/model"
)

// straightPlan builds an s-stage straight pipeline over a uniform model.
func straightPlan(s, layersPerStage, gbs int) *core.Plan {
	m := model.Synthetic(s*layersPerStage, 10e-3, 1<<20, 16<<20, 4<<20)
	c := hardware.ConfigB(s)
	stages := make([]core.Stage, s)
	for i := range stages {
		stages[i] = core.Stage{
			Lo: i * layersPerStage, Hi: (i + 1) * layersPerStage,
			Devices: []hardware.DeviceID{hardware.DeviceID(i)},
		}
	}
	return &core.Plan{Model: m, Cluster: c, Stages: stages, GBS: gbs, MicroBatch: 1}
}

func TestStageOrderGPipe(t *testing.T) {
	order := StageOrder(GPipe, 3, 3)
	want := []Op{{false, 0}, {false, 1}, {false, 2}, {true, 2}, {true, 1}, {true, 0}}
	if len(order) != len(want) {
		t.Fatalf("len %d", len(order))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("op %d = %+v, want %+v", i, order[i], want[i])
		}
	}
}

func TestStageOrderDapple(t *testing.T) {
	order := StageOrder(DapplePA, 5, 2)
	want := []Op{{false, 0}, {false, 1}, {true, 0}, {false, 2}, {true, 1}, {false, 3},
		{true, 2}, {false, 4}, {true, 3}, {true, 4}}
	if len(order) != len(want) {
		t.Fatalf("len %d, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("op %d = %+v, want %+v", i, order[i], want[i])
		}
	}
}

// Property: every stage order contains each forward and backward exactly
// once, forwards in increasing order, and F(m) precedes B(m).
func TestStageOrderProperty(t *testing.T) {
	f := func(m8, k8 uint8, pol8 uint8) bool {
		m := int(m8%20) + 1
		k := int(k8%10) + 1
		pol := Policy(pol8 % 3)
		order := StageOrder(pol, m, k)
		if len(order) != 2*m {
			return false
		}
		seenF := map[int]int{}
		seenB := map[int]int{}
		lastF := -1
		for i, o := range order {
			if o.Backward {
				seenB[o.M]++
				if _, ok := seenF[o.M]; !ok {
					return false // backward before forward
				}
			} else {
				seenF[o.M] = i
				if o.M <= lastF {
					return false // forwards out of order
				}
				lastF = o.M
			}
		}
		return len(seenF) == m && len(seenB) == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGPipeMemoryGrowsWithM(t *testing.T) {
	p := straightPlan(2, 4, 64)
	mem := func(m int) float64 {
		res := MustRun(p, Options{Policy: GPipe, M: m, MemLimit: -1})
		return res.AvgPeakMem
	}
	if !(mem(2) < mem(4) && mem(4) < mem(8)) {
		t.Fatalf("GPipe memory not O(M): %g %g %g", mem(2), mem(4), mem(8))
	}
}

func TestDappleMemoryFlatInM(t *testing.T) {
	p := straightPlan(2, 4, 64)
	mem := func(m int) float64 {
		res := MustRun(p, Options{Policy: DapplePA, M: m, MemLimit: -1})
		return res.AvgPeakMem
	}
	if math.Abs(mem(4)-mem(16)) > 1 {
		t.Fatalf("DAPPLE memory not flat: %g vs %g", mem(4), mem(16))
	}
}

func TestDappleWarmupDepth(t *testing.T) {
	p := straightPlan(3, 2, 16)
	res := MustRun(p, Options{Policy: DapplePA, MemLimit: -1})
	for i, st := range res.PerStage {
		if want := 3 - i; st.Warmup != want {
			t.Fatalf("stage %d warmup %d, want %d", i, st.Warmup, want)
		}
	}
	res = MustRun(p, Options{Policy: DapplePB, MemLimit: -1})
	for i, st := range res.PerStage {
		if want := 2*(3-i) - 1; st.Warmup != want {
			t.Fatalf("PB stage %d warmup %d, want %d", i, st.Warmup, want)
		}
	}
}

func TestRecomputeTradesTimeForMemory(t *testing.T) {
	p := straightPlan(2, 4, 32)
	plain := MustRun(p, Options{Policy: GPipe, MemLimit: -1})
	rc := MustRun(p, Options{Policy: GPipe, Recompute: true, MemLimit: -1})
	if rc.IterTime <= plain.IterTime {
		t.Fatal("re-computation should cost time")
	}
	if rc.AvgPeakMem >= plain.AvgPeakMem {
		t.Fatal("re-computation should save memory")
	}
	// ~20% overhead per the paper's calibration.
	overhead := rc.IterTime/plain.IterTime - 1
	if overhead < 0.1 || overhead > 0.35 {
		t.Fatalf("re-computation overhead %.0f%%, want ~20%%", overhead*100)
	}
}

func TestOOMDetection(t *testing.T) {
	p := straightPlan(2, 4, 64)
	res := MustRun(p, Options{Policy: GPipe, M: 64, MemLimit: 1 << 28})
	if !res.OOM {
		t.Fatal("expected OOM at tiny memory limit")
	}
	res = MustRun(p, Options{Policy: GPipe, M: 64, MemLimit: -1})
	if res.OOM {
		t.Fatal("unlimited memory cannot OOM")
	}
}

func TestThroughputImprovesWithM(t *testing.T) {
	p := straightPlan(4, 2, 256)
	t4 := MustRun(p, Options{Policy: DapplePA, M: 4, MemLimit: -1}).Throughput()
	t32 := MustRun(p, Options{Policy: DapplePA, M: 32, MemLimit: -1}).Throughput()
	if t32 <= t4 {
		t.Fatalf("more micro-batches should amortize bubbles: %g vs %g", t4, t32)
	}
}

func TestSimulatedMatchesAnalyticSingleStage(t *testing.T) {
	// For a single (DP) stage the DES and Eq. (1)-(2) agree exactly up to
	// the constant apply time.
	m := model.Synthetic(4, 5e-3, 1<<20, 1<<20, 32<<20)
	c := hardware.ConfigB(4)
	p := &core.Plan{Model: m, Cluster: c, GBS: 16, MicroBatch: 1,
		Stages: []core.Stage{{Lo: 0, Hi: 4, Devices: c.Devices()}}}
	res := MustRun(p, Options{Policy: DapplePA, MemLimit: -1})
	analytic := p.Latency()
	if math.Abs(res.IterTime-analytic-applyTime) > 1e-9 {
		t.Fatalf("sim %g vs analytic %g", res.IterTime, analytic)
	}
}

func TestReplicationSpeedsStages(t *testing.T) {
	m := model.Synthetic(8, 10e-3, 1<<20, 16<<20, 4<<20)
	c := hardware.ConfigA(1)
	mk := func(r0, r1 int) *core.Plan {
		s0 := make([]hardware.DeviceID, r0)
		for i := range s0 {
			s0[i] = hardware.DeviceID(i)
		}
		s1 := make([]hardware.DeviceID, r1)
		for i := range s1 {
			s1[i] = hardware.DeviceID(r0 + i)
		}
		return &core.Plan{Model: m, Cluster: c, GBS: 32, MicroBatch: 1,
			Stages: []core.Stage{{Lo: 0, Hi: 4, Devices: s0}, {Lo: 4, Hi: 8, Devices: s1}}}
	}
	slow := MustRun(mk(1, 1), Options{Policy: DapplePA, MemLimit: -1})
	fast := MustRun(mk(4, 4), Options{Policy: DapplePA, MemLimit: -1})
	if fast.IterTime >= slow.IterTime {
		t.Fatalf("replication did not speed up: %g vs %g", fast.IterTime, slow.IterTime)
	}
}

// Property: simulated iteration time is at least total-work/devices and
// memory accounting never goes negative.
func TestWorkConservationProperty(t *testing.T) {
	f := func(s8, lps8, m8 uint8) bool {
		s := int(s8%4) + 2
		lps := int(lps8%3) + 1
		mcount := int(m8%20) + 1
		p := straightPlan(s, lps, mcount)
		res := MustRun(p, Options{Policy: DapplePA, MemLimit: -1})
		work := float64(mcount) * (p.Model.IterFwdTime(1) + p.Model.IterBwdTime(1))
		if res.IterTime < work/float64(s)-1e-9 {
			return false
		}
		for _, tr := range res.Sim.MemTrace {
			for _, pt := range tr {
				if pt.Bytes < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidatesPlan(t *testing.T) {
	p := straightPlan(2, 2, 8)
	p.Stages[1].Lo = 3 // break coverage
	if _, err := Run(p, Options{}); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestGPipeBackwardReversed(t *testing.T) {
	// In GPipe the last stage's first backward is the last micro-batch.
	p := straightPlan(2, 2, 4)
	res := MustRun(p, Options{Policy: GPipe, MemLimit: -1})
	stage1 := res.StageResource(1)
	var names []string
	for _, sp := range res.Sim.Spans {
		if sp.Resource == stage1 && sp.Kind == "bwd" {
			names = append(names, sp.Name)
		}
	}
	if len(names) != 4 || names[0] != "B3.s1" || names[3] != "B0.s1" {
		t.Fatalf("GPipe backward order: %v", names)
	}
}
