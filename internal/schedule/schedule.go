// Package schedule builds executable task graphs for pipelined training
// iterations and runs them on the discrete-event simulator: GPipe's
// flush-style schedule and DAPPLE's early-backward schedule (§III), both with
// optional activation re-computation, plus byte-accurate device memory
// accounting and OOM detection.
//
// Each pipeline stage's replica group acts as one logical executor whose
// per-micro-batch time is the stage time divided by its replication degree
// (split-concat semantics, Fig. 8(a)); memory is accounted per physical
// device (each replica holds the full stage parameters but only its slice of
// activations).
//
// One-off simulations go through Run/RunContext. Sweeps over Policy × M ×
// recompute of one plan should use a Sweeper, which reuses the task graph's
// task, dependency and name buffers across runs instead of rebuilding them
// from scratch.
package schedule

import (
	"context"
	"fmt"

	"dapple/internal/core"
	"dapple/internal/sim"
)

// Policy selects the micro-batch scheduling discipline.
type Policy int

const (
	// GPipe injects all M micro-batches forward, then drains backward in
	// reverse order (Fig. 3(a)): activation residency grows O(M).
	GPipe Policy = iota
	// DapplePA is DAPPLE early-backward scheduling with K_i = min(S-i, D)
	// warmup micro-batches on stage i (§V-C policy A).
	DapplePA
	// DapplePB schedules twice the warmup depth, K_i = min(2(S-i)-1, D),
	// for workloads with a notable activation-communication ratio (§V-C
	// policy B).
	DapplePB
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case GPipe:
		return "GPipe"
	case DapplePA:
		return "DAPPLE-PA"
	default:
		return "DAPPLE-PB"
	}
}

// recomputeFwdFraction is the extra compute charged to a backward task when
// activation re-computation is on, as a fraction of the stage's forward time.
// The paper (and the GPipe talk it cites) put the end-to-end cost of
// re-computation near 20% of iteration time, which a 0.6x forward replay
// reproduces for the typical B = 2F ratio.
const recomputeFwdFraction = 0.6

// applyTime is the weight-update time after the gradient all-reduce.
const applyTime = 200e-6

// Options configure one simulated training iteration.
type Options struct {
	Policy    Policy
	Recompute bool

	// M overrides the plan's micro-batch count when > 0 (Table VI varies M
	// at fixed micro-batch size).
	M int

	// MemLimit is the per-device memory budget; 0 means the cluster's
	// device memory. Negative disables memory accounting limits.
	MemLimit int64
}

// Result reports one simulated iteration.
type Result struct {
	Plan     *core.Plan
	Policy   Policy
	M        int
	IterTime float64 // seconds for one global batch
	Samples  int     // samples consumed per iteration

	// AvgPeakMem / MaxPeakMem are bytes across devices, including parameters,
	// optimizer state and workspace.
	AvgPeakMem float64
	MaxPeakMem int64
	PerStage   []StageStats

	OOM      bool
	OOMStage int

	BubbleFraction float64 // idle fraction of compute-stage executors
	Sim            *sim.Result
	stageRes       []int
}

// StageStats summarizes one stage's executor and memory.
type StageStats struct {
	PeakMem     int64 // bytes per device of this stage
	StaticMem   int64
	Utilization float64
	Warmup      int // K_i actually used
}

// Throughput returns samples/second.
func (r *Result) Throughput() float64 {
	if r.IterTime == 0 {
		return 0
	}
	return float64(r.Samples) / r.IterTime
}

// MemTrace returns the memory-over-time curve of stage i's devices.
func (r *Result) MemTrace(i int) []sim.MemPoint {
	return r.Sim.Trace(i)
}

// StageResource returns the simulator resource index of stage i's executor,
// for timeline inspection.
func (r *Result) StageResource(i int) int { return r.stageRes[i] }

// Run simulates one training iteration of the plan under the given options.
func Run(p *core.Plan, opts Options) (*Result, error) {
	return RunContext(context.Background(), p, opts)
}

// RunContext is Run under a context: the discrete-event execution aborts with
// ctx's error once ctx is cancelled or past its deadline.
func RunContext(ctx context.Context, p *core.Plan, opts Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return runBuilder(ctx, newBuilder(p), opts)
}

// MustRun is Run for validated plans in examples and benches.
func MustRun(p *core.Plan, opts Options) *Result {
	r, err := Run(p, opts)
	if err != nil {
		panic(err)
	}
	return r
}

// BuildGraph expands one simulated training iteration of the plan into its
// simulator task graph without executing it — the entry point for simulator
// microbenchmarks and timeline tooling that drive the engine directly.
func BuildGraph(p *core.Plan, opts Options) (*sim.Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	b := newBuilder(p)
	m, limit := resolve(p, opts)
	b.prepare(m, opts, limit)
	b.build()
	if err := b.g.Validate(); err != nil {
		return nil, fmt.Errorf("schedule: internal graph error: %w", err)
	}
	return b.g, nil
}

// Sweeper simulates many iterations of one plan while reusing the underlying
// task graph: tasks, dependency lists, cached task names and interned
// resources persist across runs, so a Policy × M × recompute sweep allocates
// per-run results only. Results remain byte-identical to Run's. A Sweeper is
// not safe for concurrent use.
type Sweeper struct {
	b *builder
}

// NewSweeper validates the plan once and returns a Sweeper bound to it.
func NewSweeper(p *core.Plan) (*Sweeper, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Sweeper{b: newBuilder(p)}, nil
}

// MustSweeper is NewSweeper for validated plans in examples and benches.
func MustSweeper(p *core.Plan) *Sweeper {
	s, err := NewSweeper(p)
	if err != nil {
		panic(err)
	}
	return s
}

// Run simulates one iteration of the Sweeper's plan under the given options.
func (s *Sweeper) Run(opts Options) (*Result, error) {
	return s.RunContext(context.Background(), opts)
}

// MustRun is Run for validated plans in examples and benches.
func (s *Sweeper) MustRun(opts Options) *Result {
	r, err := s.Run(opts)
	if err != nil {
		panic(err)
	}
	return r
}

// RunContext is Run under a context.
func (s *Sweeper) RunContext(ctx context.Context, opts Options) (*Result, error) {
	return runBuilder(ctx, s.b, opts)
}

// resolve derives the effective micro-batch count and memory limit.
func resolve(p *core.Plan, opts Options) (int, int64) {
	m := p.M()
	if opts.M > 0 {
		m = opts.M
	}
	if m < 1 {
		m = 1
	}
	limit := opts.MemLimit
	if limit == 0 {
		limit = p.Cluster.DeviceMemory
	}
	return m, limit
}

// runBuilder expands one iteration on the (possibly reused) builder, executes
// it, and assembles the Result.
func runBuilder(ctx context.Context, b *builder, opts Options) (*Result, error) {
	p := b.p
	m, limit := resolve(p, opts)
	b.prepare(m, opts, limit)
	b.build()
	if err := b.g.Validate(); err != nil {
		return nil, fmt.Errorf("schedule: internal graph error: %w", err)
	}
	sr, err := b.g.RunContext(ctx)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Plan:     p,
		Policy:   opts.Policy,
		M:        m,
		IterTime: sr.Makespan,
		Samples:  m * p.MicroBatch,
		Sim:      sr,
		OOMStage: -1,
		stageRes: b.stageRes,
		PerStage: make([]StageStats, 0, len(p.Stages)),
	}
	var memSum float64
	var busy, span float64
	for i := range p.Stages {
		peak := sr.Peak(i)
		st := StageStats{
			PeakMem:     peak,
			StaticMem:   b.static[i],
			Utilization: sr.Utilization(b.stageRes[i]),
			Warmup:      b.warmup[i],
		}
		res.PerStage = append(res.PerStage, st)
		memSum += float64(peak) * float64(p.Stages[i].Replicas())
		if peak > res.MaxPeakMem {
			res.MaxPeakMem = peak
		}
		if limit > 0 && peak > limit && !res.OOM {
			res.OOM = true
			res.OOMStage = i
		}
		busy += sr.BusyTime[b.stageRes[i]]
		span += sr.Makespan
	}
	nDev := 0
	for _, s := range p.Stages {
		nDev += s.Replicas()
	}
	res.AvgPeakMem = memSum / float64(nDev)
	if span > 0 {
		res.BubbleFraction = 1 - busy/span
	}
	return res, nil
}

// builder accumulates the task graph for one iteration. It outlives a single
// build when owned by a Sweeper: prepare rewinds the graph and resizes the
// per-micro-batch tables without discarding their capacity, and task names
// are cached so sweeps do not re-format identical strings.
type builder struct {
	p     *core.Plan
	m     int
	opts  Options
	limit int64

	g        *sim.Graph
	stageRes []int
	linkF    []int
	linkB    []int

	// per stage, fixed by the plan
	static []int64 // params + optimizer + workspace, per device
	perMB  []int64 // retained activation bytes per micro-batch per device
	stash  []int64 // boundary stash per micro-batch per device (recompute)

	// per stage, per build
	warmup []int
	fwd    [][]sim.TaskID // [stage][m]
	bwd    [][]sim.TaskID
	commF  [][]sim.TaskID
	commB  [][]sim.TaskID

	// cached task names, grown on demand: names[kind][stage][mb]
	names    [4][][]string
	initName []string
	arName   []string
}

// name-table kinds, indexed into builder.names.
const (
	nameFwd = iota
	nameBwd
	nameCommF
	nameCommB
)

// nameFormats renders task names per kind as (micro-batch, stage).
var nameFormats = [4]string{"F%d.s%d", "B%d.s%d", "CF%d.s%d", "CB%d.s%d"}

func newBuilder(p *core.Plan) *builder {
	s := len(p.Stages)
	b := &builder{
		p:        p,
		g:        sim.NewGraph(),
		stageRes: make([]int, s),
		linkF:    make([]int, s),
		linkB:    make([]int, s),
		static:   make([]int64, s),
		perMB:    make([]int64, s),
		stash:    make([]int64, s),
		warmup:   make([]int, s),
		fwd:      make([][]sim.TaskID, s),
		bwd:      make([][]sim.TaskID, s),
		commF:    make([][]sim.TaskID, s),
		commB:    make([][]sim.TaskID, s),
		initName: make([]string, s),
		arName:   make([]string, s),
	}
	for k := range b.names {
		b.names[k] = make([][]string, s)
	}
	// Resources are interned once; their indices survive graph resets.
	for i := range p.Stages {
		b.stageRes[i] = b.g.Resource(fmt.Sprintf("stage%d", i))
		if i < s-1 {
			b.linkF[i] = b.g.Resource(fmt.Sprintf("link%d.fwd", i))
			b.linkB[i] = b.g.Resource(fmt.Sprintf("link%d.bwd", i))
		}
		b.initName[i] = fmt.Sprintf("init.s%d", i)
		b.arName[i] = fmt.Sprintf("AR.s%d", i)
	}
	b.stageMemory()
	return b
}

// prepare rewinds the builder for one build of m micro-batches: the graph's
// tasks are cleared (buffers kept), the per-micro-batch ID tables resized,
// and the name cache extended if m grew past anything seen before.
func (b *builder) prepare(m int, opts Options, limit int64) {
	b.m, b.opts, b.limit = m, opts, limit
	b.g.Reset()
	for i := range b.p.Stages {
		b.fwd[i] = resizeIDs(b.fwd[i], m)
		b.bwd[i] = resizeIDs(b.bwd[i], m)
		b.commF[i] = resizeIDs(b.commF[i], m)
		b.commB[i] = resizeIDs(b.commB[i], m)
		for k := range b.names {
			for mb := len(b.names[k][i]); mb < m; mb++ {
				b.names[k][i] = append(b.names[k][i], fmt.Sprintf(nameFormats[k], mb, i))
			}
		}
	}
}

// resizeIDs returns ids with length m, reusing capacity when possible.
func resizeIDs(ids []sim.TaskID, m int) []sim.TaskID {
	if cap(ids) >= m {
		return ids[:m]
	}
	return make([]sim.TaskID, m)
}

// stageMemory fills static/perMB/stash for every stage. All three depend only
// on the plan, so the builder computes them once.
func (b *builder) stageMemory() {
	p := b.p
	for i, s := range p.Stages {
		params := p.StageParamBytes(i)
		b.static[i] = p.Model.OptimizerStateBytes(params) + p.Model.WorkspaceBytes
		r := int64(s.Replicas())
		b.perMB[i] = p.Model.RangeStoredBytes(s.Lo, s.Hi, p.MicroBatch) / r
		if s.Lo > 0 {
			b.stash[i] = p.Model.OutputBytes(s.Lo-1, p.MicroBatch) / r
		} else {
			// First stage stashes its input micro-batch slice; approximate
			// with the smallest boundary in the model.
			min := p.Model.Layers[0].OutputBytes
			for _, l := range p.Model.Layers {
				if l.OutputBytes < min {
					min = l.OutputBytes
				}
			}
			b.stash[i] = p.Model.OutputBytes(0, p.MicroBatch) / (4 * r)
			if alt := int64(float64(min) * float64(p.MicroBatch) / float64(p.Model.ProfileBatch)); alt < b.stash[i] {
				b.stash[i] = alt
			}
		}
	}
}

// memCap returns D for stage i: how many micro-batches of retained state fit
// the device budget alongside static allocations. Without a positive limit
// every micro-batch fits.
func (b *builder) memCap(i int) int {
	if b.limit <= 0 {
		return b.m
	}
	free := b.limit - b.static[i]
	var per int64
	if b.opts.Recompute {
		per = b.stash[i]
		free -= b.perMB[i] // one micro-batch materializes fully during backward
	} else {
		per = b.perMB[i]
	}
	if per <= 0 {
		return b.m
	}
	d := int(free / per)
	if d < 1 {
		d = 1 // schedule anyway; the run flags OOM
	}
	if d > b.m {
		d = b.m
	}
	return d
}

// computeWarmups fills b.warmup with the policy's per-stage warmup depths.
// Depths must be non-increasing along the pipeline: a later stage holding
// more in-flight micro-batches than its predecessor deadlocks the strict
// interleave (its extra warmup forwards wait on inputs the predecessor will
// only produce after backwards the later stage has not sent yet), so
// memory-capped depths are clamped front to back.
func (b *builder) computeWarmups() {
	for i := range b.p.Stages {
		b.warmup[i] = b.warmupDepth(i)
		if i > 0 && b.warmup[i] > b.warmup[i-1] {
			b.warmup[i] = b.warmup[i-1]
		}
	}
}

// warmupDepth returns K_i for the policy.
func (b *builder) warmupDepth(i int) int {
	s := len(b.p.Stages)
	var k int
	switch b.opts.Policy {
	case GPipe:
		// GPipe injects everything and simply OOMs when it does not fit;
		// it has no adaptive warmup depth.
		return b.m
	case DapplePA:
		k = s - i
	case DapplePB:
		k = 2*(s-i) - 1
	}
	if d := b.memCap(i); k > d {
		k = d
	}
	if k > b.m {
		k = b.m
	}
	if k < 1 {
		k = 1
	}
	return k
}

func (b *builder) build() {
	p := b.p

	// Static allocations present for the whole iteration.
	for i := range p.Stages {
		b.g.Add(sim.Task{
			Name: b.initName[i], Kind: "init",
			Resource: sim.NoResource, MemDevice: i, AllocBytes: b.static[i],
		})
	}

	for i := range p.Stages {
		f := p.StageFwdTime(i)
		bw := p.StageBwdTime(i)
		if b.opts.Recompute {
			bw += recomputeFwdFraction * f
		}
		for m := 0; m < b.m; m++ {
			var fAlloc int64
			if b.opts.Recompute {
				fAlloc = b.stash[i]
			} else {
				fAlloc = b.perMB[i]
			}
			b.fwd[i][m] = b.g.Add(sim.Task{
				Name: b.names[nameFwd][i][m], Kind: "fwd",
				Resource: b.stageRes[i], Duration: f,
				MemDevice: i, AllocBytes: fAlloc, Priority: m,
			})
			var bAlloc, bFree int64
			if b.opts.Recompute {
				bAlloc = b.perMB[i]
				bFree = b.perMB[i] + b.stash[i]
			} else {
				bFree = b.perMB[i]
			}
			b.bwd[i][m] = b.g.Add(sim.Task{
				Name: b.names[nameBwd][i][m], Kind: "bwd",
				Resource: b.stageRes[i], Duration: bw,
				MemDevice: i, AllocBytes: bAlloc, FreeBytes: bFree, Priority: m,
			})
		}
	}

	// Data dependencies: forward chains via activation transfers, backward
	// chains via gradient transfers; links are full duplex (separate forward
	// and backward resources).
	for i := 0; i < len(p.Stages)-1; i++ {
		ct := p.CrossStageTime(i)
		for m := 0; m < b.m; m++ {
			b.commF[i][m] = b.g.Add(sim.Task{
				Name: b.names[nameCommF][i][m], Kind: "comm",
				Resource: b.linkF[i], Duration: ct, Priority: m,
			})
			b.g.AddDep(b.commF[i][m], b.fwd[i][m])
			b.g.AddDep(b.fwd[i+1][m], b.commF[i][m])

			b.commB[i][m] = b.g.Add(sim.Task{
				Name: b.names[nameCommB][i][m], Kind: "comm",
				Resource: b.linkB[i], Duration: ct, Priority: m,
			})
			b.g.AddDep(b.commB[i][m], b.bwd[i+1][m])
			b.g.AddDep(b.bwd[i][m], b.commB[i][m])
		}
	}

	// Control dependencies: per-stage execution order per policy (§V-C),
	// realized exactly like the TF control edges of Fig. 11.
	b.computeWarmups()
	for i := range p.Stages {
		order := StageOrder(b.opts.Policy, b.m, b.warmup[i])
		for j := 1; j < len(order); j++ {
			prev, cur := order[j-1], order[j]
			b.g.AddDep(b.task(i, cur), b.task(i, prev))
		}
	}

	// Gradient sync + weight update per stage at iteration end (Fig. 10).
	for i := range p.Stages {
		ar := b.g.Add(sim.Task{
			Name: b.arName[i], Kind: "allreduce",
			Resource: b.stageRes[i], Duration: p.StageAllReduceTime(i) + applyTime,
		})
		for m := 0; m < b.m; m++ {
			b.g.AddDep(ar, b.bwd[i][m])
		}
	}
}

// Op is one step of a stage's execution order: the forward (Backward false)
// or backward (Backward true) pass of micro-batch M. The simulator's schedule
// builder and the real plan-driven executor (internal/train) both consume the
// same Op sequences, which is what makes their per-stage event orders
// comparable by construction.
type Op struct {
	// Backward selects the backward pass; false is the forward pass.
	Backward bool
	// M is the micro-batch index.
	M int
}

func (b *builder) task(stage int, o Op) sim.TaskID {
	if o.Backward {
		return b.bwd[stage][o.M]
	}
	return b.fwd[stage][o.M]
}

// StageOrder lists a stage's FW/BW sequence for m micro-batches under the
// policy: GPipe runs all forwards then backwards in reverse; DAPPLE runs k
// warmup forwards then strictly interleaves one backward with one forward
// (Fig. 3(b)). k is ignored for GPipe and clamped to [1, m] otherwise.
func StageOrder(p Policy, m, k int) []Op {
	var order []Op
	if p == GPipe {
		for i := 0; i < m; i++ {
			order = append(order, Op{false, i})
		}
		for i := m - 1; i >= 0; i-- {
			order = append(order, Op{true, i})
		}
		return order
	}
	if k > m {
		k = m
	}
	if k < 1 {
		k = 1
	}
	for i := 0; i < k; i++ {
		order = append(order, Op{false, i})
	}
	next := k
	for i := 0; i < m; i++ {
		order = append(order, Op{true, i})
		if next < m {
			order = append(order, Op{false, next})
			next++
		}
	}
	return order
}

// WarmupDepths returns the per-stage warmup depth K_i one iteration of p
// under opts uses: the policy's depth, capped by how many micro-batches of
// retained state fit device memory, then clamped front to back so depths are
// non-increasing along the pipeline (the deadlock-freedom condition of the
// strict interleave). The real plan-driven executor derives its warmup from
// this same code path, so real and simulated schedules agree exactly.
func WarmupDepths(p *core.Plan, opts Options) ([]int, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	b := newBuilder(p)
	b.opts = opts
	b.m, b.limit = resolve(p, opts)
	b.computeWarmups()
	out := make([]int, len(b.warmup))
	copy(out, b.warmup)
	return out, nil
}
