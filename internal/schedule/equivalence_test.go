package schedule_test

import (
	"fmt"
	"reflect"
	"testing"

	"dapple/internal/baselines"
	"dapple/internal/hardware"
	"dapple/internal/model"
	"dapple/internal/schedule"
)

// TestEngineEquivalenceZoo asserts byte-identical simulator Results from the
// event-driven engine and the pre-rewrite reference engine on every zoo
// model's schedule, for every policy and recompute setting — the CI gate for
// the engine rewrite.
func TestEngineEquivalenceZoo(t *testing.T) {
	for _, m := range model.Zoo() {
		c := hardware.ConfigB(4)
		stages := 4
		if m.NumLayers() < stages {
			stages = m.NumLayers()
			c = hardware.ConfigB(stages)
		}
		p := baselines.GPipePlan(m, c, m.DefaultGBS, stages)
		for _, pol := range []schedule.Policy{schedule.GPipe, schedule.DapplePA, schedule.DapplePB} {
			for _, rc := range []bool{false, true} {
				name := fmt.Sprintf("%s/%v/recompute=%v", m.Name, pol, rc)
				g, err := schedule.BuildGraph(p, schedule.Options{Policy: pol, Recompute: rc, M: 8, MemLimit: -1})
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				want := g.RunReference()
				got := g.Run()
				if !reflect.DeepEqual(want.Spans, got.Spans) {
					t.Fatalf("%s: spans differ", name)
				}
				if want.Makespan != got.Makespan {
					t.Fatalf("%s: makespan %g vs %g", name, want.Makespan, got.Makespan)
				}
				if !reflect.DeepEqual(want.BusyTime, got.BusyTime) {
					t.Fatalf("%s: busy time differs", name)
				}
				if !reflect.DeepEqual(want.PeakMem, got.PeakMem) {
					t.Fatalf("%s: peaks %v vs %v", name, want.PeakMem, got.PeakMem)
				}
				if !reflect.DeepEqual(want.MemTrace, got.MemTrace) {
					t.Fatalf("%s: memory traces differ", name)
				}
			}
		}
	}
}

// TestSweeperMatchesRun asserts that a Sweeper reusing one builder across a
// Policy × M × recompute sweep returns Results identical to fresh Run calls.
func TestSweeperMatchesRun(t *testing.T) {
	m := model.GNMT16()
	p := baselines.GPipePlan(m, hardware.ConfigB(4), m.DefaultGBS, 4)
	sw := schedule.MustSweeper(p)
	for _, pol := range []schedule.Policy{schedule.GPipe, schedule.DapplePA, schedule.DapplePB} {
		for _, mc := range []int{12, 4, 8} { // deliberately non-monotone: shrinks then regrows buffers
			for _, rc := range []bool{false, true} {
				opts := schedule.Options{Policy: pol, Recompute: rc, M: mc}
				got, err := sw.Run(opts)
				if err != nil {
					t.Fatal(err)
				}
				want := schedule.MustRun(p, opts)
				if got.IterTime != want.IterTime || got.AvgPeakMem != want.AvgPeakMem ||
					got.MaxPeakMem != want.MaxPeakMem || got.OOM != want.OOM ||
					got.BubbleFraction != want.BubbleFraction || got.Samples != want.Samples {
					t.Fatalf("%v M=%d rc=%v: sweeper %+v vs fresh %+v", pol, mc, rc, got, want)
				}
				if !reflect.DeepEqual(got.PerStage, want.PerStage) {
					t.Fatalf("%v M=%d rc=%v: per-stage stats differ", pol, mc, rc)
				}
				if !reflect.DeepEqual(got.Sim.Spans, want.Sim.Spans) {
					t.Fatalf("%v M=%d rc=%v: spans differ", pol, mc, rc)
				}
			}
		}
	}
}
