package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZooCalibration(t *testing.T) {
	// Parameter totals within 5% of the paper's Table II.
	want := map[string]float64{
		"GNMT-16":      291e6,
		"BERT-48":      640e6,
		"XLNet-36":     500e6,
		"ResNet-50":    24.5e6,
		"VGG-19":       137e6,
		"AmoebaNet-36": 933e6,
	}
	tol := map[string]float64{"ResNet-50": 0.25, "VGG-19": 0.06}
	for _, m := range Zoo() {
		got := float64(m.TotalParams())
		eps := tol[m.Name]
		if eps == 0 {
			eps = 0.05
		}
		if math.Abs(got-want[m.Name]) > eps*want[m.Name] {
			t.Errorf("%s: %.1fM params, paper %.1fM", m.Name, got/1e6, want[m.Name]/1e6)
		}
	}
}

func TestZooValidates(t *testing.T) {
	for _, m := range Zoo() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestVGGShape(t *testing.T) {
	m := VGG19()
	if m.NumLayers() != 19 {
		t.Fatalf("VGG-19 has %d layers", m.NumLayers())
	}
	// ~70%+ of weights in the fc layers (paper §VI-C).
	fc := m.RangeParamBytes(16, 19)
	if frac := float64(fc) / float64(m.TotalParamBytes()); frac < 0.70 {
		t.Fatalf("fc layers hold %.0f%% of weights, want >= 70%%", frac*100)
	}
	// Activations shrink front to back (first conv output >> last conv).
	if m.Layers[0].OutputBytes < 50*m.Layers[15].OutputBytes {
		t.Fatalf("activation decay missing: %d vs %d",
			m.Layers[0].OutputBytes, m.Layers[15].OutputBytes)
	}
	// fc compute is a tiny share.
	fcT := m.RangeFwdTime(16, 19, 32)
	if frac := fcT / m.IterFwdTime(32); frac > 0.05 {
		t.Fatalf("fc layers take %.1f%% of compute, want < 5%%", frac*100)
	}
}

func TestGNMTShape(t *testing.T) {
	m := GNMT16()
	if m.NumLayers() != 16 {
		t.Fatalf("GNMT-16 has %d layers", m.NumLayers())
	}
	// Decoder layers ~1.45x encoder compute (paper §VI-C).
	ratio := m.Layers[12].FwdTime / m.Layers[3].FwdTime
	if math.Abs(ratio-1.45) > 0.01 {
		t.Fatalf("decoder/encoder ratio %.2f, want 1.45", ratio)
	}
}

func TestAmoebaNetShape(t *testing.T) {
	m := AmoebaNet36()
	// Last third holds ~73% of parameters (paper §VI-C).
	tail := m.RangeParamBytes(24, 36)
	frac := float64(tail) / float64(m.TotalParamBytes())
	if math.Abs(frac-0.73) > 0.02 {
		t.Fatalf("last third holds %.0f%% of params, want 73%%", frac*100)
	}
	// Compute ramp within +40%.
	ramp := m.Layers[35].FwdTime / m.Layers[0].FwdTime
	if math.Abs(ramp-1.4) > 0.01 {
		t.Fatalf("compute ramp %.2f, want 1.40", ramp)
	}
}

func TestBERTUniformityAndScaling(t *testing.T) {
	m := BERT48()
	if m.NumLayers() != 48 {
		t.Fatalf("BERT-48 has %d layers", m.NumLayers())
	}
	// Middle layers are uniform.
	for i := 2; i < 46; i++ {
		if m.Layers[i].FwdTime != m.Layers[1].FwdTime {
			t.Fatalf("layer %d not uniform", i)
		}
	}
	// Deeper variants scale parameters linearly (Table VIII).
	b96 := BERT(96)
	perLayer48 := float64(m.TotalParamBytes()) / 48
	perLayer96 := float64(b96.TotalParamBytes()) / 96
	if math.Abs(perLayer96-perLayer48)/perLayer48 > 0.05 {
		t.Fatalf("per-layer params not stable: %.1f vs %.1f", perLayer48, perLayer96)
	}
}

func TestScalingLinearity(t *testing.T) {
	m := BERT48()
	if got, want := m.FwdTime(5, 4), 2*m.FwdTime(5, 2); math.Abs(got-want) > 1e-12 {
		t.Fatalf("FwdTime not linear: %g vs %g", got, want)
	}
	if got, want := m.OutputBytes(5, 8), int64(4)*m.OutputBytes(5, 2); got != want {
		t.Fatalf("OutputBytes not linear: %d vs %d", got, want)
	}
}

func TestRangeSums(t *testing.T) {
	m := Synthetic(10, 1e-3, 100, 200, 400)
	if got := m.RangeFwdTime(0, 10, 1); math.Abs(got-10e-3) > 1e-12 {
		t.Fatalf("RangeFwdTime = %g", got)
	}
	if got := m.RangeBwdTime(2, 5, 1); math.Abs(got-3*2e-3) > 1e-12 {
		t.Fatalf("RangeBwdTime = %g", got)
	}
	if got := m.RangeParamBytes(0, 10); got != 4000 {
		t.Fatalf("RangeParamBytes = %d", got)
	}
	if got := m.RangeStoredBytes(1, 3, 2); got != 800 {
		t.Fatalf("RangeStoredBytes = %d", got)
	}
}

// Property: range sums are additive over adjacent ranges.
func TestRangeAdditivityProperty(t *testing.T) {
	m := BERT48()
	f := func(a8, b8, c8 uint8) bool {
		n := m.NumLayers()
		a, b, c := int(a8)%n, int(b8)%n, int(c8)%n
		if a > b {
			a, b = b, a
		}
		if b > c {
			b, c = c, b
		}
		if a > b {
			a, b = b, a
		}
		whole := m.RangeFwdTime(a, c, 2)
		split := m.RangeFwdTime(a, b, 2) + m.RangeFwdTime(b, c, 2)
		return math.Abs(whole-split) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSingleDeviceIterTime(t *testing.T) {
	m := Synthetic(4, 1e-3, 0, 0, 0) // fwd 4ms, bwd 8ms per micro-batch of 1
	got := m.SingleDeviceIterTime(8)
	if math.Abs(got-8*12e-3) > 1e-12 {
		t.Fatalf("SingleDeviceIterTime = %g", got)
	}
}

func TestOptimizerStateBytes(t *testing.T) {
	m := BERT48() // Adam: 16 bytes/param
	params := m.TotalParamBytes()
	if got := m.OptimizerStateBytes(params); got != params*4 {
		t.Fatalf("Adam state = %d, want %d", got, params*4)
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	bad := &Model{Name: "empty", ProfileBatch: 1}
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for empty model")
	}
	m := Synthetic(2, 1e-3, 0, 0, 0)
	m.ProfileBatch = 0
	if err := m.Validate(); err == nil {
		t.Fatal("expected error for zero profile batch")
	}
	m = Synthetic(2, 1e-3, 0, 0, 0)
	m.Layers[0].FwdTime = -1
	if err := m.Validate(); err == nil {
		t.Fatal("expected error for negative time")
	}
}

func TestByName(t *testing.T) {
	if ByName("BERT-48") == nil {
		t.Fatal("BERT-48 missing")
	}
	if ByName("nope") != nil {
		t.Fatal("unknown model should return nil")
	}
}

func TestMemoryCalibration(t *testing.T) {
	// AmoebaNet-36 must not fit one 16 GB device (Table II: DP infeasible);
	// the transformers must fit.
	const limit = int64(16) << 30
	foot := func(m *Model) int64 {
		return m.OptimizerStateBytes(m.TotalParamBytes()) +
			m.RangeStoredBytes(0, m.NumLayers(), m.ProfileBatch) + m.WorkspaceBytes
	}
	if foot(AmoebaNet36()) <= limit {
		t.Fatal("AmoebaNet-36 should exceed 16GB on one device")
	}
	if foot(BERT48()) > limit {
		t.Fatal("BERT-48 should fit one device at micro-batch 2")
	}
	if foot(XLNet36()) > limit {
		t.Fatal("XLNet-36 should fit one device at micro-batch 1")
	}
}
