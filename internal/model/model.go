// Package model defines the per-layer profile representation the DAPPLE
// planner consumes, plus a synthetic model zoo reproducing the six benchmark
// networks of the paper (GNMT-16, BERT-48, XLNet-36, ResNet-50, VGG-19,
// AmoebaNet-36).
//
// A Model is exactly what the paper's profiler emits: for every layer, the
// forward/backward compute time at a reference micro-batch size, the output
// (boundary) activation bytes, the total intermediate activation bytes that
// must be held for the backward pass, and the parameter bytes. Times and
// activation sizes scale linearly with batch size, which is the same
// assumption the paper's planner makes.
package model

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
)

// Layer is one profiled pipeline-splittable unit of a model.
type Layer struct {
	Name string

	// FwdTime and BwdTime are compute seconds at ProfileBatch samples.
	FwdTime float64
	BwdTime float64

	// OutputBytes is the activation volume crossing the boundary after this
	// layer at ProfileBatch samples — what must be sent to the next stage if
	// the model is split here.
	OutputBytes int64

	// StoredBytes is the total intermediate state this layer keeps alive
	// between its forward and backward pass at ProfileBatch samples.
	StoredBytes int64

	// ParamBytes is the fp32 parameter volume of the layer.
	ParamBytes int64
}

// Model is a profiled DNN: an ordered list of layers plus the batch-size
// context the profile was taken at.
type Model struct {
	Name   string
	Layers []Layer

	// ProfileBatch is the micro-batch size the per-layer numbers refer to
	// (the "cbch size" column of Table II).
	ProfileBatch int

	// DefaultGBS is the paper's global batch size for this benchmark.
	DefaultGBS int

	// OptimizerBytesPerParam is the total training state per fp32 parameter:
	// 16 for Adam (param+grad+m+v), 12 for SGD-momentum and RMSProp
	// (param+grad+slot).
	OptimizerBytesPerParam int

	// WorkspaceBytes is the fixed per-device framework/workspace overhead
	// (cuDNN workspaces, runtime buffers).
	WorkspaceBytes int64
}

// Optimizer state sizes in bytes per fp32 parameter.
const (
	AdamBytesPerParam     = 16 // param + grad + m + v
	MomentumBytesPerParam = 12 // param + grad + momentum
	RMSPropBytesPerParam  = 12 // param + grad + mean-square
)

// NumLayers returns the number of pipeline-splittable layers.
func (m *Model) NumLayers() int { return len(m.Layers) }

// TotalParamBytes returns the fp32 parameter volume of the whole model.
func (m *Model) TotalParamBytes() int64 {
	var sum int64
	for _, l := range m.Layers {
		sum += l.ParamBytes
	}
	return sum
}

// TotalParams returns the parameter count (fp32 elements).
func (m *Model) TotalParams() int64 { return m.TotalParamBytes() / 4 }

// GradientBytes returns the gradient volume synchronized per iteration,
// equal to the fp32 parameter volume.
func (m *Model) GradientBytes() int64 { return m.TotalParamBytes() }

// scale converts a per-ProfileBatch quantity to a micro-batch of mb samples.
func (m *Model) scale(v float64, mb int) float64 {
	return v * float64(mb) / float64(m.ProfileBatch)
}

// FwdTime returns the forward time of layer i at micro-batch size mb.
func (m *Model) FwdTime(i, mb int) float64 { return m.scale(m.Layers[i].FwdTime, mb) }

// BwdTime returns the backward time of layer i at micro-batch size mb.
func (m *Model) BwdTime(i, mb int) float64 { return m.scale(m.Layers[i].BwdTime, mb) }

// OutputBytes returns the boundary activation bytes after layer i at
// micro-batch size mb.
func (m *Model) OutputBytes(i, mb int) int64 {
	return int64(m.scale(float64(m.Layers[i].OutputBytes), mb))
}

// StoredBytes returns the retained activation bytes of layer i at micro-batch
// size mb.
func (m *Model) StoredBytes(i, mb int) int64 {
	return int64(m.scale(float64(m.Layers[i].StoredBytes), mb))
}

// RangeFwdTime sums forward time of layers [lo, hi) at micro-batch size mb.
func (m *Model) RangeFwdTime(lo, hi, mb int) float64 {
	var sum float64
	for i := lo; i < hi; i++ {
		sum += m.Layers[i].FwdTime
	}
	return m.scale(sum, mb)
}

// RangeBwdTime sums backward time of layers [lo, hi) at micro-batch size mb.
func (m *Model) RangeBwdTime(lo, hi, mb int) float64 {
	var sum float64
	for i := lo; i < hi; i++ {
		sum += m.Layers[i].BwdTime
	}
	return m.scale(sum, mb)
}

// RangeParamBytes sums parameter bytes of layers [lo, hi).
func (m *Model) RangeParamBytes(lo, hi int) int64 {
	var sum int64
	for i := lo; i < hi; i++ {
		sum += m.Layers[i].ParamBytes
	}
	return sum
}

// RangeStoredBytes sums retained activation bytes of layers [lo, hi) at
// micro-batch size mb.
func (m *Model) RangeStoredBytes(lo, hi, mb int) int64 {
	var sum int64
	for i := lo; i < hi; i++ {
		sum += m.Layers[i].StoredBytes
	}
	return int64(m.scale(float64(sum), mb))
}

// IterFwdTime returns the forward time of the full model at micro-batch mb.
func (m *Model) IterFwdTime(mb int) float64 { return m.RangeFwdTime(0, len(m.Layers), mb) }

// IterBwdTime returns the backward time of the full model at micro-batch mb.
func (m *Model) IterBwdTime(mb int) float64 { return m.RangeBwdTime(0, len(m.Layers), mb) }

// SingleDeviceIterTime returns the time to execute one full global batch of
// gbs samples on one device by sequentially accumulating micro-batches of
// ProfileBatch samples — the denominator of the paper's speedup metric.
func (m *Model) SingleDeviceIterTime(gbs int) float64 {
	steps := float64(gbs) / float64(m.ProfileBatch)
	return steps * (m.IterFwdTime(m.ProfileBatch) + m.IterBwdTime(m.ProfileBatch))
}

// OptimizerStateBytes returns the optimizer-inclusive training-state bytes
// for params parameter-bytes worth of fp32 weights.
func (m *Model) OptimizerStateBytes(paramBytes int64) int64 {
	return paramBytes / 4 * int64(m.OptimizerBytesPerParam)
}

// Validate checks profile consistency.
func (m *Model) Validate() error {
	if len(m.Layers) == 0 {
		return errors.New("model: no layers")
	}
	if m.ProfileBatch <= 0 {
		return fmt.Errorf("model %s: profile batch %d", m.Name, m.ProfileBatch)
	}
	for i, l := range m.Layers {
		if l.FwdTime < 0 || l.BwdTime < 0 {
			return fmt.Errorf("model %s: layer %d (%s) has negative time", m.Name, i, l.Name)
		}
		if l.OutputBytes < 0 || l.StoredBytes < 0 || l.ParamBytes < 0 {
			return fmt.Errorf("model %s: layer %d (%s) has negative size", m.Name, i, l.Name)
		}
	}
	return nil
}

// String implements fmt.Stringer.
func (m *Model) String() string {
	return fmt.Sprintf("%s: %d layers, %.1fM params, profile batch %d",
		m.Name, len(m.Layers), float64(m.TotalParams())/1e6, m.ProfileBatch)
}

// Fingerprint hashes every field that influences planning (names, layer
// profiles, batch and optimizer geometry) into a stable 64-bit key. Two
// models with equal fingerprints plan identically, so caches may key on it
// rather than on the Name alone — re-profiled custom architectures share a
// name but not a profile.
func (m *Model) Fingerprint() uint64 {
	h := fnv.New64a()
	w := func(v uint64) {
		var b [8]byte
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	// Strings are length-prefixed so adjacent fields cannot absorb each
	// other's bytes and collide across distinct models.
	ws := func(s string) {
		w(uint64(len(s)))
		h.Write([]byte(s))
	}
	ws(m.Name)
	w(uint64(m.ProfileBatch))
	w(uint64(m.DefaultGBS))
	w(uint64(m.OptimizerBytesPerParam))
	w(uint64(m.WorkspaceBytes))
	for _, l := range m.Layers {
		ws(l.Name)
		w(math.Float64bits(l.FwdTime))
		w(math.Float64bits(l.BwdTime))
		w(uint64(l.OutputBytes))
		w(uint64(l.StoredBytes))
		w(uint64(l.ParamBytes))
	}
	return h.Sum64()
}
