package model

import "fmt"

// The zoo reproduces the six benchmarks of Table II. Per-layer numbers are
// calibrated against every statistic the paper publishes:
//
//   - parameter totals and gradient volumes (Tables I, II),
//   - boundary activation sizes at the planner's split points (Table I),
//   - memory footprints (Table II, Table VI, Table VIII),
//   - workload shape prose (§VI-B/C): VGG-19 holds ~70% of weights in the
//     final fc layers with activations shrinking front-to-back; GNMT decoder
//     layers cost ~1.45x encoder layers; BERT/XLNet are uniform stacks;
//     AmoebaNet's last third holds 73% of parameters with a compute ramp
//     within +40%.
//
// Compute times assume a sustained 7 TFLOP/s fp32 device (half of a V100's
// peak), the utilization the paper's TF kernels typically reach.
const (
	mb  = int64(1) << 20 // mebibyte
	gib = int64(1) << 30 // gibibyte

	sustainedFLOPS = 7e12
)

// flopsTime converts forward FLOPs to seconds on the reference device.
func flopsTime(flops float64) float64 { return flops / sustainedFLOPS }

// BERT returns a BERT-style uniform transformer stack with l encoder layers
// (BERT-48 in the paper; other depths feed the weak-scaling study of Table
// VIII). Profile micro-batch 2, sequence length 384 (SQuAD), hidden 1024.
func BERT(l int) *Model {
	const (
		paramsPerLayer = 12.6e6 // 12 h^2 + layer norms, h = 1024
		embedParams    = 31.3e6 // 30k vocab x 1024 + positional
		headParams     = 2.1e6  // span head + pooler
		fwdPerLayer    = 3.0e-3 // seconds @ micro-batch 2
		outBytes       = 88 * mb / 10
		storedBytes    = 60 * mb // retained activations @ micro-batch 2
	)
	layers := make([]Layer, l)
	for i := range layers {
		layers[i] = Layer{
			Name:        fmt.Sprintf("enc%02d", i),
			FwdTime:     fwdPerLayer,
			BwdTime:     2 * fwdPerLayer,
			OutputBytes: outBytes,
			StoredBytes: storedBytes,
			ParamBytes:  int64(paramsPerLayer * 4),
		}
	}
	// Embedding folds into the first layer, task head into the last: they are
	// not worth separate pipeline stages but their parameters matter for
	// gradient sync.
	layers[0].ParamBytes += int64(embedParams * 4)
	layers[0].FwdTime *= 1.15
	layers[0].BwdTime *= 1.15
	layers[l-1].ParamBytes += int64(headParams * 4)
	layers[l-1].FwdTime *= 1.10
	layers[l-1].BwdTime *= 1.10
	return &Model{
		Name:                   fmt.Sprintf("BERT-%d", l),
		Layers:                 layers,
		ProfileBatch:           2,
		DefaultGBS:             64,
		OptimizerBytesPerParam: AdamBytesPerParam,
		WorkspaceBytes:         3 * gib / 2,
	}
}

// BERT48 returns the paper's main language-model benchmark.
func BERT48() *Model { return BERT(48) }

// XLNet36 returns the 36-layer XLNet benchmark: uniform transformer stack
// with two-stream attention (memory-heavier than BERT), profile micro-batch 1
// at sequence length 512.
func XLNet36() *Model {
	const (
		l              = 36
		paramsPerLayer = 13.0e6
		embedParams    = 31.3e6
		fwdPerLayer    = 4.0e-3 // seconds @ micro-batch 1
		outBytes       = 42 * mb / 10
		storedBytes    = 110 * mb
	)
	layers := make([]Layer, l)
	for i := range layers {
		layers[i] = Layer{
			Name:        fmt.Sprintf("xl%02d", i),
			FwdTime:     fwdPerLayer,
			BwdTime:     2 * fwdPerLayer,
			OutputBytes: outBytes,
			StoredBytes: storedBytes,
			ParamBytes:  int64(paramsPerLayer * 4),
		}
	}
	layers[0].ParamBytes += int64(embedParams * 4)
	layers[0].FwdTime *= 1.15
	layers[0].BwdTime *= 1.15
	return &Model{
		Name:                   "XLNet-36",
		Layers:                 layers,
		ProfileBatch:           1,
		DefaultGBS:             128,
		OptimizerBytesPerParam: AdamBytesPerParam,
		WorkspaceBytes:         3 * gib / 2,
	}
}

// GNMT16 returns the 16-layer GNMT translation benchmark: 8 encoder and 8
// decoder LSTM layers (hidden 1024); decoder layers cost ~1.45x encoder
// layers. Embedding parameters fold into the first encoder layer, the output
// projection into the last decoder layer. Profile micro-batch 64.
func GNMT16() *Model {
	const (
		paramsPerLayer = 12.05e6 // 8 h^2 LSTM + attention share
		embedParams    = 65.5e6  // src+tgt vocab embeddings
		projParams     = 33.5e6  // output projection
		encFwd         = 14.0e-3 // seconds @ micro-batch 64
		decRatio       = 1.45
		outBytes       = 26 * mb
		storedBytes    = 100 * mb
	)
	layers := make([]Layer, 16)
	for i := range layers {
		name, fwd := fmt.Sprintf("enc%d", i), encFwd
		if i >= 8 {
			name, fwd = fmt.Sprintf("dec%d", i-8), encFwd*decRatio
		}
		layers[i] = Layer{
			Name:        name,
			FwdTime:     fwd,
			BwdTime:     2 * fwd,
			OutputBytes: outBytes,
			StoredBytes: storedBytes,
			ParamBytes:  int64(paramsPerLayer * 4),
		}
	}
	layers[0].ParamBytes += int64(embedParams * 4)
	layers[15].ParamBytes += int64(projParams * 4)
	return &Model{
		Name:                   "GNMT-16",
		Layers:                 layers,
		ProfileBatch:           64,
		DefaultGBS:             1024,
		OptimizerBytesPerParam: AdamBytesPerParam,
		WorkspaceBytes:         gib,
	}
}

// vggConv describes one VGG convolution for the builder below.
type vggConv struct {
	name      string
	cin, cout int
	outHW     int  // spatial size the conv computes at
	pooled    bool // 2x2 max-pool after this conv
}

// VGG19 returns the 19 weight-layer VGG benchmark at profile micro-batch 32.
// Built from the true architecture so the paper's two key properties hold
// exactly: activations shrink monotonically front-to-back (411 MB -> 0.5 MB
// at batch 32) and the fc layers hold ~85% of the weights with ~1% of the
// compute.
func VGG19() *Model {
	convs := []vggConv{
		{"c1_1", 3, 64, 224, false}, {"c1_2", 64, 64, 224, true},
		{"c2_1", 64, 128, 112, false}, {"c2_2", 128, 128, 112, true},
		{"c3_1", 128, 256, 56, false}, {"c3_2", 256, 256, 56, false},
		{"c3_3", 256, 256, 56, false}, {"c3_4", 256, 256, 56, true},
		{"c4_1", 256, 512, 28, false}, {"c4_2", 512, 512, 28, false},
		{"c4_3", 512, 512, 28, false}, {"c4_4", 512, 512, 28, true},
		{"c5_1", 512, 512, 14, false}, {"c5_2", 512, 512, 14, false},
		{"c5_3", 512, 512, 14, false}, {"c5_4", 512, 512, 14, true},
	}
	const batch = 32
	layers := make([]Layer, 0, 19)
	for _, c := range convs {
		macs := float64(9*c.cin*c.cout) * float64(c.outHW*c.outHW) // k=3
		outHW := c.outHW
		if c.pooled {
			outHW /= 2
		}
		outBytes := int64(outHW*outHW*c.cout*4) * batch
		layers = append(layers, Layer{
			Name:        c.name,
			FwdTime:     flopsTime(2 * macs * batch),
			BwdTime:     flopsTime(4 * macs * batch),
			OutputBytes: outBytes,
			StoredBytes: outBytes + outBytes/2,
			ParamBytes:  int64(9*c.cin*c.cout+c.cout) * 4,
		})
	}
	fcs := []struct {
		name    string
		in, out int
	}{{"fc6", 7 * 7 * 512, 4096}, {"fc7", 4096, 4096}, {"fc8", 4096, 1000}}
	for _, f := range fcs {
		macs := float64(f.in * f.out)
		outBytes := int64(f.out*4) * batch
		layers = append(layers, Layer{
			Name:        f.name,
			FwdTime:     flopsTime(2 * macs * batch),
			BwdTime:     flopsTime(4 * macs * batch),
			OutputBytes: outBytes,
			StoredBytes: 2 * outBytes,
			ParamBytes:  int64(macs+float64(f.out)) * 4,
		})
	}
	return &Model{
		Name:                   "VGG-19",
		Layers:                 layers,
		ProfileBatch:           batch,
		DefaultGBS:             2048,
		OptimizerBytesPerParam: MomentumBytesPerParam,
		WorkspaceBytes:         gib / 2,
	}
}

// ResNet50 returns the image-classification benchmark at profile micro-batch
// 128: small parameter volume (~25M) with high compute density, the regime
// where plain data parallelism wins on every interconnect (Table V).
func ResNet50() *Model {
	type group struct {
		blocks   int
		flops    float64 // forward GFLOPs per block per sample
		params   float64 // millions per block
		outBytes int64   // boundary bytes per sample
	}
	groups := []group{
		{3, 0.23e9, 0.25, 56 * 56 * 256 * 4},
		{4, 0.26e9, 1.22, 28 * 28 * 512 * 4},
		{6, 0.25e9, 2.10, 14 * 14 * 1024 * 4},
		{3, 0.21e9, 3.05, 7 * 7 * 2048 * 4},
	}
	const batch = 128
	layers := []Layer{{
		Name:        "stem",
		FwdTime:     flopsTime(0.24e9 * batch),
		BwdTime:     flopsTime(0.48e9 * batch),
		OutputBytes: 56 * 56 * 64 * 4 * batch,
		StoredBytes: 56 * 56 * 64 * 4 * batch * 2,
		ParamBytes:  int64(0.01e6 * 4),
	}}
	for g, grp := range groups {
		for b := 0; b < grp.blocks; b++ {
			layers = append(layers, Layer{
				Name:        fmt.Sprintf("res%d_%d", g+2, b),
				FwdTime:     flopsTime(grp.flops * batch),
				BwdTime:     flopsTime(2 * grp.flops * batch),
				OutputBytes: grp.outBytes * batch,
				StoredBytes: grp.outBytes * batch * 2,
				ParamBytes:  int64(grp.params * 1e6 * 4),
			})
		}
	}
	layers = append(layers, Layer{
		Name:        "fc",
		FwdTime:     flopsTime(2 * 2048 * 1000 * batch),
		BwdTime:     flopsTime(4 * 2048 * 1000 * batch),
		OutputBytes: 1000 * 4 * batch,
		StoredBytes: 2 * 1000 * 4 * batch,
		ParamBytes:  2048 * 1000 * 4,
	})
	return &Model{
		Name:                   "ResNet-50",
		Layers:                 layers,
		ProfileBatch:           batch,
		DefaultGBS:             2048,
		OptimizerBytesPerParam: MomentumBytesPerParam,
		WorkspaceBytes:         gib / 2,
	}
}

// AmoebaNet36 returns the 36-cell AmoebaNet benchmark at profile micro-batch
// 1: the last 12 cells hold 73% of the 933M parameters, and per-cell compute
// ramps up by 40% front to back. It does not fit a single 16 GB device, so
// pipeline parallelism is mandatory (Table V, Fig. 12).
func AmoebaNet36() *Model {
	const (
		cells       = 36
		earlyParams = 10.5e6  // cells 0-23: 252M total
		lateParams  = 56.75e6 // cells 24-35: 681M total (73%)
		baseFwd     = 11.0e-3 // seconds @ micro-batch 1
		outBytes    = 112 * mb / 10
		storedBytes = 200 * mb
	)
	layers := make([]Layer, cells)
	for i := range layers {
		params := earlyParams
		if i >= 24 {
			params = lateParams
		}
		fwd := baseFwd * (1 + 0.4*float64(i)/float64(cells-1))
		layers[i] = Layer{
			Name:        fmt.Sprintf("cell%02d", i),
			FwdTime:     fwd,
			BwdTime:     2 * fwd,
			OutputBytes: outBytes,
			StoredBytes: storedBytes,
			ParamBytes:  int64(params * 4),
		}
	}
	return &Model{
		Name:                   "AmoebaNet-36",
		Layers:                 layers,
		ProfileBatch:           1,
		DefaultGBS:             128,
		OptimizerBytesPerParam: RMSPropBytesPerParam,
		WorkspaceBytes:         gib,
	}
}

// Zoo returns all six benchmark models of Table II.
func Zoo() []*Model {
	return []*Model{GNMT16(), BERT48(), XLNet36(), ResNet50(), VGG19(), AmoebaNet36()}
}

// ByName returns the zoo model with the given name, or nil.
func ByName(name string) *Model {
	for _, m := range Zoo() {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// Synthetic builds a uniform n-layer model for tests and micro-benchmarks:
// each layer takes fwd seconds forward, 2x backward, with the given byte
// sizes at profile micro-batch 1.
func Synthetic(n int, fwd float64, outBytes, storedBytes, paramBytes int64) *Model {
	layers := make([]Layer, n)
	for i := range layers {
		layers[i] = Layer{
			Name:        fmt.Sprintf("L%d", i),
			FwdTime:     fwd,
			BwdTime:     2 * fwd,
			OutputBytes: outBytes,
			StoredBytes: storedBytes,
			ParamBytes:  paramBytes,
		}
	}
	return &Model{
		Name:                   fmt.Sprintf("synthetic-%d", n),
		Layers:                 layers,
		ProfileBatch:           1,
		DefaultGBS:             n * 4,
		OptimizerBytesPerParam: AdamBytesPerParam,
	}
}
