package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dapple/internal/tensor"
)

// numericGrad estimates dLoss/dW[i] by central differences.
func numericGrad(net *Network, x *tensor.Matrix, y []int, p Param, idx int) float64 {
	const h = 1e-6
	orig := p.W.Data[idx]
	p.W.Data[idx] = orig + h
	out, _ := net.Forward(x)
	lp, _ := SoftmaxCrossEntropy(out, y)
	p.W.Data[idx] = orig - h
	out, _ = net.Forward(x)
	lm, _ := SoftmaxCrossEntropy(out, y)
	p.W.Data[idx] = orig
	return (lp - lm) / (2 * h)
}

// TestBackpropMatchesNumericGradient is the foundational check: analytic
// gradients agree with finite differences on an MLP.
func TestBackpropMatchesNumericGradient(t *testing.T) {
	net := MLP([]int{5, 7, 4}, 42)
	rng := rand.New(rand.NewSource(7))
	x := tensor.New(6, 5)
	x.Randomize(rng, 1)
	y := []int{0, 1, 2, 3, 0, 1}

	out, ctxs := net.Forward(x)
	_, dy := SoftmaxCrossEntropy(out, y)
	net.Backward(ctxs, dy)

	for pi, p := range net.Params() {
		for _, idx := range []int{0, len(p.W.Data) / 2, len(p.W.Data) - 1} {
			want := numericGrad(net, x, y, p, idx)
			got := p.G.Data[idx]
			if math.Abs(got-want) > 1e-5*(1+math.Abs(want)) {
				t.Fatalf("param %d[%d]: analytic %g vs numeric %g", pi, idx, got, want)
			}
		}
	}
}

func TestForwardIsReentrant(t *testing.T) {
	// Two interleaved micro-batches through the same layers must not
	// interfere — the property pipelining depends on.
	net := MLP([]int{4, 8, 3}, 1)
	rng := rand.New(rand.NewSource(2))
	x1, x2 := tensor.New(3, 4), tensor.New(3, 4)
	x1.Randomize(rng, 1)
	x2.Randomize(rng, 1)

	o1a, _ := net.Forward(x1)
	o1b, ctx1 := net.Forward(x1)
	_, ctx2 := net.Forward(x2)
	if d := tensor.MaxAbsDiff(o1a, o1b); d != 0 {
		t.Fatalf("same input gives different outputs: %g", d)
	}

	// Backward in the opposite order of forward.
	dy := tensor.New(3, 3)
	dy.Randomize(rng, 1)
	net.Backward(ctx2, dy)
	g2 := GradSnapshot(net)
	net.ZeroGrads()
	net.Backward(ctx1, dy)
	g1 := GradSnapshot(net)

	// Now recompute sequentially for reference.
	net.ZeroGrads()
	_, c1 := net.Forward(x1)
	net.Backward(c1, dy)
	r1 := GradSnapshot(net)
	net.ZeroGrads()
	_, c2 := net.Forward(x2)
	net.Backward(c2, dy)
	r2 := GradSnapshot(net)

	for i := range g1 {
		if math.Abs(g1[i]-r1[i]) > 1e-12 || math.Abs(g2[i]-r2[i]) > 1e-12 {
			t.Fatal("interleaved backward differs from sequential")
		}
	}
}

// GradSnapshot flattens current gradients (test helper).
func GradSnapshot(n *Network) []float64 {
	var out []float64
	for _, p := range n.Params() {
		out = append(out, append([]float64(nil), p.G.Data...)...)
	}
	return out
}

func TestCloneIsDeepAndZeroGrad(t *testing.T) {
	net := MLP([]int{3, 4, 2}, 5)
	out, ctxs := net.Forward(tensor.New(2, 3))
	_, dy := SoftmaxCrossEntropy(out, []int{0, 1})
	net.Backward(ctxs, dy)

	c := net.Clone()
	for _, p := range c.Params() {
		for _, g := range p.G.Data {
			if g != 0 {
				t.Fatal("clone has non-zero grads")
			}
		}
	}
	// Mutating the clone's params must not touch the original.
	c.Params()[0].W.Data[0] += 1
	if net.Params()[0].W.Data[0] == c.Params()[0].W.Data[0] {
		t.Fatal("clone shares parameter storage")
	}
}

func TestSoftmaxCrossEntropyGradientSumsToZero(t *testing.T) {
	// Each row's softmax gradient sums to zero (probabilities minus onehot).
	rng := rand.New(rand.NewSource(11))
	logits := tensor.New(4, 6)
	logits.Randomize(rng, 3)
	_, g := SoftmaxCrossEntropy(logits, []int{1, 5, 0, 2})
	for r := 0; r < 4; r++ {
		var s float64
		for _, v := range g.Row(r) {
			s += v
		}
		if math.Abs(s) > 1e-12 {
			t.Fatalf("row %d grad sums to %g", r, s)
		}
	}
}

func TestSoftmaxCrossEntropyLoss(t *testing.T) {
	// Uniform logits give log(C) loss.
	logits := tensor.New(2, 4)
	l, _ := SoftmaxCrossEntropy(logits, []int{0, 3})
	if math.Abs(l-math.Log(4)) > 1e-12 {
		t.Fatalf("uniform loss %g, want %g", l, math.Log(4))
	}
}

func TestMSE(t *testing.T) {
	pred := tensor.FromSlice(1, 2, []float64{1, 2})
	target := tensor.FromSlice(1, 2, []float64{0, 4})
	l, g := MSE(pred, target)
	if math.Abs(l-2.5) > 1e-12 { // mean of squared diffs: (1+4)/2
		t.Fatalf("mse loss %g, want 2.5", l)
	}
	if g.Data[0] != 1 || g.Data[1] != -2 { // 2*d/n
		t.Fatalf("mse grad %v", g.Data)
	}
}

func TestSGDStep(t *testing.T) {
	net := MLP([]int{2, 2}, 3)
	p := net.Params()[0]
	before := p.W.Data[0]
	p.G.Data[0] = 2
	SGD{LR: 0.5}.Step(net.Params())
	if p.W.Data[0] != before-1 {
		t.Fatalf("sgd step: %g -> %g", before, p.W.Data[0])
	}
	if p.G.Data[0] != 0 {
		t.Fatal("sgd did not zero grads")
	}
}

func TestAdamDeterministic(t *testing.T) {
	run := func() []float64 {
		net := MLP([]int{3, 3, 2}, 9)
		opt := NewAdam(1e-3)
		rng := rand.New(rand.NewSource(1))
		x := tensor.New(4, 3)
		x.Randomize(rng, 1)
		y := []int{0, 1, 0, 1}
		for i := 0; i < 5; i++ {
			out, ctxs := net.Forward(x)
			_, dy := SoftmaxCrossEntropy(out, y)
			net.Backward(ctxs, dy)
			opt.Step(net.Params())
		}
		var ps []float64
		for _, p := range net.Params() {
			ps = append(ps, p.W.Data...)
		}
		return ps
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("adam training is not deterministic")
		}
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	net := MLP([]int{2, 16, 2}, 1234)
	opt := NewAdam(5e-3)
	rng := rand.New(rand.NewSource(99))
	// XOR-ish separable data.
	x := tensor.New(64, 2)
	y := make([]int, 64)
	for i := 0; i < 64; i++ {
		a, b := rng.Float64()*2-1, rng.Float64()*2-1
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		if a*b > 0 {
			y[i] = 1
		}
	}
	var first, last float64
	for i := 0; i < 200; i++ {
		out, ctxs := net.Forward(x)
		l, dy := SoftmaxCrossEntropy(out, y)
		net.Backward(ctxs, dy)
		opt.Step(net.Params())
		if i == 0 {
			first = l
		}
		last = l
	}
	if last > first/2 {
		t.Fatalf("loss barely moved: %g -> %g", first, last)
	}
}

// Property: gradient accumulation is linear — grad(b1) + grad(b2) equals
// accumulating both batches before reading.
func TestGradAccumulationLinearity(t *testing.T) {
	f := func(seed int64) bool {
		net := MLP([]int{3, 5, 2}, 77)
		rng := rand.New(rand.NewSource(seed))
		x1, x2 := tensor.New(2, 3), tensor.New(2, 3)
		x1.Randomize(rng, 1)
		x2.Randomize(rng, 1)
		y := []int{0, 1}

		out, c := net.Forward(x1)
		_, dy := SoftmaxCrossEntropy(out, y)
		net.Backward(c, dy)
		out, c = net.Forward(x2)
		_, dy = SoftmaxCrossEntropy(out, y)
		net.Backward(c, dy)
		both := GradSnapshot(net)

		net.ZeroGrads()
		out, c = net.Forward(x1)
		_, dy = SoftmaxCrossEntropy(out, y)
		net.Backward(c, dy)
		g1 := GradSnapshot(net)
		net.ZeroGrads()
		out, c = net.Forward(x2)
		_, dy = SoftmaxCrossEntropy(out, y)
		net.Backward(c, dy)
		g2 := GradSnapshot(net)

		for i := range both {
			if math.Abs(both[i]-(g1[i]+g2[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestNetworkSliceSharesLayers(t *testing.T) {
	net := MLP([]int{2, 3, 2}, 8)
	head := net.Slice(0, 1)
	head.Layers[0].(*Dense).W.Data[0] = 123
	if net.Layers[0].(*Dense).W.Data[0] != 123 {
		t.Fatal("slice does not share layers")
	}
}

func TestStashBytes(t *testing.T) {
	m := tensor.New(2, 3)
	if StashBytes(m) != 48 {
		t.Fatalf("StashBytes matrix = %d", StashBytes(m))
	}
	if StashBytes(nil) != 0 {
		t.Fatal("StashBytes(nil) != 0")
	}
	if StashBytes([]*tensor.Matrix{m, m}) != 96 {
		t.Fatal("StashBytes slice wrong")
	}
}
