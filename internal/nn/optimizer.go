package nn

import (
	"fmt"
	"math"
)

// Optimizer updates parameters from accumulated gradients. Step consumes the
// gradients as-is (callers are responsible for averaging across micro-batches
// or replicas first) and zeroes them afterwards.
type Optimizer interface {
	Step(params []Param)
}

// OptState is a snapshot of an optimizer's internal state against a fixed
// parameter order: Step is the update counter (Adam's bias-correction t) and
// Slots[s][i] is per-parameter state slot s of the i-th parameter (Momentum
// keeps one slot, the velocity; Adam keeps two, the first and second
// moments). A slot vector's length always equals the parameter's element
// count, even when the optimizer has not touched the parameter yet.
type OptState struct {
	// Step is the optimizer's update counter.
	Step int
	// Slots holds the per-parameter state vectors, indexed [slot][param].
	Slots [][][]float64
}

// Stateful is implemented by optimizers whose update rule depends on
// accumulated per-parameter state. Checkpointing captures and restores that
// state so a resumed session continues the exact training trajectory instead
// of restarting momentum and moment estimates from zero.
type Stateful interface {
	// NumSlots returns how many state vectors the optimizer keeps per
	// parameter.
	NumSlots() int
	// CaptureState deep-copies the optimizer's state for params, in order.
	CaptureState(params []Param) OptState
	// RestoreState overwrites the optimizer's state for params from a
	// snapshot with matching geometry.
	RestoreState(params []Param, st OptState) error
}

// captureSlots deep-copies one state map into a per-parameter slot, with
// zero vectors for parameters the optimizer has not touched yet.
func captureSlots(params []Param, m map[Param][]float64) [][]float64 {
	out := make([][]float64, len(params))
	for i, p := range params {
		v := make([]float64, len(p.W.Data))
		copy(v, m[p])
		out[i] = v
	}
	return out
}

// restoreSlots overwrites one state map from a captured slot.
func restoreSlots(params []Param, m map[Param][]float64, slot [][]float64) error {
	if len(slot) != len(params) {
		return fmt.Errorf("nn: optimizer state covers %d params, want %d", len(slot), len(params))
	}
	for i, p := range params {
		if len(slot[i]) != len(p.W.Data) {
			return fmt.Errorf("nn: optimizer state %d has %d elements, param has %d", i, len(slot[i]), len(p.W.Data))
		}
		v := make([]float64, len(slot[i]))
		copy(v, slot[i])
		m[p] = v
	}
	return nil
}

// SGD is plain stochastic gradient descent.
type SGD struct {
	LR float64
}

// Step implements Optimizer.
func (o SGD) Step(params []Param) {
	for _, p := range params {
		p.W.AXPY(-o.LR, p.G)
		p.G.Zero()
	}
}

// Momentum is SGD with classical momentum.
type Momentum struct {
	LR, Beta float64
	vel      map[Param][]float64
}

// NewMomentum returns a Momentum optimizer.
func NewMomentum(lr, beta float64) *Momentum {
	return &Momentum{LR: lr, Beta: beta, vel: map[Param][]float64{}}
}

// Step implements Optimizer.
func (o *Momentum) Step(params []Param) {
	for _, p := range params {
		v, ok := o.vel[p]
		if !ok {
			v = make([]float64, len(p.W.Data))
			o.vel[p] = v
		}
		for i := range v {
			v[i] = o.Beta*v[i] + p.G.Data[i]
			p.W.Data[i] -= o.LR * v[i]
		}
		p.G.Zero()
	}
}

// NumSlots implements Stateful: one velocity vector per parameter.
func (o *Momentum) NumSlots() int { return 1 }

// CaptureState implements Stateful.
func (o *Momentum) CaptureState(params []Param) OptState {
	return OptState{Slots: [][][]float64{captureSlots(params, o.vel)}}
}

// RestoreState implements Stateful.
func (o *Momentum) RestoreState(params []Param, st OptState) error {
	if len(st.Slots) != 1 {
		return fmt.Errorf("nn: momentum state has %d slots, want 1", len(st.Slots))
	}
	return restoreSlots(params, o.vel, st.Slots[0])
}

// Adam is the Adam optimizer (Kingma & Ba), the one the paper trains GNMT,
// BERT and XLNet with.
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	t int
	m map[Param][]float64
	v map[Param][]float64
}

// NewAdam returns Adam with the standard defaults and the given learning
// rate.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: map[Param][]float64{}, v: map[Param][]float64{},
	}
}

// NumSlots implements Stateful: first and second moment vectors.
func (a *Adam) NumSlots() int { return 2 }

// CaptureState implements Stateful.
func (a *Adam) CaptureState(params []Param) OptState {
	return OptState{
		Step:  a.t,
		Slots: [][][]float64{captureSlots(params, a.m), captureSlots(params, a.v)},
	}
}

// RestoreState implements Stateful.
func (a *Adam) RestoreState(params []Param, st OptState) error {
	if len(st.Slots) != 2 {
		return fmt.Errorf("nn: adam state has %d slots, want 2", len(st.Slots))
	}
	if err := restoreSlots(params, a.m, st.Slots[0]); err != nil {
		return err
	}
	if err := restoreSlots(params, a.v, st.Slots[1]); err != nil {
		return err
	}
	a.t = st.Step
	return nil
}

// Step implements Optimizer.
func (a *Adam) Step(params []Param) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m, ok := a.m[p]
		if !ok {
			m = make([]float64, len(p.W.Data))
			a.m[p] = m
			a.v[p] = make([]float64, len(p.W.Data))
		}
		v := a.v[p]
		for i, g := range p.G.Data {
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			p.W.Data[i] -= a.LR * (m[i] / c1) / (math.Sqrt(v[i]/c2) + a.Eps)
		}
		p.G.Zero()
	}
}
