package nn

import "math"

// Optimizer updates parameters from accumulated gradients. Step consumes the
// gradients as-is (callers are responsible for averaging across micro-batches
// or replicas first) and zeroes them afterwards.
type Optimizer interface {
	Step(params []Param)
}

// SGD is plain stochastic gradient descent.
type SGD struct {
	LR float64
}

// Step implements Optimizer.
func (o SGD) Step(params []Param) {
	for _, p := range params {
		p.W.AXPY(-o.LR, p.G)
		p.G.Zero()
	}
}

// Momentum is SGD with classical momentum.
type Momentum struct {
	LR, Beta float64
	vel      map[Param][]float64
}

// NewMomentum returns a Momentum optimizer.
func NewMomentum(lr, beta float64) *Momentum {
	return &Momentum{LR: lr, Beta: beta, vel: map[Param][]float64{}}
}

// Step implements Optimizer.
func (o *Momentum) Step(params []Param) {
	for _, p := range params {
		v, ok := o.vel[p]
		if !ok {
			v = make([]float64, len(p.W.Data))
			o.vel[p] = v
		}
		for i := range v {
			v[i] = o.Beta*v[i] + p.G.Data[i]
			p.W.Data[i] -= o.LR * v[i]
		}
		p.G.Zero()
	}
}

// Adam is the Adam optimizer (Kingma & Ba), the one the paper trains GNMT,
// BERT and XLNet with.
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	t int
	m map[Param][]float64
	v map[Param][]float64
}

// NewAdam returns Adam with the standard defaults and the given learning
// rate.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: map[Param][]float64{}, v: map[Param][]float64{},
	}
}

// Step implements Optimizer.
func (a *Adam) Step(params []Param) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m, ok := a.m[p]
		if !ok {
			m = make([]float64, len(p.W.Data))
			a.m[p] = m
			a.v[p] = make([]float64, len(p.W.Data))
		}
		v := a.v[p]
		for i, g := range p.G.Data {
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			p.W.Data[i] -= a.LR * (m[i] / c1) / (math.Sqrt(v[i]/c2) + a.Eps)
		}
		p.G.Zero()
	}
}
