package nn

import (
	"math"

	"dapple/internal/tensor"
)

// ReLUMask records which elements a ReLU let through, packed one bit per
// element. It is the stash a ReLU keeps between forward and backward — 64x
// smaller than the activation clone it replaces, and poolable through a
// Workspace.
type ReLUMask struct {
	// N is the element count the mask covers.
	N int
	// Bits holds ceil(N/64) words; bit i set means element i was positive
	// (the gradient passes).
	Bits []uint64
}

// NewReLUMask returns a zeroed mask over n elements.
func NewReLUMask(n int) *ReLUMask {
	return &ReLUMask{N: n, Bits: make([]uint64, (n+63)/64)}
}

// resize re-targets the mask at n elements, zeroing it, growing Bits only
// when capacity is insufficient (the pooled-reuse path).
func (mk *ReLUMask) resize(n int) {
	words := (n + 63) / 64
	if cap(mk.Bits) < words {
		mk.Bits = make([]uint64, words)
	} else {
		mk.Bits = mk.Bits[:words]
		for i := range mk.Bits {
			mk.Bits[i] = 0
		}
	}
	mk.N = n
}

// forward rectifies y in place (zeroing non-positive elements) and records
// the pass-through pattern in the mask, which must cover len(y.Data) zeroed
// bits.
func (mk *ReLUMask) forward(y *tensor.Matrix) {
	for i, v := range y.Data {
		if v > 0 {
			mk.Bits[i>>6] |= 1 << (uint(i) & 63)
		} else {
			y.Data[i] = 0
		}
	}
}

// Apply zeroes the elements of m the mask blocked — the ReLU backward rule.
func (mk *ReLUMask) Apply(m *tensor.Matrix) {
	for i := range m.Data {
		if mk.Bits[i>>6]&(1<<(uint(i)&63)) == 0 {
			m.Data[i] = 0
		}
	}
}

// Workspace is the per-worker buffer arena of the allocation-free training
// path: a shape-keyed matrix pool plus a ReLU-mask free list. Like
// tensor.Pool it is single-goroutine; the runtime gives every worker its own.
type Workspace struct {
	// Pool leases the matrix buffers of the workspace execution path.
	Pool *tensor.Pool

	masks []*ReLUMask
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace {
	return &Workspace{Pool: tensor.NewPool()}
}

// Get leases a rows x cols matrix with undefined contents.
func (w *Workspace) Get(rows, cols int) *tensor.Matrix { return w.Pool.Get(rows, cols) }

// Put returns a leased matrix; nil is ignored.
func (w *Workspace) Put(m *tensor.Matrix) { w.Pool.Put(m) }

// GetMask leases a zeroed n-element ReLU mask.
func (w *Workspace) GetMask(n int) *ReLUMask {
	if l := len(w.masks); l > 0 {
		mk := w.masks[l-1]
		w.masks[l-1] = nil
		w.masks = w.masks[:l-1]
		mk.resize(n)
		return mk
	}
	return NewReLUMask(n)
}

// PutMask returns a leased mask to the free list.
func (w *Workspace) PutMask(mk *ReLUMask) {
	if mk != nil {
		w.masks = append(w.masks, mk)
	}
}

// WorkspaceLayer is the buffer-reuse execution path a Layer may additionally
// implement. It trades the reference API's defensive copies for an ownership
// contract the pipelined executor upholds:
//
//   - ForwardWS may retain x (as a view, without cloning) inside the returned
//     context; the caller guarantees x stays unmodified until the matching
//     BackwardWS (or a discard) completes.
//   - The returned output is leased from ws and owned by the caller.
//   - BackwardWS may mutate dy in place and return it as the input gradient;
//     callers must treat dy as consumed. Contexts holding workspace-leased
//     state (masks) are released by BackwardWS itself.
//
// The reference Forward/Backward methods remain the safe, allocating API;
// both paths compute the same math (workspace results differ only by the
// float rounding of fused accumulation).
type WorkspaceLayer interface {
	// ForwardWS computes the layer output into a workspace buffer, returning
	// the backward stash (which may reference x).
	ForwardWS(ws *Workspace, x *tensor.Matrix) (*tensor.Matrix, Ctx)

	// BackwardWS consumes a ForwardWS context and the output gradient
	// (possibly in place), accumulates parameter gradients, and returns the
	// input gradient.
	BackwardWS(ws *Workspace, ctx Ctx, dy *tensor.Matrix) *tensor.Matrix
}

// ForwardWS implements WorkspaceLayer: one fused matmul+bias kernel into a
// pooled buffer (the bias rides the matmul's output pass), stashing x itself
// instead of a clone.
func (d *Dense) ForwardWS(ws *Workspace, x *tensor.Matrix) (*tensor.Matrix, Ctx) {
	y := ws.Get(x.Rows, d.W.Cols)
	tensor.MatMulAddRowVecInto(y, x, d.W, d.B.Data)
	return y, x
}

// BackwardWS implements WorkspaceLayer: weight and bias gradients accumulate
// in place (fused kernels), the input gradient lands in a pooled buffer.
func (d *Dense) BackwardWS(ws *Workspace, ctx Ctx, dy *tensor.Matrix) *tensor.Matrix {
	x := ctx.(*tensor.Matrix)
	tensor.MatMulATBAddInto(d.GW, x, dy)
	tensor.SumRowsInto(d.GB.Data, dy)
	dx := ws.Get(dy.Rows, d.W.Rows)
	tensor.MatMulABTInto(dx, dy, d.W)
	return dx
}

// ForwardWS implements WorkspaceLayer: output in a pooled buffer, stash a
// pooled bit mask.
func (ReLU) ForwardWS(ws *Workspace, x *tensor.Matrix) (*tensor.Matrix, Ctx) {
	y := ws.Get(x.Rows, x.Cols)
	copy(y.Data, x.Data)
	mask := ws.GetMask(len(y.Data))
	mask.forward(y)
	return y, mask
}

// BackwardWS implements WorkspaceLayer: gates dy in place and releases the
// mask.
func (ReLU) BackwardWS(ws *Workspace, ctx Ctx, dy *tensor.Matrix) *tensor.Matrix {
	mask := ctx.(*ReLUMask)
	mask.Apply(dy)
	ws.PutMask(mask)
	return dy
}

// ForwardWS implements WorkspaceLayer. The stash is the output buffer itself
// (tanh' needs the output values); it stays valid because the run that owns
// it keeps every layer output alive until backward.
func (Tanh) ForwardWS(ws *Workspace, x *tensor.Matrix) (*tensor.Matrix, Ctx) {
	y := ws.Get(x.Rows, x.Cols)
	for i, v := range x.Data {
		y.Data[i] = math.Tanh(v)
	}
	return y, y
}

// BackwardWS implements WorkspaceLayer: scales dy in place by 1 - y².
func (Tanh) BackwardWS(_ *Workspace, ctx Ctx, dy *tensor.Matrix) *tensor.Matrix {
	y := ctx.(*tensor.Matrix)
	for i, v := range y.Data {
		dy.Data[i] *= 1 - v*v
	}
	return dy
}

// WSRun is the reusable per-invocation state of one workspace-mode forward
// pass through a Network: the per-layer contexts plus every layer output the
// run leased (all kept alive until the matching BackwardWS or DiscardWS, so
// stashes may be views). A caller keeps one WSRun per in-flight micro-batch
// and reuses it across iterations; its slices reach steady-state capacity
// after the first pass.
type WSRun struct {
	ctxs  []Ctx
	owned []*tensor.Matrix
}

// StashBytes sums the retained bytes of the run's layer contexts — the
// quantity the schedule memory model tracks per in-flight micro-batch.
func (r *WSRun) StashBytes() int64 {
	var n int64
	for _, c := range r.ctxs {
		n += StashBytes(c)
	}
	return n
}

// DetachOutput removes the run's final layer output from its owned set and
// returns it, transferring ownership to the caller (who must eventually Put
// it back). The re-computation send path uses this to discard a forward run
// while keeping the published output views valid until the downstream stage
// finishes reading them.
func (r *WSRun) DetachOutput() *tensor.Matrix {
	if len(r.owned) == 0 {
		return nil
	}
	out := r.owned[len(r.owned)-1]
	r.owned[len(r.owned)-1] = nil
	r.owned = r.owned[:len(r.owned)-1]
	return out
}

// reset clears the run for reuse, keeping slice capacity.
func (r *WSRun) reset() {
	for i := range r.ctxs {
		r.ctxs[i] = nil
	}
	for i := range r.owned {
		r.owned[i] = nil
	}
	r.ctxs = r.ctxs[:0]
	r.owned = r.owned[:0]
}

// ForwardWS runs every layer through the workspace path (falling back to the
// reference Forward for layers without one), filling run with the backward
// state. The returned output is owned by run — it stays valid until
// BackwardWS or DiscardWS releases the run, and callers must not release it
// separately. x must stay unmodified for the same window.
// A Dense layer directly followed by a ReLU runs as ONE fused kernel
// (matmul + bias + rectify + mask in a single output pass): the pre-ReLU
// activation is never materialized — backward needs only the Dense input and
// the ReLU mask — so the pair costs one pooled buffer instead of two and a
// third of the memory traffic. The fused pair still appends one context per
// layer, keeping BackwardWS's layer-indexed context walk unchanged.
func (n *Network) ForwardWS(ws *Workspace, x *tensor.Matrix, run *WSRun) *tensor.Matrix {
	run.reset()
	for i := 0; i < len(n.Layers); i++ {
		l := n.Layers[i]
		if d, ok := l.(*Dense); ok && i+1 < len(n.Layers) {
			if _, isReLU := n.Layers[i+1].(ReLU); isReLU {
				y := ws.Get(x.Rows, d.W.Cols)
				mask := ws.GetMask(len(y.Data))
				tensor.MatMulBiasReLUInto(y, x, d.W, d.B.Data, mask.Bits)
				run.ctxs = append(run.ctxs, x, mask)
				run.owned = append(run.owned, y)
				x = y
				i++
				continue
			}
		}
		var y *tensor.Matrix
		var c Ctx
		if wl, ok := l.(WorkspaceLayer); ok {
			y, c = wl.ForwardWS(ws, x)
		} else {
			y, c = l.Forward(x)
		}
		run.ctxs = append(run.ctxs, c)
		run.owned = append(run.owned, y)
		x = y
	}
	return x
}

// BackwardWS consumes a ForwardWS run in reverse, accumulating parameter
// gradients, then releases every buffer the run owned back to ws. dy is
// consumed (it may be mutated in place, and the returned input gradient may
// BE dy when the first layer works in place); the returned gradient is
// workspace-leased unless it aliases dy, so release it with
//
//	if dx != dy { ws.Put(dx) }
//	ws.Put(dy) // if dy was workspace-leased by the caller
func (n *Network) BackwardWS(ws *Workspace, run *WSRun, dy *tensor.Matrix) *tensor.Matrix {
	return n.BackwardWSLayers(ws, run, dy, nil)
}

// BackwardWSLayers is BackwardWS with a per-layer gradient-readiness hook:
// after layer i's BackwardWS returns — at which point the gradients of every
// parameter layer i owns are fully accumulated and will not be touched again
// this pass — onLayer(i) fires on the calling goroutine. Because backward
// walks layers in descending index order, the hook reports readiness from
// the network's tail toward its head, which is what lets the executor launch
// a gradient bucket's collective while earlier layers are still computing.
// A nil onLayer skips the hook (the plain BackwardWS path).
func (n *Network) BackwardWSLayers(ws *Workspace, run *WSRun, dy *tensor.Matrix, onLayer func(layer int)) *tensor.Matrix {
	orig := dy
	for i := len(n.Layers) - 1; i >= 0; i-- {
		l := n.Layers[i]
		var dx *tensor.Matrix
		if wl, ok := l.(WorkspaceLayer); ok {
			dx = wl.BackwardWS(ws, run.ctxs[i], dy)
		} else {
			dx = l.Backward(run.ctxs[i], dy)
		}
		if dx != dy && dy != orig {
			ws.Put(dy)
		}
		dy = dx
		if onLayer != nil {
			onLayer(i)
		}
	}
	for _, b := range run.owned {
		ws.Put(b)
	}
	run.reset()
	return dy
}

// DiscardWS releases a ForwardWS run without running backward — the
// re-computation path, which drops activation state after the forward send
// and replays the forward pass later. Owned outputs and mask contexts return
// to the workspace.
func (n *Network) DiscardWS(ws *Workspace, run *WSRun) {
	for _, c := range run.ctxs {
		if mk, ok := c.(*ReLUMask); ok {
			ws.PutMask(mk)
		}
	}
	for _, b := range run.owned {
		ws.Put(b)
	}
	run.reset()
}
