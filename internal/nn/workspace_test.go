package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dapple/internal/tensor"
)

// tanhMLP builds a mixed-activation stack (Dense, ReLU, Dense, Tanh, Dense)
// so the workspace tests cover every WorkspaceLayer implementation.
func tanhMLP(seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	return &Network{Layers: []Layer{
		NewDense(5, 9, rng), ReLU{}, NewDense(9, 7, rng), Tanh{}, NewDense(7, 3, rng),
	}}
}

// TestWorkspacePathMatchesReference runs the same batch through the
// allocating reference path and the workspace path on identical clones and
// demands matching outputs, input gradients, and parameter gradients.
func TestWorkspacePathMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		ref := tanhMLP(seed)
		wsNet := ref.Clone()
		rng := rand.New(rand.NewSource(seed + 1))
		x := tensor.New(6, 5)
		x.Randomize(rng, 1)
		y := []int{0, 1, 2, 0, 1, 2}

		out, ctxs := ref.Forward(x)
		_, dy := SoftmaxCrossEntropy(out, y)
		dx := ref.Backward(ctxs, dy)

		ws := NewWorkspace()
		var run WSRun
		wout := wsNet.ForwardWS(ws, x, &run)
		wg := ws.Get(wout.Rows, wout.Cols)
		SoftmaxCrossEntropyInto(wg, wout, y)
		wdx := wsNet.BackwardWS(ws, &run, wg)

		if tensor.MaxAbsDiff(out, wout) > 1e-12 {
			return false
		}
		if tensor.MaxAbsDiff(dx, wdx) > 1e-12 {
			return false
		}
		rp, wp := ref.Params(), wsNet.Params()
		for i := range rp {
			if tensor.MaxAbsDiff(rp[i].G, wp[i].G) > 1e-12 {
				return false
			}
		}
		if wdx != wg {
			ws.Put(wdx)
		}
		ws.Put(wg)
		return ws.Pool.Leased() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestWorkspaceSteadyStateZeroAlloc is the layer-library half of the
// zero-alloc guarantee: once the pool is warm, a full forward+loss+backward
// cycle allocates nothing.
func TestWorkspaceSteadyStateZeroAlloc(t *testing.T) {
	net := tanhMLP(3)
	ws := NewWorkspace()
	var run WSRun
	rng := rand.New(rand.NewSource(4))
	x := tensor.New(8, 5)
	x.Randomize(rng, 1)
	y := []int{0, 1, 2, 0, 1, 2, 0, 1}
	params := net.Params()

	cycle := func() {
		out := net.ForwardWS(ws, x, &run)
		g := ws.Get(out.Rows, out.Cols)
		SoftmaxCrossEntropyInto(g, out, y)
		dx := net.BackwardWS(ws, &run, g)
		if dx != g {
			ws.Put(dx)
		}
		ws.Put(g)
		for _, p := range params {
			p.G.Zero()
		}
	}
	cycle()
	cycle()
	if n := testing.AllocsPerRun(20, cycle); n != 0 {
		t.Errorf("warm workspace cycle allocates %v, want 0", n)
	}
	if ws.Pool.Leased() != 0 {
		t.Fatalf("leaked %d buffers", ws.Pool.Leased())
	}
}

// TestDiscardWSReleasesEverything checks the re-computation path returns all
// pooled state without a backward pass.
func TestDiscardWSReleasesEverything(t *testing.T) {
	net := tanhMLP(5)
	ws := NewWorkspace()
	var run WSRun
	x := tensor.New(4, 5)
	rng := rand.New(rand.NewSource(6))
	x.Randomize(rng, 1)

	net.ForwardWS(ws, x, &run)
	net.DiscardWS(ws, &run)
	if ws.Pool.Leased() != 0 {
		t.Fatalf("discard leaked %d buffers", ws.Pool.Leased())
	}
	// The mask free list must also be replenished: a second pass reuses it.
	misses := ws.Pool.Misses()
	net.ForwardWS(ws, x, &run)
	net.DiscardWS(ws, &run)
	if ws.Pool.Misses() != misses {
		t.Fatal("second forward allocated fresh buffers after discard")
	}
}

// TestReLUMaskSemantics pins the mask against the definition: gradients pass
// exactly where the input was strictly positive, and the stash accounting
// reports the packed size.
func TestReLUMaskSemantics(t *testing.T) {
	x := tensor.FromSlice(1, 5, []float64{-1, 0, 2, -3, 4})
	y, ctx := ReLU{}.Forward(x)
	wantY := []float64{0, 0, 2, 0, 4}
	for i, w := range wantY {
		if y.Data[i] != w {
			t.Fatalf("relu fwd %v", y.Data)
		}
	}
	dy := tensor.FromSlice(1, 5, []float64{10, 20, 30, 40, 50})
	dx := ReLU{}.Backward(ctx, dy)
	wantDx := []float64{0, 0, 30, 0, 50}
	for i, w := range wantDx {
		if dx.Data[i] != w {
			t.Fatalf("relu bwd %v", dx.Data)
		}
	}
	mask := ctx.(*ReLUMask)
	if got := StashBytes(mask); got != 8 {
		t.Fatalf("mask stash bytes %d, want 8", got)
	}
	if StashBytes(NewReLUMask(65)) != 16 {
		t.Fatal("mask stash bytes not word-granular")
	}
}

// TestWorkspaceMaskReuseResizes checks pooled masks re-target cleanly across
// sizes (zeroed, right length).
func TestWorkspaceMaskReuseResizes(t *testing.T) {
	ws := NewWorkspace()
	mk := ws.GetMask(130)
	for i := range mk.Bits {
		mk.Bits[i] = ^uint64(0)
	}
	ws.PutMask(mk)
	small := ws.GetMask(10)
	if small != mk {
		t.Fatal("mask not recycled")
	}
	if small.N != 10 || len(small.Bits) != 1 || small.Bits[0] != 0 {
		t.Fatalf("recycled mask not reset: N=%d words=%d bits=%x", small.N, len(small.Bits), small.Bits[0])
	}
	ws.PutMask(small)
	big := ws.GetMask(200)
	if big.N != 200 || len(big.Bits) != 4 {
		t.Fatalf("regrown mask wrong: N=%d words=%d", big.N, len(big.Bits))
	}
	for _, w := range big.Bits {
		if w != 0 {
			t.Fatal("regrown mask not zeroed")
		}
	}
}

// TestSoftmaxCrossEntropyIntoMatches checks the pooled loss kernel equals the
// allocating one, overwriting stale grad contents.
func TestSoftmaxCrossEntropyIntoMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	logits := tensor.New(4, 6)
	logits.Randomize(rng, 2)
	labels := []int{1, 5, 0, 2}
	wantLoss, wantGrad := SoftmaxCrossEntropy(logits, labels)
	grad := tensor.New(4, 6)
	grad.Randomize(rng, 1) // stale contents
	loss := SoftmaxCrossEntropyInto(grad, logits, labels)
	if math.Abs(loss-wantLoss) > 1e-15 {
		t.Fatalf("loss %g vs %g", loss, wantLoss)
	}
	if d := tensor.MaxAbsDiff(grad, wantGrad); d != 0 {
		t.Fatalf("grad differs by %g", d)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape panic")
		}
	}()
	SoftmaxCrossEntropyInto(tensor.New(2, 2), logits, labels)
}
