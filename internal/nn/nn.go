// Package nn is the small neural-network layer library executed by the real
// concurrent runtime (package train). Layers are reentrant: Forward returns
// an opaque context instead of mutating layer state, so many micro-batches
// can be in flight through one layer simultaneously — exactly the property a
// pipelined schedule needs.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"dapple/internal/tensor"
)

// Param pairs a trainable tensor with its gradient accumulator.
type Param struct {
	W *tensor.Matrix
	G *tensor.Matrix
}

// Ctx is the per-invocation activation context a layer returns from Forward
// and consumes in Backward.
type Ctx any

// Layer is one differentiable block.
type Layer interface {
	// Forward computes the layer output for x, returning the stash Backward
	// will need. Implementations must not retain or mutate x beyond the
	// returned context.
	Forward(x *tensor.Matrix) (*tensor.Matrix, Ctx)

	// Backward consumes a context and the output gradient, accumulates
	// parameter gradients, and returns the input gradient.
	Backward(ctx Ctx, dy *tensor.Matrix) *tensor.Matrix

	// Params returns the layer's trainable parameters (empty for
	// activations).
	Params() []Param

	// Clone returns a layer of identical shape and parameter values with
	// zeroed gradients.
	Clone() Layer
}

// StashBytes reports the approximate bytes a context retains, the quantity
// the schedule memory model tracks.
func StashBytes(c Ctx) int64 {
	switch v := c.(type) {
	case nil:
		return 0
	case *tensor.Matrix:
		return int64(len(v.Data)) * 8
	case *ReLUMask:
		return int64(len(v.Bits)) * 8
	case []*tensor.Matrix:
		var n int64
		for _, m := range v {
			if m != nil {
				n += int64(len(m.Data)) * 8
			}
		}
		return n
	default:
		return 0
	}
}

// Dense is a fully connected layer: y = x@W + b.
type Dense struct {
	W, B   *tensor.Matrix
	GW, GB *tensor.Matrix
}

// NewDense returns a Dense layer with Xavier-uniform weights from rng.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{
		W:  tensor.New(in, out),
		B:  tensor.New(1, out),
		GW: tensor.New(in, out),
		GB: tensor.New(1, out),
	}
	d.W.Randomize(rng, math.Sqrt(6/float64(in+out)))
	return d
}

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Matrix) (*tensor.Matrix, Ctx) {
	y := tensor.MatMul(x, d.W)
	y.AddRowVec(d.B.Data)
	return y, x.Clone()
}

// Backward implements Layer.
func (d *Dense) Backward(ctx Ctx, dy *tensor.Matrix) *tensor.Matrix {
	x := ctx.(*tensor.Matrix)
	d.GW.Add(tensor.MatMulATB(x, dy))
	gb := dy.SumRows()
	for j, v := range gb {
		d.GB.Data[j] += v
	}
	return tensor.MatMulABT(dy, d.W)
}

// Params implements Layer.
func (d *Dense) Params() []Param {
	return []Param{{d.W, d.GW}, {d.B, d.GB}}
}

// Clone implements Layer.
func (d *Dense) Clone() Layer {
	return &Dense{
		W:  d.W.Clone(),
		B:  d.B.Clone(),
		GW: tensor.New(d.GW.Rows, d.GW.Cols),
		GB: tensor.New(d.GB.Rows, d.GB.Cols),
	}
}

// ReLU is the rectified linear activation.
type ReLU struct{}

// Forward implements Layer. The stash is a ReLUMask — one bit per element —
// rather than a full copy of the output: backward only needs to know WHICH
// elements passed, so cloning the activation was a 64x over-stash (and a
// second full allocation per forward).
func (ReLU) Forward(x *tensor.Matrix) (*tensor.Matrix, Ctx) {
	y := x.Clone()
	mask := NewReLUMask(len(y.Data))
	mask.forward(y)
	return y, mask
}

// Backward implements Layer.
func (ReLU) Backward(ctx Ctx, dy *tensor.Matrix) *tensor.Matrix {
	mask := ctx.(*ReLUMask)
	dx := dy.Clone()
	mask.Apply(dx)
	return dx
}

// Params implements Layer.
func (ReLU) Params() []Param { return nil }

// Clone implements Layer.
func (ReLU) Clone() Layer { return ReLU{} }

// Tanh is the hyperbolic-tangent activation.
type Tanh struct{}

// Forward implements Layer.
func (Tanh) Forward(x *tensor.Matrix) (*tensor.Matrix, Ctx) {
	y := x.Clone()
	for i, v := range y.Data {
		y.Data[i] = math.Tanh(v)
	}
	return y, y.Clone()
}

// Backward implements Layer.
func (Tanh) Backward(ctx Ctx, dy *tensor.Matrix) *tensor.Matrix {
	y := ctx.(*tensor.Matrix)
	dx := dy.Clone()
	for i, v := range y.Data {
		dx.Data[i] *= 1 - v*v
	}
	return dx
}

// Params implements Layer.
func (Tanh) Params() []Param { return nil }

// Clone implements Layer.
func (Tanh) Clone() Layer { return Tanh{} }

// Network is an ordered layer stack.
type Network struct {
	Layers []Layer
}

// MLP builds an n-hidden-layer perceptron with ReLU activations and a linear
// head: dims like [in, h1, h2, ..., out].
func MLP(dims []int, seed int64) *Network {
	if len(dims) < 2 {
		panic(fmt.Sprintf("nn: MLP needs at least 2 dims, got %d", len(dims)))
	}
	rng := rand.New(rand.NewSource(seed))
	var layers []Layer
	for i := 0; i+1 < len(dims); i++ {
		layers = append(layers, NewDense(dims[i], dims[i+1], rng))
		if i+2 < len(dims) {
			layers = append(layers, ReLU{})
		}
	}
	return &Network{Layers: layers}
}

// Forward runs every layer, returning the output and per-layer contexts.
func (n *Network) Forward(x *tensor.Matrix) (*tensor.Matrix, []Ctx) {
	ctxs := make([]Ctx, len(n.Layers))
	for i, l := range n.Layers {
		x, ctxs[i] = l.Forward(x)
	}
	return x, ctxs
}

// Backward consumes the contexts from Forward in reverse.
func (n *Network) Backward(ctxs []Ctx, dy *tensor.Matrix) *tensor.Matrix {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		dy = n.Layers[i].Backward(ctxs[i], dy)
	}
	return dy
}

// Params returns all trainable parameters in layer order.
func (n *Network) Params() []Param {
	var ps []Param
	for _, l := range n.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrads clears every gradient accumulator.
func (n *Network) ZeroGrads() {
	for _, p := range n.Params() {
		p.G.Zero()
	}
}

// Clone deep-copies the network (parameters copied, gradients zeroed).
func (n *Network) Clone() *Network {
	out := &Network{Layers: make([]Layer, len(n.Layers))}
	for i, l := range n.Layers {
		out.Layers[i] = l.Clone()
	}
	return out
}

// NumLayers returns the number of layers, the unit pipeline cuts index.
func (n *Network) NumLayers() int { return len(n.Layers) }

// Slice returns a network view over layers [lo, hi) sharing the same layer
// objects (used to carve pipeline stages out of a master network).
func (n *Network) Slice(lo, hi int) *Network {
	return &Network{Layers: n.Layers[lo:hi]}
}

// SliceClone deep-copies layers [lo, hi) into an independent stage network:
// parameters are copied and gradients zeroed, so per-replica training state
// never aliases the master network.
func (n *Network) SliceClone(lo, hi int) *Network {
	if lo < 0 || hi > len(n.Layers) || lo > hi {
		panic(fmt.Sprintf("nn: slice [%d,%d) of %d layers", lo, hi, len(n.Layers)))
	}
	return n.Slice(lo, hi).Clone()
}
