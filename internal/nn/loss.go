package nn

import (
	"fmt"
	"math"

	"dapple/internal/tensor"
)

// SoftmaxCrossEntropy returns the mean cross-entropy of logits against the
// integer labels, and the logits gradient scaled by 1/rows (so summing
// per-micro-batch gradients then dividing by the micro-batch count reproduces
// the global-batch mean — the gradient-accumulation identity the paper's
// equivalence argument relies on).
func SoftmaxCrossEntropy(logits *tensor.Matrix, labels []int) (float64, *tensor.Matrix) {
	grad := tensor.New(logits.Rows, logits.Cols)
	return SoftmaxCrossEntropyInto(grad, logits, labels), grad
}

// SoftmaxCrossEntropyInto is SoftmaxCrossEntropy writing the logits gradient
// into the preallocated grad (same shape as logits, contents overwritten) —
// the allocation-free form the steady-state runtime uses with pooled buffers.
func SoftmaxCrossEntropyInto(grad, logits *tensor.Matrix, labels []int) float64 {
	rows := logits.Rows
	if grad.Rows != rows || grad.Cols != logits.Cols {
		panic(fmt.Sprintf("nn: cross-entropy grad %dx%d for %dx%d logits",
			grad.Rows, grad.Cols, rows, logits.Cols))
	}
	var loss float64
	for r := 0; r < rows; r++ {
		row := logits.Row(r)
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		g := grad.Row(r)
		for j, v := range row {
			e := math.Exp(v - maxv)
			g[j] = e
			sum += e
		}
		for j := range g {
			g[j] /= sum
		}
		loss += -math.Log(math.Max(g[labels[r]], 1e-300))
		g[labels[r]] -= 1
	}
	grad.Scale(1 / float64(rows))
	return loss / float64(rows)
}

// MSE returns the mean squared error between pred and target and the
// prediction gradient.
func MSE(pred, target *tensor.Matrix) (float64, *tensor.Matrix) {
	grad := pred.Clone()
	var loss float64
	n := float64(len(pred.Data))
	for i := range grad.Data {
		d := pred.Data[i] - target.Data[i]
		loss += d * d
		grad.Data[i] = 2 * d / n
	}
	return loss / n, grad
}
