package core

import (
	"encoding/json"
	"fmt"

	"dapple/internal/hardware"
	"dapple/internal/model"
)

// planJSON is the serialized form of a Plan: the strategy itself plus the
// names needed to re-bind it to a model and cluster on load.
type planJSON struct {
	Model      string      `json:"model"`
	Cluster    string      `json:"cluster"`
	GBS        int         `json:"gbs"`
	MicroBatch int         `json:"microBatch"`
	Stages     []stageJSON `json:"stages"`
}

type stageJSON struct {
	Lo      int   `json:"lo"`
	Hi      int   `json:"hi"`
	Devices []int `json:"devices"`
}

// MarshalJSON implements json.Marshaler, emitting a portable strategy
// description (model/cluster referenced by name).
func (p *Plan) MarshalJSON() ([]byte, error) {
	out := planJSON{
		Model:      p.Model.Name,
		Cluster:    p.Cluster.Name,
		GBS:        p.GBS,
		MicroBatch: p.MicroBatch,
	}
	for _, s := range p.Stages {
		sj := stageJSON{Lo: s.Lo, Hi: s.Hi}
		for _, d := range s.Devices {
			sj.Devices = append(sj.Devices, int(d))
		}
		out.Stages = append(out.Stages, sj)
	}
	return json.Marshal(out)
}

// UnmarshalPlan decodes a serialized strategy and re-binds it to the given
// model and cluster, validating the result.
func UnmarshalPlan(data []byte, m *model.Model, c hardware.Cluster) (*Plan, error) {
	var in planJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("core: decode plan: %w", err)
	}
	if in.Model != "" && in.Model != m.Name {
		return nil, fmt.Errorf("core: plan is for model %q, not %q", in.Model, m.Name)
	}
	p := &Plan{Model: m, Cluster: c, GBS: in.GBS, MicroBatch: in.MicroBatch}
	for _, sj := range in.Stages {
		s := Stage{Lo: sj.Lo, Hi: sj.Hi}
		for _, d := range sj.Devices {
			s.Devices = append(s.Devices, hardware.DeviceID(d))
		}
		p.Stages = append(p.Stages, s)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
