package core

import (
	"math"
	"testing"
	"testing/quick"

	"dapple/internal/hardware"
	"dapple/internal/model"
)

func devs(ids ...int) []hardware.DeviceID {
	out := make([]hardware.DeviceID, len(ids))
	for i, d := range ids {
		out[i] = hardware.DeviceID(d)
	}
	return out
}

// twoStage builds a 2-stage plan over a uniform synthetic model.
func twoStage(cut, r0, r1, gbs int) *Plan {
	m := model.Synthetic(8, 10e-3, 1<<20, 4<<20, 8<<20)
	c := hardware.ConfigB(r0 + r1)
	s0 := make([]hardware.DeviceID, r0)
	for i := range s0 {
		s0[i] = hardware.DeviceID(i)
	}
	s1 := make([]hardware.DeviceID, r1)
	for i := range s1 {
		s1[i] = hardware.DeviceID(r0 + i)
	}
	return &Plan{
		Model: m, Cluster: c, GBS: gbs, MicroBatch: 1,
		Stages: []Stage{{Lo: 0, Hi: cut, Devices: s0}, {Lo: cut, Hi: 8, Devices: s1}},
	}
}

func TestPlanKinds(t *testing.T) {
	p := twoStage(4, 1, 1, 8)
	if p.Kind() != KindStraight {
		t.Fatalf("kind %v, want straight", p.Kind())
	}
	p = twoStage(4, 2, 2, 8)
	if p.Kind() != KindHybrid {
		t.Fatalf("kind %v, want hybrid", p.Kind())
	}
	dp := &Plan{
		Model: p.Model, Cluster: p.Cluster, GBS: 8, MicroBatch: 1,
		Stages: []Stage{{Lo: 0, Hi: 8, Devices: devs(0, 1, 2, 3)}},
	}
	if dp.Kind() != KindDP {
		t.Fatalf("kind %v, want DP", dp.Kind())
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	good := twoStage(4, 1, 1, 8)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}

	gap := twoStage(4, 1, 1, 8)
	gap.Stages[1].Lo = 5
	if gap.Validate() == nil {
		t.Fatal("expected error for layer gap")
	}

	dup := twoStage(4, 1, 1, 8)
	dup.Stages[1].Devices = dup.Stages[0].Devices
	if dup.Validate() == nil {
		t.Fatal("expected error for duplicate devices")
	}

	bad := twoStage(4, 1, 1, 8)
	bad.MicroBatch = 3 // does not divide GBS 8
	if bad.Validate() == nil {
		t.Fatal("expected error for non-dividing micro-batch")
	}

	short := twoStage(4, 1, 1, 8)
	short.Stages = short.Stages[:1]
	if short.Validate() == nil {
		t.Fatal("expected error for incomplete coverage")
	}
}

func TestChooseMicroBatch(t *testing.T) {
	m := model.Synthetic(4, 1e-3, 0, 0, 0)
	m.ProfileBatch = 64
	if got := ChooseMicroBatch(m, 1024); got != 64 {
		t.Fatalf("got %d, want 64", got)
	}
	if got := ChooseMicroBatch(m, 32); got != 32 {
		t.Fatalf("clamp to gbs: got %d", got)
	}
	m.ProfileBatch = 48
	if got := ChooseMicroBatch(m, 128); 128%got != 0 {
		t.Fatalf("micro-batch %d does not divide 128", got)
	}
}

func TestStageTimesScaleWithReplication(t *testing.T) {
	p1 := twoStage(4, 1, 1, 8)
	p2 := twoStage(4, 2, 2, 8)
	p2.MicroBatch = p1.MicroBatch
	if got, want := p2.StageFwdTime(0), p1.StageFwdTime(0)/2; math.Abs(got-want) > 1e-12 {
		t.Fatalf("replicated stage time %g, want %g", got, want)
	}
}

func TestSampleConservation(t *testing.T) {
	p := twoStage(4, 1, 1, 32)
	if p.M()*p.MicroBatch != p.GBS {
		t.Fatalf("M*mb = %d, GBS = %d", p.M()*p.MicroBatch, p.GBS)
	}
}

func TestPivotSelection(t *testing.T) {
	// The unit with the largest F+B dominates the steady phase.
	units := []Unit{
		{Name: "s0", F: 1, B: 2},
		{Name: "comm", F: 0.1, B: 0.1, Comm: true},
		{Name: "s1", F: 3, B: 6},
	}
	if q := PivotStage(units, 8); q != 2 {
		t.Fatalf("pivot %d, want 2", q)
	}
	units[0], units[2] = units[2], units[0]
	if q := PivotStage(units, 8); q != 0 {
		t.Fatalf("pivot %d, want 0", q)
	}
}

func TestPipelineLatencySingleStage(t *testing.T) {
	// One stage: L = F + (M-1)(F+B) + B + AR, the DP/accumulation formula.
	units := []Unit{{F: 1, B: 2, AR: 5}}
	ph := PipelineLatency(units, 4)
	want := 1.0 + 3*3 + (2 + 5)
	if math.Abs(ph.Latency()-want) > 1e-12 {
		t.Fatalf("latency %g, want %g", ph.Latency(), want)
	}
}

func TestPipelineLatencyStraight(t *testing.T) {
	// Uniform 3-stage straight pipeline, no AR: classic (M+S-1) behaviour.
	units := []Unit{{F: 1, B: 2}, {F: 1, B: 2}, {F: 1, B: 2}}
	ph := PipelineLatency(units, 5)
	// Tw = 3, Ts = 4*3 = 12, Te = B-chain to stage 0 = 6.
	if ph.Warmup != 3 || ph.Steady != 12 || ph.Ending != 6 {
		t.Fatalf("phases %+v", ph)
	}
}

// Property: latency is monotone in M and at least M*(F_Q+B_Q).
func TestLatencyMonotoneProperty(t *testing.T) {
	f := func(seed int64, m8 uint8) bool {
		m := int(m8%30) + 2
		units := []Unit{
			{F: 1 + float64(seed%7), B: 2},
			{F: 0.5, B: 0.5, Comm: true},
			{F: 2, B: 4 + float64(seed%5)},
		}
		l1 := PipelineLatency(units, m).Latency()
		l2 := PipelineLatency(units, m+1).Latency()
		if l2 <= l1 {
			return false
		}
		q := PivotStage(units, m)
		floor := float64(m-1) * (units[q].F + units[q].B)
		return l1 >= floor
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestACRBehaviour(t *testing.T) {
	// Bigger boundaries -> bigger ACR; single stage -> zero.
	small := twoStage(4, 1, 1, 8)
	big := twoStage(4, 1, 1, 8)
	big.Model = model.Synthetic(8, 10e-3, 64<<20, 4<<20, 8<<20)
	if small.ACR() >= big.ACR() {
		t.Fatalf("ACR not increasing with boundary: %g vs %g", small.ACR(), big.ACR())
	}
	dp := &Plan{Model: small.Model, Cluster: small.Cluster, GBS: 8, MicroBatch: 1,
		Stages: []Stage{{Lo: 0, Hi: 8, Devices: devs(0)}}}
	if dp.ACR() != 0 {
		t.Fatal("DP plan must have zero ACR")
	}
}

func TestStrings(t *testing.T) {
	p := twoStage(3, 2, 2, 8)
	if p.SplitString() != "3:5" {
		t.Fatalf("split %q", p.SplitString())
	}
	if p.ReplicaString() != "2:2" {
		t.Fatalf("replicas %q", p.ReplicaString())
	}
	if p.String() == "" || p.Kind().String() == "" {
		t.Fatal("empty strings")
	}
}

func TestSpeedupBounded(t *testing.T) {
	// Speedup can never exceed the device count (work conservation).
	for _, r := range []int{1, 2, 4} {
		p := twoStage(4, r, r, 64)
		if s := p.Speedup(); s > float64(2*r)+1e-9 {
			t.Fatalf("superlinear speedup %g on %d devices", s, 2*r)
		}
	}
}

func TestBubbleFraction(t *testing.T) {
	p := twoStage(4, 1, 1, 64)
	bf := p.BubbleFraction()
	if bf < 0 || bf > 1 {
		t.Fatalf("bubble fraction %g out of range", bf)
	}
}

func TestDevicesUsed(t *testing.T) {
	p := twoStage(4, 2, 3, 8)
	ds := p.DevicesUsed()
	if len(ds) != 5 {
		t.Fatalf("%d devices", len(ds))
	}
	for i := 1; i < len(ds); i++ {
		if ds[i] <= ds[i-1] {
			t.Fatal("not sorted")
		}
	}
}

func TestUnitsStructure(t *testing.T) {
	p := twoStage(4, 1, 1, 8)
	units := p.Units()
	if len(units) != 3 {
		t.Fatalf("%d units, want 3 (stage, comm, stage)", len(units))
	}
	if !units[1].Comm || units[0].Comm || units[2].Comm {
		t.Fatal("comm flags wrong")
	}
	if units[1].AR != 0 {
		t.Fatal("comm units have no all-reduce")
	}
}
