// Package core holds DAPPLE's central abstractions: the hybrid
// data/pipeline-parallel Plan (stage partition + replication + placement),
// micro-batching arithmetic, and the analytic pipeline-latency model of the
// paper (Eq. 1–2) with its pivot-stage selection rule (Eq. 3).
//
// A Plan is what the planner emits and what both the analytic model and the
// discrete-event scheduler consume.
package core

import (
	"fmt"
	"sort"
	"strings"

	"dapple/internal/comm"
	"dapple/internal/hardware"
	"dapple/internal/model"
)

// Stage is one pipeline stage: a contiguous layer range replicated across a
// device group. A micro-batch entering the stage is split into
// len(Devices) slices processed in parallel (Fig. 8(a) semantics).
type Stage struct {
	Lo, Hi  int // layer range [Lo, Hi)
	Devices []hardware.DeviceID
}

// Replicas returns the stage's replication degree.
func (s Stage) Replicas() int { return len(s.Devices) }

// Layers returns the number of layers in the stage.
func (s Stage) Layers() int { return s.Hi - s.Lo }

// Kind classifies a plan the way Table V does.
type Kind int

const (
	// KindDP is pure data parallelism: one stage replicated on every device.
	KindDP Kind = iota
	// KindStraight is a pipeline with no replication anywhere.
	KindStraight
	// KindHybrid combines pipeline stages with replication.
	KindHybrid
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindDP:
		return "DP"
	case KindStraight:
		return "Straight"
	default:
		return "Hybrid"
	}
}

// Plan is a complete parallelization strategy for one model on one cluster:
// the stage partition, each stage's replica devices, and the micro-batch
// geometry for a global batch.
type Plan struct {
	Model   *model.Model
	Cluster hardware.Cluster
	Stages  []Stage

	// GBS is the global batch size; MicroBatch the size of each micro-batch
	// injected into the pipeline. M() micro-batches flow per iteration.
	GBS        int
	MicroBatch int
}

// M returns the number of micro-batches per training iteration.
func (p *Plan) M() int {
	if p.MicroBatch <= 0 {
		return 1
	}
	m := p.GBS / p.MicroBatch
	if m < 1 {
		m = 1
	}
	return m
}

// NumStages returns the number of computation stages.
func (p *Plan) NumStages() int { return len(p.Stages) }

// MaxReplicas returns the largest replication degree across stages.
func (p *Plan) MaxReplicas() int {
	r := 1
	for _, s := range p.Stages {
		if s.Replicas() > r {
			r = s.Replicas()
		}
	}
	return r
}

// Kind classifies the plan.
func (p *Plan) Kind() Kind {
	if len(p.Stages) == 1 {
		return KindDP
	}
	if p.MaxReplicas() == 1 {
		return KindStraight
	}
	return KindHybrid
}

// ChooseMicroBatch picks the micro-batch size for a plan: the profiling
// micro-batch ("cbch size" of Table II), shrunk to the largest divisor of the
// global batch so that M x MicroBatch == GBS exactly — the latency model and
// scheduler conserve samples. Replicated stages process 1/r slices of each
// micro-batch (fluid split-concat semantics, Fig. 8(a)).
func ChooseMicroBatch(m *model.Model, gbs int) int {
	mb := m.ProfileBatch
	if mb > gbs {
		mb = gbs
	}
	for mb > 1 && gbs%mb != 0 {
		mb--
	}
	if mb < 1 {
		mb = 1
	}
	return mb
}

// Validate checks that the plan covers the model exactly once with disjoint
// device groups and a feasible micro-batch geometry.
func (p *Plan) Validate() error {
	if len(p.Stages) == 0 {
		return fmt.Errorf("core: plan has no stages")
	}
	want := 0
	used := map[hardware.DeviceID]bool{}
	for i, s := range p.Stages {
		if s.Lo != want {
			return fmt.Errorf("core: stage %d starts at layer %d, want %d", i, s.Lo, want)
		}
		if s.Hi <= s.Lo {
			return fmt.Errorf("core: stage %d is empty", i)
		}
		if len(s.Devices) == 0 {
			return fmt.Errorf("core: stage %d has no devices", i)
		}
		for _, d := range s.Devices {
			if used[d] {
				return fmt.Errorf("core: device %d assigned twice", d)
			}
			if int(d) >= p.Cluster.NumDevices() || d < 0 {
				return fmt.Errorf("core: device %d out of range", d)
			}
			used[d] = true
		}
		want = s.Hi
	}
	if want != p.Model.NumLayers() {
		return fmt.Errorf("core: stages cover %d layers, model has %d", want, p.Model.NumLayers())
	}
	if p.MicroBatch <= 0 || p.GBS <= 0 {
		return fmt.Errorf("core: non-positive batch geometry (gbs %d, micro %d)", p.GBS, p.MicroBatch)
	}
	if p.GBS%p.MicroBatch != 0 {
		return fmt.Errorf("core: micro-batch %d does not divide global batch %d", p.MicroBatch, p.GBS)
	}
	return nil
}

// StageFwdTime returns the effective forward time of stage i for one
// micro-batch: layer time at the micro-batch size divided across replicas.
func (p *Plan) StageFwdTime(i int) float64 {
	s := p.Stages[i]
	return p.Model.RangeFwdTime(s.Lo, s.Hi, p.MicroBatch) / float64(s.Replicas())
}

// StageBwdTime is the backward counterpart of StageFwdTime.
func (p *Plan) StageBwdTime(i int) float64 {
	s := p.Stages[i]
	return p.Model.RangeBwdTime(s.Lo, s.Hi, p.MicroBatch) / float64(s.Replicas())
}

// StageParamBytes returns the parameter bytes held by stage i (per replica).
func (p *Plan) StageParamBytes(i int) int64 {
	s := p.Stages[i]
	return p.Model.RangeParamBytes(s.Lo, s.Hi)
}

// StageAllReduceTime returns stage i's gradient synchronization time across
// its replicas (zero when unreplicated).
func (p *Plan) StageAllReduceTime(i int) float64 {
	s := p.Stages[i]
	if s.Replicas() <= 1 {
		return 0
	}
	return comm.AllReduceTime(p.Cluster, s.Devices, p.StageParamBytes(i))
}

// BoundaryBytes returns the activation bytes crossing the boundary after
// stage i for one whole micro-batch.
func (p *Plan) BoundaryBytes(i int) int64 {
	s := p.Stages[i]
	return p.Model.OutputBytes(s.Hi-1, p.MicroBatch)
}

// CrossStageTime returns the transfer time of the boundary after stage i
// (activations forward; the gradient volume backward is identical).
func (p *Plan) CrossStageTime(i int) float64 {
	if i >= len(p.Stages)-1 {
		return 0
	}
	return comm.CrossStageTime(p.Cluster, p.Stages[i].Devices, p.Stages[i+1].Devices, p.BoundaryBytes(i))
}

// ACR returns the activation-communication ratio of the plan (§V-C): the
// average cross-stage communication per boundary (forward activations plus
// backward gradients) over the average per-stage computation time.
func (p *Plan) ACR() float64 {
	if len(p.Stages) < 2 {
		return 0
	}
	var commT float64
	for i := 0; i < len(p.Stages)-1; i++ {
		commT += 2 * p.CrossStageTime(i)
	}
	commT /= float64(len(p.Stages) - 1)
	var compT float64
	for i := range p.Stages {
		compT += p.StageFwdTime(i) + p.StageBwdTime(i)
	}
	compT /= float64(len(p.Stages))
	if compT == 0 {
		return 0
	}
	return commT / compT
}

// SplitString renders the layer counts per stage, e.g. "9:7".
func (p *Plan) SplitString() string {
	parts := make([]string, len(p.Stages))
	for i, s := range p.Stages {
		parts[i] = fmt.Sprint(s.Layers())
	}
	return strings.Join(parts, ":")
}

// ReplicaString renders the replication degrees per stage, e.g. "8:8".
func (p *Plan) ReplicaString() string {
	parts := make([]string, len(p.Stages))
	for i, s := range p.Stages {
		parts[i] = fmt.Sprint(s.Replicas())
	}
	return strings.Join(parts, ":")
}

// String implements fmt.Stringer.
func (p *Plan) String() string {
	switch p.Kind() {
	case KindDP:
		return fmt.Sprintf("DP x%d (micro-batch %d)", p.MaxReplicas(), p.MicroBatch)
	case KindStraight:
		return fmt.Sprintf("Straight %d stages (split %s, micro-batch %d)",
			p.NumStages(), p.SplitString(), p.MicroBatch)
	default:
		return fmt.Sprintf("Pipeline %s (split %s, micro-batch %d)",
			p.ReplicaString(), p.SplitString(), p.MicroBatch)
	}
}

// Cuts returns the exclusive layer end index of every stage — the carving
// boundaries a plan-driven runtime slices a real network by.
func (p *Plan) Cuts() []int {
	cuts := make([]int, len(p.Stages))
	for i, s := range p.Stages {
		cuts[i] = s.Hi
	}
	return cuts
}

// ReplicaCounts returns the per-stage replication degrees in stage order.
func (p *Plan) ReplicaCounts() []int {
	rs := make([]int, len(p.Stages))
	for i, s := range p.Stages {
		rs[i] = s.Replicas()
	}
	return rs
}

// CompatibleWithLayers checks that the plan's stage ranges carve a runtime
// network of n layers exactly: the plan's profiled model must map one model
// layer to one runtime layer for Stage.Lo/Hi to be meaningful cut points.
func (p *Plan) CompatibleWithLayers(n int) error {
	if p.Model == nil {
		return fmt.Errorf("core: plan has no model")
	}
	if p.Model.NumLayers() != n {
		return fmt.Errorf("core: plan partitions %d profiled layers but the network has %d",
			p.Model.NumLayers(), n)
	}
	return nil
}

// DevicesUsed returns all devices referenced by the plan, sorted.
func (p *Plan) DevicesUsed() []hardware.DeviceID {
	var ds []hardware.DeviceID
	for _, s := range p.Stages {
		ds = append(ds, s.Devices...)
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds
}
