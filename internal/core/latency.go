package core

import "fmt"

// Unit is one pipeline unit of the analytic latency model. The paper models
// cross-stage communication as first-class pipeline stages interleaved with
// computation stages (§IV-A), so S in the formulas counts both kinds.
type Unit struct {
	Name string
	F    float64 // forward time of one micro-batch through this unit
	B    float64 // backward time of one micro-batch through this unit
	AR   float64 // gradient all-reduce time at iteration end (0 for comm units)
	Comm bool    // true for network-transmission units
}

// Phases breaks a pipeline iteration into the three phases of Fig. 4.
type Phases struct {
	Warmup float64 // Tw: start until the pivot stage's first micro-batch completes forward
	Steady float64 // Ts: (M-1) rounds of F_Q + B_Q at the pivot
	Ending float64 // Te: final backward drain plus the slowest all-reduce tail
	Pivot  int     // Q: index of the pivot unit
}

// Latency returns Tw + Ts + Te.
func (p Phases) Latency() float64 { return p.Warmup + p.Steady + p.Ending }

// Units expands a plan into its interleaved computation and communication
// units, the input of the latency model.
func (p *Plan) Units() []Unit {
	units := make([]Unit, 0, 2*len(p.Stages)-1)
	for i := range p.Stages {
		units = append(units, Unit{
			Name: fmt.Sprintf("stage%d", i),
			F:    p.StageFwdTime(i),
			B:    p.StageBwdTime(i),
			AR:   p.StageAllReduceTime(i),
		})
		if i < len(p.Stages)-1 {
			t := p.CrossStageTime(i)
			units = append(units, Unit{
				Name: fmt.Sprintf("comm%d-%d", i, i+1),
				F:    t,
				B:    t, // boundary gradient volume equals activation volume
				Comm: true,
			})
		}
	}
	return units
}

// PivotStage implements Eq. (3): starting from the last unit, walk toward the
// front and adopt stage s as pivot whenever its bubble-free steady time
// exceeds the current pivot's steady time plus the forward/backward costs
// separating them.
func PivotStage(units []Unit, m int) int {
	steady := func(s int) float64 { return float64(m-1) * (units[s].F + units[s].B) }
	q := len(units) - 1
	for s := len(units) - 2; s >= 0; s-- {
		sep := 0.0
		for a := s + 1; a < q; a++ {
			sep += units[a].F + units[a].B
		}
		if steady(s) > steady(q)+sep {
			q = s
		}
	}
	return q
}

// PipelineLatency evaluates the synchronous pipeline-latency objective of
// Eq. (1)-(2) for m micro-batches over the given units.
//
// Tw sums forward times up to and including the pivot; Ts is the pivot's
// bubble-free steady phase; Te is the maximum over stages of the stage's
// all-reduce tail offset by where its final backward lands relative to the
// pivot's (positive for stages before the pivot, which still await the last
// backward wave; negative for stages after it, which finished early).
func PipelineLatency(units []Unit, m int) Phases {
	if len(units) == 0 || m < 1 {
		return Phases{}
	}
	q := PivotStage(units, m)

	var tw float64
	for s := 0; s <= q; s++ {
		tw += units[s].F
	}
	ts := float64(m-1) * (units[q].F + units[q].B)

	var te float64
	for s := range units {
		var tail float64
		if s <= q {
			for a := s; a <= q; a++ {
				tail += units[a].B
			}
		} else {
			for a := q + 1; a <= s; a++ {
				tail -= units[a].B
			}
		}
		if t := units[s].AR + tail; t > te {
			te = t
		}
	}
	if te < 0 {
		te = 0
	}
	return Phases{Warmup: tw, Steady: ts, Ending: te, Pivot: q}
}

// Latency returns the analytic pipeline latency of the plan: Eq. (2) over
// the plan's units with its micro-batch count.
func (p *Plan) Latency() float64 {
	return PipelineLatency(p.Units(), p.M()).Latency()
}

// Speedup returns the paper's training speedup metric for this plan: the
// single-device sequential time for the same global batch divided by the
// plan's latency.
func (p *Plan) Speedup() float64 {
	l := p.Latency()
	if l == 0 {
		return 0
	}
	return p.Model.SingleDeviceIterTime(p.GBS) / l
}

// BubbleFraction estimates the fraction of device time lost to pipeline
// bubbles at the pivot stage: 1 - M(F_Q+B_Q)/L for the analytic model.
func (p *Plan) BubbleFraction() float64 {
	units := p.Units()
	ph := PipelineLatency(units, p.M())
	l := ph.Latency()
	if l == 0 {
		return 0
	}
	busy := float64(p.M()) * (units[ph.Pivot].F + units[ph.Pivot].B)
	frac := 1 - busy/l
	if frac < 0 {
		return 0
	}
	return frac
}
