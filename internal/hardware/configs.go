package hardware

// The three hardware configurations of Table III in the paper. All use V100
// GPUs with 16 GB of device memory; they differ in how GPUs are grouped and
// interconnected:
//
//	Config A: 8× V100 per server, NVLink intra-server, 25 Gbps Ethernet.
//	Config B: 1× V100 per server, 25 Gbps Ethernet.
//	Config C: 1× V100 per server, 10 Gbps Ethernet.
//
// Bandwidth figures follow the paper: NVLink "up to 130 GB/s" (§VI-B),
// Ethernet at nominal line rate derated to ~85% achievable goodput, which is
// what collective libraries sustain in practice.
const (
	nvlinkBW   = 130e9           // bytes/sec
	ether25BW  = 25e9 / 8 * 0.85 // 25 Gbps -> bytes/sec goodput
	ether10BW  = 10e9 / 8 * 0.85 // 10 Gbps -> bytes/sec goodput
	nvlinkLat  = 3e-6            // seconds
	etherLat   = 50e-6           // seconds
	v100Memory = int64(16) * GiB // bytes
	v100FLOPS  = 14e12           // sustained fp32 FLOP/s
)

// ConfigA returns the hierarchical topology: servers with 8 NVLink-connected
// V100s each, joined by 25 Gbps Ethernet.
func ConfigA(servers int) Cluster {
	return Cluster{
		Name:          "config-A",
		Servers:       servers,
		GPUsPerServer: 8,
		IntraBW:       nvlinkBW,
		IntraLatency:  nvlinkLat,
		InterBW:       ether25BW,
		InterLatency:  etherLat,
		DeviceMemory:  v100Memory,
		DeviceFLOPS:   v100FLOPS,
	}
}

// ConfigB returns the flat topology: one V100 per server, 25 Gbps Ethernet.
func ConfigB(servers int) Cluster {
	return Cluster{
		Name:          "config-B",
		Servers:       servers,
		GPUsPerServer: 1,
		IntraBW:       nvlinkBW, // unused: single GPU per server
		IntraLatency:  nvlinkLat,
		InterBW:       ether25BW,
		InterLatency:  etherLat,
		DeviceMemory:  v100Memory,
		DeviceFLOPS:   v100FLOPS,
	}
}

// ConfigC returns the flat topology with slow network: one V100 per server,
// 10 Gbps Ethernet.
func ConfigC(servers int) Cluster {
	return Cluster{
		Name:          "config-C",
		Servers:       servers,
		GPUsPerServer: 1,
		IntraBW:       nvlinkBW,
		IntraLatency:  nvlinkLat,
		InterBW:       ether10BW,
		InterLatency:  etherLat,
		DeviceMemory:  v100Memory,
		DeviceFLOPS:   v100FLOPS,
	}
}

// StandardConfigs returns the paper's three 16-device environments keyed by
// their Table III names: config A as 2 servers × 8 GPUs, configs B and C as
// 16 × 1.
func StandardConfigs() map[string]Cluster {
	return map[string]Cluster{
		"A": ConfigA(2),
		"B": ConfigB(16),
		"C": ConfigC(16),
	}
}
