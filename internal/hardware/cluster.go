// Package hardware models the GPU cluster topologies that DAPPLE plans
// against: servers holding one or more devices, fast intra-server
// interconnects (NVLink) and slower inter-server Ethernet.
//
// The package is a pure description; time costs derived from it live in
// package comm. All bandwidths are bytes/second and all latencies seconds so
// they compose directly with task durations in the simulator.
package hardware

import (
	"fmt"
	"sort"
)

// DeviceID identifies a single accelerator in a cluster. Devices are numbered
// row-major: device d lives on server d/GPUsPerServer.
type DeviceID int

// GiB is one gibibyte in bytes, the unit device memory is quoted in.
const GiB = 1 << 30

// Cluster describes a homogeneous training cluster: Servers machines, each
// with GPUsPerServer devices. Interconnect performance is split into the
// intra-server fabric (NVLink when GPUsPerServer > 1) and the inter-server
// network (Ethernet in all of the paper's configurations).
type Cluster struct {
	Name          string
	Servers       int
	GPUsPerServer int

	// IntraBW/IntraLatency describe links between devices on one server.
	// They are ignored when GPUsPerServer == 1.
	IntraBW      float64 // bytes/sec
	IntraLatency float64 // seconds

	// InterBW/InterLatency describe links between devices on different
	// servers.
	InterBW      float64 // bytes/sec
	InterLatency float64 // seconds

	// DeviceMemory is the usable memory per device in bytes.
	DeviceMemory int64

	// DeviceFLOPS is the sustained compute throughput of one device in
	// FLOP/s. The model zoo stores per-layer times for a reference device;
	// this field lets experiments scale to faster/slower parts.
	DeviceFLOPS float64
}

// NumDevices returns the total device count.
func (c Cluster) NumDevices() int { return c.Servers * c.GPUsPerServer }

// Devices returns all device IDs in increasing order.
func (c Cluster) Devices() []DeviceID {
	ds := make([]DeviceID, c.NumDevices())
	for i := range ds {
		ds[i] = DeviceID(i)
	}
	return ds
}

// Server returns the index of the server hosting device d.
func (c Cluster) Server(d DeviceID) int { return int(d) / c.GPUsPerServer }

// SameServer reports whether a and b are co-located on one server.
func (c Cluster) SameServer(a, b DeviceID) bool { return c.Server(a) == c.Server(b) }

// Bandwidth returns the point-to-point bandwidth between two devices in
// bytes/sec. The bandwidth of a device to itself is +Inf conceptually; we
// return IntraBW to keep arithmetic finite (a zero-byte transfer still takes
// zero time).
func (c Cluster) Bandwidth(a, b DeviceID) float64 {
	if a == b || c.SameServer(a, b) {
		return c.IntraBW
	}
	return c.InterBW
}

// Latency returns the point-to-point latency between two devices in seconds.
func (c Cluster) Latency(a, b DeviceID) float64 {
	if a == b {
		return 0
	}
	if c.SameServer(a, b) {
		return c.IntraLatency
	}
	return c.InterLatency
}

// GroupBandwidth returns the narrowest point-to-point bandwidth inside a
// device group, i.e. the bandwidth a ring collective over the group is
// limited by.
func (c Cluster) GroupBandwidth(devs []DeviceID) float64 {
	if len(devs) <= 1 {
		return c.IntraBW
	}
	if c.SpansServers(devs) {
		return c.InterBW
	}
	return c.IntraBW
}

// GroupLatency returns the per-hop latency for a collective over devs.
func (c Cluster) GroupLatency(devs []DeviceID) float64 {
	if len(devs) <= 1 {
		return 0
	}
	if c.SpansServers(devs) {
		return c.InterLatency
	}
	return c.IntraLatency
}

// SpansServers reports whether the group uses more than one server.
func (c Cluster) SpansServers(devs []DeviceID) bool {
	if len(devs) == 0 {
		return false
	}
	first := c.Server(devs[0])
	for _, d := range devs[1:] {
		if c.Server(d) != first {
			return true
		}
	}
	return false
}

// ServersUsed returns the sorted list of distinct servers hosting devs.
func (c Cluster) ServersUsed(devs []DeviceID) []int {
	seen := map[int]bool{}
	for _, d := range devs {
		seen[c.Server(d)] = true
	}
	out := make([]int, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// Validate checks internal consistency, returning a descriptive error for
// impossible configurations.
func (c Cluster) Validate() error {
	switch {
	case c.Servers <= 0:
		return fmt.Errorf("hardware: cluster %q has %d servers", c.Name, c.Servers)
	case c.GPUsPerServer <= 0:
		return fmt.Errorf("hardware: cluster %q has %d GPUs/server", c.Name, c.GPUsPerServer)
	case c.InterBW <= 0 && c.Servers > 1:
		return fmt.Errorf("hardware: cluster %q has multiple servers but no inter-server bandwidth", c.Name)
	case c.IntraBW <= 0 && c.GPUsPerServer > 1:
		return fmt.Errorf("hardware: cluster %q has multiple GPUs/server but no intra-server bandwidth", c.Name)
	case c.DeviceMemory <= 0:
		return fmt.Errorf("hardware: cluster %q has no device memory", c.Name)
	}
	return nil
}

// String implements fmt.Stringer.
func (c Cluster) String() string {
	return fmt.Sprintf("%s: %d×%d GPUs (intra %.0f GB/s, inter %.2f GB/s, %d GiB/device)",
		c.Name, c.Servers, c.GPUsPerServer, c.IntraBW/1e9, c.InterBW/1e9, c.DeviceMemory/GiB)
}
