package hardware

import (
	"testing"
	"testing/quick"
)

func TestConfigShapes(t *testing.T) {
	cases := []struct {
		c         Cluster
		devices   int
		perServer int
	}{
		{ConfigA(2), 16, 8},
		{ConfigB(16), 16, 1},
		{ConfigC(16), 16, 1},
		{ConfigA(4), 32, 8},
	}
	for _, tc := range cases {
		if err := tc.c.Validate(); err != nil {
			t.Errorf("%s: %v", tc.c.Name, err)
		}
		if tc.c.NumDevices() != tc.devices {
			t.Errorf("%s: %d devices, want %d", tc.c.Name, tc.c.NumDevices(), tc.devices)
		}
		if tc.c.GPUsPerServer != tc.perServer {
			t.Errorf("%s: %d GPUs/server, want %d", tc.c.Name, tc.c.GPUsPerServer, tc.perServer)
		}
	}
}

func TestConfigRelativeBandwidth(t *testing.T) {
	a, b, c := ConfigA(2), ConfigB(16), ConfigC(16)
	if a.IntraBW <= a.InterBW {
		t.Fatal("NVLink must beat Ethernet")
	}
	if b.InterBW <= c.InterBW {
		t.Fatal("25 Gbps must beat 10 Gbps")
	}
	if b.InterBW != a.InterBW {
		t.Fatal("configs A and B share the 25 Gbps network")
	}
}

func TestServerAssignment(t *testing.T) {
	c := ConfigA(2)
	if c.Server(0) != 0 || c.Server(7) != 0 || c.Server(8) != 1 || c.Server(15) != 1 {
		t.Fatal("row-major server assignment broken")
	}
	if !c.SameServer(0, 7) || c.SameServer(7, 8) {
		t.Fatal("SameServer broken")
	}
}

func TestBandwidthLatency(t *testing.T) {
	c := ConfigA(2)
	if c.Bandwidth(0, 1) != c.IntraBW {
		t.Fatal("intra-server bandwidth")
	}
	if c.Bandwidth(0, 8) != c.InterBW {
		t.Fatal("inter-server bandwidth")
	}
	if c.Latency(3, 3) != 0 {
		t.Fatal("self latency must be zero")
	}
	if c.Latency(0, 8) <= c.Latency(0, 1) {
		t.Fatal("inter latency must exceed intra")
	}
}

func TestGroupProperties(t *testing.T) {
	c := ConfigA(2)
	local := []DeviceID{0, 1, 2}
	cross := []DeviceID{0, 8}
	if c.SpansServers(local) {
		t.Fatal("local group spans servers")
	}
	if !c.SpansServers(cross) {
		t.Fatal("cross group does not span servers")
	}
	if c.GroupBandwidth(local) != c.IntraBW || c.GroupBandwidth(cross) != c.InterBW {
		t.Fatal("group bandwidth")
	}
	if got := c.ServersUsed(cross); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("ServersUsed = %v", got)
	}
}

func TestValidateRejectsBadClusters(t *testing.T) {
	bad := []Cluster{
		{Name: "no-servers", GPUsPerServer: 1, DeviceMemory: 1},
		{Name: "no-gpus", Servers: 1, DeviceMemory: 1},
		{Name: "no-inter", Servers: 2, GPUsPerServer: 1, DeviceMemory: 1},
		{Name: "no-intra", Servers: 1, GPUsPerServer: 2, InterBW: 1, DeviceMemory: 1},
		{Name: "no-mem", Servers: 1, GPUsPerServer: 1, InterBW: 1, IntraBW: 1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.Name)
		}
	}
}

// Property: every device belongs to exactly one server and server indices
// are within range.
func TestDeviceServerProperty(t *testing.T) {
	f := func(servers8, gps8 uint8) bool {
		servers := int(servers8%6) + 1
		gps := int(gps8%8) + 1
		c := Cluster{Name: "t", Servers: servers, GPUsPerServer: gps,
			IntraBW: 1, InterBW: 1, DeviceMemory: 1}
		counts := make([]int, servers)
		for _, d := range c.Devices() {
			s := c.Server(d)
			if s < 0 || s >= servers {
				return false
			}
			counts[s]++
		}
		for _, n := range counts {
			if n != gps {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStandardConfigs(t *testing.T) {
	m := StandardConfigs()
	for _, k := range []string{"A", "B", "C"} {
		c, ok := m[k]
		if !ok {
			t.Fatalf("missing config %s", k)
		}
		if c.NumDevices() != 16 {
			t.Fatalf("config %s has %d devices, want 16", k, c.NumDevices())
		}
	}
}
