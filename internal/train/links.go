package train

import (
	"fmt"

	"dapple/internal/tensor"
)

// partition returns the k+1 row offsets of splitting rows across k parts,
// first parts one row larger on uneven splits — the same layout
// tensor.SplitRows produces — so part i covers global rows
// [offs[i], offs[i+1]).
func partition(rows, k int) []int {
	offs := make([]int, k+1)
	base, extra := rows/k, rows%k
	for i := 0; i < k; i++ {
		sz := base
		if i < extra {
			sz++
		}
		offs[i+1] = offs[i] + sz
	}
	return offs
}

// linkMsg carries one micro-batch's row block between two workers.
type linkMsg struct {
	m    int
	data *tensor.Matrix
}

// boundary wires one stage cut of the pipeline: a channel matrix between the
// sender stage's replicas and the receiver stage's replicas realizing the
// paper's split/concat semantics (§V-B2). Each replica owns a contiguous
// global row range of the micro-batch; a channel exists exactly where a
// sender's range intersects a receiver's, so unequal replication degrees
// redistribute rows without any central concat node. Forward (activations)
// and backward (gradients) directions use separate channels, mirroring the
// simulator's full-duplex link resources.
type boundary struct {
	sendOffs []int // sender-stage row offsets, len(senders)+1
	recvOffs []int // receiver-stage row offsets, len(receivers)+1
	fwd      [][]chan linkMsg
	bwd      [][]chan linkMsg
}

// newBoundary builds the channel matrix for a cut between rs sender replicas
// and rr receiver replicas over micro-batches of the given rows. Channels are
// buffered for m in-flight micro-batches so sends never block.
func newBoundary(rows, rs, rr, m int) *boundary {
	b := &boundary{
		sendOffs: partition(rows, rs),
		recvOffs: partition(rows, rr),
		fwd:      make([][]chan linkMsg, rs),
		bwd:      make([][]chan linkMsg, rs),
	}
	for s := 0; s < rs; s++ {
		b.fwd[s] = make([]chan linkMsg, rr)
		b.bwd[s] = make([]chan linkMsg, rr)
		for q := 0; q < rr; q++ {
			if lo, hi := intersect(b.sendOffs, s, b.recvOffs, q); hi > lo {
				b.fwd[s][q] = make(chan linkMsg, m)
				b.bwd[s][q] = make(chan linkMsg, m)
			}
		}
	}
	return b
}

// intersect returns the global-row overlap of sender part s and receiver
// part q.
func intersect(sendOffs []int, s int, recvOffs []int, q int) (int, int) {
	lo := max(sendOffs[s], recvOffs[q])
	hi := min(sendOffs[s+1], recvOffs[q+1])
	return lo, hi
}

// sendFwd scatters sender replica s's forward output (its local rows) to
// every receiver whose row range intersects. Slices are views — the sender
// must not mutate data after sending, which the executor guarantees by never
// reusing stage outputs.
func (b *boundary) sendFwd(s, m int, data *tensor.Matrix) {
	srcLo := b.sendOffs[s]
	for q := range b.fwd[s] {
		if ch := b.fwd[s][q]; ch != nil {
			lo, hi := intersect(b.sendOffs, s, b.recvOffs, q)
			ch <- linkMsg{m, data.RowSlice(lo-srcLo, hi-srcLo)}
		}
	}
}

// recvFwd gathers receiver replica q's forward input rows from every
// intersecting sender, concatenating pieces in global row order.
func (b *boundary) recvFwd(q, m int, abort <-chan struct{}) (*tensor.Matrix, error) {
	var parts []*tensor.Matrix
	for s := range b.fwd {
		ch := b.fwd[s][q]
		if ch == nil {
			continue
		}
		select {
		case in := <-ch:
			if in.m != m {
				return nil, fmt.Errorf("train: link expected F%d, got F%d", m, in.m)
			}
			parts = append(parts, in.data)
		case <-abort:
			return nil, errAborted
		}
	}
	return assemble(parts), nil
}

// sendBwd scatters receiver replica q's input gradient back to every
// intersecting sender replica of the previous stage.
func (b *boundary) sendBwd(q, m int, data *tensor.Matrix) {
	srcLo := b.recvOffs[q]
	for s := range b.bwd {
		if ch := b.bwd[s][q]; ch != nil {
			lo, hi := intersect(b.sendOffs, s, b.recvOffs, q)
			ch <- linkMsg{m, data.RowSlice(lo-srcLo, hi-srcLo)}
		}
	}
}

// recvBwd gathers sender replica s's output gradient rows from every
// intersecting receiver replica of the next stage.
func (b *boundary) recvBwd(s, m int, abort <-chan struct{}) (*tensor.Matrix, error) {
	var parts []*tensor.Matrix
	for q := range b.bwd[s] {
		ch := b.bwd[s][q]
		if ch == nil {
			continue
		}
		select {
		case in := <-ch:
			if in.m != m {
				return nil, fmt.Errorf("train: link expected B%d, got B%d", m, in.m)
			}
			parts = append(parts, in.data)
		case <-abort:
			return nil, errAborted
		}
	}
	return assemble(parts), nil
}

// assemble concatenates received row blocks; a single block passes through
// without copying.
func assemble(parts []*tensor.Matrix) *tensor.Matrix {
	if len(parts) == 1 {
		return parts[0]
	}
	return tensor.ConcatRows(parts...)
}
