package train

import (
	"fmt"

	"dapple/internal/nn"
	"dapple/internal/tensor"
)

// partition returns the k+1 row offsets of splitting rows across k parts,
// first parts one row larger on uneven splits — the same layout
// tensor.SplitRows produces — so part i covers global rows
// [offs[i], offs[i+1]).
func partition(rows, k int) []int {
	offs := make([]int, k+1)
	base, extra := rows/k, rows%k
	for i := 0; i < k; i++ {
		sz := base
		if i < extra {
			sz++
		}
		offs[i+1] = offs[i] + sz
	}
	return offs
}

// linkMsg carries one micro-batch's row block between two workers.
type linkMsg struct {
	m    int
	data *tensor.Matrix
}

// fwdChan is one forward (activation) edge of a boundary cut. Forward
// transfers are zero-copy: the sender publishes a view of its output through
// a reusable per-micro-batch header, which is safe because the sender's
// output buffer stays leased until the sender's own backward of that
// micro-batch — and pipeline causality (the backward gradient flows receiver
// → sender) guarantees the receiver is completely done reading by then.
type fwdChan struct {
	lo, hi int // global-row intersection of sender and receiver parts
	ch     chan linkMsg
	hdrs   []tensor.Matrix // per-micro-batch view headers, reused across steps
}

// bwdChan is one backward (gradient) edge of a boundary cut. Backward
// transfers copy into recycled fixed-shape buffers (the producer releases
// its gradient buffer right after sending, so views would dangle); consumers
// return buffers through free once the gradient is consumed.
type bwdChan struct {
	lo, hi int
	ch     chan linkMsg
	free   chan *tensor.Matrix
}

// leaseBuf leases a rows x cols transfer buffer from a free list: recycled
// when one of the right shape is available, freshly allocated otherwise
// (only before the steady state). Shared by the backward transfer rings and
// the forward prefetcher's assembly ring.
func leaseBuf(free chan *tensor.Matrix, rows, cols int) *tensor.Matrix {
	select {
	case b := <-free:
		if b.Rows == rows && b.Cols == cols {
			return b
		}
	default:
	}
	return tensor.New(rows, cols)
}

// recycle returns a consumed transfer buffer, dropping it when the free list
// is full.
func recycle(free chan *tensor.Matrix, b *tensor.Matrix) {
	select {
	case free <- b:
	default:
	}
}

// boundary wires one stage cut of the pipeline: a channel matrix between the
// sender stage's replicas and the receiver stage's replicas realizing the
// paper's split/concat semantics (§V-B2). Each replica owns a contiguous
// global row range of the micro-batch; a channel exists exactly where a
// sender's range intersects a receiver's, so unequal replication degrees
// redistribute rows without any central concat node. Forward (activations)
// and backward (gradients) directions use separate channels, mirroring the
// simulator's full-duplex link resources. A boundary is built once per step
// geometry and all its transfer state — view headers forward, recycled
// buffers backward — is reused across training iterations, so a warm
// boundary moves every micro-batch with zero allocation.
type boundary struct {
	sendOffs []int        // sender-stage row offsets, len(senders)+1
	recvOffs []int        // receiver-stage row offsets, len(receivers)+1
	fwd      [][]*fwdChan // [sender][receiver]
	bwd      [][]*bwdChan // [sender][receiver]
}

// newBoundary builds the channel matrix for a cut between rs sender replicas
// and rr receiver replicas over micro-batches of the given rows. Channels are
// buffered for m in-flight micro-batches so sends never block.
func newBoundary(rows, rs, rr, m int) *boundary {
	b := &boundary{
		sendOffs: partition(rows, rs),
		recvOffs: partition(rows, rr),
		fwd:      make([][]*fwdChan, rs),
		bwd:      make([][]*bwdChan, rs),
	}
	for s := 0; s < rs; s++ {
		b.fwd[s] = make([]*fwdChan, rr)
		b.bwd[s] = make([]*bwdChan, rr)
		for q := 0; q < rr; q++ {
			if lo, hi := intersect(b.sendOffs, s, b.recvOffs, q); hi > lo {
				b.fwd[s][q] = &fwdChan{
					lo: lo, hi: hi,
					ch:   make(chan linkMsg, m),
					hdrs: make([]tensor.Matrix, m),
				}
				b.bwd[s][q] = &bwdChan{
					lo: lo, hi: hi,
					ch:   make(chan linkMsg, m),
					free: make(chan *tensor.Matrix, m),
				}
			}
		}
	}
	return b
}

// intersect returns the global-row overlap of sender part s and receiver
// part q.
func intersect(sendOffs []int, s int, recvOffs []int, q int) (int, int) {
	lo := max(sendOffs[s], recvOffs[q])
	hi := min(sendOffs[s+1], recvOffs[q+1])
	return lo, hi
}

// sendFwd scatters sender replica s's forward output (its local rows) to
// every receiver whose row range intersects, publishing views through the
// per-micro-batch header ring — no copy, no allocation. The sender must keep
// data's storage leased until its own backward of micro-batch m (the
// executor's run ownership does), which by pipeline causality outlives every
// receiver's reads.
func (b *boundary) sendFwd(s, m int, data *tensor.Matrix) {
	srcLo := b.sendOffs[s]
	for q := range b.fwd[s] {
		if fc := b.fwd[s][q]; fc != nil {
			hdr := &fc.hdrs[m]
			data.RowSliceInto(hdr, fc.lo-srcLo, fc.hi-srcLo)
			fc.ch <- linkMsg{m, hdr}
		}
	}
}

// recvFwdParts receives receiver replica q's forward input parts for
// micro-batch m in sender order, reusing the caller's scratch slice. The
// parts are views into sender-owned storage; callers must be done reading
// before their own backward of m completes (they are: the stashes that
// reference them die with that backward).
func (b *boundary) recvFwdParts(q, m int, scratch []*tensor.Matrix, abort <-chan struct{}) ([]*tensor.Matrix, error) {
	parts := scratch[:0]
	for s := range b.fwd {
		fc := b.fwd[s][q]
		if fc == nil {
			continue
		}
		select {
		case in := <-fc.ch:
			if in.m != m {
				return nil, fmt.Errorf("train: link expected F%d, got F%d", m, in.m)
			}
			parts = append(parts, in.data)
		case <-abort:
			return nil, errAborted
		}
	}
	return parts, nil
}

// sendBwd scatters receiver replica q's input gradient back to every
// intersecting sender replica of the previous stage, copying into recycled
// transfer buffers (data may be released by the caller immediately after).
func (b *boundary) sendBwd(q, m int, data *tensor.Matrix) {
	srcLo := b.recvOffs[q]
	cols := data.Cols
	for s := range b.bwd {
		if bc := b.bwd[s][q]; bc != nil {
			buf := leaseBuf(bc.free, bc.hi-bc.lo, cols)
			copy(buf.Data, data.Data[(bc.lo-srcLo)*cols:(bc.hi-srcLo)*cols])
			bc.ch <- linkMsg{m, buf}
		}
	}
}

// recvBwd gathers sender replica s's output gradient for micro-batch m. A
// single full-range part passes through zero-copy together with its recycle
// destination; multiple parts are concatenated into a workspace buffer
// (free == nil) with the transfer buffers recycled immediately. Either way
// the caller owns the returned gradient until it returns it: to free when
// non-nil, to ws otherwise.
func (b *boundary) recvBwd(s, m int, scratch *[]*tensor.Matrix, ws *nn.Workspace, abort <-chan struct{}) (*tensor.Matrix, chan *tensor.Matrix, error) {
	parts := (*scratch)[:0]
	defer func() { *scratch = parts[:0] }()
	var single *bwdChan
	for q := range b.bwd[s] {
		bc := b.bwd[s][q]
		if bc == nil {
			continue
		}
		single = bc
		select {
		case in := <-bc.ch:
			if in.m != m {
				return nil, nil, fmt.Errorf("train: link expected B%d, got B%d", m, in.m)
			}
			parts = append(parts, in.data)
		case <-abort:
			return nil, nil, errAborted
		}
	}
	if len(parts) == 1 {
		return parts[0], single.free, nil
	}
	dst := ws.Get(b.sendOffs[s+1]-b.sendOffs[s], parts[0].Cols)
	tensor.ConcatRowsInto(dst, parts...)
	k := 0
	for q := range b.bwd[s] {
		if bc := b.bwd[s][q]; bc != nil {
			recycle(bc.free, parts[k])
			k++
		}
	}
	return dst, nil, nil
}
