package train

import (
	"fmt"

	"dapple/internal/nn"
	"dapple/internal/tensor"
	"dapple/internal/transport"
)

// partition returns the k+1 row offsets of splitting rows across k parts,
// first parts one row larger on uneven splits — the same layout
// tensor.SplitRows produces — so part i covers global rows
// [offs[i], offs[i+1]).
func partition(rows, k int) []int {
	offs := make([]int, k+1)
	base, extra := rows/k, rows%k
	for i := 0; i < k; i++ {
		sz := base
		if i < extra {
			sz++
		}
		offs[i+1] = offs[i] + sz
	}
	return offs
}

// intersect returns the global-row overlap of sender part s and receiver
// part q.
func intersect(sendOffs []int, s int, recvOffs []int, q int) (int, int) {
	lo := max(sendOffs[s], recvOffs[q])
	hi := min(sendOffs[s+1], recvOffs[q+1])
	return lo, hi
}

// edgeMaker realizes one directed link of a cut over some transport backend,
// returning nil (no error) when neither endpoint lives in this process — a
// distributed executor only materializes the edges it touches.
type edgeMaker func(id transport.EdgeID) (transport.Edge, error)

// bedge is one realized edge of a boundary: the global-row intersection it
// carries, the transport link, and the reusable send-side view headers
// (per-micro-batch for forward sends, a single scratch header for backward
// sends, which copy before returning).
type bedge struct {
	lo, hi int
	e      transport.Edge
	hdrs   []tensor.Matrix // forward: per-micro-batch view headers
	tmp    tensor.Matrix   // backward: reusable row-slice header
}

// boundary wires one stage cut of the pipeline: an edge matrix between the
// sender stage's replicas and the receiver stage's replicas realizing the
// paper's split/concat semantics (§V-B2). Each replica owns a contiguous
// global row range of the micro-batch; an edge exists exactly where a
// sender's range intersects a receiver's, so unequal replication degrees
// redistribute rows without any central concat node. Forward (activations)
// and backward (gradients) directions use separate edges, mirroring the
// simulator's full-duplex link resources. A boundary is built once per step
// geometry and all its transfer state — view headers forward, recycled
// buffers backward — is reused across training iterations, so a warm
// in-process boundary moves every micro-batch with zero allocation. In a
// distributed run, pairs whose endpoints share the process use in-process
// edges and cross-process pairs use the TCP backend; pairs entirely remote
// stay nil.
type boundary struct {
	sendOffs []int      // sender-stage row offsets, len(senders)+1
	recvOffs []int      // receiver-stage row offsets, len(receivers)+1
	fwd      [][]*bedge // [sender][receiver]
	bwd      [][]*bedge // [sender][receiver]
}

// newBoundary builds the edge matrix for cut bound (between stages bound and
// bound+1) with rs sender replicas and rr receiver replicas over
// micro-batches of the given rows. Edges are buffered for m in-flight
// micro-batches so sends never block; mk chooses each pair's backend.
func newBoundary(bound, rows, rs, rr, m int, mk edgeMaker) (*boundary, error) {
	b := &boundary{
		sendOffs: partition(rows, rs),
		recvOffs: partition(rows, rr),
		fwd:      make([][]*bedge, rs),
		bwd:      make([][]*bedge, rs),
	}
	for s := 0; s < rs; s++ {
		b.fwd[s] = make([]*bedge, rr)
		b.bwd[s] = make([]*bedge, rr)
		for q := 0; q < rr; q++ {
			lo, hi := intersect(b.sendOffs, s, b.recvOffs, q)
			if hi <= lo {
				continue
			}
			fe, err := mk(transport.EdgeID{Bound: bound, Dir: transport.Fwd, S: s, Q: q})
			if err != nil {
				return nil, err
			}
			if fe != nil {
				b.fwd[s][q] = &bedge{lo: lo, hi: hi, e: fe, hdrs: make([]tensor.Matrix, m)}
			}
			be, err := mk(transport.EdgeID{Bound: bound, Dir: transport.Bwd, S: q, Q: s})
			if err != nil {
				return nil, err
			}
			if be != nil {
				b.bwd[s][q] = &bedge{lo: lo, hi: hi, e: be}
			}
		}
	}
	return b, nil
}

// sendFwd scatters sender replica s's forward output (its local rows) to
// every receiver whose row range intersects, publishing views through the
// per-micro-batch header ring — no copy, no allocation on the in-process
// backend. The sender must keep data's storage leased until its own backward
// of micro-batch m (the executor's run ownership does), which by pipeline
// causality outlives every receiver's reads and every in-flight
// serialization.
func (b *boundary) sendFwd(s, m int, data *tensor.Matrix) error {
	srcLo := b.sendOffs[s]
	for _, be := range b.fwd[s] {
		if be == nil {
			continue
		}
		hdr := &be.hdrs[m]
		data.RowSliceInto(hdr, be.lo-srcLo, be.hi-srcLo)
		if err := be.e.SendView(m, hdr); err != nil {
			return err
		}
	}
	return nil
}

// recvFwdParts receives receiver replica q's forward input parts for
// micro-batch m in sender order, reusing the caller's scratch slice. Parts
// from in-process senders are views into sender-owned storage (Free nil);
// parts from remote senders arrive in recycled transfer buffers the caller
// must Recycle once consumed.
func (b *boundary) recvFwdParts(q, m int, scratch []transport.Msg, abort <-chan struct{}) ([]transport.Msg, error) {
	parts := scratch[:0]
	for s := range b.fwd {
		be := b.fwd[s][q]
		if be == nil {
			continue
		}
		in, err := be.e.Recv(abort)
		if err != nil {
			return nil, err
		}
		if in.M != m {
			return nil, fmt.Errorf("train: link expected F%d, got F%d", m, in.M)
		}
		parts = append(parts, in)
	}
	return parts, nil
}

// sendBwd scatters receiver replica q's input gradient back to every
// intersecting sender replica of the previous stage, copying into recycled
// transfer buffers (data may be released by the caller immediately after).
func (b *boundary) sendBwd(q, m int, data *tensor.Matrix) error {
	srcLo := b.recvOffs[q]
	for s := range b.bwd {
		be := b.bwd[s][q]
		if be == nil {
			continue
		}
		data.RowSliceInto(&be.tmp, be.lo-srcLo, be.hi-srcLo)
		if err := be.e.SendCopy(m, &be.tmp); err != nil {
			return err
		}
	}
	return nil
}

// recvBwd gathers sender replica s's output gradient for micro-batch m. A
// single full-range part passes through zero-copy together with its recycle
// destination; multiple parts are concatenated into a workspace buffer
// (free == nil) with the transfer buffers recycled immediately. Either way
// the caller owns the returned gradient until it returns it: to free when
// non-nil, to ws otherwise.
func (b *boundary) recvBwd(s, m int, scratch *[]transport.Msg, ws *nn.Workspace, abort <-chan struct{}) (*tensor.Matrix, chan *tensor.Matrix, error) {
	parts := (*scratch)[:0]
	defer func() { *scratch = parts[:0] }()
	for q := range b.bwd[s] {
		be := b.bwd[s][q]
		if be == nil {
			continue
		}
		in, err := be.e.Recv(abort)
		if err != nil {
			return nil, nil, err
		}
		if in.M != m {
			return nil, nil, fmt.Errorf("train: link expected B%d, got B%d", m, in.M)
		}
		parts = append(parts, in)
	}
	if len(parts) == 1 {
		return parts[0].Data, parts[0].Free, nil
	}
	dst := ws.Get(b.sendOffs[s+1]-b.sendOffs[s], parts[0].Data.Cols)
	concatMsgRows(dst, parts)
	for _, p := range parts {
		transport.Recycle(p.Free, p.Data)
	}
	return dst, nil, nil
}

// concatMsgRows stacks the messages' tensors into dst in order.
func concatMsgRows(dst *tensor.Matrix, parts []transport.Msg) {
	at := 0
	for _, p := range parts {
		copy(dst.Data[at:], p.Data.Data)
		at += len(p.Data.Data)
	}
	if at != len(dst.Data) {
		panic("train: concatenated parts do not tile the destination")
	}
}
