package train

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"dapple/internal/transport"
)

// hbPair wires a two-rank loopback mesh with peer isolation on, so a
// heartbeat death verdict downs one rank instead of the transport.
func hbPair(t *testing.T) (a, b *transport.TCP) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	a, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	a.SetRank(0)
	b = transport.NewTCP()
	b.SetRank(1)
	t.Cleanup(func() { a.Close(); b.Close() })
	if err := b.Dial(ctx, 0, a.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := a.WaitPeers(ctx, []int{1}); err != nil {
		t.Fatal(err)
	}
	a.SetPeerIsolation(true)
	b.SetPeerIsolation(true)
	return a, b
}

// waitPeerDown reports whether tr marks rank down within the wait budget.
func waitPeerDown(t *testing.T, tr *transport.TCP, rank int, budget time.Duration) bool {
	t.Helper()
	deadline := time.Now().Add(budget)
	for {
		downs, latch := tr.PeerDowns()
		for _, r := range downs {
			if r == rank {
				return true
			}
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return false
		}
		select {
		case <-latch:
		case <-time.After(remain):
		}
	}
}

// TestHeartbeatLiveness is the liveness plane's table test: a watcher rank
// runs the real heartbeater against a peer that is (a) hung — connected but
// totally silent, (b) alive but heartbeating far slower than the watcher,
// and (c) alive behind a chaotic link that drops half its heartbeats
// (seeded, deterministic schedule). Only the hung peer may be declared
// dead: any received frame is liveness evidence, so slowness and frame
// loss within the timeout budget never produce a false positive.
func TestHeartbeatLiveness(t *testing.T) {
	const tick = 15 * time.Millisecond
	cases := []struct {
		name      string
		beatEvery time.Duration // peer's heartbeat interval; 0 is a hung peer
		dropProb  float64       // chaos: fraction of the peer's heartbeats lost
		timeout   time.Duration // watcher's silence budget
		wantDown  bool
	}{
		{name: "detects-hung-rank", beatEvery: 0, timeout: 10 * tick, wantDown: true},
		{name: "no-false-positive-slow-but-alive", beatEvery: 4 * tick, timeout: 25 * tick, wantDown: false},
		{name: "no-false-positive-under-frame-drop", beatEvery: tick, dropProb: 0.5, timeout: 25 * tick, wantDown: false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, b := hbPair(t)
			watcher := startHeartbeater(a, tick, tc.timeout, nil)
			defer watcher.Stop()
			if tc.beatEvery > 0 {
				// The peer proves its liveness through a (possibly lossy)
				// link: the drop schedule is drawn from a seeded source, so
				// the surviving-heartbeat pattern is reproducible.
				rng := rand.New(rand.NewSource(42))
				peer := &heartbeater{
					t: b, interval: tc.beatEvery,
					send: func(rank int) error {
						if rng.Float64() < tc.dropProb {
							return nil
						}
						return b.SendHeartbeat(rank)
					},
					verdict: func(int, time.Duration) {},
					stop:    make(chan struct{}),
				}
				peer.wg.Add(1)
				go peer.run()
				defer peer.Stop()
			}
			// Budget: comfortably past the timeout so a verdict that is
			// going to fire has fired, without stretching the no-verdict
			// cases into flakiness.
			down := waitPeerDown(t, a, 1, tc.timeout+20*tick)
			if down != tc.wantDown {
				t.Fatalf("rank 1 down = %v, want %v", down, tc.wantDown)
			}
			// The verdict is per-peer: the watcher's transport itself must
			// survive either outcome.
			if err := a.Err(); err != nil {
				t.Fatalf("watcher transport died: %v", err)
			}
			if tc.wantDown {
				if err := a.DownErr(1); err == nil {
					t.Fatal("downed rank has no recorded cause")
				}
			}
		})
	}
}

// TestHeartbeatSuspendDuringReconfig is the regression test for the
// false-positive window during re-plans: a hung peer must draw no verdict
// while the heartbeater is suspended — no matter how far past the timeout the
// silence stretches — and after Resume the silence clock must restart, so the
// verdict fires only a full fresh timeout later. Without the resume-time
// clamp, the pre-suspension silence would kill the peer on the first beat
// after Resume, defeating the suspension entirely.
func TestHeartbeatSuspendDuringReconfig(t *testing.T) {
	const tick = 15 * time.Millisecond
	timeout := 6 * tick
	a, _ := hbPair(t)
	watcher := startHeartbeater(a, tick, timeout, nil)
	defer watcher.Stop()

	// Suspend before any silence accumulates, then wait far past the
	// timeout: the hung peer must stay live the whole while.
	watcher.Suspend()
	if down := waitPeerDown(t, a, 1, 3*timeout); down {
		t.Fatal("suspended heartbeater declared a peer dead mid-reconfig")
	}

	// Resume restarts the clock: the peer is already 3 timeouts silent, but
	// must NOT be downed before a fresh timeout elapses from the resume.
	watcher.Resume()
	if down := waitPeerDown(t, a, 1, timeout/2); down {
		t.Fatal("pre-suspension silence counted toward the timeout after Resume")
	}
	// ... and with the peer still hung, the verdict must eventually fire.
	if down := waitPeerDown(t, a, 1, timeout+20*tick); !down {
		t.Fatal("hung peer never declared dead after Resume")
	}
}
