package train

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"dapple/internal/nn"
	"dapple/internal/schedule"
	"dapple/internal/tensor"
	"dapple/internal/transport"
)

// TestBucketChunkWorkerMatrixMatchesOracle pins the determinism foundation
// of communication overlap: reducing a gradient vector bucket by bucket,
// with any pipeline chunk count and any kernel worker count, produces a
// result bit-identical to the retained monolithic RingAllReduce oracle on
// the whole vector. The canonical rank-order accumulation makes every
// sub-range sum a pure function of the inputs, so bucket boundaries cannot
// perturb training results.
func TestBucketChunkWorkerMatrixMatchesOracle(t *testing.T) {
	const n = 4
	for _, workers := range []int{1, 2, 8} {
		prev := tensor.SetWorkers(workers)
		for _, size := range []int{33, 1024, 5000} {
			rng := rand.New(rand.NewSource(int64(workers*10000 + size)))
			mk := func() [][]float64 {
				r := rand.New(rand.NewSource(int64(size)))
				bufs := make([][]float64, n)
				for i := range bufs {
					bufs[i] = make([]float64, size)
					for j := range bufs[i] {
						bufs[i][j] = r.NormFloat64()
					}
				}
				return bufs
			}
			_ = rng
			oracle := mk()
			RingAllReduce(oracle) // the monolithic whole-vector oracle
			for _, chunks := range []int{1, 3, 8} {
				for _, bucketElems := range []int{7, 64, 1024, size} {
					bufs := mk()
					for lo := 0; lo < size; lo += bucketElems {
						hi := lo + bucketElems
						if hi > size {
							hi = size
						}
						views := make([][]float64, n)
						for i := range views {
							views[i] = bufs[i][lo:hi]
						}
						transport.NewRingChunks(n, hi-lo, chunks).AllReduce(views)
					}
					for r := 0; r < n; r++ {
						for i := 0; i < size; i++ {
							if bufs[r][i] != oracle[r][i] {
								t.Fatalf("workers=%d size=%d chunks=%d bucket=%d rank %d elem %d: %g, oracle %g",
									workers, size, chunks, bucketElems, r, i, bufs[r][i], oracle[r][i])
							}
						}
					}
				}
			}
		}
		tensor.SetWorkers(prev)
	}
}

// TestBucketedExecutorMatchesMonolithic is the executor-level property test:
// a step with backward-time bucketed gradient sync (any bucket size) leaves
// every stage replica's parameters bit-identical to the same step under the
// retained monolithic all-reduce, across kernel worker counts.
func TestBucketedExecutorMatchesMonolithic(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		prev := tensor.SetWorkers(workers)
		// BucketBytes 1 forces the max bucket count; 1<<30 forces a single
		// bucket; the middle values cut mid-network.
		for _, bb := range []int{1, 2 << 10, 16 << 10, 1 << 30} {
			t.Run(fmt.Sprintf("workers=%d/bucketBytes=%d", workers, bb), func(t *testing.T) {
				master := nn.MLP([]int{6, 12, 10, 3}, 2024)
				p := mkPlan(t, master, 6, 6, 6, []int{3, 5}, []int{2, 2})
				micros := makeMicros(6, 6, 6, 3, 11)
				mono := master.Clone()
				exB, err := NewExecutor(p, master, func() nn.Optimizer { return nn.SGD{LR: 0.05} },
					ExecOptions{Policy: schedule.DapplePA, BucketBytes: bb})
				if err != nil {
					t.Fatal(err)
				}
				exM, err := NewExecutor(p, mono, func() nn.Optimizer { return nn.SGD{LR: 0.05} },
					ExecOptions{Policy: schedule.DapplePA, MonolithicAllReduce: true})
				if err != nil {
					t.Fatal(err)
				}
				for step := 0; step < 3; step++ {
					rb, err := exB.Step(micros)
					if err != nil {
						t.Fatal(err)
					}
					rm, err := exM.Step(micros)
					if err != nil {
						t.Fatal(err)
					}
					if rb.Loss != rm.Loss {
						t.Fatalf("step %d: bucketed loss %g != monolithic %g", step, rb.Loss, rm.Loss)
					}
					for si, s := range p.Stages {
						for r := 0; r < s.Replicas(); r++ {
							got, want := exB.StageParams(si, r), exM.StageParams(si, r)
							for i := range got {
								if d := tensor.MaxAbsDiff(got[i].W, want[i].W); d != 0 {
									t.Fatalf("step %d stage %d replica %d param %d: bucketed differs from monolithic by %g",
										step, si, r, i, d)
								}
							}
						}
					}
				}
			})
		}
		tensor.SetWorkers(prev)
	}
}

// chaosDistPair builds the distFixture plan as two raw distributed executors
// over a fresh two-rank loopback mesh, with rank 0's transport wrapped in
// the scripted chaos layer. Stage 1's replica group spans the ranks, so its
// bucket collectives run through real (faulted) sockets.
func chaosDistPair(t *testing.T, cfg transport.ChaosConfig) (ex0, ex1 *Executor, close0 func()) {
	t.Helper()
	p, master, deviceRanks, _, _, _ := distFixture(t)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	w0, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	w1, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	w0.SetRank(0)
	w1.SetRank(1)
	t.Cleanup(func() { w0.Close(); w1.Close() })
	if err := w1.Dial(ctx, 0, w0.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := w0.WaitPeers(ctx, []int{1}); err != nil {
		t.Fatal(err)
	}
	ch := transport.NewChaos(w0, cfg)
	mk := func(rank int, tr transport.Transport) *Executor {
		ex, err := NewExecutor(p, master.Clone(), func() nn.Optimizer { return nn.SGD{LR: 0.05} },
			ExecOptions{Policy: schedule.DapplePA, NoTrace: true,
				Dist: &DistConfig{Transport: tr, Rank: rank, DeviceRanks: deviceRanks}})
		if err != nil {
			t.Fatal(err)
		}
		return ex
	}
	return mk(0, ch), mk(1, w1), func() { ch.Close() }
}

// snapshotParams deep-copies the parameters of every replica the executor
// hosts, keyed by stage.
func snapshotParams(p []nn.Param) []*tensor.Matrix {
	out := make([]*tensor.Matrix, len(p))
	for i, pr := range p {
		out[i] = pr.W.Clone()
	}
	return out
}

// TestBucketedChaosCommitOrCleanAbort drives the bucketed backward-time
// all-reduce through a chaos-faulted socket mesh and pins the all-or-nothing
// contract: under injected frame delays a step commits on both ranks with
// bit-identical replica-group parameters; under a scripted mid-step
// transport tear the failing rank aborts cleanly, leaving every parameter it
// hosts exactly at its pre-step value — never a partially applied bucket.
func TestBucketedChaosCommitOrCleanAbort(t *testing.T) {
	micros := makeMicros(4, 8, 16, 8, 5)

	for trial, cfg := range []transport.ChaosConfig{
		// Pure delay: slow links must not break commit.
		{Seed: 1, DelayProb: 0.5, MaxDelay: 300 * time.Microsecond},
		{Seed: 2, DelayProb: 0.9, MaxDelay: 100 * time.Microsecond},
		// Scripted tears at increasing operation counts: a process dying
		// before, between and after bucket collectives.
		{Seed: 3, TearAfter: 1},
		{Seed: 4, TearAfter: 3},
		{Seed: 5, TearAfter: 6, DelayProb: 0.3, MaxDelay: 100 * time.Microsecond},
	} {
		ex0, ex1, closeChaos := chaosDistPair(t, cfg)
		pre0 := [][]*tensor.Matrix{snapshotParams(ex0.StageParams(0, 0)), snapshotParams(ex0.StageParams(1, 0))}
		pre1 := [][]*tensor.Matrix{snapshotParams(ex1.StageParams(1, 1)), snapshotParams(ex1.StageParams(2, 0))}

		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		var wg sync.WaitGroup
		var err0, err1 error
		var res0, res1 *ExecResult
		wg.Add(2)
		go func() { defer wg.Done(); res0, err0 = ex0.StepContext(ctx, micros) }()
		go func() { defer wg.Done(); res1, err1 = ex1.StepContext(ctx, micros) }()
		wg.Wait()
		cancel()
		closeChaos()

		if errors.Is(err0, context.DeadlineExceeded) || errors.Is(err1, context.DeadlineExceeded) {
			t.Fatalf("trial %d: step wedged instead of aborting (err0=%v err1=%v)", trial, err0, err1)
		}
		if cfg.TearAfter == 0 {
			// Delay-only chaos: the step must commit on both ranks.
			if err0 != nil || err1 != nil {
				t.Fatalf("trial %d (delay only): err0=%v err1=%v", trial, err0, err1)
			}
			// Each rank reports the loss of the stages it hosts; only rank 1
			// holds the loss-computing last stage here.
			if total := res0.Loss + res1.Loss; total <= 0 {
				t.Fatalf("trial %d: committed step reported non-positive loss %g", trial, total)
			}
			// The span-spanning replica group (stage 1) must end bit-identical
			// across ranks.
			g0, g1 := ex0.StageParams(1, 0), ex1.StageParams(1, 1)
			for i := range g0 {
				if d := tensor.MaxAbsDiff(g0[i].W, g1[i].W); d != 0 {
					t.Fatalf("trial %d: stage 1 replicas diverged across ranks by %g", trial, d)
				}
				if d := tensor.MaxAbsDiff(g0[i].W, pre0[1][i]); d == 0 {
					t.Fatalf("trial %d: stage 1 committed step left params unchanged", trial)
				}
			}
			continue
		}
		// Torn mid-step: each rank either committed fully or aborted cleanly.
		check := func(rank int, err error, hosted [][]nn.Param, pre [][]*tensor.Matrix) {
			if err == nil {
				return // commit: covered by the session-level equivalence suites
			}
			for si := range hosted {
				for i, pr := range hosted[si] {
					if d := tensor.MaxAbsDiff(pr.W, pre[si][i]); d != 0 {
						t.Fatalf("trial %d rank %d (err=%v): aborted step moved hosted params[%d][%d] by %g — partial bucket commit",
							trial, rank, err, si, i, d)
					}
				}
			}
		}
		check(0, err0, [][]nn.Param{ex0.StageParams(0, 0), ex0.StageParams(1, 0)}, pre0)
		check(1, err1, [][]nn.Param{ex1.StageParams(1, 1), ex1.StageParams(2, 0)}, pre1)
		if err0 == nil && err1 == nil {
			t.Fatalf("trial %d: scripted tear at op %d injured neither rank", trial, cfg.TearAfter)
		}
	}
}
