package train

import (
	"math/rand"

	"dapple/internal/tensor"
)

// NewQuadrantProblem returns the fixed latent projection of the synthetic
// 4-class problem the commands and examples train on: inputs of inDim
// features project onto two latent axes, and the class is the sign quadrant.
// Draw fresh micro-batches with QuadrantBatches under the same projection.
func NewQuadrantProblem(rng *rand.Rand, inDim int) *tensor.Matrix {
	proj := tensor.New(inDim, 2)
	proj.Randomize(rng, 1)
	return proj
}

// QuadrantBatches draws m fresh micro-batches of rows examples each from the
// quadrant problem defined by proj (as returned by NewQuadrantProblem):
// uniform inputs in [-1, 1], labeled by the sign pattern of the two latent
// projections.
func QuadrantBatches(rng *rand.Rand, proj *tensor.Matrix, m, rows int) []Batch {
	micros := make([]Batch, m)
	for i := range micros {
		x := tensor.New(rows, proj.Rows)
		x.Randomize(rng, 1)
		z := tensor.MatMul(x, proj)
		y := make([]int, rows)
		for r := 0; r < rows; r++ {
			if z.At(r, 0) > 0 {
				y[r] |= 1
			}
			if z.At(r, 1) > 0 {
				y[r] |= 2
			}
		}
		micros[i] = Batch{X: x, Y: y}
	}
	return micros
}
