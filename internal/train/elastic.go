package train

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"time"

	"dapple/internal/tensor"
	"dapple/internal/transport"
)

// Elastic membership: the inverse of the WithReplan shrink. A fresh worker
// process dials the running coordinator (JoinSession), which admits it
// through a membership handshake — protocol version and manifest-hash
// checks, a fresh rank grant (dead ranks are never reused), the live peer
// list to dial — and parks it until the next step boundary. There the
// coordinator gathers a snapshot from the live primary ranks, re-plans the
// session at unchanged global batch size onto the grown rank set, fences the
// old transport generation behind a bumped epoch floor, and re-runs the
// handshake: survivors rebuild from the state broadcast, the joiner from a
// CRC-tailed checkpoint stream (the checkpoint wire format chunked into
// tensCkpt frames). The driver sees one *Recovered with Joined set and
// rewinds exactly one step.

// sessionVersion is the membership-protocol revision; a joiner built against
// a different revision is rejected at the door.
const sessionVersion = 2

// joinRequestMsg is the payload of a FrameJoinReq: who is knocking.
type joinRequestMsg struct {
	// V is the sender's sessionVersion.
	V int `json:"v"`
	// Addr is the joiner's listen address, so current and future members can
	// be told how to dial it.
	Addr string `json:"addr"`
}

// joinGrantMsg is the payload of an accepting FrameJoinGrant: everything a
// joiner needs to mesh with the running session before admission.
type joinGrantMsg struct {
	// Rank is the granted mesh rank — fresh, never a dead rank reused.
	Rank int `json:"rank"`
	// Coord is the coordinator's mesh rank.
	Coord int `json:"coord"`
	// Peers maps each live worker rank to its listen address.
	Peers map[int]string `json:"peers"`
	// Hash fingerprints the session's invariant manifest; the joiner verifies
	// the reconfig it is admitted under against it.
	Hash string `json:"hash"`
	// Heartbeat is the session's liveness interval; a positive value has the
	// joiner prove its own liveness (send-only) while admission is pending.
	Heartbeat        time.Duration `json:"heartbeat,omitempty"`
	HeartbeatTimeout time.Duration `json:"heartbeatTimeout,omitempty"`
}

// sessionHash fingerprints the parts of a manifest that are invariant across
// recoveries and expansions — the training problem itself, not its current
// placement. A joiner admitted under a manifest hashing differently than its
// grant is joining the wrong session.
func sessionHash(m *Manifest) string {
	raw, err := json.Marshal(struct {
		Net        []LayerSpec `json:"net"`
		Opt        OptSpec     `json:"opt"`
		GBS        int         `json:"gbs"`
		MicroBatch int         `json:"microBatch"`
		Workers    int         `json:"workers"`
	}{m.Net, m.Opt, m.GBS, m.MicroBatch, m.Workers})
	if err != nil {
		return "unhashable"
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// serviceJoin answers one membership knock: version-check the request, grant
// a fresh rank and the live peer map, and track the joiner until its mesh is
// complete. Runs only on the coordinator's protocol loops.
func (c *Coordinator) serviceJoin(j *transport.JoinRequest) {
	if c.joining == nil {
		j.Reject("session is not elastic")
		return
	}
	var req joinRequestMsg
	if err := json.Unmarshal(j.Payload, &req); err != nil {
		j.Reject(fmt.Sprintf("bad join request: %v", err))
		return
	}
	if req.V != sessionVersion {
		j.Reject(fmt.Sprintf("session protocol version %d, want %d", req.V, sessionVersion))
		return
	}
	if req.Addr == "" {
		j.Reject("joiner must listen: peers need an address to dial")
		return
	}
	rank := c.nextRank
	grant := joinGrantMsg{
		Rank: rank, Coord: c.coord, Hash: c.manHash,
		Peers:     make(map[int]string, len(c.alive)),
		Heartbeat: c.cfg.hbInterval, HeartbeatTimeout: c.cfg.hbTimeout,
	}
	for _, r := range c.alive {
		grant.Peers[r] = c.addrs[r]
	}
	reply, err := json.Marshal(grant)
	if err != nil {
		j.Reject(err.Error())
		return
	}
	if err := j.Grant(rank, reply); err != nil {
		return // the knocker vanished; its rank was never used
	}
	c.nextRank++
	c.joining[rank] = true
	c.fresh[rank] = true
	c.addrs[rank] = req.Addr
}

// noteJoinReady moves a granted joiner to admission-pending: its ctrlJoin
// proves it is meshed with every live rank and ready for a reconfig.
func (c *Coordinator) noteJoinReady(peer int) {
	if c.joining == nil || !c.joining[peer] {
		return // unknown or duplicate announcement; drop
	}
	delete(c.joining, peer)
	c.joinReady = append(c.joinReady, peer)
}

// drainJoins services every queued membership knock and join announcement
// without blocking. Anything else on the control plane at a step boundary is
// a stale leftover of a previous generation and is dropped (aborts still
// record their death evidence).
func (c *Coordinator) drainJoins() {
	for {
		select {
		case j := <-c.t.Joins():
			c.serviceJoin(j)
		case cm := <-c.t.Ctrl():
			var env envelope
			err := json.Unmarshal(cm.Data, &env)
			c.t.RecycleCtrl(cm.Data)
			if err != nil {
				continue
			}
			switch env.Kind {
			case ctrlJoin:
				c.noteJoinReady(cm.Peer)
			case ctrlAbort:
				c.noteAbort(cm.Peer, env) //nolint:errcheck // evidence lands via ClosePeer; the step barrier acts on it
			}
		default:
			return
		}
	}
}

// takeReady pops the admission-pending joiners that are still alive,
// forgetting any that died while parked.
func (c *Coordinator) takeReady() []int {
	if len(c.joinReady) == 0 {
		return nil
	}
	js := make([]int, 0, len(c.joinReady))
	for _, r := range c.joinReady {
		if c.t.DownErr(r) == nil {
			js = append(js, r)
		} else {
			delete(c.fresh, r)
			delete(c.addrs, r)
		}
	}
	c.joinReady = c.joinReady[:0]
	sort.Ints(js)
	return js
}

// dropDead forgets the elastic bookkeeping of dead ranks, so grants never
// advertise a dead peer's address and admission never waits on a corpse.
func (c *Coordinator) dropDead(dead map[int]bool) {
	if c.joining == nil {
		return
	}
	for r := range dead {
		delete(c.fresh, r)
		delete(c.joining, r)
		delete(c.addrs, r)
	}
	keep := c.joinReady[:0]
	for _, r := range c.joinReady {
		if !dead[r] {
			keep = append(keep, r)
		}
	}
	c.joinReady = keep
}

// Alive returns the worker ranks of the current session generation,
// ascending.
func (c *Coordinator) Alive() []int {
	return append([]int(nil), c.alive...)
}

// AwaitJoin blocks until a joiner is admission-pending — the next Step will
// expand onto it — or until a session member dies (the next Step must run
// the shrink recovery first), returning nil in both cases so the driver's
// reaction is the same: keep stepping. It fails only when the session or ctx
// ends. Only valid on an elastic session.
func (c *Coordinator) AwaitJoin(ctx context.Context) error {
	if !c.cfg.elastic {
		return fmt.Errorf("train: session is not elastic")
	}
	if c.failed != nil {
		return c.failed
	}
	for {
		c.drainJoins()
		for _, r := range c.joinReady {
			if c.t.DownErr(r) == nil {
				return nil
			}
		}
		downs, dwait := c.t.PeerDowns()
		down := make(map[int]bool, len(downs))
		for _, r := range downs {
			down[r] = true
		}
		for _, r := range c.alive {
			if down[r] {
				return nil
			}
		}
		select {
		case j := <-c.t.Joins():
			c.serviceJoin(j)
		case cm := <-c.t.Ctrl():
			var env envelope
			err := json.Unmarshal(cm.Data, &env)
			c.t.RecycleCtrl(cm.Data)
			if err != nil {
				continue
			}
			switch env.Kind {
			case ctrlJoin:
				c.noteJoinReady(cm.Peer)
			case ctrlAbort:
				c.noteAbort(cm.Peer, env) //nolint:errcheck // evidence lands via ClosePeer; the death check above acts on it
			}
		case <-dwait:
		case <-c.t.Done():
			return c.t.Err()
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// admit expands the session onto the admission-pending joiners and shapes
// the *Recovered the interrupted Step reports. An expansion failure falls
// back to the shrink recovery: joiners that made it into the membership
// stay, joiners that never did are re-parked for the next boundary, and the
// driver sees the combined delta.
func (c *Coordinator) admit(ctx context.Context, js []int) error {
	err := c.expand(ctx, js)
	if err == nil {
		return &Recovered{Resume: c.step, Joined: js}
	}
	if ctx.Err() != nil {
		return c.fail(err)
	}
	lost, rerr := c.recover(ctx, err)
	if rerr != nil {
		return c.fail(rerr)
	}
	member := make(map[int]bool, len(c.alive))
	for _, r := range c.alive {
		member[r] = true
	}
	var joined []int
	for _, j := range js {
		switch {
		case member[j]:
			joined = append(joined, j)
		case c.t.DownErr(j) == nil:
			c.joinReady = append(c.joinReady, j)
		}
	}
	return &Recovered{Resume: c.step, Lost: lost, Joined: joined, Cause: err}
}

// expand grows the session at a step boundary: snapshot first — gathered
// from the live primary ranks, so the streamed state is this boundary's, not
// a stale checkpoint — then merge the joiners into the membership, re-plan
// at unchanged global batch size, fence the old transport generation and
// re-run the handshake (rehandshake streams fresh ranks the checkpoint).
// Death verdicts pause throughout: ranks rebuilding are legitimately silent.
func (c *Coordinator) expand(ctx context.Context, js []int) error {
	c.hb.Suspend()
	defer c.hb.Resume()
	if err := c.snapshot(ctx); err != nil {
		return fmt.Errorf("train: pre-expansion snapshot: %w", err)
	}
	merged := append(append([]int(nil), c.alive...), js...)
	sort.Ints(merged)
	plan, deviceRanks, err := c.cfg.replan(merged)
	if err != nil {
		return fmt.Errorf("train: re-plan onto %v: %w", merged, err)
	}
	if err := validatePlacement(plan, deviceRanks, merged); err != nil {
		return err
	}
	c.gen++
	c.t.Retire(c.floor())
	c.plan, c.deviceRanks, c.alive = plan, deviceRanks, merged
	c.step = c.ckpt.Step
	return c.rehandshake(ctx)
}

// ckptChunkWords is one tensCkpt frame's payload in float64 words (128 KiB),
// packing the checkpoint's byte image 8 bytes per word.
const ckptChunkWords = 16384

// sendCkptStream ships the encoded checkpoint to a fresh rank as chunked
// tensCkpt frames, closed by weights-done. The CRC tail inside the stream
// lets the receiver verify the whole image end-to-end.
func (c *Coordinator) sendCkptStream(w int, stream []byte) error {
	words := (len(stream) + 7) / 8
	padded := stream
	if len(stream) != words*8 {
		padded = make([]byte, words*8)
		copy(padded, stream)
	}
	for lo := 0; lo < words; lo += ckptChunkWords {
		hi := lo + ckptChunkWords
		if hi > words {
			hi = words
		}
		m := tensor.New(hi-lo, 1)
		for j := range m.Data {
			m.Data[j] = math.Float64frombits(binary.LittleEndian.Uint64(padded[(lo+j)*8:]))
		}
		if err := c.t.SendTensor(w, tensCkpt, lo/ckptChunkWords, m); err != nil {
			return err
		}
	}
	return sendEnvelope(c.t, w, envelope{Kind: ctrlWeightsDone, OptStep: c.ckpt.OptStep})
}

// JoinSession runs the joiner's half of the membership handshake against a
// running elastic session: knock on the coordinator at coordAddr, receive
// the rank grant, dial every live peer, and announce readiness. The returned
// Worker is parked until the coordinator's next step boundary admits it —
// run Serve to wait for that admission and then train as a normal member.
// The transport must be listening (ListenTCP) and not yet ranked or dialed.
func JoinSession(ctx context.Context, t *transport.TCP, coordAddr string) (*Worker, error) {
	if t.Addr() == "" {
		return nil, fmt.Errorf("train: a joining worker's transport must listen (use ListenTCP)")
	}
	raw, err := json.Marshal(joinRequestMsg{V: sessionVersion, Addr: t.Addr()})
	if err != nil {
		return nil, err
	}
	t.SetPeerIsolation(true) // elastic sessions are survivable by construction
	rank, granter, reply, err := t.DialJoin(ctx, coordAddr, raw)
	if err != nil {
		return nil, err
	}
	var grant joinGrantMsg
	if err := json.Unmarshal(reply, &grant); err != nil {
		return nil, fmt.Errorf("train: bad join grant: %w", err)
	}
	if grant.Rank != rank || grant.Coord != granter {
		return nil, fmt.Errorf("train: join grant names rank %d under coordinator %d, frame carried %d under %d",
			grant.Rank, grant.Coord, rank, granter)
	}
	peers := make([]int, 0, len(grant.Peers))
	for r := range grant.Peers {
		peers = append(peers, r)
	}
	sort.Ints(peers)
	for _, r := range peers {
		if err := t.DialRetry(ctx, r, grant.Peers[r]); err != nil {
			return nil, fmt.Errorf("train: joining rank %d dialing rank %d: %w", rank, r, err)
		}
	}
	w := NewWorker(t, rank)
	w.grant = &grant
	if grant.Heartbeat > 0 {
		// Send-only: prove this rank's liveness while admission is pending;
		// the manifest's liveness plane replaces it once Serve is admitted.
		w.hb = startHeartbeater(t, grant.Heartbeat, 0, nil)
	}
	if err := sendEnvelope(t, grant.Coord, envelope{Kind: ctrlJoin}); err != nil {
		return nil, err
	}
	return w, nil
}

// handshakeJoin is the admitted joiner's session entry: wait for the
// coordinator's reconfig, verify the manifest against the granted hash, and
// build the session from it (the reconfig announces a checkpoint stream,
// since this rank is fresh).
func (w *Worker) handshakeJoin(ctx context.Context) error {
	coord := w.grant.Coord
	peer, env, err := recvEnvelope(ctx, w.t, coord)
	if err != nil {
		return err
	}
	if peer != coord {
		return fmt.Errorf("train: joiner got control frame from non-coordinator rank %d", peer)
	}
	switch env.Kind {
	case ctrlReconfig:
		if env.Manifest == nil {
			return fmt.Errorf("train: reconfig without manifest")
		}
		if h := sessionHash(env.Manifest); h != w.grant.Hash {
			err := fmt.Errorf("train: session manifest hash %.12s does not match granted %.12s", h, w.grant.Hash)
			sendEnvelope(w.t, coord, envelope{Kind: ctrlAbort, Err: err.Error()}) //nolint:errcheck // best-effort before failing
			return err
		}
		return w.reconfig(ctx, env)
	case ctrlAbort:
		return fmt.Errorf("train: session aborted by coordinator before admission: %s", env.Err)
	default:
		return fmt.Errorf("train: joiner expected reconfig, got %q", env.Kind)
	}
}

// buildSessionFromCkpt rebuilds this fresh rank's session from the chunked
// checkpoint stream a reconfig announced: reassemble the byte image, verify
// it end-to-end through the checkpoint format's CRC tail, and construct the
// executor from the decoded weights and optimizer state. A torn or corrupt
// stream fails the worker without an abort — the dropping connection is the
// coordinator's signal to shrink back.
func (w *Worker) buildSessionFromCkpt(ctx context.Context, man *Manifest, nbytes int64) error {
	coord := man.Workers
	if err := w.waitMesh(ctx, man); err != nil {
		return err
	}
	words := int((nbytes + 7) / 8)
	raw := make([]byte, words*8)
	for got := 0; got < words; {
		tm, err := recvTensor(ctx, w.t)
		if err != nil {
			return err
		}
		if tm.Class != tensCkpt || tm.Index*ckptChunkWords != got {
			return fmt.Errorf("train: checkpoint stream out of order (class %d chunk %d at word %d)", tm.Class, tm.Index, got)
		}
		for j, v := range tm.Data.Data {
			binary.LittleEndian.PutUint64(raw[(got+j)*8:], math.Float64bits(v))
		}
		got += len(tm.Data.Data)
		w.t.RecycleTensor(tm.Data)
	}
	_, doneEnv, err := recvEnvelope(ctx, w.t, coord)
	if err != nil {
		return err
	}
	if doneEnv.Kind != ctrlWeightsDone {
		return fmt.Errorf("train: worker expected weights-done after checkpoint stream, got %q", doneEnv.Kind)
	}
	ck, err := DecodeCheckpoint(raw[:nbytes])
	if err != nil {
		return fmt.Errorf("train: rank %d checkpoint stream: %w", w.rank, err)
	}
	net, err := BuildNet(man.Net)
	if err != nil {
		return err
	}
	params := net.Params()
	if len(ck.Weights) != len(params) {
		return fmt.Errorf("train: checkpoint carries %d parameters, skeleton wants %d", len(ck.Weights), len(params))
	}
	for i, p := range params {
		if ck.Weights[i].Rows != p.W.Rows || ck.Weights[i].Cols != p.W.Cols {
			return fmt.Errorf("train: checkpoint weight %d is %dx%d, skeleton wants %dx%d",
				i, ck.Weights[i].Rows, ck.Weights[i].Cols, p.W.Rows, p.W.Cols)
		}
		copy(p.W.Data, ck.Weights[i].Data)
	}
	w.optStep = ck.OptStep
	exec, err := w.buildExecutor(man, net)
	if err == nil && len(ck.Slots) > 0 {
		err = restoreExecState(exec, man, net, ck.OptStep, ck.Slots)
	}
	if err != nil {
		return err
	}
	w.exec = exec
	w.net = net
	return sendEnvelope(w.t, coord, envelope{Kind: ctrlReady, Step: int(man.Epoch)})
}
