package train

import (
	"testing"

	"dapple/internal/core"
	"dapple/internal/hardware"
	"dapple/internal/nn"
	"dapple/internal/schedule"
	"dapple/internal/tensor"
)

// stepAllocBudget is the steady-state allocation ceiling per executed
// iteration of the benchmark fixture (trace recording on). The PR-4 runtime
// spent 2263 allocs per iteration here; the pooled-workspace runtime measures
// ~70, so the gate at a 10x reduction from the old baseline has generous
// headroom while still failing loudly if a hot path regresses into the
// allocator.
const stepAllocBudget = 220

// TestStepSteadyStateAllocBudget is the allocation-regression gate of the
// real runtime: after warm-up, a full plan-driven training iteration — 8
// workers, 4 replicated stages, link traffic, ring all-reduce, span
// recording — must stay under the budget. Skipped under the race detector,
// whose instrumentation changes allocation behavior.
func TestStepSteadyStateAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	for _, tc := range []struct {
		name string
		pol  schedule.Policy
	}{
		{"GPipe", schedule.GPipe},
		{"DAPPLE", schedule.DapplePA},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ex, micros := benchSetup(t, tc.pol)
			for i := 0; i < 3; i++ { // reach the steady state
				if _, err := ex.Step(micros); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(5, func() {
				if _, err := ex.Step(micros); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > stepAllocBudget {
				t.Fatalf("steady-state step allocates %.0f, budget %d", allocs, stepAllocBudget)
			}
			t.Logf("steady-state step: %.0f allocs (budget %d)", allocs, stepAllocBudget)
		})
	}
}

// TestStepWideLayerAllocBudget is the same gate with layers wide enough that
// every Dense matmul crosses the blocked-kernel threshold and fans out over
// the shared worker pool. Before the pool, each large matmul spawned a
// goroutine fan-out per call, silently adding allocs/op; now parallel
// dispatch recycles everything, so wide-layer steps obey the same budget.
func TestStepWideLayerAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	prev := tensor.SetWorkers(4)
	defer tensor.SetWorkers(prev)

	master := nn.MLP([]int{64, 512, 512, 8}, 42) // 5 layers
	const rows, m, inDim = 64, 4, 64
	mod, err := ProfileNetwork("wide-net", master, inDim, rows, rows*m)
	if err != nil {
		t.Fatal(err)
	}
	p := &core.Plan{
		Model:   mod,
		Cluster: hardware.ConfigB(4),
		Stages: []core.Stage{
			{Lo: 0, Hi: 2, Devices: []hardware.DeviceID{0, 1}},
			{Lo: 2, Hi: 5, Devices: []hardware.DeviceID{2, 3}},
		},
		GBS: rows * m, MicroBatch: rows,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	ex, err := NewExecutor(p, master, func() nn.Optimizer { return nn.SGD{LR: 0.01} },
		ExecOptions{Policy: schedule.DapplePA})
	if err != nil {
		t.Fatal(err)
	}
	micros := makeMicros(m, rows, inDim, 8, 13)
	for i := 0; i < 3; i++ {
		if _, err := ex.Step(micros); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := ex.Step(micros); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > stepAllocBudget {
		t.Fatalf("wide-layer steady-state step allocates %.0f, budget %d", allocs, stepAllocBudget)
	}
	t.Logf("wide-layer steady-state step: %.0f allocs (budget %d)", allocs, stepAllocBudget)
}

// TestStepGeometryChangeRebuilds checks the runtime-cache path: steps with
// a different micro-batch geometry rebuild cleanly and still match the
// sequential reference, and returning to the first geometry re-converges to
// a warm steady state.
func TestStepGeometryChangeRebuilds(t *testing.T) {
	ex, micros8 := benchSetup(t, schedule.DapplePA)
	micros4 := makeMicros(4, 16, 32, 8, 13)
	if _, err := ex.Step(micros8); err != nil {
		t.Fatal(err)
	}
	res4, err := ex.Step(micros4)
	if err != nil {
		t.Fatal(err)
	}
	if res4.M != 4 {
		t.Fatalf("M=%d after geometry change, want 4", res4.M)
	}
	res8, err := ex.Step(micros8)
	if err != nil {
		t.Fatal(err)
	}
	if res8.M != 8 || len(res8.Warmup) != ex.NumStages() {
		t.Fatalf("bad result after switching back: M=%d", res8.M)
	}
}
