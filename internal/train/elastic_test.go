package train

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"dapple/internal/core"
	"dapple/internal/hardware"
	"dapple/internal/nn"
	"dapple/internal/schedule"
	"dapple/internal/transport"
)

// elasticMesh wires the 2-workers + listening-coordinator loopback mesh an
// elastic session needs: like sessionMesh, but the coordinator listens too
// (joiners knock on it) and the workers' listen addresses are returned so
// the session can hand them to joiners.
func elasticMesh(t *testing.T) (w0, w1, coord *transport.TCP, addrs map[int]string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	var err error
	if w0, err = transport.ListenTCP("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if w1, err = transport.ListenTCP("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if coord, err = transport.ListenTCP("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	w0.SetRank(0)
	w1.SetRank(1)
	coord.SetRank(2)
	t.Cleanup(func() { w0.Close(); w1.Close(); coord.Close() })
	if err := w1.Dial(ctx, 0, w0.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := coord.Dial(ctx, 0, w0.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := coord.Dial(ctx, 1, w1.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := w0.WaitPeers(ctx, []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := w1.WaitPeers(ctx, []int{0, 2}); err != nil {
		t.Fatal(err)
	}
	return w0, w1, coord, map[int]string{0: w0.Addr(), 1: w1.Addr()}
}

// elasticReplan builds the ReplanFunc both elastic tests share: any two
// ranks get the fixture's original two-server placement mapped onto them
// (so a session that lost rank 1 and gained rank 3 re-expands to the exact
// original pipeline shape); the lone rank 0 gets the collapsed two-stage
// pipeline; three ranks get the original plan with the last stage placed on
// the extra rank.
func elasticReplan(t *testing.T, p *core.Plan) ReplanFunc {
	return func(alive []int) (*core.Plan, []int, error) {
		switch len(alive) {
		case 2:
			return p, []int{alive[0], alive[0], alive[1], alive[1]}, nil
		case 3:
			return p, []int{alive[0], alive[0], alive[1], alive[2]}, nil
		case 1:
			if alive[0] != 0 {
				return nil, nil, fmt.Errorf("unexpected lone survivor %v", alive)
			}
			cl := hardware.ConfigA(1)
			cl.GPUsPerServer = 2
			p2 := &core.Plan{
				Model: p.Model, Cluster: cl,
				Stages: []core.Stage{
					{Lo: 0, Hi: 3, Devices: []hardware.DeviceID{0}},
					{Lo: 3, Hi: 7, Devices: []hardware.DeviceID{1}},
				},
				GBS: p.GBS, MicroBatch: p.MicroBatch,
			}
			if err := p2.Validate(); err != nil {
				return nil, nil, err
			}
			return p2, []int{0, 0}, nil
		default:
			return nil, nil, fmt.Errorf("unexpected membership %v", alive)
		}
	}
}

// TestSessionWorkerRejoin is the tentpole's end-to-end test: a two-worker
// elastic session loses worker 1 to a scripted death at step 2 and shrinks
// onto rank 0; a replacement process then joins through the membership
// handshake, is granted the fresh rank 3, receives the running session's
// state as a checkpoint stream, and the session re-expands to two ranks —
// exactly one shrink and one expand recovery, every completed step's loss
// matching an uninterrupted sequential run to 1e-6, and the final weights
// matching too.
func TestSessionWorkerRejoin(t *testing.T) {
	p, master, deviceRanks, b0, b1, b2 := distFixture(t)
	rng := rand.New(rand.NewSource(29))
	proj := NewQuadrantProblem(rng, 16)
	iters := [][]Batch{b0, b1, b2,
		QuadrantBatches(rng, proj, 4, 8),
		QuadrantBatches(rng, proj, 4, 8),
		QuadrantBatches(rng, proj, 4, 8)}

	// Uninterrupted reference: plain sequential training on a clone.
	refNet := master.Clone()
	refOpt := nn.NewMomentum(0.05, 0.9)
	want := make([]float64, len(iters))
	for k, micros := range iters {
		loss, err := SequentialStep(refNet, micros, refOpt)
		if err != nil {
			t.Fatal(err)
		}
		want[k] = loss
	}

	w0t, w1t, ct, addrs := elasticMesh(t)
	w0, w1 := NewWorker(w0t, 0), NewWorker(w1t, 1)
	w1.SetDieAtStep(2)
	served0, served1 := make(chan error, 1), make(chan error, 1)
	go func() { served0 <- w0.Serve(context.Background()) }()
	go func() { served1 <- w1.Serve(context.Background()) }()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	coord, err := NewCoordinator(ctx, ct, p, master, OptSpec{Kind: "momentum", LR: 0.05, Beta: 0.9},
		ExecOptions{Policy: schedule.DapplePA}, deviceRanks, 2,
		WithReplan(elasticReplan(t, p)),
		WithElastic(addrs),
		WithCheckpoint(t.TempDir(), 1),
		WithHeartbeat(20*time.Millisecond, 2*time.Second),
		WithStepTimeout(30*time.Second),
		WithShutdownTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}

	got := make([]float64, len(iters))
	shrinks, expands := 0, 0
	k := 0
	for k < 3 {
		loss, err := coord.Step(ctx, iters[k])
		if err != nil {
			var rec *Recovered
			if !errors.As(err, &rec) {
				t.Fatalf("step %d: %v", k, err)
			}
			shrinks++
			if shrinks > 1 {
				t.Fatalf("session shrank %d times for one death", shrinks)
			}
			if !reflect.DeepEqual(rec.Lost, []int{1}) || len(rec.Joined) != 0 {
				t.Fatalf("shrink recovery lost %v joined %v, want lost [1]", rec.Lost, rec.Joined)
			}
			if rec.Resume != 2 {
				t.Fatalf("shrink resumes at step %d, want 2 (checkpoint every step)", rec.Resume)
			}
			k = rec.Resume
			continue
		}
		got[k] = loss
		k++
	}
	if !reflect.DeepEqual(coord.Alive(), []int{0}) {
		t.Fatalf("post-shrink membership %v, want [0]", coord.Alive())
	}

	// The replacement: a fresh listening transport dials the coordinator,
	// runs the membership handshake and parks for admission. JoinSession
	// blocks until the coordinator services the knock, so it runs beside
	// AwaitJoin.
	jt, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { jt.Close() })
	type joinResult struct {
		w   *Worker
		err error
	}
	joined := make(chan joinResult, 1)
	go func() {
		w, err := JoinSession(ctx, jt, ct.Addr())
		joined <- joinResult{w, err}
	}()
	if err := coord.AwaitJoin(ctx); err != nil {
		t.Fatalf("await join: %v", err)
	}
	jr := <-joined
	if jr.err != nil {
		t.Fatalf("join session: %v", jr.err)
	}
	if jr.w.rank != 3 {
		t.Fatalf("joiner granted rank %d, want the fresh rank 3 (dead rank 1 must not be reused)", jr.w.rank)
	}
	servedJ := make(chan error, 1)
	go func() { servedJ <- jr.w.Serve(context.Background()) }()

	for k < len(iters) {
		loss, err := coord.Step(ctx, iters[k])
		if err != nil {
			var rec *Recovered
			if !errors.As(err, &rec) {
				t.Fatalf("step %d: %v", k, err)
			}
			expands++
			if expands > 1 {
				t.Fatalf("session expanded %d times for one join", expands)
			}
			if rec.Cause != nil || len(rec.Lost) != 0 || !reflect.DeepEqual(rec.Joined, []int{3}) {
				t.Fatalf("expand recovery lost %v joined %v cause %v, want a pure join of [3]", rec.Lost, rec.Joined, rec.Cause)
			}
			if rec.Resume != 3 {
				t.Fatalf("expand resumes at step %d, want 3 (the interrupted step)", rec.Resume)
			}
			k = rec.Resume
			continue
		}
		got[k] = loss
		k++
	}
	if shrinks != 1 || expands != 1 {
		t.Fatalf("shrinks=%d expands=%d, want exactly one of each", shrinks, expands)
	}
	if !reflect.DeepEqual(coord.Alive(), []int{0, 3}) {
		t.Fatalf("post-expand membership %v, want [0 3]", coord.Alive())
	}
	for k := range iters {
		if drift := math.Abs(got[k] - want[k]); drift > 1e-6 {
			t.Fatalf("step %d: loss %.12f vs uninterrupted %.12f (drift %.3g)", k, got[k], want[k], drift)
		}
	}

	// The final session state must match the uninterrupted run, proving the
	// checkpoint stream delivered real training state, not just workable
	// weights.
	refParams := refNet.Params()
	if coord.ckpt.Step != len(iters) {
		t.Fatalf("final checkpoint at step %d, want %d", coord.ckpt.Step, len(iters))
	}
	for i, w := range coord.ckpt.Weights {
		for j := range w.Data {
			if drift := math.Abs(w.Data[j] - refParams[i].W.Data[j]); drift > 1e-6 {
				t.Fatalf("final weight %d[%d] drifts %.3g from uninterrupted run", i, j, drift)
			}
		}
	}

	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}
	for name, ch := range map[string]chan error{"survivor": served0, "dead": served1, "joiner": servedJ} {
		select {
		case err := <-ch:
			if err != nil {
				t.Fatalf("%s worker exited with %v", name, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("%s worker never exited", name)
		}
	}
}

// TestSessionRejoinJoinerDiesMidSync is the chaos composition: a joiner is
// granted membership and then dies during its state sync (right after the
// admission reconfig reaches it). Whichever side of the admission race the
// death lands on, the session must stay consistent: either the corpse is
// pruned before expansion and the step just runs, or the expansion is
// attempted, fails, and the session shrinks back to the original two ranks
// with bit-exact pre-step state — and in every outcome the losses keep
// matching the uninterrupted sequential run.
func TestSessionRejoinJoinerDiesMidSync(t *testing.T) {
	p, master, deviceRanks, b0, b1, b2 := distFixture(t)
	rng := rand.New(rand.NewSource(31))
	proj := NewQuadrantProblem(rng, 16)
	iters := [][]Batch{b0, b1, b2, QuadrantBatches(rng, proj, 4, 8)}

	refNet := master.Clone()
	refOpt := nn.NewMomentum(0.05, 0.9)
	want := make([]float64, len(iters))
	for k, micros := range iters {
		loss, err := SequentialStep(refNet, micros, refOpt)
		if err != nil {
			t.Fatal(err)
		}
		want[k] = loss
	}

	w0t, w1t, ct, addrs := elasticMesh(t)
	w0, w1 := NewWorker(w0t, 0), NewWorker(w1t, 1)
	served := make(chan error, 2)
	go func() { served <- w0.Serve(context.Background()) }()
	go func() { served <- w1.Serve(context.Background()) }()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	coord, err := NewCoordinator(ctx, ct, p, master, OptSpec{Kind: "momentum", LR: 0.05, Beta: 0.9},
		ExecOptions{Policy: schedule.DapplePA}, deviceRanks, 2,
		WithReplan(elasticReplan(t, p)),
		WithElastic(addrs),
		WithCheckpoint(t.TempDir(), 1),
		WithHeartbeat(20*time.Millisecond, 2*time.Second),
		WithStepTimeout(30*time.Second),
		WithShutdownTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}

	got := make([]float64, len(iters))
	for k := 0; k < 2; k++ {
		loss, err := coord.Step(ctx, iters[k])
		if err != nil {
			t.Fatalf("step %d: %v", k, err)
		}
		got[k] = loss
	}

	// The doomed joiner: it completes the membership handshake honestly,
	// waits for its admission reconfig, and dies on the spot — mid-sync,
	// before consuming the checkpoint stream.
	jt, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { jt.Close() })
	doomed := make(chan error, 1)
	go func() {
		doomed <- func() error {
			w, err := JoinSession(ctx, jt, ct.Addr())
			if err != nil {
				return err
			}
			if _, _, err := recvEnvelope(ctx, jt, w.grant.Coord); err != nil {
				return err
			}
			if w.hb != nil {
				w.hb.Stop()
			}
			jt.Close()
			return nil
		}()
	}()
	if err := coord.AwaitJoin(ctx); err != nil {
		t.Fatalf("await join: %v", err)
	}

	// Pre-step state, bitwise (checkpointed every step, so this is the
	// step-2 boundary): a failed expansion must leave it untouched. The
	// doomed goroutine is still parked here — its admission reconfig is
	// only sent inside Step, so it dies mid-admission below.
	pre := EncodeCheckpoint(coord.ckpt)

	for k := 2; k < len(iters); {
		loss, err := coord.Step(ctx, iters[k])
		if err != nil {
			var rec *Recovered
			if !errors.As(err, &rec) {
				t.Fatalf("step %d: %v", k, err)
			}
			// The expansion raced the death and lost: the session must have
			// shrunk back to exactly the original membership with the
			// pre-step state intact.
			if rec.Cause == nil {
				t.Fatalf("expansion onto a dead joiner reported success: joined %v", rec.Joined)
			}
			if len(rec.Joined) != 0 {
				t.Fatalf("dead joiner %v reported as session member", rec.Joined)
			}
			if !reflect.DeepEqual(coord.Alive(), []int{0, 1}) {
				t.Fatalf("post-rollback membership %v, want [0 1]", coord.Alive())
			}
			if rec.Resume != 2 {
				t.Fatalf("rollback resumes at step %d, want 2", rec.Resume)
			}
			if !bytes.Equal(EncodeCheckpoint(coord.ckpt), pre) {
				t.Fatal("failed expansion mutated the session's training state")
			}
			k = rec.Resume
			continue
		}
		got[k] = loss
		k++
	}
	select {
	case err := <-doomed:
		if err != nil {
			t.Fatalf("doomed joiner: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("doomed joiner never received its admission reconfig")
	}
	for k := range iters {
		if drift := math.Abs(got[k] - want[k]); drift > 1e-6 {
			t.Fatalf("step %d: loss %.12f vs uninterrupted %.12f (drift %.3g)", k, got[k], want[k], drift)
		}
	}
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		select {
		case err := <-served:
			if err != nil {
				t.Fatalf("worker exited with %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("worker never exited")
		}
	}
}
