package train

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"dapple/internal/core"
	"dapple/internal/hardware"
	"dapple/internal/model"
	"dapple/internal/nn"
	"dapple/internal/schedule"
	"dapple/internal/tensor"
	"dapple/internal/transport"
)

// The distributed session protocol: a coordinator process (mesh rank W for W
// workers) drives worker processes (ranks 0..W-1) through a lockstep.
// Control messages are JSON envelopes on the transport's control plane; bulk
// data (initial weights, optimizer state, per-step micro-batches, snapshot
// gathers) travels as out-of-band tensor frames on the same connections, so
// per-peer FIFO order makes every wait deterministic. The handshake is
// manifest → weight and optimizer-state broadcast → weights-done → ready;
// each step is step → micro-batch tensors → step-done, and the coordinator
// gates step k+1 on every worker's step-k report.
//
// Failure semantics are configurable. By default the session is fail-stop:
// any failure anywhere ends it everywhere, and no torn cross-process update
// can exist because updates commit only at step boundaries. With WithReplan
// the session instead survives worker death: heartbeats (WithHeartbeat)
// detect dead or hung ranks, the coordinator retires the torn generation
// (transport epoch floor), re-plans onto the survivors, restores the last
// consistent snapshot and re-runs the handshake — the failed Step returns
// *Recovered telling the driver where to rewind its data feed.
const (
	ctrlManifest    = "manifest"
	ctrlWeightsDone = "weights-done"
	ctrlReady       = "ready"
	ctrlStep        = "step"
	ctrlStepDone    = "step-done"
	ctrlAbort       = "abort"
	ctrlShutdown    = "shutdown"
	ctrlShutdownAck = "shutdown-ack"
	ctrlSnapshot    = "snapshot"
	ctrlSnapAck     = "snap-ack"
	ctrlReconfig    = "reconfig"
	ctrlJoin        = "join"
)

// Tensor classes multiplexed on the session mesh's out-of-band tensor plane.
const (
	tensWeight = 1 // weight broadcast, Index = position in Params()
	tensX      = 2 // one micro-batch's input rows, Index = micro-batch id
	tensY      = 3 // one micro-batch's labels as a rows×1 matrix
	tensOptS   = 4 // optimizer-state broadcast, Index = slot*nparams + param
	tensSnapW  = 5 // snapshot gather: weights toward the coordinator
	tensSnapS  = 6 // snapshot gather: optimizer state toward the coordinator
	tensFlush  = 7 // recovery flush marker: everything before it is stale
	tensCkpt   = 8 // checkpoint stream to a joiner, Index = chunk number
)

// LayerSpec describes one nn layer structurally, enough for a worker to
// rebuild the master network's skeleton before the weight broadcast fills it.
type LayerSpec struct {
	// Kind is "dense", "relu" or "tanh".
	Kind string `json:"kind"`
	// In and Out are the dense layer's dimensions (zero for activations).
	In  int `json:"in,omitempty"`
	Out int `json:"out,omitempty"`
}

// OptSpec names the optimizer every replica instantiates, so all processes
// apply identical update rules to identical gradients.
type OptSpec struct {
	// Kind is "sgd", "momentum" or "adam".
	Kind string `json:"kind"`
	// LR is the learning rate.
	LR float64 `json:"lr"`
	// Beta is the momentum coefficient (momentum only).
	Beta float64 `json:"beta,omitempty"`
}

// Factory returns the optimizer constructor the spec names.
func (o OptSpec) Factory() (func() nn.Optimizer, error) {
	switch o.Kind {
	case "sgd":
		return func() nn.Optimizer { return nn.SGD{LR: o.LR} }, nil
	case "momentum":
		return func() nn.Optimizer { return nn.NewMomentum(o.LR, o.Beta) }, nil
	case "adam":
		return func() nn.Optimizer { return nn.NewAdam(o.LR) }, nil
	default:
		return nil, fmt.Errorf("train: unknown optimizer %q", o.Kind)
	}
}

// Slots returns how many per-parameter state vectors the named optimizer
// keeps — the number of tensOptS/tensSnapS streams per parameter.
func (o OptSpec) Slots() int {
	switch o.Kind {
	case "momentum":
		return 1
	case "adam":
		return 2
	}
	return 0
}

// stageSpec is one plan stage in wire form.
type stageSpec struct {
	Lo      int   `json:"lo"`
	Hi      int   `json:"hi"`
	Devices []int `json:"devices"`
}

// Manifest is the session description the coordinator hands every worker:
// everything needed to reconstruct the plan and the network skeleton and to
// place itself in the mesh. Weights are NOT in the manifest — they follow as
// tensor frames so the JSON stays small.
type Manifest struct {
	// Model and Cluster rebind the plan on the worker side.
	Model   model.Model      `json:"model"`
	Cluster hardware.Cluster `json:"cluster"`
	// Stages, GBS and MicroBatch complete the plan.
	Stages     []stageSpec `json:"stages"`
	GBS        int         `json:"gbs"`
	MicroBatch int         `json:"microBatch"`
	// Policy and Recompute mirror ExecOptions.
	Policy    int  `json:"policy"`
	Recompute bool `json:"recompute"`
	// BucketBytes and MonolithicAR mirror the gradient-sync ExecOptions so
	// every rank derives the same bucket layout (and thus the same
	// bucket-group ids) for the cross-process all-reduce groups.
	BucketBytes  int  `json:"bucketBytes,omitempty"`
	MonolithicAR bool `json:"monolithicAR,omitempty"`
	// Net is the network skeleton; Opt the shared optimizer.
	Net []LayerSpec `json:"net"`
	Opt OptSpec     `json:"opt"`
	// DeviceRanks maps every cluster device to its hosting worker rank.
	DeviceRanks []int `json:"deviceRanks"`
	// Workers is the initial worker count; the coordinator is mesh rank
	// Workers for the session's whole life, across recoveries.
	Workers int `json:"workers"`
	// Ranks lists the worker ranks participating in this session
	// generation (shrinks after a recovery). Empty means 0..Workers-1.
	Ranks []int `json:"ranks,omitempty"`
	// Survivable marks a fault-tolerant session: every rank enables peer
	// isolation so one rank's death downs a peer, not the mesh.
	Survivable bool `json:"survivable,omitempty"`
	// Heartbeat and HeartbeatTimeout configure each rank's liveness plane
	// (nanoseconds; zero disables).
	Heartbeat        time.Duration `json:"heartbeat,omitempty"`
	HeartbeatTimeout time.Duration `json:"heartbeatTimeout,omitempty"`
	// Epoch is the transport epoch floor of this session generation
	// (nonzero only in recovery manifests); workers Retire to it before
	// rebuilding their executors.
	Epoch uint32 `json:"epoch,omitempty"`
}

// ranks returns the participating worker ranks.
func (m *Manifest) ranks() []int {
	if len(m.Ranks) > 0 {
		return m.Ranks
	}
	rs := make([]int, m.Workers)
	for i := range rs {
		rs[i] = i
	}
	return rs
}

// envelope is the one wire shape of every control message; Kind selects
// which fields matter.
type envelope struct {
	Kind     string    `json:"kind"`
	Step     int       `json:"step,omitempty"`
	M        int       `json:"m,omitempty"`
	Loss     float64   `json:"loss,omitempty"`
	Err      string    `json:"err,omitempty"`
	Manifest *Manifest `json:"manifest,omitempty"`
	// Down carries death evidence on an abort: the ranks the sender saw go
	// down. The coordinator treats abort-with-Down as a recovery trigger
	// rather than a fail-stop.
	Down []int `json:"downRanks,omitempty"`
	// OptStep rides on weights-done and snap-ack: the optimizer's update
	// counter belonging to the broadcast or gathered state.
	OptStep int `json:"optStep,omitempty"`
	// CommS and WaitS ride on step-done: the rank's gradient-sync seconds
	// and the portion its compute workers spent blocked on it, feeding the
	// coordinator's overlap-efficiency aggregate.
	CommS float64 `json:"commS,omitempty"`
	WaitS float64 `json:"waitS,omitempty"`
	// CkptBytes rides on a reconfig toward a freshly joined rank: the exact
	// byte length of the checkpoint stream (tensCkpt frames) that follows
	// instead of the per-parameter state broadcast. Zero selects the
	// broadcast format.
	CkptBytes int64 `json:"ckptBytes,omitempty"`
}

// sum totals a per-stage seconds slice for a step-done report.
func sum(xs []float64) float64 {
	var t float64
	for _, x := range xs {
		t += x
	}
	return t
}

// NetSpec extracts the structural skeleton of a network for the manifest.
func NetSpec(n *nn.Network) ([]LayerSpec, error) {
	spec := make([]LayerSpec, 0, n.NumLayers())
	for _, l := range n.Layers {
		switch d := l.(type) {
		case *nn.Dense:
			spec = append(spec, LayerSpec{Kind: "dense", In: d.W.Rows, Out: d.W.Cols})
		case nn.ReLU:
			spec = append(spec, LayerSpec{Kind: "relu"})
		case nn.Tanh:
			spec = append(spec, LayerSpec{Kind: "tanh"})
		default:
			return nil, fmt.Errorf("train: layer %T has no wire spec", l)
		}
	}
	return spec, nil
}

// BuildNet constructs the skeleton a spec describes. Dense weights are
// placeholders until the coordinator's broadcast overwrites them.
func BuildNet(spec []LayerSpec) (*nn.Network, error) {
	rng := rand.New(rand.NewSource(0))
	net := &nn.Network{}
	for _, ls := range spec {
		switch ls.Kind {
		case "dense":
			if ls.In <= 0 || ls.Out <= 0 {
				return nil, fmt.Errorf("train: dense layer with shape %dx%d", ls.In, ls.Out)
			}
			net.Layers = append(net.Layers, nn.NewDense(ls.In, ls.Out, rng))
		case "relu":
			net.Layers = append(net.Layers, nn.ReLU{})
		case "tanh":
			net.Layers = append(net.Layers, nn.Tanh{})
		default:
			return nil, fmt.Errorf("train: unknown layer kind %q", ls.Kind)
		}
	}
	return net, nil
}

// sendEnvelope JSON-encodes and ships one control message.
func sendEnvelope(t *transport.TCP, peer int, env envelope) error {
	raw, err := json.Marshal(env)
	if err != nil {
		return err
	}
	return t.SendControl(peer, raw)
}

// recvEnvelope blocks for the next control message, decoding it; it fails
// when the transport dies, ctx ends, or any of the watched ranks goes down,
// so protocol waits are never stranded by a dead peer.
func recvEnvelope(ctx context.Context, t *transport.TCP, watch ...int) (int, envelope, error) {
	for {
		downs, dwait := t.PeerDowns()
		for _, d := range downs {
			for _, w := range watch {
				if d == w {
					return -1, envelope{}, fmt.Errorf("train: rank %d down: %w", d, t.DownErr(d))
				}
			}
		}
		select {
		case cm := <-t.Ctrl():
			var env envelope
			err := json.Unmarshal(cm.Data, &env)
			t.RecycleCtrl(cm.Data)
			if err != nil {
				return cm.Peer, envelope{}, fmt.Errorf("train: bad control frame from rank %d: %w", cm.Peer, err)
			}
			return cm.Peer, env, nil
		case <-dwait:
		case <-t.Done():
			// Drain messages demuxed before the transport died: a shutdown
			// that raced a peer's teardown must still be seen as a shutdown.
			select {
			case cm := <-t.Ctrl():
				var env envelope
				err := json.Unmarshal(cm.Data, &env)
				t.RecycleCtrl(cm.Data)
				if err == nil {
					return cm.Peer, env, nil
				}
			default:
			}
			return -1, envelope{}, t.Err()
		case <-ctx.Done():
			return -1, envelope{}, ctx.Err()
		}
	}
}

// recvTensor blocks for the next out-of-band tensor frame.
func recvTensor(ctx context.Context, t *transport.TCP) (transport.TensorMsg, error) {
	select {
	case tm := <-t.Tensors():
		return tm, nil
	case <-t.Done():
		return transport.TensorMsg{}, t.Err()
	case <-ctx.Done():
		return transport.TensorMsg{}, ctx.Err()
	}
}

// sessionConfig is the resolved set of session options.
type sessionConfig struct {
	hbInterval      time.Duration
	hbTimeout       time.Duration
	stepTimeout     time.Duration
	shutdownTimeout time.Duration
	ckptDir         string
	ckptEvery       int
	ckptKeep        int
	replan          ReplanFunc
	elastic         bool
	addrs           map[int]string
}

// ReplanFunc produces a new plan for the surviving worker ranks after a
// failure: alive lists the live ranks ascending; the returned device-rank
// map must place every device of the new plan's cluster onto one of them.
// DAPPLE makes this cheap — a fresh plan for the shrunk device set is one
// Engine.Plan call.
type ReplanFunc func(alive []int) (*core.Plan, []int, error)

// SessionOption configures a Coordinator beyond the required arguments.
type SessionOption func(*sessionConfig)

// WithHeartbeat enables the liveness plane on every rank: heartbeats every
// interval, and a rank heard from more than timeout ago is declared dead.
// The timeout must comfortably exceed the interval (10x is a sane start) so
// slow-but-alive ranks are never falsely declared dead.
func WithHeartbeat(interval, timeout time.Duration) SessionOption {
	return func(c *sessionConfig) { c.hbInterval, c.hbTimeout = interval, timeout }
}

// WithStepTimeout bounds each step's report barrier: ranks that have not
// reported when it expires are declared dead. This catches ranks that are
// hung but still heartbeating (a frozen edge, a deadlocked stage). Zero
// disables.
func WithStepTimeout(d time.Duration) SessionOption {
	return func(c *sessionConfig) { c.stepTimeout = d }
}

// WithShutdownTimeout bounds Close's shutdown-ack barrier, so a hung worker
// cannot block a clean shutdown forever. The default is 10s.
func WithShutdownTimeout(d time.Duration) SessionOption {
	return func(c *sessionConfig) { c.shutdownTimeout = d }
}

// WithCheckpoint persists consistent snapshots under dir every `every`
// steps, and restores the latest valid checkpoint at session start and
// during recovery. Snapshots are gathered from the workers at step
// boundaries, so they are always torn-update-free.
func WithCheckpoint(dir string, every int) SessionOption {
	return func(c *sessionConfig) { c.ckptDir, c.ckptEvery = dir, every }
}

// WithReplan makes the session survive worker death: on a detected failure
// the coordinator re-plans onto the surviving ranks with fn, restores the
// last snapshot, and resumes. Without this option the session is fail-stop.
func WithReplan(fn ReplanFunc) SessionOption {
	return func(c *sessionConfig) { c.replan = fn }
}

// WithCheckpointRetention prunes the checkpoint directory after every
// snapshot, keeping the keep newest files (plus, always, the newest valid
// checkpoint — see PruneCheckpoints), so a long session's checkpoint dir
// stays bounded. Zero (the default) disables pruning. Only meaningful with
// WithCheckpoint.
func WithCheckpointRetention(keep int) SessionOption {
	return func(c *sessionConfig) { c.ckptKeep = keep }
}

// WithElastic lets the session grow as well as shrink: the coordinator's
// transport (which must be listening) accepts membership handshakes from
// fresh dapple-worker processes (see JoinSession), admits them under fresh
// ranks and expands the session onto them at the next step boundary — the
// inverse of WithReplan's shrink, and it requires WithReplan (the same
// ReplanFunc re-plans the grown rank set). addrs maps every launch-time
// worker rank to its listen address, so joiners can be told whom to dial;
// joined workers' addresses are learned from their join requests.
func WithElastic(addrs map[int]string) SessionOption {
	return func(c *sessionConfig) {
		c.elastic = true
		c.addrs = make(map[int]string, len(addrs))
		for r, a := range addrs {
			c.addrs[r] = a
		}
	}
}

// Recovered is the error a Step that reshaped the session returns: the
// requested step did not run, training state was rewound to the last
// consistent snapshot, and the session now runs on a different rank set — a
// shrink after a failure (Lost), an expansion onto admitted joiners
// (Joined), or both when an expansion and a death raced. The caller rewinds
// its data feed to step Resume and continues.
type Recovered struct {
	// Resume is the next step index to run (the restored snapshot's step).
	Resume int
	// Lost lists the ranks removed from the session, ascending.
	Lost []int
	// Joined lists the freshly admitted ranks now in the session, ascending.
	Joined []int
	// Cause is the failure that triggered the recovery; nil for a pure
	// expansion, which no failure triggers.
	Cause error
}

// Error implements error.
func (r *Recovered) Error() string {
	if r.Cause == nil {
		return fmt.Sprintf("train: session expanded onto joined ranks %v; resume at step %d", r.Joined, r.Resume)
	}
	if len(r.Joined) > 0 {
		return fmt.Sprintf("train: session recovered from %v (lost ranks %v, joined ranks %v); resume at step %d",
			r.Cause, r.Lost, r.Joined, r.Resume)
	}
	return fmt.Sprintf("train: session recovered from %v (lost ranks %v); resume at step %d", r.Cause, r.Lost, r.Resume)
}

// Coordinator drives a multi-process training session from the non-worker
// side: it owns no devices, ships the manifest, the weights and optimizer
// state, and each step's micro-batches to every worker, and gates each step
// on all workers' reports. With WithReplan it heals the session around dead
// workers; otherwise the first error anywhere ends it.
type Coordinator struct {
	t      *transport.TCP
	cfg    sessionConfig
	plan   *core.Plan
	master *nn.Network
	opt    OptSpec
	eo     ExecOptions

	coord       int   // the coordinator's mesh rank, constant across recoveries
	alive       []int // live worker ranks, ascending
	deviceRanks []int
	gen         int // session generation, bumped per recovery
	step        int
	snapEvery   int
	ckpt        *Checkpoint
	hb          *heartbeater
	failed      error

	// Elastic membership (all nil/zero unless WithElastic). Mutated only from
	// the coordinator's protocol loops, so no locking.
	nextRank  int            // next rank to grant; joiners never reuse dead ranks
	joining   map[int]bool   // granted a rank, still meshing
	joinReady []int          // meshed and admission-pending
	fresh     map[int]bool   // ranks that have never built a session: next reconfig streams them a checkpoint
	addrs     map[int]string // listen address per live or joining rank
	manHash   string         // invariant-manifest hash joiners must match

	commS, waitS float64 // gradient-sync seconds aggregated from step-done reports

	yfree chan *tensor.Matrix // recycled per-micro label staging buffers
}

// NewCoordinator performs the session handshake over an already-connected
// mesh (t must be dialed to worker ranks 0..workers-1 with rank workers):
// manifest to every worker, weight and optimizer-state broadcast in Params()
// order, weights-done, then a ready barrier. With WithCheckpoint, the latest
// valid checkpoint under the directory is restored first, so a restarted
// session resumes where the previous one left off. On return every worker
// holds an executor with identical state and the session is ready to Step.
func NewCoordinator(ctx context.Context, t *transport.TCP, p *core.Plan, master *nn.Network, opt OptSpec, eo ExecOptions, deviceRanks []int, workers int, opts ...SessionOption) (*Coordinator, error) {
	cfg := sessionConfig{shutdownTimeout: 10 * time.Second}
	for _, o := range opts {
		o(&cfg)
	}
	if _, err := opt.Factory(); err != nil {
		return nil, err
	}
	if n := p.Cluster.NumDevices(); len(deviceRanks) < n {
		return nil, fmt.Errorf("train: device-rank map covers %d of %d devices", len(deviceRanks), n)
	}
	c := &Coordinator{
		t: t, cfg: cfg, plan: p, master: master, opt: opt, eo: eo,
		coord: workers, deviceRanks: deviceRanks,
		yfree: make(chan *tensor.Matrix, 16),
	}
	for r := 0; r < workers; r++ {
		c.alive = append(c.alive, r)
	}
	c.snapEvery = cfg.ckptEvery
	if c.snapEvery <= 0 && cfg.replan != nil {
		c.snapEvery = 1 // recovery needs a recent consistent snapshot
	}
	factory, _ := opt.Factory()
	c.ckpt = CaptureCheckpoint(0, master, factory())
	if cfg.ckptDir != "" {
		saved, _, err := LatestCheckpoint(cfg.ckptDir)
		if err != nil {
			return nil, err
		}
		if saved != nil {
			if err := saved.Restore(master, factory()); err != nil {
				return nil, fmt.Errorf("train: checkpoint restore: %w", err)
			}
			c.ckpt = saved
		}
	}
	c.step = c.ckpt.Step
	if cfg.replan != nil {
		t.SetPeerIsolation(true)
	}
	man, err := c.manifest()
	if err != nil {
		return nil, err
	}
	if cfg.elastic {
		if cfg.replan == nil {
			return nil, fmt.Errorf("train: WithElastic requires WithReplan")
		}
		if t.Addr() == "" {
			return nil, fmt.Errorf("train: an elastic coordinator's transport must listen (use ListenTCP)")
		}
		for r := 0; r < workers; r++ {
			if cfg.addrs[r] == "" {
				return nil, fmt.Errorf("train: WithElastic is missing worker %d's listen address", r)
			}
		}
		c.nextRank = workers + 1
		c.joining = map[int]bool{}
		c.fresh = map[int]bool{}
		c.addrs = cfg.addrs
		c.manHash = sessionHash(man)
		t.SetAcceptJoins(true)
	}
	for _, w := range c.alive {
		if err := sendEnvelope(t, w, envelope{Kind: ctrlManifest, Manifest: man}); err != nil {
			return nil, err
		}
		if err := c.sendState(w); err != nil {
			return nil, err
		}
	}
	if err := c.readyBarrier(ctx); err != nil {
		return nil, err
	}
	if cfg.hbInterval > 0 {
		c.hb = startHeartbeater(t, cfg.hbInterval, cfg.hbTimeout, nil)
	}
	return c, nil
}

// manifest assembles the current generation's session description.
func (c *Coordinator) manifest() (*Manifest, error) {
	net, err := NetSpec(c.master)
	if err != nil {
		return nil, err
	}
	man := &Manifest{
		Model: *c.plan.Model, Cluster: c.plan.Cluster,
		GBS: c.plan.GBS, MicroBatch: c.plan.MicroBatch,
		Policy: int(c.eo.Policy), Recompute: c.eo.Recompute,
		BucketBytes: c.eo.BucketBytes, MonolithicAR: c.eo.MonolithicAllReduce,
		Net: net, Opt: c.opt, DeviceRanks: c.deviceRanks,
		Workers:    c.coord,
		Ranks:      append([]int(nil), c.alive...),
		Survivable: c.cfg.replan != nil,
		Heartbeat:  c.cfg.hbInterval, HeartbeatTimeout: c.cfg.hbTimeout,
		Epoch: c.floor(),
	}
	for _, s := range c.plan.Stages {
		ss := stageSpec{Lo: s.Lo, Hi: s.Hi}
		for _, d := range s.Devices {
			ss.Devices = append(ss.Devices, int(d))
		}
		man.Stages = append(man.Stages, ss)
	}
	return man, nil
}

// OverlapEfficiency reports the fraction of gradient-sync time the session
// hid behind backward compute, aggregated over every worker's step reports:
// 1 - wait/comm, clamped to [0, 1]. Zero until a step has communicated.
func (c *Coordinator) OverlapEfficiency() float64 {
	if c.commS <= 0 {
		return 0
	}
	eff := 1 - c.waitS/c.commS
	if eff < 0 {
		return 0
	}
	if eff > 1 {
		return 1
	}
	return eff
}

// floor is the transport epoch floor of the current session generation.
// Generations are spaced far enough apart that no edge re-opens its way
// from one generation into the next.
func (c *Coordinator) floor() uint32 {
	if c.gen == 0 {
		return 0
	}
	return uint32(c.gen) << 16
}

// sendState ships the session's authoritative training state — checkpoint
// weights and optimizer state in Params() order — to worker w, closed by
// weights-done carrying the optimizer step counter.
func (c *Coordinator) sendState(w int) error {
	for i, wt := range c.ckpt.Weights {
		if err := c.t.SendTensor(w, tensWeight, i, wt); err != nil {
			return err
		}
	}
	nparams := len(c.ckpt.Weights)
	for s, slot := range c.ckpt.Slots {
		for i, vec := range slot {
			m := &tensor.Matrix{Rows: c.ckpt.Weights[i].Rows, Cols: c.ckpt.Weights[i].Cols, Data: vec}
			if err := c.t.SendTensor(w, tensOptS, s*nparams+i, m); err != nil {
				return err
			}
		}
	}
	return sendEnvelope(c.t, w, envelope{Kind: ctrlWeightsDone, OptStep: c.ckpt.OptStep})
}

// readyBarrier waits for every live worker's ready, skipping stale step
// reports from before a recovery (per-connection FIFO guarantees a worker's
// ready follows everything it sent earlier). A worker dying during the
// barrier fails it — the caller decides between fail-stop and another
// recovery round.
func (c *Coordinator) readyBarrier(ctx context.Context) error {
	pending := make(map[int]bool, len(c.alive))
	for _, w := range c.alive {
		pending[w] = true
	}
	for len(pending) > 0 {
		peer, env, err := recvEnvelope(ctx, c.t, c.alive...)
		if err != nil {
			return err
		}
		switch env.Kind {
		case ctrlReady:
			if env.Step != int(c.floor()) {
				continue // a ready from a torn rehandshake round; drop
			}
			delete(pending, peer)
			delete(c.fresh, peer) // a built session means broadcasts fit from now on
		case ctrlStepDone, ctrlSnapAck:
			// Stale reports from the torn generation; drop.
		case ctrlJoin:
			c.noteJoinReady(peer)
		case ctrlAbort:
			if err := c.noteAbort(peer, env); err != nil {
				return err
			}
		default:
			return fmt.Errorf("train: rank %d sent %q during handshake: %s", peer, env.Kind, env.Err)
		}
	}
	return nil
}

// noteAbort processes a worker's abort envelope. Fresh death evidence downs
// the named ranks and fails the current wait so recovery sees them; evidence
// naming only ranks the session has already removed is a stale report from
// before the recovery and is dropped (nil). An abort without evidence is a
// worker-level failure and fail-stops the session.
func (c *Coordinator) noteAbort(peer int, env envelope) error {
	if c.cfg.replan != nil && len(env.Down) > 0 {
		alive := make(map[int]bool, len(c.alive))
		for _, r := range c.alive {
			alive[r] = true
		}
		fresh := false
		for _, r := range env.Down {
			if r != c.coord && alive[r] {
				fresh = true
				c.t.ClosePeer(r, fmt.Errorf("train: rank %d reported rank %d down: %s", peer, r, env.Err))
			}
		}
		if !fresh {
			return nil
		}
		return fmt.Errorf("train: rank %d reported ranks %v down: %s", peer, env.Down, env.Err)
	}
	return fmt.Errorf("train: rank %d aborted: %s", peer, env.Err)
}

// CompletedSteps is the number of training steps the session has completed —
// zero on a fresh session, the restored checkpoint's step count after a
// restart. The data feed's next iteration is this index.
func (c *Coordinator) CompletedSteps() int { return c.step }

// Step runs one distributed training iteration: micro-batches to every
// worker, then a barrier on all step reports. The returned loss is the sum
// of the workers' last-stage partial losses — the same micro-batch-averaged
// cross-entropy a single-process ExecResult reports.
//
// On failure, a fail-stop session (no WithReplan) is dead and every later
// Step fails immediately. A survivable session instead recovers — re-plans
// onto the live ranks, restores the last snapshot — and returns *Recovered;
// the caller rewinds to Recovered.Resume and keeps stepping.
func (c *Coordinator) Step(ctx context.Context, micros []Batch) (float64, error) {
	if c.failed != nil {
		return 0, c.failed
	}
	if c.cfg.elastic {
		c.drainJoins()
		if js := c.takeReady(); len(js) > 0 {
			return 0, c.admit(ctx, js)
		}
	}
	loss, err := c.tryStep(ctx, micros)
	if err == nil {
		c.step++
		if c.snapEvery > 0 && (c.step-c.ckpt.Step) >= c.snapEvery {
			err = c.snapshot(ctx)
		}
		if err == nil {
			return loss, nil
		}
	}
	if c.cfg.replan == nil {
		return 0, c.fail(err)
	}
	if ctx.Err() != nil {
		return 0, c.fail(err) // cancellation is the caller's intent, not a rank failure
	}
	lost, rerr := c.recover(ctx, err)
	if rerr != nil {
		return 0, c.fail(rerr)
	}
	return 0, &Recovered{Resume: c.step, Lost: lost, Cause: err}
}

// tryStep ships one step and runs its report barrier, watching the liveness
// plane: a pending rank going down, or the step timeout expiring with ranks
// unreported, fails the step with death evidence instead of deadlocking.
func (c *Coordinator) tryStep(ctx context.Context, micros []Batch) (float64, error) {
	step := c.step
	for _, w := range c.alive {
		if err := c.send(w, step, micros); err != nil {
			return 0, err
		}
	}
	pending := make(map[int]bool, len(c.alive))
	for _, w := range c.alive {
		pending[w] = true
	}
	var expire <-chan time.Time
	if c.cfg.stepTimeout > 0 {
		tmr := time.NewTimer(c.cfg.stepTimeout)
		defer tmr.Stop()
		expire = tmr.C
	}
	var loss float64
	for len(pending) > 0 {
		downs, dwait := c.t.PeerDowns()
		for _, r := range downs {
			if pending[r] {
				return 0, fmt.Errorf("train: rank %d down during step %d: %w", r, step, c.t.DownErr(r))
			}
		}
		select {
		case cm := <-c.t.Ctrl():
			var env envelope
			err := json.Unmarshal(cm.Data, &env)
			c.t.RecycleCtrl(cm.Data)
			if err != nil {
				return 0, fmt.Errorf("train: bad control frame from rank %d: %w", cm.Peer, err)
			}
			switch env.Kind {
			case ctrlStepDone:
				if env.Step != step {
					continue // stale report from a torn generation
				}
				if pending[cm.Peer] {
					delete(pending, cm.Peer)
					loss += env.Loss
					c.commS += env.CommS
					c.waitS += env.WaitS
				}
			case ctrlAbort:
				if err := c.noteAbort(cm.Peer, env); err != nil {
					return 0, err
				}
			case ctrlSnapAck, ctrlReady:
				// Stale gather ack or torn-round ready; drop.
			case ctrlJoin:
				c.noteJoinReady(cm.Peer) // admission waits for the step boundary
			default:
				return 0, fmt.Errorf("train: rank %d sent %q during step %d", cm.Peer, env.Kind, step)
			}
		case j := <-c.t.Joins():
			c.serviceJoin(j)
		case <-dwait:
		case <-expire:
			err := fmt.Errorf("train: step %d timed out after %v", step, c.cfg.stepTimeout)
			for r := range pending {
				c.t.ClosePeer(r, err)
			}
			return 0, err
		case <-c.t.Done():
			return 0, c.t.Err()
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
	return loss, nil
}

// send ships one step announcement and its micro-batches to worker w. Labels
// travel as a rows×1 float64 matrix beside each input block.
func (c *Coordinator) send(w, step int, micros []Batch) error {
	if err := sendEnvelope(c.t, w, envelope{Kind: ctrlStep, Step: step, M: len(micros)}); err != nil {
		return err
	}
	for mb, b := range micros {
		if err := c.t.SendTensor(w, tensX, mb, b.X); err != nil {
			return err
		}
		y := transport.LeaseBuf(c.yfree, len(b.Y), 1)
		for i, v := range b.Y {
			y.Data[i] = float64(v)
		}
		if err := c.t.SendTensorPooled(w, tensY, mb, y, c.yfree); err != nil {
			return err
		}
	}
	return nil
}

// snapshot gathers a consistent checkpoint from the workers at the current
// step boundary and persists it when a checkpoint directory is configured.
// Each stage's state is sent by its primary rank (the lowest rank hosting
// one of its devices); gradient synchronization keeps all replicas of a
// stage identical, so one copy per stage reassembles the full master state.
func (c *Coordinator) snapshot(ctx context.Context) error {
	for _, w := range c.alive {
		if err := sendEnvelope(c.t, w, envelope{Kind: ctrlSnapshot, Step: c.step}); err != nil {
			return err
		}
	}
	params := c.master.Params()
	nparams := len(params)
	nslots := c.opt.Slots()
	ck := &Checkpoint{Step: c.step, Weights: make([]*tensor.Matrix, nparams)}
	ck.Slots = make([][][]float64, nslots)
	for s := range ck.Slots {
		ck.Slots[s] = make([][]float64, nparams)
	}
	need := nparams * (1 + nslots)
	got := 0
	acks := make(map[int]bool, len(c.alive))
	for _, w := range c.alive {
		acks[w] = true
	}
	for got < need || len(acks) > 0 {
		downs, dwait := c.t.PeerDowns()
		for _, r := range downs {
			if acks[r] {
				return fmt.Errorf("train: rank %d down during snapshot at step %d: %w", r, c.step, c.t.DownErr(r))
			}
		}
		select {
		case tm := <-c.t.Tensors():
			switch tm.Class {
			case tensSnapW:
				if tm.Index < 0 || tm.Index >= nparams || ck.Weights[tm.Index] != nil {
					return fmt.Errorf("train: snapshot weight %d unexpected", tm.Index)
				}
				ck.Weights[tm.Index] = tm.Data
				got++
			case tensSnapS:
				s, i := tm.Index/nparams, tm.Index%nparams
				if tm.Index < 0 || s >= nslots || ck.Slots[s][i] != nil {
					return fmt.Errorf("train: snapshot state %d unexpected", tm.Index)
				}
				ck.Slots[s][i] = tm.Data.Data
				got++
			case tensFlush:
				// A marker from an in-flight recovery; drop.
				c.t.RecycleTensor(tm.Data)
			default:
				return fmt.Errorf("train: tensor class %d during snapshot", tm.Class)
			}
		case cm := <-c.t.Ctrl():
			var env envelope
			err := json.Unmarshal(cm.Data, &env)
			c.t.RecycleCtrl(cm.Data)
			if err != nil {
				return fmt.Errorf("train: bad control frame from rank %d: %w", cm.Peer, err)
			}
			switch env.Kind {
			case ctrlSnapAck:
				if env.Step == c.step && acks[cm.Peer] {
					delete(acks, cm.Peer)
					if env.OptStep > ck.OptStep {
						ck.OptStep = env.OptStep
					}
				}
			case ctrlStepDone, ctrlReady:
				// Stale report or torn-round ready; drop.
			case ctrlJoin:
				c.noteJoinReady(cm.Peer)
			case ctrlAbort:
				if err := c.noteAbort(cm.Peer, env); err != nil {
					return err
				}
			default:
				return fmt.Errorf("train: rank %d sent %q during snapshot", cm.Peer, env.Kind)
			}
		case j := <-c.t.Joins():
			c.serviceJoin(j)
		case <-dwait:
		case <-c.t.Done():
			return c.t.Err()
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	for i, w := range ck.Weights {
		if w == nil || w.Rows != params[i].W.Rows || w.Cols != params[i].W.Cols {
			return fmt.Errorf("train: snapshot weight %d missing or misshapen", i)
		}
	}
	c.ckpt = ck
	if c.cfg.ckptDir != "" {
		if _, err := SaveCheckpoint(c.cfg.ckptDir, ck); err != nil {
			return fmt.Errorf("train: checkpoint write: %w", err)
		}
		if c.cfg.ckptKeep > 0 {
			if _, err := PruneCheckpoints(c.cfg.ckptDir, c.cfg.ckptKeep); err != nil {
				return fmt.Errorf("train: checkpoint prune: %w", err)
			}
		}
	}
	return nil
}

// recover heals the session after a failure: determine the dead set, retire
// the torn transport generation, re-plan onto the survivors, restore the
// last consistent snapshot and re-run the handshake. Another rank dying
// mid-recovery starts the next round; recovery fails when no progress is
// possible (no rank died, no survivors, or the re-plan itself fails).
func (c *Coordinator) recover(ctx context.Context, cause error) ([]int, error) {
	// Ranks legitimately go quiet while they rebuild (retiring generations,
	// restoring checkpoints): pause silence verdicts so recovery itself never
	// manufactures new deaths. Conn-level failures still down ranks.
	c.hb.Suspend()
	defer c.hb.Resume()
	var lost []int
	attempts := len(c.alive) + 1
	for attempt := 0; attempt < attempts; attempt++ {
		downs, _ := c.t.PeerDowns()
		dead := make(map[int]bool, len(downs))
		for _, r := range downs {
			dead[r] = true
		}
		var alive []int
		for _, r := range c.alive {
			if dead[r] {
				lost = append(lost, r)
			} else {
				alive = append(alive, r)
			}
		}
		sort.Ints(lost)
		c.dropDead(dead)
		if len(alive) == len(c.alive) {
			return nil, fmt.Errorf("train: unrecoverable failure (no rank died): %w", cause)
		}
		if len(alive) == 0 {
			return nil, fmt.Errorf("train: no surviving workers: %w", cause)
		}
		plan, deviceRanks, err := c.cfg.replan(alive)
		if err != nil {
			return nil, fmt.Errorf("train: re-plan onto %v: %w", alive, err)
		}
		if err := validatePlacement(plan, deviceRanks, alive); err != nil {
			return nil, err
		}
		// Restore the last consistent snapshot: from disk when a checkpoint
		// directory is configured (exercising the real restore path), from
		// the in-memory copy otherwise.
		ck := c.ckpt
		if c.cfg.ckptDir != "" {
			saved, _, err := LatestCheckpoint(c.cfg.ckptDir)
			if err == nil && saved != nil {
				ck = saved
			}
		}
		c.gen++
		c.t.Retire(c.floor())
		c.plan, c.deviceRanks, c.alive, c.ckpt = plan, deviceRanks, alive, ck
		c.step = ck.Step
		if err := c.rehandshake(ctx); err != nil {
			if ctx.Err() != nil || c.t.Err() != nil {
				return nil, err
			}
			cause = err
			continue // another rank died; next round shrinks further
		}
		return lost, nil
	}
	return nil, fmt.Errorf("train: recovery did not converge: %w", cause)
}

// validatePlacement checks the re-plan's device map lands only on survivors.
func validatePlacement(p *core.Plan, deviceRanks []int, alive []int) error {
	if n := p.Cluster.NumDevices(); len(deviceRanks) < n {
		return fmt.Errorf("train: re-plan device map covers %d of %d devices", len(deviceRanks), n)
	}
	ok := make(map[int]bool, len(alive))
	for _, r := range alive {
		ok[r] = true
	}
	for d, r := range deviceRanks {
		if !ok[r] {
			return fmt.Errorf("train: re-plan places device %d on non-surviving rank %d", d, r)
		}
	}
	return nil
}

// rehandshake re-runs the session handshake on the current membership:
// reconfig (carrying the new manifest), a flush marker fencing off the torn
// generation's in-flight tensors, then the training state — the restored
// broadcast for ranks that have built a session before, a CRC-tailed
// checkpoint stream for fresh joiners — then the ready barrier.
func (c *Coordinator) rehandshake(ctx context.Context) error {
	man, err := c.manifest()
	if err != nil {
		return err
	}
	marker := tensor.New(1, 1)
	var stream []byte // checkpoint wire image for fresh ranks, encoded once
	for _, w := range c.alive {
		env := envelope{Kind: ctrlReconfig, Manifest: man}
		if c.fresh[w] {
			if stream == nil {
				stream = EncodeCheckpoint(c.ckpt)
			}
			env.CkptBytes = int64(len(stream))
		}
		if err := sendEnvelope(c.t, w, env); err != nil {
			return err
		}
		if err := c.t.SendTensor(w, tensFlush, int(man.Epoch), marker); err != nil {
			return err
		}
		if c.fresh[w] {
			err = c.sendCkptStream(w, stream)
		} else {
			err = c.sendState(w)
		}
		if err != nil {
			return err
		}
	}
	return c.readyBarrier(ctx)
}

// fail latches the session's first error, tells every worker to abort, and
// tears the mesh down.
func (c *Coordinator) fail(err error) error {
	if c.failed == nil {
		c.failed = err
		if c.hb != nil {
			c.hb.Stop()
		}
		for _, w := range c.alive {
			sendEnvelope(c.t, w, envelope{Kind: ctrlAbort, Err: err.Error()}) //nolint:errcheck // best-effort on a dying session
		}
		c.t.Close()
	}
	return c.failed
}

// Close ends a healthy session: shutdown to every worker, a barrier on
// their acks (so no worker is still mid-read when the connections drop)
// bounded by the shutdown timeout, then the mesh.
func (c *Coordinator) Close() error {
	if c.hb != nil {
		c.hb.Stop()
	}
	if c.failed != nil {
		return nil
	}
	for _, w := range c.alive {
		if err := sendEnvelope(c.t, w, envelope{Kind: ctrlShutdown}); err != nil {
			return c.t.Close()
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.shutdownTimeout)
	defer cancel()
	pending := make(map[int]bool, len(c.alive))
	for _, w := range c.alive {
		pending[w] = true
	}
	for len(pending) > 0 {
		peer, env, err := recvEnvelope(ctx, c.t)
		if err != nil {
			break // timeout, dead transport or downed rank: close anyway
		}
		if env.Kind == ctrlShutdownAck {
			delete(pending, peer)
		}
	}
	return c.t.Close()
}

// Worker is one rank of a multi-process session: it receives the manifest
// and state, hosts its share of stage replicas in an Executor, and runs
// coordinator-gated steps until shutdown. In a survivable session it also
// participates in recovery: executor failures with death evidence are
// reported and survived, and a coordinator reconfig rebuilds the executor
// onto the new plan.
type Worker struct {
	t    *transport.TCP
	rank int

	exec      *Executor
	man       *Manifest
	net       *nn.Network
	optStep   int                 // optimizer update counter of the last broadcast
	data      transport.Transport // data-plane override (chaos tests); nil uses t
	dieAtStep int                 // scripted death for fault tests; -1 disables
	flushSeen int                 // highest recovery flush marker consumed
	hb        *heartbeater
	grant     *joinGrantMsg // non-nil on a worker admitted mid-session (JoinSession)

	microBuf []Batch // reused per-step micro-batch staging
	labelBuf [][]int // reused per-micro label staging
}

// NewWorker wraps an already-connected mesh (rank set, peers dialed) as a
// session worker.
func NewWorker(t *transport.TCP, rank int) *Worker {
	return &Worker{t: t, rank: rank, dieAtStep: -1, flushSeen: -1}
}

// Executor returns the worker's executor, nil before the handshake.
func (w *Worker) Executor() *Executor { return w.exec }

// Rank returns the worker's mesh rank — assigned at construction for seed
// workers, granted by the coordinator for JoinSession workers.
func (w *Worker) Rank() int { return w.rank }

// SetDieAtStep scripts this worker's death: it tears down its transport and
// exits cleanly the moment the coordinator announces the given step — the
// deterministic "rank dies at step k" fault of the chaos harness. Negative
// disables (the default).
func (w *Worker) SetDieAtStep(step int) { w.dieAtStep = step }

// SetDataTransport overrides the transport the worker's executor opens
// edges and groups on (the control plane stays on the session mesh). Chaos
// tests wrap the mesh here; nil (the default) uses the mesh directly.
func (w *Worker) SetDataTransport(tr transport.Transport) { w.data = tr }

// dataTransport is the executor-facing transport.
func (w *Worker) dataTransport() transport.Transport {
	if w.data != nil {
		return w.data
	}
	return w.t
}

// coordRank is the coordinator's mesh rank (valid after the manifest).
func (w *Worker) coordRank() int { return w.man.Workers }

// Serve runs the worker side of the session protocol until shutdown (nil),
// session failure, or ctx cancellation. It must be called once, after the
// mesh is fully connected.
func (w *Worker) Serve(ctx context.Context) error {
	var err error
	if w.grant != nil {
		err = w.handshakeJoin(ctx)
	} else {
		err = w.handshake(ctx)
	}
	if err != nil {
		return err
	}
	if w.hb != nil {
		// A joiner ran a send-only heartbeater while awaiting admission;
		// replace it with the session-configured liveness plane.
		w.hb.Stop()
		w.hb = nil
	}
	if w.man.Heartbeat > 0 {
		w.hb = startHeartbeater(w.t, w.man.Heartbeat, w.man.HeartbeatTimeout, nil)
		defer w.hb.Stop()
	}
	coord := w.coordRank()
	for {
		peer, env, err := recvEnvelope(ctx, w.t, coord)
		if err != nil {
			return err
		}
		if peer != coord {
			return fmt.Errorf("train: control frame from non-coordinator rank %d", peer)
		}
		switch env.Kind {
		case ctrlStep:
			if w.dieAtStep >= 0 && env.Step >= w.dieAtStep {
				w.t.Close()
				return nil
			}
			next, err := w.runStep(ctx, env)
			if err != nil {
				return err
			}
			if next != nil {
				if err := w.reconfig(ctx, *next); err != nil {
					return err
				}
			}
		case ctrlSnapshot:
			if err := w.sendSnapshot(env); err != nil {
				return err
			}
		case ctrlReconfig:
			if err := w.reconfig(ctx, env); err != nil {
				return err
			}
		case ctrlShutdown:
			// Ack, then hold the mesh open until the coordinator — who has
			// every worker's ack — tears it down: a worker closing early
			// would EOF peers that are still draining their own shutdown.
			sendEnvelope(w.t, coord, envelope{Kind: ctrlShutdownAck}) //nolint:errcheck // session is over either way
			w.awaitTeardown(ctx)
			return nil
		case ctrlAbort:
			return fmt.Errorf("train: session aborted by coordinator: %s", env.Err)
		default:
			return fmt.Errorf("train: unexpected %q from coordinator", env.Kind)
		}
	}
}

// awaitTeardown blocks (bounded) until the coordinator tears the session
// down after a clean shutdown: under peer isolation its connection dropping
// marks it down; under fail-stop semantics the whole transport dies.
func (w *Worker) awaitTeardown(ctx context.Context) {
	coord := w.coordRank()
	deadline := time.NewTimer(30 * time.Second)
	defer deadline.Stop()
	for {
		downs, dwait := w.t.PeerDowns()
		for _, r := range downs {
			if r == coord {
				return
			}
		}
		select {
		case <-dwait:
		case <-w.t.Done():
			return
		case <-ctx.Done():
			return
		case <-deadline.C:
			return
		}
	}
}

// handshake consumes the manifest, rebuilds the plan and network, fills the
// weights and optimizer state from the broadcast, constructs the executor
// and reports ready.
func (w *Worker) handshake(ctx context.Context) error {
	_, env, err := recvEnvelope(ctx, w.t)
	if err != nil {
		return err
	}
	if env.Kind != ctrlManifest || env.Manifest == nil {
		return fmt.Errorf("train: worker expected manifest, got %q", env.Kind)
	}
	man := env.Manifest
	w.man = man
	if man.Survivable {
		w.t.SetPeerIsolation(true)
	}
	return w.buildSession(ctx, man)
}

// peerWaitTimeout bounds a session build's wait for mesh connections: a peer
// whose dial-in never lands (it died between being granted membership and
// its HELLO arriving) must not strand the whole rank forever.
var peerWaitTimeout = 30 * time.Second

// waitMesh blocks until this rank is connected to every participant of the
// manifest's generation (the listed workers plus the coordinator), so edge
// and group sends never race the dial-in of a slower-starting or freshly
// joined peer.
func (w *Worker) waitMesh(ctx context.Context, man *Manifest) error {
	peers := make([]int, 0, man.Workers+1)
	for _, r := range man.ranks() {
		if r != w.rank {
			peers = append(peers, r)
		}
	}
	peers = append(peers, man.Workers)
	wctx, cancel := context.WithTimeout(ctx, peerWaitTimeout)
	defer cancel()
	if err := w.t.WaitPeers(wctx, peers); err != nil {
		return fmt.Errorf("train: rank %d waiting for mesh %v: %w", w.rank, peers, err)
	}
	return nil
}

// buildSession receives the state broadcast and constructs the executor for
// the manifest's plan — the shared tail of the initial handshake and every
// recovery reconfig.
func (w *Worker) buildSession(ctx context.Context, man *Manifest) error {
	coord := man.Workers
	if err := w.waitMesh(ctx, man); err != nil {
		return err
	}
	net, err := BuildNet(man.Net)
	if err != nil {
		return err
	}
	params := net.Params()
	nparams := len(params)
	for i := range params {
		tm, err := recvTensor(ctx, w.t)
		if err != nil {
			return err
		}
		if tm.Class != tensWeight || tm.Index != i {
			return fmt.Errorf("train: weight broadcast out of order (class %d index %d, want %d)", tm.Class, tm.Index, i)
		}
		if tm.Data.Rows != params[i].W.Rows || tm.Data.Cols != params[i].W.Cols {
			return fmt.Errorf("train: weight %d is %dx%d, skeleton wants %dx%d",
				i, tm.Data.Rows, tm.Data.Cols, params[i].W.Rows, params[i].W.Cols)
		}
		copy(params[i].W.Data, tm.Data.Data)
		w.t.RecycleTensor(tm.Data)
	}
	nslots := man.Opt.Slots()
	slots := make([][][]float64, nslots)
	for s := 0; s < nslots; s++ {
		slots[s] = make([][]float64, nparams)
		for i := 0; i < nparams; i++ {
			tm, err := recvTensor(ctx, w.t)
			if err != nil {
				return err
			}
			if tm.Class != tensOptS || tm.Index != s*nparams+i {
				return fmt.Errorf("train: optimizer-state broadcast out of order (class %d index %d, want %d)",
					tm.Class, tm.Index, s*nparams+i)
			}
			slots[s][i] = tm.Data.Data
		}
	}
	_, doneEnv, err := recvEnvelope(ctx, w.t)
	if err != nil {
		return err
	}
	if doneEnv.Kind != ctrlWeightsDone {
		return fmt.Errorf("train: worker expected weights-done, got %q", doneEnv.Kind)
	}
	w.optStep = doneEnv.OptStep
	exec, err := w.buildExecutor(man, net)
	if err == nil && nslots > 0 {
		err = restoreExecState(exec, man, net, w.optStep, slots)
	}
	if err != nil {
		if !(man.Survivable && errors.Is(err, transport.ErrPeerDown)) {
			// A peer dying mid-rebuild is reported with death evidence by the
			// reconfig path instead; anything else is this rank's own failure.
			sendEnvelope(w.t, coord, envelope{Kind: ctrlAbort, Err: err.Error()}) //nolint:errcheck // best-effort before failing
		}
		return err
	}
	w.exec = exec
	w.net = net
	return sendEnvelope(w.t, coord, envelope{Kind: ctrlReady, Step: int(man.Epoch)})
}

// buildExecutor constructs this rank's executor for the manifest's plan —
// shared by the broadcast and checkpoint-stream session builds.
func (w *Worker) buildExecutor(man *Manifest, net *nn.Network) (*Executor, error) {
	mdl := man.Model
	p := &core.Plan{Model: &mdl, Cluster: man.Cluster, GBS: man.GBS, MicroBatch: man.MicroBatch}
	for _, ss := range man.Stages {
		s := core.Stage{Lo: ss.Lo, Hi: ss.Hi}
		for _, d := range ss.Devices {
			s.Devices = append(s.Devices, hardware.DeviceID(d))
		}
		p.Stages = append(p.Stages, s)
	}
	factory, err := man.Opt.Factory()
	if err != nil {
		return nil, err
	}
	return NewExecutor(p, net, factory, ExecOptions{
		Policy: schedule.Policy(man.Policy), Recompute: man.Recompute, NoTrace: true,
		BucketBytes: man.BucketBytes, MonolithicAllReduce: man.MonolithicAR,
		Dist: &DistConfig{Transport: w.dataTransport(), Rank: w.rank, DeviceRanks: man.DeviceRanks},
	})
}

// restoreExecState distributes a full-network optimizer state into the
// executor's hosted replicas, slicing the global per-parameter vectors down
// to each stage's parameter range.
func restoreExecState(exec *Executor, man *Manifest, net *nn.Network, optStep int, slots [][][]float64) error {
	offs := layerParamOffsets(net)
	for si, ss := range man.Stages {
		plo, phi := offs[ss.Lo], offs[ss.Hi]
		if plo == phi {
			continue
		}
		sub := make([][][]float64, len(slots))
		for s := range slots {
			sub[s] = slots[s][plo:phi]
		}
		for r := range ss.Devices {
			if !exec.HostsReplica(si, r) {
				continue
			}
			st, ok := exec.StageOptimizer(si, r).(nn.Stateful)
			if !ok {
				continue
			}
			if err := st.RestoreState(exec.StageParams(si, r), nn.OptState{Step: optStep, Slots: sub}); err != nil {
				return fmt.Errorf("train: stage %d replica %d optimizer restore: %w", si, r, err)
			}
		}
	}
	return nil
}

// layerParamOffsets returns, per layer boundary, the number of parameters in
// all earlier layers — mapping a stage's layer range to its global parameter
// range.
func layerParamOffsets(net *nn.Network) []int {
	offs := make([]int, len(net.Layers)+1)
	for i, l := range net.Layers {
		offs[i+1] = offs[i] + len(l.Params())
	}
	return offs
}

// sendSnapshot ships this rank's share of a consistent snapshot: for every
// stage whose primary (lowest-hosting) rank this is, the stage's weights and
// optimizer state from its first hosted replica, then the ack. Called only
// between steps, so the state is a clean step boundary by construction.
func (w *Worker) sendSnapshot(env envelope) error {
	coord := w.coordRank()
	offs := layerParamOffsets(w.net)
	nparams := offs[len(offs)-1]
	optStep := 0
	for si, ss := range w.man.Stages {
		primary := w.rank + 1
		for _, d := range ss.Devices {
			if r := w.man.DeviceRanks[d]; primary > r {
				primary = r
			}
		}
		if primary != w.rank {
			continue
		}
		replica := -1
		for r := range ss.Devices {
			if w.exec.HostsReplica(si, r) {
				replica = r
				break
			}
		}
		if replica < 0 {
			return fmt.Errorf("train: snapshot: stage %d has no hosted replica on primary rank %d", si, w.rank)
		}
		params := w.exec.StageParams(si, replica)
		plo := offs[ss.Lo]
		for j, p := range params {
			if err := w.t.SendTensor(coord, tensSnapW, plo+j, p.W); err != nil {
				return err
			}
		}
		if st, ok := w.exec.StageOptimizer(si, replica).(nn.Stateful); ok {
			state := st.CaptureState(params)
			if state.Step > optStep {
				optStep = state.Step
			}
			for s, slot := range state.Slots {
				for j, vec := range slot {
					m := &tensor.Matrix{Rows: params[j].W.Rows, Cols: params[j].W.Cols, Data: vec}
					if err := w.t.SendTensor(coord, tensSnapS, s*nparams+plo+j, m); err != nil {
						return err
					}
				}
			}
		}
	}
	return sendEnvelope(w.t, coord, envelope{Kind: ctrlSnapAck, Step: env.Step, OptStep: optStep})
}

// reconfig rebuilds the session onto a recovery manifest: retire the torn
// transport generation, drain stale tensors up to the coordinator's flush
// marker, then rebuild the executor — from the restored state broadcast, or
// from the checkpoint stream when the reconfig announces one (this rank
// joined mid-session and holds no prior state). Death verdicts pause for the
// duration: peers rebuilding alongside are legitimately silent.
func (w *Worker) reconfig(ctx context.Context, env envelope) error {
	if env.Manifest == nil {
		return fmt.Errorf("train: reconfig without manifest")
	}
	man := env.Manifest
	w.man = man
	w.hb.Suspend()
	defer w.hb.Resume()
	w.t.Retire(man.Epoch)
	for w.flushSeen < int(man.Epoch) {
		tm, err := recvTensor(ctx, w.t)
		if err != nil {
			return err
		}
		if tm.Class == tensFlush {
			w.flushSeen = tm.Index
		}
		w.t.RecycleTensor(tm.Data)
	}
	var err error
	if env.CkptBytes > 0 {
		err = w.buildSessionFromCkpt(ctx, man, env.CkptBytes)
	} else {
		err = w.buildSession(ctx, man)
	}
	if err != nil && man.Survivable && errors.Is(err, transport.ErrPeerDown) {
		// A manifest peer (a joiner, typically) died while this rank was
		// rebuilding around it: report the evidence and stay alive — the
		// coordinator's next round re-plans without the corpse.
		return w.stepFailed(env.Step, err)
	}
	return err
}

// runStep receives one step's micro-batches and executes the local share of
// the plan, watching the control plane throughout so a peer's abort or a
// recovery reconfig cancels a step blocked on cross-process transfers. In a
// survivable session an executor failure is reported with death evidence
// and survived (the worker waits for the coordinator's verdict); the
// returned envelope, when non-nil, is a reconfig that interrupted the step
// and must be processed next.
func (w *Worker) runStep(ctx context.Context, env envelope) (*envelope, error) {
	coord := w.coordRank()
	micros := w.microBuf[:0]
	for mb := 0; mb < env.M; mb++ {
		x, err := recvTensor(ctx, w.t)
		if err != nil {
			return nil, err
		}
		if x.Class == tensFlush {
			// A recovery started while this step's tensors were in flight:
			// abandon the step; the reconfig envelope is already queued.
			w.flushSeen = x.Index
			w.t.RecycleTensor(x.Data)
			w.recycleMicros(micros)
			return nil, nil
		}
		y, err := recvTensor(ctx, w.t)
		if err != nil {
			return nil, err
		}
		if y.Class == tensFlush {
			w.flushSeen = y.Index
			w.t.RecycleTensor(x.Data)
			w.t.RecycleTensor(y.Data)
			w.recycleMicros(micros)
			return nil, nil
		}
		if x.Class != tensX || y.Class != tensY || x.Index != mb || y.Index != mb {
			return nil, fmt.Errorf("train: step %d micro %d arrived out of order", env.Step, mb)
		}
		labels := w.leaseLabels(mb, y.Data.Rows)
		for i := range labels {
			labels[i] = int(y.Data.Data[i])
		}
		w.t.RecycleTensor(y.Data)
		micros = append(micros, Batch{X: x.Data, Y: labels})
	}
	w.microBuf = micros[:0]
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		res *ExecResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := w.exec.StepContext(sctx, micros)
		done <- outcome{res, err}
	}()
	var aborted error
	var next *envelope
	select {
	case out := <-done:
		// The executor has returned; its input leases can go back to the
		// reader pumps.
		w.recycleMicros(micros)
		if out.err != nil {
			return nil, w.stepFailed(env.Step, out.err)
		}
		return nil, sendEnvelope(w.t, coord, envelope{
			Kind: ctrlStepDone, Step: env.Step, Loss: out.res.Loss,
			CommS: sum(out.res.CommSeconds), WaitS: sum(out.res.CommWaitSeconds),
		})
	case cm := <-w.t.Ctrl():
		// The coordinator interrupted the step: a relayed abort, a recovery
		// reconfig, or something unexpected (equally fatal). Cancel the
		// local step so its workers unblock from cross-process receives.
		var e envelope
		err := json.Unmarshal(cm.Data, &e)
		w.t.RecycleCtrl(cm.Data)
		if err == nil && e.Kind == ctrlReconfig {
			next = &e
		} else if err == nil && e.Kind == ctrlAbort {
			aborted = fmt.Errorf("train: session aborted by coordinator: %s", e.Err)
		} else {
			aborted = fmt.Errorf("train: unexpected control frame from rank %d mid-step", cm.Peer)
		}
	case <-w.t.Done():
		aborted = w.t.Err()
	case <-ctx.Done():
		aborted = ctx.Err()
	}
	cancel()
	<-done // the executor must be fully quiescent before moving on
	w.recycleMicros(micros)
	return next, aborted
}

// leaseLabels returns micro mb's reusable label staging, grown to rows.
func (w *Worker) leaseLabels(mb, rows int) []int {
	for mb >= len(w.labelBuf) {
		w.labelBuf = append(w.labelBuf, nil)
	}
	if cap(w.labelBuf[mb]) < rows {
		w.labelBuf[mb] = make([]int, rows)
	}
	w.labelBuf[mb] = w.labelBuf[mb][:rows]
	return w.labelBuf[mb]
}

// recycleMicros returns a torn or consumed step's input leases to the
// transport's reader pumps.
func (w *Worker) recycleMicros(micros []Batch) {
	for _, b := range micros {
		w.t.RecycleTensor(b.X)
	}
}

// stepFailed reports an executor failure. In a survivable session the
// report carries the ranks this worker saw die and the worker stays alive
// for the coordinator's recovery; otherwise the failure ends the worker,
// preserving fail-stop semantics.
func (w *Worker) stepFailed(step int, cause error) error {
	coord := w.coordRank()
	if !w.man.Survivable {
		sendEnvelope(w.t, coord, envelope{Kind: ctrlAbort, Step: step, Err: cause.Error()}) //nolint:errcheck // best-effort on a dying session
		return cause
	}
	downs, _ := w.t.PeerDowns()
	evidence := make([]int, 0, len(downs))
	for _, r := range downs {
		if r != coord {
			evidence = append(evidence, r)
		}
	}
	err := sendEnvelope(w.t, coord, envelope{Kind: ctrlAbort, Step: step, Err: cause.Error(), Down: evidence})
	if err != nil {
		return err
	}
	return nil // await the coordinator's reconfig or abort
}
