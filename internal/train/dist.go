package train

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"time"

	"dapple/internal/core"
	"dapple/internal/hardware"
	"dapple/internal/model"
	"dapple/internal/nn"
	"dapple/internal/schedule"
	"dapple/internal/tensor"
	"dapple/internal/transport"
)

// The distributed session protocol: a coordinator process (mesh rank W for W
// workers) drives worker processes (ranks 0..W-1) through a fail-stop
// lockstep. Control messages are JSON envelopes on the transport's control
// plane; bulk data (initial weights, per-step micro-batches) travels as
// out-of-band tensor frames on the same connections, so per-peer FIFO order
// makes every wait deterministic. The handshake is manifest → weight
// broadcast → weights-done → ready; each step is step → micro-batch tensors
// → step-done, and the coordinator gates step k+1 on every worker's step-k
// report. Any failure anywhere — a worker error, a torn connection, a
// coordinator abort — ends the session: there is no rejoin, which is what
// keeps torn cross-process weight updates impossible.
const (
	ctrlManifest    = "manifest"
	ctrlWeightsDone = "weights-done"
	ctrlReady       = "ready"
	ctrlStep        = "step"
	ctrlStepDone    = "step-done"
	ctrlAbort       = "abort"
	ctrlShutdown    = "shutdown"
	ctrlShutdownAck = "shutdown-ack"
)

// Tensor classes multiplexed on the session mesh's out-of-band tensor plane.
const (
	tensWeight = 1 // initial weight broadcast, Index = position in Params()
	tensX      = 2 // one micro-batch's input rows, Index = micro-batch id
	tensY      = 3 // one micro-batch's labels as a rows×1 matrix
)

// LayerSpec describes one nn layer structurally, enough for a worker to
// rebuild the master network's skeleton before the weight broadcast fills it.
type LayerSpec struct {
	// Kind is "dense", "relu" or "tanh".
	Kind string `json:"kind"`
	// In and Out are the dense layer's dimensions (zero for activations).
	In  int `json:"in,omitempty"`
	Out int `json:"out,omitempty"`
}

// OptSpec names the optimizer every replica instantiates, so all processes
// apply identical update rules to identical gradients.
type OptSpec struct {
	// Kind is "sgd", "momentum" or "adam".
	Kind string `json:"kind"`
	// LR is the learning rate.
	LR float64 `json:"lr"`
	// Beta is the momentum coefficient (momentum only).
	Beta float64 `json:"beta,omitempty"`
}

// Factory returns the optimizer constructor the spec names.
func (o OptSpec) Factory() (func() nn.Optimizer, error) {
	switch o.Kind {
	case "sgd":
		return func() nn.Optimizer { return nn.SGD{LR: o.LR} }, nil
	case "momentum":
		return func() nn.Optimizer { return nn.NewMomentum(o.LR, o.Beta) }, nil
	case "adam":
		return func() nn.Optimizer { return nn.NewAdam(o.LR) }, nil
	default:
		return nil, fmt.Errorf("train: unknown optimizer %q", o.Kind)
	}
}

// stageSpec is one plan stage in wire form.
type stageSpec struct {
	Lo      int   `json:"lo"`
	Hi      int   `json:"hi"`
	Devices []int `json:"devices"`
}

// Manifest is the session description the coordinator hands every worker:
// everything needed to reconstruct the plan and the network skeleton and to
// place itself in the mesh. Weights are NOT in the manifest — they follow as
// tensor frames so the JSON stays small.
type Manifest struct {
	// Model and Cluster rebind the plan on the worker side.
	Model   model.Model      `json:"model"`
	Cluster hardware.Cluster `json:"cluster"`
	// Stages, GBS and MicroBatch complete the plan.
	Stages     []stageSpec `json:"stages"`
	GBS        int         `json:"gbs"`
	MicroBatch int         `json:"microBatch"`
	// Policy and Recompute mirror ExecOptions.
	Policy    int  `json:"policy"`
	Recompute bool `json:"recompute"`
	// Net is the network skeleton; Opt the shared optimizer.
	Net []LayerSpec `json:"net"`
	Opt OptSpec     `json:"opt"`
	// DeviceRanks maps every cluster device to its hosting worker rank.
	DeviceRanks []int `json:"deviceRanks"`
	// Workers is the worker count; the coordinator is mesh rank Workers.
	Workers int `json:"workers"`
}

// envelope is the one wire shape of every control message; Kind selects
// which fields matter.
type envelope struct {
	Kind     string    `json:"kind"`
	Step     int       `json:"step,omitempty"`
	M        int       `json:"m,omitempty"`
	Loss     float64   `json:"loss,omitempty"`
	Err      string    `json:"err,omitempty"`
	Manifest *Manifest `json:"manifest,omitempty"`
}

// NetSpec extracts the structural skeleton of a network for the manifest.
func NetSpec(n *nn.Network) ([]LayerSpec, error) {
	spec := make([]LayerSpec, 0, n.NumLayers())
	for _, l := range n.Layers {
		switch d := l.(type) {
		case *nn.Dense:
			spec = append(spec, LayerSpec{Kind: "dense", In: d.W.Rows, Out: d.W.Cols})
		case nn.ReLU:
			spec = append(spec, LayerSpec{Kind: "relu"})
		case nn.Tanh:
			spec = append(spec, LayerSpec{Kind: "tanh"})
		default:
			return nil, fmt.Errorf("train: layer %T has no wire spec", l)
		}
	}
	return spec, nil
}

// BuildNet constructs the skeleton a spec describes. Dense weights are
// placeholders until the coordinator's broadcast overwrites them.
func BuildNet(spec []LayerSpec) (*nn.Network, error) {
	rng := rand.New(rand.NewSource(0))
	net := &nn.Network{}
	for _, ls := range spec {
		switch ls.Kind {
		case "dense":
			if ls.In <= 0 || ls.Out <= 0 {
				return nil, fmt.Errorf("train: dense layer with shape %dx%d", ls.In, ls.Out)
			}
			net.Layers = append(net.Layers, nn.NewDense(ls.In, ls.Out, rng))
		case "relu":
			net.Layers = append(net.Layers, nn.ReLU{})
		case "tanh":
			net.Layers = append(net.Layers, nn.Tanh{})
		default:
			return nil, fmt.Errorf("train: unknown layer kind %q", ls.Kind)
		}
	}
	return net, nil
}

// sendEnvelope JSON-encodes and ships one control message.
func sendEnvelope(t *transport.TCP, peer int, env envelope) error {
	raw, err := json.Marshal(env)
	if err != nil {
		return err
	}
	return t.SendControl(peer, raw)
}

// recvEnvelope blocks for the next control message, decoding it; it fails
// when the transport dies or ctx ends, so protocol waits are never stranded.
func recvEnvelope(ctx context.Context, t *transport.TCP) (int, envelope, error) {
	select {
	case cm := <-t.Ctrl():
		var env envelope
		if err := json.Unmarshal(cm.Data, &env); err != nil {
			return cm.Peer, envelope{}, fmt.Errorf("train: bad control frame from rank %d: %w", cm.Peer, err)
		}
		return cm.Peer, env, nil
	case <-t.Done():
		// Drain messages demuxed before the transport died: a shutdown
		// that raced a peer's teardown must still be seen as a shutdown.
		select {
		case cm := <-t.Ctrl():
			var env envelope
			if err := json.Unmarshal(cm.Data, &env); err == nil {
				return cm.Peer, env, nil
			}
		default:
		}
		return -1, envelope{}, t.Err()
	case <-ctx.Done():
		return -1, envelope{}, ctx.Err()
	}
}

// recvTensor blocks for the next out-of-band tensor frame.
func recvTensor(ctx context.Context, t *transport.TCP) (transport.TensorMsg, error) {
	select {
	case tm := <-t.Tensors():
		return tm, nil
	case <-t.Done():
		return transport.TensorMsg{}, t.Err()
	case <-ctx.Done():
		return transport.TensorMsg{}, ctx.Err()
	}
}

// Coordinator drives a multi-process training session from the non-worker
// side: it owns no devices, ships the manifest, the initial weights and each
// step's micro-batches to every worker, and gates each step on all workers'
// reports. The session is fail-stop: the first error anywhere ends it.
type Coordinator struct {
	t       *transport.TCP
	workers int
	step    int
	failed  error
}

// NewCoordinator performs the session handshake over an already-connected
// mesh (t must be dialed to worker ranks 0..workers-1 with rank workers):
// manifest to every worker, master weight broadcast in Params() order,
// weights-done, then a ready barrier. On return every worker holds an
// executor with identical weights and the session is ready to Step.
func NewCoordinator(ctx context.Context, t *transport.TCP, p *core.Plan, master *nn.Network, opt OptSpec, eo ExecOptions, deviceRanks []int, workers int) (*Coordinator, error) {
	net, err := NetSpec(master)
	if err != nil {
		return nil, err
	}
	if _, err := opt.Factory(); err != nil {
		return nil, err
	}
	if n := p.Cluster.NumDevices(); len(deviceRanks) < n {
		return nil, fmt.Errorf("train: device-rank map covers %d of %d devices", len(deviceRanks), n)
	}
	man := &Manifest{
		Model: *p.Model, Cluster: p.Cluster,
		GBS: p.GBS, MicroBatch: p.MicroBatch,
		Policy: int(eo.Policy), Recompute: eo.Recompute,
		Net: net, Opt: opt, DeviceRanks: deviceRanks, Workers: workers,
	}
	for _, s := range p.Stages {
		ss := stageSpec{Lo: s.Lo, Hi: s.Hi}
		for _, d := range s.Devices {
			ss.Devices = append(ss.Devices, int(d))
		}
		man.Stages = append(man.Stages, ss)
	}
	c := &Coordinator{t: t, workers: workers}
	params := master.Params()
	for w := 0; w < workers; w++ {
		if err := sendEnvelope(t, w, envelope{Kind: ctrlManifest, Manifest: man}); err != nil {
			return nil, err
		}
		for i, pr := range params {
			if err := t.SendTensor(w, tensWeight, i, pr.W); err != nil {
				return nil, err
			}
		}
		if err := sendEnvelope(t, w, envelope{Kind: ctrlWeightsDone}); err != nil {
			return nil, err
		}
	}
	for seen := 0; seen < workers; seen++ {
		peer, env, err := recvEnvelope(ctx, t)
		if err != nil {
			return nil, err
		}
		if env.Kind != ctrlReady {
			return nil, fmt.Errorf("train: rank %d sent %q during handshake: %s", peer, env.Kind, env.Err)
		}
	}
	return c, nil
}

// Step runs one distributed training iteration: micro-batches to every
// worker, then a barrier on all step reports. The returned loss is the sum
// of the workers' last-stage partial losses — the same micro-batch-averaged
// cross-entropy a single-process ExecResult reports. After any error the
// session is dead and every later Step fails immediately.
func (c *Coordinator) Step(ctx context.Context, micros []Batch) (float64, error) {
	if c.failed != nil {
		return 0, c.failed
	}
	step := c.step
	c.step++
	for w := 0; w < c.workers; w++ {
		if err := c.send(w, step, micros); err != nil {
			return 0, c.fail(err)
		}
	}
	var loss float64
	for seen := 0; seen < c.workers; seen++ {
		peer, env, err := recvEnvelope(ctx, c.t)
		if err != nil {
			return 0, c.fail(err)
		}
		switch env.Kind {
		case ctrlStepDone:
			if env.Step != step {
				return 0, c.fail(fmt.Errorf("train: rank %d reported step %d during step %d", peer, env.Step, step))
			}
			loss += env.Loss
		case ctrlAbort:
			return 0, c.fail(fmt.Errorf("train: rank %d aborted step %d: %s", peer, step, env.Err))
		default:
			return 0, c.fail(fmt.Errorf("train: rank %d sent %q during step %d", peer, env.Kind, step))
		}
	}
	return loss, nil
}

// send ships one step announcement and its micro-batches to worker w. Labels
// travel as a rows×1 float64 matrix beside each input block.
func (c *Coordinator) send(w, step int, micros []Batch) error {
	if err := sendEnvelope(c.t, w, envelope{Kind: ctrlStep, Step: step, M: len(micros)}); err != nil {
		return err
	}
	for mb, b := range micros {
		if err := c.t.SendTensor(w, tensX, mb, b.X); err != nil {
			return err
		}
		y := tensor.New(len(b.Y), 1)
		for i, v := range b.Y {
			y.Data[i] = float64(v)
		}
		if err := c.t.SendTensor(w, tensY, mb, y); err != nil {
			return err
		}
	}
	return nil
}

// fail latches the session's first error, tells every worker to abort, and
// tears the mesh down.
func (c *Coordinator) fail(err error) error {
	if c.failed == nil {
		c.failed = err
		for w := 0; w < c.workers; w++ {
			sendEnvelope(c.t, w, envelope{Kind: ctrlAbort, Err: err.Error()}) //nolint:errcheck // best-effort on a dying session
		}
		c.t.Close()
	}
	return c.failed
}

// Close ends a healthy session: shutdown to every worker, a barrier on
// their acks (so no worker is still mid-read when the connections drop),
// then the mesh.
func (c *Coordinator) Close() error {
	if c.failed != nil {
		return nil
	}
	for w := 0; w < c.workers; w++ {
		if err := sendEnvelope(c.t, w, envelope{Kind: ctrlShutdown}); err != nil {
			return c.t.Close()
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for seen := 0; seen < c.workers; seen++ {
		if _, env, err := recvEnvelope(ctx, c.t); err != nil || env.Kind != ctrlShutdownAck {
			break
		}
	}
	return c.t.Close()
}

// Worker is one rank of a multi-process session: it receives the manifest
// and weights, hosts its share of stage replicas in an Executor, and runs
// coordinator-gated steps until shutdown.
type Worker struct {
	t    *transport.TCP
	rank int

	exec *Executor
	man  *Manifest
}

// NewWorker wraps an already-connected mesh (rank set, peers dialed) as a
// session worker.
func NewWorker(t *transport.TCP, rank int) *Worker {
	return &Worker{t: t, rank: rank}
}

// Executor returns the worker's executor, nil before the handshake.
func (w *Worker) Executor() *Executor { return w.exec }

// Serve runs the worker side of the session protocol until shutdown (nil),
// session failure, or ctx cancellation. It must be called once, after the
// mesh is fully connected.
func (w *Worker) Serve(ctx context.Context) error {
	if err := w.handshake(ctx); err != nil {
		return err
	}
	coord := w.man.Workers
	for {
		peer, env, err := recvEnvelope(ctx, w.t)
		if err != nil {
			return err
		}
		if peer != coord {
			return fmt.Errorf("train: control frame from non-coordinator rank %d", peer)
		}
		switch env.Kind {
		case ctrlStep:
			if err := w.runStep(ctx, env); err != nil {
				return err
			}
		case ctrlShutdown:
			// Ack before returning: the coordinator holds its connections
			// open until every worker confirms it is out of the protocol.
			sendEnvelope(w.t, coord, envelope{Kind: ctrlShutdownAck}) //nolint:errcheck // session is over either way
			return nil
		case ctrlAbort:
			return fmt.Errorf("train: session aborted by coordinator: %s", env.Err)
		default:
			return fmt.Errorf("train: unexpected %q from coordinator", env.Kind)
		}
	}
}

// handshake consumes the manifest, rebuilds the plan and network, fills the
// weights from the broadcast, constructs the executor and reports ready.
func (w *Worker) handshake(ctx context.Context) error {
	_, env, err := recvEnvelope(ctx, w.t)
	if err != nil {
		return err
	}
	if env.Kind != ctrlManifest || env.Manifest == nil {
		return fmt.Errorf("train: worker expected manifest, got %q", env.Kind)
	}
	man := env.Manifest
	w.man = man
	// The manifest reveals the full mesh (workers 0..W-1 plus the
	// coordinator at W); wait for every connection before building the
	// executor so edge and group sends never race the dial-in of a
	// slower-starting peer.
	peers := make([]int, 0, man.Workers)
	for r := 0; r <= man.Workers; r++ {
		if r != w.rank {
			peers = append(peers, r)
		}
	}
	if err := w.t.WaitPeers(ctx, peers); err != nil {
		return err
	}
	mdl := man.Model
	p := &core.Plan{Model: &mdl, Cluster: man.Cluster, GBS: man.GBS, MicroBatch: man.MicroBatch}
	for _, ss := range man.Stages {
		s := core.Stage{Lo: ss.Lo, Hi: ss.Hi}
		for _, d := range ss.Devices {
			s.Devices = append(s.Devices, hardware.DeviceID(d))
		}
		p.Stages = append(p.Stages, s)
	}
	net, err := BuildNet(man.Net)
	if err != nil {
		return err
	}
	params := net.Params()
	for i := range params {
		tm, err := recvTensor(ctx, w.t)
		if err != nil {
			return err
		}
		if tm.Class != tensWeight || tm.Index != i {
			return fmt.Errorf("train: weight broadcast out of order (class %d index %d, want %d)", tm.Class, tm.Index, i)
		}
		if tm.Data.Rows != params[i].W.Rows || tm.Data.Cols != params[i].W.Cols {
			return fmt.Errorf("train: weight %d is %dx%d, skeleton wants %dx%d",
				i, tm.Data.Rows, tm.Data.Cols, params[i].W.Rows, params[i].W.Cols)
		}
		copy(params[i].W.Data, tm.Data.Data)
	}
	if _, env, err = recvEnvelope(ctx, w.t); err != nil {
		return err
	}
	if env.Kind != ctrlWeightsDone {
		return fmt.Errorf("train: worker expected weights-done, got %q", env.Kind)
	}
	factory, err := man.Opt.Factory()
	if err != nil {
		return err
	}
	w.exec, err = NewExecutor(p, net, factory, ExecOptions{
		Policy: schedule.Policy(man.Policy), Recompute: man.Recompute, NoTrace: true,
		Dist: &DistConfig{Transport: w.t, Rank: w.rank, DeviceRanks: man.DeviceRanks},
	})
	if err != nil {
		sendEnvelope(w.t, man.Workers, envelope{Kind: ctrlAbort, Err: err.Error()}) //nolint:errcheck // best-effort before failing
		return err
	}
	return sendEnvelope(w.t, man.Workers, envelope{Kind: ctrlReady})
}

// runStep receives one step's micro-batches and executes the local share of
// the plan, watching the control plane throughout so a peer's abort (relayed
// by the coordinator) cancels a step blocked on cross-process transfers.
func (w *Worker) runStep(ctx context.Context, env envelope) error {
	coord := w.man.Workers
	micros := make([]Batch, env.M)
	for mb := 0; mb < env.M; mb++ {
		x, err := recvTensor(ctx, w.t)
		if err != nil {
			return err
		}
		y, err := recvTensor(ctx, w.t)
		if err != nil {
			return err
		}
		if x.Class != tensX || y.Class != tensY || x.Index != mb || y.Index != mb {
			return fmt.Errorf("train: step %d micro %d arrived out of order", env.Step, mb)
		}
		labels := make([]int, y.Data.Rows)
		for i := range labels {
			labels[i] = int(y.Data.Data[i])
		}
		micros[mb] = Batch{X: x.Data, Y: labels}
	}
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		res *ExecResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := w.exec.StepContext(sctx, micros)
		done <- outcome{res, err}
	}()
	var aborted error
	select {
	case out := <-done:
		if out.err != nil {
			sendEnvelope(w.t, coord, envelope{Kind: ctrlAbort, Step: env.Step, Err: out.err.Error()}) //nolint:errcheck // best-effort on a dying session
			return out.err
		}
		return sendEnvelope(w.t, coord, envelope{Kind: ctrlStepDone, Step: env.Step, Loss: out.res.Loss})
	case cm := <-w.t.Ctrl():
		// A peer failed mid-step and the coordinator relayed the abort (or
		// sent something unexpected — equally fatal). Cancel the local step
		// so its workers unblock from cross-process receives.
		var e envelope
		if err := json.Unmarshal(cm.Data, &e); err == nil && e.Kind == ctrlAbort {
			aborted = fmt.Errorf("train: session aborted by coordinator: %s", e.Err)
		} else {
			aborted = fmt.Errorf("train: unexpected control frame from rank %d mid-step", cm.Peer)
		}
	case <-w.t.Done():
		aborted = w.t.Err()
	case <-ctx.Done():
		aborted = ctx.Err()
	}
	cancel()
	<-done // the executor must be fully quiescent before Serve returns
	return aborted
}
