// Package train is the real concurrent training runtime: goroutines are
// devices, channels are interconnects. It executes the same schedules the
// simulator models — sequential accumulation, data parallelism with a real
// ring all-reduce, and GPipe/DAPPLE pipelines with split/concat stage
// replication — on genuine gradient math (packages tensor, nn), which is how
// this reproduction *proves* the paper's claim that DAPPLE scheduling yields
// gradients equivalent to sequential execution.
package train

import "sync"

// RingAllReduce sums the participants' equal-length vectors in place using
// the standard ring algorithm: n-1 reduce-scatter steps followed by n-1
// all-gather steps, each participant running as its own goroutine and
// exchanging chunks over channels. On return every buffer holds the
// element-wise sum.
func RingAllReduce(bufs [][]float64) {
	n := len(bufs)
	if n <= 1 {
		return
	}
	size := len(bufs[0])
	for _, b := range bufs[1:] {
		if len(b) != size {
			panic("train: ring all-reduce buffers differ in length")
		}
	}
	if size == 0 {
		return
	}
	newRingState(n, size).allReduce(bufs)
}

// ringState is the reusable scratch of one ring all-reduce group: the ring
// channels plus per-rank chunk transfer buffers, sized once so a steady-state
// training iteration synchronizes gradients without allocating.
//
// Each rank rotates through three send buffers. Three is the minimum safe
// depth for the cap-1 ring channels: by the Go memory model, the receive of
// message k happens-before the completion of send k+1, so by the time a rank
// copies message j+3 into the slot message j used, its neighbor has received
// message j+1 — which, in the neighbor's program order, is after it finished
// reading message j. Two slots would leave the copy racing the neighbor's
// reads.
type ringState struct {
	n, size int
	ch      []chan []float64 // ch[i] carries chunks from rank i to (i+1) mod n
	out     [][]float64      // 3 rotating send-scratch chunks per rank
}

// newRingState builds scratch for n participants with size-element vectors.
func newRingState(n, size int) *ringState {
	rs := &ringState{
		n: n, size: size,
		ch:  make([]chan []float64, n),
		out: make([][]float64, 3*n),
	}
	maxChunk := (size + n - 1) / n
	for i := range rs.ch {
		rs.ch[i] = make(chan []float64, 1)
	}
	for i := range rs.out {
		rs.out[i] = make([]float64, maxChunk)
	}
	return rs
}

// chunk returns the [lo, hi) bounds of chunk c.
func (rs *ringState) chunk(c int) (int, int) {
	base, extra := rs.size/rs.n, rs.size%rs.n
	lo := c*base + min(c, extra)
	sz := base
	if c < extra {
		sz++
	}
	return lo, lo + sz
}

// allReduce runs the ring over bufs (len n, each size elements) reusing the
// state's channels and chunk scratch. The channels are drained on return, so
// consecutive calls may share one state; concurrent calls may not.
func (rs *ringState) allReduce(bufs [][]float64) {
	n := rs.n
	var wg sync.WaitGroup
	for rank := 0; rank < n; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			buf := bufs[rank]
			send := rs.ch[rank]
			recv := rs.ch[(rank-1+n)%n]

			// Reduce-scatter: after step s, rank owns the full sum of chunk
			// (rank+1) mod n at the end.
			for s := 0; s < n-1; s++ {
				c := (rank - s + n) % n
				lo, hi := rs.chunk(c)
				out := rs.out[3*rank+s%3][:hi-lo]
				copy(out, buf[lo:hi])
				send <- out
				in := <-recv
				c2 := (rank - s - 1 + n) % n
				lo2, _ := rs.chunk(c2)
				for i, v := range in {
					buf[lo2+i] += v
				}
			}
			// All-gather: circulate the completed chunks.
			for s := 0; s < n-1; s++ {
				c := (rank + 1 - s + n) % n
				lo, hi := rs.chunk(c)
				out := rs.out[3*rank+(n-1+s)%3][:hi-lo]
				copy(out, buf[lo:hi])
				send <- out
				in := <-recv
				c2 := (rank - s + n) % n
				lo2, _ := rs.chunk(c2)
				copy(buf[lo2:lo2+len(in)], in)
			}
		}(rank)
	}
	wg.Wait()
}
