// Package train is the real concurrent training runtime: goroutines are
// devices, channels are interconnects, and with the TCP transport backend
// worker processes are servers. It executes the same schedules the
// simulator models — sequential accumulation, data parallelism with a real
// ring all-reduce, and GPipe/DAPPLE pipelines with split/concat stage
// replication — on genuine gradient math (packages tensor, nn), which is how
// this reproduction *proves* the paper's claim that DAPPLE scheduling yields
// gradients equivalent to sequential execution.
package train

import (
	"sync"

	"dapple/internal/hardware"
	"dapple/internal/transport"
)

// RingAllReduce sums the participants' equal-length vectors in place using
// the standard ring algorithm: n-1 reduce-scatter steps followed by n-1
// all-gather steps, each participant running as its own goroutine and
// exchanging chunks over channels. On return every buffer holds the
// element-wise sum.
func RingAllReduce(bufs [][]float64) {
	n := len(bufs)
	if n <= 1 {
		return
	}
	size := len(bufs[0])
	for _, b := range bufs[1:] {
		if len(b) != size {
			panic("train: ring all-reduce buffers differ in length")
		}
	}
	if size == 0 {
		return
	}
	transport.NewRing(n, size).AllReduce(bufs)
}

// serverGroups maps a replica group's devices onto the cluster topology:
// the replica indices grouped by hosting server, in replica order. It
// returns nil unless the group both spans servers and co-locates at least
// two replicas on some server — the exact condition under which the paper's
// hierarchical all-reduce (§III) beats a flat ring, and the degenerate
// cases (single server, or one replica per server) where the hierarchy
// collapses to the flat algorithm anyway.
func serverGroups(c hardware.Cluster, devs []hardware.DeviceID) [][]int {
	if c.GPUsPerServer <= 0 {
		return nil
	}
	var groups [][]int
	bySrv := make(map[int]int)
	maxLen := 0
	for r, d := range devs {
		srv := c.Server(d)
		gi, ok := bySrv[srv]
		if !ok {
			gi = len(groups)
			bySrv[srv] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], r)
		if len(groups[gi]) > maxLen {
			maxLen = len(groups[gi])
		}
	}
	if len(groups) < 2 || maxLen < 2 {
		return nil
	}
	return groups
}

// arGroup synchronizes one stage's replica gradients at iteration end.
// Every locally hosted replica worker reports to the group exactly once per
// step — arrive with its flattened gradients on success, abandon on any
// failure — and the last local report decides the stage's fate atomically:
// if all arrived, the last one runs the collective and commits; if any
// replica abandoned, nobody local commits. Because the decision is taken
// once, with complete information, an aborted step can never apply a weight
// update on some local replicas but not others. (Across worker processes
// the commit is fail-stop instead: a step aborted mid-exchange ends the
// session, so torn cross-process commits are never trained on.) Waiters
// block on done alone (no abort select): every peer's error path leads to
// abandon, so done always closes. The group is reset — not reallocated —
// every step.
//
// The collective is chosen from the plan's topology: a flat in-process ring
// when the replicas sit on one server (or one per server, where the
// hierarchy degenerates); the paper §III hierarchical algorithm —
// intra-server reduce, cross-server exchange, intra-server broadcast — when
// the group spans servers with co-located replicas; and for stages spanning
// worker processes, a local member-order reduction followed by a
// cross-process exchange (transport.Group) and local broadcast, which is
// the same hierarchy with the process boundary as the server boundary.
type arGroup struct {
	mu      sync.Mutex
	bufs    [][]float64
	arrived int
	failed  bool
	commit  bool
	done    chan struct{}

	ring *transport.Ring
	hier *transport.Hier
	dist transport.Group
	acc  []float64 // dist: local member-order reduction scratch
	algo string
}

// newARGroup returns a reusable barrier for n locally hosted replicas of
// size-element gradient vectors. devs are the local replicas' devices (used
// with the cluster topology to pick the collective); dist is the
// cross-process exchange group for stages spanning workers, nil otherwise.
func newARGroup(n, size int, c hardware.Cluster, devs []hardware.DeviceID, dist transport.Group) *arGroup {
	g := &arGroup{bufs: make([][]float64, n), done: make(chan struct{}), algo: "none"}
	if size == 0 {
		// Parameter-free stage: nothing to sum, locally or remotely.
		return g
	}
	if dist != nil {
		g.dist = dist
		g.acc = make([]float64, size)
		g.algo = "hierarchical"
		return g
	}
	if n > 1 {
		if groups := serverGroups(c, devs); groups != nil {
			g.hier = transport.NewHier(groups, size)
			g.algo = "hierarchical"
		} else {
			g.ring = transport.NewRing(n, size)
			g.algo = "ring"
		}
	}
	return g
}

// algorithm names the collective the group selected ("none", "ring" or
// "hierarchical").
func (g *arGroup) algorithm() string { return g.algo }

// reset re-arms the barrier for the next step.
func (g *arGroup) reset() {
	g.arrived = 0
	g.failed = false
	g.commit = false
	g.done = make(chan struct{})
	for i := range g.bufs {
		g.bufs[i] = nil
	}
}

// abandon is a failed replica's report: it counts as the replica's arrival
// and vetoes the stage's commit, releasing any waiting peers.
func (g *arGroup) abandon() {
	g.mu.Lock()
	g.arrived++
	g.failed = true
	last := g.arrived == len(g.bufs)
	done := g.done
	g.mu.Unlock()
	if last {
		close(done)
	}
}

// arrive contributes local replica r's buf and blocks until every local
// replica has reported, returning whether the stage committed. On commit,
// every replica's buf holds the bit-identical all-reduced sum (across
// worker processes too, when the stage spans them).
func (g *arGroup) arrive(r int, buf []float64, abort <-chan struct{}) bool {
	n := len(g.bufs)
	if n == 1 && g.dist == nil {
		return true
	}
	g.mu.Lock()
	g.bufs[r] = buf
	g.arrived++
	last := g.arrived == n
	failed := g.failed
	done := g.done
	g.mu.Unlock()
	if last {
		if !failed && g.reduce(abort) {
			g.commit = true // written before close(done), read after it
		}
		close(done)
	} else {
		<-done
	}
	return g.commit
}

// reduce runs the selected collective over the arrived buffers, reporting
// whether it completed.
func (g *arGroup) reduce(abort <-chan struct{}) bool {
	switch {
	case g.dist != nil:
		// Local reduce in member order, cross-process exchange, local
		// broadcast — hierarchical with the process boundary as the server
		// boundary. The exchange sums worker contributions in rank order on
		// every rank, so the broadcast total is bit-identical everywhere.
		copy(g.acc, g.bufs[0])
		for _, b := range g.bufs[1:] {
			for k, v := range b {
				g.acc[k] += v
			}
		}
		if err := g.dist.AllReduce(g.acc, abort); err != nil {
			return false
		}
		for _, b := range g.bufs {
			copy(b, g.acc)
		}
	case g.hier != nil:
		g.hier.AllReduce(g.bufs)
	case g.ring != nil:
		g.ring.AllReduce(g.bufs)
	}
	return true
}
