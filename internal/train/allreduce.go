// Package train is the real concurrent training runtime: goroutines are
// devices, channels are interconnects, and with the TCP transport backend
// worker processes are servers. It executes the same schedules the
// simulator models — sequential accumulation, data parallelism with a real
// ring all-reduce, and GPipe/DAPPLE pipelines with split/concat stage
// replication — on genuine gradient math (packages tensor, nn), which is how
// this reproduction *proves* the paper's claim that DAPPLE scheduling yields
// gradients equivalent to sequential execution.
package train

import (
	"sync"
	"time"

	"dapple/internal/hardware"
	"dapple/internal/nn"
	"dapple/internal/tensor"
	"dapple/internal/transport"
)

// RingAllReduce sums the participants' equal-length vectors in place using
// the standard ring algorithm: n-1 reduce-scatter steps followed by n-1
// all-gather steps, each participant running as its own goroutine and
// exchanging chunks over channels. On return every buffer holds the
// element-wise sum.
func RingAllReduce(bufs [][]float64) {
	n := len(bufs)
	if n <= 1 {
		return
	}
	size := len(bufs[0])
	for _, b := range bufs[1:] {
		if len(b) != size {
			panic("train: ring all-reduce buffers differ in length")
		}
	}
	if size == 0 {
		return
	}
	transport.NewRing(n, size).AllReduce(bufs)
}

// serverGroups maps a replica group's devices onto the cluster topology:
// the replica indices grouped by hosting server, in replica order. It
// returns nil unless the group both spans servers and co-locates at least
// two replicas on some server — the exact condition under which the paper's
// hierarchical all-reduce (§III) beats a flat ring, and the degenerate
// cases (single server, or one replica per server) where the hierarchy
// collapses to the flat algorithm anyway.
func serverGroups(c hardware.Cluster, devs []hardware.DeviceID) [][]int {
	if c.GPUsPerServer <= 0 {
		return nil
	}
	var groups [][]int
	bySrv := make(map[int]int)
	maxLen := 0
	for r, d := range devs {
		srv := c.Server(d)
		gi, ok := bySrv[srv]
		if !ok {
			gi = len(groups)
			bySrv[srv] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], r)
		if len(groups[gi]) > maxLen {
			maxLen = len(groups[gi])
		}
	}
	if len(groups) < 2 || maxLen < 2 {
		return nil
	}
	return groups
}

// arGroup synchronizes one stage's replica gradients at iteration end.
// Every locally hosted replica worker reports to the group exactly once per
// step — arrive with its flattened gradients on success, abandon on any
// failure — and the last local report decides the stage's fate atomically:
// if all arrived, the last one runs the collective and commits; if any
// replica abandoned, nobody local commits. Because the decision is taken
// once, with complete information, an aborted step can never apply a weight
// update on some local replicas but not others. (Across worker processes
// the commit is fail-stop instead: a step aborted mid-exchange ends the
// session, so torn cross-process commits are never trained on.) Waiters
// block on done alone (no abort select): every peer's error path leads to
// abandon, so done always closes. The group is reset — not reallocated —
// every step.
//
// The collective is chosen from the plan's topology: a flat in-process ring
// when the replicas sit on one server (or one per server, where the
// hierarchy degenerates); the paper §III hierarchical algorithm —
// intra-server reduce, cross-server exchange, intra-server broadcast — when
// the group spans servers with co-located replicas; and for stages spanning
// worker processes, a local member-order reduction followed by a
// cross-process exchange (transport.Group) and local broadcast, which is
// the same hierarchy with the process boundary as the server boundary.
type arGroup struct {
	mu      sync.Mutex
	bufs    [][]float64
	arrived int
	failed  bool
	commit  bool
	done    chan struct{}

	ring *transport.Ring
	hier *transport.Hier
	dist transport.Group
	acc  []float64 // dist: local member-order reduction scratch
	algo string

	// Bucketed backward-time overlap state (empty in monolithic mode or when
	// the stage needs no collective). Buckets are layer-aligned sub-ranges of
	// the flattened gradient, each with its own collective instance; because
	// every collective accumulates in canonical participant order per
	// element, the concatenation of per-bucket sums is bit-identical to one
	// whole-vector reduction. Bucket collectives run on a per-step comm
	// goroutine (runComm) in arrival order, overlapping the replicas' still-
	// running backward compute; workers block only at the step-end waitBuckets.
	buckets     []arBucket
	layerBucket []int         // stage-local layer -> bucket whose range starts there, else -1
	reduceQ     chan int      // completed-bucket indices, cap len(buckets)
	commDone    chan struct{} // closed by runComm after every bucket resolved
	commNanos   int64         // collective busy time this step (comm goroutine only)
}

// bucketSpec is one layer-aligned gradient bucket: stage-local layers
// [LayerLo, LayerHi) whose parameters flatten to [Off, End) of the stage's
// gradient vector, parameter indices [PLo, PHi).
type bucketSpec struct {
	LayerLo, LayerHi int
	Off, End         int
	PLo, PHi         int
}

// arBucket is the per-step barrier-and-collective state of one bucket.
type arBucket struct {
	spec bucketSpec

	mu      sync.Mutex
	bufs    [][]float64 // per local replica: its gradBuf[Off:End] sub-slice
	seen    []bool      // per local replica: reported (arrive or abandon)
	arrived int
	failed  bool
	commit  bool // written by runComm before close(commDone), read after it

	ring *transport.Ring
	hier *transport.Hier
	dist transport.Group
	acc  []float64
}

// newARGroup returns a reusable barrier for n locally hosted replicas of
// size-element gradient vectors. devs are the local replicas' devices (used
// with the cluster topology to pick the collective); dist is the
// cross-process exchange group for stages spanning workers, nil otherwise.
func newARGroup(n, size int, c hardware.Cluster, devs []hardware.DeviceID, dist transport.Group) *arGroup {
	g := &arGroup{bufs: make([][]float64, n), done: make(chan struct{}), algo: "none"}
	if size == 0 {
		// Parameter-free stage: nothing to sum, locally or remotely.
		return g
	}
	if dist != nil {
		g.dist = dist
		g.acc = make([]float64, size)
		g.algo = "hierarchical"
		return g
	}
	if n > 1 {
		if groups := serverGroups(c, devs); groups != nil {
			g.hier = transport.NewHier(groups, size)
			g.algo = "hierarchical"
		} else {
			g.ring = transport.NewRing(n, size)
			g.algo = "ring"
		}
	}
	return g
}

// defaultBucketBytes is the target flattened size of one overlap bucket when
// ExecOptions.BucketBytes is zero — small enough that several buckets exist
// even on modest stages (so tail-layer gradients start synchronizing while
// head layers still compute), large enough to amortize per-bucket collective
// setup.
const defaultBucketBytes = 16 << 10

// maxBuckets bounds the per-stage bucket count so huge stages with tiny
// BucketBytes settings cannot explode the number of collective instances
// (and, across worker processes, transport groups).
const maxBuckets = 64

// bucketLayout partitions a stage network's gradient vector into layer-
// aligned buckets of roughly bucketBytes each, built from the tail (where
// backward completes first) toward the head so the early-completing layers
// form full buckets. Parameter-free layers ride along with their neighbor
// toward the tail. Returns nil for a parameter-free stage. The specs are
// ordered by ascending layer, so spec 0 is the head bucket — the last to
// complete during backward.
func bucketLayout(net *nn.Network, bucketBytes int) []bucketSpec {
	if bucketBytes <= 0 {
		bucketBytes = defaultBucketBytes
	}
	nl := len(net.Layers)
	layerLen := make([]int, nl)
	layerNP := make([]int, nl)
	total := 0
	for i, l := range net.Layers {
		ps := l.Params()
		layerNP[i] = len(ps)
		for _, p := range ps {
			layerLen[i] += len(p.G.Data)
		}
		total += layerLen[i]
	}
	if total == 0 {
		return nil
	}
	target := bucketBytes / 8
	if t := (total + maxBuckets - 1) / maxBuckets; t > target {
		target = t
	}
	// Close layer ranges from the tail whenever the running size reaches the
	// target; the head remainder becomes the final bucket (merged into its
	// tail-ward neighbor when parameter-free).
	var cuts []int // bucket lower layer bounds, tail-first
	acc := 0
	for i := nl - 1; i >= 0; i-- {
		acc += layerLen[i]
		if acc >= target && i > 0 {
			cuts = append(cuts, i)
			acc = 0
		}
	}
	if acc == 0 && len(cuts) > 0 {
		cuts = cuts[:len(cuts)-1] // head layers are parameter-free: merge
	}
	// Convert to ascending specs with flat and parameter offsets.
	specs := make([]bucketSpec, 0, len(cuts)+1)
	lo := 0
	for b := len(cuts); b >= 0; b-- {
		hi := nl
		if b > 0 {
			hi = cuts[b-1]
		}
		specs = append(specs, bucketSpec{LayerLo: lo, LayerHi: hi})
		lo = hi
	}
	off, pi := 0, 0
	for s := range specs {
		sp := &specs[s]
		sp.Off, sp.PLo = off, pi
		for i := sp.LayerLo; i < sp.LayerHi; i++ {
			off += layerLen[i]
			pi += layerNP[i]
		}
		sp.End, sp.PHi = off, pi
	}
	return specs
}

// initBuckets arms the group's backward-time overlap path: one barrier and
// collective per spec, each picked from the same topology rules as the
// monolithic path (openDist non-nil when the stage spans worker processes;
// it opens the cross-process exchange group of one bucket). nlayers is the
// stage's layer count. Must be called once, right after newARGroup, before
// any step runs.
func (g *arGroup) initBuckets(n int, c hardware.Cluster, devs []hardware.DeviceID, nlayers int, specs []bucketSpec, openDist func(b, size int) (transport.Group, error)) error {
	if len(specs) == 0 {
		return nil
	}
	g.buckets = make([]arBucket, len(specs))
	g.layerBucket = make([]int, nlayers)
	for i := range g.layerBucket {
		g.layerBucket[i] = -1
	}
	g.reduceQ = make(chan int, len(specs))
	g.commDone = make(chan struct{})
	groups := serverGroups(c, devs)
	for b, sp := range specs {
		bk := &g.buckets[b]
		bk.spec = sp
		bk.bufs = make([][]float64, n)
		bk.seen = make([]bool, n)
		g.layerBucket[sp.LayerLo] = b
		size := sp.End - sp.Off
		if openDist != nil {
			grp, err := openDist(b, size)
			if err != nil {
				return err
			}
			bk.dist = grp
			bk.acc = make([]float64, size)
			continue
		}
		if n > 1 {
			if groups != nil {
				bk.hier = transport.NewHier(groups, size)
			} else {
				bk.ring = transport.NewRing(n, size)
			}
		}
	}
	return nil
}

// bucketed reports whether the group synchronizes through the overlap path.
func (g *arGroup) bucketed() bool { return len(g.buckets) > 0 }

// algorithm names the collective the group selected ("none", "ring" or
// "hierarchical").
func (g *arGroup) algorithm() string { return g.algo }

// reset re-arms the barrier for the next step.
func (g *arGroup) reset() {
	g.arrived = 0
	g.failed = false
	g.commit = false
	g.done = make(chan struct{})
	for i := range g.bufs {
		g.bufs[i] = nil
	}
	g.commNanos = 0
	if g.bucketed() {
		g.commDone = make(chan struct{})
	}
	for b := range g.buckets {
		bk := &g.buckets[b]
		bk.arrived = 0
		bk.failed = false
		bk.commit = false
		for i := range bk.bufs {
			bk.bufs[i] = nil
			bk.seen[i] = false
		}
	}
}

// abandon is failed local replica r's report: it counts as the replica's
// arrival and vetoes the stage's commit, releasing any waiting peers. In
// bucketed mode the veto lands on every bucket the replica has not yet
// reported — including the head bucket it withholds until the sync point —
// so peers' waitBuckets can never see a full commit once any local replica
// failed.
func (g *arGroup) abandon(r int) {
	if g.bucketed() {
		for b := range g.buckets {
			bk := &g.buckets[b]
			bk.mu.Lock()
			enq := false
			if !bk.seen[r] {
				bk.seen[r] = true
				bk.arrived++
				bk.failed = true
				enq = bk.arrived == len(bk.bufs)
			}
			bk.mu.Unlock()
			if enq {
				g.reduceQ <- b
			}
		}
		return
	}
	g.mu.Lock()
	g.arrived++
	g.failed = true
	last := g.arrived == len(g.bufs)
	done := g.done
	g.mu.Unlock()
	if last {
		close(done)
	}
}

// arriveBucket contributes local replica r's flattened sub-vector for bucket
// b without blocking: the last local report hands the bucket to the comm
// goroutine, which runs its collective while replicas keep computing.
func (g *arGroup) arriveBucket(r, b int, buf []float64) {
	bk := &g.buckets[b]
	bk.mu.Lock()
	if bk.seen[r] { // an abandoned replica raced ahead of us; keep the veto
		bk.mu.Unlock()
		return
	}
	bk.bufs[r] = buf
	bk.seen[r] = true
	bk.arrived++
	last := bk.arrived == len(bk.bufs)
	bk.mu.Unlock()
	if last {
		g.reduceQ <- b
	}
}

// waitBuckets blocks until every bucket's collective resolved, reporting
// whether ALL buckets committed — the bucketed form of arrive's return
// value. All local replicas observe the same answer, so weight updates stay
// all-or-nothing per stage.
func (g *arGroup) waitBuckets() bool {
	<-g.commDone
	ok := true
	for b := range g.buckets {
		if !g.buckets[b].commit {
			ok = false
		}
	}
	return ok
}

// runComm is the per-step collective driver of a bucketed group: it runs
// each completed bucket's collective in arrival order — concurrently with
// the replicas' remaining backward compute — and resolves the bucket's
// commit. It processes every bucket exactly once per step (abandon
// completes the buckets of failed replicas), so it always terminates, the
// step's WaitGroup can join it, and the single commDone close releases
// every replica blocked in waitBuckets.
func (g *arGroup) runComm(abort <-chan struct{}) {
	for range g.buckets {
		b := <-g.reduceQ
		bk := &g.buckets[b]
		bk.mu.Lock()
		failed := bk.failed
		bk.mu.Unlock()
		if !failed {
			t0 := time.Now()
			if reduceBufs(bk.bufs, bk.ring, bk.hier, bk.dist, bk.acc, abort) {
				bk.commit = true
			}
			g.commNanos += time.Since(t0).Nanoseconds()
		}
	}
	close(g.commDone)
}

// arrive contributes local replica r's buf and blocks until every local
// replica has reported, returning whether the stage committed. On commit,
// every replica's buf holds the bit-identical all-reduced sum (across
// worker processes too, when the stage spans them).
func (g *arGroup) arrive(r int, buf []float64, abort <-chan struct{}) bool {
	n := len(g.bufs)
	if n == 1 && g.dist == nil {
		return true
	}
	g.mu.Lock()
	g.bufs[r] = buf
	g.arrived++
	last := g.arrived == n
	failed := g.failed
	done := g.done
	g.mu.Unlock()
	if last {
		if !failed {
			t0 := time.Now()
			if reduceBufs(g.bufs, g.ring, g.hier, g.dist, g.acc, abort) {
				g.commit = true // written before close(done), read after it
			}
			g.commNanos = time.Since(t0).Nanoseconds()
		}
		close(done)
	} else {
		<-done
	}
	return g.commit
}

// reduceBufs runs one collective over the arrived buffers — the shared body
// of the monolithic and per-bucket paths — reporting whether it completed.
// With dist, it is a local reduce in member order, cross-process exchange,
// local broadcast: hierarchical with the process boundary as the server
// boundary. The exchange sums worker contributions in rank order on every
// rank, so the broadcast total is bit-identical everywhere. All local sums
// go through tensor.VecAddInto — the same audited accumulation kernel the
// in-process and TCP collectives use.
func reduceBufs(bufs [][]float64, ring *transport.Ring, hier *transport.Hier, dist transport.Group, acc []float64, abort <-chan struct{}) bool {
	switch {
	case dist != nil:
		copy(acc, bufs[0])
		for _, b := range bufs[1:] {
			tensor.VecAddInto(acc, b)
		}
		if err := dist.AllReduce(acc, abort); err != nil {
			return false
		}
		for _, b := range bufs {
			copy(b, acc)
		}
	case hier != nil:
		hier.AllReduce(bufs)
	case ring != nil:
		ring.AllReduce(bufs)
	}
	return true
}
