// Package train is the real concurrent training runtime: goroutines are
// devices, channels are interconnects. It executes the same schedules the
// simulator models — sequential accumulation, data parallelism with a real
// ring all-reduce, and GPipe/DAPPLE pipelines with split/concat stage
// replication — on genuine gradient math (packages tensor, nn), which is how
// this reproduction *proves* the paper's claim that DAPPLE scheduling yields
// gradients equivalent to sequential execution.
package train

import "sync"

// RingAllReduce sums the participants' equal-length vectors in place using
// the standard ring algorithm: n-1 reduce-scatter steps followed by n-1
// all-gather steps, each participant running as its own goroutine and
// exchanging chunks over channels. On return every buffer holds the
// element-wise sum.
func RingAllReduce(bufs [][]float64) {
	n := len(bufs)
	if n <= 1 {
		return
	}
	size := len(bufs[0])
	for _, b := range bufs[1:] {
		if len(b) != size {
			panic("train: ring all-reduce buffers differ in length")
		}
	}
	if size == 0 {
		return
	}

	// chunk returns the [lo, hi) bounds of chunk c.
	chunk := func(c int) (int, int) {
		base, extra := size/n, size%n
		lo := c*base + min(c, extra)
		sz := base
		if c < extra {
			sz++
		}
		return lo, lo + sz
	}

	// ch[i] carries chunks from rank i to rank (i+1) mod n.
	ch := make([]chan []float64, n)
	for i := range ch {
		ch[i] = make(chan []float64, 1)
	}

	var wg sync.WaitGroup
	for rank := 0; rank < n; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			buf := bufs[rank]
			send := ch[rank]
			recv := ch[(rank-1+n)%n]

			// Reduce-scatter: after step s, rank owns the full sum of chunk
			// (rank+1) mod n at the end.
			for s := 0; s < n-1; s++ {
				c := (rank - s + n) % n
				lo, hi := chunk(c)
				out := make([]float64, hi-lo)
				copy(out, buf[lo:hi])
				send <- out
				in := <-recv
				c2 := (rank - s - 1 + n) % n
				lo2, _ := chunk(c2)
				for i, v := range in {
					buf[lo2+i] += v
				}
			}
			// All-gather: circulate the completed chunks.
			for s := 0; s < n-1; s++ {
				c := (rank + 1 - s + n) % n
				lo, hi := chunk(c)
				out := make([]float64, hi-lo)
				copy(out, buf[lo:hi])
				send <- out
				in := <-recv
				c2 := (rank - s + n) % n
				lo2, _ := chunk(c2)
				copy(buf[lo2:lo2+len(in)], in)
			}
		}(rank)
	}
	wg.Wait()
}
