package train

import (
	"testing"

	"dapple/internal/core"
	"dapple/internal/hardware"
	"dapple/internal/nn"
	"dapple/internal/schedule"
)

// benchSetup builds the replicated 4-stage benchmark fixture: an 11-layer MLP
// carved 3:3:3:2 with 2 replicas per stage on 8 flat devices, M=8
// micro-batches of 16 rows.
func benchSetup(b *testing.B, pol schedule.Policy) (*Executor, []Batch) {
	b.Helper()
	master := nn.MLP([]int{32, 48, 48, 48, 48, 48, 8}, 42) // 11 layers
	const rows, m = 16, 8
	mod, err := ProfileNetwork("bench-net", master, 32, rows, rows*m)
	if err != nil {
		b.Fatal(err)
	}
	c := hardware.ConfigB(8)
	stages := make([]core.Stage, 4)
	lo, dev := 0, 0
	for i, hi := range []int{3, 6, 9, 11} {
		devs := make([]hardware.DeviceID, 2)
		for r := range devs {
			devs[r] = hardware.DeviceID(dev)
			dev++
		}
		stages[i] = core.Stage{Lo: lo, Hi: hi, Devices: devs}
		lo = hi
	}
	p := &core.Plan{Model: mod, Cluster: c, Stages: stages, GBS: rows * m, MicroBatch: rows}
	if err := p.Validate(); err != nil {
		b.Fatal(err)
	}
	ex, err := NewExecutor(p, master, func() nn.Optimizer { return nn.SGD{LR: 0.01} },
		ExecOptions{Policy: pol})
	if err != nil {
		b.Fatal(err)
	}
	return ex, makeMicros(m, rows, 32, 8, 7)
}

// BenchmarkExecutePlan measures one really-executed training iteration of a
// replicated 4-stage plan (2x replication per stage, 8 worker goroutines,
// M=8) under both runtime policies, trace recording included — the
// plan-driven runtime's end-to-end hot path.
func BenchmarkExecutePlan(b *testing.B) {
	for _, tc := range []struct {
		name string
		pol  schedule.Policy
	}{
		{"GPipe", schedule.GPipe},
		{"DAPPLE", schedule.DapplePA},
	} {
		b.Run(tc.name, func(b *testing.B) {
			ex, micros := benchSetup(b, tc.pol)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ex.Step(micros); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
