package train

import (
	"testing"

	"dapple/internal/schedule"
)

// benchSetup wraps the shared BenchmarkFixture (11-layer MLP carved 3:3:3:2,
// 2 replicas per stage on 8 flat devices, M=8 micro-batches of 16 rows) for
// BenchmarkExecutePlan and the steady-state allocation gate. The same
// constructor backs `dapple-bench -exec`, keeping every measurement of this
// workload comparable.
func benchSetup(b testing.TB, pol schedule.Policy) (*Executor, []Batch) {
	b.Helper()
	ex, micros, err := BenchmarkFixture(pol, 7)
	if err != nil {
		b.Fatal(err)
	}
	return ex, micros
}

// BenchmarkExecutePlan measures one really-executed training iteration of a
// replicated 4-stage plan (2x replication per stage, 8 worker goroutines,
// M=8) under both runtime policies, trace recording included — the
// plan-driven runtime's end-to-end hot path.
func BenchmarkExecutePlan(b *testing.B) {
	for _, tc := range []struct {
		name string
		pol  schedule.Policy
	}{
		{"GPipe", schedule.GPipe},
		{"DAPPLE", schedule.DapplePA},
	} {
		b.Run(tc.name, func(b *testing.B) {
			ex, micros := benchSetup(b, tc.pol)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ex.Step(micros); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
