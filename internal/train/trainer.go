package train

import (
	"fmt"

	"dapple/internal/nn"
	"dapple/internal/tensor"
)

// Batch is one micro-batch of classification examples.
type Batch struct {
	X *tensor.Matrix
	Y []int
}

// Validate checks shape consistency.
func (b Batch) Validate() error {
	if b.X == nil || b.X.Rows != len(b.Y) {
		return fmt.Errorf("train: batch with %d labels for %d rows", len(b.Y), rowsOf(b.X))
	}
	return nil
}

func rowsOf(m *tensor.Matrix) int {
	if m == nil {
		return 0
	}
	return m.Rows
}

// SequentialStep runs one optimizer step over the micro-batches on a single
// "device": forward+backward each micro-batch in order, accumulate gradients,
// average by the micro-batch count, and apply — the paper's single-device
// baseline and the ground truth all parallel schedules must match.
func SequentialStep(net *nn.Network, micros []Batch, opt nn.Optimizer) (float64, error) {
	if len(micros) == 0 {
		return 0, fmt.Errorf("train: no micro-batches")
	}
	var loss float64
	for _, b := range micros {
		if err := b.Validate(); err != nil {
			return 0, err
		}
		out, ctxs := net.Forward(b.X)
		l, dy := nn.SoftmaxCrossEntropy(out, b.Y)
		loss += l
		net.Backward(ctxs, dy)
	}
	scaleGrads(net.Params(), 1/float64(len(micros)))
	opt.Step(net.Params())
	return loss / float64(len(micros)), nil
}

// AccumulateGrads runs forward+backward over the micro-batches without
// applying an update, leaving the micro-batch-averaged gradients in the
// network — the probe used by gradient-equivalence tests.
func AccumulateGrads(net *nn.Network, micros []Batch) (float64, error) {
	if len(micros) == 0 {
		return 0, fmt.Errorf("train: no micro-batches")
	}
	var loss float64
	for _, b := range micros {
		if err := b.Validate(); err != nil {
			return 0, err
		}
		out, ctxs := net.Forward(b.X)
		l, dy := nn.SoftmaxCrossEntropy(out, b.Y)
		loss += l
		net.Backward(ctxs, dy)
	}
	scaleGrads(net.Params(), 1/float64(len(micros)))
	return loss / float64(len(micros)), nil
}

func scaleGrads(params []nn.Param, s float64) {
	for _, p := range params {
		p.G.Scale(s)
	}
}

// GradVector flattens the parameters' gradients into one vector.
func GradVector(params []nn.Param) []float64 {
	var n int
	for _, p := range params {
		n += len(p.G.Data)
	}
	out := make([]float64, 0, n)
	for _, p := range params {
		out = append(out, p.G.Data...)
	}
	return out
}

// setGradVector scatters a flat vector back into the gradient tensors.
func setGradVector(params []nn.Param, v []float64) {
	at := 0
	for _, p := range params {
		copy(p.G.Data, v[at:at+len(p.G.Data)])
		at += len(p.G.Data)
	}
}

// DataParallel trains replicas of one network across worker goroutines with a
// real ring all-reduce, mirroring the paper's DP baseline.
type DataParallel struct {
	Replicas []*nn.Network
	opts     []nn.Optimizer
}

// NewDataParallel clones master across n workers. optFactory builds one
// optimizer per replica (identical hyperparameters keep replicas in
// lockstep).
func NewDataParallel(master *nn.Network, n int, optFactory func() nn.Optimizer) *DataParallel {
	if n < 1 {
		panic("train: data parallel needs at least one replica")
	}
	dp := &DataParallel{}
	for i := 0; i < n; i++ {
		dp.Replicas = append(dp.Replicas, master.Clone())
		dp.opts = append(dp.opts, optFactory())
	}
	return dp
}

// Step shards the micro-batches round-robin across replicas, accumulates
// local gradients concurrently, ring-all-reduces, averages by the global
// micro-batch count, and applies identical updates on every replica. It
// returns the mean loss.
func (dp *DataParallel) Step(micros []Batch) (float64, error) {
	n := len(dp.Replicas)
	if len(micros) == 0 {
		return 0, fmt.Errorf("train: no micro-batches")
	}
	type res struct {
		loss float64
		err  error
	}
	results := make([]res, n)
	done := make(chan int, n)
	for w := 0; w < n; w++ {
		go func(w int) {
			net := dp.Replicas[w]
			var loss float64
			for m := w; m < len(micros); m += n {
				b := micros[m]
				if err := b.Validate(); err != nil {
					results[w] = res{err: err}
					done <- w
					return
				}
				out, ctxs := net.Forward(b.X)
				l, dy := nn.SoftmaxCrossEntropy(out, b.Y)
				loss += l
				net.Backward(ctxs, dy)
			}
			results[w] = res{loss: loss}
			done <- w
		}(w)
	}
	for i := 0; i < n; i++ {
		<-done
	}
	var loss float64
	for _, r := range results {
		if r.err != nil {
			return 0, r.err
		}
		loss += r.loss
	}

	bufs := make([][]float64, n)
	for w, net := range dp.Replicas {
		bufs[w] = GradVector(net.Params())
	}
	RingAllReduce(bufs)
	inv := 1 / float64(len(micros))
	for w, net := range dp.Replicas {
		for i := range bufs[w] {
			bufs[w][i] *= inv
		}
		setGradVector(net.Params(), bufs[w])
		dp.opts[w].Step(net.Params())
	}
	return loss / float64(len(micros)), nil
}

// MaxParamDivergence returns the largest parameter difference between any
// replica and replica 0 — zero when replicas remain in lockstep.
func (dp *DataParallel) MaxParamDivergence() float64 {
	base := dp.Replicas[0].Params()
	var worst float64
	for _, rep := range dp.Replicas[1:] {
		ps := rep.Params()
		for i, p := range ps {
			if d := tensor.MaxAbsDiff(base[i].W, p.W); d > worst {
				worst = d
			}
		}
	}
	return worst
}
