package train

import (
	"fmt"

	"dapple/internal/model"
	"dapple/internal/nn"
	"dapple/internal/tensor"
)

// synthFLOPS is the synthetic device throughput ProfileNetwork converts
// analytic FLOP counts into seconds with. It is deliberately modest so that
// per-layer times of the small real networks land on the same order as the
// scheduler's fixed weight-update cost and plans stay non-degenerate.
const synthFLOPS = 1e9

// ProfileNetwork derives a planner-ready profiled model from a real network:
// one model layer per network layer, analytic compute times from each
// layer's parameter and activation shapes, and exact activation/parameter
// byte counts measured by one probe forward pass at profileBatch rows of
// inDim features. This is the bridge that closes the planner→runtime loop:
// the returned model's layer indices map one-to-one onto the network's
// layers, so any core.Plan produced for it is executable by an Executor.
func ProfileNetwork(name string, net *nn.Network, inDim, profileBatch, defaultGBS int) (*model.Model, error) {
	if net == nil || net.NumLayers() == 0 {
		return nil, fmt.Errorf("train: profile of an empty network")
	}
	if inDim < 1 || profileBatch < 1 || defaultGBS < 1 {
		return nil, fmt.Errorf("train: profile geometry inDim=%d batch=%d gbs=%d", inDim, profileBatch, defaultGBS)
	}
	x := tensor.New(profileBatch, inDim)
	layers := make([]model.Layer, 0, net.NumLayers())
	for i, l := range net.Layers {
		y, ctx := l.Forward(x)
		var params int64
		for _, p := range l.Params() {
			params += int64(len(p.W.Data))
		}
		// Parametric layers cost one multiply-add per weight per row;
		// activations one op per element.
		flops := float64(profileBatch) * float64(y.Cols)
		if params > 0 {
			flops = 2 * float64(profileBatch) * float64(x.Cols) * float64(y.Cols)
		}
		fwd := flops / synthFLOPS
		layers = append(layers, model.Layer{
			Name:        fmt.Sprintf("L%d", i),
			FwdTime:     fwd,
			BwdTime:     2 * fwd, // the standard B ≈ 2F ratio the paper assumes
			OutputBytes: int64(len(y.Data)) * 8,
			StoredBytes: nn.StashBytes(ctx),
			ParamBytes:  params * 8,
		})
		x = y
	}
	m := &model.Model{
		Name:                   name,
		Layers:                 layers,
		ProfileBatch:           profileBatch,
		DefaultGBS:             defaultGBS,
		OptimizerBytesPerParam: model.AdamBytesPerParam,
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
