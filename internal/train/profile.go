package train

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"dapple/internal/model"
	"dapple/internal/nn"
	"dapple/internal/sim"
	"dapple/internal/tensor"
	"dapple/internal/trace"
)

// synthFLOPS is the synthetic device throughput ProfileNetwork converts
// analytic FLOP counts into seconds with. It is deliberately modest so that
// per-layer times of the small real networks land on the same order as the
// scheduler's fixed weight-update cost and plans stay non-degenerate.
const synthFLOPS = 1e9

// ProfileNetwork derives a planner-ready profiled model from a real network:
// one model layer per network layer, analytic compute times from each
// layer's parameter and activation shapes, and exact activation/parameter
// byte counts measured by one probe forward pass at profileBatch rows of
// inDim features. This is the bridge that closes the planner→runtime loop:
// the returned model's layer indices map one-to-one onto the network's
// layers, so any core.Plan produced for it is executable by an Executor.
func ProfileNetwork(name string, net *nn.Network, inDim, profileBatch, defaultGBS int) (*model.Model, error) {
	if net == nil || net.NumLayers() == 0 {
		return nil, fmt.Errorf("train: profile of an empty network")
	}
	if inDim < 1 || profileBatch < 1 || defaultGBS < 1 {
		return nil, fmt.Errorf("train: profile geometry inDim=%d batch=%d gbs=%d", inDim, profileBatch, defaultGBS)
	}
	x := tensor.New(profileBatch, inDim)
	layers := make([]model.Layer, 0, net.NumLayers())
	for i, l := range net.Layers {
		y, ctx := l.Forward(x)
		var params int64
		for _, p := range l.Params() {
			params += int64(len(p.W.Data))
		}
		// Parametric layers cost one multiply-add per weight per row;
		// activations one op per element.
		flops := float64(profileBatch) * float64(y.Cols)
		if params > 0 {
			flops = 2 * float64(profileBatch) * float64(x.Cols) * float64(y.Cols)
		}
		fwd := flops / synthFLOPS
		layers = append(layers, model.Layer{
			Name:        fmt.Sprintf("L%d", i),
			FwdTime:     fwd,
			BwdTime:     2 * fwd, // the standard B ≈ 2F ratio the paper assumes
			OutputBytes: int64(len(y.Data)) * 8,
			StoredBytes: nn.StashBytes(ctx),
			ParamBytes:  params * 8,
		})
		x = y
	}
	m := &model.Model{
		Name:                   name,
		Layers:                 layers,
		ProfileBatch:           profileBatch,
		DefaultGBS:             defaultGBS,
		OptimizerBytesPerParam: model.AdamBytesPerParam,
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// MeasureOptions configure ProfileNetworkMeasured's calibration loop.
type MeasureOptions struct {
	// Warmup is the number of untimed iterations run first, so pools,
	// caches and branch predictors are hot before anything is recorded
	// (default 2).
	Warmup int
	// Iters is the number of recorded iterations whose per-layer span
	// durations are aggregated by median (default 5).
	Iters int
}

// normalize applies defaults.
func (mo MeasureOptions) normalize() MeasureOptions {
	if mo.Warmup <= 0 {
		mo.Warmup = 2
	}
	if mo.Iters <= 0 {
		mo.Iters = 5
	}
	return mo
}

// measuredTimeFloor is the smallest per-layer time a measured profile
// reports: clock-resolution zeros would make layers free and degenerate the
// planner's balance search.
const measuredTimeFloor = 1e-9

// ProfileNetworkMeasured is ProfileNetwork with MEASURED per-layer compute
// times: instead of converting analytic FLOP counts through a synthetic
// device speed, it executes warm calibration iterations of the network's
// workspace (pooled-buffer) path — the same kernels the real executor runs —
// records every layer's forward and backward pass as trace.Recorder spans,
// and aggregates the span durations by median. This is the paper's actual
// profiler loop (and PipeDream's): plans for real networks are calibrated by
// real execution, closing the ROADMAP's "real-runtime profiling hooks" item.
//
// Byte accounting (output/stashed/parameter volumes) is identical to
// ProfileNetwork's probe, so an analytic and a measured profile of one
// network differ only in their time columns. The calibration runs on a clone;
// net's parameters and gradients are untouched. ctx is checked between
// calibration iterations, so deadlines and ctrl-C bound the loop.
func ProfileNetworkMeasured(ctx context.Context, name string, net *nn.Network, inDim, profileBatch, defaultGBS int, mo MeasureOptions) (*model.Model, error) {
	m, _, err := ProfileNetworkMeasuredTrace(ctx, name, net, inDim, profileBatch, defaultGBS, mo)
	return m, err
}

// ProfileNetworkMeasuredTrace is ProfileNetworkMeasured returning also the
// calibration trace the times were aggregated from: one resource "L<i>" per
// layer with "fwd"/"bwd" spans per recorded iteration, so callers (and
// tests) can audit exactly which measurements produced each model time.
func ProfileNetworkMeasuredTrace(ctx context.Context, name string, net *nn.Network, inDim, profileBatch, defaultGBS int, mo MeasureOptions) (*model.Model, *sim.Result, error) {
	m, err := ProfileNetwork(name, net, inDim, profileBatch, defaultGBS)
	if err != nil {
		return nil, nil, err
	}
	mo = mo.normalize()

	cal := net.Clone()
	ws := nn.NewWorkspace()
	rng := rand.New(rand.NewSource(42))
	x0 := tensor.New(profileBatch, inDim)
	// Non-zero calibration inputs: all-zero activations would die at the
	// first ReLU, timing backward passes against unrealistically sparse
	// gradients.
	x0.Randomize(rng, 1)

	nL := cal.NumLayers()
	rec := trace.NewRecorder()
	layerRes := make([]int, nL)
	fwdNames := make([]string, nL)
	bwdNames := make([]string, nL)
	for i := range layerRes {
		layerRes[i] = rec.Resource(fmt.Sprintf("L%d", i))
		fwdNames[i] = fmt.Sprintf("F.L%d", i)
		bwdNames[i] = fmt.Sprintf("B.L%d", i)
	}
	params := cal.Params()
	outs := make([]*tensor.Matrix, nL)
	ctxs := make([]nn.Ctx, nL)

	iteration := func(record bool) {
		x := x0
		for i, l := range cal.Layers {
			t0 := rec.Now()
			var y *tensor.Matrix
			var c nn.Ctx
			if wl, ok := l.(nn.WorkspaceLayer); ok {
				y, c = wl.ForwardWS(ws, x)
			} else {
				y, c = l.Forward(x)
			}
			if record {
				rec.Record(layerRes[i], fwdNames[i], "fwd", t0, rec.Now())
			}
			outs[i], ctxs[i] = y, c
			x = y
		}
		// A constant synthetic output gradient: backward cost does not depend
		// on gradient values, only on shapes.
		orig := ws.Get(x.Rows, x.Cols)
		for i := range orig.Data {
			orig.Data[i] = 1 / float64(len(orig.Data))
		}
		dy := orig
		for i := nL - 1; i >= 0; i-- {
			l := cal.Layers[i]
			t0 := rec.Now()
			var dx *tensor.Matrix
			if wl, ok := l.(nn.WorkspaceLayer); ok {
				dx = wl.BackwardWS(ws, ctxs[i], dy)
			} else {
				dx = l.Backward(ctxs[i], dy)
			}
			if record {
				rec.Record(layerRes[i], bwdNames[i], "bwd", t0, rec.Now())
			}
			if dx != dy && dy != orig {
				ws.Put(dy)
			}
			dy = dx
		}
		if dy != orig {
			ws.Put(dy)
		}
		ws.Put(orig)
		for i, y := range outs {
			ws.Put(y)
			outs[i], ctxs[i] = nil, nil
		}
		for _, p := range params {
			p.G.Zero()
		}
	}

	for it := 0; it < mo.Warmup; it++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		iteration(false)
	}
	rec.Reset()
	for it := 0; it < mo.Iters; it++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		iteration(true)
	}

	calTrace := rec.Result()
	fwdSamples := make([][]float64, nL)
	bwdSamples := make([][]float64, nL)
	for _, s := range calTrace.Spans {
		switch s.Kind {
		case "fwd":
			fwdSamples[s.Resource] = append(fwdSamples[s.Resource], s.End-s.Start)
		case "bwd":
			bwdSamples[s.Resource] = append(bwdSamples[s.Resource], s.End-s.Start)
		}
	}
	for i := range m.Layers {
		m.Layers[i].FwdTime = max(median(fwdSamples[i]), measuredTimeFloor)
		m.Layers[i].BwdTime = max(median(bwdSamples[i]), measuredTimeFloor)
	}
	if err := m.Validate(); err != nil {
		return nil, nil, err
	}
	return m, calTrace, nil
}

// median returns the middle value of samples (mean of the middle pair for
// even counts), 0 for an empty slice. samples is sorted in place.
func median(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sort.Float64s(samples)
	mid := len(samples) / 2
	if len(samples)%2 == 1 {
		return samples[mid]
	}
	return (samples[mid-1] + samples[mid]) / 2
}
