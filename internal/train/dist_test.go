package train

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"dapple/internal/core"
	"dapple/internal/hardware"
	"dapple/internal/nn"
	"dapple/internal/schedule"
	"dapple/internal/transport"
)

// distFixture is a 3-stage plan on a 2-server × 2-GPU cluster placed so a
// 2-worker session exercises every distributed code path at once:
//
//	stage 0: dev 0           (rank 0)           — unreplicated
//	stage 1: devs 1, 2       (ranks 0 and 1)    — replica group spans ranks
//	stage 2: dev 3           (rank 1)           — last stage remote from rank 0
//
// Cut 0 has an in-process edge (0→1 on rank 0) and a TCP edge (0→2 across
// ranks); cut 1 has a TCP edge (1→3) and an in-process edge (2→3 on rank 1);
// stage 1's gradients synchronize through the cross-process hierarchical
// exchange.
func distFixture(t *testing.T) (*core.Plan, *nn.Network, []int, []Batch, []Batch, []Batch) {
	t.Helper()
	master := nn.MLP([]int{16, 24, 24, 24, 8}, 7) // 7 layers
	const rows, m, inDim = 8, 4, 16
	mod, err := ProfileNetwork("dist-net", master, inDim, rows, rows*m)
	if err != nil {
		t.Fatal(err)
	}
	c := hardware.ConfigA(2)
	c.GPUsPerServer = 2 // 2 servers × 2 GPUs: devices 0,1 | 2,3
	p := &core.Plan{
		Model: mod, Cluster: c,
		Stages: []core.Stage{
			{Lo: 0, Hi: 3, Devices: []hardware.DeviceID{0}},
			{Lo: 3, Hi: 5, Devices: []hardware.DeviceID{1, 2}},
			{Lo: 5, Hi: 7, Devices: []hardware.DeviceID{3}},
		},
		GBS: rows * m, MicroBatch: rows,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	deviceRanks := []int{0, 0, 1, 1} // one worker process per server
	rng := rand.New(rand.NewSource(3))
	proj := NewQuadrantProblem(rng, inDim)
	b0 := QuadrantBatches(rng, proj, m, rows)
	b1 := QuadrantBatches(rng, proj, m, rows)
	b2 := QuadrantBatches(rng, proj, m, rows)
	return p, master, deviceRanks, b0, b1, b2
}

// sessionMesh wires the 2-workers + coordinator loopback mesh: workers on
// ranks 0 and 1 (rank 1 dials rank 0), coordinator on rank 2 dialing both.
func sessionMesh(t *testing.T) (w0, w1, coord *transport.TCP) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	var err error
	if w0, err = transport.ListenTCP("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if w1, err = transport.ListenTCP("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	w0.SetRank(0)
	w1.SetRank(1)
	coord = transport.NewTCP()
	coord.SetRank(2)
	t.Cleanup(func() { w0.Close(); w1.Close(); coord.Close() })
	if err := w1.Dial(ctx, 0, w0.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := coord.Dial(ctx, 0, w0.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := coord.Dial(ctx, 1, w1.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := w0.WaitPeers(ctx, []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := w1.WaitPeers(ctx, []int{0, 2}); err != nil {
		t.Fatal(err)
	}
	return w0, w1, coord
}

// TestDistributedSessionMatchesSingleProcess runs the full coordinator/worker
// protocol over real TCP loopback — manifest, weight broadcast, three gated
// steps, shutdown — and checks every step's distributed loss against the
// single-process executor on identical weights and data.
func TestDistributedSessionMatchesSingleProcess(t *testing.T) {
	p, master, deviceRanks, b0, b1, b2 := distFixture(t)
	iters := [][]Batch{b0, b1, b2}

	// Single-process reference on a deep copy of the initial weights.
	ref, err := NewExecutor(p, master.Clone(), func() nn.Optimizer { return nn.SGD{LR: 0.05} },
		ExecOptions{Policy: schedule.DapplePA, NoTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, len(iters))
	for k, micros := range iters {
		res, err := ref.Step(micros)
		if err != nil {
			t.Fatal(err)
		}
		want[k] = res.Loss
	}

	w0t, w1t, ct := sessionMesh(t)
	workers := []*Worker{NewWorker(w0t, 0), NewWorker(w1t, 1)}
	served := make(chan error, len(workers))
	for _, w := range workers {
		go func(w *Worker) { served <- w.Serve(context.Background()) }(w)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	coord, err := NewCoordinator(ctx, ct, p, master, OptSpec{Kind: "sgd", LR: 0.05},
		ExecOptions{Policy: schedule.DapplePA}, deviceRanks, len(workers))
	if err != nil {
		t.Fatal(err)
	}
	for k, micros := range iters {
		loss, err := coord.Step(ctx, micros)
		if err != nil {
			t.Fatalf("distributed step %d: %v", k, err)
		}
		if math.Abs(loss-want[k]) > 1e-6 {
			t.Fatalf("step %d: distributed loss %.12f vs single-process %.12f (drift %.3g)",
				k, loss, want[k], math.Abs(loss-want[k]))
		}
	}

	// The spanning stage must have picked the cross-process hierarchical
	// exchange on both ranks; unreplicated stages synchronize nothing.
	for r, w := range workers {
		if algo := w.Executor().AllReduceAlgo(1); algo != "hierarchical" {
			t.Errorf("rank %d stage 1 all-reduce %q, want hierarchical", r, algo)
		}
	}
	if algo := workers[0].Executor().AllReduceAlgo(0); algo != "none" {
		t.Errorf("rank 0 stage 0 all-reduce %q, want none", algo)
	}
	if algo := workers[0].Executor().AllReduceAlgo(2); algo != "" {
		t.Errorf("rank 0 stage 2 all-reduce %q, want \"\" (not hosted)", algo)
	}

	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}
	for range workers {
		select {
		case err := <-served:
			if err != nil {
				t.Fatalf("worker serve: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("worker never shut down")
		}
	}
}

// TestDistributedWorkerFailureFailsStop injects a failing step (micro-batch
// rows below stage 1's replica count) and checks the whole session dies
// fail-stop: the coordinator reports the abort and later steps fail fast.
func TestDistributedWorkerFailureFailsStop(t *testing.T) {
	p, master, deviceRanks, b0, _, _ := distFixture(t)
	w0t, w1t, ct := sessionMesh(t)
	workers := []*Worker{NewWorker(w0t, 0), NewWorker(w1t, 1)}
	served := make(chan error, len(workers))
	for _, w := range workers {
		go func(w *Worker) { served <- w.Serve(context.Background()) }(w)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	coord, err := NewCoordinator(ctx, ct, p, master, OptSpec{Kind: "sgd", LR: 0.05},
		ExecOptions{Policy: schedule.DapplePA}, deviceRanks, len(workers))
	if err != nil {
		t.Fatal(err)
	}
	bad := make([]Batch, len(b0))
	for i, b := range b0 {
		bad[i] = Batch{X: b.X.RowSlice(0, 1), Y: b.Y[:1]} // 1 row < 2 replicas
	}
	if _, err := coord.Step(ctx, bad); err == nil {
		t.Fatal("poisoned step succeeded")
	}
	if _, err := coord.Step(ctx, b0); err == nil {
		t.Fatal("step after session failure succeeded")
	}
	for range workers {
		select {
		case err := <-served:
			if err == nil {
				t.Fatal("worker survived a fail-stop session")
			}
		case <-time.After(10 * time.Second):
			t.Fatal("worker never exited after session failure")
		}
	}
}

// TestHierarchicalSelection checks the topology rule on single-process
// executors: a replica group co-locating ≥2 replicas on each of ≥2 servers
// picks the paper's hierarchical all-reduce, while a flat one-GPU-per-server
// cluster keeps the plain ring.
func TestHierarchicalSelection(t *testing.T) {
	master := nn.MLP([]int{16, 24, 8}, 5) // 3 layers
	const rows, m, inDim = 8, 2, 16
	mod, err := ProfileNetwork("hier-net", master, inDim, rows, rows*m)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		c    hardware.Cluster
		devs []hardware.DeviceID
		want string
	}{
		{"two-servers-two-each", hardware.ConfigA(2), []hardware.DeviceID{0, 1, 8, 9}, "hierarchical"},
		{"flat-one-per-server", hardware.ConfigB(4), []hardware.DeviceID{0, 1, 2, 3}, "ring"},
		{"single-server", hardware.ConfigA(1), []hardware.DeviceID{0, 1, 2, 3}, "ring"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := &core.Plan{
				Model: mod, Cluster: tc.c,
				Stages: []core.Stage{{Lo: 0, Hi: 3, Devices: tc.devs}},
				GBS:    rows * m, MicroBatch: rows,
			}
			if err := p.Validate(); err != nil {
				t.Fatal(err)
			}
			ex, err := NewExecutor(p, master.Clone(), func() nn.Optimizer { return nn.SGD{LR: 0.1} },
				ExecOptions{Policy: schedule.GPipe, NoTrace: true})
			if err != nil {
				t.Fatal(err)
			}
			if algo := ex.AllReduceAlgo(0); algo != tc.want {
				t.Fatalf("selected %q, want %q", algo, tc.want)
			}
			// The choice must not change the math: one step must match the
			// sequential reference to float tolerance.
			rng := rand.New(rand.NewSource(11))
			proj := NewQuadrantProblem(rng, inDim)
			micros := QuadrantBatches(rng, proj, m, rows)
			wantLoss, err := SequentialStep(master.Clone(), micros, nn.SGD{LR: 0.1})
			if err != nil {
				t.Fatal(err)
			}
			res, err := ex.Step(micros)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(res.Loss-wantLoss) > 1e-9 {
				t.Fatalf("loss %.12f vs sequential %.12f", res.Loss, wantLoss)
			}
		})
	}
}
