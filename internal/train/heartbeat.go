package train

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dapple/internal/transport"
)

// heartbeater is the liveness plane of one session rank: every interval it
// sends a heartbeat frame to each live peer and checks each peer's
// last-heard clock; a peer silent past timeout is declared dead through the
// transport's ClosePeer, which under peer isolation marks only that rank
// down (waking the session's recovery) and under fail-stop semantics ends
// the session — exactly the failure semantics the session was configured
// with. Any received frame counts as liveness evidence, so a rank that is
// slow but still streaming tensors is never falsely declared dead.
type heartbeater struct {
	t        *transport.TCP
	interval time.Duration
	timeout  time.Duration
	peers    func() []int                         // watch list; nil watches every live connection
	send     func(peer int) error                 // heartbeat sender, injectable for fault tests
	verdict  func(peer int, silent time.Duration) // death verdict, injectable

	// suspended pauses death verdicts while a reconfig is in flight: a rank
	// busy restoring a large checkpoint sends no frames, and must not be
	// declared dead for it. Heartbeats keep flowing while suspended (this
	// rank still proves its own liveness); only the verdicts pause.
	suspended atomic.Bool
	// resumedAt is the unix-nano instant of the last Resume: after a
	// suspension every peer's silence clock restarts from here, so time
	// spent suspended can never count toward a timeout.
	resumedAt atomic.Int64

	stop chan struct{}
	wg   sync.WaitGroup
}

// startHeartbeater launches the liveness loop. peers may be nil to watch
// every live connection. interval must be positive; timeout <= 0 disables
// death verdicts (send-only mode, for ranks that only need to prove their
// own liveness).
func startHeartbeater(t *transport.TCP, interval, timeout time.Duration, peers func() []int) *heartbeater {
	h := &heartbeater{
		t: t, interval: interval, timeout: timeout, peers: peers,
		send: t.SendHeartbeat,
		stop: make(chan struct{}),
	}
	h.verdict = func(peer int, silent time.Duration) {
		t.ClosePeer(peer, fmt.Errorf("train: rank %d heartbeat-silent for %v (timeout %v)", peer, silent, timeout))
	}
	h.wg.Add(1)
	go h.run()
	return h
}

// run is the liveness loop body.
func (h *heartbeater) run() {
	defer h.wg.Done()
	tick := time.NewTicker(h.interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			h.beat()
		case <-h.stop:
			return
		case <-h.t.Done():
			return
		}
	}
}

// beat sends one round of heartbeats and applies the timeout verdict.
func (h *heartbeater) beat() {
	watch := h.t.Peers()
	if h.peers != nil {
		watch = h.peers()
	}
	now := time.Now()
	suspended := h.suspended.Load()
	resumed := time.Unix(0, h.resumedAt.Load())
	for _, p := range watch {
		h.send(p) //nolint:errcheck // a failed send is itself liveness evidence the reader pump reports
		if h.timeout <= 0 || suspended {
			continue
		}
		last, ok := h.t.LastHeard(p)
		if !ok {
			continue // already down or never connected; not this plane's call
		}
		// Silence accumulated during a suspension doesn't count: the clock
		// restarts at the last Resume.
		if last.Before(resumed) {
			last = resumed
		}
		if silent := now.Sub(last); silent > h.timeout {
			h.verdict(p, silent)
		}
	}
}

// Suspend pauses death verdicts until Resume — called while a reconfig is in
// flight, when peers legitimately go quiet to rebuild state. Idempotent;
// heartbeat sends continue throughout.
func (h *heartbeater) Suspend() {
	if h == nil {
		return
	}
	h.suspended.Store(true)
}

// Resume re-arms death verdicts. Every peer's silence clock restarts now, so
// a peer must be silent for a full fresh timeout after the reconfig before
// it can be declared dead.
func (h *heartbeater) Resume() {
	if h == nil {
		return
	}
	h.resumedAt.Store(time.Now().UnixNano())
	h.suspended.Store(false)
}

// Stop ends the liveness loop and waits for it to exit.
func (h *heartbeater) Stop() {
	select {
	case <-h.stop:
	default:
		close(h.stop)
	}
	h.wg.Wait()
}
