package train

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"dapple/internal/core"
	"dapple/internal/nn"
	"dapple/internal/schedule"
	"dapple/internal/sim"
	"dapple/internal/tensor"
	"dapple/internal/trace"
)

// errAborted is returned by workers unblocked by the step's abort channel;
// StepContext replaces it with the first real failure (or ctx.Err()).
var errAborted = errors.New("train: step aborted")

// ExecOptions configure plan-driven execution.
type ExecOptions struct {
	// Policy selects the micro-batch schedule. It is the simulator's policy
	// type (schedule.GPipe floods, schedule.DapplePA/DapplePB run early
	// backward), so one plan drives both runtimes identically.
	Policy schedule.Policy

	// Recompute stashes only each stage's input and re-runs the forward pass
	// during backward (§III re-computation).
	Recompute bool

	// MemLimit bounds the per-device retained state used to derive warmup
	// depths (0 = the plan cluster's device memory, negative = unlimited),
	// mirroring schedule.Options.MemLimit so real warmup matches simulated.
	MemLimit int64

	// NoTrace skips span recording, for benchmarks measuring pure execution.
	NoTrace bool
}

// ExecResult reports one really-executed training iteration of a plan.
type ExecResult struct {
	// Loss is the micro-batch-averaged cross-entropy of the iteration.
	Loss float64
	// M is the number of micro-batches executed.
	M int
	// Warmup is the per-stage early-backward depth K_i actually used; it is
	// derived through schedule.WarmupDepths and therefore always equals the
	// simulator's for the same plan and options.
	Warmup []int
	// MaxStash is the peak number of concurrently stashed micro-batches per
	// stage (identical on every replica of a stage).
	MaxStash []int
	// MaxStashBytes is the peak stashed activation volume on any single
	// device of each stage.
	MaxStashBytes []int64
	// WallTime is the wall-clock duration of the step in seconds.
	WallTime float64
	// Trace holds the real-execution spans in the simulator's result shape
	// (resources "s<stage>.d<device>", task names "F<m>.s<i>", "B<m>.s<i>",
	// "AR.s<i>"), directly comparable to a schedule.Result's spans. Nil when
	// ExecOptions.NoTrace is set.
	Trace *sim.Result
}

// Executor runs a planner core.Plan on a real nn.Network: every device of
// every stage becomes one worker goroutine executing the plan's layer range
// on its row slice of each micro-batch, stage boundaries are channel links
// with split/concat row redistribution (§V-B2), replicated stages synchronize
// gradients with a real ring all-reduce, and the whole step is recorded as a
// span trace comparable to the simulator's. It is the runtime half of the
// paper's workflow: the planner's output is executed, not only simulated.
//
// An Executor is not safe for concurrent Steps; gradients from any executed
// plan match SequentialStep on the unpartitioned network to float tolerance.
type Executor struct {
	plan *core.Plan
	opts ExecOptions

	stages []*estage
}

// estage is one pipeline stage of an Executor: the carved layer range cloned
// per replica, plus per-replica optimizers.
type estage struct {
	lo, hi int
	nets   []*nn.Network
	opts   []nn.Optimizer
}

// NewExecutor carves master into the plan's stages (one deep-copied network
// and one optimizer per replica device; master keeps the reference weights)
// and validates that the plan's profiled layers map one-to-one onto the
// network's layers.
func NewExecutor(p *core.Plan, master *nn.Network, optFactory func() nn.Optimizer, opts ExecOptions) (*Executor, error) {
	if p == nil {
		return nil, fmt.Errorf("train: executor of a nil plan")
	}
	if master == nil {
		return nil, fmt.Errorf("train: executor of a nil network")
	}
	if optFactory == nil {
		return nil, fmt.Errorf("train: executor needs an optimizer factory")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := p.CompatibleWithLayers(master.NumLayers()); err != nil {
		return nil, err
	}
	e := &Executor{plan: p, opts: opts, stages: make([]*estage, 0, len(p.Stages))}
	for _, s := range p.Stages {
		st := &estage{lo: s.Lo, hi: s.Hi}
		for r := 0; r < s.Replicas(); r++ {
			st.nets = append(st.nets, master.SliceClone(s.Lo, s.Hi))
			st.opts = append(st.opts, optFactory())
		}
		e.stages = append(e.stages, st)
	}
	return e, nil
}

// ExecutePlan carves master by p, executes one training iteration over the
// micro-batches under ctx, and applies synchronized updates — the one-shot
// form of NewExecutor followed by StepContext.
func ExecutePlan(ctx context.Context, p *core.Plan, master *nn.Network, micros []Batch, optFactory func() nn.Optimizer, opts ExecOptions) (*ExecResult, error) {
	e, err := NewExecutor(p, master, optFactory, opts)
	if err != nil {
		return nil, err
	}
	return e.StepContext(ctx, micros)
}

// Plan returns the plan the executor realizes.
func (e *Executor) Plan() *core.Plan { return e.plan }

// deviceResource names the real-trace resource of stage's device dev; the
// sim-vs-real tooling resolves per-device span sequences by this name.
func deviceResource(stage, dev int) string { return fmt.Sprintf("s%d.d%d", stage, dev) }

// NumStages returns the stage count.
func (e *Executor) NumStages() int { return len(e.stages) }

// StageParams returns the parameters of stage i's replica r, for equivalence
// checks against a reference network.
func (e *Executor) StageParams(i, r int) []nn.Param { return e.stages[i].nets[r].Params() }

// stepState carries one Step's shared runtime: micro-batches, the link
// layer, warmup depths, trace recording, and abort plumbing.
type stepState struct {
	micros []Batch
	rows   int
	m      int
	warmup []int
	bounds []*boundary
	ars    []*arGroup

	rec   *trace.Recorder // nil when tracing is off
	resID [][]int         // recorder resource per [stage][replica]

	abort     chan struct{}
	abortOnce sync.Once

	lossParts []float64
	maxStash  [][]int
	maxBytes  [][]int64
}

// now returns the recorder clock, or 0 when tracing is off.
func (ss *stepState) now() float64 {
	if ss.rec == nil {
		return 0
	}
	return ss.rec.Now()
}

// record closes a span opened at start on the worker's resource.
func (ss *stepState) record(stage, replica int, name, kind string, start float64) {
	if ss.rec == nil {
		return
	}
	ss.rec.Record(ss.resID[stage][replica], name, kind, start, ss.rec.Now())
}

// Step executes one training iteration over the micro-batches and applies
// synchronized updates.
func (e *Executor) Step(micros []Batch) (*ExecResult, error) {
	return e.StepContext(context.Background(), micros)
}

// StepContext is Step under a context: all worker goroutines unblock and the
// step returns ctx.Err() once ctx is cancelled or past its deadline.
func (e *Executor) StepContext(ctx context.Context, micros []Batch) (*ExecResult, error) {
	s := len(e.stages)
	m := len(micros)
	if m == 0 {
		return nil, fmt.Errorf("train: no micro-batches")
	}
	for _, b := range micros {
		if err := b.Validate(); err != nil {
			return nil, err
		}
		if b.X.Rows != micros[0].X.Rows {
			return nil, fmt.Errorf("train: plan-driven step needs equal micro-batches (%d vs %d rows)", b.X.Rows, micros[0].X.Rows)
		}
	}
	rows := micros[0].X.Rows
	for i, st := range e.stages {
		if r := len(st.nets); rows < r {
			return nil, fmt.Errorf("train: micro-batch of %d rows split across %d replicas of stage %d", rows, r, i)
		}
	}
	warmup, err := schedule.WarmupDepths(e.plan, schedule.Options{
		Policy: e.opts.Policy, Recompute: e.opts.Recompute, M: m, MemLimit: e.opts.MemLimit,
	})
	if err != nil {
		return nil, err
	}

	ss := &stepState{
		micros: micros, rows: rows, m: m, warmup: warmup,
		bounds:    make([]*boundary, s-1),
		ars:       make([]*arGroup, s),
		abort:     make(chan struct{}),
		lossParts: make([]float64, len(e.stages[s-1].nets)),
		maxStash:  make([][]int, s),
		maxBytes:  make([][]int64, s),
	}
	for i := 0; i < s-1; i++ {
		ss.bounds[i] = newBoundary(rows, len(e.stages[i].nets), len(e.stages[i+1].nets), m)
	}
	for i, st := range e.stages {
		ss.ars[i] = newARGroup(len(st.nets))
		ss.maxStash[i] = make([]int, len(st.nets))
		ss.maxBytes[i] = make([]int64, len(st.nets))
	}
	if !e.opts.NoTrace {
		ss.rec = trace.NewRecorder()
		ss.resID = make([][]int, s)
		for i := range e.stages {
			devs := e.plan.Stages[i].Devices
			ss.resID[i] = make([]int, len(devs))
			for r, d := range devs {
				ss.resID[i][r] = ss.rec.Resource(deviceResource(i, int(d)))
			}
		}
	}

	// A cancelled context aborts every blocked worker.
	stop := context.AfterFunc(ctx, func() {
		ss.abortOnce.Do(func() { close(ss.abort) })
	})
	defer stop()

	wallStart := time.Now()
	errs := make([][]error, s)
	var wg sync.WaitGroup
	for i, st := range e.stages {
		errs[i] = make([]error, len(st.nets))
		for r := range st.nets {
			wg.Add(1)
			go func(i, r int) {
				defer wg.Done()
				if err := e.runWorker(ss, i, r); err != nil {
					errs[i][r] = err
					ss.abortOnce.Do(func() { close(ss.abort) })
				}
			}(i, r)
		}
	}
	wg.Wait()
	wall := time.Since(wallStart).Seconds()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, stageErrs := range errs {
		for _, err := range stageErrs {
			if err != nil && !errors.Is(err, errAborted) {
				return nil, err
			}
		}
	}

	res := &ExecResult{
		M:             m,
		Warmup:        warmup,
		MaxStash:      make([]int, s),
		MaxStashBytes: make([]int64, s),
		WallTime:      wall,
	}
	for _, l := range ss.lossParts {
		res.Loss += l
	}
	res.Loss /= float64(m)
	for i := range e.stages {
		for r := range e.stages[i].nets {
			res.MaxStash[i] = max(res.MaxStash[i], ss.maxStash[i][r])
			res.MaxStashBytes[i] = max(res.MaxStashBytes[i], ss.maxBytes[i][r])
		}
	}
	if ss.rec != nil {
		res.Trace = ss.rec.Result()
	}
	return res, nil
}

// rstash holds one in-flight micro-batch's backward state on one replica.
type rstash struct {
	input *tensor.Matrix
	ctxs  []nn.Ctx
	bytes int64
}

// runWorker executes stage i's replica r: its slice of every micro-batch in
// the policy's stage order, then the stage gradient sync and weight update.
func (e *Executor) runWorker(ss *stepState, i, r int) error {
	st := e.stages[i]
	net := st.nets[r]
	s := len(e.stages)
	last := i == s-1
	offs := partition(ss.rows, len(st.nets))
	myLo, myHi := offs[r], offs[r+1]
	myWeight := float64(myHi-myLo) / float64(ss.rows)

	order := schedule.StageOrder(e.opts.Policy, ss.m, ss.warmup[i])
	stashes := make(map[int]*rstash, ss.m)
	pending := make(map[int]*tensor.Matrix, ss.m)
	var loss float64
	var curBytes int64

	for _, o := range order {
		if !o.Backward {
			// ---- forward of micro-batch o.M ----
			var x *tensor.Matrix
			if i == 0 {
				x = ss.micros[o.M].X.RowSlice(myLo, myHi)
			} else {
				var err error
				x, err = ss.bounds[i-1].recvFwd(r, o.M, ss.abort)
				if err != nil {
					return err
				}
			}
			start := ss.now()
			out, ctxs := net.Forward(x)
			sh := &rstash{ctxs: ctxs}
			for _, c := range ctxs {
				sh.bytes += nn.StashBytes(c)
			}
			if e.opts.Recompute {
				sh.input = x.Clone()
				sh.ctxs = nil
				sh.bytes = int64(len(sh.input.Data)) * 8
			}
			stashes[o.M] = sh
			curBytes += sh.bytes
			if len(stashes) > ss.maxStash[i][r] {
				ss.maxStash[i][r] = len(stashes)
			}
			if curBytes > ss.maxBytes[i][r] {
				ss.maxBytes[i][r] = curBytes
			}
			if last {
				// Per-slice loss and logits gradient, rescaled from the
				// slice mean to the global micro-batch mean so replicated
				// last stages reproduce the unreplicated gradient exactly.
				l, dy := nn.SoftmaxCrossEntropy(out, ss.micros[o.M].Y[myLo:myHi])
				loss += l * myWeight
				dy.Scale(myWeight)
				pending[o.M] = dy
			}
			ss.record(i, r, fmt.Sprintf("F%d.s%d", o.M, i), "fwd", start)
			if !last {
				ss.bounds[i].sendFwd(r, o.M, out)
			}
			continue
		}

		// ---- backward of micro-batch o.M ----
		var dy *tensor.Matrix
		if last {
			dy = pending[o.M]
			delete(pending, o.M)
		} else {
			var err error
			dy, err = ss.bounds[i].recvBwd(r, o.M, ss.abort)
			if err != nil {
				return err
			}
		}
		sh := stashes[o.M]
		if sh == nil {
			return fmt.Errorf("train: stage %d backward B%d without stash", i, o.M)
		}
		start := ss.now()
		if e.opts.Recompute {
			// Re-run the forward pass to regenerate activation contexts; the
			// replay is part of the backward span, like the simulator charges
			// re-computation to the backward task.
			_, sh.ctxs = net.Forward(sh.input)
		}
		dx := net.Backward(sh.ctxs, dy)
		delete(stashes, o.M)
		curBytes -= sh.bytes
		ss.record(i, r, fmt.Sprintf("B%d.s%d", o.M, i), "bwd", start)
		if i > 0 {
			ss.bounds[i-1].sendBwd(r, o.M, dx)
		}
	}

	// Gradient sync and weight update (Fig. 10): sum replica gradients with
	// a real ring all-reduce, average over micro-batches, apply identical
	// updates per replica.
	start := ss.now()
	if err := ss.ars[i].reduce(r, net.Params(), ss.abort); err != nil {
		return err
	}
	scaleGrads(net.Params(), 1/float64(ss.m))
	st.opts[r].Step(net.Params())
	ss.record(i, r, fmt.Sprintf("AR.s%d", i), "allreduce", start)
	if last {
		ss.lossParts[r] = loss
	}
	return nil
}

// VerifyOrder checks the sim-vs-real contract for one executed step: for
// every stage of the plan, each device's real fwd/bwd/allreduce span
// sequence must equal the simulated schedule's sequence on that stage's
// executor resource. simRes and execRes must come from the same plan, policy,
// re-computation setting and micro-batch count; nil is returned when every
// device matches.
func VerifyOrder(p *core.Plan, simRes *schedule.Result, execRes *ExecResult) error {
	if execRes == nil || execRes.Trace == nil {
		return fmt.Errorf("train: no real trace to verify (NoTrace set?)")
	}
	if simRes == nil || simRes.Sim == nil {
		return fmt.Errorf("train: no simulated schedule to verify against")
	}
	for i, st := range p.Stages {
		want := spanSequence(simRes.Sim, simRes.StageResource(i))
		for _, d := range st.Devices {
			res := execRes.Trace.ResourceIndex(deviceResource(i, int(d)))
			if res < 0 {
				return fmt.Errorf("train: stage %d device %d missing from real trace", i, d)
			}
			got := spanSequence(execRes.Trace, res)
			if len(got) != len(want) {
				return fmt.Errorf("train: stage %d device %d executed %d events, simulator scheduled %d",
					i, d, len(got), len(want))
			}
			for j := range want {
				if got[j] != want[j] {
					return fmt.Errorf("train: stage %d device %d event %d: real %q vs simulated %q",
						i, d, j, got[j], want[j])
				}
			}
		}
	}
	return nil
}

// spanSequence extracts one resource's fwd/bwd/allreduce span names in
// execution order.
func spanSequence(r *sim.Result, res int) []string {
	var out []string
	for _, s := range r.Spans {
		if s.Resource != res {
			continue
		}
		switch s.Kind {
		case "fwd", "bwd", "allreduce":
			out = append(out, s.Name)
		}
	}
	return out
}

// arGroup synchronizes one stage's replica gradients at iteration end: every
// worker arrives with its flattened gradients, the last arrival runs the
// ring all-reduce over all of them, and each worker leaves with the summed
// vector scattered back into its parameters.
type arGroup struct {
	mu      sync.Mutex
	bufs    [][]float64
	arrived int
	done    chan struct{}
}

// newARGroup returns a single-use barrier for n replicas.
func newARGroup(n int) *arGroup {
	return &arGroup{bufs: make([][]float64, n), done: make(chan struct{})}
}

// reduce is the per-worker rendezvous: it blocks until every replica of the
// stage has contributed, then installs the all-reduced sum into params. It
// returns errAborted when the step aborts before the stage completes.
func (g *arGroup) reduce(r int, params []nn.Param, abort <-chan struct{}) error {
	n := len(g.bufs)
	if n == 1 {
		return nil
	}
	g.mu.Lock()
	g.bufs[r] = GradVector(params)
	g.arrived++
	lastArrival := g.arrived == n
	g.mu.Unlock()
	if lastArrival {
		RingAllReduce(g.bufs)
		close(g.done)
	} else {
		select {
		case <-g.done:
		case <-abort:
			return errAborted
		}
	}
	setGradVector(params, g.bufs[r])
	return nil
}
