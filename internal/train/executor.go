package train

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"dapple/internal/core"
	"dapple/internal/hardware"
	"dapple/internal/nn"
	"dapple/internal/schedule"
	"dapple/internal/sim"
	"dapple/internal/tensor"
	"dapple/internal/trace"
	"dapple/internal/transport"
)

// errAborted is returned by workers unblocked by the step's abort channel;
// StepContext replaces it with the first real failure (or ctx.Err()). It is
// the transport abort sentinel, so edge receives unblocked by the same
// channel need no translation.
var errAborted = transport.ErrAborted

// DistConfig places one executor inside a multi-process training session:
// the TCP mesh connecting the worker processes, this process's rank, and
// the device-to-rank placement. An executor with a DistConfig hosts only
// the stage replicas whose devices map to its rank; stage-boundary pairs
// crossing ranks run over the TCP transport, same-rank pairs stay on the
// zero-copy in-process backend, and replica groups spanning ranks
// synchronize gradients hierarchically (local reduce, cross-process
// exchange, local broadcast).
type DistConfig struct {
	// Transport is the process mesh (connected to every peer rank that
	// shares a stage boundary or replica group with this one). The executor
	// only opens edges and groups on it, so any Transport works — the TCP
	// backend in production, a transport.Chaos wrapper in fault-injection
	// tests.
	Transport transport.Transport
	// Rank is this process's rank in the mesh.
	Rank int
	// DeviceRanks maps every cluster device ID to its hosting rank.
	DeviceRanks []int
}

// rankOf returns the hosting rank of device d.
func (dc *DistConfig) rankOf(d hardware.DeviceID) int { return dc.DeviceRanks[int(d)] }

// ExecOptions configure plan-driven execution.
type ExecOptions struct {
	// Policy selects the micro-batch schedule. It is the simulator's policy
	// type (schedule.GPipe floods, schedule.DapplePA/DapplePB run early
	// backward), so one plan drives both runtimes identically.
	Policy schedule.Policy

	// Recompute stashes only each stage's input and re-runs the forward pass
	// during backward (§III re-computation).
	Recompute bool

	// MemLimit bounds the per-device retained state used to derive warmup
	// depths (0 = the plan cluster's device memory, negative = unlimited),
	// mirroring schedule.Options.MemLimit so real warmup matches simulated.
	MemLimit int64

	// PrefetchDepth bounds how many forward inputs each worker's receive
	// prefetcher may assemble ahead of compute (0 = default 2, classic
	// double-buffering). Depth only changes overlap, never event order: the
	// recorded compute spans still follow the schedule exactly. Prefetched
	// but not-yet-consumed inputs are transfer-side state OUTSIDE the stash
	// memory model: they are not charged to MaxStash/MaxStashBytes (which
	// mirror the simulator's stashed-for-backward accounting) nor bounded by
	// MemLimit, so real resident bytes can exceed MaxStashBytes by up to
	// depth+1 in-flight micro-batch inputs per device (depth buffered ready
	// plus one assembled in the prefetcher's hand).
	PrefetchDepth int

	// NoTrace skips span recording, for benchmarks measuring pure execution.
	NoTrace bool

	// BucketBytes caps the flattened size of one gradient bucket of the
	// overlapped backward-time all-reduce (0 = default 16 KiB). Replicated
	// stages partition their gradient vector into layer-aligned buckets and
	// launch each bucket's collective as soon as its layers' backward
	// completes on every local replica, hiding synchronization behind the
	// remaining backward compute. Results are bit-identical to the
	// monolithic path for every bucket size.
	BucketBytes int

	// MonolithicAllReduce disables backward-time bucketing, retaining the
	// single post-backward collective as the oracle path the bucketed
	// results are pinned against.
	MonolithicAllReduce bool

	// Dist, when non-nil, runs this executor as one rank of a multi-process
	// session: only replicas placed on Dist.Rank are hosted and cross-rank
	// traffic uses Dist.Transport. Nil (the default) hosts every replica
	// in-process.
	Dist *DistConfig
}

// ExecResult reports one really-executed training iteration of a plan.
type ExecResult struct {
	// Loss is the micro-batch-averaged cross-entropy of the iteration.
	Loss float64
	// M is the number of micro-batches executed.
	M int
	// Warmup is the per-stage early-backward depth K_i actually used; it is
	// derived through schedule.WarmupDepths and therefore always equals the
	// simulator's for the same plan and options.
	Warmup []int
	// MaxStash is the peak number of concurrently stashed micro-batches per
	// stage (identical on every replica of a stage).
	MaxStash []int
	// MaxStashBytes is the peak stashed activation volume on any single
	// device of each stage — the simulator's stashed-for-backward memory
	// model. Transfer-side state (prefetched inputs, recycled link buffers)
	// is excluded; see ExecOptions.PrefetchDepth.
	MaxStashBytes []int64
	// WallTime is the wall-clock duration of the step in seconds.
	WallTime float64
	// CommSeconds is the per-stage busy time of the gradient collectives
	// (the time the step's comm driver, or the monolithic last arriver,
	// spent inside reduce), in seconds of wall clock.
	CommSeconds []float64
	// CommWaitSeconds is the per-stage exposed synchronization time: the
	// max over local replicas of wall clock spent blocked at the step-end
	// gradient sync after compute finished. With bucketing, collectives
	// launched during backward have already run by then, so the gap between
	// CommSeconds and CommWaitSeconds is the communication hidden behind
	// compute.
	CommWaitSeconds []float64
	// Trace holds the real-execution spans in the simulator's result shape
	// (resources "s<stage>.d<device>", task names "F<m>.s<i>", "B<m>.s<i>",
	// "AR.s<i>"), directly comparable to a schedule.Result's spans. Nil when
	// ExecOptions.NoTrace is set.
	Trace *sim.Result
}

// OverlapEfficiency reports the fraction of gradient-collective busy time
// hidden behind compute this step: 1 - sum(CommWaitSeconds)/sum(CommSeconds),
// clamped to [0, 1]. Zero when the step ran no collectives (or hid nothing);
// the exposed wait includes time spent waiting for straggler replicas at the
// sync point, so a perfectly overlapped but imbalanced stage reads below 1.
func (r *ExecResult) OverlapEfficiency() float64 {
	var comm, wait float64
	for _, c := range r.CommSeconds {
		comm += c
	}
	for _, w := range r.CommWaitSeconds {
		wait += w
	}
	if comm <= 0 {
		return 0
	}
	eff := 1 - wait/comm
	if eff < 0 {
		return 0
	}
	if eff > 1 {
		return 1
	}
	return eff
}

// Executor runs a planner core.Plan on a real nn.Network: every device of
// every stage becomes one worker goroutine executing the plan's layer range
// on its row slice of each micro-batch, stage boundaries are channel links
// with split/concat row redistribution (§V-B2), replicated stages synchronize
// gradients with a real ring all-reduce, and the whole step is recorded as a
// span trace comparable to the simulator's. It is the runtime half of the
// paper's workflow: the planner's output is executed, not only simulated.
//
// The executor is allocation-free at steady state: every buffer a step
// touches — layer activations and gradients (per-worker tensor.Pool
// workspaces), link transfer buffers, all-reduce scratch, schedule orders,
// span names, trace buffers — is owned by the Executor and reused across
// Steps, so after one warm-up iteration with a given micro-batch geometry
// the hot path spends its time in compute, not the allocator. Forward
// receives are prefetched by a per-worker goroutine (double-buffered by
// default) so cross-stage transfers overlap compute.
//
// An Executor is not safe for concurrent Steps (it reuses per-step state);
// gradients from any executed plan match SequentialStep on the unpartitioned
// network to float tolerance.
type Executor struct {
	plan *core.Plan
	opts ExecOptions

	stages []*estage

	// Construction-time persistent state.
	rec       *trace.Recorder // nil when tracing is off
	resID     [][]int         // recorder resource per [stage][replica]
	errs      [][]error       // per-step worker errors, reused
	lossParts []float64       // last stage's per-replica loss, reused

	// inproc realizes same-process stage-boundary edges (all of them when
	// opts.Dist is nil).
	inproc *transport.Inproc

	// gradsDirty marks that an aborted step may have left partial gradient
	// accumulations in non-committed stages; the next step zeroes them
	// before computing so its update is built from its own gradients alone.
	gradsDirty bool

	// Geometry-dependent caches, rebuilt when (rows, m) changes or a step
	// aborts with transfers in flight.
	rtRows, rtM int
	rtValid     bool
	bounds      []*boundary
	warmup      []int

	ss stepState
}

// estage is one pipeline stage of an Executor: the carved layer range cloned
// per replica, per-replica optimizers and worker state, the stage's gradient
// all-reduce group, and the geometry-dependent schedule caches every replica
// shares.
type estage struct {
	lo, hi int
	repl   int                 // global replica count
	devs   []hardware.DeviceID // replica devices, global
	hosted []bool              // replica hosted in this process
	local  []int               // replica -> local index among hosted (-1)
	nets   []*nn.Network       // indexed by replica; nil when not hosted
	opts   []nn.Optimizer
	work   []*workerState
	ar     *arGroup // nil when no replica is hosted here

	// Rebuilt by ensureRuntime per (rows, m) geometry.
	offs     []int         // replica row offsets, len(nets)+1
	order    []schedule.Op // the stage's FW/BW sequence
	fwdOrder []int         // micro-batch ids in forward arrival order
	fwdNames []string      // span names "F<m>.s<i>", reused every step
	bwdNames []string      // span names "B<m>.s<i>"
	arName   string        // span name "AR.s<i>"
}

// workerState is one replica worker's persistent runtime: its workspace
// arena, cached parameter list, gradient flattening buffer, per-micro-batch
// stash slots, and (stages > 0) its receive prefetcher.
type workerState struct {
	ws      *nn.Workspace
	params  []nn.Param
	gradBuf []float64

	// bwHook, set on bucketed stages, fires per layer during the final
	// backward pass: it flattens the completed bucket's gradients into
	// gradBuf and (except for the head bucket, withheld until the sync
	// point as the all-or-nothing gate) reports them to the all-reduce
	// group, launching the bucket's collective while backward continues.
	bwHook func(layer int)

	stashes []rstash         // indexed by micro-batch, len m
	pending []*tensor.Matrix // last stage: pooled loss gradients
	xHdrs   []tensor.Matrix  // stage 0: reusable input view headers
	bparts  []transport.Msg  // recvBwd scratch
	pf      *prefetcher      // stages > 0: forward-input prefetcher

	liveStash int
	curBytes  int64
	maxStash  int
	maxBytes  int64
	commWait  int64 // nanos blocked at the step-end gradient sync
}

// rstash holds one in-flight micro-batch's backward state on one replica.
type rstash struct {
	run    nn.WSRun
	in     *tensor.Matrix      // forward input (view or assembled buffer)
	inFree chan *tensor.Matrix // recycle destination for in (nil for views)
	out    *tensor.Matrix      // recompute: detached output, held until bwd
	bytes  int64
	live   bool
}

// NewExecutor carves master into the plan's stages (one deep-copied network
// and one optimizer per replica device; master keeps the reference weights)
// and validates that the plan's profiled layers map one-to-one onto the
// network's layers.
func NewExecutor(p *core.Plan, master *nn.Network, optFactory func() nn.Optimizer, opts ExecOptions) (*Executor, error) {
	if p == nil {
		return nil, fmt.Errorf("train: executor of a nil plan")
	}
	if master == nil {
		return nil, fmt.Errorf("train: executor of a nil network")
	}
	if optFactory == nil {
		return nil, fmt.Errorf("train: executor needs an optimizer factory")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := p.CompatibleWithLayers(master.NumLayers()); err != nil {
		return nil, err
	}
	dist := opts.Dist
	if dist != nil {
		if dist.Transport == nil {
			return nil, fmt.Errorf("train: distributed executor needs a transport")
		}
		if n := p.Cluster.NumDevices(); len(dist.DeviceRanks) < n {
			return nil, fmt.Errorf("train: device-rank map covers %d of %d devices", len(dist.DeviceRanks), n)
		}
	}
	e := &Executor{plan: p, opts: opts, inproc: transport.NewInproc(), stages: make([]*estage, 0, len(p.Stages))}
	for si, s := range p.Stages {
		st := &estage{lo: s.Lo, hi: s.Hi, repl: s.Replicas(), devs: s.Devices}
		st.nets = make([]*nn.Network, st.repl)
		st.opts = make([]nn.Optimizer, st.repl)
		st.work = make([]*workerState, st.repl)
		st.hosted = make([]bool, st.repl)
		st.local = make([]int, st.repl)
		nlocal := 0
		var localDevs []hardware.DeviceID
		for r := 0; r < st.repl; r++ {
			st.local[r] = -1
			if dist != nil && dist.rankOf(s.Devices[r]) != dist.Rank {
				continue
			}
			st.hosted[r] = true
			st.local[r] = nlocal
			nlocal++
			localDevs = append(localDevs, s.Devices[r])
			net := master.SliceClone(s.Lo, s.Hi)
			st.nets[r] = net
			st.opts[r] = optFactory()
			st.work[r] = &workerState{ws: nn.NewWorkspace(), params: net.Params()}
		}
		if nlocal > 0 {
			var size int
			for r := range st.work {
				if st.work[r] == nil {
					continue
				}
				for _, pr := range st.work[r].params {
					size += len(pr.G.Data)
				}
				break
			}
			if st.repl > 1 {
				for _, w := range st.work {
					if w != nil {
						w.gradBuf = make([]float64, size)
					}
				}
			}
			// A stage whose replica group spans worker processes exchanges
			// gradients over the mesh; the member ranks are every rank
			// hosting one of the stage's devices.
			var ranks []int
			if dist != nil && size > 0 {
				ranks = stageRanks(dist, s.Devices)
				if len(ranks) < 2 {
					ranks = nil
				}
			}
			var specs []bucketSpec
			var hostedNet *nn.Network
			for r := range st.nets {
				if st.nets[r] != nil {
					hostedNet = st.nets[r]
					break
				}
			}
			if !opts.MonolithicAllReduce && size > 0 && st.repl > 1 {
				specs = bucketLayout(hostedNet, opts.BucketBytes)
			}
			if len(specs) > 0 {
				// Bucketed backward-time overlap: one barrier and collective
				// per bucket, no monolithic collective. Cross-process bucket
				// groups get their own deterministic gid encoding, disjoint
				// from the monolithic per-stage ids, so every rank hosting
				// the stage opens the same groups.
				st.ar = &arGroup{bufs: make([][]float64, nlocal), done: make(chan struct{}), algo: "none"}
				if ranks != nil {
					st.ar.algo = "hierarchical"
				} else if nlocal > 1 {
					if serverGroups(p.Cluster, localDevs) != nil {
						st.ar.algo = "hierarchical"
					} else {
						st.ar.algo = "ring"
					}
				}
				var openDist func(b, sz int) (transport.Group, error)
				if ranks != nil {
					si, ranks := si, ranks
					openDist = func(b, sz int) (transport.Group, error) {
						return dist.Transport.OpenGroup(bucketGID(si, b), ranks, sz)
					}
				}
				if err := st.ar.initBuckets(nlocal, p.Cluster, localDevs, len(hostedNet.Layers), specs, openDist); err != nil {
					return nil, err
				}
				for r := range st.nets {
					if st.work[r] == nil {
						continue
					}
					w, lr, g := st.work[r], st.local[r], st.ar
					w.bwHook = func(li int) {
						b := g.layerBucket[li]
						if b < 0 {
							return
						}
						sp := &g.buckets[b].spec
						flattenParamGrads(w.gradBuf[sp.Off:sp.End], w.params, sp.PLo, sp.PHi)
						if b > 0 {
							g.arriveBucket(lr, b, w.gradBuf[sp.Off:sp.End])
						}
					}
				}
			} else {
				var grp transport.Group
				if ranks != nil {
					var err error
					if grp, err = dist.Transport.OpenGroup(si, ranks, size); err != nil {
						return nil, err
					}
				}
				st.ar = newARGroup(nlocal, size, p.Cluster, localDevs, grp)
			}
		}
		e.stages = append(e.stages, st)
	}
	e.errs = make([][]error, len(e.stages))
	for i, st := range e.stages {
		e.errs[i] = make([]error, len(st.nets))
	}
	e.lossParts = make([]float64, len(e.stages[len(e.stages)-1].nets))
	if !opts.NoTrace {
		e.rec = trace.NewRecorder()
		e.resID = make([][]int, len(p.Stages))
		for i, s := range p.Stages {
			e.resID[i] = make([]int, len(s.Devices))
			for r, d := range s.Devices {
				e.resID[i][r] = e.rec.Resource(deviceResource(i, int(d)))
			}
		}
	}
	return e, nil
}

// stageRanks returns the sorted distinct ranks hosting the stage's devices.
func stageRanks(dist *DistConfig, devs []hardware.DeviceID) []int {
	var ranks []int
	for _, d := range devs {
		r := dist.rankOf(d)
		dup := false
		for _, x := range ranks {
			if x == r {
				dup = true
				break
			}
		}
		if !dup {
			ranks = append(ranks, r)
		}
	}
	for i := 1; i < len(ranks); i++ {
		for j := i; j > 0 && ranks[j] < ranks[j-1]; j-- {
			ranks[j], ranks[j-1] = ranks[j-1], ranks[j]
		}
	}
	return ranks
}

// ExecutePlan carves master by p, executes one training iteration over the
// micro-batches under ctx, and applies synchronized updates — the one-shot
// form of NewExecutor followed by StepContext.
func ExecutePlan(ctx context.Context, p *core.Plan, master *nn.Network, micros []Batch, optFactory func() nn.Optimizer, opts ExecOptions) (*ExecResult, error) {
	e, err := NewExecutor(p, master, optFactory, opts)
	if err != nil {
		return nil, err
	}
	return e.StepContext(ctx, micros)
}

// Plan returns the plan the executor realizes.
func (e *Executor) Plan() *core.Plan { return e.plan }

// deviceResource names the real-trace resource of stage's device dev; the
// sim-vs-real tooling resolves per-device span sequences by this name.
func deviceResource(stage, dev int) string { return fmt.Sprintf("s%d.d%d", stage, dev) }

// NumStages returns the stage count.
func (e *Executor) NumStages() int { return len(e.stages) }

// StageParams returns the parameters of stage i's replica r, for equivalence
// checks against a reference network.
func (e *Executor) StageParams(i, r int) []nn.Param { return e.stages[i].nets[r].Params() }

// StageOptimizer returns the optimizer of stage i's replica r (nil when the
// replica is not hosted here), so session checkpointing can capture and
// restore per-replica optimizer state.
func (e *Executor) StageOptimizer(i, r int) nn.Optimizer { return e.stages[i].opts[r] }

// HostsReplica reports whether stage i's replica r lives in this process
// (always true without a DistConfig).
func (e *Executor) HostsReplica(i, r int) bool { return e.stages[i].hosted[r] }

// AllReduceAlgo names the gradient collective stage i selected from the
// plan topology: "none" for unreplicated or parameter-free stages, "ring"
// for single-server (or one-replica-per-server) groups, "hierarchical" for
// server-spanning groups with co-located replicas and for groups spanning
// worker processes. Stages with no locally hosted replica return "".
func (e *Executor) AllReduceAlgo(i int) string {
	if e.stages[i].ar == nil {
		return ""
	}
	return e.stages[i].ar.algorithm()
}

// stepAbort is one step's abort latch. It is allocated per step (not reused)
// so that a context.AfterFunc callback firing after its step already
// returned closes its own dead latch instead of racing the next step's —
// stop() does not wait for an in-flight callback.
type stepAbort struct {
	ch   chan struct{}
	once sync.Once
}

// fire closes the latch once.
func (a *stepAbort) fire() {
	a.once.Do(func() { close(a.ch) })
}

// stepState carries one Step's shared runtime: micro-batches and abort
// plumbing. It lives inside the Executor and is reset, not reallocated, per
// step (except the abort latch — see stepAbort).
type stepState struct {
	micros []Batch
	rows   int
	m      int

	abort chan struct{} // the current step's stepAbort.ch
}

// now returns the recorder clock, or 0 when tracing is off.
func (e *Executor) now() float64 {
	if e.rec == nil {
		return 0
	}
	return e.rec.Now()
}

// record closes a span opened at start on the worker's resource.
func (e *Executor) record(stage, replica int, name, kind string, start float64) {
	if e.rec == nil {
		return
	}
	e.rec.Record(e.resID[stage][replica], name, kind, start, e.rec.Now())
}

// ensureRuntime (re)builds the geometry-dependent caches — warmup depths,
// boundaries with their transfer state, schedule orders, span-name tables,
// stash slots and prefetchers — when the step geometry changed or the last
// step aborted with links in an undefined state. A repeated geometry is a
// no-op, which is what makes steady-state iterations allocation-free.
func (e *Executor) ensureRuntime(rows, m int) error {
	if e.rtValid && e.rtRows == rows && e.rtM == m {
		return nil
	}
	warmup, err := schedule.WarmupDepths(e.plan, schedule.Options{
		Policy: e.opts.Policy, Recompute: e.opts.Recompute, M: m, MemLimit: e.opts.MemLimit,
	})
	if err != nil {
		return err
	}
	e.warmup = warmup
	s := len(e.stages)
	e.bounds = make([]*boundary, s-1)
	for i := 0; i < s-1; i++ {
		var err error
		if e.bounds[i], err = e.buildBoundary(i, rows, m); err != nil {
			return err
		}
	}
	depth := e.opts.PrefetchDepth
	if depth <= 0 {
		depth = 2
	}
	for i, st := range e.stages {
		st.offs = partition(rows, st.repl)
		st.order = schedule.StageOrder(e.opts.Policy, m, warmup[i])
		st.fwdOrder = st.fwdOrder[:0]
		for _, o := range st.order {
			if !o.Backward {
				st.fwdOrder = append(st.fwdOrder, o.M)
			}
		}
		st.fwdNames = make([]string, m)
		st.bwdNames = make([]string, m)
		for mb := 0; mb < m; mb++ {
			st.fwdNames[mb] = fmt.Sprintf("F%d.s%d", mb, i)
			st.bwdNames[mb] = fmt.Sprintf("B%d.s%d", mb, i)
		}
		st.arName = fmt.Sprintf("AR.s%d", i)
		for r, w := range st.work {
			if w == nil {
				continue
			}
			w.stashes = make([]rstash, m)
			w.pending = make([]*tensor.Matrix, m)
			if i == 0 {
				w.xHdrs = make([]tensor.Matrix, m)
			}
			if w.bparts == nil {
				w.bparts = make([]transport.Msg, 0, 4)
			}
			if i > 0 {
				w.pf = &prefetcher{
					bound: e.bounds[i-1],
					q:     r,
					rows:  st.offs[r+1] - st.offs[r],
					ready: make(chan prefetched, depth),
					free:  make(chan *tensor.Matrix, m),
					parts: make([]transport.Msg, 0, e.stages[i-1].repl),
				}
			}
		}
	}
	e.rtRows, e.rtM, e.rtValid = rows, m, true
	return nil
}

// buildBoundary realizes cut i's edge matrix: pairs whose endpoints both
// live in this process share an in-process edge, pairs crossing ranks open
// the TCP edge toward the remote endpoint, and pairs entirely remote stay
// nil. Without a DistConfig every pair is in-process — today's channel
// semantics exactly.
func (e *Executor) buildBoundary(i, rows, m int) (*boundary, error) {
	snd, rcv := e.stages[i], e.stages[i+1]
	dist := e.opts.Dist
	mk := func(id transport.EdgeID) (transport.Edge, error) {
		// For Bwd edges the EdgeID's S is the downstream (receiver stage)
		// replica and Q the upstream one; hosting is a property of the
		// stages, not of the message direction.
		up, down := id.S, id.Q
		if id.Dir == transport.Bwd {
			up, down = id.Q, id.S
		}
		uh, dh := snd.hosted[up], rcv.hosted[down]
		switch {
		case uh && dh:
			return e.inproc.OpenEdge(id, 0, m)
		case uh:
			return dist.Transport.OpenEdge(id, dist.rankOf(rcv.devs[down]), m)
		case dh:
			return dist.Transport.OpenEdge(id, dist.rankOf(snd.devs[up]), m)
		default:
			return nil, nil
		}
	}
	return newBoundary(i, rows, snd.repl, rcv.repl, m, mk)
}

// Step executes one training iteration over the micro-batches and applies
// synchronized updates.
func (e *Executor) Step(micros []Batch) (*ExecResult, error) {
	return e.StepContext(context.Background(), micros)
}

// StepContext is Step under a context: all worker goroutines unblock and the
// step returns ctx.Err() once ctx is cancelled or past its deadline. An
// aborted step applies each stage's weight update all-or-nothing (see
// arGroup.arrive/abandon), so replicas within a stage stay identical and the
// executor remains usable; different stages may however land on different
// iterations (some updated, some not), like any training step torn by
// cancellation.
func (e *Executor) StepContext(ctx context.Context, micros []Batch) (*ExecResult, error) {
	s := len(e.stages)
	m := len(micros)
	if m == 0 {
		return nil, fmt.Errorf("train: no micro-batches")
	}
	for _, b := range micros {
		if err := b.Validate(); err != nil {
			return nil, err
		}
		if b.X.Rows != micros[0].X.Rows {
			return nil, fmt.Errorf("train: plan-driven step needs equal micro-batches (%d vs %d rows)", b.X.Rows, micros[0].X.Rows)
		}
	}
	rows := micros[0].X.Rows
	for i, st := range e.stages {
		if rows < st.repl {
			return nil, fmt.Errorf("train: micro-batch of %d rows split across %d replicas of stage %d", rows, st.repl, i)
		}
	}
	if err := e.ensureRuntime(rows, m); err != nil {
		return nil, err
	}

	// Per-step reset of the persistent runtime.
	ss := &e.ss
	ss.micros, ss.rows, ss.m = micros, rows, m
	ab := &stepAbort{ch: make(chan struct{})}
	ss.abort = ab.ch
	if e.rec != nil {
		e.rec.Reset()
	}
	for i, st := range e.stages {
		if st.ar != nil {
			st.ar.reset()
		}
		for r, w := range st.work {
			if w == nil {
				continue
			}
			w.liveStash, w.curBytes, w.maxStash, w.maxBytes = 0, 0, 0, 0
			w.commWait = 0
			e.errs[i][r] = nil
			if e.gradsDirty {
				// A previously aborted step may have left partial gradient
				// accumulations in stages that never committed; start clean.
				for _, p := range w.params {
					p.G.Zero()
				}
			}
		}
	}
	e.gradsDirty = false
	for i := range e.lossParts {
		e.lossParts[i] = 0
	}

	// A cancelled context aborts every blocked worker. The callback captures
	// this step's own latch: a late firing after the step returned must not
	// touch the (reused) step state of a subsequent Step.
	stop := context.AfterFunc(ctx, ab.fire)
	defer stop()

	wallStart := time.Now()
	var wg sync.WaitGroup
	for _, st := range e.stages {
		if st.ar != nil && st.ar.bucketed() {
			// The stage's per-step comm driver: runs bucket collectives in
			// arrival order while replicas keep computing. It always drains
			// exactly len(buckets) buckets (abandon resolves the buckets of
			// failed replicas), so the join below cannot hang.
			wg.Add(1)
			go func(g *arGroup) {
				defer wg.Done()
				g.runComm(ss.abort)
			}(st.ar)
		}
	}
	for i, st := range e.stages {
		for r := range st.nets {
			w := st.work[r]
			if w == nil {
				continue
			}
			if w.pf != nil {
				// Prefetchers join the step's wait group: an aborted step's
				// stale prefetcher must be fully exited before a later step
				// rebuilds the state it reads.
				wg.Add(1)
				go func(pf *prefetcher, fwdOrder []int) {
					defer wg.Done()
					pf.run(fwdOrder, ss.abort)
				}(w.pf, st.fwdOrder)
			}
			wg.Add(1)
			go func(i, r int) {
				defer wg.Done()
				if err := e.runWorker(ss, i, r); err != nil {
					e.errs[i][r] = err
					ab.fire()
				}
			}(i, r)
		}
	}
	wg.Wait()
	wall := time.Since(wallStart).Seconds()
	select {
	case <-ss.abort:
		// Aborted steps leave transfers, pool leases and possibly partial
		// gradient accumulations in an undefined state; the next step
		// rebuilds the runtime and zeroes hosted gradients first.
		e.rtValid = false
		e.gradsDirty = true
	default:
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, stageErrs := range e.errs {
		for _, err := range stageErrs {
			if err != nil && !errors.Is(err, errAborted) {
				return nil, err
			}
		}
	}

	res := &ExecResult{
		M:               m,
		Warmup:          append([]int(nil), e.warmup...),
		MaxStash:        make([]int, s),
		MaxStashBytes:   make([]int64, s),
		CommSeconds:     make([]float64, s),
		CommWaitSeconds: make([]float64, s),
		WallTime:        wall,
	}
	for _, l := range e.lossParts {
		res.Loss += l
	}
	res.Loss /= float64(m)
	for i, st := range e.stages {
		if st.ar != nil {
			res.CommSeconds[i] = float64(st.ar.commNanos) / 1e9
		}
		for _, w := range st.work {
			if w == nil {
				continue
			}
			res.MaxStash[i] = max(res.MaxStash[i], w.maxStash)
			res.MaxStashBytes[i] = max(res.MaxStashBytes[i], w.maxBytes)
			res.CommWaitSeconds[i] = max(res.CommWaitSeconds[i], float64(w.commWait)/1e9)
		}
	}
	if e.rec != nil {
		res.Trace = e.rec.Result()
	}
	return res, nil
}

// prefetched is one forward input delivered by a prefetcher, in schedule
// order: the assembled micro-batch rows plus the recycle destination for the
// buffer (nil when data is a zero-copy view into sender-owned storage).
type prefetched struct {
	m    int
	data *tensor.Matrix
	free chan *tensor.Matrix
	err  error
}

// prefetcher receives and assembles one worker's forward inputs ahead of
// compute on its own goroutine — the recv double-buffering of the ROADMAP's
// overlap item. It delivers micro-batches in the stage's forward schedule
// order; the bounded ready channel caps how far it runs ahead.
type prefetcher struct {
	bound *boundary
	q     int
	rows  int
	ready chan prefetched
	free  chan *tensor.Matrix
	parts []transport.Msg
}

// run receives every forward input of one step in order, assembling
// multi-sender parts into recycled buffers, until done or aborted. A single
// full-range part is forwarded zero-copy with its own recycle destination
// (nil for in-process views, the transfer ring for TCP arrivals).
func (pf *prefetcher) run(fwdOrder []int, abort <-chan struct{}) {
	for _, mb := range fwdOrder {
		parts, err := pf.bound.recvFwdParts(pf.q, mb, pf.parts, abort)
		if err != nil {
			if err != errAborted {
				select {
				case pf.ready <- prefetched{err: err}:
				case <-abort:
				}
			}
			return
		}
		pf.parts = parts
		var out prefetched
		if len(parts) == 1 {
			out = prefetched{m: mb, data: parts[0].Data, free: parts[0].Free}
		} else {
			dst := transport.LeaseBuf(pf.free, pf.rows, parts[0].Data.Cols)
			concatMsgRows(dst, parts)
			for _, p := range parts {
				transport.Recycle(p.Free, p.Data)
			}
			out = prefetched{m: mb, data: dst, free: pf.free}
		}
		select {
		case pf.ready <- out:
		case <-abort:
			return
		}
	}
}

// runWorker executes stage i's replica r: the compute phase (its slice of
// every micro-batch in the policy's stage order through the workspace
// pooled-buffer path), then the stage gradient sync and weight update. A
// compute-phase failure is reported to the stage's all-reduce group so peer
// replicas neither hang nor commit a torn update.
func (e *Executor) runWorker(ss *stepState, i, r int) error {
	st := e.stages[i]
	w := st.work[r]
	loss, err := e.workerCompute(ss, i, r)
	if err != nil {
		st.ar.abandon(st.local[r])
		return err
	}

	// Gradient sync and weight update (Fig. 10): sum replica gradients with
	// the stage's collective (flat ring, hierarchical, or cross-process
	// exchange), average over micro-batches, apply identical updates per
	// replica. The sync decides commit-or-abort atomically for the whole
	// stage, so an aborted step can never leave local replicas divergent.
	start := e.now()
	t0 := time.Now()
	if st.ar.bucketed() {
		// Buckets 1.. were reported layer by layer during the final backward
		// and their collectives have been overlapping compute; contribute the
		// withheld head bucket — the all-clear that this replica finished the
		// whole compute phase — and wait out whatever communication is still
		// exposed.
		g := st.ar
		hb := &g.buckets[0]
		g.arriveBucket(st.local[r], 0, w.gradBuf[hb.spec.Off:hb.spec.End])
		commit := g.waitBuckets()
		w.commWait = time.Since(t0).Nanoseconds()
		if !commit {
			return errAborted
		}
		setGradVector(w.params, w.gradBuf)
	} else {
		if st.repl > 1 {
			gradVectorInto(w.gradBuf, w.params)
		}
		ok := st.ar.arrive(st.local[r], w.gradBuf, ss.abort)
		w.commWait = time.Since(t0).Nanoseconds()
		if !ok {
			return errAborted
		}
		if st.repl > 1 {
			setGradVector(w.params, w.gradBuf)
		}
	}
	scaleGrads(w.params, 1/float64(ss.m))
	st.opts[r].Step(w.params)
	e.record(i, r, st.arName, "allreduce", start)
	if i == len(e.stages)-1 {
		e.lossParts[r] = loss
	}
	return nil
}

// workerCompute is runWorker's schedule loop, returning the worker's loss
// contribution (last stage only).
func (e *Executor) workerCompute(ss *stepState, i, r int) (float64, error) {
	st := e.stages[i]
	w := st.work[r]
	net := st.nets[r]
	ws := w.ws
	last := i == len(e.stages)-1
	myLo, myHi := st.offs[r], st.offs[r+1]
	myWeight := float64(myHi-myLo) / float64(ss.rows)

	var loss float64
	lastOp := len(st.order) - 1
	for oi, o := range st.order {
		if !o.Backward {
			// ---- forward of micro-batch o.M ----
			sh := &w.stashes[o.M]
			var x *tensor.Matrix
			if i == 0 {
				hdr := &w.xHdrs[o.M]
				ss.micros[o.M].X.RowSliceInto(hdr, myLo, myHi)
				x = hdr
				sh.inFree = nil
			} else {
				var in prefetched
				select {
				case in = <-w.pf.ready:
				case <-ss.abort:
					return 0, errAborted
				}
				if in.err != nil {
					return 0, in.err
				}
				if in.m != o.M {
					return 0, fmt.Errorf("train: stage %d expected F%d, got F%d", i, o.M, in.m)
				}
				x, sh.inFree = in.data, in.free
			}
			start := e.now()
			out := net.ForwardWS(ws, x, &sh.run)
			sh.in = x
			if e.opts.Recompute {
				sh.bytes = int64(len(x.Data)) * 8
			} else {
				sh.bytes = sh.run.StashBytes()
			}
			sh.live = true
			w.liveStash++
			w.curBytes += sh.bytes
			if w.liveStash > w.maxStash {
				w.maxStash = w.liveStash
			}
			if w.curBytes > w.maxBytes {
				w.maxBytes = w.curBytes
			}
			if last {
				// Per-slice loss and logits gradient, rescaled from the
				// slice mean to the global micro-batch mean so replicated
				// last stages reproduce the unreplicated gradient exactly.
				g := ws.Get(out.Rows, out.Cols)
				l := nn.SoftmaxCrossEntropyInto(g, out, ss.micros[o.M].Y[myLo:myHi])
				loss += l * myWeight
				g.Scale(myWeight)
				w.pending[o.M] = g
			}
			e.record(i, r, st.fwdNames[o.M], "fwd", start)
			if !last {
				if err := e.bounds[i].sendFwd(r, o.M, out); err != nil {
					return 0, err
				}
			}
			if e.opts.Recompute {
				// Drop the activation state now; keep only the input (the
				// stash the memory model charges) and the output, whose sent
				// views the next stage reads until its backward of o.M.
				sh.out = sh.run.DetachOutput()
				net.DiscardWS(ws, &sh.run)
			}
			continue
		}

		// ---- backward of micro-batch o.M ----
		sh := &w.stashes[o.M]
		if !sh.live {
			return 0, fmt.Errorf("train: stage %d backward B%d without stash", i, o.M)
		}
		var dy *tensor.Matrix
		var dyFree chan *tensor.Matrix
		if last {
			dy = w.pending[o.M]
			w.pending[o.M] = nil
		} else {
			var err error
			dy, dyFree, err = e.bounds[i].recvBwd(r, o.M, &w.bparts, ws, ss.abort)
			if err != nil {
				return 0, err
			}
		}
		start := e.now()
		if e.opts.Recompute {
			// Re-run the forward pass to regenerate activation contexts; the
			// replay is part of the backward span, like the simulator charges
			// re-computation to the backward task.
			net.ForwardWS(ws, sh.in, &sh.run)
		}
		// The schedule's final op is the last backward — the pass after which
		// every parameter gradient has its full accumulation — so only there
		// the per-layer hook reports bucket readiness to the all-reduce group.
		var hook func(int)
		if oi == lastOp {
			hook = w.bwHook
		}
		dx := net.BackwardWSLayers(ws, &sh.run, dy, hook)
		sh.live = false
		w.liveStash--
		w.curBytes -= sh.bytes
		e.record(i, r, st.bwdNames[o.M], "bwd", start)
		if i > 0 {
			if err := e.bounds[i-1].sendBwd(r, o.M, dx); err != nil {
				return 0, err
			}
		}
		// Release this micro-batch's buffers: the gradients, the forward
		// input (back to its transfer ring when it was assembled), and in
		// recompute mode the detached output.
		if dx != dy {
			ws.Put(dx)
		}
		if dyFree != nil {
			transport.Recycle(dyFree, dy)
		} else {
			ws.Put(dy)
		}
		if sh.inFree != nil {
			transport.Recycle(sh.inFree, sh.in)
			sh.inFree = nil
		}
		if sh.out != nil {
			ws.Put(sh.out)
			sh.out = nil
		}
		sh.in = nil
	}
	return loss, nil
}

// VerifyOrder checks the sim-vs-real contract for one executed step: for
// every stage of the plan, each device's real fwd/bwd/allreduce span
// sequence must equal the simulated schedule's sequence on that stage's
// executor resource. simRes and execRes must come from the same plan, policy,
// re-computation setting and micro-batch count; nil is returned when every
// device matches.
func VerifyOrder(p *core.Plan, simRes *schedule.Result, execRes *ExecResult) error {
	if execRes == nil || execRes.Trace == nil {
		return fmt.Errorf("train: no real trace to verify (NoTrace set?)")
	}
	if simRes == nil || simRes.Sim == nil {
		return fmt.Errorf("train: no simulated schedule to verify against")
	}
	for i, st := range p.Stages {
		want := spanSequence(simRes.Sim, simRes.StageResource(i))
		for _, d := range st.Devices {
			res := execRes.Trace.ResourceIndex(deviceResource(i, int(d)))
			if res < 0 {
				return fmt.Errorf("train: stage %d device %d missing from real trace", i, d)
			}
			got := spanSequence(execRes.Trace, res)
			if len(got) != len(want) {
				return fmt.Errorf("train: stage %d device %d executed %d events, simulator scheduled %d",
					i, d, len(got), len(want))
			}
			for j := range want {
				if got[j] != want[j] {
					return fmt.Errorf("train: stage %d device %d event %d: real %q vs simulated %q",
						i, d, j, got[j], want[j])
				}
			}
		}
	}
	return nil
}

// spanSequence extracts one resource's fwd/bwd/allreduce span names in
// execution order.
func spanSequence(r *sim.Result, res int) []string {
	var out []string
	for _, s := range r.Spans {
		if s.Resource != res {
			continue
		}
		switch s.Kind {
		case "fwd", "bwd", "allreduce":
			out = append(out, s.Name)
		}
	}
	return out
}

// gradVectorInto flattens the parameters' gradients into buf, which must
// have exactly the total gradient length.
func gradVectorInto(buf []float64, params []nn.Param) {
	at := 0
	for _, p := range params {
		copy(buf[at:], p.G.Data)
		at += len(p.G.Data)
	}
	if at != len(buf) {
		panic("train: gradient buffer length mismatch")
	}
}

// flattenParamGrads flattens the gradients of params[pLo:pHi] into dst,
// which must have exactly their total length — the per-bucket slice of
// gradVectorInto.
func flattenParamGrads(dst []float64, params []nn.Param, pLo, pHi int) {
	at := 0
	for _, p := range params[pLo:pHi] {
		copy(dst[at:], p.G.Data)
		at += len(p.G.Data)
	}
	if at != len(dst) {
		panic("train: bucket gradient length mismatch")
	}
}

// bucketGID deterministically encodes the transport group id of stage si's
// bucket b, disjoint from the monolithic per-stage ids (gid = si) so every
// rank hosting the stage opens the same groups. Stage counts are far below
// 1024 and bucket counts are capped at maxBuckets.
func bucketGID(si, b int) int { return (si+1)*1024 + b }
