package train

import (
	"math/rand"
	"testing"
)

// TestPartitionProperties checks the row-partition invariants over a sweep
// of geometries: offsets are monotone, start at 0, end at rows, never carve
// an empty part when rows >= k, and match tensor.SplitRows' layout (first
// parts one row larger on uneven splits).
func TestPartitionProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 2000; trial++ {
		k := 1 + rng.Intn(16)
		rows := k + rng.Intn(200)
		offs := partition(rows, k)
		if len(offs) != k+1 {
			t.Fatalf("rows=%d k=%d: %d offsets", rows, k, len(offs))
		}
		if offs[0] != 0 || offs[k] != rows {
			t.Fatalf("rows=%d k=%d: offsets span [%d,%d]", rows, k, offs[0], offs[k])
		}
		base, extra := rows/k, rows%k
		for i := 0; i < k; i++ {
			sz := offs[i+1] - offs[i]
			if sz <= 0 {
				t.Fatalf("rows=%d k=%d: part %d empty", rows, k, i)
			}
			want := base
			if i < extra {
				want++
			}
			if sz != want {
				t.Fatalf("rows=%d k=%d: part %d has %d rows, want %d", rows, k, i, sz, want)
			}
		}
	}
}

// TestIntersectTilesReceivers checks the split/concat redistribution
// invariant (§V-B2) that boundary wiring relies on: for any sender/receiver
// replica counts, each receiver's row range is tiled exactly — in sender
// order, gapless, non-overlapping — by its non-empty intersections with the
// senders, and symmetrically each sender's range is tiled by its receivers.
func TestIntersectTilesReceivers(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 2000; trial++ {
		rs := 1 + rng.Intn(8)
		rr := 1 + rng.Intn(8)
		rows := max(rs, rr) + rng.Intn(150)
		sendOffs := partition(rows, rs)
		recvOffs := partition(rows, rr)
		for q := 0; q < rr; q++ {
			at := recvOffs[q]
			for s := 0; s < rs; s++ {
				lo, hi := intersect(sendOffs, s, recvOffs, q)
				if hi <= lo {
					continue
				}
				if lo != at {
					t.Fatalf("rs=%d rr=%d rows=%d: receiver %d expected next rows at %d, sender %d covers [%d,%d)",
						rs, rr, rows, q, at, s, lo, hi)
				}
				at = hi
			}
			if at != recvOffs[q+1] {
				t.Fatalf("rs=%d rr=%d rows=%d: receiver %d tiled to %d, range ends at %d",
					rs, rr, rows, q, at, recvOffs[q+1])
			}
		}
		for s := 0; s < rs; s++ {
			at := sendOffs[s]
			for q := 0; q < rr; q++ {
				lo, hi := intersect(sendOffs, s, recvOffs, q)
				if hi <= lo {
					continue
				}
				if lo != at {
					t.Fatalf("rs=%d rr=%d rows=%d: sender %d expected next rows at %d, receiver %d covers [%d,%d)",
						rs, rr, rows, s, at, q, lo, hi)
				}
				at = hi
			}
			if at != sendOffs[s+1] {
				t.Fatalf("rs=%d rr=%d rows=%d: sender %d tiled to %d, range ends at %d",
					rs, rr, rows, s, at, sendOffs[s+1])
			}
		}
	}
}
