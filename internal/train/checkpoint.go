package train

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"dapple/internal/nn"
	"dapple/internal/tensor"
)

// Checkpoint binary format (version 1, little-endian):
//
//	u32 magic  u32 version  u64 step  u64 optStep  u32 nparams  u32 nslots
//	nparams × ( u32 rows  u32 cols  rows*cols × f64 weight )
//	nslots  × ( nparams × ( rows*cols × f64 state ) )
//	u32 crc32(IEEE) over everything above
//
// Snapshots are taken only at step boundaries, where PR 6's fail-stop
// construction guarantees no torn update can exist, so a checkpoint is
// always a state some uninterrupted run could have reached. Writes go
// through a temp file and an atomic rename: a crash mid-write leaves the
// previous checkpoint intact, and a short write fails the CRC on read.
const (
	ckptMagic   = 0xDA99C4B7
	ckptVersion = 1
)

// Checkpoint is one consistent snapshot of a training session's master
// state: the weights of every parameter in Params() order plus the shared
// optimizer's per-parameter state, tagged with the step count that produced
// it.
type Checkpoint struct {
	// Step is the number of completed training steps — the index of the next
	// step a resumed session runs.
	Step int
	// OptStep is the optimizer's update counter (Adam's t).
	OptStep int
	// Weights holds every parameter in Params() order.
	Weights []*tensor.Matrix
	// Slots holds the optimizer's per-parameter state, indexed
	// [slot][param]; empty for stateless optimizers.
	Slots [][][]float64
}

// CaptureCheckpoint snapshots net and opt after step completed steps. The
// weights and state are deep-copied, so the snapshot stays consistent while
// training continues.
func CaptureCheckpoint(step int, net *nn.Network, opt nn.Optimizer) *Checkpoint {
	params := net.Params()
	c := &Checkpoint{Step: step, Weights: make([]*tensor.Matrix, len(params))}
	for i, p := range params {
		w := tensor.New(p.W.Rows, p.W.Cols)
		copy(w.Data, p.W.Data)
		c.Weights[i] = w
	}
	if st, ok := opt.(nn.Stateful); ok {
		os := st.CaptureState(params)
		c.OptStep = os.Step
		c.Slots = os.Slots
	}
	return c
}

// Restore overwrites net's weights and opt's state from the checkpoint; the
// network skeleton must match the one the checkpoint was captured from.
func (c *Checkpoint) Restore(net *nn.Network, opt nn.Optimizer) error {
	params := net.Params()
	if len(params) != len(c.Weights) {
		return fmt.Errorf("train: checkpoint has %d params, network has %d", len(c.Weights), len(params))
	}
	for i, p := range params {
		w := c.Weights[i]
		if w.Rows != p.W.Rows || w.Cols != p.W.Cols {
			return fmt.Errorf("train: checkpoint param %d is %dx%d, network wants %dx%d",
				i, w.Rows, w.Cols, p.W.Rows, p.W.Cols)
		}
		copy(p.W.Data, w.Data)
	}
	if st, ok := opt.(nn.Stateful); ok {
		if len(c.Slots) != st.NumSlots() {
			return fmt.Errorf("train: checkpoint has %d optimizer slots, optimizer wants %d",
				len(c.Slots), st.NumSlots())
		}
		return st.RestoreState(params, nn.OptState{Step: c.OptStep, Slots: c.Slots})
	}
	if len(c.Slots) != 0 {
		return fmt.Errorf("train: checkpoint carries optimizer state for a stateless optimizer")
	}
	return nil
}

// EncodeCheckpoint serializes c into the version-1 binary format.
func EncodeCheckpoint(c *Checkpoint) []byte {
	n := 32
	for _, w := range c.Weights {
		n += 8 + 8*len(w.Data)*(1+len(c.Slots))
	}
	buf := make([]byte, 0, n+4)
	buf = binary.LittleEndian.AppendUint32(buf, ckptMagic)
	buf = binary.LittleEndian.AppendUint32(buf, ckptVersion)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(c.Step))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(c.OptStep))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.Weights)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.Slots)))
	for _, w := range c.Weights {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(w.Rows))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(w.Cols))
		for _, v := range w.Data {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	for _, slot := range c.Slots {
		for _, vec := range slot {
			for _, v := range vec {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
			}
		}
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// DecodeCheckpoint parses and validates a version-1 checkpoint: magic,
// version, internal consistency and the trailing CRC. A truncated or
// bit-flipped file is rejected, never partially applied.
func DecodeCheckpoint(buf []byte) (*Checkpoint, error) {
	if len(buf) < 36 {
		return nil, fmt.Errorf("train: checkpoint truncated (%d bytes)", len(buf))
	}
	body, sum := buf[:len(buf)-4], binary.LittleEndian.Uint32(buf[len(buf)-4:])
	if got := crc32.ChecksumIEEE(body); got != sum {
		return nil, fmt.Errorf("train: checkpoint checksum mismatch (%08x vs %08x)", got, sum)
	}
	if m := binary.LittleEndian.Uint32(body[0:]); m != ckptMagic {
		return nil, fmt.Errorf("train: bad checkpoint magic %#08x", m)
	}
	if v := binary.LittleEndian.Uint32(body[4:]); v != ckptVersion {
		return nil, fmt.Errorf("train: unsupported checkpoint version %d", v)
	}
	c := &Checkpoint{
		Step:    int(binary.LittleEndian.Uint64(body[8:])),
		OptStep: int(binary.LittleEndian.Uint64(body[16:])),
	}
	nparams := int(binary.LittleEndian.Uint32(body[24:]))
	nslots := int(binary.LittleEndian.Uint32(body[28:]))
	at := 32
	need := func(n int) error {
		if at+n > len(body) {
			return fmt.Errorf("train: checkpoint truncated at byte %d", at)
		}
		return nil
	}
	readVec := func(n int) ([]float64, error) {
		if err := need(8 * n); err != nil {
			return nil, err
		}
		v := make([]float64, n)
		for i := range v {
			v[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[at:]))
			at += 8
		}
		return v, nil
	}
	c.Weights = make([]*tensor.Matrix, nparams)
	for i := 0; i < nparams; i++ {
		if err := need(8); err != nil {
			return nil, err
		}
		rows := int(binary.LittleEndian.Uint32(body[at:]))
		cols := int(binary.LittleEndian.Uint32(body[at+4:]))
		at += 8
		if rows <= 0 || cols <= 0 {
			return nil, fmt.Errorf("train: checkpoint param %d has shape %dx%d", i, rows, cols)
		}
		w := tensor.New(rows, cols)
		vec, err := readVec(rows * cols)
		if err != nil {
			return nil, err
		}
		copy(w.Data, vec)
		c.Weights[i] = w
	}
	c.Slots = make([][][]float64, nslots)
	for s := 0; s < nslots; s++ {
		c.Slots[s] = make([][]float64, nparams)
		for i := 0; i < nparams; i++ {
			vec, err := readVec(len(c.Weights[i].Data))
			if err != nil {
				return nil, err
			}
			c.Slots[s][i] = vec
		}
	}
	if at != len(body) {
		return nil, fmt.Errorf("train: checkpoint has %d trailing bytes", len(body)-at)
	}
	return c, nil
}

// WriteCheckpoint writes c to path atomically: the bytes land in a temp file
// in the same directory, are synced, and replace path in one rename, so a
// crash mid-write never corrupts an existing checkpoint.
func WriteCheckpoint(path string, c *Checkpoint) error {
	buf := EncodeCheckpoint(c)
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// ReadCheckpoint reads and validates the checkpoint at path.
func ReadCheckpoint(path string) (*Checkpoint, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeCheckpoint(buf)
}

// ckptName names the checkpoint file of a step count.
func ckptName(step int) string { return fmt.Sprintf("ckpt-%09d.bin", step) }

// SaveCheckpoint writes c into dir (created if missing) under its
// step-derived name and returns the path.
func SaveCheckpoint(dir string, c *Checkpoint) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, ckptName(c.Step))
	if err := WriteCheckpoint(path, c); err != nil {
		return "", err
	}
	return path, nil
}

// LatestCheckpoint loads the newest valid checkpoint in dir, trying files in
// descending step order and skipping ones that fail validation (a torn write
// of a later checkpoint falls back to the previous one). It returns nil with
// no error when dir holds no usable checkpoint or does not exist.
func LatestCheckpoint(dir string) (*Checkpoint, string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, "", nil
		}
		return nil, "", err
	}
	var names []string
	for _, e := range ents {
		if n := e.Name(); !e.IsDir() && strings.HasPrefix(n, "ckpt-") && strings.HasSuffix(n, ".bin") {
			names = append(names, n)
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	for _, n := range names {
		path := filepath.Join(dir, n)
		c, err := ReadCheckpoint(path)
		if err == nil {
			return c, path, nil
		}
	}
	return nil, "", nil
}

// ckptNames lists dir's checkpoint file names in descending step order.
func ckptNames(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if n := e.Name(); !e.IsDir() && strings.HasPrefix(n, "ckpt-") && strings.HasSuffix(n, ".bin") {
			names = append(names, n)
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	return names, nil
}

// PruneCheckpoints deletes old checkpoints from dir, keeping the keep newest
// files plus — always — the newest VALID checkpoint, wherever it sits. That
// extra rule makes pruning safe around torn writes: when the newest file is
// corrupt, the valid file LatestCheckpoint would fall back to is kept even if
// it has aged out of the keep window, so retention can never destroy the only
// recoverable state. Files are validated lazily, newest first, and a dir with
// keep or fewer checkpoints is left untouched. Returns the deleted paths.
func PruneCheckpoints(dir string, keep int) ([]string, error) {
	if keep < 1 {
		return nil, fmt.Errorf("train: checkpoint retention needs keep >= 1, got %d", keep)
	}
	names, err := ckptNames(dir)
	if err != nil || len(names) <= keep {
		return nil, err
	}
	// Find the newest file that actually decodes; everything newer is torn.
	newestValid := ""
	for _, n := range names {
		if _, err := ReadCheckpoint(filepath.Join(dir, n)); err == nil {
			newestValid = n
			break
		}
	}
	var removed []string
	for i, n := range names {
		if i < keep || n == newestValid {
			continue
		}
		path := filepath.Join(dir, n)
		if err := os.Remove(path); err != nil {
			return removed, err
		}
		removed = append(removed, path)
	}
	return removed, nil
}
