package train

import (
	"context"
	"math"
	"testing"

	"dapple/internal/hardware"
	"dapple/internal/nn"
	"dapple/internal/strategy"
)

// TestProfileNetworkMeasuredFromSpans profiles a deliberately lopsided MLP —
// the middle dense layer carries ~8x the FLOPs of the first and ~32x the
// last — and checks the measured model (a) validates and maps 1:1 onto the
// network, (b) derives every per-layer time from the recorded calibration
// spans (median, floor-clamped), not from the synthFLOPS analytic formula,
// and (c) orders layer times consistently with the actual lopsided work.
func TestProfileNetworkMeasuredFromSpans(t *testing.T) {
	net := nn.MLP([]int{16, 256, 256, 4}, 11) // D(16,256), R, D(256,256), R, D(256,4)
	const rows, gbs = 16, 64
	mo := MeasureOptions{Warmup: 1, Iters: 5}
	mod, calTrace, err := ProfileNetworkMeasuredTrace(context.Background(), "lopsided", net, 16, rows, gbs, mo)
	if err != nil {
		t.Fatal(err)
	}
	if mod.NumLayers() != net.NumLayers() {
		t.Fatalf("measured %d layers for %d network layers", mod.NumLayers(), net.NumLayers())
	}
	if err := mod.Validate(); err != nil {
		t.Fatalf("measured model invalid: %v", err)
	}

	// Every model time must equal the median of that layer's recorded spans
	// (floor-clamped) — the "times come from spans" contract.
	for i := range mod.Layers {
		var fwd, bwd []float64
		for _, s := range calTrace.Spans {
			if s.Resource != i {
				continue
			}
			switch s.Kind {
			case "fwd":
				fwd = append(fwd, s.End-s.Start)
			case "bwd":
				bwd = append(bwd, s.End-s.Start)
			}
		}
		if len(fwd) != mo.Iters || len(bwd) != mo.Iters {
			t.Fatalf("layer %d recorded %d fwd / %d bwd spans, want %d each", i, len(fwd), len(bwd), mo.Iters)
		}
		if want := max(median(fwd), measuredTimeFloor); mod.Layers[i].FwdTime != want {
			t.Fatalf("layer %d FwdTime %g is not the span median %g", i, mod.Layers[i].FwdTime, want)
		}
		if want := max(median(bwd), measuredTimeFloor); mod.Layers[i].BwdTime != want {
			t.Fatalf("layer %d BwdTime %g is not the span median %g", i, mod.Layers[i].BwdTime, want)
		}
	}

	// The lopsided middle dense layer must dominate both directions.
	if mod.Layers[2].FwdTime <= mod.Layers[0].FwdTime || mod.Layers[2].FwdTime <= mod.Layers[4].FwdTime {
		t.Fatalf("fwd times not ordered by work: %g / %g / %g",
			mod.Layers[0].FwdTime, mod.Layers[2].FwdTime, mod.Layers[4].FwdTime)
	}
	if mod.Layers[2].BwdTime <= mod.Layers[4].BwdTime {
		t.Fatalf("bwd times not ordered by work: mid %g vs last %g",
			mod.Layers[2].BwdTime, mod.Layers[4].BwdTime)
	}

	// Byte accounting must be identical to the analytic profile: the two
	// profiles differ only in their time columns.
	analytic, err := ProfileNetwork("lopsided", net, 16, rows, gbs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range mod.Layers {
		if mod.Layers[i].OutputBytes != analytic.Layers[i].OutputBytes ||
			mod.Layers[i].StoredBytes != analytic.Layers[i].StoredBytes ||
			mod.Layers[i].ParamBytes != analytic.Layers[i].ParamBytes {
			t.Fatalf("layer %d byte accounting diverged from the analytic probe", i)
		}
	}

	// Calibration must not perturb the profiled network.
	for _, p := range net.Params() {
		for _, g := range p.G.Data {
			if g != 0 {
				t.Fatal("measured profiling left gradients in the network")
			}
		}
	}
}

// TestMeasuredProfilePlansExecute closes the calibrate→plan→execute loop:
// a plan searched on a MEASURED profile must execute on the real runtime
// with sequential-equivalent gradients, like any analytic-profile plan.
func TestMeasuredProfilePlansExecute(t *testing.T) {
	master := nn.MLP([]int{12, 24, 16, 4}, 21) // 5 layers
	const rows, m = 8, 4
	mod, err := ProfileNetworkMeasured(context.Background(), "measured-exec", master, 12, rows, rows*m, MeasureOptions{Warmup: 1, Iters: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := mod.Validate(); err != nil {
		t.Fatal(err)
	}
	s, ok := strategy.Lookup("dapple")
	if !ok {
		t.Fatal("dapple strategy not registered")
	}
	pr, err := s.Plan(context.Background(), mod, hardware.ConfigB(2), strategy.Options{GBS: rows * m, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := pr.Plan.CompatibleWithLayers(master.NumLayers()); err != nil {
		t.Fatalf("measured plan does not map onto the network: %v", err)
	}
	micros := makeMicros(m, rows, 12, 4, 17)
	res := checkAgainstSequential(t, master, pr.Plan, micros, ExecOptions{
		Policy: pr.Policy, Recompute: pr.NeedsRecompute,
	})
	if math.IsNaN(res.Loss) {
		t.Fatal("NaN loss from measured-profile execution")
	}
}

// TestProfileNetworkMeasuredValidation exercises the error paths.
func TestProfileNetworkMeasuredValidation(t *testing.T) {
	if _, err := ProfileNetworkMeasured(context.Background(), "empty", &nn.Network{}, 4, 4, 4, MeasureOptions{}); err == nil {
		t.Fatal("expected error: empty network")
	}
	if _, err := ProfileNetworkMeasured(context.Background(), "geom", nn.MLP([]int{4, 2}, 1), 4, 0, 4, MeasureOptions{}); err == nil {
		t.Fatal("expected error: bad geometry")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ProfileNetworkMeasured(ctx, "cancelled", nn.MLP([]int{4, 2}, 1), 4, 4, 4, MeasureOptions{}); err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}
