package train

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"dapple/internal/nn"
)

// ckptZoo lists one OptSpec per optimizer kind, covering the stateless and
// both stateful update rules.
var ckptZoo = []OptSpec{
	{Kind: "sgd", LR: 0.05},
	{Kind: "momentum", LR: 0.05, Beta: 0.9},
	{Kind: "adam", LR: 0.01},
}

// ckptNetSpec is a small heterogeneous skeleton for checkpoint tests.
var ckptNetSpec = []LayerSpec{
	{Kind: "dense", In: 7, Out: 11},
	{Kind: "relu"},
	{Kind: "dense", In: 11, Out: 5},
	{Kind: "tanh"},
	{Kind: "dense", In: 5, Out: 3},
}

// fillGrads writes a deterministic pseudo-random gradient into every param.
func fillGrads(params []nn.Param, rng *rand.Rand) {
	for _, p := range params {
		for i := range p.G.Data {
			p.G.Data[i] = rng.NormFloat64()
		}
	}
}

// optSteps drives net through n optimizer steps with seeded gradients.
func optSteps(t *testing.T, net *nn.Network, opt nn.Optimizer, seed int64, n int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for s := 0; s < n; s++ {
		fillGrads(net.Params(), rng)
		opt.Step(net.Params())
	}
}

// TestCheckpointRoundTripBitForBit is the save→restore property test across
// the optimizer zoo: a restored session must hold bit-identical weights AND
// continue the exact trajectory — one more identical step on the original
// and the restored copy lands on bit-identical weights, which is only
// possible when the optimizer state (velocity, moments, step counter) was
// captured exactly.
func TestCheckpointRoundTripBitForBit(t *testing.T) {
	for _, spec := range ckptZoo {
		t.Run(spec.Kind, func(t *testing.T) {
			factory, err := spec.Factory()
			if err != nil {
				t.Fatal(err)
			}
			net, err := BuildNet(ckptNetSpec)
			if err != nil {
				t.Fatal(err)
			}
			opt := factory()
			optSteps(t, net, opt, 7, 5)

			ckpt := CaptureCheckpoint(5, net, opt)
			dir := t.TempDir()
			path, err := SaveCheckpoint(dir, ckpt)
			if err != nil {
				t.Fatal(err)
			}
			loaded, err := ReadCheckpoint(path)
			if err != nil {
				t.Fatal(err)
			}
			if loaded.Step != 5 {
				t.Fatalf("loaded step %d, want 5", loaded.Step)
			}

			restoredNet, err := BuildNet(ckptNetSpec)
			if err != nil {
				t.Fatal(err)
			}
			restoredOpt := factory()
			if err := loaded.Restore(restoredNet, restoredOpt); err != nil {
				t.Fatal(err)
			}
			a, b := net.Params(), restoredNet.Params()
			for i := range a {
				for j := range a[i].W.Data {
					if a[i].W.Data[j] != b[i].W.Data[j] {
						t.Fatalf("param %d element %d differs after restore: %v vs %v",
							i, j, a[i].W.Data[j], b[i].W.Data[j])
					}
				}
			}

			// The decisive half: identical future steps.
			optSteps(t, net, opt, 99, 3)
			optSteps(t, restoredNet, restoredOpt, 99, 3)
			for i := range a {
				for j := range a[i].W.Data {
					if a[i].W.Data[j] != b[i].W.Data[j] {
						t.Fatalf("%s: trajectories diverged at param %d element %d: %v vs %v — optimizer state not round-tripped",
							spec.Kind, i, j, a[i].W.Data[j], b[i].W.Data[j])
					}
				}
			}
		})
	}
}

// TestCheckpointRejectsCorruption flips every byte position of an encoded
// checkpoint in turn and requires each corruption to be rejected; short
// writes (every truncation length) must be rejected too.
func TestCheckpointRejectsCorruption(t *testing.T) {
	net, err := BuildNet([]LayerSpec{{Kind: "dense", In: 3, Out: 2}})
	if err != nil {
		t.Fatal(err)
	}
	opt := nn.NewAdam(0.01)
	optSteps(t, net, opt, 3, 2)
	buf := EncodeCheckpoint(CaptureCheckpoint(2, net, opt))
	if _, err := DecodeCheckpoint(buf); err != nil {
		t.Fatalf("pristine checkpoint rejected: %v", err)
	}
	for pos := 0; pos < len(buf); pos++ {
		bad := append([]byte(nil), buf...)
		bad[pos] ^= 0x40
		if _, err := DecodeCheckpoint(bad); err == nil {
			t.Fatalf("bit flip at byte %d accepted", pos)
		}
	}
	for n := 0; n < len(buf); n++ {
		if _, err := DecodeCheckpoint(buf[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
}

// TestLatestCheckpointSkipsTorn writes three checkpoints, corrupts the
// newest on disk, and checks LatestCheckpoint falls back to the newest valid
// one — the crash-mid-write recovery path.
func TestLatestCheckpointSkipsTorn(t *testing.T) {
	dir := t.TempDir()
	net, err := BuildNet([]LayerSpec{{Kind: "dense", In: 2, Out: 2}})
	if err != nil {
		t.Fatal(err)
	}
	opt := nn.NewMomentum(0.1, 0.9)
	var last string
	for step := 1; step <= 3; step++ {
		optSteps(t, net, opt, int64(step), 1)
		if last, err = SaveCheckpoint(dir, CaptureCheckpoint(step, net, opt)); err != nil {
			t.Fatal(err)
		}
	}
	// Tear the newest file short.
	buf, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(last, buf[:len(buf)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	c, path, err := LatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c == nil || c.Step != 2 {
		t.Fatalf("latest usable checkpoint step = %v, want 2", c)
	}
	if filepath.Base(path) != ckptName(2) {
		t.Fatalf("latest usable checkpoint path = %s", path)
	}

	// An empty or missing directory is a clean no-checkpoint start.
	if c, _, err := LatestCheckpoint(filepath.Join(dir, "missing")); err != nil || c != nil {
		t.Fatalf("missing dir: (%v, %v), want (nil, nil)", c, err)
	}
}

// TestPruneCheckpointsKeepLast writes five checkpoints and prunes to the two
// newest: exactly those two must survive, in-window files must never be
// touched, and a second prune must be a no-op.
func TestPruneCheckpointsKeepLast(t *testing.T) {
	dir := t.TempDir()
	net, err := BuildNet([]LayerSpec{{Kind: "dense", In: 2, Out: 2}})
	if err != nil {
		t.Fatal(err)
	}
	opt := nn.NewMomentum(0.1, 0.9)
	for step := 1; step <= 5; step++ {
		optSteps(t, net, opt, int64(step), 1)
		if _, err := SaveCheckpoint(dir, CaptureCheckpoint(step, net, opt)); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := PruneCheckpoints(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 3 {
		t.Fatalf("pruned %d files, want 3: %v", len(removed), removed)
	}
	names, err := ckptNames(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != ckptName(5) || names[1] != ckptName(4) {
		t.Fatalf("surviving checkpoints %v, want [%s %s]", names, ckptName(5), ckptName(4))
	}
	// Idempotent: nothing left to prune.
	if removed, err := PruneCheckpoints(dir, 2); err != nil || len(removed) != 0 {
		t.Fatalf("second prune removed %v (err %v), want nothing", removed, err)
	}
	// The newest must still load.
	c, _, err := LatestCheckpoint(dir)
	if err != nil || c == nil || c.Step != 5 {
		t.Fatalf("after prune LatestCheckpoint = (%v, %v), want step 5", c, err)
	}
}

// TestPruneCheckpointsKeepsNewestValid is the torn-write safety property:
// with the newest file corrupt and keep=1, pruning must preserve BOTH the
// (possibly recoverable) newest file and the newest valid checkpoint behind
// it, so LatestCheckpoint's fallback still lands on usable state after
// retention runs.
func TestPruneCheckpointsKeepsNewestValid(t *testing.T) {
	dir := t.TempDir()
	net, err := BuildNet([]LayerSpec{{Kind: "dense", In: 2, Out: 2}})
	if err != nil {
		t.Fatal(err)
	}
	opt := nn.NewMomentum(0.1, 0.9)
	var last string
	for step := 1; step <= 4; step++ {
		optSteps(t, net, opt, int64(step), 1)
		if last, err = SaveCheckpoint(dir, CaptureCheckpoint(step, net, opt)); err != nil {
			t.Fatal(err)
		}
	}
	// Tear the newest file short, as a crash mid-write would.
	buf, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(last, buf[:len(buf)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := PruneCheckpoints(dir, 1); err != nil {
		t.Fatal(err)
	}
	names, err := ckptNames(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != ckptName(4) || names[1] != ckptName(3) {
		t.Fatalf("surviving checkpoints %v, want the torn newest plus the newest valid [%s %s]",
			names, ckptName(4), ckptName(3))
	}
	c, path, err := LatestCheckpoint(dir)
	if err != nil || c == nil || c.Step != 3 {
		t.Fatalf("fallback after prune = (%v, %v), want step 3", c, err)
	}
	if filepath.Base(path) != ckptName(3) {
		t.Fatalf("fallback path %s, want %s", path, ckptName(3))
	}

	// Degenerate inputs: keep < 1 is an error; a missing dir prunes nothing.
	if _, err := PruneCheckpoints(dir, 0); err == nil {
		t.Fatal("PruneCheckpoints(keep=0) did not error")
	}
	if removed, err := PruneCheckpoints(filepath.Join(dir, "missing"), 3); err != nil || removed != nil {
		t.Fatalf("missing dir prune = (%v, %v), want (nil, nil)", removed, err)
	}
}
