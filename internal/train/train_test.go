package train

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dapple/internal/nn"
	"dapple/internal/tensor"
)

// makeMicros builds m deterministic micro-batches of rows x in features.
func makeMicros(m, rows, in, classes int, seed int64) []Batch {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Batch, m)
	for i := range out {
		x := tensor.New(rows, in)
		x.Randomize(rng, 1)
		y := make([]int, rows)
		for j := range y {
			y[j] = rng.Intn(classes)
		}
		out[i] = Batch{X: x, Y: y}
	}
	return out
}

func TestRingAllReduceSums(t *testing.T) {
	for _, n := range []int{2, 3, 4, 7} {
		for _, size := range []int{1, 5, 16, 31} {
			bufs := make([][]float64, n)
			want := make([]float64, size)
			for i := range bufs {
				bufs[i] = make([]float64, size)
				for j := range bufs[i] {
					bufs[i][j] = float64(i*1000 + j)
					want[j] += bufs[i][j]
				}
			}
			RingAllReduce(bufs)
			for i := range bufs {
				for j := range bufs[i] {
					if math.Abs(bufs[i][j]-want[j]) > 1e-9 {
						t.Fatalf("n=%d size=%d rank %d[%d]: %g want %g",
							n, size, i, j, bufs[i][j], want[j])
					}
				}
			}
		}
	}
}

func TestRingAllReduceSingle(t *testing.T) {
	b := [][]float64{{1, 2, 3}}
	RingAllReduce(b)
	if b[0][0] != 1 || b[0][2] != 3 {
		t.Fatal("single participant must be identity")
	}
}

// Property: ring all-reduce equals a serial sum for random shapes.
func TestRingAllReduceProperty(t *testing.T) {
	f := func(n8, size8 uint8, seed int64) bool {
		n := int(n8%6) + 2
		size := int(size8%64) + 1
		rng := rand.New(rand.NewSource(seed))
		bufs := make([][]float64, n)
		want := make([]float64, size)
		for i := range bufs {
			bufs[i] = make([]float64, size)
			for j := range bufs[i] {
				bufs[i][j] = rng.NormFloat64()
				want[j] += bufs[i][j]
			}
		}
		RingAllReduce(bufs)
		for i := range bufs {
			for j := range bufs[i] {
				if math.Abs(bufs[i][j]-want[j]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestDataParallelMatchesSequential is the DP half of the paper's convergence
// claim: data-parallel training with ring all-reduce produces the same
// parameters as sequential gradient accumulation.
func TestDataParallelMatchesSequential(t *testing.T) {
	master := nn.MLP([]int{6, 10, 8, 3}, 42)
	micros := makeMicros(8, 4, 6, 3, 7)

	seq := master.Clone()
	seqLoss, err := SequentialStep(seq, micros, nn.SGD{LR: 0.1})
	if err != nil {
		t.Fatal(err)
	}

	dp := NewDataParallel(master, 4, func() nn.Optimizer { return nn.SGD{LR: 0.1} })
	dpLoss, err := dp.Step(micros)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(seqLoss-dpLoss) > 1e-9 {
		t.Fatalf("loss: sequential %g vs DP %g", seqLoss, dpLoss)
	}
	if d := dp.MaxParamDivergence(); d > 0 {
		t.Fatalf("replicas diverged by %g", d)
	}
	seqP := seq.Params()
	dpP := dp.Replicas[0].Params()
	for i := range seqP {
		if d := tensor.MaxAbsDiff(seqP[i].W, dpP[i].W); d > 1e-9 {
			t.Fatalf("param %d differs by %g", i, d)
		}
	}
}

// TestPipelineMatchesSequential is the core equivalence result (§VI-A "all
// pipeline latency optimizations give equivalent gradients"): DAPPLE and
// GPipe schedules, with and without re-computation and stage replication,
// reproduce sequential training exactly (up to float summation order).
func TestPipelineMatchesSequential(t *testing.T) {
	cases := []struct {
		name string
		cfg  PipelineConfig
	}{
		{"dapple-2stage", PipelineConfig{Cuts: []int{3, 5}, Policy: DappleSchedule}},
		{"dapple-3stage", PipelineConfig{Cuts: []int{2, 4, 5}, Policy: DappleSchedule}},
		{"gpipe-2stage", PipelineConfig{Cuts: []int{3, 5}, Policy: GPipeSchedule}},
		{"dapple-recompute", PipelineConfig{Cuts: []int{3, 5}, Policy: DappleSchedule, Recompute: true}},
		{"gpipe-recompute", PipelineConfig{Cuts: []int{2, 5}, Policy: GPipeSchedule, Recompute: true}},
		{"dapple-replicated", PipelineConfig{Cuts: []int{3, 5}, Replicas: []int{2, 1}, Policy: DappleSchedule}},
		{"dapple-hybrid", PipelineConfig{Cuts: []int{3, 5}, Replicas: []int{2, 3}, Policy: DappleSchedule, Recompute: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			master := nn.MLP([]int{6, 12, 10, 3}, 2024) // 5 layers: D,R,D,R,D
			micros := makeMicros(6, 6, 6, 3, 11)

			seq := master.Clone()
			seqLoss, err := SequentialStep(seq, micros, nn.SGD{LR: 0.05})
			if err != nil {
				t.Fatal(err)
			}

			pipe, err := NewPipeline(master, tc.cfg, func() nn.Optimizer { return nn.SGD{LR: 0.05} })
			if err != nil {
				t.Fatal(err)
			}
			stats, err := pipe.Step(micros)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(stats.Loss-seqLoss) > 1e-9 {
				t.Fatalf("loss: sequential %g vs pipeline %g", seqLoss, stats.Loss)
			}

			// Compare every stage's parameters against the matching
			// sequential layer slice.
			lo := 0
			for si, hi := range pipe.cfg.Cuts {
				want := seq.Slice(lo, hi).Params()
				for r := 0; r < max(1, pipe.cfg.Replicas[si]); r++ {
					got := pipe.StageParams(si, r)
					if len(got) != len(want) {
						t.Fatalf("stage %d param count %d vs %d", si, len(got), len(want))
					}
					for i := range got {
						if d := tensor.MaxAbsDiff(got[i].W, want[i].W); d > 1e-9 {
							t.Fatalf("stage %d replica %d param %d differs by %g", si, r, i, d)
						}
					}
				}
				lo = hi
			}
		})
	}
}

// TestPipelineMemoryBound verifies the Fig. 3(c) claim in real execution:
// GPipe stashes all M micro-batches on the first stage while DAPPLE's peak
// stays at its warmup depth K_0 = S.
func TestPipelineMemoryBound(t *testing.T) {
	master := nn.MLP([]int{4, 8, 8, 2}, 3)
	micros := makeMicros(12, 4, 4, 2, 5)

	gp, err := NewPipeline(master, PipelineConfig{Cuts: []int{3, 5}, Policy: GPipeSchedule},
		func() nn.Optimizer { return nn.SGD{LR: 0.1} })
	if err != nil {
		t.Fatal(err)
	}
	gs, err := gp.Step(micros)
	if err != nil {
		t.Fatal(err)
	}
	if gs.MaxStash[0] != len(micros) {
		t.Fatalf("GPipe stage0 stash %d, want %d", gs.MaxStash[0], len(micros))
	}

	dp, err := NewPipeline(master, PipelineConfig{Cuts: []int{3, 5}, Policy: DappleSchedule},
		func() nn.Optimizer { return nn.SGD{LR: 0.1} })
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dp.Step(micros)
	if err != nil {
		t.Fatal(err)
	}
	if ds.MaxStash[0] > 2 { // K_0 = S - 0 = 2
		t.Fatalf("DAPPLE stage0 stash %d, want <= 2", ds.MaxStash[0])
	}
	if ds.MaxStashBytes[0] >= gs.MaxStashBytes[0] {
		t.Fatalf("DAPPLE stash bytes %d not below GPipe %d", ds.MaxStashBytes[0], gs.MaxStashBytes[0])
	}
	// Equivalence despite different schedules.
	if math.Abs(gs.Loss-ds.Loss) > 1e-9 {
		t.Fatalf("losses differ: %g vs %g", gs.Loss, ds.Loss)
	}
}

// TestPipelineConvergence trains a pipeline end to end on separable data.
func TestPipelineConvergence(t *testing.T) {
	master := nn.MLP([]int{2, 16, 2}, 17)
	pipe, err := NewPipeline(master, PipelineConfig{Cuts: []int{2, 3}, Policy: DappleSchedule},
		func() nn.Optimizer { return nn.NewAdam(5e-3) })
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	micros := make([]Batch, 4)
	for i := range micros {
		x := tensor.New(16, 2)
		y := make([]int, 16)
		for j := 0; j < 16; j++ {
			a, b := rng.Float64()*2-1, rng.Float64()*2-1
			x.Set(j, 0, a)
			x.Set(j, 1, b)
			if a*b > 0 {
				y[j] = 1
			}
		}
		micros[i] = Batch{X: x, Y: y}
	}
	var first, last float64
	for it := 0; it < 100; it++ {
		st, err := pipe.Step(micros)
		if err != nil {
			t.Fatal(err)
		}
		if it == 0 {
			first = st.Loss
		}
		last = st.Loss
	}
	if last > first/2 {
		t.Fatalf("pipeline training barely learned: %g -> %g", first, last)
	}
}

// Property: pipeline equivalence holds across random cut points and
// micro-batch counts.
func TestPipelineEquivalenceProperty(t *testing.T) {
	f := func(seed int64, cut8, m8 uint8) bool {
		cut := int(cut8%4) + 1 // 1..4 of 5 layers
		m := int(m8%6) + 2     // 2..7 micro-batches
		master := nn.MLP([]int{5, 9, 7, 3}, seed)
		micros := makeMicros(m, 5, 5, 3, seed+1)

		seq := master.Clone()
		if _, err := AccumulateGrads(seq, micros); err != nil {
			return false
		}

		pipe, err := NewPipeline(master, PipelineConfig{Cuts: []int{cut, 5}, Policy: DappleSchedule},
			func() nn.Optimizer { return nn.SGD{LR: 0} })
		if err != nil {
			return false
		}
		if _, err := pipe.Step(micros); err != nil {
			return false
		}
		// With LR 0 the optimizer zeroes grads but leaves params; compare
		// parameters unchanged vs the master (sanity) and losses via a
		// fresh accumulation; simpler: compare stage params against seq
		// post-step with LR 0 — both unchanged, so compare grads instead
		// by re-running with a real LR.
		seq2 := master.Clone()
		if _, err := SequentialStep(seq2, micros, nn.SGD{LR: 0.1}); err != nil {
			return false
		}
		pipe2, err := NewPipeline(master, PipelineConfig{Cuts: []int{cut, 5}, Policy: DappleSchedule},
			func() nn.Optimizer { return nn.SGD{LR: 0.1} })
		if err != nil {
			return false
		}
		if _, err := pipe2.Step(micros); err != nil {
			return false
		}
		lo := 0
		for si, hi := range []int{cut, 5} {
			want := seq2.Slice(lo, hi).Params()
			got := pipe2.StageParams(si, 0)
			for i := range got {
				if tensor.MaxAbsDiff(got[i].W, want[i].W) > 1e-9 {
					return false
				}
			}
			lo = hi
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineConfigValidation(t *testing.T) {
	master := nn.MLP([]int{2, 2, 2}, 1)
	optf := func() nn.Optimizer { return nn.SGD{LR: 0.1} }
	if _, err := NewPipeline(master, PipelineConfig{}, optf); err == nil {
		t.Fatal("expected error: no stages")
	}
	if _, err := NewPipeline(master, PipelineConfig{Cuts: []int{2}}, optf); err == nil {
		t.Fatal("expected error: cuts do not cover network")
	}
	if _, err := NewPipeline(master, PipelineConfig{Cuts: []int{1, 3}, Replicas: []int{1}}, optf); err == nil {
		t.Fatal("expected error: replica length mismatch")
	}
	if _, err := NewPipeline(master, PipelineConfig{Cuts: []int{1, 3}, Replicas: []int{0, 1}}, optf); err == nil {
		t.Fatal("expected error: zero replicas")
	}
}

func TestSequentialStepErrors(t *testing.T) {
	net := nn.MLP([]int{2, 2}, 1)
	if _, err := SequentialStep(net, nil, nn.SGD{LR: 0.1}); err == nil {
		t.Fatal("expected error on empty micro-batches")
	}
	bad := []Batch{{X: tensor.New(2, 2), Y: []int{0}}}
	if _, err := SequentialStep(net, bad, nn.SGD{LR: 0.1}); err == nil {
		t.Fatal("expected error on label/row mismatch")
	}
}
