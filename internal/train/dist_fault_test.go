package train

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"dapple/internal/core"
	"dapple/internal/hardware"
	"dapple/internal/nn"
	"dapple/internal/schedule"
	"dapple/internal/transport"
)

// TestShutdownAckBarrierTimesOut wedges a worker that completes the
// handshake and then stops processing control messages entirely — the
// hung-worker shape — and checks Close returns within the configured
// shutdown timeout instead of blocking on the ack barrier forever.
func TestShutdownAckBarrierTimesOut(t *testing.T) {
	master := nn.MLP([]int{8, 10, 4}, 5) // dense, relu, dense
	mod, err := ProfileNetwork("mute-net", master, 8, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	cl := hardware.ConfigA(1)
	cl.GPUsPerServer = 1
	p := &core.Plan{
		Model: mod, Cluster: cl,
		Stages: []core.Stage{{Lo: 0, Hi: 3, Devices: []hardware.DeviceID{0}}},
		GBS:    8, MicroBatch: 4,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	wt, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wt.SetRank(0)
	ct := transport.NewTCP()
	ct.SetRank(1)
	t.Cleanup(func() { wt.Close(); ct.Close() })
	if err := ct.Dial(ctx, 0, wt.Addr()); err != nil {
		t.Fatal(err)
	}

	// The mute worker: a hand-rolled rank that runs the handshake honestly
	// and then never reads another control message.
	nparams := len(master.Params())
	muted := make(chan error, 1)
	go func() {
		muted <- func() error {
			if _, env, err := recvEnvelope(ctx, wt); err != nil {
				return err
			} else if env.Kind != ctrlManifest {
				return fmt.Errorf("expected manifest, got %q", env.Kind)
			}
			for i := 0; i < nparams; i++ {
				if _, err := recvTensor(ctx, wt); err != nil {
					return err
				}
			}
			if _, env, err := recvEnvelope(ctx, wt); err != nil {
				return err
			} else if env.Kind != ctrlWeightsDone {
				return fmt.Errorf("expected weights-done, got %q", env.Kind)
			}
			return sendEnvelope(wt, 1, envelope{Kind: ctrlReady})
		}()
	}()

	coord, err := NewCoordinator(ctx, ct, p, master, OptSpec{Kind: "sgd", LR: 0.05},
		ExecOptions{Policy: schedule.DapplePA}, []int{0}, 1,
		WithShutdownTimeout(300*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if err := <-muted; err != nil {
		t.Fatalf("mute worker handshake: %v", err)
	}

	start := time.Now()
	if err := coord.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Close took %v; the ack barrier did not time out", elapsed)
	} else if elapsed < 200*time.Millisecond {
		t.Fatalf("Close returned in %v without waiting for the ack barrier", elapsed)
	}
}

// TestSessionSurvivesWorkerDeath is the tentpole's end-to-end recovery test:
// a two-worker session (momentum optimizer, so real optimizer state is at
// stake) loses worker 1 to a scripted death at step 2; the coordinator must
// detect it, re-plan the pipeline onto the survivor, restore the last
// consistent checkpoint from disk and resume — and every completed step's
// loss, including the re-run ones, must match an uninterrupted sequential
// run to float tolerance.
func TestSessionSurvivesWorkerDeath(t *testing.T) {
	p, master, deviceRanks, b0, b1, b2 := distFixture(t)
	rng := rand.New(rand.NewSource(9))
	proj := NewQuadrantProblem(rng, 16)
	b3 := QuadrantBatches(rng, proj, 4, 8)
	iters := [][]Batch{b0, b1, b2, b3}

	// Uninterrupted reference: plain sequential training on a clone.
	refNet := master.Clone()
	refOpt := nn.NewMomentum(0.05, 0.9)
	want := make([]float64, len(iters))
	for k, micros := range iters {
		loss, err := SequentialStep(refNet, micros, refOpt)
		if err != nil {
			t.Fatal(err)
		}
		want[k] = loss
	}

	// Survivor re-plan: the 2-server pipeline collapses onto rank 0's two
	// devices as a plain 2-stage pipeline (no replication left to run).
	replans := 0
	replan := func(alive []int) (*core.Plan, []int, error) {
		replans++
		if len(alive) != 1 || alive[0] != 0 {
			return nil, nil, fmt.Errorf("unexpected survivors %v", alive)
		}
		cl := hardware.ConfigA(1)
		cl.GPUsPerServer = 2
		p2 := &core.Plan{
			Model: p.Model, Cluster: cl,
			Stages: []core.Stage{
				{Lo: 0, Hi: 3, Devices: []hardware.DeviceID{0}},
				{Lo: 3, Hi: 7, Devices: []hardware.DeviceID{1}},
			},
			GBS: p.GBS, MicroBatch: p.MicroBatch,
		}
		if err := p2.Validate(); err != nil {
			return nil, nil, err
		}
		return p2, []int{0, 0}, nil
	}

	w0t, w1t, ct := sessionMesh(t)
	w0, w1 := NewWorker(w0t, 0), NewWorker(w1t, 1)
	w1.SetDieAtStep(2)
	served0, served1 := make(chan error, 1), make(chan error, 1)
	go func() { served0 <- w0.Serve(context.Background()) }()
	go func() { served1 <- w1.Serve(context.Background()) }()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	dir := t.TempDir()
	coord, err := NewCoordinator(ctx, ct, p, master, OptSpec{Kind: "momentum", LR: 0.05, Beta: 0.9},
		ExecOptions{Policy: schedule.DapplePA}, deviceRanks, 2,
		WithReplan(replan),
		WithCheckpoint(dir, 1),
		WithHeartbeat(20*time.Millisecond, 2*time.Second),
		WithStepTimeout(20*time.Second),
		WithShutdownTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}

	got := make([]float64, len(iters))
	recoveries := 0
	for k := 0; k < len(iters); {
		loss, err := coord.Step(ctx, iters[k])
		if err != nil {
			var rec *Recovered
			if !errors.As(err, &rec) {
				t.Fatalf("step %d: %v", k, err)
			}
			recoveries++
			if recoveries > 1 {
				t.Fatalf("session recovered %d times for one death", recoveries)
			}
			if !reflect.DeepEqual(rec.Lost, []int{1}) {
				t.Fatalf("recovery lost ranks %v, want [1]", rec.Lost)
			}
			if rec.Resume != 2 {
				t.Fatalf("recovery resumes at step %d, want 2 (checkpoint every step)", rec.Resume)
			}
			k = rec.Resume
			continue
		}
		got[k] = loss
		k++
	}
	if recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1", recoveries)
	}
	if replans != 1 {
		t.Fatalf("replan called %d times, want 1", replans)
	}
	for k := range iters {
		if drift := math.Abs(got[k] - want[k]); drift > 1e-6 {
			t.Fatalf("step %d: loss %.12f vs uninterrupted %.12f (drift %.3g)", k, got[k], want[k], drift)
		}
	}

	// The dead worker exited cleanly (scripted death, not a crash of the
	// test harness), and the survivor is still serving.
	select {
	case err := <-served1:
		if err != nil {
			t.Fatalf("dead worker exited with %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("dead worker never exited")
	}

	// The session's final state must match the uninterrupted run: the last
	// gathered checkpoint against the sequential reference.
	refParams := refNet.Params()
	if len(coord.ckpt.Weights) != len(refParams) {
		t.Fatalf("final checkpoint has %d params, want %d", len(coord.ckpt.Weights), len(refParams))
	}
	if coord.ckpt.Step != len(iters) {
		t.Fatalf("final checkpoint at step %d, want %d", coord.ckpt.Step, len(iters))
	}
	for i, w := range coord.ckpt.Weights {
		for j := range w.Data {
			if drift := math.Abs(w.Data[j] - refParams[i].W.Data[j]); drift > 1e-6 {
				t.Fatalf("final weight %d[%d] drifts %.3g from uninterrupted run", i, j, drift)
			}
		}
	}

	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-served0:
		if err != nil {
			t.Fatalf("surviving worker: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("surviving worker never shut down")
	}
}

// TestSessionResumesFromCheckpointDir starts a session, trains, closes it,
// then starts a brand-new session pointed at the same checkpoint directory
// and checks it picks up exactly where the first left off — the
// crash-and-restart restore path, compared against one uninterrupted run.
func TestSessionResumesFromCheckpointDir(t *testing.T) {
	p, master, deviceRanks, b0, b1, b2 := distFixture(t)
	iters := [][]Batch{b0, b1, b2}

	refNet := master.Clone()
	refOpt := nn.NewMomentum(0.05, 0.9)
	want := make([]float64, len(iters))
	for k, micros := range iters {
		loss, err := SequentialStep(refNet, micros, refOpt)
		if err != nil {
			t.Fatal(err)
		}
		want[k] = loss
	}

	dir := t.TempDir()
	spec := OptSpec{Kind: "momentum", LR: 0.05, Beta: 0.9}
	runSession := func(masterIn *nn.Network, from, to int) {
		t.Helper()
		w0t, w1t, ct := sessionMesh(t)
		workers := []*Worker{NewWorker(w0t, 0), NewWorker(w1t, 1)}
		served := make(chan error, len(workers))
		for _, w := range workers {
			go func(w *Worker) { served <- w.Serve(context.Background()) }(w)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		coord, err := NewCoordinator(ctx, ct, p, masterIn, spec,
			ExecOptions{Policy: schedule.DapplePA}, deviceRanks, len(workers),
			WithCheckpoint(dir, 1))
		if err != nil {
			t.Fatal(err)
		}
		for k := from; k < to; k++ {
			loss, err := coord.Step(ctx, iters[k])
			if err != nil {
				t.Fatalf("step %d: %v", k, err)
			}
			if drift := math.Abs(loss - want[k]); drift > 1e-6 {
				t.Fatalf("step %d: loss %.12f vs uninterrupted %.12f (drift %.3g)", k, loss, want[k], drift)
			}
		}
		if err := coord.Close(); err != nil {
			t.Fatal(err)
		}
		for range workers {
			if err := <-served; err != nil {
				t.Fatalf("worker: %v", err)
			}
		}
	}

	// First life: steps 0 and 1, checkpointing every step.
	runSession(master, 0, 2)
	// Second life: a fresh mesh and fresh master weights — everything must
	// come from the checkpoint directory, including momentum's velocity.
	runSession(master.Clone(), 2, 3)
}
