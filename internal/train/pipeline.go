package train

import (
	"fmt"
	"sync"

	"dapple/internal/nn"
	"dapple/internal/schedule"
	"dapple/internal/tensor"
)

// Policy selects the pipeline schedule for the real runtime.
type Policy int

const (
	// GPipeSchedule injects all micro-batches forward, then drains
	// backward in reverse order (Fig. 3(a)).
	GPipeSchedule Policy = iota
	// DappleSchedule is early-backward scheduling: K_i = S-i warmup
	// micro-batches, then strict one-forward-one-backward (Fig. 3(b)).
	DappleSchedule
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	if p == GPipeSchedule {
		return "GPipe"
	}
	return "DAPPLE"
}

// PipelineConfig describes how to carve a network into a pipeline.
type PipelineConfig struct {
	// Cuts are exclusive layer end indices per stage, covering the network.
	Cuts []int
	// Replicas is the per-stage replication degree (1 = no replication).
	// Micro-batches are row-split across replicas and re-concatenated at
	// stage boundaries (the split/concat nodes of §V-B2).
	Replicas []int
	Policy   Policy
	// Recompute stashes only each stage's input and re-runs the forward
	// pass during backward (§III re-computation).
	Recompute bool
}

// Pipeline executes a network as a multi-goroutine pipeline with DAPPLE or
// GPipe scheduling and optional stage replication.
type Pipeline struct {
	cfg    PipelineConfig
	stages []*pstage
}

// pstage is one pipeline stage: r replica networks plus their optimizers.
type pstage struct {
	nets []*nn.Network
	opts []nn.Optimizer
}

// StepStats reports one pipeline iteration of the real runtime.
type StepStats struct {
	Loss float64
	// MaxStash is the peak number of concurrently stashed micro-batches per
	// stage — the real counterpart of the Fig. 3(c) memory curves (GPipe
	// reaches M; DAPPLE stays at its warmup depth).
	MaxStash []int
	// MaxStashBytes is the peak stashed activation volume per stage.
	MaxStashBytes []int64
}

// NewPipeline carves master into stages per cfg. Replica networks are deep
// copies, so master remains the reference weights.
func NewPipeline(master *nn.Network, cfg PipelineConfig, optFactory func() nn.Optimizer) (*Pipeline, error) {
	s := len(cfg.Cuts)
	if s == 0 {
		return nil, fmt.Errorf("train: pipeline with no stages")
	}
	if len(cfg.Replicas) == 0 {
		cfg.Replicas = make([]int, s)
		for i := range cfg.Replicas {
			cfg.Replicas[i] = 1
		}
	}
	if len(cfg.Replicas) != s {
		return nil, fmt.Errorf("train: %d replica degrees for %d stages", len(cfg.Replicas), s)
	}
	p := &Pipeline{cfg: cfg}
	lo := 0
	for i := 0; i < s; i++ {
		hi := cfg.Cuts[i]
		if hi <= lo || hi > len(master.Layers) {
			return nil, fmt.Errorf("train: bad cut %d (lo %d, %d layers)", hi, lo, len(master.Layers))
		}
		if cfg.Replicas[i] < 1 {
			return nil, fmt.Errorf("train: stage %d has %d replicas", i, cfg.Replicas[i])
		}
		st := &pstage{}
		part := master.Slice(lo, hi)
		for r := 0; r < cfg.Replicas[i]; r++ {
			st.nets = append(st.nets, part.Clone())
			st.opts = append(st.opts, optFactory())
		}
		p.stages = append(p.stages, st)
		lo = hi
	}
	if lo != len(master.Layers) {
		return nil, fmt.Errorf("train: cuts cover %d of %d layers", lo, len(master.Layers))
	}
	return p, nil
}

// NumStages returns the stage count.
func (p *Pipeline) NumStages() int { return len(p.stages) }

// StageParams returns the parameters of stage i's replica r (for equivalence
// checks against a reference network).
func (p *Pipeline) StageParams(i, r int) []nn.Param { return p.stages[i].nets[r].Params() }

// msg carries one micro-batch's tensor between stages.
type msg struct {
	m    int
	data *tensor.Matrix
}

// scheduleOrder lists the FW/BW sequence for a stage by delegating to the
// simulator's schedule.StageOrder, so the legacy PipelineConfig runtime, the
// plan-driven Executor and the discrete-event scheduler all share one
// definition of the §V-C control-dependency order.
func scheduleOrder(p Policy, m, k int) []schedule.Op {
	if p == GPipeSchedule {
		return schedule.StageOrder(schedule.GPipe, m, k)
	}
	return schedule.StageOrder(schedule.DapplePA, m, k)
}

// stash holds one in-flight micro-batch's backward state on a stage.
type stash struct {
	input *tensor.Matrix // retained input (recompute mode)
	ctxs  [][]nn.Ctx     // per replica, per layer (direct mode)
	parts []int          // replica row partition of the micro-batch
	bytes int64
}

// Step executes one training iteration over the micro-batches and applies
// synchronized updates. All stages run concurrently as goroutines connected
// by activation and gradient channels.
func (p *Pipeline) Step(micros []Batch) (StepStats, error) {
	s := len(p.stages)
	m := len(micros)
	if m == 0 {
		return StepStats{}, fmt.Errorf("train: no micro-batches")
	}
	for _, b := range micros {
		if err := b.Validate(); err != nil {
			return StepStats{}, err
		}
	}

	act := make([]chan msg, s-1)
	grad := make([]chan msg, s-1)
	for i := range act {
		act[i] = make(chan msg, m)
		grad[i] = make(chan msg, m)
	}
	stats := StepStats{
		MaxStash:      make([]int, s),
		MaxStashBytes: make([]int64, s),
	}
	lossCh := make(chan float64, 1)
	errs := make([]error, s)

	var wg sync.WaitGroup
	for i := range p.stages {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = p.runStage(i, micros, act, grad, &stats, lossCh)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return stats, err
		}
	}
	stats.Loss = <-lossCh

	// Gradient sync and weight update (Fig. 10): per stage, sum replica
	// gradients with a real ring all-reduce, average over micro-batches,
	// apply identical updates per replica.
	for _, st := range p.stages {
		if len(st.nets) > 1 {
			bufs := make([][]float64, len(st.nets))
			for r, net := range st.nets {
				bufs[r] = GradVector(net.Params())
			}
			RingAllReduce(bufs)
			for r, net := range st.nets {
				setGradVector(net.Params(), bufs[r])
			}
		}
		for r, net := range st.nets {
			scaleGrads(net.Params(), 1/float64(m))
			st.opts[r].Step(net.Params())
		}
	}
	return stats, nil
}

// runStage executes stage i's schedule.
func (p *Pipeline) runStage(i int, micros []Batch, act, grad []chan msg, stats *StepStats, lossCh chan<- float64) error {
	st := p.stages[i]
	s := len(p.stages)
	m := len(micros)
	k := m
	if p.cfg.Policy == DappleSchedule {
		k = s - i
	}
	order := scheduleOrder(p.cfg.Policy, m, k)

	stashes := make(map[int]*stash, m)
	pendingDy := make(map[int]*tensor.Matrix, m) // last stage: loss grads
	var loss float64
	var curBytes int64

	for _, o := range order {
		if !o.Backward {
			// ---- forward of micro-batch o.M ----
			var x *tensor.Matrix
			if i == 0 {
				x = micros[o.M].X
			} else {
				in := <-act[i-1]
				if in.m != o.M {
					return fmt.Errorf("train: stage %d expected F%d, got F%d", i, o.M, in.m)
				}
				x = in.data
			}
			sh := &stash{}
			out, err := p.forwardStage(st, x, sh)
			if err != nil {
				return err
			}
			if p.cfg.Recompute {
				sh.input = x.Clone()
				sh.ctxs = nil
				sh.bytes = int64(len(sh.input.Data)) * 8
			}
			stashes[o.M] = sh
			curBytes += sh.bytes
			if len(stashes) > stats.MaxStash[i] {
				stats.MaxStash[i] = len(stashes)
			}
			if curBytes > stats.MaxStashBytes[i] {
				stats.MaxStashBytes[i] = curBytes
			}
			if i == s-1 {
				l, dy := nn.SoftmaxCrossEntropy(out, micros[o.M].Y)
				loss += l
				pendingDy[o.M] = dy
			} else {
				act[i] <- msg{o.M, out}
			}
			continue
		}

		// ---- backward of micro-batch o.M ----
		var dy *tensor.Matrix
		if i == s-1 {
			dy = pendingDy[o.M]
			delete(pendingDy, o.M)
		} else {
			in := <-grad[i]
			if in.m != o.M {
				return fmt.Errorf("train: stage %d expected B%d, got B%d", i, o.M, in.m)
			}
			dy = in.data
		}
		sh := stashes[o.M]
		if sh == nil {
			return fmt.Errorf("train: stage %d backward B%d without stash", i, o.M)
		}
		if p.cfg.Recompute {
			// Re-run the forward pass to regenerate activation contexts.
			resh := &stash{}
			if _, err := p.forwardStage(st, sh.input, resh); err != nil {
				return err
			}
			sh.ctxs, sh.parts = resh.ctxs, resh.parts
		}
		dx, err := p.backwardStage(st, sh, dy)
		if err != nil {
			return err
		}
		delete(stashes, o.M)
		curBytes -= sh.bytes
		if i > 0 {
			grad[i-1] <- msg{o.M, dx}
		}
	}
	if i == s-1 {
		lossCh <- loss / float64(m)
	}
	return nil
}

// forwardStage runs x through the stage's replicas in parallel, recording
// contexts and the replica row partition in sh, and returns the concatenated
// output (§V-B2 split/concat).
func (p *Pipeline) forwardStage(st *pstage, x *tensor.Matrix, sh *stash) (*tensor.Matrix, error) {
	r := len(st.nets)
	if x.Rows < r {
		return nil, fmt.Errorf("train: micro-batch of %d rows split across %d replicas", x.Rows, r)
	}
	parts := x.SplitRows(r)
	outs := make([]*tensor.Matrix, r)
	sh.ctxs = make([][]nn.Ctx, r)
	sh.parts = make([]int, r)
	var wg sync.WaitGroup
	for ri := 0; ri < r; ri++ {
		sh.parts[ri] = parts[ri].Rows
		wg.Add(1)
		go func(ri int) {
			defer wg.Done()
			outs[ri], sh.ctxs[ri] = st.nets[ri].Forward(parts[ri])
		}(ri)
	}
	wg.Wait()
	for ri := range sh.ctxs {
		for _, c := range sh.ctxs[ri] {
			sh.bytes += nn.StashBytes(c)
		}
	}
	if r == 1 {
		return outs[0], nil
	}
	return tensor.ConcatRows(outs...), nil
}

// backwardStage distributes dy across replicas using the stored row
// partition, runs backward in parallel, and concatenates input gradients.
func (p *Pipeline) backwardStage(st *pstage, sh *stash, dy *tensor.Matrix) (*tensor.Matrix, error) {
	r := len(st.nets)
	if len(sh.parts) != r {
		return nil, fmt.Errorf("train: stash partition %d for %d replicas", len(sh.parts), r)
	}
	dxs := make([]*tensor.Matrix, r)
	var wg sync.WaitGroup
	lo := 0
	for ri := 0; ri < r; ri++ {
		slice := dy.RowSlice(lo, lo+sh.parts[ri])
		lo += sh.parts[ri]
		wg.Add(1)
		go func(ri int, slice *tensor.Matrix) {
			defer wg.Done()
			dxs[ri] = st.nets[ri].Backward(sh.ctxs[ri], slice)
		}(ri, slice)
	}
	wg.Wait()
	if r == 1 {
		return dxs[0], nil
	}
	return tensor.ConcatRows(dxs...), nil
}
