package train

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	_ "dapple/internal/baselines" // register baseline strategies
	"dapple/internal/core"
	"dapple/internal/hardware"
	"dapple/internal/nn"
	_ "dapple/internal/planner" // register the DAPPLE planner strategy
	"dapple/internal/schedule"
	"dapple/internal/strategy"
	"dapple/internal/tensor"
)

// mkPlan hand-builds a validated plan over the profiled net: cuts are
// exclusive layer end indices, reps per-stage replica counts, devices
// assigned sequentially from the cluster.
func mkPlan(t *testing.T, net *nn.Network, inDim, rows, m int, cuts, reps []int) *core.Plan {
	t.Helper()
	mod, err := ProfileNetwork("test-net", net, inDim, rows, rows*m)
	if err != nil {
		t.Fatal(err)
	}
	nDev := 0
	for _, r := range reps {
		nDev += r
	}
	c := hardware.ConfigB(nDev)
	stages := make([]core.Stage, len(cuts))
	lo, dev := 0, 0
	for i, hi := range cuts {
		devs := make([]hardware.DeviceID, reps[i])
		for r := range devs {
			devs[r] = hardware.DeviceID(dev)
			dev++
		}
		stages[i] = core.Stage{Lo: lo, Hi: hi, Devices: devs}
		lo = hi
	}
	p := &core.Plan{Model: mod, Cluster: c, Stages: stages, GBS: rows * m, MicroBatch: rows}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

// checkAgainstSequential steps a fresh sequential clone and an executor over
// identical micro-batches and asserts losses and every stage replica's
// post-step parameters agree to tolerance.
func checkAgainstSequential(t *testing.T, master *nn.Network, p *core.Plan, micros []Batch, opts ExecOptions) *ExecResult {
	t.Helper()
	seq := master.Clone()
	seqLoss, err := SequentialStep(seq, micros, nn.SGD{LR: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := NewExecutor(p, master, func() nn.Optimizer { return nn.SGD{LR: 0.05} }, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ex.Step(micros)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Loss-seqLoss) > 1e-9 {
		t.Fatalf("loss: sequential %g vs executed plan %g", seqLoss, res.Loss)
	}
	for si, s := range p.Stages {
		want := seq.Slice(s.Lo, s.Hi).Params()
		for r := 0; r < s.Replicas(); r++ {
			got := ex.StageParams(si, r)
			if len(got) != len(want) {
				t.Fatalf("stage %d param count %d vs %d", si, len(got), len(want))
			}
			for i := range got {
				if d := tensor.MaxAbsDiff(got[i].W, want[i].W); d > 1e-9 {
					t.Fatalf("stage %d replica %d param %d differs by %g", si, r, i, d)
				}
			}
		}
	}
	return res
}

// TestExecutorMatchesSequential is the plan-driven form of the paper's §VI-A
// equivalence claim: executing a core.Plan — any cut, replication, policy and
// re-computation combination — reproduces sequential training exactly.
func TestExecutorMatchesSequential(t *testing.T) {
	cases := []struct {
		name string
		cuts []int
		reps []int
		opts ExecOptions
	}{
		{"straight-2stage-pa", []int{3, 5}, []int{1, 1}, ExecOptions{Policy: schedule.DapplePA}},
		{"straight-3stage-pa", []int{2, 4, 5}, []int{1, 1, 1}, ExecOptions{Policy: schedule.DapplePA}},
		{"straight-2stage-gpipe", []int{3, 5}, []int{1, 1}, ExecOptions{Policy: schedule.GPipe}},
		{"recompute-pa", []int{3, 5}, []int{1, 1}, ExecOptions{Policy: schedule.DapplePA, Recompute: true}},
		{"recompute-gpipe", []int{2, 5}, []int{1, 1}, ExecOptions{Policy: schedule.GPipe, Recompute: true}},
		{"replicated-first", []int{3, 5}, []int{2, 1}, ExecOptions{Policy: schedule.DapplePA}},
		{"replicated-last", []int{3, 5}, []int{1, 3}, ExecOptions{Policy: schedule.DapplePA}},
		{"unequal-boundary", []int{3, 5}, []int{3, 2}, ExecOptions{Policy: schedule.DapplePA}},
		{"hybrid-recompute", []int{2, 4, 5}, []int{2, 3, 2}, ExecOptions{Policy: schedule.DapplePB, Recompute: true}},
		{"dp-single-stage", []int{5}, []int{4}, ExecOptions{Policy: schedule.DapplePA}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			master := nn.MLP([]int{6, 12, 10, 3}, 2024) // 5 layers: D,R,D,R,D
			micros := makeMicros(6, 6, 6, 3, 11)
			p := mkPlan(t, master, 6, 6, 6, tc.cuts, tc.reps)
			res := checkAgainstSequential(t, master, p, micros, tc.opts)
			if res.Trace == nil {
				t.Fatal("expected a real-execution trace")
			}
		})
	}
}

// TestPlannerPlansExecute closes the planner→runtime loop for every
// registered strategy: profile a real network, plan it on a real cluster
// topology, execute the resulting plan, and demand sequential-equivalent
// gradients.
func TestPlannerPlansExecute(t *testing.T) {
	master := nn.MLP([]int{16, 32, 24, 16, 4}, 7) // 7 layers
	const rows, m = 8, 4
	mod, err := ProfileNetwork("planner-net", master, 16, rows, rows*m)
	if err != nil {
		t.Fatal(err)
	}
	c := hardware.ConfigB(4)
	for _, name := range strategy.Names() {
		t.Run(name, func(t *testing.T) {
			s, ok := strategy.Lookup(name)
			if !ok {
				t.Fatalf("strategy %q not registered", name)
			}
			pr, err := s.Plan(context.Background(), mod, c, strategy.Options{GBS: rows * m, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			if got := pr.Plan.M(); got != m {
				t.Fatalf("plan M=%d, want %d", got, m)
			}
			micros := makeMicros(m, rows, 16, 4, 5)
			checkAgainstSequential(t, master, pr.Plan, micros, ExecOptions{
				Policy: pr.Policy, Recompute: pr.NeedsRecompute,
			})
		})
	}
}

// TestExecutorPropertyRandomPlans is the randomized form of the equivalence
// guarantee: random small networks × random valid plans (cuts, replicas,
// policy, recompute, micro-batch counts) all match SequentialStep.
func TestExecutorPropertyRandomPlans(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		hidden := rng.Intn(3) + 1 // 1..3 hidden layers
		dims := []int{rng.Intn(4) + 3}
		for i := 0; i < hidden; i++ {
			dims = append(dims, rng.Intn(8)+4)
		}
		classes := rng.Intn(3) + 2
		dims = append(dims, classes)
		master := nn.MLP(dims, rng.Int63())
		layers := master.NumLayers()

		nStages := rng.Intn(min(3, layers)) + 1
		cuts := randomCuts(rng, layers, nStages)
		reps := make([]int, nStages)
		maxRep := 1
		for i := range reps {
			reps[i] = rng.Intn(3) + 1
			maxRep = max(maxRep, reps[i])
		}
		rows := maxRep + rng.Intn(5)
		m := rng.Intn(4) + 2
		opts := ExecOptions{
			Policy:    schedule.Policy(rng.Intn(3)),
			Recompute: rng.Intn(2) == 1,
		}

		mod, err := ProfileNetwork("prop-net", master, dims[0], rows, rows*m)
		if err != nil {
			return false
		}
		nDev := 0
		for _, r := range reps {
			nDev += r
		}
		c := hardware.ConfigB(nDev)
		stages := make([]core.Stage, nStages)
		lo, dev := 0, 0
		for i, hi := range cuts {
			devs := make([]hardware.DeviceID, reps[i])
			for r := range devs {
				devs[r] = hardware.DeviceID(dev)
				dev++
			}
			stages[i] = core.Stage{Lo: lo, Hi: hi, Devices: devs}
			lo = hi
		}
		p := &core.Plan{Model: mod, Cluster: c, Stages: stages, GBS: rows * m, MicroBatch: rows}
		if err := p.Validate(); err != nil {
			return false
		}

		micros := makeMicros(m, rows, dims[0], classes, seed+1)
		seq := master.Clone()
		seqLoss, err := SequentialStep(seq, micros, nn.SGD{LR: 0.1})
		if err != nil {
			return false
		}
		res, err := ExecutePlan(context.Background(), p, master,
			micros, func() nn.Optimizer { return nn.SGD{LR: 0.1} }, opts)
		if err != nil {
			return false
		}
		if math.Abs(res.Loss-seqLoss) > 1e-9 {
			return false
		}
		ex, err := NewExecutor(p, master, func() nn.Optimizer { return nn.SGD{LR: 0.1} }, opts)
		if err != nil {
			return false
		}
		if _, err := ex.Step(micros); err != nil {
			return false
		}
		for si, s := range p.Stages {
			want := seq.Slice(s.Lo, s.Hi).Params()
			for r := 0; r < s.Replicas(); r++ {
				got := ex.StageParams(si, r)
				for i := range got {
					if tensor.MaxAbsDiff(got[i].W, want[i].W) > 1e-9 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// randomCuts draws nStages increasing exclusive end indices covering layers.
func randomCuts(rng *rand.Rand, layers, nStages int) []int {
	for {
		seen := map[int]bool{layers: true}
		for len(seen) < nStages {
			seen[rng.Intn(layers-1)+1] = true
		}
		cuts := make([]int, 0, nStages)
		for c := range seen {
			cuts = append(cuts, c)
		}
		sortInts(cuts)
		if len(cuts) == nStages {
			return cuts
		}
	}
}

// sortInts is a tiny insertion sort to avoid importing sort for one call.
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// TestSimVsRealEventOrder is the sim-vs-real contract of the plan-driven
// runtime: for one plan and policy, every device's real event order equals
// the simulator's schedule for that device's stage — including warmup depths,
// which both sides derive from schedule.WarmupDepths.
func TestSimVsRealEventOrder(t *testing.T) {
	master := nn.MLP([]int{8, 16, 12, 8, 4}, 99) // 7 layers
	const rows, m = 6, 5
	cases := []struct {
		name string
		pol  schedule.Policy
		rc   bool
	}{
		{"gpipe", schedule.GPipe, false},
		{"dapple-pa", schedule.DapplePA, false},
		{"dapple-pb", schedule.DapplePB, false},
		{"dapple-pa-recompute", schedule.DapplePA, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := mkPlan(t, master.Clone(), 8, rows, m, []int{2, 4, 7}, []int{2, 1, 2})
			simRes, err := schedule.Run(p, schedule.Options{Policy: tc.pol, Recompute: tc.rc, M: m})
			if err != nil {
				t.Fatal(err)
			}
			ex, err := NewExecutor(p, master.Clone(), func() nn.Optimizer { return nn.SGD{LR: 0.05} },
				ExecOptions{Policy: tc.pol, Recompute: tc.rc})
			if err != nil {
				t.Fatal(err)
			}
			micros := makeMicros(m, rows, 8, 4, 3)
			res, err := ex.Step(micros)
			if err != nil {
				t.Fatal(err)
			}
			for i, st := range p.Stages {
				if simK := simRes.PerStage[i].Warmup; simK != res.Warmup[i] {
					t.Fatalf("stage %d warmup: sim %d vs real %d", i, simK, res.Warmup[i])
				}
				want := spanSequence(simRes.Sim, simRes.StageResource(i))
				if len(want) != 2*m+1 {
					t.Fatalf("stage %d sim emitted %d events, want %d", i, len(want), 2*m+1)
				}
				for _, d := range st.Devices {
					devRes := res.Trace.ResourceIndex(deviceResource(i, int(d)))
					if devRes < 0 {
						t.Fatalf("stage %d device %d missing from real trace", i, d)
					}
					got := spanSequence(res.Trace, devRes)
					if len(got) != len(want) {
						t.Fatalf("stage %d device %d: %d real events vs %d simulated\nreal: %v\nsim:  %v",
							i, d, len(got), len(want), got, want)
					}
					for j := range want {
						if got[j] != want[j] {
							t.Fatalf("stage %d device %d event %d: real %q vs sim %q\nreal: %v\nsim:  %v",
								i, d, j, got[j], want[j], got, want)
						}
					}
				}
			}
			if err := VerifyOrder(p, simRes, res); err != nil {
				t.Fatalf("VerifyOrder: %v", err)
			}
		})
	}
}

// TestVerifyOrderDetectsMismatch pits a GPipe execution against a DAPPLE
// simulation of the same plan: VerifyOrder must reject the pairing.
func TestVerifyOrderDetectsMismatch(t *testing.T) {
	master := nn.MLP([]int{8, 16, 12, 8, 4}, 99)
	const rows, m = 6, 5
	p := mkPlan(t, master.Clone(), 8, rows, m, []int{2, 4, 7}, []int{1, 1, 1})
	simRes, err := schedule.Run(p, schedule.Options{Policy: schedule.DapplePA, M: m})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ExecutePlan(context.Background(), p, master.Clone(), makeMicros(m, rows, 8, 4, 3),
		func() nn.Optimizer { return nn.SGD{LR: 0.05} }, ExecOptions{Policy: schedule.GPipe})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyOrder(p, simRes, res); err == nil {
		t.Fatal("expected order mismatch between GPipe execution and DAPPLE simulation")
	}
	if err := VerifyOrder(p, simRes, &ExecResult{}); err == nil {
		t.Fatal("expected error for a traceless result")
	}
}

// TestExecutorValidation exercises the constructor and step guard rails.
func TestExecutorValidation(t *testing.T) {
	master := nn.MLP([]int{4, 6, 2}, 1) // 3 layers
	optf := func() nn.Optimizer { return nn.SGD{LR: 0.1} }
	p := mkPlan(t, master, 4, 4, 2, []int{1, 3}, []int{1, 1})

	if _, err := NewExecutor(nil, master, optf, ExecOptions{}); err == nil {
		t.Fatal("expected error: nil plan")
	}
	if _, err := NewExecutor(p, nil, optf, ExecOptions{}); err == nil {
		t.Fatal("expected error: nil network")
	}
	if _, err := NewExecutor(p, master, nil, ExecOptions{}); err == nil {
		t.Fatal("expected error: nil optimizer factory")
	}
	if _, err := NewExecutor(p, nn.MLP([]int{4, 2}, 1), optf, ExecOptions{}); err == nil {
		t.Fatal("expected error: layer-count mismatch")
	}
	ex, err := NewExecutor(p, master, optf, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Step(nil); err == nil {
		t.Fatal("expected error: no micro-batches")
	}
	if _, err := ex.Step([]Batch{{Y: []int{0}}}); err == nil {
		t.Fatal("expected error, not a panic, for a nil-X micro-batch")
	}
	uneven := []Batch{
		{X: tensor.New(4, 4), Y: []int{0, 1, 0, 1}},
		{X: tensor.New(3, 4), Y: []int{0, 1, 0}},
	}
	if _, err := ex.Step(uneven); err == nil {
		t.Fatal("expected error: unequal micro-batches")
	}
	wide := mkPlan(t, master, 4, 4, 2, []int{3}, []int{8})
	exw, err := NewExecutor(wide, master, optf, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tiny := []Batch{{X: tensor.New(2, 4), Y: []int{0, 1}}}
	if _, err := exw.Step(tiny); err == nil {
		t.Fatal("expected error: fewer rows than replicas")
	}
}

// TestExecutorContextCancel verifies a cancelled context unblocks every
// worker and surfaces ctx.Err.
func TestExecutorContextCancel(t *testing.T) {
	master := nn.MLP([]int{4, 8, 8, 2}, 3) // 5 layers
	p := mkPlan(t, master, 4, 4, 4, []int{2, 5}, []int{1, 1})
	ex, err := NewExecutor(p, master, func() nn.Optimizer { return nn.SGD{LR: 0.1} },
		ExecOptions{Policy: schedule.DapplePA})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ex.StepContext(ctx, makeMicros(4, 4, 4, 2, 9)); err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestAbortKeepsReplicasConsistent cancels steps at varying points and
// checks the all-or-nothing commit of arGroup.arrive/abandon: whatever a cancelled
// step managed to apply, every replica of a stage must hold bit-identical
// parameters afterwards (updates are identical per replica, so divergence
// can only come from a torn commit).
func TestAbortKeepsReplicasConsistent(t *testing.T) {
	master := nn.MLP([]int{6, 12, 10, 3}, 33) // 5 layers
	p := mkPlan(t, master, 6, 6, 6, []int{3, 5}, []int{2, 2})
	ex, err := NewExecutor(p, master, func() nn.Optimizer { return nn.SGD{LR: 0.05} },
		ExecOptions{Policy: schedule.DapplePA})
	if err != nil {
		t.Fatal(err)
	}
	micros := makeMicros(6, 6, 6, 3, 19)
	for trial := 0; trial < 30; trial++ {
		ctx, cancel := context.WithTimeout(context.Background(),
			time.Duration(trial%6)*200*time.Microsecond)
		_, stepErr := ex.StepContext(ctx, micros) // may succeed or abort
		cancel()
		for si, s := range p.Stages {
			base := ex.StageParams(si, 0)
			for r := 1; r < s.Replicas(); r++ {
				got := ex.StageParams(si, r)
				for i := range got {
					if d := tensor.MaxAbsDiff(got[i].W, base[i].W); d != 0 {
						t.Fatalf("trial %d (err=%v): stage %d replica %d diverged from replica 0 by %g",
							trial, stepErr, si, r, d)
					}
				}
			}
		}
	}
}

// TestExecutorConvergence trains a plan-driven pipeline end to end.
func TestExecutorConvergence(t *testing.T) {
	master := nn.MLP([]int{2, 16, 2}, 17) // 3 layers
	p := mkPlan(t, master, 2, 16, 4, []int{2, 3}, []int{2, 1})
	ex, err := NewExecutor(p, master, func() nn.Optimizer { return nn.NewAdam(5e-3) },
		ExecOptions{Policy: schedule.DapplePA, NoTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	micros := make([]Batch, 4)
	for i := range micros {
		x := tensor.New(16, 2)
		y := make([]int, 16)
		for j := 0; j < 16; j++ {
			a, b := rng.Float64()*2-1, rng.Float64()*2-1
			x.Set(j, 0, a)
			x.Set(j, 1, b)
			if a*b > 0 {
				y[j] = 1
			}
		}
		micros[i] = Batch{X: x, Y: y}
	}
	var first, last float64
	for it := 0; it < 100; it++ {
		st, err := ex.Step(micros)
		if err != nil {
			t.Fatal(err)
		}
		if it == 0 {
			first = st.Loss
		}
		last = st.Loss
	}
	if last > first/2 {
		t.Fatalf("plan-driven training barely learned: %g -> %g", first, last)
	}
}

// TestExecutorMemoryBound checks the Fig. 3(c) claim on the plan-driven
// runtime: GPipe stashes all M micro-batches on the first stage while
// DAPPLE's peak stays at its warmup depth.
func TestExecutorMemoryBound(t *testing.T) {
	master := nn.MLP([]int{4, 8, 8, 2}, 3) // 5 layers
	micros := makeMicros(12, 4, 4, 2, 5)

	run := func(pol schedule.Policy) *ExecResult {
		p := mkPlan(t, master.Clone(), 4, 4, 12, []int{3, 5}, []int{1, 1})
		ex, err := NewExecutor(p, master.Clone(), func() nn.Optimizer { return nn.SGD{LR: 0.1} },
			ExecOptions{Policy: pol})
		if err != nil {
			t.Fatal(err)
		}
		res, err := ex.Step(micros)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	gs := run(schedule.GPipe)
	if gs.MaxStash[0] != len(micros) {
		t.Fatalf("GPipe stage0 stash %d, want %d", gs.MaxStash[0], len(micros))
	}
	ds := run(schedule.DapplePA)
	if ds.MaxStash[0] > ds.Warmup[0] {
		t.Fatalf("DAPPLE stage0 stash %d above warmup %d", ds.MaxStash[0], ds.Warmup[0])
	}
	if ds.MaxStashBytes[0] >= gs.MaxStashBytes[0] {
		t.Fatalf("DAPPLE stash bytes %d not below GPipe %d", ds.MaxStashBytes[0], gs.MaxStashBytes[0])
	}
}

// TestProfileNetworkShape checks the profile bridge maps layers one-to-one
// with sane byte and time accounting.
func TestProfileNetworkShape(t *testing.T) {
	net := nn.MLP([]int{6, 12, 3}, 1) // 3 layers: D,R,D
	mod, err := ProfileNetwork("bridge", net, 6, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	if mod.NumLayers() != net.NumLayers() {
		t.Fatalf("profiled %d layers for %d network layers", mod.NumLayers(), net.NumLayers())
	}
	if mod.Layers[0].ParamBytes != (6*12+12)*8 {
		t.Fatalf("dense param bytes %d", mod.Layers[0].ParamBytes)
	}
	if mod.Layers[1].ParamBytes != 0 {
		t.Fatalf("activation has param bytes %d", mod.Layers[1].ParamBytes)
	}
	if mod.Layers[0].OutputBytes != 4*12*8 {
		t.Fatalf("dense output bytes %d", mod.Layers[0].OutputBytes)
	}
	for i, l := range mod.Layers {
		if l.FwdTime <= 0 || l.BwdTime <= 0 {
			t.Fatalf("layer %d has non-positive time", i)
		}
	}
	if _, err := ProfileNetwork("empty", &nn.Network{}, 4, 4, 4); err == nil {
		t.Fatal("expected error: empty network")
	}
}
