package train

import (
	"math/rand"

	"dapple/internal/core"
	"dapple/internal/hardware"
	"dapple/internal/nn"
	"dapple/internal/schedule"
)

// BenchmarkFixture builds the canonical runtime benchmark workload — an
// 11-layer MLP carved 3:3:3:2 with 2 replicas per stage on 8 flat devices,
// M=8 micro-batches of 16 rows — used by BenchmarkExecutePlan, the
// steady-state allocation gate, and `dapple-bench -exec`. One constructor
// keeps all three measuring the same workload, so multi-core re-baselines
// of BENCH_train.json stay comparable with the CI numbers.
func BenchmarkFixture(pol schedule.Policy, seed int64) (*Executor, []Batch, error) {
	p, master, micros, err := BenchmarkWorkload(seed)
	if err != nil {
		return nil, nil, err
	}
	ex, err := NewExecutor(p, master, func() nn.Optimizer { return nn.SGD{LR: 0.01} },
		ExecOptions{Policy: pol})
	if err != nil {
		return nil, nil, err
	}
	return ex, micros, nil
}

// BenchmarkWorkload returns the canonical benchmark plan, master network and
// micro-batches without building an executor, for harnesses that construct
// their own runtime around the same workload — the distributed-session
// transport benchmark in particular.
func BenchmarkWorkload(seed int64) (*core.Plan, *nn.Network, []Batch, error) {
	master := nn.MLP([]int{32, 48, 48, 48, 48, 48, 8}, 42) // 11 layers
	const rows, m, inDim = 16, 8, 32
	mod, err := ProfileNetwork("bench-net", master, inDim, rows, rows*m)
	if err != nil {
		return nil, nil, nil, err
	}
	c := hardware.ConfigB(8)
	stages := make([]core.Stage, 4)
	lo, dev := 0, 0
	for i, hi := range []int{3, 6, 9, 11} {
		devs := make([]hardware.DeviceID, 2)
		for r := range devs {
			devs[r] = hardware.DeviceID(dev)
			dev++
		}
		stages[i] = core.Stage{Lo: lo, Hi: hi, Devices: devs}
		lo = hi
	}
	p := &core.Plan{Model: mod, Cluster: c, Stages: stages, GBS: rows * m, MicroBatch: rows}
	if err := p.Validate(); err != nil {
		return nil, nil, nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	proj := NewQuadrantProblem(rng, inDim)
	return p, master, QuadrantBatches(rng, proj, m, rows), nil
}
