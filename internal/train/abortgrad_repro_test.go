package train

import (
	"context"
	"math"
	"testing"
	"time"

	"dapple/internal/nn"
	"dapple/internal/schedule"
	"dapple/internal/tensor"
)

// Reproducer: an aborted step leaves partially-accumulated gradients in the
// stage networks; the next committed step applies a polluted update.
func TestAbortLeavesStaleGradients(t *testing.T) {
	master := nn.MLP([]int{6, 12, 10, 3}, 33)
	p := mkPlan(t, master, 6, 6, 6, []int{3, 5}, []int{1, 1})
	ex, err := NewExecutor(p, master, func() nn.Optimizer { return nn.SGD{LR: 0.05} },
		ExecOptions{Policy: schedule.DapplePA})
	if err != nil {
		t.Fatal(err)
	}
	micros := makeMicros(6, 6, 6, 3, 19)

	sawStale := false
	for trial := 0; trial < 200 && !sawStale; trial++ {
		ctx, cancel := context.WithTimeout(context.Background(),
			time.Duration(trial%8)*100*time.Microsecond)
		_, stepErr := ex.StepContext(ctx, micros)
		cancel()
		if stepErr == nil {
			continue
		}
		for si := range p.Stages {
			for _, pr := range ex.StageParams(si, 0) {
				for _, g := range pr.G.Data {
					if g != 0 {
						sawStale = true
					}
				}
			}
		}
	}
	if !sawStale {
		t.Skip("never caught an abort with partial gradient accumulation")
	}
	t.Log("aborted step left nonzero gradient accumulators")

	// Now run a clean step and compare against a sequential step taken from
	// the executor's CURRENT weights: if stale grads pollute the update, the
	// params diverge far beyond the 1e-9 equivalence tolerance.
	seq := nn.MLP([]int{6, 12, 10, 3}, 1)
	at := 0
	for si := range p.Stages {
		for _, pr := range ex.StageParams(si, 0) {
			copy(seq.Params()[at].W.Data, pr.W.Data)
			at++
		}
	}
	if _, err := SequentialStep(seq, micros, nn.SGD{LR: 0.05}); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Step(micros); err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	at = 0
	for si, s := range p.Stages {
		sl := seq.Slice(s.Lo, s.Hi).Params()
		for i, pr := range ex.StageParams(si, 0) {
			worst = math.Max(worst, tensor.MaxAbsDiff(pr.W, sl[i].W))
		}
		_ = at
	}
	t.Logf("max param divergence vs sequential after post-abort step: %g", worst)
	if worst > 1e-9 {
		t.Fatalf("post-abort step diverged from sequential by %g", worst)
	}
}
