package dapple

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"dapple/internal/nn"
	"dapple/internal/tensor"
	"dapple/internal/train"
)

// TestDistributedAPIRoundTrip drives the root-package distributed surface
// end to end: a one-worker session over TCP loopback must train to the same
// losses as the single-process Executor on identical weights and batches.
func TestDistributedAPIRoundTrip(t *testing.T) {
	master := NewMLP([]int{8, 12, 12, 4}, 3) // 5 layers
	const rows, m, inDim = 6, 2, 8
	mod, err := ProfileNetwork("dist-api", master, inDim, rows, rows*m)
	if err != nil {
		t.Fatal(err)
	}
	plan := &Plan{
		Model:   mod,
		Cluster: ConfigA(1),
		Stages: []Stage{
			{Lo: 0, Hi: 3, Devices: []DeviceID{0}},
			{Lo: 3, Hi: 5, Devices: []DeviceID{1, 2}},
		},
		GBS: rows * m, MicroBatch: rows,
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	micros := make([]TrainBatch, m)
	for i := range micros {
		x := tensor.New(rows, inDim)
		x.Randomize(rand.New(rand.NewSource(int64(i))), 1)
		y := make([]int, rows)
		for j := range y {
			y[j] = (i + j) % 4
		}
		micros[i] = TrainBatch{X: x, Y: y}
	}

	ref, err := train.NewExecutor(plan, master.Clone(),
		func() nn.Optimizer { return nn.SGD{LR: 0.05} }, train.ExecOptions{NoTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, 3)
	for k := range want {
		res, err := ref.Step(micros)
		if err != nil {
			t.Fatal(err)
		}
		want[k] = res.Loss
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	wt, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer wt.Close()
	wt.SetRank(0)
	ct := NewTCPTransport()
	defer ct.Close()
	ct.SetRank(1)
	if err := ct.Dial(ctx, 0, wt.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := wt.WaitPeers(ctx, []int{1}); err != nil {
		t.Fatal(err)
	}

	served := make(chan error, 1)
	go func() { served <- NewDistWorker(wt, 0).Serve(context.Background()) }()

	coord, err := NewCoordinator(ctx, ct, plan, master,
		OptSpec{Kind: "sgd", LR: 0.05}, ExecOptions{},
		make([]int, plan.Cluster.NumDevices()), 1) // every device on rank 0
	if err != nil {
		t.Fatal(err)
	}
	for k := range want {
		loss, err := coord.Step(ctx, micros)
		if err != nil {
			t.Fatalf("distributed step %d: %v", k, err)
		}
		if math.Abs(loss-want[k]) > 1e-6 {
			t.Fatalf("step %d: distributed loss %.12f vs local %.12f", k, loss, want[k])
		}
	}
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-served; err != nil {
		t.Fatalf("worker serve: %v", err)
	}
}
