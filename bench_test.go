package dapple

// One benchmark per table and figure of the paper's evaluation (§VI), each
// regenerating the experiment through the same generators cmd/dapple-bench
// uses (Quick mode trims the sweep sizes, not the logic), plus component
// micro-benchmarks for the planner, the discrete-event engine, the real ring
// all-reduce and the real pipelined runtime.
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkTable6 -v

import (
	"context"
	"math/rand"
	"testing"

	"dapple/internal/baselines"
	"dapple/internal/core"
	"dapple/internal/experiments"
	"dapple/internal/hardware"
	"dapple/internal/model"
	"dapple/internal/nn"
	"dapple/internal/planner"
	"dapple/internal/schedule"
	"dapple/internal/sim"
	"dapple/internal/tensor"
	"dapple/internal/train"
)

// runExperiment drives one generator and records its row count.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	g := experiments.ByID(id)
	if g == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	opts := experiments.Options{Quick: true}
	var rows int
	for i := 0; i < b.N; i++ {
		rep := g.Run(context.Background(), opts)
		rows = len(rep.Rows)
	}
	b.ReportMetric(float64(rows), "rows")
}

func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B) { runExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B) { runExperiment(b, "table4") }
func BenchmarkTable5(b *testing.B) { runExperiment(b, "table5") }
func BenchmarkTable6(b *testing.B) { runExperiment(b, "table6") }
func BenchmarkTable7(b *testing.B) { runExperiment(b, "table7") }
func BenchmarkTable8(b *testing.B) { runExperiment(b, "table8") }
func BenchmarkFig3(b *testing.B)   { runExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)   { runExperiment(b, "fig4") }
func BenchmarkFig7(b *testing.B)   { runExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)   { runExperiment(b, "fig8") }
func BenchmarkFig12(b *testing.B)  { runExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)  { runExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)  { runExperiment(b, "fig14") }

// ---- component micro-benchmarks ----

// BenchmarkPlannerSearch measures one full planner run on the hierarchical
// 2x8 topology (the Table V inner loop).
func BenchmarkPlannerSearch(b *testing.B) {
	m := model.GNMT16()
	c := hardware.ConfigA(2)
	for i := 0; i < b.N; i++ {
		if _, err := planner.Plan(m, c, planner.Options{PruneSlack: 1.3, Finalists: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPlannerWorkers runs the full search for one of the large zoo models
// at a fixed worker count, so sequential (workers=1) and parallel
// (workers=8) wall clocks compare directly — the plans are identical by
// construction, only the fan-out differs.
func benchPlannerWorkers(b *testing.B, m *model.Model, workers int) {
	b.Helper()
	c := hardware.ConfigA(2)
	for i := 0; i < b.N; i++ {
		r, err := planner.Plan(m, c, planner.Options{PruneSlack: 1.3, Finalists: 8, Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(r.Explored), "plans")
		}
	}
}

func BenchmarkPlannerBERT48Sequential(b *testing.B) { benchPlannerWorkers(b, model.BERT48(), 1) }
func BenchmarkPlannerBERT48Parallel8(b *testing.B)  { benchPlannerWorkers(b, model.BERT48(), 8) }
func BenchmarkPlannerXLNet36Sequential(b *testing.B) {
	benchPlannerWorkers(b, model.XLNet36(), 1)
}
func BenchmarkPlannerXLNet36Parallel8(b *testing.B) { benchPlannerWorkers(b, model.XLNet36(), 8) }

// BenchmarkPlannerExhaustive measures the search with pruning disabled on a
// flat 8-device cluster (the hierarchical 2x8 exhaustive space takes ~15 s
// per run): the denominator of the branch-and-bound speedup in CHANGES.md.
func BenchmarkPlannerExhaustive(b *testing.B) {
	m := model.GNMT16()
	c := hardware.ConfigB(8)
	for i := 0; i < b.N; i++ {
		if _, err := planner.Plan(m, c, planner.Options{PruneSlack: 1.3, Finalists: 8, NoPrune: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlannerPruned is BenchmarkPlannerExhaustive with pruning on: the
// numerator of the branch-and-bound speedup.
func BenchmarkPlannerPruned(b *testing.B) {
	m := model.GNMT16()
	c := hardware.ConfigB(8)
	for i := 0; i < b.N; i++ {
		if _, err := planner.Plan(m, c, planner.Options{PruneSlack: 1.3, Finalists: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLatencyModel measures the analytic Eq. (1)-(2) evaluation the
// planner calls per candidate.
func BenchmarkLatencyModel(b *testing.B) {
	m := model.BERT48()
	c := hardware.ConfigA(2)
	p := baselines.GPipePlan(m, c, 64, 2)
	p.Stages[0].Devices = c.Devices()[:8]
	p.Stages[1].Devices = c.Devices()[8:]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Latency()
	}
}

// BenchmarkScheduleSim measures one discrete-event iteration of a 4-stage,
// 32-micro-batch pipeline (the planner's re-ranking inner loop).
func BenchmarkScheduleSim(b *testing.B) {
	m := model.BERT48()
	c := hardware.ConfigB(4)
	p := baselines.GPipePlan(m, c, 64, 4)
	for i := 0; i < b.N; i++ {
		if _, err := schedule.Run(p, schedule.Options{Policy: schedule.DapplePA, MemLimit: -1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimEngine measures the raw engine on a synthetic 10k-task graph.
func BenchmarkSimEngine(b *testing.B) {
	build := func() *sim.Graph {
		g := sim.NewGraph()
		rng := rand.New(rand.NewSource(1))
		var ids []sim.TaskID
		for i := 0; i < 10000; i++ {
			id := g.Add(sim.Task{Resource: g.Resource(string(rune('a' + i%16))), Duration: rng.Float64()})
			if i > 0 {
				g.AddDep(id, ids[rng.Intn(i)])
			}
			ids = append(ids, id)
		}
		return g
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := build()
		b.StartTimer()
		g.Run()
	}
}

// floodGraph expands one iteration of an 8-stage BERT-48 pipeline with M=512
// micro-batches — an O(stages x M) task flood of ~15.4k tasks — for the
// simulator-only benchmarks: the graph is built once, outside the timer, and
// executed repeatedly.
func floodGraph(b *testing.B, pol schedule.Policy) *sim.Graph {
	b.Helper()
	m := model.BERT48()
	c := hardware.ConfigB(8)
	p := baselines.GPipePlan(m, c, 512*m.ProfileBatch, 8)
	g, err := schedule.BuildGraph(p, schedule.Options{Policy: pol, Recompute: true, M: 512, MemLimit: -1})
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkSimGPipeFlood measures the event-driven engine alone on the GPipe
// flood schedule (every micro-batch in flight, the engine's worst case).
func BenchmarkSimGPipeFlood(b *testing.B) {
	g := floodGraph(b, schedule.GPipe)
	b.ResetTimer()
	b.ReportMetric(float64(g.NumTasks()), "tasks")
	for i := 0; i < b.N; i++ {
		g.Run()
	}
}

// BenchmarkSimGPipeFloodReference is BenchmarkSimGPipeFlood on the
// pre-rewrite linear-scan engine: the before/after pair for BENCH_sim.json.
func BenchmarkSimGPipeFloodReference(b *testing.B) {
	g := floodGraph(b, schedule.GPipe)
	b.ResetTimer()
	b.ReportMetric(float64(g.NumTasks()), "tasks")
	for i := 0; i < b.N; i++ {
		g.RunReference()
	}
}

// BenchmarkSimDapplePA measures the event-driven engine alone on the DAPPLE
// early-backward schedule of the same pipeline.
func BenchmarkSimDapplePA(b *testing.B) {
	g := floodGraph(b, schedule.DapplePA)
	b.ResetTimer()
	b.ReportMetric(float64(g.NumTasks()), "tasks")
	for i := 0; i < b.N; i++ {
		g.Run()
	}
}

// BenchmarkSimDapplePAReference is BenchmarkSimDapplePA on the pre-rewrite
// linear-scan engine.
func BenchmarkSimDapplePAReference(b *testing.B) {
	g := floodGraph(b, schedule.DapplePA)
	b.ResetTimer()
	b.ReportMetric(float64(g.NumTasks()), "tasks")
	for i := 0; i < b.N; i++ {
		g.RunReference()
	}
}

// BenchmarkSweeperResim measures one re-simulation through a Sweeper reusing
// the task-graph buffers across the policy sweep (the Table VI inner loop),
// against BenchmarkScheduleSim's build-from-scratch path.
func BenchmarkSweeperResim(b *testing.B) {
	m := model.BERT48()
	c := hardware.ConfigB(4)
	p := baselines.GPipePlan(m, c, 64, 4)
	sw, err := schedule.NewSweeper(p)
	if err != nil {
		b.Fatal(err)
	}
	pols := []schedule.Policy{schedule.DapplePA, schedule.GPipe, schedule.DapplePB}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sw.Run(schedule.Options{Policy: pols[i%len(pols)], MemLimit: -1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRingAllReduce measures the real channel-based ring all-reduce
// across 8 goroutine participants on 1M floats.
func BenchmarkRingAllReduce(b *testing.B) {
	const n, size = 8, 1 << 20
	bufs := make([][]float64, n)
	for i := range bufs {
		bufs[i] = make([]float64, size)
	}
	b.SetBytes(int64(n * size * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		train.RingAllReduce(bufs)
	}
}

// BenchmarkMatMul measures the cache-blocked, pool-parallel matmul (see the
// BenchmarkGEMM family in internal/tensor for the full kernel suite).
func BenchmarkMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.New(256, 256)
	y := tensor.New(256, 256)
	x.Randomize(rng, 1)
	y.Randomize(rng, 1)
	b.SetBytes(256 * 256 * 256 * 2 * 8 / (1 << 10)) // rough FLOP proxy
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tensor.MatMul(x, y)
	}
}

// BenchmarkRealPipelineStep measures one iteration of the real goroutine
// pipeline (3 stages, 8 micro-batches) including gradient sync.
func BenchmarkRealPipelineStep(b *testing.B) {
	master := nn.MLP([]int{64, 128, 128, 64, 8}, 1)
	pipe, err := train.NewPipeline(master, train.PipelineConfig{
		Cuts:   []int{3, 5, 7},
		Policy: train.DappleSchedule,
	}, func() nn.Optimizer { return nn.SGD{LR: 1e-3} })
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	micros := make([]train.Batch, 8)
	for i := range micros {
		x := tensor.New(16, 64)
		x.Randomize(rng, 1)
		y := make([]int, 16)
		for j := range y {
			y[j] = rng.Intn(8)
		}
		micros[i] = train.Batch{X: x, Y: y}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipe.Step(micros); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipeDreamPlanner measures the baseline planner's DP.
func BenchmarkPipeDreamPlanner(b *testing.B) {
	m := model.BERT48()
	c := hardware.ConfigA(2)
	for i := 0; i < b.N; i++ {
		_ = baselines.PipeDream(m, c, 128)
	}
}

// BenchmarkCrossStageModel measures the NIC-bottleneck transfer model on the
// 8:8 hierarchical layout.
func BenchmarkCrossStageModel(b *testing.B) {
	c := hardware.ConfigA(2)
	m := model.BERT48()
	plan := &core.Plan{Model: m, Cluster: c, GBS: 64, MicroBatch: 2,
		Stages: []core.Stage{
			{Lo: 0, Hi: 24, Devices: c.Devices()[:8]},
			{Lo: 24, Hi: 48, Devices: c.Devices()[8:]},
		}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = plan.CrossStageTime(0)
	}
}
