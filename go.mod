module dapple

go 1.24
