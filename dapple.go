// Package dapple is the public facade of this reproduction of
// "DAPPLE: A Pipelined Data Parallel Approach for Training Large Models"
// (Fan et al., PPoPP 2021): profile a model, plan a hybrid data/pipeline
// strategy for a cluster, and simulate or really execute the planned
// schedule.
//
// The three components mirror the paper's Fig. 1 workflow:
//
//   - the Profiler (ProfileArch) turns an architecture into per-layer
//     statistics;
//   - the Planner (PlanModel) searches stage partitions, replication and
//     topology-aware placement for the minimum synchronous pipeline latency;
//   - the Runtime (Simulate) executes GPipe or DAPPLE early-backward
//     schedules with byte-accurate memory accounting on a discrete-event
//     cluster simulator.
//
// A real concurrent mini-runtime (goroutines as devices, channels as links)
// lives in internal/train and backs the gradient-equivalence guarantees; see
// examples/training.
package dapple

import (
	"dapple/internal/core"
	"dapple/internal/hardware"
	"dapple/internal/model"
	"dapple/internal/planner"
	"dapple/internal/profile"
	"dapple/internal/schedule"
	"dapple/internal/trace"
)

// Re-exported core types. The internal packages remain the implementation;
// these aliases are the stable public surface.
type (
	// Model is a profiled DNN: per-layer compute times, activation sizes and
	// parameter sizes at a reference micro-batch.
	Model = model.Model
	// Layer is one profiled, pipeline-splittable unit.
	Layer = model.Layer
	// Cluster describes a training cluster topology.
	Cluster = hardware.Cluster
	// DeviceID identifies one accelerator.
	DeviceID = hardware.DeviceID
	// Plan is a hybrid data/pipeline parallelization strategy.
	Plan = core.Plan
	// Stage is one pipeline stage of a Plan.
	Stage = core.Stage
	// PlanResult is the planner's output.
	PlanResult = planner.Result
	// PlanOptions tunes the planner search.
	PlanOptions = planner.Options
	// ScheduleOptions configures a simulated training iteration.
	ScheduleOptions = schedule.Options
	// ScheduleResult reports a simulated training iteration.
	ScheduleResult = schedule.Result
	// Arch is a profilable architecture description.
	Arch = profile.Arch
	// LayerSpec is one architecture layer kind.
	LayerSpec = profile.LayerSpec
)

// Schedule policies.
const (
	// GPipeSchedule floods all micro-batches forward before draining
	// backward (Fig. 3(a)).
	GPipeSchedule = schedule.GPipe
	// DapplePA is early-backward scheduling with K_i = min(S-i, D) warmup
	// micro-batches (§V-C policy A).
	DapplePA = schedule.DapplePA
	// DapplePB doubles the warmup depth for communication-heavy pipelines
	// (§V-C policy B).
	DapplePB = schedule.DapplePB
)

// ConfigA returns the hierarchical cluster of Table III: servers with 8
// NVLink-connected V100s on 25 Gbps Ethernet.
func ConfigA(servers int) Cluster { return hardware.ConfigA(servers) }

// ConfigB returns the flat cluster of Table III: single-V100 servers on
// 25 Gbps Ethernet.
func ConfigB(servers int) Cluster { return hardware.ConfigB(servers) }

// ConfigC returns the flat cluster of Table III with 10 Gbps Ethernet.
func ConfigC(servers int) Cluster { return hardware.ConfigC(servers) }

// Zoo returns the six calibrated benchmark models of Table II.
func Zoo() []*Model { return model.Zoo() }

// ModelByName returns a zoo model by its Table II name, or nil.
func ModelByName(name string) *Model { return model.ByName(name) }

// ProfileArch measures an architecture on a V100-class device at the given
// micro-batch size, producing a planner-ready Model (the DAPPLE Profiler).
func ProfileArch(a Arch, batch int) (*Model, error) {
	return profile.New(profile.V100()).Profile(a, batch)
}

// PlanModel searches for the latency-optimal hybrid plan of m on c (the
// DAPPLE Planner). A zero Options value uses the model's default global
// batch size.
func PlanModel(m *Model, c Cluster, opts PlanOptions) (*PlanResult, error) {
	return planner.Plan(m, c, opts)
}

// Simulate executes one training iteration of the plan on the discrete-event
// runtime and reports iteration time, throughput, per-device peak memory and
// OOM conditions.
func Simulate(p *Plan, opts ScheduleOptions) (*ScheduleResult, error) {
	return schedule.Run(p, opts)
}

// Gantt renders a simulated iteration as an ASCII timeline, one row per
// stage executor and link (the Fig. 3/4 schedule diagrams).
func Gantt(res *ScheduleResult, width int) string {
	return trace.Gantt(res.Sim, width)
}

// MemoryCurve renders stage's memory-over-time as a sparkline plus its peak
// bytes (the Fig. 3(c) curves).
func MemoryCurve(res *ScheduleResult, stage, width int) (string, int64) {
	return trace.MemCurve(res.MemTrace(stage), res.IterTime, width)
}
