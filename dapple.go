// Package dapple is the public facade of this reproduction of
// "DAPPLE: A Pipelined Data Parallel Approach for Training Large Models"
// (Fan et al., PPoPP 2021): profile a model, plan a hybrid data/pipeline
// strategy for a cluster, and simulate or really execute the planned
// schedule.
//
// # Engine and strategies
//
// The Engine is the context-aware front door. It binds a cluster to one
// planning Strategy — the DAPPLE planner or any of the paper's baselines
// (pure data parallelism, GPipe, PipeDream, the straight pipeline), all
// implementing the same interface and returning the same PlanResult shape —
// and caches plans by (model, cluster, batch geometry, strategy) so repeated
// planning traffic runs each search once:
//
//	eng, err := dapple.NewEngine(
//		dapple.WithCluster(dapple.ConfigA(2)),
//		dapple.WithStrategy("dapple"), // or "dp", "gpipe", "pipedream", "straight"
//	)
//	pr, err := eng.Plan(ctx, dapple.ModelByName("BERT-48"))
//	res, err := eng.SimulatePlan(ctx, pr)
//
// Plan and Simulate thread their context through the planner's
// dynamic-program search and the discrete-event scheduler, so long searches
// are cancellable and deadline-bounded. Strategies register by name
// (Strategies lists them, RegisterStrategy adds custom ones); every
// strategy's result carries the plan, its simulated latency and speedup, a
// recommended runtime policy, and whether activation re-computation is
// needed, so alternatives compare apples-to-apples.
//
// # Parallel planning
//
// The DAPPLE planner fans its search out across first-stage split points on
// a worker pool and prunes with an admissible branch-and-bound lower bound.
// PlanOptions.Workers bounds the fan-out (0 = GOMAXPROCS, 1 = sequential;
// WithPlannerWorkers sets it on an engine) and PlanOptions.NoPrune disables
// pruning for soundness testing. The chosen plan is byte-identical for
// every worker count: branches search isolated state and merge in
// deterministic order. See ARCHITECTURE.md for the full walk-through.
//
// The components mirror the paper's Fig. 1 workflow: the Profiler
// (ProfileArch) turns an architecture into per-layer statistics; a Strategy
// searches stage partitions, replication and topology-aware placement; the
// Runtime (Engine.Simulate) executes GPipe or DAPPLE early-backward
// schedules with byte-accurate memory accounting on a discrete-event cluster
// simulator.
//
// # Real execution
//
// Plans are executable, not only simulable. ProfileNetwork bridges a real
// Network into a planner Model (one profiled layer per network layer), and
// Engine.NewExecutor / Engine.Execute carve the planned stages into one
// worker goroutine per device, move activations and gradients over channel
// links with split/concat row redistribution at replication boundaries, and
// synchronize replicated stages with a real ring all-reduce. Gradients of
// any executed plan match sequential training to float tolerance, and
// VerifyExecution asserts the real per-device event order equals the
// simulated schedule of the same plan; see examples/training.
package dapple

import (
	"context"

	"dapple/internal/core"
	"dapple/internal/hardware"
	"dapple/internal/model"
	"dapple/internal/planner"
	"dapple/internal/profile"
	"dapple/internal/schedule"
	"dapple/internal/trace"
)

// Re-exported core types. The internal packages remain the implementation;
// these aliases are the stable public surface.
type (
	// Model is a profiled DNN: per-layer compute times, activation sizes and
	// parameter sizes at a reference micro-batch.
	Model = model.Model
	// Layer is one profiled, pipeline-splittable unit.
	Layer = model.Layer
	// Cluster describes a training cluster topology.
	Cluster = hardware.Cluster
	// DeviceID identifies one accelerator.
	DeviceID = hardware.DeviceID
	// Plan is a hybrid data/pipeline parallelization strategy.
	Plan = core.Plan
	// Stage is one pipeline stage of a Plan.
	Stage = core.Stage
	// PlanResult is a strategy's output: the chosen plan plus its simulated
	// latency, speedup, recommended policy and re-computation need.
	PlanResult = planner.Result
	// PlanOptions tunes a strategy's plan search.
	PlanOptions = planner.Options
	// SchedulePolicy selects the micro-batch scheduling discipline.
	SchedulePolicy = schedule.Policy
	// ScheduleOptions configures a simulated training iteration.
	ScheduleOptions = schedule.Options
	// ScheduleResult reports a simulated training iteration.
	ScheduleResult = schedule.Result
	// Arch is a profilable architecture description.
	Arch = profile.Arch
	// LayerSpec is one architecture layer kind.
	LayerSpec = profile.LayerSpec
)

// Schedule policies.
const (
	// GPipeSchedule floods all micro-batches forward before draining
	// backward (Fig. 3(a)).
	GPipeSchedule = schedule.GPipe
	// DapplePA is early-backward scheduling with K_i = min(S-i, D) warmup
	// micro-batches (§V-C policy A).
	DapplePA = schedule.DapplePA
	// DapplePB doubles the warmup depth for communication-heavy pipelines
	// (§V-C policy B).
	DapplePB = schedule.DapplePB
)

// ConfigA returns the hierarchical cluster of Table III: servers with 8
// NVLink-connected V100s on 25 Gbps Ethernet.
func ConfigA(servers int) Cluster { return hardware.ConfigA(servers) }

// ConfigB returns the flat cluster of Table III: single-V100 servers on
// 25 Gbps Ethernet.
func ConfigB(servers int) Cluster { return hardware.ConfigB(servers) }

// ConfigC returns the flat cluster of Table III with 10 Gbps Ethernet.
func ConfigC(servers int) Cluster { return hardware.ConfigC(servers) }

// Zoo returns the six calibrated benchmark models of Table II.
func Zoo() []*Model { return model.Zoo() }

// ModelByName returns a zoo model by its Table II name, or nil.
func ModelByName(name string) *Model { return model.ByName(name) }

// ProfileArch measures an architecture on a V100-class device at the given
// micro-batch size, producing a planner-ready Model (the DAPPLE Profiler).
func ProfileArch(a Arch, batch int) (*Model, error) {
	return profile.New(profile.V100()).Profile(a, batch)
}

// PlanModel searches for the latency-optimal hybrid plan of m on c (the
// DAPPLE Planner). A zero Options value uses the model's default global
// batch size.
//
// Deprecated: construct an Engine and call [Engine.Plan]; it accepts a
// context, supports every registered strategy, and caches results. PlanModel
// remains as a thin uncached wrapper over the "dapple" strategy.
func PlanModel(m *Model, c Cluster, opts PlanOptions) (*PlanResult, error) {
	return planner.PlanContext(context.Background(), m, c, opts)
}

// Simulate executes one training iteration of the plan on the discrete-event
// runtime and reports iteration time, throughput, per-device peak memory and
// OOM conditions.
//
// Deprecated: use [Engine.Simulate] (or [Engine.SimulatePlan]), which
// accepts a context so long simulations are cancellable.
func Simulate(p *Plan, opts ScheduleOptions) (*ScheduleResult, error) {
	return schedule.Run(p, opts)
}

// Gantt renders a simulated iteration as an ASCII timeline, one row per
// stage executor and link (the Fig. 3/4 schedule diagrams).
func Gantt(res *ScheduleResult, width int) string {
	return trace.Gantt(res.Sim, width)
}

// MemoryCurve renders stage's memory-over-time as a sparkline plus its peak
// bytes (the Fig. 3(c) curves).
func MemoryCurve(res *ScheduleResult, stage, width int) (string, int64) {
	return trace.MemCurve(res.MemTrace(stage), res.IterTime, width)
}
