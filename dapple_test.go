package dapple

import (
	"testing"

	"dapple/internal/core"
	"dapple/internal/profile"
)

// TestQuickstartFlow exercises the public facade end to end: zoo model ->
// plan -> simulate.
func TestQuickstartFlow(t *testing.T) {
	m := ModelByName("BERT-48")
	if m == nil {
		t.Fatal("zoo missing BERT-48")
	}
	c := ConfigA(2)
	pr, err := PlanModel(m, c, PlanOptions{PruneSlack: 1.2, Finalists: 6})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Plan.Kind() == core.KindDP {
		t.Fatalf("BERT-48 on config A should pipeline, got %v", pr.Plan)
	}
	res, err := Simulate(pr.Plan, ScheduleOptions{Policy: DapplePA, Recompute: pr.NeedsRecompute})
	if err != nil {
		t.Fatal(err)
	}
	if res.OOM {
		t.Fatalf("planned strategy OOMs: %+v", res)
	}
	if res.IterTime <= 0 || res.Throughput() <= 0 {
		t.Fatalf("degenerate simulation: %+v", res)
	}
}

// TestProfileToPlan profiles a custom architecture and plans it.
func TestProfileToPlan(t *testing.T) {
	arch := Arch{
		Name: "custom-transformer",
		Layers: []LayerSpec{
			profile.Embedding{Name: "embed", Vocab: 32000, Hidden: 512, SeqLen: 128},
		},
		DefaultGBS: 64,
	}
	for i := 0; i < 12; i++ {
		arch.Layers = append(arch.Layers, profile.Transformer{
			Hidden: 512, Heads: 8, SeqLen: 128,
		})
	}
	m, err := ProfileArch(arch, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumLayers() != 13 {
		t.Fatalf("profiled %d layers", m.NumLayers())
	}
	pr, err := PlanModel(m, ConfigB(4), PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := pr.Plan.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestZooComplete(t *testing.T) {
	if len(Zoo()) != 6 {
		t.Fatalf("zoo has %d models, want 6", len(Zoo()))
	}
	for _, m := range Zoo() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}
