package dapple

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"dapple/internal/tensor"
)

// TestEngineExecute drives the public plan-then-execute surface end to end:
// profile a real network, plan it, really execute the plan, and verify the
// execution against the simulated schedule.
func TestEngineExecute(t *testing.T) {
	master := NewMLP([]int{8, 16, 12, 4}, 11) // 5 layers
	model, err := ProfileNetwork("exec-net", master, 8, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(
		WithCluster(ConfigB(2)),
		WithStrategy("dapple"),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	pr, err := eng.Plan(ctx, model)
	if err != nil {
		t.Fatal(err)
	}

	micros := make([]TrainBatch, pr.Plan.M())
	for i := range micros {
		x := tensor.New(pr.Plan.MicroBatch, 8)
		x.Randomize(rand.New(rand.NewSource(int64(i))), 1)
		y := make([]int, pr.Plan.MicroBatch)
		for j := range y {
			y[j] = (i + j) % 4
		}
		micros[i] = TrainBatch{X: x, Y: y}
	}

	res, err := eng.Execute(ctx, pr, master, micros, func() Optimizer { return SGDOptimizer(0.1) })
	if err != nil {
		t.Fatal(err)
	}
	if res.Loss <= 0 || res.M != pr.Plan.M() {
		t.Fatalf("unexpected result: loss %g, M %d", res.Loss, res.M)
	}
	if res.Trace == nil {
		t.Fatal("expected a real-execution trace")
	}
	simRes, err := eng.SimulatePlan(ctx, pr)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyExecution(pr, simRes, res); err != nil {
		t.Fatalf("VerifyExecution: %v", err)
	}
	if g := ExecGantt(res, 60); !strings.Contains(g, "s0.d0") {
		t.Fatalf("ExecGantt missing device row:\n%s", g)
	}

	// A persistent executor steps repeatedly on the same carved stages.
	ex, err := eng.NewExecutor(pr, master, func() Optimizer { return SGDOptimizer(0.1) })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := ex.Step(micros); err != nil {
			t.Fatal(err)
		}
	}

	if _, err := eng.Execute(ctx, nil, master, micros, nil); err == nil {
		t.Fatal("expected error: nil plan result")
	}
}
