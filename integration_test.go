package dapple

// Cross-layer integration tests: the analytic model, the discrete-event
// scheduler and the real goroutine runtime must tell one consistent story.

import (
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"dapple/internal/baselines"
	"dapple/internal/core"
	"dapple/internal/hardware"
	"dapple/internal/model"
	"dapple/internal/nn"
	"dapple/internal/tensor"
	"dapple/internal/train"
)

// TestWarmupDepthMatchesRealRuntime: the simulated DAPPLE schedule's warmup
// depth K_i and the real pipeline's peak activation stash must agree — both
// implement K_i = S - i early-backward scheduling.
func TestWarmupDepthMatchesRealRuntime(t *testing.T) {
	const stages, m = 3, 9

	// Simulated side: uniform 6-layer model, 3-stage straight pipeline.
	mod := model.Synthetic(6, 1e-3, 1<<20, 4<<20, 1<<20)
	plan := baselines.GPipePlan(mod, hardware.ConfigB(stages), m, stages)
	res, err := Simulate(plan, ScheduleOptions{Policy: DapplePA, M: m, MemLimit: -1})
	if err != nil {
		t.Fatal(err)
	}

	// Real side: a 9-layer MLP (Dense/ReLU alternation) in 3 equal stages.
	master := nn.MLP([]int{8, 16, 16, 16, 16, 4}, 7)
	pipe, err := train.NewPipeline(master, train.PipelineConfig{
		Cuts:   []int{3, 6, 9},
		Policy: train.DappleSchedule,
	}, func() nn.Optimizer { return nn.SGD{LR: 0} })
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	micros := make([]train.Batch, m)
	for i := range micros {
		x := tensor.New(4, 8)
		x.Randomize(rng, 1)
		micros[i] = train.Batch{X: x, Y: []int{0, 1, 2, 3}}
	}
	st, err := pipe.Step(micros)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < stages; i++ {
		if got, want := res.PerStage[i].Warmup, stages-i; got != want {
			t.Fatalf("sim stage %d warmup %d, want %d", i, got, want)
		}
		if got, want := st.MaxStash[i], stages-i; got != want {
			t.Fatalf("real stage %d stash %d, want %d", i, got, want)
		}
	}
}

// TestAnalyticTracksSimulation: across the zoo, the analytic Eq. (1)-(2)
// latency of a 2-stage balanced plan stays within 40% of the simulated
// latency — the "approximation works practically well" claim of §IV-A.
func TestAnalyticTracksSimulation(t *testing.T) {
	for _, m := range model.Zoo() {
		c := hardware.ConfigB(2)
		p := baselines.GPipePlan(m, c, m.DefaultGBS, 2)
		res, err := Simulate(p, ScheduleOptions{Policy: DapplePA, MemLimit: -1})
		if err != nil {
			t.Fatal(err)
		}
		analytic := p.Latency()
		ratio := res.IterTime / analytic
		if ratio < 0.95 || ratio > 1.4 {
			t.Errorf("%s: sim/analytic = %.2f (sim %.1fms, analytic %.1fms)",
				m.Name, ratio, res.IterTime*1e3, analytic*1e3)
		}
	}
}

// TestSpeedupNeverSuperlinear: no plan the planner emits may beat perfect
// linear scaling, across the whole zoo and all three configs.
func TestSpeedupNeverSuperlinear(t *testing.T) {
	if testing.Short() {
		t.Skip("planner sweep")
	}
	for _, m := range model.Zoo() {
		for _, c := range []Cluster{ConfigA(2), ConfigB(16), ConfigC(16)} {
			pr, err := PlanModel(m, c, PlanOptions{PruneSlack: 1.2, Finalists: 4})
			if err != nil {
				t.Fatalf("%s on %s: %v", m.Name, c.Name, err)
			}
			if pr.Speedup > float64(c.NumDevices())*1.0001 {
				t.Errorf("%s on %s: superlinear %.2fx", m.Name, c.Name, pr.Speedup)
			}
		}
	}
}

// TestPlanJSONRoundTrip serializes a planned strategy and reloads it against
// the same model/cluster.
func TestPlanJSONRoundTrip(t *testing.T) {
	m := model.VGG19()
	c := hardware.ConfigC(4)
	pr, err := PlanModel(m, c, PlanOptions{PruneSlack: 1.2, Finalists: 4})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(pr.Plan)
	if err != nil {
		t.Fatal(err)
	}
	back, err := core.UnmarshalPlan(data, m, c)
	if err != nil {
		t.Fatal(err)
	}
	if back.SplitString() != pr.Plan.SplitString() || back.ReplicaString() != pr.Plan.ReplicaString() {
		t.Fatalf("round trip changed the plan: %v vs %v", back, pr.Plan)
	}
	if math.Abs(back.Latency()-pr.Plan.Latency()) > 1e-12 {
		t.Fatal("round trip changed the latency")
	}
	// Rebinding against the wrong model must fail.
	if _, err := core.UnmarshalPlan(data, model.BERT48(), c); err == nil {
		t.Fatal("expected model mismatch error")
	}
}

// TestPlanJSONRoundTripSimulatesIdentically: a plan written by -plan-out and
// reloaded via core.UnmarshalPlan must simulate to the exact same iteration
// time — the serialized form carries everything the scheduler consumes (and
// everything the Engine's cache key must distinguish).
func TestPlanJSONRoundTripSimulatesIdentically(t *testing.T) {
	ctx := context.Background()
	m := model.ByName("GNMT-16")
	c := hardware.ConfigB(4)
	eng, err := NewEngine(WithCluster(c), WithPlanOptions(PlanOptions{PruneSlack: 1.2, Finalists: 4}))
	if err != nil {
		t.Fatal(err)
	}
	pr, err := eng.Plan(ctx, m)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(pr.Plan, "", "  ") // as cmd/dapple -plan-out writes it
	if err != nil {
		t.Fatal(err)
	}
	back, err := core.UnmarshalPlan(data, m, c)
	if err != nil {
		t.Fatal(err)
	}
	opts := ScheduleOptions{Policy: pr.Policy, Recompute: pr.NeedsRecompute}
	orig, err := eng.Simulate(ctx, pr.Plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	reloaded, err := eng.Simulate(ctx, back, opts)
	if err != nil {
		t.Fatal(err)
	}
	if orig.IterTime != reloaded.IterTime {
		t.Fatalf("round trip changed the simulated iteration time: %.9f vs %.9f",
			orig.IterTime, reloaded.IterTime)
	}
	if orig.MaxPeakMem != reloaded.MaxPeakMem {
		t.Fatalf("round trip changed peak memory: %d vs %d", orig.MaxPeakMem, reloaded.MaxPeakMem)
	}
}

// TestRecomputeEquivalenceEndToEnd: re-computation changes memory and time
// but never the math — simulated memory drops, real gradients stay equal.
func TestRecomputeEquivalenceEndToEnd(t *testing.T) {
	// Simulated side.
	m := model.XLNet36()
	plan := baselines.GPipePlan(m, hardware.ConfigB(2), 16, 2)
	plain, err := Simulate(plan, ScheduleOptions{Policy: DapplePA, MemLimit: -1})
	if err != nil {
		t.Fatal(err)
	}
	rc, err := Simulate(plan, ScheduleOptions{Policy: DapplePA, Recompute: true, MemLimit: -1})
	if err != nil {
		t.Fatal(err)
	}
	if rc.AvgPeakMem >= plain.AvgPeakMem || rc.IterTime <= plain.IterTime {
		t.Fatalf("recompute: mem %.2f->%.2f GiB, time %.0f->%.0fms",
			plain.AvgPeakMem/(1<<30), rc.AvgPeakMem/(1<<30), plain.IterTime*1e3, rc.IterTime*1e3)
	}

	// Real side.
	master := nn.MLP([]int{6, 12, 6, 3}, 5)
	rng := rand.New(rand.NewSource(3))
	micros := make([]train.Batch, 4)
	for i := range micros {
		x := tensor.New(3, 6)
		x.Randomize(rng, 1)
		micros[i] = train.Batch{X: x, Y: []int{0, 1, 2}}
	}
	run := func(recompute bool) []float64 {
		pipe, err := train.NewPipeline(master, train.PipelineConfig{
			Cuts: []int{2, 5}, Policy: train.DappleSchedule, Recompute: recompute,
		}, func() nn.Optimizer { return nn.SGD{LR: 0.1} })
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pipe.Step(micros); err != nil {
			t.Fatal(err)
		}
		var ps []float64
		for s := 0; s < pipe.NumStages(); s++ {
			for _, p := range pipe.StageParams(s, 0) {
				ps = append(ps, p.W.Data...)
			}
		}
		return ps
	}
	a, b := run(false), run(true)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatal("re-computation changed the training math")
		}
	}
}

// TestScheduleCompare: under identical partition/M, DAPPLE's iteration time
// stays within 15% of GPipe's (the paper: "the exact same bubble time") while
// using strictly less memory.
func TestScheduleCompare(t *testing.T) {
	for _, name := range []string{"BERT-48", "XLNet-36", "GNMT-16"} {
		m := model.ByName(name)
		plan := baselines.GPipePlan(m, hardware.ConfigB(4), 16*m.ProfileBatch, 4)
		gp, err := Simulate(plan, ScheduleOptions{Policy: GPipeSchedule, MemLimit: -1})
		if err != nil {
			t.Fatal(err)
		}
		da, err := Simulate(plan, ScheduleOptions{Policy: DapplePA, MemLimit: -1})
		if err != nil {
			t.Fatal(err)
		}
		if da.IterTime > gp.IterTime*1.15 {
			t.Errorf("%s: DAPPLE %.0fms vs GPipe %.0fms (>15%% slower)",
				name, da.IterTime*1e3, gp.IterTime*1e3)
		}
		if da.AvgPeakMem >= gp.AvgPeakMem {
			t.Errorf("%s: DAPPLE memory %.2f GiB not below GPipe %.2f GiB",
				name, da.AvgPeakMem/(1<<30), gp.AvgPeakMem/(1<<30))
		}
	}
}
