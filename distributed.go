package dapple

import (
	"context"

	"dapple/internal/train"
	"dapple/internal/transport"
)

// Re-exported distributed-runtime types: the multi-process form of the
// executor, where a coordinator shards a Plan's stage replicas across worker
// processes connected by a TCP mesh and gradient all-reduce turns
// hierarchical (intra-server reduce, cross-server exchange, intra-server
// broadcast) whenever a replica group spans servers.
type (
	// Transport is the abstract data plane an Executor opens edges and
	// collective groups on; TCPTransport and ChaosTransport implement it.
	Transport = transport.Transport
	// TCPTransport is one mesh endpoint: framed tensor edges plus collective
	// groups over length-prefixed TCP connections to every peer rank.
	TCPTransport = transport.TCP
	// DistConfig places an Executor inside a distributed session: its mesh
	// transport, its rank, and the device→rank map shared by all ranks.
	DistConfig = train.DistConfig
	// Coordinator drives a distributed session: manifest, weight broadcast,
	// gated training steps, fail-stop abort, shutdown barrier.
	Coordinator = train.Coordinator
	// DistWorker serves one rank of a distributed session, hosting the stage
	// replicas the coordinator's placement maps to it.
	DistWorker = train.Worker
	// OptSpec names an optimizer portably so the coordinator's manifest can
	// tell every worker how to build identical optimizer state.
	OptSpec = train.OptSpec
	// SessionOption configures a Coordinator's fault-tolerance machinery:
	// WithHeartbeat, WithStepTimeout, WithShutdownTimeout, WithCheckpoint,
	// WithCheckpointRetention, WithReplan and WithElastic.
	SessionOption = train.SessionOption
	// ReplanFunc produces a plan for the surviving worker ranks after a
	// failure, plus the new device→rank placement.
	ReplanFunc = train.ReplanFunc
	// Recovered is the error a survivable session's Step returns after a
	// successful recovery: rewind the data feed to Resume and keep going.
	Recovered = train.Recovered
	// Checkpoint is one consistent snapshot of a session's training state:
	// weights plus optimizer state, tagged with its step count.
	Checkpoint = train.Checkpoint
	// ChaosTransport wraps a Transport with deterministic, seeded fault
	// injection (dropped/duplicated/delayed frames, frozen edges, torn
	// connections) for fault-tolerance testing.
	ChaosTransport = transport.Chaos
	// ChaosConfig scripts a ChaosTransport's fault schedule.
	ChaosConfig = transport.ChaosConfig
)

// Session fault-tolerance options, re-exported from the train package.
var (
	// WithHeartbeat enables the session's liveness plane: heartbeats every
	// interval, and ranks silent past timeout are declared dead.
	WithHeartbeat = train.WithHeartbeat
	// WithStepTimeout bounds each step's report barrier.
	WithStepTimeout = train.WithStepTimeout
	// WithShutdownTimeout bounds Close's shutdown-ack barrier.
	WithShutdownTimeout = train.WithShutdownTimeout
	// WithCheckpoint persists consistent snapshots and restores the latest
	// one at session start and during recovery.
	WithCheckpoint = train.WithCheckpoint
	// WithReplan makes the session survive worker death by re-planning
	// onto the survivors.
	WithReplan = train.WithReplan
	// WithCheckpointRetention prunes the checkpoint directory down to the
	// newest keep snapshots after every successful save.
	WithCheckpointRetention = train.WithCheckpointRetention
	// WithElastic lets new workers join the running session: the coordinator
	// (which must listen — use ListenTCP) admits JoinSession knocks at step
	// boundaries, streams them the live training state, and re-plans onto
	// the expanded membership. addrs maps each initial rank to its listen
	// address so joiners can dial the existing mesh. Requires WithReplan.
	WithElastic = train.WithElastic
)

// JoinSession dials a running elastic session's coordinator at coordAddr,
// runs the membership handshake (protocol version and manifest-hash checks,
// rank grant), dials the granted peer mesh and returns the admitted worker —
// call Serve on it to receive the state stream and start training. The
// transport must listen (ListenTCP) so existing members can dial back.
func JoinSession(ctx context.Context, t *TCPTransport, coordAddr string) (*DistWorker, error) {
	return train.JoinSession(ctx, t, coordAddr)
}

// NewChaosTransport wraps inner with the scripted fault schedule; the same
// seed always yields the same per-edge schedule.
func NewChaosTransport(inner Transport, cfg ChaosConfig) *ChaosTransport {
	return transport.NewChaos(inner, cfg)
}

// ReadCheckpoint reads and validates the checkpoint file at path.
func ReadCheckpoint(path string) (*Checkpoint, error) { return train.ReadCheckpoint(path) }

// LatestCheckpoint loads the newest valid checkpoint in dir (nil, "", nil
// when none exists).
func LatestCheckpoint(dir string) (*Checkpoint, string, error) { return train.LatestCheckpoint(dir) }

// ListenTCP returns a worker-side mesh endpoint accepting connections on
// addr (use port 0 for an ephemeral port; Addr reports the resolved one).
// Call SetRank, Dial lower-ranked peers, then WaitPeers before serving.
func ListenTCP(addr string) (*TCPTransport, error) { return transport.ListenTCP(addr) }

// NewTCPTransport returns a dial-only mesh endpoint — the coordinator's
// side, which dials every worker and never accepts connections.
func NewTCPTransport() *TCPTransport { return transport.NewTCP() }

// NewCoordinator opens a distributed training session over an already
// connected mesh: it broadcasts the plan manifest and master weights to all
// workers, waits for every rank to build its executor, and returns a
// Coordinator whose Step drives lock-step training iterations. deviceRanks
// maps each of the plan's devices to the worker rank hosting it; workers is
// the mesh size excluding the coordinator (which must be rank workers).
// Session options (WithHeartbeat, WithCheckpoint, WithReplan, ...) opt the
// session out of its default fail-stop semantics into fault tolerance.
func NewCoordinator(ctx context.Context, t *TCPTransport, p *Plan, master *Network, opt OptSpec, eo ExecOptions, deviceRanks []int, workers int, opts ...SessionOption) (*Coordinator, error) {
	return train.NewCoordinator(ctx, t, p, master, opt, eo, deviceRanks, workers, opts...)
}

// NewDistWorker wraps a connected mesh endpoint as one session worker; call
// Serve to run the protocol until shutdown or session failure (fail-stop:
// any error anywhere ends the session on every rank).
func NewDistWorker(t *TCPTransport, rank int) *DistWorker { return train.NewWorker(t, rank) }
