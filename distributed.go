package dapple

import (
	"context"

	"dapple/internal/train"
	"dapple/internal/transport"
)

// Re-exported distributed-runtime types: the multi-process form of the
// executor, where a coordinator shards a Plan's stage replicas across worker
// processes connected by a TCP mesh and gradient all-reduce turns
// hierarchical (intra-server reduce, cross-server exchange, intra-server
// broadcast) whenever a replica group spans servers.
type (
	// TCPTransport is one mesh endpoint: framed tensor edges plus collective
	// groups over length-prefixed TCP connections to every peer rank.
	TCPTransport = transport.TCP
	// DistConfig places an Executor inside a distributed session: its mesh
	// transport, its rank, and the device→rank map shared by all ranks.
	DistConfig = train.DistConfig
	// Coordinator drives a distributed session: manifest, weight broadcast,
	// gated training steps, fail-stop abort, shutdown barrier.
	Coordinator = train.Coordinator
	// DistWorker serves one rank of a distributed session, hosting the stage
	// replicas the coordinator's placement maps to it.
	DistWorker = train.Worker
	// OptSpec names an optimizer portably so the coordinator's manifest can
	// tell every worker how to build identical optimizer state.
	OptSpec = train.OptSpec
)

// ListenTCP returns a worker-side mesh endpoint accepting connections on
// addr (use port 0 for an ephemeral port; Addr reports the resolved one).
// Call SetRank, Dial lower-ranked peers, then WaitPeers before serving.
func ListenTCP(addr string) (*TCPTransport, error) { return transport.ListenTCP(addr) }

// NewTCPTransport returns a dial-only mesh endpoint — the coordinator's
// side, which dials every worker and never accepts connections.
func NewTCPTransport() *TCPTransport { return transport.NewTCP() }

// NewCoordinator opens a distributed training session over an already
// connected mesh: it broadcasts the plan manifest and master weights to all
// workers, waits for every rank to build its executor, and returns a
// Coordinator whose Step drives lock-step training iterations. deviceRanks
// maps each of the plan's devices to the worker rank hosting it; workers is
// the mesh size excluding the coordinator (which must be rank workers).
func NewCoordinator(ctx context.Context, t *TCPTransport, p *Plan, master *Network, opt OptSpec, eo ExecOptions, deviceRanks []int, workers int) (*Coordinator, error) {
	return train.NewCoordinator(ctx, t, p, master, opt, eo, deviceRanks, workers)
}

// NewDistWorker wraps a connected mesh endpoint as one session worker; call
// Serve to run the protocol until shutdown or session failure (fail-stop:
// any error anywhere ends the session on every rank).
func NewDistWorker(t *TCPTransport, rank int) *DistWorker { return train.NewWorker(t, rank) }
