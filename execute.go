package dapple

import (
	"context"
	"errors"
	"time"

	"dapple/internal/nn"
	"dapple/internal/trace"
	"dapple/internal/train"
)

// Re-exported real-runtime types: the concurrent mini-runtime (goroutines as
// devices, channels as links) that executes planner Plans on genuine
// gradient math.
type (
	// Network is a real layer stack the runtime trains (package nn).
	Network = nn.Network
	// Optimizer updates parameters from accumulated gradients.
	Optimizer = nn.Optimizer
	// TrainBatch is one micro-batch of classification examples.
	TrainBatch = train.Batch
	// Executor runs a planner Plan on a real Network as a multi-goroutine
	// pipeline with channel links, stage replication and ring all-reduce.
	Executor = train.Executor
	// ExecOptions configure plan-driven execution (policy, re-computation,
	// warmup memory limit, tracing).
	ExecOptions = train.ExecOptions
	// ExecResult reports one really-executed training iteration.
	ExecResult = train.ExecResult
)

// NewMLP builds an n-hidden-layer perceptron with ReLU activations and a
// linear head (dims like [in, h1, ..., out]), deterministically initialized
// from seed — the runtime's standard test network.
func NewMLP(dims []int, seed int64) *Network { return nn.MLP(dims, seed) }

// SGDOptimizer returns plain stochastic gradient descent at the given
// learning rate.
func SGDOptimizer(lr float64) Optimizer { return nn.SGD{LR: lr} }

// AdamOptimizer returns Adam with standard defaults at the given learning
// rate.
func AdamOptimizer(lr float64) Optimizer { return nn.NewAdam(lr) }

// ProfileNetwork derives a planner-ready Model from a real Network: one
// model layer per network layer, with analytic compute times and measured
// activation/parameter bytes at profileBatch rows of inDim features. The
// returned model's layer indices map one-to-one onto the network's layers,
// so any Plan an Engine produces for it is executable — this is the bridge
// that closes the paper's planner→runtime loop.
func ProfileNetwork(name string, net *Network, inDim, profileBatch, defaultGBS int) (*Model, error) {
	return train.ProfileNetwork(name, net, inDim, profileBatch, defaultGBS)
}

// MeasureOptions configure measured (calibration-based) network profiling:
// warm-up iterations and the number of recorded iterations aggregated per
// layer.
type MeasureOptions = train.MeasureOptions

// ProfileNetworkMeasured is ProfileNetwork with measured per-layer times: it
// runs warm calibration iterations of the network's pooled-buffer execution
// path — the same kernels the Executor runs — and aggregates each layer's
// recorded forward/backward span durations by median, the paper's actual
// profiler loop. Byte accounting is identical to ProfileNetwork's, so the
// profiles differ only in their time columns. The calibration loop checks
// ctx between iterations, so deadlines and cancellation bound it.
func ProfileNetworkMeasured(ctx context.Context, name string, net *Network, inDim, profileBatch, defaultGBS int, mo MeasureOptions) (*Model, error) {
	return train.ProfileNetworkMeasured(ctx, name, net, inDim, profileBatch, defaultGBS, mo)
}

// WithMeasuredProfile makes the engine's ProfileNetwork method calibrate
// per-layer times from real warm execution (ProfileNetworkMeasured) instead
// of the analytic FLOP model — the calibrate→plan→execute loop the paper
// drives its planner with.
func WithMeasuredProfile(mo MeasureOptions) EngineOption {
	return func(e *Engine) error {
		e.measure = &mo
		return nil
	}
}

// ProfileNetwork profiles a real network through the engine's configured
// profiling mode: analytic per-layer times by default, measured (calibrated
// by real execution, ctx-bounded) when the engine was built
// WithMeasuredProfile. Plans searched on the returned model are executable
// by NewExecutor either way.
func (e *Engine) ProfileNetwork(ctx context.Context, name string, net *Network, inDim, profileBatch, defaultGBS int) (*Model, error) {
	if e.measure != nil {
		return train.ProfileNetworkMeasured(ctx, name, net, inDim, profileBatch, defaultGBS, *e.measure)
	}
	return train.ProfileNetwork(name, net, inDim, profileBatch, defaultGBS)
}

// NewExecutor builds a plan-driven executor for a planning result: the
// network is carved into the plan's stages (one replica per device) and the
// strategy's recommended schedule policy and re-computation setting are
// applied, or the engine's WithPolicy override when one is set. The executor
// can then Step any number of training iterations.
func (e *Engine) NewExecutor(pr *PlanResult, net *Network, optFactory func() Optimizer) (*Executor, error) {
	if pr == nil {
		return nil, errors.New("dapple: NewExecutor of a nil result")
	}
	pol := pr.Policy
	if e.hasPolicy {
		pol = e.policy
	}
	return train.NewExecutor(pr.Plan, net, optFactory, ExecOptions{
		Policy: pol, Recompute: pr.NeedsRecompute,
	})
}

// Execute really executes one training iteration of the planning result on
// net under ctx: plan-driven stage carving, concurrent pipeline workers,
// gradient all-reduce, weight update. It is the one-shot form of NewExecutor
// followed by StepContext; construct an Executor directly to amortize stage
// carving over many iterations.
func (e *Engine) Execute(ctx context.Context, pr *PlanResult, net *Network, micros []TrainBatch, optFactory func() Optimizer) (*ExecResult, error) {
	if pr == nil {
		return nil, errors.New("dapple: Execute of a nil result")
	}
	start := time.Now()
	pe := e.progressBase("exec.start", pr.Plan.GBS)
	if pr.Plan.Model != nil {
		pe.Model = pr.Plan.Model.Name
	}
	pe.Cluster = pr.Plan.Cluster.Name
	e.emit(pe)
	ex, err := e.NewExecutor(pr, net, optFactory)
	var res *ExecResult
	if err == nil {
		res, err = ex.StepContext(ctx, micros)
	}
	pe.Elapsed = time.Since(start)
	if err != nil {
		pe.Phase, pe.Err = "exec.error", err
	} else {
		pe.Phase = "exec.done"
	}
	e.emit(pe)
	return res, err
}

// ExecGantt renders a really-executed iteration's span trace as an ASCII
// timeline, one row per device — the real-runtime counterpart of Gantt.
func ExecGantt(res *ExecResult, width int) string {
	if res == nil || res.Trace == nil {
		return ""
	}
	return trace.Gantt(res.Trace, width)
}

// VerifyExecution checks the sim-vs-real contract: every device's event
// order in the really-executed trace equals the simulator's schedule of the
// same plan under the same policy, re-computation setting and micro-batch
// count. It returns nil when they match.
func VerifyExecution(pr *PlanResult, simRes *ScheduleResult, execRes *ExecResult) error {
	if pr == nil {
		return errors.New("dapple: VerifyExecution of a nil plan result")
	}
	return train.VerifyOrder(pr.Plan, simRes, execRes)
}
