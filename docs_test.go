package dapple

// Doc-comment lint: undocumented exported symbols fail `go test` (and hence
// CI). This enforces the repository rule that `go doc` on any package reads
// like reference documentation — the equivalent of revive's exported-comment
// rule, without taking on a tool dependency.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// lintedPackages are the directories (relative to the repo root) whose
// exported surface must be fully documented. Add a directory here when its
// godoc pass lands.
var lintedPackages = []string{
	".",
	"internal/baselines",
	"internal/cliutil",
	"internal/comm",
	"internal/core",
	"internal/experiments",
	"internal/hardware",
	"internal/model",
	"internal/planner",
	"internal/profile",
	"internal/schedule",
	"internal/sim",
	"internal/stats",
	"internal/strategy",
	"internal/tensor",
	"internal/trace",
	"internal/train",
	"internal/nn",
	"internal/transport",
}

// TestExportedSymbolsDocumented parses every linted package and reports each
// exported declaration that carries no doc comment, plus packages missing a
// package comment.
func TestExportedSymbolsDocumented(t *testing.T) {
	for _, dir := range lintedPackages {
		for _, problem := range lintPackageDocs(t, dir) {
			t.Error(problem)
		}
	}
}

// lintPackageDocs returns one message per missing doc comment in dir.
func lintPackageDocs(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read %s: %v", dir, err)
	}
	fset := token.NewFileSet()
	var problems []string
	pkgDocumented := false
	parsedAny := false
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		parsedAny = true
		if f.Doc != nil {
			pkgDocumented = true
		}
		problems = append(problems, lintFileDocs(fset, path, f)...)
	}
	if parsedAny && !pkgDocumented {
		problems = append(problems, fmt.Sprintf("%s: package has no package comment", dir))
	}
	return problems
}

// lintFileDocs reports exported top-level declarations without doc comments
// in one parsed file. A documented const/var/type group covers its members;
// an undocumented group needs per-spec comments on its exported names.
func lintFileDocs(fset *token.FileSet, path string, f *ast.File) []string {
	var problems []string
	report := func(pos token.Pos, kind, name string) {
		problems = append(problems,
			fmt.Sprintf("%s: exported %s %s has no doc comment", fset.Position(pos), kind, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !receiverExported(d) {
				continue
			}
			if d.Doc == nil {
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				report(d.Pos(), kind, d.Name.Name)
			}
		case *ast.GenDecl:
			if d.Tok == token.IMPORT || d.Doc != nil {
				continue
			}
			for _, spec := range d.Specs {
				switch sp := spec.(type) {
				case *ast.TypeSpec:
					if sp.Name.IsExported() && sp.Doc == nil && sp.Comment == nil {
						report(sp.Pos(), "type", sp.Name.Name)
					}
				case *ast.ValueSpec:
					if sp.Doc != nil || sp.Comment != nil {
						continue
					}
					for _, n := range sp.Names {
						if n.IsExported() {
							report(n.Pos(), d.Tok.String(), n.Name)
						}
					}
				}
			}
		}
	}
	return problems
}

// receiverExported reports whether a method's receiver type is exported (or
// the decl is a plain function); unexported types keep their methods out of
// godoc, so the lint skips them.
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.IsExported()
	}
	return true
}
