// Command dapple-bench regenerates the paper's evaluation tables and figures
// from the reproduction's workload generators, planner and schedule
// simulator. The full sweep takes ~30 s; every generator threads the
// command's context, so -timeout bounds it and ctrl-C stops it promptly.
//
// Usage:
//
//	dapple-bench -exp all          # every table and figure (§VI)
//	dapple-bench -exp table5       # one experiment
//	dapple-bench -list             # available experiment ids
//	dapple-bench -exp fig12 -quick # trimmed sweeps
//	dapple-bench -exp all -timeout 20s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dapple/internal/cliutil"
	"dapple/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (tableN, figN) or 'all'")
	quick := flag.Bool("quick", false, "trim sweeps for a fast pass")
	timeout := flag.Duration("timeout", 0, "abort the sweep after this long (0 = no limit)")
	list := flag.Bool("list", false, "list experiment ids")
	planFlags := cliutil.RegisterPlanFlags()
	profFlags := cliutil.RegisterProfileFlags()
	flag.Parse()

	stopProf, err := profFlags.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProf()

	if *list {
		for _, g := range experiments.All() {
			fmt.Printf("%-8s %s\n", g.ID, g.Name)
		}
		return
	}

	ctx, cancel := cliutil.RootContext(*timeout)
	defer cancel()

	opts := experiments.Options{Quick: *quick, Workers: planFlags.Workers, NoPrune: planFlags.NoPrune}
	run := func(g experiments.Generator) {
		start := time.Now()
		rep := g.Run(ctx, opts)
		fmt.Println(rep)
		fmt.Printf("(%s generated in %.1fs)\n\n", g.ID, time.Since(start).Seconds())
		// A truncated report is a failure for scripts regenerating the
		// paper's tables: exit non-zero rather than shipping partial data.
		// (A deadline firing just after a complete report is not a failure.)
		if rep.Truncated() {
			fmt.Fprintf(os.Stderr, "stopped: %v\n", ctx.Err())
			os.Exit(1)
		}
	}

	if *exp == "all" {
		for _, g := range experiments.All() {
			run(g)
		}
		return
	}
	g := experiments.ByID(*exp)
	if g == nil {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
		os.Exit(1)
	}
	run(*g)
}
