// Command dapple-bench regenerates the paper's evaluation tables and figures
// from the reproduction's workload generators, planner and schedule
// simulator. The full sweep takes ~30 s; every generator threads the
// command's context, so -timeout bounds it and ctrl-C stops it promptly.
//
// With -exec it instead benchmarks the REAL training runtime outside `go
// test`: the same replicated 4-stage fixture as BenchmarkExecutePlan (11
// layers carved 3:3:3:2, 2 replicas per stage, 8 worker goroutines, M=8),
// reporting per-iteration wall time, allocations and allocated bytes for
// both schedule policies — the portable form of the runtime benchmark for
// re-baselining on multi-core hosts.
//
// With -kernels it times the tensor kernels themselves (the blocked
// pool-parallel GEMM core against the retained legacy scalar loop, plus a
// worker-count sweep) — the portable form of the BenchmarkGEMM family for
// re-baselining BENCH_kernels.json on multi-core hosts.
//
// Usage:
//
//	dapple-bench -exp all          # every table and figure (§VI)
//	dapple-bench -exp table5       # one experiment
//	dapple-bench -list             # available experiment ids
//	dapple-bench -exp fig12 -quick # trimmed sweeps
//	dapple-bench -exp all -timeout 20s
//	dapple-bench -exec -exec-iters 100
//	dapple-bench -kernels -kernel-dim 512
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"dapple/internal/cliutil"
	"dapple/internal/experiments"
	"dapple/internal/hostinfo"
	"dapple/internal/schedule"
	"dapple/internal/stats"
	"dapple/internal/tensor"
	"dapple/internal/train"
	"dapple/internal/transport"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (tableN, figN) or 'all'")
	quick := flag.Bool("quick", false, "trim sweeps for a fast pass")
	timeout := flag.Duration("timeout", 0, "abort the sweep after this long (0 = no limit)")
	list := flag.Bool("list", false, "list experiment ids")
	execMode := flag.Bool("exec", false, "benchmark the real training runtime instead of the simulator sweeps")
	execIters := flag.Int("exec-iters", 50, "timed iterations per policy in -exec mode (after 3 warm-up iterations)")
	execTransport := flag.String("exec-transport", "inproc", "-exec data plane: 'inproc' (single-process executor) or 'tcp' (2-worker coordinator session over loopback sockets)")
	kernelMode := flag.Bool("kernels", false, "benchmark the tensor GEMM kernels (blocked core vs legacy scalar, worker sweep)")
	kernelDim := flag.Int("kernel-dim", 512, "square matrix dimension for -kernels timings")
	kernelReps := flag.Int("kernel-reps", 5, "timed repetitions per -kernels measurement (median reported)")
	planFlags := cliutil.RegisterPlanFlags()
	profFlags := cliutil.RegisterProfileFlags()
	seed := cliutil.RegisterSeedFlag()
	flag.Parse()

	stopProf, err := profFlags.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProf()

	if *list {
		for _, g := range experiments.All() {
			fmt.Printf("%-8s %s\n", g.ID, g.Name)
		}
		return
	}

	ctx, cancel := cliutil.RootContext(*timeout)
	defer cancel()

	if *kernelMode {
		runKernelBench(*kernelDim, *kernelReps)
		return
	}

	if *execMode {
		if *execIters < 1 {
			fmt.Fprintf(os.Stderr, "-exec-iters must be >= 1 (got %d)\n", *execIters)
			os.Exit(1)
		}
		switch *execTransport {
		case "inproc":
			runExecBench(ctx, *execIters, *seed)
		case "tcp":
			runExecBenchTCP(ctx, *execIters, *seed)
		default:
			fmt.Fprintf(os.Stderr, "unknown -exec-transport %q (want inproc or tcp)\n", *execTransport)
			os.Exit(1)
		}
		return
	}

	opts := experiments.Options{Quick: *quick, Workers: planFlags.Workers, NoPrune: planFlags.NoPrune}
	run := func(g experiments.Generator) {
		start := time.Now()
		rep := g.Run(ctx, opts)
		fmt.Println(rep)
		fmt.Printf("(%s generated in %.1fs)\n\n", g.ID, time.Since(start).Seconds())
		// A truncated report is a failure for scripts regenerating the
		// paper's tables: exit non-zero rather than shipping partial data.
		// (A deadline firing just after a complete report is not a failure.)
		if rep.Truncated() {
			fmt.Fprintf(os.Stderr, "stopped: %v\n", ctx.Err())
			os.Exit(1)
		}
	}

	if *exp == "all" {
		for _, g := range experiments.All() {
			run(g)
		}
		return
	}
	g := experiments.ByID(*exp)
	if g == nil {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
		os.Exit(1)
	}
	run(*g)
}

// runExecBench times the real runtime outside `go test`: per policy, 3
// warm-up iterations then iters timed ones, reporting medians-free simple
// per-iteration means of wall time, heap allocations and allocated bytes.
// The loop threads ctx, so -timeout and ctrl-C stop it mid-step like every
// other mode of the three commands.
func runExecBench(ctx context.Context, iters int, seed int64) {
	fmt.Printf("exec benchmark: %d iterations/policy\nhost: %s\n", iters, hostinfo.Summary())
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "stopped: %v\n", err)
		os.Exit(1)
	}
	for _, tc := range []struct {
		name string
		pol  schedule.Policy
	}{
		{"GPipe", schedule.GPipe},
		{"DAPPLE", schedule.DapplePA},
	} {
		ex, micros, err := train.BenchmarkFixture(tc.pol, seed)
		if err != nil {
			fail(err)
		}
		for i := 0; i < 3; i++ { // reach the allocation steady state
			if _, err := ex.StepContext(ctx, micros); err != nil {
				fail(err)
			}
		}
		var m1, m2 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m1)
		var commS, waitS float64
		start := time.Now()
		for i := 0; i < iters; i++ {
			res, err := ex.StepContext(ctx, micros)
			if err != nil {
				fail(err)
			}
			commS += sumF(res.CommSeconds)
			waitS += sumF(res.CommWaitSeconds)
		}
		wall := time.Since(start)
		runtime.ReadMemStats(&m2)
		perIter := wall / time.Duration(iters)
		fmt.Printf("  %-7s %s/iter  %6d B/iter  %4d allocs/iter  overlap %s  (%s total)\n",
			tc.name,
			stats.Seconds(perIter.Seconds()),
			(m2.TotalAlloc-m1.TotalAlloc)/uint64(iters),
			(m2.Mallocs-m1.Mallocs)/uint64(iters),
			fmtOverlap(commS, waitS),
			stats.Seconds(wall.Seconds()))
	}
}

// sumF sums a float64 slice (per-replica-group comm second counters).
func sumF(xs []float64) float64 {
	var t float64
	for _, x := range xs {
		t += x
	}
	return t
}

// fmtOverlap renders the fraction of gradient-communication time hidden
// behind backward compute: 1 - wait/comm, clamped to [0,1]. On a workload
// with no replicated stages (no all-reduce at all) there is nothing to
// overlap, so it reports "n/a" rather than a misleading 100%.
func fmtOverlap(commS, waitS float64) string {
	if commS <= 0 {
		return "n/a"
	}
	eff := 1 - waitS/commS
	if eff < 0 {
		eff = 0
	}
	if eff > 1 {
		eff = 1
	}
	return fmt.Sprintf("%.0f%%", 100*eff)
}

// runExecBenchTCP times the same workload as runExecBench through the full
// distributed session protocol: two workers plus a coordinator, each on its
// own TCP transport over 127.0.0.1, with the fixture's four stages placed
// alternately (stage i on rank i%2) so every stage boundary crosses a socket.
// The processes are goroutines sharing one heap, so B/iter and allocs/iter
// cover all three roles; "wire" is bytes sent across all transports, from
// their frame counters.
func runExecBenchTCP(ctx context.Context, iters int, seed int64) {
	fmt.Printf("exec benchmark (tcp loopback, 2 workers + coordinator): %d iterations/policy\nhost: %s\n",
		iters, hostinfo.Summary())
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "stopped: %v\n", err)
		os.Exit(1)
	}
	for _, tc := range []struct {
		name string
		pol  schedule.Policy
	}{
		{"GPipe", schedule.GPipe},
		{"DAPPLE", schedule.DapplePA},
	} {
		p, master, micros, err := train.BenchmarkWorkload(seed)
		if err != nil {
			fail(err)
		}
		// Stage i's device pair {2i, 2i+1} maps to rank i%2: every
		// activation/gradient boundary is cross-rank, replica all-reduces
		// stay rank-local.
		deviceRanks := make([]int, p.Cluster.NumDevices())
		for d := range deviceRanks {
			deviceRanks[d] = (d / 2) % 2
		}

		w0t, err := transport.ListenTCP("127.0.0.1:0")
		if err != nil {
			fail(err)
		}
		w1t, err := transport.ListenTCP("127.0.0.1:0")
		if err != nil {
			fail(err)
		}
		w0t.SetRank(0)
		w1t.SetRank(1)
		ct := transport.NewTCP()
		ct.SetRank(2)
		if err := w1t.Dial(ctx, 0, w0t.Addr()); err != nil {
			fail(err)
		}
		if err := ct.Dial(ctx, 0, w0t.Addr()); err != nil {
			fail(err)
		}
		if err := ct.Dial(ctx, 1, w1t.Addr()); err != nil {
			fail(err)
		}
		if err := w0t.WaitPeers(ctx, []int{1, 2}); err != nil {
			fail(err)
		}
		if err := w1t.WaitPeers(ctx, []int{0, 2}); err != nil {
			fail(err)
		}

		workers := []*train.Worker{train.NewWorker(w0t, 0), train.NewWorker(w1t, 1)}
		served := make(chan error, len(workers))
		for _, w := range workers {
			go func(w *train.Worker) { served <- w.Serve(ctx) }(w)
		}
		coord, err := train.NewCoordinator(ctx, ct, p, master,
			train.OptSpec{Kind: "sgd", LR: 0.01},
			train.ExecOptions{Policy: tc.pol}, deviceRanks, len(workers))
		if err != nil {
			fail(err)
		}

		for i := 0; i < 3; i++ { // reach the allocation steady state
			if _, err := coord.Step(ctx, micros); err != nil {
				fail(err)
			}
		}
		wire := func() int64 {
			return w0t.Stats().BytesSent + w1t.Stats().BytesSent + ct.Stats().BytesSent
		}
		var m1, m2 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m1)
		wire1 := wire()
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := coord.Step(ctx, micros); err != nil {
				fail(err)
			}
		}
		wall := time.Since(start)
		runtime.ReadMemStats(&m2)
		wire2 := wire()
		perIter := wall / time.Duration(iters)
		fmt.Printf("  %-7s %s/iter  %6d B/iter  %4d allocs/iter  %s wire/iter  overlap %.0f%%  (%s total)\n",
			tc.name,
			stats.Seconds(perIter.Seconds()),
			(m2.TotalAlloc-m1.TotalAlloc)/uint64(iters),
			(m2.Mallocs-m1.Mallocs)/uint64(iters),
			stats.Bytes((wire2-wire1)/int64(iters)),
			100*coord.OverlapEfficiency(),
			stats.Seconds(wall.Seconds()))

		if err := coord.Close(); err != nil {
			fail(err)
		}
		for range workers {
			if err := <-served; err != nil {
				fail(err)
			}
		}
	}
}

// medianOf times fn reps times (after one untimed warm-up that also primes
// the kernel pools) and returns the median duration.
func medianOf(reps int, fn func()) time.Duration {
	fn()
	ds := make([]time.Duration, reps)
	for i := range ds {
		t0 := time.Now()
		fn()
		ds[i] = time.Since(t0)
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[len(ds)/2]
}

// runKernelBench times the tensor GEMM kernels outside `go test`: the legacy
// scalar loop (the pre-blocked dense hot path, retained as the sparse-aware
// entry point), the blocked core on all three kinds, and a worker-count
// sweep — the portable source of BENCH_kernels.json numbers. Results are
// bit-identical across worker counts, so the sweep measures time only.
func runKernelBench(dim, reps int) {
	fmt.Printf("kernel benchmark: %d reps/measurement (medians), %dx%d float64 operands\nhost: %s\n",
		reps, dim, dim, hostinfo.Summary())
	rng := rand.New(rand.NewSource(1))
	a := tensor.New(dim, dim)
	b := tensor.New(dim, dim)
	a.Randomize(rng, 1)
	b.Randomize(rng, 1)
	out := tensor.New(dim, dim)
	flops := 2 * float64(dim) * float64(dim) * float64(dim)
	report := func(name string, d time.Duration) {
		fmt.Printf("  %-24s %12s  %7.2f GFLOP/s\n", name, d, flops/d.Seconds()/1e9)
	}
	report("legacy scalar (ikj)", medianOf(reps, func() { tensor.MatMulZeroSkipInto(out, a, b) }))
	report("blocked NN", medianOf(reps, func() { tensor.MatMulInto(out, a, b) }))
	report("blocked TN (a^T@b)", medianOf(reps, func() { tensor.MatMulATBAddInto(out, a, b) }))
	report("blocked NT (a@b^T)", medianOf(reps, func() { tensor.MatMulABTInto(out, a, b) }))
	prev := tensor.Workers()
	for _, w := range []int{1, 2, 4, 8} {
		tensor.SetWorkers(w)
		report(fmt.Sprintf("blocked NN, %d workers", w), medianOf(reps, func() { tensor.MatMulInto(out, a, b) }))
	}
	tensor.SetWorkers(prev)
}
