// Command dapple-bench regenerates the paper's evaluation tables and figures
// from the reproduction's workload generators, planner and schedule
// simulator.
//
// Usage:
//
//	dapple-bench -exp all          # every table and figure (§VI)
//	dapple-bench -exp table5       # one experiment
//	dapple-bench -list             # available experiment ids
//	dapple-bench -exp fig12 -quick # trimmed sweeps
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dapple/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (tableN, figN) or 'all'")
	quick := flag.Bool("quick", false, "trim sweeps for a fast pass")
	list := flag.Bool("list", false, "list experiment ids")
	flag.Parse()

	if *list {
		for _, g := range experiments.All() {
			fmt.Printf("%-8s %s\n", g.ID, g.Name)
		}
		return
	}

	opts := experiments.Options{Quick: *quick}
	run := func(g experiments.Generator) {
		start := time.Now()
		rep := g.Run(opts)
		fmt.Println(rep)
		fmt.Printf("(%s generated in %.1fs)\n\n", g.ID, time.Since(start).Seconds())
	}

	if *exp == "all" {
		for _, g := range experiments.All() {
			run(g)
		}
		return
	}
	g := experiments.ByID(*exp)
	if g == nil {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
		os.Exit(1)
	}
	run(*g)
}
