// Command dapple-worker hosts one rank of a multi-process DAPPLE training
// session: the stage replicas whose devices the coordinator's placement maps
// to this rank. It listens for mesh connections, dials every lower-ranked
// worker, then serves the coordinator protocol — manifest, weight broadcast,
// gated training steps — until shutdown.
//
// Usage (rank r dials the r lower-ranked workers, in rank order):
//
//	dapple-worker -rank 0 -listen 127.0.0.1:7700
//	dapple-worker -rank 1 -listen 127.0.0.1:7701 -peers 127.0.0.1:7700
//
// then point the coordinator at the workers:
//
//	dapple -execute -exec-workers 127.0.0.1:7700,127.0.0.1:7701 ...
//
// By default the session is fail-stop: any error anywhere ends every
// process's session, and the worker exits non-zero. When the coordinator
// runs with fault tolerance enabled, the manifest switches the worker into
// survivable mode — peer isolation, heartbeats, and participation in the
// coordinator's re-plan protocol. -die-at-step scripts this worker's death
// at a given step for chaos and recovery testing.
//
// With -join the worker instead joins a RUNNING elastic session: it dials
// the coordinator's listen address, runs the membership handshake (protocol
// version and manifest-hash checks), is granted a fresh rank, dials the
// granted peer mesh, and receives the live training state as a checkpoint
// stream. -rank and -peers are rejected with -join; the session assigns
// both:
//
//	dapple-worker -join 127.0.0.1:7800
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"dapple/internal/train"
	"dapple/internal/transport"
)

func main() {
	var (
		rank    = flag.Int("rank", -1, "this worker's rank (0-based, dense)")
		listen  = flag.String("listen", "127.0.0.1:0", "address to accept mesh connections on")
		peers   = flag.String("peers", "", "comma-separated addresses of workers 0..rank-1, in rank order")
		timeout = flag.Duration("dial-timeout", 30*time.Second, "time limit for connecting the worker mesh")
		dieAt   = flag.Int("die-at-step", -1, "fault injection: exit the moment the coordinator announces this step (negative disables)")
		join    = flag.String("join", "", "join the running elastic session whose coordinator listens at this address (-rank/-peers must be unset; the session grants both)")
	)
	flag.Parse()
	if *join != "" {
		if *rank >= 0 || *peers != "" {
			fatalf("dapple-worker: -join assigns rank and peers from the session; drop -rank/-peers")
		}
		runJoin(*join, *listen, *timeout, *dieAt)
		return
	}
	if *rank < 0 {
		fatalf("dapple-worker: -rank is required")
	}
	var peerAddrs []string
	if *peers != "" {
		peerAddrs = strings.Split(*peers, ",")
	}
	if len(peerAddrs) != *rank {
		fatalf("dapple-worker: rank %d needs %d -peers addresses, got %d", *rank, *rank, len(peerAddrs))
	}

	t, err := transport.ListenTCP(*listen)
	if err != nil {
		fatalf("dapple-worker: %v", err)
	}
	defer t.Close()
	t.SetRank(*rank)
	// The coordinator (and the smoke harness) scrape this line for the
	// resolved address, so port 0 works.
	fmt.Printf("dapple-worker: rank %d listening on %s\n", *rank, t.Addr())

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()
	dialCtx, dialCancel := context.WithTimeout(ctx, *timeout)
	defer dialCancel()
	// Retrying dial makes bring-up order-free: all workers (and the
	// coordinator) may launch simultaneously within the dial timeout.
	for q, addr := range peerAddrs {
		if err := t.DialRetry(dialCtx, q, addr); err != nil {
			fatalf("dapple-worker: dial rank %d at %s: %v", q, addr, err)
		}
	}

	w := train.NewWorker(t, *rank)
	if *dieAt >= 0 {
		w.SetDieAtStep(*dieAt)
	}
	// Serve holds the mesh open through shutdown until the coordinator —
	// who has every worker's ack — tears the session down, so peers still
	// draining their own shutdown are never EOF'd early.
	if err := w.Serve(ctx); err != nil {
		fatalf("dapple-worker: rank %d: %v", *rank, err)
	}
	fmt.Printf("dapple-worker: rank %d shut down cleanly\n", *rank)
}

// runJoin is the elastic entry point: knock on the coordinator, run the
// membership handshake, then serve the session exactly like a seed worker.
func runJoin(coordAddr, listen string, timeout time.Duration, dieAt int) {
	t, err := transport.ListenTCP(listen)
	if err != nil {
		fatalf("dapple-worker: %v", err)
	}
	defer t.Close()
	fmt.Printf("dapple-worker: joiner listening on %s, knocking on %s\n", t.Addr(), coordAddr)

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()
	joinCtx, joinCancel := context.WithTimeout(ctx, timeout)
	defer joinCancel()
	w, err := train.JoinSession(joinCtx, t, coordAddr)
	if err != nil {
		fatalf("dapple-worker: join %s: %v", coordAddr, err)
	}
	// The smoke harness scrapes this line to confirm admission.
	fmt.Printf("dapple-worker: admitted as rank %d\n", w.Rank())
	if dieAt >= 0 {
		w.SetDieAtStep(dieAt)
	}
	if err := w.Serve(ctx); err != nil {
		fatalf("dapple-worker: rank %d: %v", w.Rank(), err)
	}
	fmt.Printf("dapple-worker: rank %d shut down cleanly\n", w.Rank())
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
