// Command dapple-worker hosts one rank of a multi-process DAPPLE training
// session: the stage replicas whose devices the coordinator's placement maps
// to this rank. It listens for mesh connections, dials every lower-ranked
// worker, then serves the coordinator protocol — manifest, weight broadcast,
// gated training steps — until shutdown.
//
// Usage (rank r dials the r lower-ranked workers, in rank order):
//
//	dapple-worker -rank 0 -listen 127.0.0.1:7700
//	dapple-worker -rank 1 -listen 127.0.0.1:7701 -peers 127.0.0.1:7700
//
// then point the coordinator at the workers:
//
//	dapple -execute -exec-workers 127.0.0.1:7700,127.0.0.1:7701 ...
//
// By default the session is fail-stop: any error anywhere ends every
// process's session, and the worker exits non-zero. When the coordinator
// runs with fault tolerance enabled, the manifest switches the worker into
// survivable mode — peer isolation, heartbeats, and participation in the
// coordinator's re-plan protocol. -die-at-step scripts this worker's death
// at a given step for chaos and recovery testing.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"dapple/internal/train"
	"dapple/internal/transport"
)

func main() {
	var (
		rank    = flag.Int("rank", -1, "this worker's rank (0-based, dense)")
		listen  = flag.String("listen", "127.0.0.1:0", "address to accept mesh connections on")
		peers   = flag.String("peers", "", "comma-separated addresses of workers 0..rank-1, in rank order")
		timeout = flag.Duration("dial-timeout", 30*time.Second, "time limit for connecting the worker mesh")
		dieAt   = flag.Int("die-at-step", -1, "fault injection: exit the moment the coordinator announces this step (negative disables)")
	)
	flag.Parse()
	if *rank < 0 {
		fatalf("dapple-worker: -rank is required")
	}
	var peerAddrs []string
	if *peers != "" {
		peerAddrs = strings.Split(*peers, ",")
	}
	if len(peerAddrs) != *rank {
		fatalf("dapple-worker: rank %d needs %d -peers addresses, got %d", *rank, *rank, len(peerAddrs))
	}

	t, err := transport.ListenTCP(*listen)
	if err != nil {
		fatalf("dapple-worker: %v", err)
	}
	defer t.Close()
	t.SetRank(*rank)
	// The coordinator (and the smoke harness) scrape this line for the
	// resolved address, so port 0 works.
	fmt.Printf("dapple-worker: rank %d listening on %s\n", *rank, t.Addr())

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()
	dialCtx, dialCancel := context.WithTimeout(ctx, *timeout)
	defer dialCancel()
	// Retrying dial makes bring-up order-free: all workers (and the
	// coordinator) may launch simultaneously within the dial timeout.
	for q, addr := range peerAddrs {
		if err := t.DialRetry(dialCtx, q, addr); err != nil {
			fatalf("dapple-worker: dial rank %d at %s: %v", q, addr, err)
		}
	}

	w := train.NewWorker(t, *rank)
	if *dieAt >= 0 {
		w.SetDieAtStep(*dieAt)
	}
	// Serve holds the mesh open through shutdown until the coordinator —
	// who has every worker's ack — tears the session down, so peers still
	// draining their own shutdown are never EOF'd early.
	if err := w.Serve(ctx); err != nil {
		fatalf("dapple-worker: rank %d: %v", *rank, err)
	}
	fmt.Printf("dapple-worker: rank %d shut down cleanly\n", *rank)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
